// Polynomial arithmetic, interpolation and linear-algebra tests.
#include <gtest/gtest.h>

#include "poly/polynomial.hpp"

namespace dsaudit::poly {
namespace {

using primitives::SecureRng;

TEST(Polynomial, EvaluateKnownValues) {
  // p(x) = 3 + 2x + x^2
  Polynomial p({Fr::from_u64(3), Fr::from_u64(2), Fr::from_u64(1)});
  EXPECT_EQ(p.evaluate(Fr::zero()), Fr::from_u64(3));
  EXPECT_EQ(p.evaluate(Fr::from_u64(1)), Fr::from_u64(6));
  EXPECT_EQ(p.evaluate(Fr::from_u64(10)), Fr::from_u64(123));
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, NormalizationStripsLeadingZeros) {
  Polynomial p({Fr::from_u64(1), Fr::zero(), Fr::zero()});
  EXPECT_EQ(p.degree(), 0u);
  EXPECT_EQ(p, Polynomial::constant(Fr::one()));
  EXPECT_TRUE(Polynomial({Fr::zero()}).is_zero());
  EXPECT_TRUE(Polynomial::zero().evaluate(Fr::from_u64(7)).is_zero());
}

TEST(Polynomial, RingAxioms) {
  auto rng = SecureRng::deterministic(70);
  for (int i = 0; i < 10; ++i) {
    Polynomial a = Polynomial::random(5, rng);
    Polynomial b = Polynomial::random(7, rng);
    Polynomial c = Polynomial::random(3, rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
    // Evaluation is a ring homomorphism.
    Fr x = Fr::random(rng);
    EXPECT_EQ((a * b).evaluate(x), a.evaluate(x) * b.evaluate(x));
    EXPECT_EQ((a + b).evaluate(x), a.evaluate(x) + b.evaluate(x));
  }
}

TEST(Polynomial, MulDegrees) {
  auto rng = SecureRng::deterministic(71);
  Polynomial a = Polynomial::random(4, rng);
  Polynomial b = Polynomial::random(6, rng);
  EXPECT_EQ((a * b).degree(), 10u);
  EXPECT_TRUE((a * Polynomial::zero()).is_zero());
  EXPECT_EQ(Polynomial::monomial(3).degree(), 3u);
}

TEST(Polynomial, DivideByLinearIdentity) {
  auto rng = SecureRng::deterministic(72);
  for (int i = 0; i < 20; ++i) {
    Polynomial p = Polynomial::random(10, rng);
    Fr r = Fr::random(rng);
    auto [q, rem] = p.divide_by_linear(r);
    EXPECT_EQ(rem, p.evaluate(r));
    // P(x) == Q(x)(x - r) + rem
    Polynomial reconstructed = q * Polynomial({-r, Fr::one()}) +
                               Polynomial::constant(rem);
    EXPECT_EQ(reconstructed, p);
    EXPECT_EQ(q.degree(), 9u);
  }
}

TEST(Polynomial, DivideByLinearAtRoot) {
  // (x - 5)(x + 3) divided by (x - 5) leaves remainder 0.
  Fr five = Fr::from_u64(5), three = Fr::from_u64(3);
  Polynomial p = Polynomial({-five, Fr::one()}) * Polynomial({three, Fr::one()});
  auto [q, rem] = p.divide_by_linear(five);
  EXPECT_TRUE(rem.is_zero());
  EXPECT_EQ(q, Polynomial({three, Fr::one()}));
}

TEST(Interpolation, RecoversPolynomial) {
  auto rng = SecureRng::deterministic(73);
  for (std::size_t deg : {0u, 1u, 5u, 20u}) {
    Polynomial p = Polynomial::random(deg, rng);
    std::vector<Fr> xs, ys;
    for (std::size_t i = 0; i <= deg; ++i) {
      xs.push_back(Fr::from_u64(i + 1));
      ys.push_back(p.evaluate(xs.back()));
    }
    EXPECT_EQ(lagrange_interpolate(xs, ys), p) << "deg=" << deg;
  }
}

TEST(Interpolation, FailsOnDuplicateX) {
  std::vector<Fr> xs{Fr::one(), Fr::one()};
  std::vector<Fr> ys{Fr::one(), Fr::from_u64(2)};
  EXPECT_THROW(lagrange_interpolate(xs, ys), std::invalid_argument);
  std::vector<Fr> short_ys{Fr::one()};
  EXPECT_THROW(lagrange_interpolate(xs, short_ys), std::invalid_argument);
}

TEST(Interpolation, UnderdeterminedStaysLowDegree) {
  // Interpolating s points of a higher-degree polynomial gives the unique
  // degree < s interpolant — this is why the §V-C adversary needs exactly
  // s distinct challenge points to pin down P_k.
  auto rng = SecureRng::deterministic(74);
  Polynomial p = Polynomial::random(9, rng);
  std::vector<Fr> xs, ys;
  for (std::size_t i = 0; i < 5; ++i) {
    xs.push_back(Fr::from_u64(i + 1));
    ys.push_back(p.evaluate(xs.back()));
  }
  Polynomial wrong = lagrange_interpolate(xs, ys);
  EXPECT_LE(wrong.degree(), 4u);
  EXPECT_NE(wrong, p);
}

TEST(LinearSystem, SolvesRandomSystems) {
  auto rng = SecureRng::deterministic(75);
  for (std::size_t n : {1u, 2u, 5u, 20u}) {
    std::vector<std::vector<Fr>> a(n, std::vector<Fr>(n));
    std::vector<Fr> x_true(n);
    for (auto& xi : x_true) xi = Fr::random(rng);
    for (auto& row : a) {
      for (auto& v : row) v = Fr::random(rng);
    }
    std::vector<Fr> b(n, Fr::zero());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a[i][j] * x_true[j];
    }
    auto x = solve_linear_system(a, b);
    ASSERT_EQ(x.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], x_true[i]);
  }
}

TEST(LinearSystem, DetectsSingular) {
  // Two identical rows.
  std::vector<std::vector<Fr>> a{{Fr::one(), Fr::one()}, {Fr::one(), Fr::one()}};
  std::vector<Fr> b{Fr::one(), Fr::one()};
  EXPECT_TRUE(solve_linear_system(a, b).empty());
  std::vector<Fr> bad_b{Fr::one()};
  EXPECT_THROW(solve_linear_system(a, bad_b), std::invalid_argument);
}

}  // namespace
}  // namespace dsaudit::poly
