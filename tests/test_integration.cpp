// Cross-layer integration tests: beacon -> contract -> prover -> chain ->
// attack, exercising seams that unit tests cannot (challenge derivation from
// beacon outputs, audit trails scraped from chain events, eclipse scenarios
// against a live contract, wire formats across the trust boundary).
#include <gtest/gtest.h>

#include "attack/trail_attack.hpp"
#include "audit/serialize.hpp"
#include "contract/audit_contract.hpp"
#include "pairing/pairing.hpp"

namespace dsaudit {
namespace {

using audit::Challenge;
using primitives::SecureRng;

struct Deployment {
  chain::Blockchain chain;
  std::unique_ptr<chain::RandomnessBeacon> beacon;
  audit::KeyPair kp;
  storage::EncodedFile file;
  audit::FileTag tag;
  audit::Fr name;
  std::unique_ptr<audit::Prover> prover;
  std::unique_ptr<contract::AuditContract> contract;

  Deployment(contract::ContractTerms terms, std::size_t file_size, std::size_t s,
             std::unique_ptr<chain::RandomnessBeacon> b, std::uint64_t seed = 900)
      : beacon(std::move(b)) {
    auto rng = SecureRng::deterministic(seed);
    kp = audit::keygen(s, rng);
    std::vector<std::uint8_t> data(file_size);
    rng.fill(data);
    file = storage::encode_file(data, s);
    name = audit::Fr::random(rng);
    tag = audit::generate_tags(kp.sk, kp.pk, file, name);
    prover = std::make_unique<audit::Prover>(kp.pk, file, tag);
    chain.mint(terms.owner, 1'000'000);
    chain.mint(terms.provider, 1'000'000);
    contract = std::make_unique<contract::AuditContract>(
        chain, *beacon, terms, kp.pk, name, file.num_chunks());
  }
};

contract::ContractTerms terms(std::uint64_t num_audits, bool priv) {
  contract::ContractTerms t;
  t.owner = "alice";
  t.provider = "bob";
  t.num_audits = num_audits;
  t.audit_period_s = 3600;
  t.response_window_s = 600;
  t.reward_per_audit = 10;
  t.penalty_per_fail = 20;
  t.challenged_chunks = 999;  // challenge all
  t.private_proofs = priv;
  return t;
}

TEST(Integration, CommitRevealBeaconDrivesContract) {
  // The contract consumes commit-reveal randomness; all rounds pass and the
  // per-round challenges differ.
  std::array<std::uint8_t, 32> seed{};
  seed[0] = 9;
  Deployment d(terms(4, true), 2000, 5,
               std::make_unique<chain::CommitRevealBeacon>(seed, 8));
  audit::Prover* prover = d.prover.get();
  d.contract->set_responder(
      [prover](const Challenge& chal) -> std::optional<std::vector<std::uint8_t>> {
        auto rng = SecureRng::from_os();
        return audit::serialize(prover->prove_private(chal, rng));
      });
  d.contract->negotiated();
  d.contract->acked(true);
  d.contract->freeze();
  d.chain.advance(6 * 3600);
  EXPECT_EQ(d.contract->passes(), 4u);
  EXPECT_FALSE(d.contract->rounds()[0].challenge.r == d.contract->rounds()[1].challenge.r);
}

TEST(Integration, VdfBeaconDrivesContract) {
  std::array<std::uint8_t, 32> seed{};
  seed[1] = 7;
  Deployment d(terms(2, false), 1500, 4,
               std::make_unique<chain::VdfBeacon>(seed, 200));
  audit::Prover* prover = d.prover.get();
  d.contract->set_responder(
      [prover](const Challenge& chal) -> std::optional<std::vector<std::uint8_t>> {
        return audit::serialize(prover->prove(chal));
      });
  d.contract->negotiated();
  d.contract->acked(true);
  d.contract->freeze();
  d.chain.advance(4 * 3600);
  EXPECT_EQ(d.contract->passes(), 2u);
}

TEST(Integration, AttackerScrapesRealContractTrails) {
  // End-to-end §V-C on actual contract records: a NON-private contract runs
  // its full horizon; the adversary reads (challenge, y) pairs straight out
  // of the public RoundRecords and reconstructs the file.
  std::array<std::uint8_t, 32> seed{};
  seed[2] = 5;
  const std::size_t s = 3;
  // Small file so d*s trails fit into the contract horizon.
  Deployment d(terms(24, /*priv=*/false), 400, s,
               std::make_unique<chain::TrustedBeacon>(seed));
  const std::size_t chunks = d.file.num_chunks();
  ASSERT_LE(chunks * s, 24u);  // enough rounds to close the system
  audit::Prover* prover = d.prover.get();
  std::vector<audit::ProofBasic> posted;
  d.contract->set_responder(
      [prover, &posted](const Challenge& chal)
          -> std::optional<std::vector<std::uint8_t>> {
        posted.push_back(prover->prove(chal));
        return audit::serialize(posted.back());
      });
  d.contract->negotiated();
  d.contract->acked(true);
  d.contract->freeze();
  d.chain.advance(26 * 3600);
  ASSERT_EQ(d.contract->passes(), 24u);

  attack::TrailAnalyzer observer(chunks, s);
  const auto& rounds = d.contract->rounds();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    observer.add_trail({rounds[i].challenge, posted[i].y});
  }
  auto loot = observer.recover();
  ASSERT_TRUE(loot.has_value());
  EXPECT_EQ(attack::recovery_rate(*loot, d.file), 1.0);
}

TEST(Integration, PrivateContractTrailsResistTheSameScrape) {
  std::array<std::uint8_t, 32> seed{};
  seed[3] = 5;
  const std::size_t s = 3;
  Deployment d(terms(24, /*priv=*/true), 400, s,
               std::make_unique<chain::TrustedBeacon>(seed));
  audit::Prover* prover = d.prover.get();
  std::vector<audit::ProofPrivate> posted;
  d.contract->set_responder(
      [prover, &posted](const Challenge& chal)
          -> std::optional<std::vector<std::uint8_t>> {
        auto rng = SecureRng::from_os();
        posted.push_back(prover->prove_private(chal, rng));
        return audit::serialize(posted.back());
      });
  d.contract->negotiated();
  d.contract->acked(true);
  d.contract->freeze();
  d.chain.advance(26 * 3600);
  ASSERT_EQ(d.contract->passes(), 24u);

  attack::TrailAnalyzer observer(d.file.num_chunks(), s);
  const auto& rounds = d.contract->rounds();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    observer.add_trail({rounds[i].challenge, posted[i].y_prime});
  }
  EXPECT_FALSE(observer.recover().has_value());
}

TEST(Integration, KeyAndTagFilesRoundTripThroughWireFormats) {
  // The CLI's file formats: every artifact survives serialize/deserialize
  // and still verifies.
  auto rng = SecureRng::deterministic(903);
  auto kp = audit::keygen(7, rng);
  std::vector<std::uint8_t> data(3000);
  rng.fill(data);
  auto file = storage::encode_file(data, 7);
  auto name = audit::Fr::random(rng);
  auto tag = audit::generate_tags(kp.sk, kp.pk, file, name);

  auto sk2 = audit::deserialize_secret_key(audit::serialize(kp.sk));
  ASSERT_TRUE(sk2.has_value());
  EXPECT_EQ(sk2->x, kp.sk.x);
  EXPECT_EQ(sk2->alpha, kp.sk.alpha);

  auto tag2 = audit::deserialize_file_tag(audit::serialize(tag));
  ASSERT_TRUE(tag2.has_value());
  EXPECT_EQ(tag2->name, tag.name);
  ASSERT_EQ(tag2->sigmas.size(), tag.sigmas.size());

  Challenge chal;
  chal.c1 = rng.bytes32();
  chal.c2 = rng.bytes32();
  chal.r = audit::Fr::random(rng);
  chal.k = 5;
  auto chal2 = audit::deserialize_challenge(audit::serialize(chal));
  ASSERT_TRUE(chal2.has_value());
  EXPECT_EQ(chal2->k, 5u);
  EXPECT_EQ(chal2->r, chal.r);
  EXPECT_EQ(chal2->c1, chal.c1);

  // Re-verify through the round-tripped artifacts only.
  auto pk2 = audit::deserialize_public_key(audit::serialize(kp.pk, true));
  ASSERT_TRUE(pk2.has_value());
  audit::Prover prover(*pk2, file, *tag2);
  auto proof = prover.prove_private(*chal2, rng);
  EXPECT_TRUE(audit::verify_private(*pk2, tag2->name, tag2->num_chunks, *chal2, proof));
}

TEST(Integration, MalformedFileArtifactsRejected) {
  auto rng = SecureRng::deterministic(904);
  auto kp = audit::keygen(4, rng);
  auto sk_bytes = audit::serialize(kp.sk);
  sk_bytes.pop_back();
  EXPECT_FALSE(audit::deserialize_secret_key(sk_bytes).has_value());
  std::vector<std::uint8_t> zero_sk(64, 0);
  EXPECT_FALSE(audit::deserialize_secret_key(zero_sk).has_value());

  std::vector<std::uint8_t> data(500);
  rng.fill(data);
  auto file = storage::encode_file(data, 4);
  auto tag = audit::generate_tags(kp.sk, kp.pk, file, audit::Fr::one());
  auto tag_bytes = audit::serialize(tag);
  // Overwrite the first sigma with an unambiguously invalid encoding
  // (x >= p with both flag bits set on a non-zero payload).
  std::fill(tag_bytes.begin() + 48, tag_bytes.begin() + 80, 0xff);
  EXPECT_FALSE(audit::deserialize_file_tag(tag_bytes).has_value());
  tag_bytes.resize(40);
  EXPECT_FALSE(audit::deserialize_file_tag(tag_bytes).has_value());

  std::vector<std::uint8_t> chal_bytes(104, 0xff);
  EXPECT_FALSE(audit::deserialize_challenge(chal_bytes).has_value());
}

TEST(Integration, TwoContractsShareOneChainIndependently) {
  // Two unrelated (owner, provider) pairs on the same blockchain: one honest,
  // one unresponsive. Outcomes must not bleed across contracts.
  std::array<std::uint8_t, 32> seed{};
  chain::Blockchain bc;
  chain::TrustedBeacon beacon(seed);
  auto rng = SecureRng::deterministic(905);

  auto mk = [&](const std::string& owner, const std::string& provider) {
    auto kp = audit::keygen(4, rng);
    std::vector<std::uint8_t> data(800);
    rng.fill(data);
    auto file = storage::encode_file(data, 4);
    auto name = audit::Fr::random(rng);
    auto tag = audit::generate_tags(kp.sk, kp.pk, file, name);
    bc.mint(owner, 100'000);
    bc.mint(provider, 100'000);
    contract::ContractTerms t = terms(3, true);
    t.owner = owner;
    t.provider = provider;
    return std::tuple{kp, file, tag, name, t};
  };

  auto [kp1, file1, tag1, name1, t1] = mk("o1", "p1");
  auto [kp2, file2, tag2, name2, t2] = mk("o2", "p2");
  contract::AuditContract c1(bc, beacon, t1, kp1.pk, name1, file1.num_chunks());
  contract::AuditContract c2(bc, beacon, t2, kp2.pk, name2, file2.num_chunks());
  audit::Prover p1(kp1.pk, file1, tag1);
  c1.set_responder([&](const Challenge& chal) -> std::optional<std::vector<std::uint8_t>> {
    auto r = SecureRng::from_os();
    return audit::serialize(p1.prove_private(chal, r));
  });
  // c2 has no responder: times out.
  for (auto* c : {&c1, &c2}) {
    c->negotiated();
    c->acked(true);
    c->freeze();
  }
  bc.advance(5 * 3600);
  EXPECT_EQ(c1.passes(), 3u);
  EXPECT_EQ(c1.timeouts(), 0u);
  EXPECT_EQ(c2.passes(), 0u);
  EXPECT_EQ(c2.timeouts(), 3u);
  // p2 lost collateral to o2; p1 earned rewards.
  EXPECT_EQ(bc.balance("p1"), 100'000 + 3 * 10u);
  EXPECT_EQ(bc.balance("o2"), 100'000 + 3 * 20u);
}

TEST(Integration, ProofsAreNotTransferableAcrossFiles) {
  // A proof for file A must not verify against file B's name/tag even under
  // the same key and challenge (the H(name||i) binding).
  auto rng = SecureRng::deterministic(906);
  auto kp = audit::keygen(5, rng);
  std::vector<std::uint8_t> da(1000), db(1000);
  rng.fill(da);
  rng.fill(db);
  auto fa = storage::encode_file(da, 5);
  auto fb = storage::encode_file(db, 5);
  auto na = audit::Fr::random(rng);
  auto nb = audit::Fr::random(rng);
  auto ta = audit::generate_tags(kp.sk, kp.pk, fa, na);
  audit::Prover prover(kp.pk, fa, ta);
  Challenge chal;
  chal.c1 = rng.bytes32();
  chal.c2 = rng.bytes32();
  chal.r = audit::Fr::random(rng);
  chal.k = 3;
  auto proof = prover.prove(chal);
  EXPECT_TRUE(audit::verify(kp.pk, na, fa.num_chunks(), chal, proof));
  EXPECT_FALSE(audit::verify(kp.pk, nb, fb.num_chunks(), chal, proof));
}

}  // namespace
}  // namespace dsaudit
