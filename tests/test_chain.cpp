// Blockchain simulator, gas model and randomness beacon tests.
#include <gtest/gtest.h>

#include "chain/beacon.hpp"
#include "chain/blockchain.hpp"

namespace dsaudit::chain {
namespace {

TEST(Gas, CalibrationReproducesPaperAnchor) {
  // §VII-B: "approximately 589,000 gases per auditing (7.2 ms for
  // verification, proof size 288 bytes)".
  GasSchedule g = GasSchedule::calibrated();
  EXPECT_EQ(g.audit_tx_gas(288, 48, 7.2), 589000u);
  // The 96-byte non-private proof at the same verify time is cheaper by the
  // calldata delta.
  EXPECT_EQ(g.audit_tx_gas(288, 48, 7.2) - g.audit_tx_gas(96, 48, 7.2),
            (288u - 96u) * 16u);
}

TEST(Gas, CalldataDistinguishesZeroBytes) {
  GasSchedule g = GasSchedule::calibrated();
  std::vector<std::uint8_t> zeros(10, 0), ones(10, 1);
  EXPECT_EQ(g.calldata_gas(zeros), 10 * g.calldata_zero_byte);
  EXPECT_EQ(g.calldata_gas(ones), 10 * g.calldata_nonzero_byte);
  EXPECT_THROW(GasSchedule::calibrated(100, 7.2), std::invalid_argument);
  EXPECT_THROW(GasSchedule::calibrated(589000, 0.0), std::invalid_argument);
}

TEST(Gas, PriceModelPaperFootnote) {
  PriceModel price;
  // 589k gas at 5 Gwei, 143 USD/ETH ~ $0.42 per audit; Fig. 6's daily-audit
  // year then costs ~$150 — "the same level of most cloud storage providers'
  // annual storage fees".
  double per_audit = price.usd(589000);
  EXPECT_NEAR(per_audit, 0.42, 0.01);
  EXPECT_NEAR(per_audit * 365, 153.7, 2.0);
}

TEST(Blockchain, MinesOnInterval) {
  Blockchain bc({.block_interval_s = 15});
  bc.advance(60);
  EXPECT_EQ(bc.blocks().size(), 4u);
  EXPECT_EQ(bc.now(), 60u);
  EXPECT_EQ(bc.blocks()[0].timestamp, 15u);
}

TEST(Blockchain, TransactionLifecycle) {
  Blockchain bc;
  Transaction tx;
  tx.from = "alice";
  tx.description = "prove";
  tx.payload_bytes = 288;
  tx.gas_used = 589000;
  bc.submit(tx);
  EXPECT_EQ(bc.pending_count(), 1u);
  bc.advance(15);
  EXPECT_EQ(bc.pending_count(), 0u);
  const auto& mined = bc.transactions()[0];
  EXPECT_EQ(mined.block_number, 1u);
  EXPECT_EQ(mined.mined_at, 15u);
  EXPECT_EQ(bc.total_gas_used(), 589000u);
}

TEST(Blockchain, BlockSizeBudgetDefersTransactions) {
  // 18 KB blocks with ~400-byte audit txs: the §VII-D throughput ceiling.
  ChainConfig cfg;
  cfg.max_block_bytes = 18 * 1024;
  Blockchain bc(cfg);
  for (int i = 0; i < 100; ++i) {
    Transaction tx;
    tx.from = "p" + std::to_string(i);
    tx.payload_bytes = 288 + 48;
    tx.gas_used = 589000;
    bc.submit(tx);
  }
  bc.advance(15);
  std::size_t first_block = bc.blocks()[0].tx_indices.size();
  // (18*1024 - 500 overhead) / (336 + 110) = ~40 txs per block -> ~2.7 tx/s,
  // the right order for the paper's "2 transactions per second".
  EXPECT_GT(first_block, 30u);
  EXPECT_LT(first_block, 50u);
  EXPECT_GT(bc.pending_count(), 0u);
  bc.advance(15 * 10);
  EXPECT_EQ(bc.pending_count(), 0u);
}

TEST(Blockchain, LedgerTransfers) {
  Blockchain bc;
  bc.mint("alice", 100);
  bc.transfer("alice", "bob", 60);
  EXPECT_EQ(bc.balance("alice"), 40u);
  EXPECT_EQ(bc.balance("bob"), 60u);
  EXPECT_THROW(bc.transfer("alice", "bob", 41), std::runtime_error);
  EXPECT_EQ(bc.balance("nobody"), 0u);
}

TEST(Blockchain, SchedulerFiresInOrder) {
  Blockchain bc;
  std::vector<int> fired;
  bc.schedule(100, [&](Timestamp) { fired.push_back(1); });
  bc.schedule(50, [&](Timestamp) { fired.push_back(0); });
  bc.schedule(150, [&](Timestamp) { fired.push_back(2); });
  bc.advance(120);
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  bc.advance(40);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(Blockchain, ScheduledTaskCanSubmitAndReschedule) {
  Blockchain bc;
  int rounds = 0;
  std::function<void(Timestamp)> periodic = [&](Timestamp now) {
    ++rounds;
    Transaction tx;
    tx.from = "bot";
    tx.payload_bytes = 48;
    tx.gas_used = 21000;
    bc.submit(tx);
    if (rounds < 5) bc.schedule(now + 100, periodic);
  };
  bc.schedule(100, periodic);
  bc.advance(1000);
  EXPECT_EQ(rounds, 5);
  EXPECT_EQ(bc.transactions().size(), 5u);
  EXPECT_EQ(bc.pending_count(), 0u);
}

TEST(Beacon, TrustedDeterministicPerRound) {
  std::array<std::uint8_t, 32> seed{};
  seed[0] = 1;
  TrustedBeacon a(seed), b(seed);
  EXPECT_EQ(a.randomness(0), b.randomness(0));
  EXPECT_NE(a.randomness(0), a.randomness(1));
  EXPECT_GT(a.cost_usd_per_round(), 0.0);
}

TEST(Beacon, CommitRevealHonestMatchesAllParticipants) {
  std::array<std::uint8_t, 32> seed{};
  seed[1] = 2;
  CommitRevealBeacon honest(seed, 5);
  EXPECT_EQ(honest.withhold_count(), 0u);
  auto r0 = honest.randomness(0);
  EXPECT_EQ(honest.withhold_count(), 0u);
  EXPECT_NE(r0, honest.randomness(1));
  EXPECT_THROW(CommitRevealBeacon(seed, 1), std::invalid_argument);
}

TEST(Beacon, LastRevealerCanBiasCommitReveal) {
  // The adversary prefers outputs whose first byte is even; by withholding
  // it gets ~75% instead of 50% — the [36] bias that motivates VDF beacons.
  std::array<std::uint8_t, 32> seed{};
  seed[2] = 3;
  auto prefer_even = [](const BeaconOutput& with, const BeaconOutput& without) {
    bool with_even = (with[0] & 1) == 0;
    bool without_even = (without[0] & 1) == 0;
    if (with_even == without_even) return true;  // indifferent: reveal
    return with_even;
  };
  CommitRevealBeacon biased(seed, 5, prefer_even);
  int even = 0;
  constexpr int kRounds = 400;
  for (int i = 0; i < kRounds; ++i) {
    even += (biased.randomness(i)[0] & 1) == 0;
  }
  EXPECT_GT(biased.withhold_count(), 0u);
  // Expect ~300/400; far outside binomial noise of a fair beacon.
  EXPECT_GT(even, kRounds * 0.65);
}

TEST(Beacon, VdfIsDeterministicAndSlowable) {
  std::array<std::uint8_t, 32> seed{};
  seed[3] = 4;
  VdfBeacon a(seed, 1000), b(seed, 1000), other(seed, 1001);
  EXPECT_EQ(a.randomness(7), b.randomness(7));
  EXPECT_NE(a.randomness(7), other.randomness(7));  // delay is part of the fn
  // The VDF itself composes: vdf(x, a+b) == vdf(vdf(x, a), b).
  std::array<std::uint8_t, 32> x{};
  x[0] = 9;
  EXPECT_EQ(VdfBeacon::vdf(x, 30), VdfBeacon::vdf(VdfBeacon::vdf(x, 10), 20));
}

}  // namespace
}  // namespace dsaudit::chain
