// Deterministic malformed-input corpus against the untrusted-bytes boundary
// (audit/serialize.hpp decode_* functions).
//
// Two assertion tiers:
//   - guaranteed-invalid mutations (attack/corpus.hpp *_mutations): decode
//     MUST refuse the bytes with a typed DecodeError — and, being a typed
//     boundary, the reason must survive the legacy nullopt wrappers too;
//   - seeded random single-bit flips: decode may accept or refuse, but must
//     never crash, and anything it accepts must re-serialize consistently
//     (no "parsed garbage" states escaping the boundary).
//
// The whole corpus is a pure function of the fixed RNG seed and
// DSAUDIT_FUZZ_SEEDS (number of random-flip seeds; CI raises it under
// ASan/UBSan), so any sanitizer hit replays exactly. Well over 200 mutations
// at the default setting — the floor the corpus test asserts explicitly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "attack/corpus.hpp"
#include "audit/protocol.hpp"
#include "audit/serialize.hpp"
#include "storage/codec.hpp"

namespace dsaudit::audit {
namespace {

std::size_t flip_seeds(std::size_t fallback) {
  const char* env = std::getenv("DSAUDIT_FUZZ_SEEDS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

// One fixture builds every valid wire encoding once (keygen + tagging +
// proving are the expensive part) and every test mutates from there.
class FuzzDecode : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto rng = primitives::SecureRng::deterministic(0xF002);
    static KeyPair kp = keygen(/*s=*/4, rng);
    kp_ = &kp;
    std::vector<std::uint8_t> data(400);
    rng.fill(data);
    static storage::EncodedFile file = storage::encode_file(data, /*s=*/4);
    static Fr name = Fr::random(rng);
    static FileTag tag = generate_tags(kp.sk, kp.pk, file, name);
    Challenge chal;
    chal.c1 = rng.bytes32();
    chal.c2 = rng.bytes32();
    chal.r = Fr::random(rng);
    chal.k = 3;
    const Prover prover(kp.pk, file, tag);
    valid_basic_ = serialize(prover.prove(chal));
    valid_private_ = serialize(prover.prove_private(chal, rng));
    valid_pk_ = serialize(kp.pk, /*with_privacy=*/true);
    valid_sk_ = serialize(kp.sk);
    valid_tag_ = serialize(tag);
    valid_challenge_ = serialize(chal);
    // An aggregate settlement tx over a 5-round window: a deliberately
    // non-byte-aligned count so the trailing-bitmap-bit canonicality class
    // exists in the corpus.
    AggregateSettlement agg;
    agg.weight_seed = rng.bytes32();
    agg.seed_nonce = 0x5EED0007;  // decode carries it opaquely
    agg.window_boundary = 86400;
    agg.rounds = 5;
    agg.opening = curve::g1_mul_generator(Fr::random(rng));
    agg.outcomes.assign(1, 0);
    for (std::uint64_t i = 0; i < agg.rounds; ++i) {
      agg.set_outcome(i, i != 2);  // mixed outcomes, round 2 failed
    }
    valid_aggregate_ = serialize(agg);
  }

  static const KeyPair* kp_;
  static std::vector<std::uint8_t> valid_basic_, valid_private_, valid_pk_,
      valid_sk_, valid_tag_, valid_challenge_, valid_aggregate_;
};

const KeyPair* FuzzDecode::kp_ = nullptr;
std::vector<std::uint8_t> FuzzDecode::valid_basic_;
std::vector<std::uint8_t> FuzzDecode::valid_private_;
std::vector<std::uint8_t> FuzzDecode::valid_pk_;
std::vector<std::uint8_t> FuzzDecode::valid_sk_;
std::vector<std::uint8_t> FuzzDecode::valid_tag_;
std::vector<std::uint8_t> FuzzDecode::valid_challenge_;
std::vector<std::uint8_t> FuzzDecode::valid_aggregate_;

// Run one format's corpus: valid bytes round-trip, every must-reject
// mutation dies with a typed error, every random flip decodes or refuses
// without crashing. Returns how many mutations were exercised.
template <typename Decode>
std::size_t exercise(const std::vector<std::uint8_t>& valid,
                     std::vector<attack::corpus::Mutation> mutations,
                     Decode decode, const char* what) {
  {
    const auto ok = decode(valid);
    EXPECT_TRUE(ok.ok()) << what << ": valid encoding refused: "
                         << to_string(ok.error);
  }
  for (const auto& m : mutations) {
    const auto result = decode(m.bytes);
    if (m.must_reject) {
      EXPECT_FALSE(result.ok())
          << what << ": accepted guaranteed-invalid mutation '" << m.label
          << "'";
      EXPECT_NE(result.error, DecodeError::None)
          << what << ": mutation '" << m.label << "' refused without a reason";
    } else if (result.ok()) {
      // Crash-freedom is the assertion for random flips; acceptance is
      // allowed (a flipped bit can land in a don't-care position) but the
      // value must have decoded through every canonical check above.
      SUCCEED();
    }
  }
  return mutations.size();
}

TEST_F(FuzzDecode, CorpusExceedsTwoHundredMutationsAndAllAreRejected) {
  const std::size_t flips = flip_seeds(30);
  std::size_t total = 0;
  {
    auto muts = attack::corpus::proof_mutations(valid_basic_);
    auto more = attack::corpus::random_flips(valid_basic_, 0xB1, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_basic_, std::move(muts),
                      [](const auto& b) { return decode_basic(b); },
                      "ProofBasic");
  }
  {
    auto muts = attack::corpus::proof_mutations(valid_private_);
    auto more = attack::corpus::random_flips(valid_private_, 0xB2, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_private_, std::move(muts),
                      [](const auto& b) { return decode_private(b); },
                      "ProofPrivate");
  }
  {
    auto muts = attack::corpus::public_key_mutations(valid_pk_);
    auto more = attack::corpus::random_flips(valid_pk_, 0xB3, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_pk_, std::move(muts),
                      [](const auto& b) { return decode_public_key(b); },
                      "PublicKey");
  }
  {
    auto muts = attack::corpus::file_tag_mutations(valid_tag_);
    auto more = attack::corpus::random_flips(valid_tag_, 0xB4, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_tag_, std::move(muts),
                      [](const auto& b) { return decode_file_tag(b); },
                      "FileTag");
  }
  {
    auto muts = attack::corpus::challenge_mutations(valid_challenge_);
    auto more = attack::corpus::random_flips(valid_challenge_, 0xB5, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_challenge_, std::move(muts),
                      [](const auto& b) { return decode_challenge(b); },
                      "Challenge");
  }
  {
    auto muts = attack::corpus::secret_key_mutations(valid_sk_);
    auto more = attack::corpus::random_flips(valid_sk_, 0xB6, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_sk_, std::move(muts),
                      [](const auto& b) { return decode_secret_key(b); },
                      "SecretKey");
  }
  {
    auto muts = attack::corpus::aggregate_settlement_mutations(valid_aggregate_);
    auto more = attack::corpus::random_flips(valid_aggregate_, 0xB7, flips);
    muts.insert(muts.end(), more.begin(), more.end());
    total += exercise(valid_aggregate_, std::move(muts),
                      [](const auto& b) {
                        return decode_aggregate_settlement(b);
                      },
                      "AggregateSettlement");
  }
  EXPECT_GE(total, 200u) << "corpus shrank below the acceptance floor";
}

// The count-field overflow probes are the two historical bugs this boundary
// hardening fixed: 32 * count wrapping past SIZE_MAX must be a clean
// BadStructure, never an out-of-bounds walk. Pinned individually so a
// regression names the exact probe.
TEST_F(FuzzDecode, CountOverflowProbesAreBadStructure) {
  for (const auto& m : attack::corpus::file_tag_mutations(valid_tag_)) {
    if (m.label.rfind("num-chunks-", 0) != 0) continue;
    const auto r = decode_file_tag(m.bytes);
    EXPECT_FALSE(r.ok()) << m.label;
    EXPECT_EQ(r.error, DecodeError::BadStructure) << m.label;
  }
  for (const auto& m : attack::corpus::public_key_mutations(valid_pk_)) {
    if (m.label.rfind("s-overflow", 0) != 0 && m.label != "s-max-u64")
      continue;
    const auto r = decode_public_key(m.bytes);
    EXPECT_FALSE(r.ok()) << m.label;
    EXPECT_EQ(r.error, DecodeError::BadStructure) << m.label;
  }
  for (const auto& m :
       attack::corpus::aggregate_settlement_mutations(valid_aggregate_)) {
    if (m.label.rfind("rounds-overflow", 0) != 0 && m.label != "rounds-max-u64")
      continue;
    const auto r = decode_aggregate_settlement(m.bytes);
    EXPECT_FALSE(r.ok()) << m.label;
    EXPECT_EQ(r.error, DecodeError::BadStructure) << m.label;
  }
}

// Typed reasons are stable per mutation class: the boundary tells the truth
// about WHY it refused the bytes.
TEST_F(FuzzDecode, RejectionReasonsAreTyped) {
  EXPECT_EQ(decode_basic(std::vector<std::uint8_t>{}).error,
            DecodeError::BadLength);
  {
    auto b = valid_basic_;
    std::fill(b.begin() + 32, b.begin() + 64, 0xFF);  // y >= r
    EXPECT_EQ(decode_basic(b).error, DecodeError::NonCanonicalScalar);
  }
  {
    auto b = valid_basic_;
    std::fill(b.begin(), b.begin() + 32, 0xFF);  // sigma.x >= p
    EXPECT_EQ(decode_basic(b).error, DecodeError::BadPoint);
  }
  {
    auto b = valid_private_;
    b[96] |= 0xC0;  // contradictory GT flag bits
    EXPECT_EQ(decode_private(b).error, DecodeError::BadGtElement);
  }
  {
    auto b = valid_challenge_;
    for (int i = 0; i < 8; ++i) b[96 + i] = 0;  // k == 0
    EXPECT_EQ(decode_challenge(b).error, DecodeError::ZeroForbidden);
  }
  {
    auto b = valid_pk_;
    for (int i = 0; i < 8; ++i) b[i] = 0;  // s == 0
    EXPECT_EQ(decode_public_key(b).error, DecodeError::ZeroForbidden);
  }
  {
    auto b = valid_aggregate_;
    for (int i = 0; i < 8; ++i) b[48 + i] = 0;  // rounds == 0
    EXPECT_EQ(decode_aggregate_settlement(b).error, DecodeError::ZeroForbidden);
  }
  {
    auto b = valid_aggregate_;
    std::fill(b.begin() + 56, b.begin() + 88, 0xFF);  // opening.x >= p
    EXPECT_EQ(decode_aggregate_settlement(b).error, DecodeError::BadPoint);
  }
  {
    auto b = valid_aggregate_;
    b.back() |= 0xE0;  // bits past rounds=5 in the bitmap: non-canonical
    EXPECT_EQ(decode_aggregate_settlement(b).error, DecodeError::BadStructure);
  }
}

// The legacy nullopt wrappers share the typed boundary: anything decode_*
// refuses, deserialize_* refuses too (no second, laxer parser to attack).
TEST_F(FuzzDecode, LegacyWrappersShareTheBoundary) {
  for (const auto& m : attack::corpus::proof_mutations(valid_private_)) {
    EXPECT_EQ(deserialize_private(m.bytes).has_value(),
              decode_private(m.bytes).ok())
        << m.label;
  }
  for (const auto& m : attack::corpus::file_tag_mutations(valid_tag_)) {
    EXPECT_EQ(deserialize_file_tag(m.bytes).has_value(),
              decode_file_tag(m.bytes).ok())
        << m.label;
  }
}

// Accepted values must be *the same* values: a round-trip through decode and
// re-serialize reproduces the valid bytes exactly (canonical encodings are
// unique, so equality is the strongest possible claim).
TEST_F(FuzzDecode, ValidEncodingsRoundTripBitExactly) {
  EXPECT_EQ(serialize(*decode_basic(valid_basic_)), valid_basic_);
  EXPECT_EQ(serialize(*decode_private(valid_private_)), valid_private_);
  EXPECT_EQ(serialize(*decode_public_key(valid_pk_), /*with_privacy=*/true),
            valid_pk_);
  EXPECT_EQ(serialize(*decode_secret_key(valid_sk_)), valid_sk_);
  EXPECT_EQ(serialize(*decode_file_tag(valid_tag_)), valid_tag_);
  EXPECT_EQ(serialize(*decode_challenge(valid_challenge_)),
            valid_challenge_);
  EXPECT_EQ(serialize(*decode_aggregate_settlement(valid_aggregate_)),
            valid_aggregate_);
}

}  // namespace
}  // namespace dsaudit::audit
