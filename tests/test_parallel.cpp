// The parallel layer's two contracts, tested together:
//   1. the pool itself is a correct fork/join primitive (every index runs
//      exactly once, exceptions propagate, nesting collapses inline);
//   2. every sharded hot path is a pure optimization — msm, multi_pairing,
//      Prover::prove and the whole NetworkSim produce identical results at
//      1, 2 and 8 threads. The pre-existing naive-oracle differential tests
//      pin the sequential paths; these pin the sharded paths to them.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "audit/protocol.hpp"
#include "audit/serialize.hpp"
#include "pairing/pairing.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/network_sim.hpp"
#include "storage/codec.hpp"

namespace dsaudit {
namespace {

using audit::Challenge;
using audit::Fr;
using curve::G1;
using curve::G2;
using primitives::SecureRng;

/// Runs `body` under each thread count and hands every run's result to
/// `equal` against the single-thread baseline. Restores the environment
/// default afterwards even if an assertion throws.
template <typename Result>
void for_thread_counts(const std::function<Result()>& body,
                       const std::function<void(const Result&, const Result&,
                                                unsigned)>& equal) {
  struct Restore {
    ~Restore() { parallel::set_thread_count(0); }
  } restore;
  parallel::set_thread_count(1);
  const Result baseline = body();
  for (unsigned threads : {2u, 8u}) {
    parallel::set_thread_count(threads);
    ASSERT_EQ(parallel::thread_count(), threads);
    equal(baseline, body(), threads);
  }
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  parallel::set_thread_count(4);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel::parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  parallel::set_thread_count(0);
}

TEST(ThreadPool, RangesCoverWithoutOverlap) {
  parallel::set_thread_count(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel::parallel_for_ranges(hits.size(),
                                [&](std::size_t b, std::size_t e) {
                                  for (std::size_t i = b; i < e; ++i) {
                                    hits[i].fetch_add(1);
                                  }
                                });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  // A fixed max_chunks bounds the split regardless of pool width.
  std::atomic<int> chunks{0};
  parallel::parallel_for_ranges(
      100, [&](std::size_t, std::size_t) { chunks.fetch_add(1); }, 2);
  EXPECT_LE(chunks.load(), 2);
  parallel::set_thread_count(0);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
  parallel::set_thread_count(4);
  EXPECT_THROW(parallel::parallel_for(
                   64,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ok{0};
  parallel::parallel_for(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
  parallel::set_thread_count(0);
}

TEST(ThreadPool, FailFastStopsClaimingIndicesAfterAThrow) {
  // A failed task must not just propagate — remaining unclaimed indices are
  // abandoned, so a huge parallel_for dies promptly instead of grinding on.
  parallel::set_thread_count(4);
  constexpr std::size_t n = 100'000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(parallel::parallel_for(n,
                                      [&](std::size_t i) {
                                        if (i == 0) throw std::runtime_error("first");
                                        executed.fetch_add(1);
                                      }),
               std::runtime_error);
  // Workers in flight when the flag flips may finish their current index,
  // but the bulk of the range must never start.
  EXPECT_LT(executed.load(), n / 2);
  // The single-thread inline path fails fast trivially (index order).
  parallel::set_thread_count(1);
  executed = 0;
  EXPECT_THROW(parallel::parallel_for(n,
                                      [&](std::size_t i) {
                                        if (i == 0) throw std::runtime_error("first");
                                        executed.fetch_add(1);
                                      }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 0u);
  parallel::set_thread_count(0);
}

TEST(ThreadPool, NestedCallsRunInline) {
  parallel::set_thread_count(4);
  std::atomic<int> total{0};
  parallel::parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(parallel::in_worker());
    // The nested call must not deadlock waiting for occupied workers.
    parallel::parallel_for(5, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 20);
  EXPECT_FALSE(parallel::in_worker());
  parallel::set_thread_count(0);
}

// ---------------------------------------------------------------------------
// Cross-thread-count differential oracles.
// ---------------------------------------------------------------------------

TEST(ParallelDifferential, MsmAllPathsMatchSingleThread) {
  struct Results {
    G1 cold;
    G1 precomputed;
    G1 subset;
    G2 cold_g2;
  };
  for_thread_counts<Results>(
      [] {
        auto rng = SecureRng::deterministic(700);
        std::vector<G1> pts;
        std::vector<Fr> sc;
        for (int i = 0; i < 600; ++i) {
          pts.push_back(curve::g1_random(rng));
          sc.push_back(i % 11 == 0 ? Fr::zero() : Fr::random(rng));
        }
        sc[1] = Fr::zero() - Fr::one();  // 254-bit bound inside the shard set
        Results r;
        r.cold = curve::msm<G1>(pts, sc);
        auto tbl = curve::msm_precompute<G1>(pts);
        r.precomputed = curve::msm_precomputed(tbl, sc);
        std::vector<std::uint64_t> idx;
        std::vector<Fr> subset_sc;
        for (int i = 0; i < 300; ++i) {
          idx.push_back(static_cast<std::uint64_t>((i * 7) % pts.size()));
          subset_sc.push_back(Fr::random(rng));
        }
        r.subset = curve::msm_precomputed(tbl, idx, subset_sc);
        std::vector<G2> pts2;
        std::vector<Fr> sc2;
        for (int i = 0; i < 96; ++i) {
          pts2.push_back(curve::g2_random(rng));
          sc2.push_back(Fr::random(rng));
        }
        r.cold_g2 = curve::msm<G2>(pts2, sc2);
        return r;
      },
      [](const Results& base, const Results& got, unsigned threads) {
        EXPECT_EQ(base.cold, got.cold) << threads << " threads";
        EXPECT_EQ(base.precomputed, got.precomputed) << threads << " threads";
        EXPECT_EQ(base.subset, got.subset) << threads << " threads";
        EXPECT_EQ(base.cold_g2, got.cold_g2) << threads << " threads";
      });
}

TEST(ParallelDifferential, MultiPairingBitIdenticalAcrossThreadCounts) {
  // Sharded Miller grouping multiplies group values back together; squaring
  // distributes over products, so the result is the exact same field element
  // — assert bit-level equality, not just GT equality.
  for_thread_counts<std::vector<ff::Fp12>>(
      [] {
        auto rng = SecureRng::deterministic(701);
        std::vector<ff::Fp12> out;
        for (std::size_t n : {2u, 3u, 4u, 7u}) {
          std::vector<std::pair<G1, G2>> pairs;
          for (std::size_t i = 0; i < n; ++i) {
            pairs.emplace_back(curve::g1_random(rng), curve::g2_random(rng));
          }
          out.push_back(pairing::multi_pairing(pairs));
        }
        return out;
      },
      [](const std::vector<ff::Fp12>& base, const std::vector<ff::Fp12>& got,
         unsigned threads) {
        ASSERT_EQ(base.size(), got.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
          EXPECT_TRUE(base[i] == got[i]) << threads << " threads, product " << i;
        }
      });
}

TEST(ParallelDifferential, ProverEmitsIdenticalProofBytes) {
  struct Results {
    std::vector<std::uint8_t> basic;
    std::vector<std::uint8_t> priv;
    bool basic_ok = false;
    bool priv_ok = false;
  };
  for_thread_counts<Results>(
      [] {
        auto rng = SecureRng::deterministic(702);
        auto kp = audit::keygen(10, rng);
        std::vector<std::uint8_t> data(6000);
        rng.fill(data);
        auto file = storage::encode_file(data, 10);
        Fr name = Fr::random(rng);
        auto tag = audit::generate_tags(kp.sk, kp.pk, file, name, 4);
        audit::Prover prover(kp.pk, file, tag);
        Challenge chal;
        auto c1 = rng.bytes32(), c2 = rng.bytes32();
        std::copy(c1.begin(), c1.end(), chal.c1.begin());
        std::copy(c2.begin(), c2.end(), chal.c2.begin());
        chal.r = Fr::random(rng);
        chal.k = file.num_chunks();
        Results r;
        r.basic = audit::serialize(prover.prove(chal));
        auto proof_rng = SecureRng::deterministic(703);
        r.priv = audit::serialize(prover.prove_private(chal, proof_rng));
        audit::Verifier verifier(kp.pk);
        auto basic = audit::deserialize_basic(r.basic);
        auto priv = audit::deserialize_private(r.priv);
        r.basic_ok = basic && verifier.verify(name, file.num_chunks(), chal, *basic);
        r.priv_ok =
            priv && verifier.verify_private(name, file.num_chunks(), chal, *priv);
        return r;
      },
      [](const Results& base, const Results& got, unsigned threads) {
        EXPECT_TRUE(got.basic_ok && got.priv_ok) << threads << " threads";
        EXPECT_EQ(base.basic, got.basic) << threads << " threads";
        EXPECT_EQ(base.priv, got.priv) << threads << " threads";
      });
}

TEST(ParallelDifferential, BatchedSettlementIdenticalAcrossThreadCounts) {
  // Deferred settlement enqueues rounds from concurrent prepare stages; the
  // canonical transcript ordering inside BatchSettlement must make batch
  // outcomes, gas (with the discount row) and the ledger independent of the
  // pool width.
  struct Results {
    sim::NetworkStats stats;
    std::vector<std::uint64_t> balances;
    std::uint64_t batches = 0;
    std::uint64_t culprits = 0;
  };
  for_thread_counts<Results>(
      [] {
        sim::NetworkConfig c;
        c.num_owners = 2;
        c.num_providers = 3;
        c.file_bytes = 1000;
        c.s = 5;
        c.erasure_data = 2;
        c.erasure_parity = 1;
        c.num_audits = 2;
        c.challenged_chunks = 999;
        c.private_proofs = true;
        c.batched_settlement = true;
        c.batch_gas_discount = true;
        sim::NetworkSim net(c);
        net.set_behavior("provider-1", sim::ProviderBehavior::DropsData);
        net.deploy();
        net.run_to_completion();
        Results r;
        r.stats = net.stats();
        for (std::size_t o = 0; o < c.num_owners; ++o) {
          r.balances.push_back(net.balance("owner-" + std::to_string(o)));
        }
        for (std::size_t p = 0; p < c.num_providers; ++p) {
          r.balances.push_back(net.balance("provider-" + std::to_string(p)));
        }
        r.batches = net.batch_settlement()->stats().batches;
        r.culprits = net.batch_settlement()->stats().culprits;
        return r;
      },
      [](const Results& base, const Results& got, unsigned threads) {
        EXPECT_EQ(base.stats.passes, got.stats.passes) << threads << " threads";
        EXPECT_EQ(base.stats.fails, got.stats.fails) << threads << " threads";
        EXPECT_EQ(base.stats.total_gas, got.stats.total_gas)
            << threads << " threads";
        EXPECT_EQ(base.stats.chain_bytes, got.stats.chain_bytes)
            << threads << " threads";
        EXPECT_EQ(base.balances, got.balances) << threads << " threads";
        EXPECT_EQ(base.batches, got.batches) << threads << " threads";
        EXPECT_EQ(base.culprits, got.culprits) << threads << " threads";
      });
}

TEST(ParallelDifferential, DeployKeysTagsAndLedgerByteIdentical) {
  // deploy() shards whole deployments over the pool (per-owner derived key
  // RNGs, concurrent keygen/tagging/table builds); the emitted keys, tags
  // and the post-run ledger must be byte-identical at every pool width.
  struct Results {
    std::vector<std::vector<std::uint8_t>> pk_bytes;
    std::vector<std::vector<std::uint8_t>> tag_bytes;
    std::vector<std::uint64_t> balances;
    std::uint64_t total_gas = 0;
  };
  for_thread_counts<Results>(
      [] {
        sim::NetworkConfig c;
        c.num_owners = 3;
        c.num_providers = 3;
        c.file_bytes = 900;
        c.s = 5;
        c.erasure_data = 2;
        c.erasure_parity = 1;
        c.num_audits = 1;
        c.challenged_chunks = 999;
        c.private_proofs = true;
        sim::NetworkSim net(c);
        net.deploy();
        net.run_to_completion();
        Results r;
        for (const auto& kp : net.owner_keys()) {
          r.pk_bytes.push_back(audit::serialize(kp.pk, true));
        }
        for (std::size_t i = 0; i < net.num_deployments(); ++i) {
          r.tag_bytes.push_back(audit::serialize(net.deployment_tag(i)));
        }
        for (std::size_t o = 0; o < c.num_owners; ++o) {
          r.balances.push_back(net.balance("owner-" + std::to_string(o)));
        }
        for (std::size_t p = 0; p < c.num_providers; ++p) {
          r.balances.push_back(net.balance("provider-" + std::to_string(p)));
        }
        r.total_gas = net.stats().total_gas;
        return r;
      },
      [](const Results& base, const Results& got, unsigned threads) {
        EXPECT_EQ(base.pk_bytes, got.pk_bytes) << threads << " threads";
        EXPECT_EQ(base.tag_bytes, got.tag_bytes) << threads << " threads";
        EXPECT_EQ(base.balances, got.balances) << threads << " threads";
        EXPECT_EQ(base.total_gas, got.total_gas) << threads << " threads";
      });
}

TEST(ParallelDifferential, WindowedSettlementIdenticalAcrossThreadCounts) {
  // Inline, per-instant deferred and window=1 deferred settlement must be
  // mutually bit-identical (chain bytes, gas, ledger) AND independent of
  // the pool width — the windowed acceptance invariant, at 1/2/8 threads.
  struct Snapshot {
    sim::NetworkStats stats;
    std::vector<std::uint64_t> balances;
    std::size_t blocks = 0;
    std::size_t chain_bytes = 0;
  };
  struct Results {
    Snapshot inline_run, per_instant, window1;
  };
  auto snapshot_of = [](bool batched, chain::Timestamp window) {
    sim::NetworkConfig c;
    c.num_owners = 2;
    c.num_providers = 3;
    c.file_bytes = 1000;
    c.s = 5;
    c.erasure_data = 2;
    c.erasure_parity = 1;
    c.num_audits = 2;
    c.challenged_chunks = 999;
    c.private_proofs = true;
    c.batched_settlement = batched;
    c.settlement_window_s = window;
    sim::NetworkSim net(c);
    net.set_behavior("provider-1", sim::ProviderBehavior::DropsData);
    net.deploy();
    net.run_to_completion();
    Snapshot s;
    s.stats = net.stats();
    for (std::size_t o = 0; o < c.num_owners; ++o) {
      s.balances.push_back(net.balance("owner-" + std::to_string(o)));
    }
    for (std::size_t p = 0; p < c.num_providers; ++p) {
      s.balances.push_back(net.balance("provider-" + std::to_string(p)));
    }
    s.blocks = net.chain().blocks().size();
    s.chain_bytes = net.chain().total_chain_bytes();
    return s;
  };
  auto expect_equal = [](const Snapshot& x, const Snapshot& y,
                         const char* what) {
    EXPECT_EQ(x.stats.passes, y.stats.passes) << what;
    EXPECT_EQ(x.stats.fails, y.stats.fails) << what;
    EXPECT_EQ(x.stats.timeouts, y.stats.timeouts) << what;
    EXPECT_EQ(x.stats.total_gas, y.stats.total_gas) << what;
    EXPECT_EQ(x.chain_bytes, y.chain_bytes) << what;
    EXPECT_EQ(x.balances, y.balances) << what;
    EXPECT_EQ(x.blocks, y.blocks) << what;
  };
  for_thread_counts<Results>(
      [&] {
        Results r;
        r.inline_run = snapshot_of(false, 0);
        r.per_instant = snapshot_of(true, 0);
        r.window1 = snapshot_of(true, 1);
        expect_equal(r.inline_run, r.per_instant, "inline vs per-instant");
        expect_equal(r.inline_run, r.window1, "inline vs window=1");
        return r;
      },
      [&](const Results& base, const Results& got, unsigned threads) {
        (void)threads;
        expect_equal(base.inline_run, got.inline_run, "inline across threads");
        expect_equal(base.per_instant, got.per_instant,
                     "per-instant across threads");
        expect_equal(base.window1, got.window1, "window=1 across threads");
      });
}

TEST(ParallelDifferential, NetworkSimStatsAndLedgerIdentical) {
  struct Results {
    sim::NetworkStats stats;
    std::vector<std::uint64_t> balances;
    std::size_t blocks = 0;
  };
  for_thread_counts<Results>(
      [] {
        sim::NetworkConfig c;
        c.num_owners = 2;
        c.num_providers = 3;
        c.file_bytes = 1000;
        c.s = 5;
        c.erasure_data = 2;
        c.erasure_parity = 1;
        c.num_audits = 2;
        c.challenged_chunks = 999;
        c.private_proofs = true;
        sim::NetworkSim net(c);
        net.set_behavior("provider-1", sim::ProviderBehavior::DropsData);
        net.deploy();
        net.run_to_completion();
        Results r;
        r.stats = net.stats();
        for (std::size_t o = 0; o < c.num_owners; ++o) {
          r.balances.push_back(net.balance("owner-" + std::to_string(o)));
        }
        for (std::size_t p = 0; p < c.num_providers; ++p) {
          r.balances.push_back(net.balance("provider-" + std::to_string(p)));
        }
        r.blocks = net.chain().blocks().size();
        return r;
      },
      [](const Results& base, const Results& got, unsigned threads) {
        EXPECT_EQ(base.stats.total_rounds, got.stats.total_rounds)
            << threads << " threads";
        EXPECT_EQ(base.stats.passes, got.stats.passes) << threads << " threads";
        EXPECT_EQ(base.stats.fails, got.stats.fails) << threads << " threads";
        EXPECT_EQ(base.stats.timeouts, got.stats.timeouts)
            << threads << " threads";
        EXPECT_EQ(base.stats.total_gas, got.stats.total_gas)
            << threads << " threads";
        EXPECT_EQ(base.stats.chain_bytes, got.stats.chain_bytes)
            << threads << " threads";
        EXPECT_EQ(base.balances, got.balances) << threads << " threads";
        EXPECT_EQ(base.blocks, got.blocks) << threads << " threads";
        // And the settlement constant holds at every thread count.
        EXPECT_EQ(got.stats.total_gas, got.stats.total_rounds * 589'000u);
      });
}

}  // namespace
}  // namespace dsaudit
