// Unit and property tests for the fixed-width and variable-width bigints.
#include <gtest/gtest.h>

#include "bigint/u256.hpp"
#include "bigint/varuint.hpp"
#include "primitives/random.hpp"

namespace dsaudit::bigint {
namespace {

using primitives::SecureRng;

U256 random_u256(SecureRng& rng) {
  auto b = rng.bytes32();
  return U256::from_be_bytes(std::span<const std::uint8_t, 32>(b));
}

TEST(U256, HexRoundTrip) {
  U256 v = U256::from_hex("0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
  EXPECT_EQ(v.to_hex(),
            "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
  EXPECT_EQ(U256{}.to_hex(), "0x0");
  EXPECT_EQ(U256{1}.to_hex(), "0x1");
}

TEST(U256, DecRoundTrip) {
  const char* dec =
      "21888242871839275222246405745257275088696311157297823662689037894645226208583";
  EXPECT_EQ(U256::from_dec(dec).to_dec(), dec);
  EXPECT_EQ(U256::from_dec("0").to_dec(), "0");
  EXPECT_EQ(U256::from_dec("18446744073709551616").limb[1], 1u);  // 2^64
}

TEST(U256, HexEqualsDec) {
  // The BN254 base-field modulus, two ways.
  U256 h = U256::from_hex("30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
  U256 d = U256::from_dec(
      "21888242871839275222246405745257275088696311157297823662689037894645226208583");
  EXPECT_EQ(h, d);
}

TEST(U256, RejectsBadInput) {
  EXPECT_THROW(U256::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U256::from_hex("0xzz"), std::invalid_argument);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::invalid_argument);
  EXPECT_THROW(U256::from_dec("12a"), std::invalid_argument);
  EXPECT_THROW(U256::from_dec(std::string(80, '9')), std::invalid_argument);
}

TEST(U256, BytesRoundTrip) {
  auto rng = SecureRng::deterministic(7);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    std::array<std::uint8_t, 32> buf;
    v.to_be_bytes(buf);
    EXPECT_EQ(U256::from_be_bytes(buf), v);
  }
}

TEST(U256, AddSubInverse) {
  auto rng = SecureRng::deterministic(8);
  for (int i = 0; i < 200; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U256 sum, back;
    u64 carry = add_with_carry(a, b, sum);
    u64 borrow = sub_with_borrow(sum, b, back);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow on add <=> borrow when undoing
  }
}

TEST(U256, CompareAntisymmetric) {
  auto rng = SecureRng::deterministic(9);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    EXPECT_EQ(cmp(a, b), -cmp(b, a));
    EXPECT_EQ(cmp(a, a), 0);
  }
}

TEST(U256, ShiftConsistency) {
  auto rng = SecureRng::deterministic(10);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    a.limb[3] &= 0x7fffffffffffffffULL;  // avoid losing the top bit
    EXPECT_EQ(shr1(shl1(a)), a);
  }
}

TEST(U256, MulWideMatchesVarUInt) {
  auto rng = SecureRng::deterministic(11);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U512 wide = mul_wide(a, b);
    VarUInt prod = VarUInt{a} * VarUInt{b};
    for (int w = 0; w < 8; ++w) EXPECT_EQ(wide.limb[w], prod.limb(w));
  }
}

TEST(U256, ModAgainstVarUInt) {
  auto rng = SecureRng::deterministic(12);
  U256 m = U256::from_hex(
      "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
  for (int i = 0; i < 50; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U512 wide = mul_wide(a, b);
    U256 got = mod(wide, m);
    VarUInt expect = VarUInt::divmod(VarUInt{a} * VarUInt{b}, VarUInt{m}).second;
    EXPECT_EQ(VarUInt{got}, expect);
  }
}

TEST(U256, InvModCorrect) {
  auto rng = SecureRng::deterministic(13);
  U256 m = U256::from_hex(
      "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001");
  for (int i = 0; i < 50; ++i) {
    U256 a = mod(U512{{random_u256(rng).limb[0], random_u256(rng).limb[1],
                       random_u256(rng).limb[2], random_u256(rng).limb[3], 0, 0, 0, 0}},
                 m);
    if (a.is_zero()) continue;
    U256 inv = inv_mod(a, m);
    EXPECT_EQ(mul_mod_slow(a, inv, m), U256{1});
  }
  EXPECT_THROW(inv_mod(U256{}, m), std::domain_error);
}

TEST(U256, PowModSmallCases) {
  U256 m{1000000007};
  EXPECT_EQ(pow_mod_slow(U256{2}, U256{10}, m), U256{1024});
  EXPECT_EQ(pow_mod_slow(U256{5}, U256{0}, m), U256{1});
  // Fermat: a^(m-1) = 1 mod prime m
  EXPECT_EQ(pow_mod_slow(U256{123456}, U256{1000000006}, m), U256{1});
}

TEST(U256, MontN0Inv) {
  U256 m = U256::from_hex(
      "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
  u64 n0 = mont_n0_inv(m);
  // Definition: m[0] * (-n0) ≡ 1 (mod 2^64), i.e. m[0]*n0 ≡ -1.
  EXPECT_EQ(m.limb[0] * n0, ~0ULL);
}

TEST(U256, ExtractWindowMatchesBitLoop) {
  auto rng = SecureRng::deterministic(15);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    for (unsigned width : {1u, 3u, 8u, 13u, 16u, 31u, 64u}) {
      for (unsigned off = 0; off < 260; off += 7) {
        u64 expect = 0;
        for (unsigned b = 0; b < width && off + b < 256; ++b) {
          if (v.bit(off + b)) expect |= u64{1} << b;
        }
        EXPECT_EQ(v.extract_window(off, width), expect)
            << "off=" << off << " width=" << width;
      }
    }
  }
}

TEST(U256, ExtractWindowEdges) {
  U256 ones{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  EXPECT_EQ(ones.extract_window(0, 64), ~0ULL);
  EXPECT_EQ(ones.extract_window(192, 64), ~0ULL);
  EXPECT_EQ(ones.extract_window(255, 8), 1u);   // bits past 255 read as zero
  EXPECT_EQ(ones.extract_window(256, 8), 0u);   // fully out of range
  EXPECT_EQ(ones.extract_window(1000, 4), 0u);
  EXPECT_EQ(ones.extract_window(10, 0), 0u);    // zero width
  // Limb-straddling window: bits 60..67 of a value with limb0=2^63, limb1=5.
  U256 v{u64{1} << 63, 5, 0, 0};
  EXPECT_EQ(v.extract_window(60, 8), (5u << 4) | 0x8u);
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256{}.bit_length(), 0u);
  EXPECT_EQ(U256{1}.bit_length(), 1u);
  EXPECT_EQ(U256{0xff}.bit_length(), 8u);
  U256 p = U256::from_hex(
      "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
  EXPECT_EQ(p.bit_length(), 254u);
}

TEST(U256, MulLoMatchesWideLowHalf) {
  auto rng = SecureRng::deterministic(16);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U512 wide = mul_wide(a, b);
    U256 lo = mul_lo(a, b);
    for (int w = 0; w < 4; ++w) EXPECT_EQ(lo.limb[w], wide.limb[w]);
  }
}

TEST(U256, MulHighRoundedMatchesVarUInt) {
  auto rng = SecureRng::deterministic(17);
  // floor((a*b + 2^255) / 2^256): the rounded high half used by the GLV
  // Babai-rounding step.
  VarUInt half_shift = VarUInt::pow(VarUInt{2}, 255);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U256 got = mul_high_rounded(a, b);
    VarUInt expect = (VarUInt{a} * VarUInt{b} + half_shift).shr(256);
    EXPECT_EQ(VarUInt{got}, expect);
  }
}

TEST(U256, MulHighRoundedRoundsHalfUp) {
  // a * b = 2^255 exactly: the +2^255 bias must carry into the high half.
  U256 a{0, 0, 0, u64{1} << 63};  // 2^255
  U256 one{1};
  EXPECT_EQ(mul_high_rounded(a, one), U256{1});
  // Just below the rounding threshold: 2^255 - 1 rounds down to 0.
  U256 b{~0ULL, ~0ULL, ~0ULL, (u64{1} << 63) - 1};
  EXPECT_EQ(mul_high_rounded(b, one), U256{});
  // Carry must propagate through saturated high limbs: (2^256 - 1) * (2^256 - 1)
  // has high half 2^256 - 2 and low half 1; +2^255 does not carry. But
  // (2^256 - 1) * 2^255... keep it simple: all-ones squared.
  U256 ones{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  VarUInt expect =
      (VarUInt{ones} * VarUInt{ones} + VarUInt::pow(VarUInt{2}, 255)).shr(256);
  EXPECT_EQ(VarUInt{mul_high_rounded(ones, ones)}, expect);
}

TEST(U256, TwosComplementHelpers) {
  EXPECT_FALSE(sign_bit(U256{1}));
  EXPECT_FALSE(sign_bit(U256{}));
  EXPECT_TRUE(sign_bit(U256{0, 0, 0, u64{1} << 63}));

  // neg2c(x) + x == 0 (mod 2^256).
  auto rng = SecureRng::deterministic(18);
  for (int i = 0; i < 50; ++i) {
    U256 x = random_u256(rng);
    U256 sum;
    add_with_carry(x, neg2c(x), sum);
    EXPECT_TRUE(sum.is_zero());
  }
  EXPECT_EQ(neg2c(U256{}), U256{});
  EXPECT_EQ(neg2c(U256{1}), (U256{~0ULL, ~0ULL, ~0ULL, ~0ULL}));

  // abs2c: identity on non-negative, two's-complement negation otherwise.
  bool neg = true;
  EXPECT_EQ(abs2c(U256{42}, neg), U256{42});
  EXPECT_FALSE(neg);
  U256 minus_one{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  EXPECT_EQ(abs2c(minus_one, neg), U256{1});
  EXPECT_TRUE(neg);
  for (int i = 0; i < 50; ++i) {
    U256 x = random_u256(rng);
    bool n = false;
    U256 mag = abs2c(x, n);
    EXPECT_EQ(n, sign_bit(x));
    EXPECT_EQ(n ? neg2c(mag) : mag, x);
  }
}

TEST(VarUInt, DecRoundTrip) {
  const char* big =
      "123456789012345678901234567890123456789012345678901234567890123456789012345";
  EXPECT_EQ(VarUInt::from_dec(big).to_dec(), big);
  EXPECT_EQ(VarUInt{}.to_dec(), "0");
}

TEST(VarUInt, AddSubMul) {
  VarUInt a = VarUInt::from_dec("999999999999999999999999999999999999");
  VarUInt b = VarUInt::from_dec("1");
  EXPECT_EQ((a + b).to_dec(), "1000000000000000000000000000000000000");
  EXPECT_EQ((a + b - b), a);
  EXPECT_EQ((a * b), a);
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(VarUInt, DivModIdentity) {
  auto rng = SecureRng::deterministic(14);
  for (int i = 0; i < 50; ++i) {
    VarUInt a = VarUInt{random_u256(rng)} * VarUInt{random_u256(rng)};
    VarUInt b{random_u256(rng)};
    if (b.is_zero()) continue;
    auto [q, r] = VarUInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(VarUInt::cmp(r, b), 0);
  }
}

TEST(VarUInt, ShiftRoundTrip) {
  VarUInt v = VarUInt::from_dec("123456789123456789123456789");
  for (unsigned s : {1u, 13u, 64u, 100u, 257u}) {
    EXPECT_EQ(v.shl(s).shr(s), v);
  }
}

TEST(VarUInt, Pow) {
  EXPECT_EQ(VarUInt::pow(VarUInt{2}, 100).to_dec(), "1267650600228229401496703205376");
  EXPECT_EQ(VarUInt::pow(VarUInt{7}, 0).to_dec(), "1");
}

TEST(VarUInt, BnPolynomialIdentities) {
  // The BN254 moduli must equal their defining polynomials in t.
  VarUInt t{4965661367192848881ULL};
  VarUInt t2 = t * t, t3 = t2 * t, t4 = t3 * t;
  VarUInt p = VarUInt{36} * t4 + VarUInt{36} * t3 + VarUInt{24} * t2 +
              VarUInt{6} * t + VarUInt{1};
  VarUInt r = VarUInt{36} * t4 + VarUInt{36} * t3 + VarUInt{18} * t2 +
              VarUInt{6} * t + VarUInt{1};
  EXPECT_EQ(p.to_dec(),
            "21888242871839275222246405745257275088696311157297823662689037894645226208583");
  EXPECT_EQ(r.to_dec(),
            "21888242871839275222246405745257275088548364400416034343698204186575808495617");
}

}  // namespace
}  // namespace dsaudit::bigint
