// KZG commitment tests: correctness, homomorphism, and soundness smoke tests.
#include <gtest/gtest.h>

#include "kzg/kzg.hpp"

namespace dsaudit::kzg {
namespace {

using poly::Polynomial;
using primitives::SecureRng;

class KzgTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kMaxDegree = 32;
  void SetUp() override {
    rng_ = std::make_unique<SecureRng>(SecureRng::deterministic(80));
    alpha_ = Fr::random(*rng_);
    srs_ = make_srs(alpha_, kMaxDegree);
  }
  std::unique_ptr<SecureRng> rng_;
  Fr alpha_;
  Srs srs_;
};

TEST_F(KzgTest, CommitMatchesDirectExponentiation) {
  Polynomial p = Polynomial::random(10, *rng_);
  // C should equal g1^{P(alpha)} — checkable since the test knows alpha.
  EXPECT_EQ(commit(srs_, p), curve::G1::generator().mul(p.evaluate(alpha_)));
}

TEST_F(KzgTest, PreparedCommitMatchesCold) {
  // prepare() installs the shifted-base commitment key; commits must be
  // bit-identical to the cold MSM path on every degree.
  Srs prepared = srs_;
  prepared.prepare();
  ASSERT_NE(prepared.commit_key, nullptr);
  for (std::size_t deg : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          kMaxDegree}) {
    Polynomial p = Polynomial::random(deg, *rng_);
    EXPECT_EQ(commit(prepared, p), commit(srs_, p)) << "deg=" << deg;
  }
  // Openings verify against prepared commitments.
  Polynomial p = Polynomial::random(12, *rng_);
  auto c = commit(prepared, p);
  auto o = open(prepared, p, Fr::random(*rng_));
  EXPECT_TRUE(verify(prepared, c, o));
  // prepare() is idempotent.
  auto key = prepared.commit_key;
  prepared.prepare();
  EXPECT_EQ(prepared.commit_key, key);
}

TEST_F(KzgTest, VerifierKeyMatchesSrsPath) {
  // A standalone VerifierKey, srs.make_verifier_key(), and the Srs overload
  // (prepared or not) must all agree — they run the same prepared engine.
  Polynomial p = Polynomial::random(9, *rng_);
  G1 c = commit(srs_, p);
  Opening good = open(srs_, p, Fr::random(*rng_));
  Opening bad = good;
  bad.value = bad.value + Fr::one();

  VerifierKey vk = srs_.make_verifier_key();
  EXPECT_TRUE(verify(vk, c, good));
  EXPECT_FALSE(verify(vk, c, bad));

  Srs prepared = srs_;
  prepared.prepare();
  ASSERT_NE(prepared.verify_key, nullptr);
  EXPECT_TRUE(verify(prepared, c, good));
  EXPECT_FALSE(verify(prepared, c, bad));

  // Mutating the G2 side after prepare() must not verify against the stale
  // cached tables: the guard falls back to a fresh preparation.
  Fr k = Fr::random(*rng_);
  prepared.g2 = prepared.g2.mul(k);
  prepared.g2_alpha = prepared.g2.mul(alpha_);
  EXPECT_TRUE(verify(prepared, c, good));
  EXPECT_FALSE(verify(prepared, c, bad));
}

TEST_F(KzgTest, HandBuiltSrsWithNonGeneratorG2Verifies) {
  // An SRS whose G2 side uses a non-generator base (g2' = [k]g2,
  // g2_alpha' = [alpha]g2') still satisfies the pairing equation; the
  // prepared engine must not silently assume the standard generator.
  Fr k = Fr::random(*rng_);
  Srs odd = srs_;
  odd.g2 = srs_.g2.mul(k);
  odd.g2_alpha = odd.g2.mul(alpha_);
  Polynomial p = Polynomial::random(6, *rng_);
  G1 c = commit(odd, p);
  Opening o = open(odd, p, Fr::random(*rng_));
  EXPECT_TRUE(verify(odd, c, o));
  Opening bad = o;
  bad.witness = bad.witness + G1::generator();
  EXPECT_FALSE(verify(odd, c, bad));
}

TEST_F(KzgTest, OpenVerifiesAtRandomPoints) {
  for (std::size_t deg : {0u, 1u, 7u, 32u}) {
    Polynomial p = Polynomial::random(deg, *rng_);
    G1 c = commit(srs_, p);
    Fr r = Fr::random(*rng_);
    Opening o = open(srs_, p, r);
    EXPECT_EQ(o.value, p.evaluate(r));
    EXPECT_TRUE(verify(srs_, c, o)) << "deg=" << deg;
  }
}

TEST_F(KzgTest, RejectsWrongValue) {
  Polynomial p = Polynomial::random(8, *rng_);
  G1 c = commit(srs_, p);
  Opening o = open(srs_, p, Fr::from_u64(42));
  o.value += Fr::one();
  EXPECT_FALSE(verify(srs_, c, o));
}

TEST_F(KzgTest, RejectsWrongWitness) {
  Polynomial p = Polynomial::random(8, *rng_);
  G1 c = commit(srs_, p);
  Opening o = open(srs_, p, Fr::from_u64(42));
  o.witness = o.witness + curve::G1::generator();
  EXPECT_FALSE(verify(srs_, c, o));
}

TEST_F(KzgTest, RejectsCommitmentOfDifferentPolynomial) {
  Polynomial p = Polynomial::random(8, *rng_);
  Polynomial q = Polynomial::random(8, *rng_);
  ASSERT_NE(p, q);
  G1 c_wrong = commit(srs_, q);
  Opening o = open(srs_, p, Fr::from_u64(7));
  EXPECT_FALSE(verify(srs_, c_wrong, o));
}

TEST_F(KzgTest, CommitmentIsHomomorphic) {
  // commit(P + Q) = commit(P) + commit(Q): the algebraic property the HLA
  // aggregation in the audit protocol relies on.
  Polynomial p = Polynomial::random(6, *rng_);
  Polynomial q = Polynomial::random(9, *rng_);
  EXPECT_EQ(commit(srs_, p + q), commit(srs_, p) + commit(srs_, q));
  Fr s = Fr::random(*rng_);
  EXPECT_EQ(commit(srs_, p.scale(s)), commit(srs_, p).mul(s));
}

TEST_F(KzgTest, ZeroPolynomialEdgeCases) {
  EXPECT_TRUE(commit(srs_, Polynomial::zero()).is_infinity());
  Opening o = open(srs_, Polynomial::zero(), Fr::from_u64(3));
  EXPECT_TRUE(o.value.is_zero());
  EXPECT_TRUE(verify(srs_, curve::G1::infinity(), o));
}

TEST_F(KzgTest, DegreeBoundEnforced) {
  Polynomial too_big = Polynomial::monomial(kMaxDegree + 1);
  EXPECT_THROW(commit(srs_, too_big), std::invalid_argument);
}

TEST_F(KzgTest, OpeningAtAlphaStillVerifies) {
  // Degenerate-but-legal case: the evaluation point happens to equal alpha.
  // Then psi commits to Q of the same polynomial and e(..) holds trivially;
  // the code must not divide by zero.
  Polynomial p = Polynomial::random(5, *rng_);
  G1 c = commit(srs_, p);
  Opening o = open(srs_, p, alpha_);
  EXPECT_TRUE(verify(srs_, c, o));
}

}  // namespace
}  // namespace dsaudit::kzg
