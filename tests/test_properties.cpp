// Property-based sweeps across module boundaries: randomized serialization
// fuzzing, statistical properties of the challenge expansion, erasure-coding
// loss sweeps, and algebraic cross-identities that tie independent
// implementations together.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "audit/protocol.hpp"
#include "audit/serialize.hpp"
#include "primitives/prp.hpp"
#include "kzg/kzg.hpp"
#include "pairing/pairing.hpp"
#include "storage/erasure.hpp"

namespace dsaudit {
namespace {

using primitives::SecureRng;

// ---------------------------------------------------------------------------
// Serialization fuzzing: random byte strings must never crash decoders and
// accepted inputs must re-encode to the same bytes (canonical formats).
// ---------------------------------------------------------------------------

TEST(Fuzz, G1DecompressNeverCrashesAndIsCanonical) {
  auto rng = SecureRng::deterministic(1000);
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    std::array<std::uint8_t, 32> buf;
    rng.fill(buf);
    auto p = curve::g1_decompress(buf);
    if (p) {
      ++accepted;
      EXPECT_EQ(curve::g1_compress(*p), buf);  // canonical round-trip
      EXPECT_TRUE(p->is_on_curve());
    }
  }
  // Random x < p is on-curve with probability ~1/2 and the two top bits must
  // be clear-ish; expect a healthy mix of accept/reject.
  EXPECT_GT(accepted, 100);
  EXPECT_LT(accepted, 1900);
}

TEST(Fuzz, ProofDecodersNeverCrash) {
  auto rng = SecureRng::deterministic(1001);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> buf(96);
    rng.fill(buf);
    (void)audit::deserialize_basic(buf);
    std::vector<std::uint8_t> buf2(288);
    rng.fill(buf2);
    (void)audit::deserialize_private(buf2);
    std::vector<std::uint8_t> buf3(104);
    rng.fill(buf3);
    (void)audit::deserialize_challenge(buf3);
  }
  // Lengths other than the exact wire size are rejected outright.
  for (std::size_t len : {0u, 1u, 95u, 97u, 287u, 289u, 4096u}) {
    std::vector<std::uint8_t> buf(len, 0xab);
    EXPECT_FALSE(audit::deserialize_basic(buf).has_value());
    EXPECT_FALSE(audit::deserialize_private(buf).has_value());
  }
}

TEST(Fuzz, PublicKeyDecoderRejectsTruncations) {
  auto rng = SecureRng::deterministic(1002);
  auto kp = audit::keygen(10, rng);
  auto bytes = audit::serialize(kp.pk, true);
  for (std::size_t cut = 1; cut < bytes.size(); cut += 37) {
    std::vector<std::uint8_t> trunc(bytes.begin(), bytes.end() - cut);
    EXPECT_FALSE(audit::deserialize_public_key(trunc).has_value()) << cut;
  }
}

// ---------------------------------------------------------------------------
// Challenge expansion statistics.
// ---------------------------------------------------------------------------

TEST(Properties, ChallengeIndicesAreUniformish) {
  // Each chunk should be sampled roughly k/d of the time across many seeds —
  // a grossly biased PRP would undermine the §VI-A detection probability.
  auto rng = SecureRng::deterministic(1003);
  const std::size_t d = 40, k = 10;
  std::vector<int> hits(d, 0);
  const int rounds = 400;
  for (int round = 0; round < rounds; ++round) {
    auto c1 = rng.bytes32();
    for (auto idx : primitives::challenge_indices(c1, d, k)) hits[idx]++;
  }
  double expect = rounds * static_cast<double>(k) / d;  // 100
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_GT(hits[i], expect * 0.5) << "chunk " << i << " undersampled";
    EXPECT_LT(hits[i], expect * 1.6) << "chunk " << i << " oversampled";
  }
}

TEST(Properties, CoefficientsAreDistinctAcrossPositionsAndSeeds) {
  auto rng = SecureRng::deterministic(1004);
  std::set<std::string> seen;
  for (int seed = 0; seed < 20; ++seed) {
    auto c2 = rng.bytes32();
    for (std::uint64_t j = 0; j < 20; ++j) {
      auto coeff = ff::Fr::from_be_bytes_mod(primitives::prf_bytes(c2, j));
      EXPECT_TRUE(seen.insert(coeff.to_dec()).second);
    }
  }
}

// ---------------------------------------------------------------------------
// Erasure-coding loss sweep.
// ---------------------------------------------------------------------------

class ErasureLossSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ErasureLossSweep, RandomLossPatterns) {
  auto [k, m] = GetParam();
  auto rng = SecureRng::deterministic(1005 + k * 31 + m);
  std::vector<std::uint8_t> data(997);
  rng.fill(data);
  storage::ReedSolomon rs(k, m);
  auto shards = rs.encode(data);
  for (int trial = 0; trial < 20; ++trial) {
    // Drop a random subset of exactly m shards; reconstruction must succeed.
    std::vector<std::size_t> order(k + m);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform(i)]);
    }
    std::vector<std::optional<std::vector<std::uint8_t>>> present(k + m);
    for (int i = 0; i < k; ++i) present[order[i]] = shards[order[i]];
    auto rec = rs.reconstruct(present, data.size());
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Codings, ErasureLossSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                                           std::pair{3, 7}, std::pair{10, 4},
                                           std::pair{20, 20}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.first) + "_m" +
                                  std::to_string(info.param.second);
                         });

// ---------------------------------------------------------------------------
// Algebraic cross-identities.
// ---------------------------------------------------------------------------

TEST(Properties, KzgOpeningEqualsAuditPsiConstruction) {
  // The prover's psi is exactly a KZG opening witness: for the same
  // polynomial and point, kzg::open and the audit-side quotient-MSM must
  // produce the same group element when the SRS matches.
  auto rng = SecureRng::deterministic(1006);
  ff::Fr alpha = ff::Fr::random(rng);
  const std::size_t deg = 9;
  kzg::Srs srs = kzg::make_srs(alpha, deg);
  poly::Polynomial p = poly::Polynomial::random(deg, rng);
  ff::Fr r = ff::Fr::random(rng);
  kzg::Opening o = kzg::open(srs, p, r);
  // Recompute the witness the audit-prover way.
  auto [q, y] = p.divide_by_linear(r);
  auto qc = q.coefficients();
  curve::G1 psi = curve::msm<curve::G1>(
      std::span<const curve::G1>(srs.g1_powers.data(), qc.size()), qc);
  EXPECT_EQ(o.witness, psi);
  EXPECT_EQ(o.value, y);
}

TEST(Properties, InverseAgreesWithFermat) {
  auto rng = SecureRng::deterministic(1007);
  for (int i = 0; i < 50; ++i) {
    ff::Fp a = ff::Fp::random(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a.inverse(), a.inverse_fermat());
  }
  EXPECT_TRUE(ff::Fp::zero().inverse().is_zero());
}

TEST(Properties, SparseLineMulMatchesGenericMul) {
  auto rng = SecureRng::deterministic(1008);
  for (int i = 0; i < 20; ++i) {
    ff::Fp12 f = ff::Fp12::random(rng);
    ff::Fp2 a = ff::Fp2::random(rng);
    ff::Fp2 b = ff::Fp2::random(rng);
    ff::Fp2 c = ff::Fp2::random(rng);
    ff::Fp12 sparse{ff::Fp6{a, ff::Fp2::zero(), ff::Fp2::zero()},
                    ff::Fp6{b, c, ff::Fp2::zero()}};
    EXPECT_EQ(f.mul_by_line(a, b, c), f * sparse);
  }
}

TEST(Properties, GtElementsHaveOrderR) {
  // Every pairing output lies in the order-r subgroup: g^r == 1 and
  // g^{r-1} == g^{-1} == conj(g).
  auto rng = SecureRng::deterministic(1009);
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  EXPECT_TRUE(g.pow_u256(ff::Fr::modulus()).is_one());
  ff::U256 rm1;
  bigint::sub_with_borrow(ff::Fr::modulus(), ff::U256{1}, rm1);
  EXPECT_EQ(g.pow_u256(rm1), g.conjugate());
  EXPECT_EQ(g * g.conjugate(), ff::Fp12::one());
}

TEST(Properties, AuthenticatorHomomorphism) {
  // sigma_i * sigma_j under challenge weights equals the authenticator of the
  // weighted polynomial sum — the core HLA property, checked directly against
  // the secret key (test-only knowledge).
  auto rng = SecureRng::deterministic(1010);
  auto kp = audit::keygen(4, rng);
  std::vector<std::uint8_t> data(400);
  rng.fill(data);
  auto file = storage::encode_file(data, 4);
  auto name = ff::Fr::random(rng);
  auto tag = audit::generate_tags(kp.sk, kp.pk, file, name);
  ASSERT_GE(file.num_chunks(), 2u);

  ff::Fr c0 = ff::Fr::random(rng), c1 = ff::Fr::random(rng);
  curve::G1 combined = tag.sigmas[0].mul(c0) + tag.sigmas[1].mul(c1);
  // Recompute from scratch: (g1^{c0 M_0(a) + c1 M_1(a)} * H0^{c0} H1^{c1})^x.
  ff::Fr m = ff::Fr::zero();
  ff::Fr power = ff::Fr::one();
  for (std::size_t l = 0; l < 4; ++l) {
    m += (c0 * file.chunks[0][l] + c1 * file.chunks[1][l]) * power;
    power *= kp.sk.alpha;
  }
  curve::G1 expect = (curve::G1::generator().mul(m) +
                      audit::chunk_hash(name, 0).mul(c0) +
                      audit::chunk_hash(name, 1).mul(c1))
                         .mul(kp.sk.x);
  EXPECT_EQ(combined, expect);
}

// ---------------------------------------------------------------------------
// GT multi-exponentiation: Fp12::multi_pow pinned bit-identical to the
// retained naive per-element ladder, across batch shapes and exponent edge
// cases, plus GT-subgroup closure.
// ---------------------------------------------------------------------------

/// Random GT elements: powers of one pairing output (stays in the order-r
/// cyclotomic subgroup, the multi_pow contract).
std::vector<ff::Fp12> random_gt_elements(std::size_t n, const ff::Fp12& g,
                                         SecureRng& rng) {
  std::vector<ff::Fp12> out(n);
  for (auto& b : out) {
    b = g.cyclotomic_pow_u256(ff::Fr::random(rng).to_u256());
  }
  return out;
}

TEST(GtMultiExp, MatchesNaivePerElementOracle) {
  auto rng = SecureRng::deterministic(1100);
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  ff::U256 rm1;
  bigint::sub_with_borrow(ff::Fr::modulus(), ff::U256{1}, rm1);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{17}, std::size_t{64}}) {
    auto bases = random_gt_elements(n, g, rng);
    std::vector<ff::U256> exps(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Cycle the edge exponents through every batch position across sizes:
      // 0, 1, r-1 (the conjugate), dense 128-bit, dense 64-bit.
      switch ((i + n) % 5) {
        case 0: exps[i] = ff::U256{}; break;
        case 1: exps[i] = ff::U256{1}; break;
        case 2: exps[i] = rm1; break;
        case 3: exps[i] = ff::U256{rng.next_u64(), rng.next_u64(), 0, 0}; break;
        default: exps[i] = ff::U256{rng.next_u64()}; break;
      }
    }
    ff::Fp12 expect = ff::Fp12::one();
    for (std::size_t i = 0; i < n; ++i) {
      expect *= bases[i].cyclotomic_pow_u256(exps[i]);
    }
    ff::Fp12 got = ff::Fp12::multi_pow(bases, exps);
    EXPECT_TRUE(got == expect) << "n=" << n;  // bit-identical field element
  }
}

TEST(GtMultiExp, HomogeneousEdgeExponents) {
  auto rng = SecureRng::deterministic(1101);
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  auto bases = random_gt_elements(5, g, rng);
  // All-zero exponents: the empty product.
  std::vector<ff::U256> zeros(bases.size(), ff::U256{});
  EXPECT_TRUE(ff::Fp12::multi_pow(bases, zeros).is_one());
  // All-one exponents: the plain product.
  std::vector<ff::U256> ones(bases.size(), ff::U256{1});
  ff::Fp12 prod = ff::Fp12::one();
  for (const auto& b : bases) prod *= b;
  EXPECT_TRUE(ff::Fp12::multi_pow(bases, ones) == prod);
  // r-1 on every slot: the product of conjugates (g^{r-1} = g^{-1} in GT).
  ff::U256 rm1;
  bigint::sub_with_borrow(ff::Fr::modulus(), ff::U256{1}, rm1);
  std::vector<ff::U256> invs(bases.size(), rm1);
  ff::Fp12 conj = ff::Fp12::one();
  for (const auto& b : bases) conj *= b.conjugate();
  EXPECT_TRUE(ff::Fp12::multi_pow(bases, invs) == conj);
  // Identity bases contribute nothing.
  std::vector<ff::Fp12> units(3, ff::Fp12::one());
  std::vector<ff::U256> exps(3, ff::U256{rng.next_u64()});
  EXPECT_TRUE(ff::Fp12::multi_pow(units, exps).is_one());
  // Length mismatch is an error, not a silent truncation.
  EXPECT_THROW(ff::Fp12::multi_pow(bases, std::span<const ff::U256>(ones.data(), 2)),
               std::invalid_argument);
}

TEST(GtMultiExp, SignedMatchesUnsignedTables) {
  // The signed-digit Straus engine (half-size tables, conjugate negatives)
  // must agree with the retained unsigned-window engine on every batch shape
  // and on carry-adversarial exponents (all-ones windows force the signed
  // recoder to carry through the entire length).
  auto rng = SecureRng::deterministic(1103);
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  ff::U256 rm1;
  bigint::sub_with_borrow(ff::Fr::modulus(), ff::U256{1}, rm1);
  for (std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{16},
                        std::size_t{64}, std::size_t{129}}) {
    auto bases = random_gt_elements(n, g, rng);
    std::vector<ff::U256> exps(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 6) {
        case 0: exps[i] = rm1; break;
        case 1: exps[i] = ff::U256{}; break;
        case 2:
          // All-ones to the 253-bit line: worst-case carry chain.
          exps[i] = ff::U256{~0ULL, ~0ULL, ~0ULL, 0x1fffffffffffffffULL};
          break;
        case 3: exps[i] = ff::U256{1, 0, 0, 0x2000000000000000ULL}; break;
        default: exps[i] = ff::Fr::random(rng).to_u256(); break;
      }
    }
    ff::Fp12 s = ff::Fp12::multi_pow(bases, exps);
    ff::Fp12 u = ff::Fp12::multi_pow_unsigned(bases, exps);
    EXPECT_TRUE(s == u) << "n=" << n;
    // And both match the per-element ladder product.
    ff::Fp12 expect = ff::Fp12::one();
    for (std::size_t i = 0; i < n; ++i) {
      expect *= bases[i].cyclotomic_pow_u256(exps[i]);
    }
    EXPECT_TRUE(s == expect) << "n=" << n;
  }
}

TEST(GtMultiExp, PowU64DelegatesToU256) {
  // Satellite check for the folded ladders: the u64 entry point is the u256
  // ladder on a one-limb exponent, bit for bit.
  auto rng = SecureRng::deterministic(1104);
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  for (std::uint64_t e : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
                          ~std::uint64_t{0}, rng.next_u64()}) {
    EXPECT_TRUE(g.cyclotomic_pow_u64(e) == g.cyclotomic_pow_u256(ff::U256{e}));
  }
}

TEST(GtMultiExp, SubgroupClosure) {
  // multi_pow over GT inputs stays in GT: the order-r subgroup membership
  // test (cyclotomic identity + order check) accepts every output.
  auto rng = SecureRng::deterministic(1102);
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  auto bases = random_gt_elements(9, g, rng);
  std::vector<ff::U256> exps(bases.size());
  for (auto& e : exps) e = ff::U256{rng.next_u64(), rng.next_u64(), 0, 0};
  ff::Fp12 out = ff::Fp12::multi_pow(bases, exps);
  EXPECT_TRUE(pairing::gt_in_subgroup(out));
  EXPECT_TRUE(out.pow_u256(ff::Fr::modulus()).is_one());
}

TEST(Properties, CodecPreservesArbitrarySizes) {
  auto rng = SecureRng::deterministic(1011);
  for (int i = 0; i < 40; ++i) {
    std::size_t size = rng.uniform(5000);
    std::size_t s = 1 + rng.uniform(64);
    std::vector<std::uint8_t> data(size);
    rng.fill(data);
    auto file = storage::encode_file(data, s);
    EXPECT_EQ(storage::decode_file(file), data) << "size=" << size << " s=" << s;
  }
}

}  // namespace
}  // namespace dsaudit
