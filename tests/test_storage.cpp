// Storage substrate tests: codec, GF(256), Reed–Solomon, Chord DHT.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "storage/codec.hpp"
#include "storage/dht.hpp"
#include "storage/erasure.hpp"
#include "storage/gf256.hpp"

namespace dsaudit::storage {
namespace {

using primitives::SecureRng;

std::vector<std::uint8_t> random_bytes(std::size_t n, SecureRng& rng) {
  std::vector<std::uint8_t> v(n);
  rng.fill(v);
  return v;
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(Codec, RoundTripVariousSizes) {
  auto rng = SecureRng::deterministic(90);
  for (std::size_t size : {0u, 1u, 30u, 31u, 32u, 1000u, 4096u, 10000u}) {
    for (std::size_t s : {1u, 2u, 50u}) {
      auto data = random_bytes(size, rng);
      EncodedFile f = encode_file(data, s);
      EXPECT_EQ(decode_file(f), data) << "size=" << size << " s=" << s;
      // Structural invariants.
      EXPECT_EQ(f.s, s);
      for (const auto& chunk : f.chunks) EXPECT_EQ(chunk.size(), s);
      std::size_t expected_blocks = size == 0 ? 1 : (size + 30) / 31;
      EXPECT_EQ(f.num_blocks, expected_blocks);
      EXPECT_EQ(f.num_chunks(), (expected_blocks + s - 1) / s);
    }
  }
}

TEST(Codec, RejectsZeroS) {
  std::vector<std::uint8_t> d{1, 2, 3};
  EXPECT_THROW(encode_file(d, 0), std::invalid_argument);
}

TEST(Codec, BlocksAreCanonicalFieldElements) {
  auto rng = SecureRng::deterministic(91);
  auto data = random_bytes(310, rng);
  EncodedFile f = encode_file(data, 5);
  // 31-byte packing leaves the top byte zero: values < 2^248 < r.
  for (const auto& chunk : f.chunks) {
    for (const auto& b : chunk) {
      EXPECT_EQ(b.to_bytes()[0], 0);
    }
  }
}

TEST(Codec, EncryptionRoundTripAndKeySeparation) {
  auto rng = SecureRng::deterministic(92);
  auto plain = random_bytes(500, rng);
  std::array<std::uint8_t, 32> key{};
  key[0] = 7;
  auto buf = plain;
  encrypt_in_place(buf, key, 1);
  EXPECT_NE(buf, plain);
  // Different file id -> different keystream.
  auto buf2 = plain;
  encrypt_in_place(buf2, key, 2);
  EXPECT_NE(buf, buf2);
  decrypt_in_place(buf, key, 1);
  EXPECT_EQ(buf, plain);
}

// ---------------------------------------------------------------------------
// GF(2^8)
// ---------------------------------------------------------------------------

TEST(Gf256Field, FieldAxiomsExhaustiveInverse) {
  for (int a = 1; a < 256; ++a) {
    auto ai = Gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), ai), 1) << "a=" << a;
  }
  EXPECT_THROW(Gf256::inv(0), std::domain_error);
  EXPECT_THROW(Gf256::div(1, 0), std::domain_error);
}

TEST(Gf256Field, MulProperties) {
  auto rng = SecureRng::deterministic(93);
  for (int i = 0; i < 200; ++i) {
    auto a = static_cast<std::uint8_t>(rng.uniform(256));
    auto b = static_cast<std::uint8_t>(rng.uniform(256));
    auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    EXPECT_EQ(Gf256::mul(a, Gf256::mul(b, c)), Gf256::mul(Gf256::mul(a, b), c));
    // Distributivity over xor-addition.
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
    EXPECT_EQ(Gf256::mul(a, 1), a);
    EXPECT_EQ(Gf256::mul(a, 0), 0);
  }
}

TEST(Gf256Field, PowMatchesRepeatedMul) {
  for (unsigned e = 0; e < 10; ++e) {
    std::uint8_t acc = 1;
    for (unsigned i = 0; i < e; ++i) acc = Gf256::mul(acc, 3);
    EXPECT_EQ(Gf256::pow(3, e), acc);
  }
  EXPECT_EQ(Gf256::pow(0, 0), 1);
  EXPECT_EQ(Gf256::pow(0, 5), 0);
}

// ---------------------------------------------------------------------------
// Reed–Solomon
// ---------------------------------------------------------------------------

TEST(Erasure, EncodeIsSystematic) {
  auto rng = SecureRng::deterministic(94);
  auto data = random_bytes(100, rng);
  ReedSolomon rs(4, 2);
  auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), 6u);
  // First k shards are the data verbatim (zero-padded).
  std::size_t shard_len = shards[0].size();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(shards[i / shard_len][i % shard_len], data[i]);
  }
}

TEST(Erasure, ReconstructFromAnyKShards) {
  auto rng = SecureRng::deterministic(95);
  auto data = random_bytes(317, rng);  // deliberately not divisible by k
  ReedSolomon rs(3, 7);                // the paper's 3-out-of-10 example
  auto shards = rs.encode(data);
  // Try every 3-subset of the 10 shards.
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      for (std::size_t c = b + 1; c < 10; ++c) {
        std::vector<std::optional<std::vector<std::uint8_t>>> present(10);
        present[a] = shards[a];
        present[b] = shards[b];
        present[c] = shards[c];
        auto rec = rs.reconstruct(present, data.size());
        ASSERT_TRUE(rec.has_value()) << a << "," << b << "," << c;
        EXPECT_EQ(*rec, data) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Erasure, FailsBelowThreshold) {
  auto rng = SecureRng::deterministic(96);
  auto data = random_bytes(64, rng);
  ReedSolomon rs(4, 2);
  auto shards = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> present(6);
  present[0] = shards[0];
  present[3] = shards[3];
  present[5] = shards[5];  // only 3 of 4 required
  EXPECT_FALSE(rs.reconstruct(present, data.size()).has_value());
}

TEST(Erasure, IndexedReconstructMatchesDenseForm) {
  auto rng = SecureRng::deterministic(101);
  auto data = random_bytes(317, rng);
  ReedSolomon rs(3, 7);
  auto shards = rs.encode(data);
  // Sparse gather in arbitrary order, parity-heavy subset.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> survivors{
      {9, shards[9]}, {0, shards[0]}, {5, shards[5]}};
  auto rec = rs.reconstruct(survivors, data.size());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, data);
  // Extra shards beyond k are fine too.
  survivors.push_back({3, shards[3]});
  EXPECT_EQ(*rs.reconstruct(survivors, data.size()), data);
}

TEST(Erasure, IndexedReconstructRejectsBadIndices) {
  auto rng = SecureRng::deterministic(102);
  auto data = random_bytes(64, rng);
  ReedSolomon rs(2, 2);
  auto shards = rs.encode(data);
  // Duplicate index: must throw, never decode garbage. (The repair path
  // feeds this from per-provider survivor lists — a double-count would
  // silently fabricate data.)
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> dup{
      {1, shards[1]}, {1, shards[1]}};
  EXPECT_THROW(rs.reconstruct(dup, data.size()), std::invalid_argument);
  // Out-of-range index.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> oob{
      {0, shards[0]}, {4, shards[1]}};
  EXPECT_THROW(rs.reconstruct(oob, data.size()), std::invalid_argument);
  // Fewer than k distinct shards: nullopt, not a throw.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> thin{
      {3, shards[3]}};
  EXPECT_FALSE(rs.reconstruct(thin, data.size()).has_value());
}

TEST(Erasure, ParameterValidation) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  ReedSolomon rs(2, 1);
  std::vector<std::optional<std::vector<std::uint8_t>>> wrong(5);
  EXPECT_THROW(rs.reconstruct(wrong, 10), std::invalid_argument);
}

TEST(Erasure, NoParityDegenerate) {
  auto rng = SecureRng::deterministic(97);
  auto data = random_bytes(50, rng);
  ReedSolomon rs(5, 0);
  auto shards = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> present(5);
  for (std::size_t i = 0; i < 5; ++i) present[i] = shards[i];
  EXPECT_EQ(*rs.reconstruct(present, data.size()), data);
}

// ---------------------------------------------------------------------------
// Chord DHT
// ---------------------------------------------------------------------------

TEST(Dht, LookupFindsResponsibleNode) {
  ChordRing ring;
  std::vector<NodeId> ids;
  for (int i = 0; i < 50; ++i) ids.push_back(ring.join("provider-" + std::to_string(i)));
  EXPECT_EQ(ring.size(), 50u);
  auto rng = SecureRng::deterministic(98);
  for (int i = 0; i < 100; ++i) {
    NodeId key = rng.next_u64();
    auto res = ring.lookup(key);
    // The responsible node is the clockwise successor: no other node lies in
    // (key, responsible).
    for (NodeId other : ids) {
      if (other == res.responsible) continue;
      bool between = res.responsible >= key ? (other > key && other < res.responsible)
                                            : (other > key || other < res.responsible);
      EXPECT_FALSE(between);
    }
  }
}

TEST(Dht, RoutingIsLogarithmic) {
  ChordRing ring;
  for (int i = 0; i < 128; ++i) ring.join("node-" + std::to_string(i));
  auto rng = SecureRng::deterministic(99);
  std::size_t total_hops = 0;
  constexpr int kLookups = 200;
  for (int i = 0; i < kLookups; ++i) {
    total_hops += ring.lookup(rng.next_u64()).hops;
  }
  double avg = static_cast<double>(total_hops) / kLookups;
  // log2(128) = 7; Chord averages ~log2(n)/2. Generous upper bound.
  EXPECT_LE(avg, 14.0);
  EXPECT_GE(avg, 1.0);
}

TEST(Dht, JoinLeaveConsistency) {
  ChordRing ring;
  NodeId a = ring.join("a");
  NodeId b = ring.join("b");
  ring.join("c");
  NodeId key = a;  // lookup of an existing id returns that node
  EXPECT_EQ(ring.lookup(key).responsible, a);
  ring.leave(a);
  EXPECT_FALSE(ring.contains(a));
  EXPECT_NE(ring.lookup(key).responsible, a);
  EXPECT_THROW(ring.leave(a), std::invalid_argument);
  EXPECT_EQ(ring.node_name(b).value(), "b");
  EXPECT_FALSE(ring.node_name(a).has_value());
}

TEST(Dht, SuccessorsDistinctAndOrdered) {
  ChordRing ring;
  for (int i = 0; i < 20; ++i) ring.join("p" + std::to_string(i));
  auto succ = ring.successors(ring_hash("some-file"), 10);
  EXPECT_EQ(succ.size(), 10u);
  std::set<NodeId> uniq(succ.begin(), succ.end());
  EXPECT_EQ(uniq.size(), 10u);
  // Requesting more than ring size clamps.
  EXPECT_EQ(ring.successors(0, 100).size(), 20u);
}

TEST(Dht, LookupStaysCorrectAcrossLeaveAndRejoin) {
  // The repair path re-runs successor lookups after churn: ownership must
  // hand over to the clockwise successor on leave and hand back on rejoin.
  ChordRing ring;
  std::map<NodeId, std::string> ids;
  for (int i = 0; i < 12; ++i) {
    std::string name = "churn-" + std::to_string(i);
    ids[ring.join(name)] = name;
  }
  auto rng = SecureRng::deterministic(103);
  std::vector<NodeId> keys;
  for (int i = 0; i < 40; ++i) keys.push_back(rng.next_u64());

  auto owner_of = [&](NodeId key) { return ring.lookup(key).responsible; };
  std::map<NodeId, NodeId> before;
  for (NodeId k : keys) before[k] = owner_of(k);

  // Drop one node: exactly its keys move, everyone else's stay put.
  NodeId gone = before.begin()->second;
  ring.leave(gone);
  for (NodeId k : keys) {
    NodeId now = owner_of(k);
    if (before[k] == gone) {
      EXPECT_NE(now, gone);
    } else {
      EXPECT_EQ(now, before[k]) << "unrelated key moved on leave";
    }
  }

  // Rejoin under the same name: same ring id (ids are name hashes), so the
  // original ownership map is restored exactly.
  NodeId back = ring.join(ids.at(gone));
  EXPECT_EQ(back, gone);
  for (NodeId k : keys) {
    EXPECT_EQ(owner_of(k), before[k]) << "ownership not restored on rejoin";
  }
}

TEST(Dht, EmptyRingThrows) {
  ChordRing ring;
  EXPECT_THROW(ring.lookup(1), std::logic_error);
  EXPECT_THROW(ring.successors(1, 1), std::logic_error);
}

TEST(Dht, SingleNodeOwnsEverything) {
  ChordRing ring;
  NodeId solo = ring.join("solo");
  auto rng = SecureRng::deterministic(100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.lookup(rng.next_u64()).responsible, solo);
  }
}

}  // namespace
}  // namespace dsaudit::storage
