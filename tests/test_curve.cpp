// Group-law, hashing, compression and MSM tests for G1/G2.
#include <gtest/gtest.h>

#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "curve/glv.hpp"
#include "curve/params_check.hpp"
#include "field/sqrt.hpp"

namespace dsaudit::curve {
namespace {

using ff::Fr;
using primitives::SecureRng;

TEST(Params, Bn254SelfCheck) {
  EXPECT_NO_THROW(validate_bn254_parameters());
}

template <typename G>
class GroupLaw : public ::testing::Test {
 public:
  static G random(SecureRng& rng) { return G::generator().mul(Fr::random(rng)); }
};

using Groups = ::testing::Types<G1, G2>;
TYPED_TEST_SUITE(GroupLaw, Groups);

TYPED_TEST(GroupLaw, GeneratorOnCurve) {
  EXPECT_TRUE(TypeParam::generator().is_on_curve());
  EXPECT_TRUE(TypeParam::infinity().is_on_curve());
  EXPECT_TRUE(TypeParam::infinity().is_infinity());
}

TYPED_TEST(GroupLaw, AbelianGroupAxioms) {
  auto rng = SecureRng::deterministic(41);
  for (int i = 0; i < 10; ++i) {
    TypeParam p = this->random(rng);
    TypeParam q = this->random(rng);
    TypeParam r = this->random(rng);
    EXPECT_TRUE((p + q).is_on_curve());
    EXPECT_EQ(p + q, q + p);
    EXPECT_EQ((p + q) + r, p + (q + r));
    EXPECT_EQ(p + TypeParam::infinity(), p);
    EXPECT_TRUE((p + (-p)).is_infinity());
    EXPECT_EQ(p - q, p + (-q));
  }
}

TYPED_TEST(GroupLaw, DoublingConsistent) {
  auto rng = SecureRng::deterministic(42);
  TypeParam p = this->random(rng);
  EXPECT_EQ(p.dbl(), p + p);
  EXPECT_EQ(p.dbl().dbl(), p + p + p + p);
  EXPECT_TRUE(TypeParam::infinity().dbl().is_infinity());
  // Adding a point to itself must fall back to doubling.
  TypeParam q = p;
  EXPECT_EQ(p + q, p.dbl());
}

TYPED_TEST(GroupLaw, ScalarMulMatchesRepeatedAdd) {
  auto rng = SecureRng::deterministic(43);
  TypeParam p = this->random(rng);
  TypeParam acc = TypeParam::infinity();
  for (int k = 0; k <= 20; ++k) {
    EXPECT_EQ(p.mul(Fr::from_u64(k)), acc) << "k=" << k;
    acc += p;
  }
}

TYPED_TEST(GroupLaw, ScalarMulHomomorphism) {
  auto rng = SecureRng::deterministic(44);
  TypeParam p = this->random(rng);
  Fr a = Fr::random(rng), b = Fr::random(rng);
  EXPECT_EQ(p.mul(a) + p.mul(b), p.mul(a + b));
  EXPECT_EQ(p.mul(a).mul(b), p.mul(a * b));
}

TYPED_TEST(GroupLaw, OrderIsR) {
  auto rng = SecureRng::deterministic(45);
  TypeParam p = this->random(rng);
  EXPECT_TRUE(p.mul(Fr::modulus()).is_infinity());
}

TEST(G1Hash, DeterministicAndOnCurve) {
  G1 a = hash_to_g1("name||0");
  G1 b = hash_to_g1("name||0");
  G1 c = hash_to_g1("name||1");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.is_on_curve());
  EXPECT_TRUE(c.is_on_curve());
  EXPECT_FALSE(a.is_infinity());
}

TEST(G1Hash, ManyInputsAllValid) {
  for (int i = 0; i < 100; ++i) {
    std::string s = "file-xyz||" + std::to_string(i);
    G1 p = hash_to_g1(s);
    EXPECT_TRUE(p.is_on_curve());
    EXPECT_FALSE(p.is_infinity());
  }
}

TEST(G1Compress, RoundTrip) {
  auto rng = SecureRng::deterministic(46);
  for (int i = 0; i < 30; ++i) {
    G1 p = g1_random(rng);
    auto bytes = g1_compress(p);
    auto q = g1_decompress(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, p);
  }
  // Infinity round-trips.
  auto inf_bytes = g1_compress(G1::infinity());
  auto inf = g1_decompress(inf_bytes);
  ASSERT_TRUE(inf.has_value());
  EXPECT_TRUE(inf->is_infinity());
}

TEST(G1Compress, RejectsMalformed) {
  std::array<std::uint8_t, 32> bad{};
  bad.fill(0xff);  // x >= p with flag bits set oddly
  EXPECT_FALSE(g1_decompress(bad).has_value());
  // x = p (non-canonical)
  auto pbytes = ff::Fp::modulus();
  std::array<std::uint8_t, 32> buf;
  pbytes.to_be_bytes(buf);
  EXPECT_FALSE(g1_decompress(buf).has_value());
  // infinity flag with non-zero payload
  std::array<std::uint8_t, 32> inf_bad{};
  inf_bad[0] = 0x80;
  inf_bad[31] = 1;
  EXPECT_FALSE(g1_decompress(inf_bad).has_value());
}

TEST(G2Compress, RoundTrip) {
  auto rng = SecureRng::deterministic(47);
  for (int i = 0; i < 10; ++i) {
    G2 p = g2_random(rng);
    auto bytes = g2_compress(p);
    auto q = g2_decompress(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, p);
  }
  auto inf = g2_decompress(g2_compress(G2::infinity()));
  ASSERT_TRUE(inf.has_value());
  EXPECT_TRUE(inf->is_infinity());
}

TEST(G2Subgroup, GeneratorInButTwistPointOut) {
  EXPECT_TRUE(g2_in_subgroup(G2::generator()));
  // A point on the twist but outside the r-subgroup: found by hashing x
  // candidates on the twist and excluding the subgroup. The twist's order is
  // r * c2 with c2 > 1, so a random twist point is in the subgroup with
  // negligible probability.
  auto rng = SecureRng::deterministic(48);
  for (int tries = 0; tries < 50; ++tries) {
    ff::Fp2 x = ff::Fp2::random(rng);
    ff::Fp2 rhs = x.square() * x + G2Tag::curve_b();
    auto y = ff::sqrt(rhs);
    if (!y) continue;
    G2 p{x, *y};
    EXPECT_TRUE(p.is_on_curve());
    EXPECT_FALSE(g2_in_subgroup(p));
    // And decompression must reject its encoding.
    EXPECT_FALSE(g2_decompress(g2_compress(p)).has_value());
    return;
  }
  FAIL() << "no twist point found in 50 attempts (sqrt broken?)";
}

TEST(G2Frobenius, MatchesScalarP) {
  auto rng = SecureRng::deterministic(49);
  Fr p_mod_r = Fr::from_u256(ff::Fp::modulus());
  for (int i = 0; i < 5; ++i) {
    G2 q = g2_random(rng);
    EXPECT_EQ(g2_frobenius(q), q.mul(p_mod_r));
    EXPECT_EQ(g2_frobenius2(q), g2_frobenius(g2_frobenius(q)));
  }
  EXPECT_TRUE(g2_frobenius(G2::infinity()).is_infinity());
}

// ---------------------------------------------------------------------------
// Fast-path differential tests: every optimized route must be bit-identical
// to the retained naive reference.
// ---------------------------------------------------------------------------

TYPED_TEST(GroupLaw, WnafMulMatchesDoubleAndAdd) {
  auto rng = SecureRng::deterministic(53);
  TypeParam p = this->random(rng);
  // Random scalars plus the adversarial shapes for signed-digit recoding:
  // all-ones windows, single bits, values near the modulus, and the full
  // 256-bit range (wNAF must handle the transient overflow past 2^256).
  std::vector<ff::U256> ks;
  for (int i = 0; i < 10; ++i) ks.push_back(Fr::random(rng).to_u256());
  ks.push_back(ff::U256{0});
  ks.push_back(ff::U256{1});
  ks.push_back(ff::U256{31});   // 11111b: max-magnitude wNAF digit
  ks.push_back(ff::U256{0xffffffffffffffffULL, 0xffffffffffffffffULL,
                        0xffffffffffffffffULL, 0xffffffffffffffffULL});
  ks.push_back(Fr::modulus());
  for (unsigned b : {1u, 63u, 64u, 127u, 254u, 255u}) {
    ff::U256 k;
    k.limb[b / 64] = std::uint64_t{1} << (b % 64);
    ks.push_back(k);
  }
  for (const auto& k : ks) {
    EXPECT_EQ(p.mul(k), p.mul_naive(k)) << "k=" << k.to_hex();
  }
  EXPECT_TRUE(TypeParam::infinity().mul(ks[0]).is_infinity());
}

TYPED_TEST(GroupLaw, MixedAddMatchesGeneralAdd) {
  auto rng = SecureRng::deterministic(54);
  TypeParam p = this->random(rng);
  TypeParam q = this->random(rng);
  auto qa = q.to_affine_point();
  EXPECT_EQ(p.mixed_add(qa), p + q);
  // Edge cases: infinity operands, doubling, cancellation.
  EXPECT_EQ(TypeParam::infinity().mixed_add(qa), q);
  EXPECT_EQ(p.mixed_add(typename TypeParam::Affine{}), p);
  EXPECT_EQ(q.mixed_add(qa), q.dbl());
  EXPECT_TRUE((-q).mixed_add(qa).is_infinity());
}

TYPED_TEST(GroupLaw, BatchToAffineMatchesElementwise) {
  auto rng = SecureRng::deterministic(55);
  std::vector<TypeParam> pts;
  for (int i = 0; i < 9; ++i) {
    pts.push_back(this->random(rng));
    if (i % 3 == 1) pts.push_back(TypeParam::infinity());
  }
  auto affs = TypeParam::batch_to_affine(pts);
  ASSERT_EQ(affs.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(affs[i].is_infinity(), pts[i].is_infinity());
    EXPECT_EQ(TypeParam::from_affine(affs[i]), pts[i]);
  }
}

TEST(FixedBase, MatchesGenericMul) {
  auto rng = SecureRng::deterministic(56);
  for (int i = 0; i < 10; ++i) {
    Fr k = Fr::random(rng);
    EXPECT_EQ(g1_mul_generator(k), G1::generator().mul_naive(k));
    EXPECT_EQ(g2_mul_generator(k), G2::generator().mul_naive(k));
  }
  EXPECT_TRUE(g1_mul_generator(Fr::zero()).is_infinity());
  EXPECT_EQ(g1_mul_generator(Fr::one()), G1::generator());
  EXPECT_TRUE(g2_mul_generator(Fr::zero()).is_infinity());
  EXPECT_EQ(g2_mul_generator(Fr::one()), G2::generator());
  // Non-default widths agree too.
  FixedBaseTable<G1> narrow(G1::generator(), 4);
  Fr k = Fr::random(rng);
  EXPECT_EQ(narrow.mul(k), g1_mul_generator(k));
}

TEST(Msm, DuplicatePointsAndStructuredScalars) {
  // Duplicate bases with equal scalars force same-bucket doublings and
  // cancellations through the batched-affine accumulator.
  auto rng = SecureRng::deterministic(57);
  G1 p = g1_random(rng);
  for (std::size_t n : {2u, 5u, 33u, 200u}) {
    std::vector<G1> pts(n, p);
    std::vector<Fr> sc(n, Fr::from_u64(7));
    EXPECT_EQ(msm<G1>(pts, sc), p.mul_naive(ff::U256{7 * n})) << "n=" << n;
    // Alternating k and -k over the same point cancels to infinity.
    if (n % 2 == 0) {
      Fr k = Fr::random(rng);
      for (std::size_t i = 0; i < n; ++i) sc[i] = i % 2 ? k : -k;
      EXPECT_TRUE(msm<G1>(pts, sc).is_infinity()) << "n=" << n;
    }
  }
}

TEST(Msm, PrecomputedMatchesCold) {
  auto rng = SecureRng::deterministic(58);
  for (std::size_t n : {1u, 2u, 30u, 300u}) {
    std::vector<G1> pts;
    std::vector<Fr> sc;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(i % 7 == 3 ? G1::infinity() : g1_random(rng));
      sc.push_back(i % 5 == 2 ? Fr::zero() : Fr::random(rng));
    }
    auto tbl = msm_precompute<G1>(pts);
    EXPECT_EQ(msm_precomputed(tbl, sc), msm<G1>(pts, sc)) << "n=" << n;
    // Fewer scalars than table bases commits against a prefix.
    if (n > 2) {
      std::span<const Fr> prefix(sc.data(), n - 2);
      std::span<const G1> ppts(pts.data(), n - 2);
      EXPECT_EQ(msm_precomputed(tbl, prefix), msm<G1>(ppts, prefix));
    }
    std::vector<Fr> too_many(tbl.n + 1, Fr::one());
    EXPECT_THROW(msm_precomputed(tbl, too_many), std::invalid_argument);
  }
}

TEST(Msm, MatchesNaive) {
  auto rng = SecureRng::deterministic(50);
  for (std::size_t n : {1u, 2u, 3u, 17u, 64u, 200u}) {
    std::vector<G1> pts;
    std::vector<Fr> sc;
    G1 expect = G1::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(g1_random(rng));
      sc.push_back(Fr::random(rng));
      expect += pts.back().mul(sc.back());
    }
    EXPECT_EQ(msm<G1>(pts, sc), expect) << "n=" << n;
  }
}

TEST(Msm, EdgeCases) {
  auto rng = SecureRng::deterministic(51);
  // Zero scalars, infinity points, mismatched sizes.
  std::vector<G1> pts{g1_random(rng), G1::infinity(), g1_random(rng)};
  std::vector<Fr> sc{Fr::zero(), Fr::random(rng), Fr::from_u64(1)};
  EXPECT_EQ(msm<G1>(pts, sc), pts[2]);
  std::vector<Fr> wrong{Fr::one()};
  EXPECT_THROW(msm<G1>(pts, wrong), std::invalid_argument);
  EXPECT_TRUE(msm<G1>(std::span<const G1>{}, std::span<const Fr>{}).is_infinity());
}

TEST(Msm, AllZeroScalarsAndEmptyInputsEverywhere) {
  auto rng = SecureRng::deterministic(60);
  std::vector<G1> pts;
  for (int i = 0; i < 40; ++i) pts.push_back(g1_random(rng));
  std::vector<Fr> zeros(pts.size(), Fr::zero());
  EXPECT_TRUE(msm<G1>(pts, zeros).is_infinity());

  auto tbl = msm_precompute<G1>(pts);
  EXPECT_TRUE(msm_precomputed(tbl, zeros).is_infinity());
  EXPECT_TRUE(msm_precomputed(tbl, std::span<const Fr>{}).is_infinity());

  // Empty table, empty everything.
  auto empty_tbl = msm_precompute<G1>(std::span<const G1>{});
  EXPECT_EQ(empty_tbl.n, 0u);
  EXPECT_TRUE(msm_precomputed(empty_tbl, std::span<const Fr>{}).is_infinity());
  EXPECT_TRUE(msm_precomputed(empty_tbl, std::span<const std::uint64_t>{},
                              std::span<const Fr>{})
                  .is_infinity());

  // Single-point table and single-point MSM.
  std::span<const G1> one_pt(pts.data(), 1);
  Fr k = Fr::random(rng);
  std::span<const Fr> one_sc(&k, 1);
  EXPECT_EQ(msm<G1>(one_pt, one_sc), pts[0].mul(k));
  auto tbl1 = msm_precompute<G1>(one_pt);
  EXPECT_EQ(msm_precomputed(tbl1, one_sc), pts[0].mul(k));
}

TEST(Msm, ScalarsAtThe254BitBound) {
  // r - 1 (the largest canonical scalar) and high-bit-heavy values exercise
  // the signed-digit carry into the extra top window position across all
  // three MSM entry points.
  auto rng = SecureRng::deterministic(61);
  Fr r_minus_1 = Fr::zero() - Fr::one();
  Fr high_bit = Fr::from_u256(ff::U256{0, 0, 0, std::uint64_t{1} << 61});
  std::vector<G1> pts;
  std::vector<Fr> sc;
  G1 expect = G1::infinity();
  for (int i = 0; i < 24; ++i) {
    pts.push_back(g1_random(rng));
    sc.push_back(i % 3 == 0 ? r_minus_1 : (i % 3 == 1 ? high_bit : Fr::random(rng)));
    expect += pts.back().mul_naive(sc.back());
  }
  EXPECT_EQ(msm<G1>(pts, sc), expect);
  auto tbl = msm_precompute<G1>(pts);
  EXPECT_EQ(msm_precomputed(tbl, sc), expect);
  // r - 1 == -1: a single max-scalar multiply must be the negation.
  std::span<const G1> one_pt(pts.data(), 1);
  std::span<const Fr> one_sc(&r_minus_1, 1);
  EXPECT_EQ(msm<G1>(one_pt, one_sc), -pts[0]);
}

TEST(Msm, SubsetEdgeCases) {
  auto rng = SecureRng::deterministic(62);
  std::vector<G1> pts;
  for (int i = 0; i < 16; ++i) pts.push_back(g1_random(rng));
  auto tbl = msm_precompute<G1>(pts);

  // Empty subset.
  EXPECT_TRUE(msm_precomputed(tbl, std::span<const std::uint64_t>{},
                              std::span<const Fr>{})
                  .is_infinity());

  // Duplicate indices accumulate (the verifier may sample a chunk twice).
  std::vector<std::uint64_t> dup{3, 3, 3, 7};
  std::vector<Fr> dup_sc{Fr::from_u64(5), Fr::from_u64(6), Fr::zero(),
                         Fr::from_u64(9)};
  G1 expect = pts[3].mul(Fr::from_u64(11)) + pts[7].mul(Fr::from_u64(9));
  EXPECT_EQ(msm_precomputed(tbl, dup, dup_sc), expect);

  // Duplicate index with cancelling scalars collapses to infinity.
  Fr k = Fr::random(rng);
  std::vector<std::uint64_t> pair{5, 5};
  std::vector<Fr> cancel{k, Fr::zero() - k};
  EXPECT_TRUE(msm_precomputed(tbl, pair, cancel).is_infinity());

  // Max-bound scalars through the subset path.
  Fr r_minus_1 = Fr::zero() - Fr::one();
  std::vector<std::uint64_t> idx{0, 15, 15};
  std::vector<Fr> big{r_minus_1, r_minus_1, r_minus_1};
  EXPECT_EQ(msm_precomputed(tbl, idx, big),
            -(pts[0] + pts[15].mul(Fr::from_u64(2))));

  // Out-of-range index throws, size mismatch throws.
  std::vector<std::uint64_t> oor{16};
  std::vector<Fr> one_sc{Fr::one()};
  EXPECT_THROW(msm_precomputed(tbl, oor, one_sc), std::invalid_argument);
  std::vector<std::uint64_t> two_idx{1, 2};
  EXPECT_THROW(msm_precomputed(tbl, two_idx, one_sc), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GLV endomorphism: decomposition invariants and bit-identity of every
// endo-accelerated route against its retained oracle.
// ---------------------------------------------------------------------------

/// The adversarial scalar set for GLV: identities, the eigenvalue itself and
/// its negation (one half collapses to zero), the 2^128 boundary, and the
/// lattice-basis coordinates (Babai rounding lands exactly on a lattice
/// vertex).
std::vector<ff::U256> glv_edge_scalars() {
  const GlvParams& gp = glv_params();
  ff::U256 r = Fr::modulus();
  ff::U256 rm1, r_minus_lambda;
  bigint::sub_with_borrow(r, ff::U256{1}, rm1);
  bigint::sub_with_borrow(r, gp.lambda, r_minus_lambda);
  ff::U256 two128{0, 0, 1, 0};
  ff::U256 two128m1{~0ULL, ~0ULL, 0, 0}, two128p1{1, 0, 1, 0};
  std::vector<ff::U256> ks{ff::U256{},  ff::U256{1}, rm1,      gp.lambda,
                           r_minus_lambda, two128,   two128m1, two128p1,
                           gp.a1,       gp.b1,       gp.b2};
  // Lattice-adjacent: a1 +/- 1 and b2 + b1 sit on rounding boundaries.
  ff::U256 t;
  bigint::add_with_carry(gp.a1, ff::U256{1}, t);
  ks.push_back(t);
  bigint::sub_with_borrow(gp.a1, ff::U256{1}, t);
  ks.push_back(t);
  bigint::add_with_carry(gp.b2, gp.b1, t);
  ks.push_back(t);
  return ks;
}

TEST(Glv, DecomposeRoundTripAndBounds) {
  const GlvParams& gp = glv_params();
  const ff::U256 r = Fr::modulus();
  auto check = [&](const ff::U256& k) {
    GlvDecomposed d = glv_decompose(k);
    EXPECT_LE(d.k1.bit_length(), kGlvHalfBits) << "k=" << k.to_hex();
    EXPECT_LE(d.k2.bit_length(), kGlvHalfBits) << "k=" << k.to_hex();
    // (+/- k1) + (+/- k2) * lambda == k (mod r).
    ff::U256 s{};
    s = d.neg1 ? bigint::sub_mod(s, d.k1, r) : bigint::add_mod(s, d.k1, r);
    ff::U256 t = bigint::mul_mod_slow(d.k2, gp.lambda, r);
    s = d.neg2 ? bigint::sub_mod(s, t, r) : bigint::add_mod(s, t, r);
    EXPECT_EQ(s, k) << "k=" << k.to_hex();
  };
  for (const auto& k : glv_edge_scalars()) check(k);
  auto rng = SecureRng::deterministic(63);
  for (int i = 0; i < 200; ++i) check(Fr::random(rng).to_u256());
}

TEST(Glv, MulRoutesAgreeOnEdgeScalars) {
  auto rng = SecureRng::deterministic(64);
  G1 p = g1_random(rng);
  for (const auto& k : glv_edge_scalars()) {
    G1 naive = p.mul_naive(k);
    EXPECT_EQ(p.mul(k), naive) << "k=" << k.to_hex();          // GLV route
    EXPECT_EQ(p.mul_wnaf(k), naive) << "k=" << k.to_hex();     // generic wNAF
  }
  // Infinity is absorbed by every route.
  for (const auto& k : glv_edge_scalars()) {
    EXPECT_TRUE(G1::infinity().mul(k).is_infinity());
  }
}

TEST(Glv, MsmEntryPointsAgreeOnEdgeScalars) {
  // Edge scalars through cold, precomputed, and subset MSM: the endo-split
  // digit extraction and the phi-image table rows must reproduce the naive
  // per-point sum exactly.
  auto rng = SecureRng::deterministic(65);
  auto edges = glv_edge_scalars();
  std::vector<G1> pts;
  std::vector<Fr> sc;
  G1 expect = G1::infinity();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    pts.push_back(i % 5 == 4 ? G1::infinity() : g1_random(rng));
    sc.push_back(Fr::from_u256(edges[i]));
    expect += pts.back().mul_naive(sc.back().to_u256());
  }
  EXPECT_EQ(msm<G1>(pts, sc), expect);
  auto tbl = msm_precompute<G1>(pts);
  EXPECT_EQ(msm_precomputed(tbl, sc), expect);
  std::vector<std::uint64_t> idx;
  for (std::size_t i = 0; i < pts.size(); ++i) idx.push_back(i);
  EXPECT_EQ(msm_precomputed(tbl, idx, sc), expect);
}

TEST(Glv, ColdMsmUnsplitRegimeMatchesNaive) {
  // Scalars at or below 128 bits keep the cold MSM on the unsplit path
  // (2 * max_bits <= 3 * kGlvHalfBits); it must agree with the naive sum
  // just like the split path does.
  auto rng = SecureRng::deterministic(66);
  std::vector<G1> pts;
  std::vector<Fr> sc;
  G1 expect = G1::infinity();
  for (int i = 0; i < 20; ++i) {
    pts.push_back(g1_random(rng));
    sc.push_back(Fr::from_u256(ff::U256{rng.next_u64(), rng.next_u64(), 0, 0}));
    expect += pts.back().mul_naive(sc.back().to_u256());
  }
  EXPECT_EQ(msm<G1>(pts, sc), expect);
}

TEST(G2Subgroup, PsiCheckAgreesWithOrderLadder) {
  // The psi(Q) == [6t^2] Q fast path and the retained [r] Q == 0 oracle must
  // agree on every input class: subgroup points, infinity, cofactor points,
  // and off-curve garbage.
  auto rng = SecureRng::deterministic(67);
  EXPECT_TRUE(g2_in_subgroup_naive(G2::generator()));
  EXPECT_EQ(g2_in_subgroup(G2::infinity()), g2_in_subgroup_naive(G2::infinity()));
  for (int i = 0; i < 5; ++i) {
    G2 q = g2_random(rng);
    EXPECT_TRUE(g2_in_subgroup(q));
    EXPECT_TRUE(g2_in_subgroup_naive(q));
  }
  // Off-curve: an arbitrary (x, y) almost surely misses the twist.
  G2 bad{ff::Fp2::random(rng), ff::Fp2::random(rng)};
  if (!bad.is_on_curve()) {
    EXPECT_FALSE(g2_in_subgroup(bad));
    EXPECT_FALSE(g2_in_subgroup_naive(bad));
  }
  // On the twist but outside the r-subgroup.
  int found = 0;
  for (int tries = 0; tries < 100 && found < 3; ++tries) {
    ff::Fp2 x = ff::Fp2::random(rng);
    ff::Fp2 rhs = x.square() * x + G2Tag::curve_b();
    auto y = ff::sqrt(rhs);
    if (!y) continue;
    G2 p{x, *y};
    EXPECT_EQ(g2_in_subgroup(p), g2_in_subgroup_naive(p));
    EXPECT_FALSE(g2_in_subgroup(p));
    ++found;
  }
  EXPECT_GE(found, 1) << "no twist point found (sqrt broken?)";
}

TEST(Msm, WorksOnG2) {
  auto rng = SecureRng::deterministic(52);
  std::vector<G2> pts;
  std::vector<Fr> sc;
  G2 expect = G2::infinity();
  for (int i = 0; i < 9; ++i) {
    pts.push_back(g2_random(rng));
    sc.push_back(Fr::random(rng));
    expect += pts.back().mul(sc.back());
  }
  EXPECT_EQ(msm<G2>(pts, sc), expect);
}

}  // namespace
}  // namespace dsaudit::curve
