// Fig. 2 state-machine tests: the full happy path plus every misbehaviour
// path (timeout, corrupted data, rejection, out-of-order messages) and
// conservation of escrowed funds.
#include <gtest/gtest.h>

#include <tuple>

#include "audit/serialize.hpp"
#include "contract/audit_contract.hpp"
#include "contract/tx_format.hpp"
#include "econ/cost_model.hpp"

namespace dsaudit::contract {
namespace {

using audit::FileTag;
using audit::KeyPair;
using primitives::SecureRng;

struct World {
  chain::Blockchain chain;
  std::unique_ptr<chain::TrustedBeacon> beacon;
  KeyPair kp;
  storage::EncodedFile file;
  FileTag tag;
  audit::Fr name;
  std::unique_ptr<audit::Prover> prover;
  std::unique_ptr<AuditContract> contract;

  World(ContractTerms terms, std::size_t file_size = 4000, std::size_t s = 8) {
    auto rng = SecureRng::deterministic(500);
    std::array<std::uint8_t, 32> bseed{};
    bseed[0] = 0x42;
    beacon = std::make_unique<chain::TrustedBeacon>(bseed);
    kp = audit::keygen(s, rng);
    std::vector<std::uint8_t> data(file_size);
    rng.fill(data);
    file = storage::encode_file(data, s);
    name = audit::Fr::random(rng);
    tag = audit::generate_tags(kp.sk, kp.pk, file, name);
    prover = std::make_unique<audit::Prover>(kp.pk, file, tag);
    chain.mint(terms.owner, 1'000'000);
    chain.mint(terms.provider, 1'000'000);
    contract = std::make_unique<AuditContract>(chain, *beacon, terms, kp.pk,
                                               name, file.num_chunks());
  }

  AuditContract::Responder honest_responder(bool private_proofs) {
    return [this, private_proofs](const audit::Challenge& chal)
               -> std::optional<std::vector<std::uint8_t>> {
      if (private_proofs) {
        auto rng = SecureRng::from_os();
        return audit::serialize(prover->prove_private(chal, rng));
      }
      return audit::serialize(prover->prove(chal));
    };
  }
};

ContractTerms default_terms() {
  ContractTerms t;
  t.owner = "alice";
  t.provider = "bob";
  t.num_audits = 3;
  t.audit_period_s = 3600;
  t.response_window_s = 600;
  t.reward_per_audit = 100;
  t.penalty_per_fail = 250;
  t.challenged_chunks = 5;
  t.private_proofs = true;
  return t;
}

TEST(Contract, HappyPathAllRoundsPass) {
  ContractTerms terms = default_terms();
  World w(terms);
  w.contract->set_responder(w.honest_responder(true));

  w.contract->negotiated();
  EXPECT_EQ(w.contract->state(), State::Ack);
  w.contract->acked(true);
  EXPECT_EQ(w.contract->state(), State::Freeze);
  w.contract->freeze();
  EXPECT_EQ(w.contract->state(), State::Audit);
  EXPECT_EQ(w.contract->escrow_balance(), 3 * 100u + 3 * 250u);

  // Three audit periods + slack: all rounds complete and the contract closes.
  w.chain.advance(4 * terms.audit_period_s);
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->rounds_completed(), 3u);
  EXPECT_EQ(w.contract->passes(), 3u);
  EXPECT_EQ(w.contract->fails(), 0u);
  EXPECT_EQ(w.contract->timeouts(), 0u);

  // Funds: provider earned 3 rewards and recovered all collateral.
  EXPECT_EQ(w.chain.balance("bob"), 1'000'000 + 300u);
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 - 300u);
  EXPECT_EQ(w.contract->escrow_balance(), 0u);
}

TEST(Contract, NonPrivateProofsAlsoWork) {
  ContractTerms terms = default_terms();
  terms.private_proofs = false;
  World w(terms);
  w.contract->set_responder(w.honest_responder(false));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  EXPECT_EQ(w.contract->passes(), 3u);
  // 96-byte proofs on the wire.
  for (const auto& r : w.contract->rounds()) EXPECT_EQ(r.proof_bytes, 96u);
}

TEST(Contract, PayloadBytesMatchRealSerializedSizes) {
  // ISSUE 10 satellite: every payload_bytes posted on chain must equal the
  // size of the bytes that would actually be serialized for that message —
  // no hand-maintained magic constants drifting from the wire formats.
  ContractTerms terms = default_terms();
  World w(terms);
  w.contract->set_responder(w.honest_responder(true));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  ASSERT_EQ(w.contract->state(), State::Closed);

  // pk || file name (Fr) || num_chunks (u64): the registration payload.
  const std::size_t pk_bytes =
      audit::serialize(w.kp.pk, terms.private_proofs).size();
  const std::size_t negotiated_bytes =
      pk_bytes + audit::kFrWireBytes + audit::kU64WireBytes;
  std::size_t seen = 0;
  for (const auto& tx : w.chain.transactions()) {
    ++seen;
    if (tx.description == "negotiated") {
      EXPECT_EQ(tx.payload_bytes, negotiated_bytes);
      EXPECT_EQ(tx.payload_bytes, txfmt::negotiated_payload(pk_bytes));
    } else if (tx.description == "acked") {
      EXPECT_EQ(tx.payload_bytes, txfmt::kAckPayload);
    } else if (tx.description == "freeze") {
      EXPECT_EQ(tx.payload_bytes, txfmt::kFreezePayload);
    } else if (tx.description == "challenged" || tx.description == "retry") {
      // The challenge payload is the beacon output itself.
      EXPECT_EQ(tx.payload_bytes, std::tuple_size_v<chain::BeaconOutput>);
      EXPECT_EQ(tx.payload_bytes, txfmt::kChallengePayload);
    } else if (tx.description == "prove") {
      // Private proofs in this world: the exact ProofPrivate wire size.
      EXPECT_EQ(tx.payload_bytes, audit::ProofPrivate::kWireSize);
    } else if (tx.description == "slashed" ||
               tx.description == "provider-exit") {
      EXPECT_EQ(tx.payload_bytes, txfmt::kClosePayload);
    } else {
      ADD_FAILURE() << "unaccounted tx description: " << tx.description;
    }
  }
  EXPECT_GE(seen, 3u + 3u + 3u);  // lifecycle + 3x(challenge, prove)
}

TEST(Contract, UnresponsiveProviderTimesOutAndPaysOwner) {
  ContractTerms terms = default_terms();
  World w(terms);
  // No responder installed: S never answers.
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->timeouts(), 3u);
  // Owner recovers all rewards plus 3 penalties.
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 + 3 * 250u);
  EXPECT_EQ(w.chain.balance("bob"), 1'000'000 - 3 * 250u);
}

TEST(Contract, CorruptedDataFailsOnlyWhenSampled) {
  ContractTerms terms = default_terms();
  terms.num_audits = 6;
  terms.challenged_chunks = 999;  // challenge every chunk -> always detected
  World w(terms);
  // Corrupt one block after tagging; an honest-but-lossy provider.
  w.file.chunks[1][2] += audit::Fr::one();
  w.prover = std::make_unique<audit::Prover>(w.kp.pk, w.file, w.tag);
  w.contract->set_responder(w.honest_responder(true));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(7 * terms.audit_period_s);
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->fails(), 6u);
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 + 6 * 250u);
}

TEST(Contract, ConsecutiveTimeoutsTripTheSlash) {
  ContractTerms terms = default_terms();
  terms.slash_after_consecutive = 2;
  World w(terms);
  // No responder installed: S misses every deadline.
  CloseReason seen = CloseReason::None;
  w.contract->set_on_closed([&](CloseReason r) { seen = r; });
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->close_reason(), CloseReason::Slashed);
  EXPECT_EQ(seen, CloseReason::Slashed);
  // Round 2 is never challenged: the threshold fires first.
  EXPECT_EQ(w.contract->rounds_completed(), 2u);
  EXPECT_EQ(w.contract->timeouts(), 2u);
  // The owner ends up with the ENTIRE escrow: two settled penalties plus
  // everything left (undelivered rewards and remaining collateral).
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 + 3 * 250u);
  EXPECT_EQ(w.chain.balance("bob"), 1'000'000 - 3 * 250u);
  EXPECT_EQ(w.contract->escrow_balance(), 0u);
}

TEST(Contract, TimeoutRetryRedeemsALateProvider) {
  ContractTerms terms = default_terms();
  terms.timeout_retry_limit = 1;
  World w(terms);
  // Round 0's first challenge (t=3600) gets no proof; the retry challenge
  // (issued at t=4800, one response window past the missed deadline) does.
  auto honest = w.honest_responder(true);
  w.contract->set_responder(
      [&w, honest](const audit::Challenge& chal)
          -> std::optional<std::vector<std::uint8_t>> {
        if (w.chain.now() < 4200) return std::nullopt;
        return honest(chal);
      });
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->close_reason(), CloseReason::Expired);
  EXPECT_EQ(w.contract->passes(), 3u);
  EXPECT_EQ(w.contract->timeouts(), 0u);
  EXPECT_EQ(w.contract->timeout_retries(), 1u);
  EXPECT_EQ(w.contract->rounds()[0].retries, 1u);
  // The redeemed round pays like any pass: the happy-path ledger.
  EXPECT_EQ(w.chain.balance("bob"), 1'000'000 + 300u);
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 - 300u);
}

TEST(Contract, RetryBudgetExhaustedStillSettlesTimeout) {
  ContractTerms terms = default_terms();
  terms.timeout_retry_limit = 1;
  World w(terms);
  // Proofs only flow from round 1 on (t >= 7200): round 0's first attempt
  // AND its retry both miss, so the retry budget runs out and the round
  // settles Timeout — one penalty, then business as usual.
  auto honest = w.honest_responder(true);
  w.contract->set_responder(
      [&w, honest](const audit::Challenge& chal)
          -> std::optional<std::vector<std::uint8_t>> {
        if (w.chain.now() < 7200) return std::nullopt;
        return honest(chal);
      });
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->passes(), 2u);
  EXPECT_EQ(w.contract->timeouts(), 1u);
  EXPECT_EQ(w.contract->timeout_retries(), 1u);
  EXPECT_EQ(w.chain.balance("alice"),
            1'000'000 - 2 * 100u + 250u);  // 2 rewards out, 1 penalty in
}

TEST(Contract, ProviderExitSettlesEscrowAndAbortsInFlightRound) {
  ContractTerms terms = default_terms();
  World w(terms);
  w.contract->set_responder(w.honest_responder(true));
  CloseReason seen = CloseReason::None;
  w.contract->set_on_closed([&](CloseReason r) { seen = r; });
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  // Stop just past round 0's challenge (t=3600): the proof is posted but
  // the verify deadline (t=4200) hasn't arrived — the round is in flight.
  w.chain.advance(terms.audit_period_s + 10);
  ASSERT_EQ(w.contract->state(), State::Prove);

  w.contract->provider_exit();
  EXPECT_EQ(w.contract->state(), State::Closed);
  EXPECT_EQ(w.contract->close_reason(), CloseReason::ProviderExit);
  EXPECT_EQ(seen, CloseReason::ProviderExit);
  // Escrow release: alice recovers all 3 undelivered rewards plus a one-
  // penalty exit fee; bob keeps the rest of his collateral.
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 + 250u);
  EXPECT_EQ(w.chain.balance("bob"), 1'000'000 - 250u);
  EXPECT_EQ(w.contract->escrow_balance(), 0u);
  // The in-flight round is recorded Aborted and never settles.
  ASSERT_EQ(w.contract->rounds().size(), 1u);
  EXPECT_EQ(w.contract->rounds()[0].outcome, RoundOutcome::Aborted);
  EXPECT_EQ(w.contract->rounds_completed(), 0u);

  // The already-scheduled verify deadline must be inert on a closed
  // contract: no further settlement, no ledger movement.
  w.chain.advance(2 * terms.audit_period_s);
  EXPECT_EQ(w.contract->rounds_completed(), 0u);
  EXPECT_EQ(w.chain.balance("alice"), 1'000'000 + 250u);
  EXPECT_EQ(w.chain.balance("bob"), 1'000'000 - 250u);
  EXPECT_THROW(w.contract->provider_exit(), std::logic_error);
}

TEST(Contract, ProviderCanRejectAtAck) {
  ContractTerms terms = default_terms();
  World w(terms);
  w.contract->negotiated();
  w.contract->acked(false);
  EXPECT_EQ(w.contract->state(), State::Closed);
  // No deposits were taken.
  EXPECT_EQ(w.contract->escrow_balance(), 0u);
  EXPECT_THROW(w.contract->freeze(), std::logic_error);
}

TEST(Contract, OutOfOrderMessagesRejected) {
  ContractTerms terms = default_terms();
  World w(terms);
  EXPECT_THROW(w.contract->acked(true), std::logic_error);
  EXPECT_THROW(w.contract->freeze(), std::logic_error);
  w.contract->negotiated();
  EXPECT_THROW(w.contract->negotiated(), std::logic_error);
  w.contract->acked(true);
  EXPECT_THROW(w.contract->acked(true), std::logic_error);
}

TEST(Contract, InsufficientDepositAborts) {
  ContractTerms terms = default_terms();
  terms.reward_per_audit = 10'000'000;  // more than alice owns
  World w(terms);
  w.contract->negotiated();
  w.contract->acked(true);
  EXPECT_THROW(w.contract->freeze(), std::runtime_error);
}

TEST(Contract, TermsValidation) {
  ContractTerms terms = default_terms();
  terms.num_audits = 0;
  chain::Blockchain bc;
  std::array<std::uint8_t, 32> seed{};
  chain::TrustedBeacon beacon(seed);
  auto rng = SecureRng::deterministic(501);
  auto kp = audit::keygen(4, rng);
  EXPECT_THROW(
      AuditContract(bc, beacon, terms, kp.pk, audit::Fr::one(), 10),
      std::logic_error);
  terms = default_terms();
  terms.response_window_s = terms.audit_period_s;  // window must fit
  EXPECT_THROW(
      AuditContract(bc, beacon, terms, kp.pk, audit::Fr::one(), 10),
      std::logic_error);
}

TEST(Contract, EventLogMatchesFig2Vocabulary) {
  ContractTerms terms = default_terms();
  terms.num_audits = 1;
  World w(terms);
  w.contract->set_responder(w.honest_responder(true));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(2 * terms.audit_period_s);
  std::vector<std::string> got;
  for (const auto& e : w.contract->events()) got.push_back(e.what);
  std::vector<std::string> expect{"negotiated", "acked",       "inited",
                                  "challenged", "proofposted", "pass",
                                  "expired"};
  EXPECT_EQ(got, expect);
}

TEST(Contract, GasPerAuditIsTheExactCalibratedConstant) {
  ContractTerms terms = default_terms();
  terms.num_audits = 2;
  World w(terms);
  w.contract->set_responder(w.honest_responder(true));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(3 * terms.audit_period_s);
  // Settlement gas comes from the calibrated econ::AuditCostModel, not this
  // run's verify wall-clock: a 288-byte private proof costs the paper's
  // §VII-B anchor of exactly 589,000 gas, every round, on any machine.
  econ::AuditCostModel model;
  ASSERT_EQ(model.gas_per_audit(), 589'000u);
  for (const auto& r : w.contract->rounds()) {
    EXPECT_EQ(r.proof_bytes, 288u);
    EXPECT_EQ(r.gas_used, 589'000u);
    // The measured verification time is still recorded, as telemetry only.
    EXPECT_GT(r.verify_ms, 0.0);
  }
}

TEST(Contract, NonPrivateGasIsDeterministicToo) {
  ContractTerms terms = default_terms();
  terms.num_audits = 2;
  terms.private_proofs = false;
  World w(terms);
  w.contract->set_responder(w.honest_responder(false));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(3 * terms.audit_period_s);
  econ::AuditCostModel model;
  model.proof_bytes = 96;  // Eq. 1 proofs
  const std::uint64_t expected = model.gas_per_audit();
  ASSERT_EQ(w.contract->rounds().size(), 2u);
  for (const auto& r : w.contract->rounds()) {
    EXPECT_EQ(r.proof_bytes, 96u);
    EXPECT_EQ(r.gas_used, expected);
  }
}

TEST(Contract, ChallengesAreUnpredictableAcrossRounds) {
  ContractTerms terms = default_terms();
  terms.num_audits = 3;
  World w(terms);
  w.contract->set_responder(w.honest_responder(true));
  w.contract->negotiated();
  w.contract->acked(true);
  w.contract->freeze();
  w.chain.advance(4 * terms.audit_period_s);
  const auto& rounds = w.contract->rounds();
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_NE(rounds[0].challenge.c1, rounds[1].challenge.c1);
  EXPECT_NE(rounds[1].challenge.c2, rounds[2].challenge.c2);
  EXPECT_FALSE(rounds[0].challenge.r == rounds[1].challenge.r);
}

}  // namespace
}  // namespace dsaudit::contract
