// End-to-end tests of the main auditing protocol (§V): completeness of
// Eq. 1 / Eq. 2, soundness against corruption and tampering, tag acceptance,
// batching, and the exact paper wire sizes.
#include <gtest/gtest.h>

#include "audit/protocol.hpp"
#include "audit/serialize.hpp"
#include "pairing/pairing.hpp"

namespace dsaudit::audit {
namespace {

using primitives::SecureRng;

std::vector<std::uint8_t> random_bytes(std::size_t n, SecureRng& rng) {
  std::vector<std::uint8_t> v(n);
  rng.fill(v);
  return v;
}

struct Scenario {
  KeyPair kp;
  storage::EncodedFile file;
  FileTag tag;
  Fr name;
};

Scenario make_scenario(std::size_t file_size, std::size_t s, SecureRng& rng,
                       unsigned threads = 1) {
  Scenario sc;
  sc.kp = keygen(s, rng);
  auto data = random_bytes(file_size, rng);
  sc.file = storage::encode_file(data, s);
  sc.name = Fr::random(rng);
  sc.tag = generate_tags(sc.kp.sk, sc.kp.pk, sc.file, sc.name, threads);
  return sc;
}

Challenge make_challenge(SecureRng& rng, std::size_t k) {
  Challenge c;
  c.c1 = rng.bytes32();
  c.c2 = rng.bytes32();
  c.r = Fr::random(rng);
  c.k = k;
  return c;
}

// ---------------------------------------------------------------------------
// Completeness, parameterized over (file size, s, k).
// ---------------------------------------------------------------------------

struct Params {
  std::size_t file_size;
  std::size_t s;
  std::size_t k;
};

class AuditCompleteness : public ::testing::TestWithParam<Params> {};

TEST_P(AuditCompleteness, BasicProofVerifies) {
  auto [file_size, s, k] = GetParam();
  auto rng = SecureRng::deterministic(200 + file_size + s + k);
  Scenario sc = make_scenario(file_size, s, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  Challenge chal = make_challenge(rng, k);
  ProofBasic proof = prover.prove(chal);
  EXPECT_TRUE(verify(sc.kp.pk, sc.name, sc.file.num_chunks(), chal, proof));
}

TEST_P(AuditCompleteness, PrivateProofVerifies) {
  auto [file_size, s, k] = GetParam();
  auto rng = SecureRng::deterministic(300 + file_size + s + k);
  Scenario sc = make_scenario(file_size, s, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  Challenge chal = make_challenge(rng, k);
  ProofPrivate proof = prover.prove_private(chal, rng);
  EXPECT_TRUE(verify_private(sc.kp.pk, sc.name, sc.file.num_chunks(), chal, proof));
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, AuditCompleteness,
    ::testing::Values(Params{1, 1, 1},        // single block, s = 1 edge
                      Params{100, 1, 3},      // s = 1 (classic HLA, no chunks)
                      Params{100, 4, 2},      // tiny
                      Params{1000, 2, 5},     // more chunks than blocks/chunk
                      Params{5000, 10, 8},    // k < d
                      Params{5000, 10, 999},  // k > d: challenge all chunks
                      Params{20000, 50, 13},  // paper's preferred s = 50
                      Params{3100, 100, 1}),  // single challenged chunk
    [](const auto& info) {
      return "file" + std::to_string(info.param.file_size) + "_s" +
             std::to_string(info.param.s) + "_k" + std::to_string(info.param.k);
    });

// ---------------------------------------------------------------------------
// Soundness / failure injection.
// ---------------------------------------------------------------------------

class AuditSoundness : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<SecureRng>(SecureRng::deterministic(400));
    sc_ = make_scenario(4000, 8, *rng_);
  }
  std::unique_ptr<SecureRng> rng_;
  Scenario sc_;
};

TEST_F(AuditSoundness, CorruptedBlockFailsBasic) {
  // Flip one block, keep the (now stale) tags: every challenge touching the
  // chunk must fail.
  storage::EncodedFile bad = sc_.file;
  bad.chunks[0][0] += Fr::one();
  Prover prover(sc_.kp.pk, bad, sc_.tag);
  int failures = 0, rounds = 0;
  for (int i = 0; i < 10; ++i) {
    Challenge chal = make_challenge(*rng_, bad.num_chunks());  // challenge all
    ProofBasic proof = prover.prove(chal);
    ++rounds;
    if (!verify(sc_.kp.pk, sc_.name, bad.num_chunks(), chal, proof)) ++failures;
  }
  EXPECT_EQ(failures, rounds);  // k = d always hits chunk 0
}

TEST_F(AuditSoundness, CorruptedBlockFailsPrivate) {
  storage::EncodedFile bad = sc_.file;
  bad.chunks[2][3] += Fr::from_u64(7);
  Prover prover(sc_.kp.pk, bad, sc_.tag);
  Challenge chal = make_challenge(*rng_, bad.num_chunks());
  ProofPrivate proof = prover.prove_private(chal, *rng_);
  EXPECT_FALSE(verify_private(sc_.kp.pk, sc_.name, bad.num_chunks(), chal, proof));
}

TEST_F(AuditSoundness, DroppedChunkDetectedWithSamplingProbability) {
  // Provider silently zeroes one chunk; with k < d, detection happens iff the
  // challenge samples it. Over many rounds, both outcomes must occur and the
  // verifier must never accept a proof computed over the corrupted chunk.
  storage::EncodedFile bad = sc_.file;
  std::size_t victim = 5;
  for (auto& b : bad.chunks[victim]) b = Fr::zero();
  ASSERT_NE(bad.chunks[victim], sc_.file.chunks[victim]);
  Prover prover(sc_.kp.pk, bad, sc_.tag);
  int detected = 0, sampled = 0;
  for (int i = 0; i < 30; ++i) {
    Challenge chal = make_challenge(*rng_, 4);
    auto ex = expand_challenge(chal, bad.num_chunks());
    bool hits = std::find(ex.indices.begin(), ex.indices.end(), victim) !=
                ex.indices.end();
    ProofBasic proof = prover.prove(chal);
    bool ok = verify(sc_.kp.pk, sc_.name, bad.num_chunks(), chal, proof);
    if (hits) ++sampled;
    if (!ok) ++detected;
    EXPECT_EQ(ok, !hits);  // fails exactly when the victim chunk is sampled
  }
  EXPECT_GT(sampled, 0);
  EXPECT_EQ(detected, sampled);
}

TEST_F(AuditSoundness, TamperedProofElementsFail) {
  Prover prover(sc_.kp.pk, sc_.file, sc_.tag);
  Challenge chal = make_challenge(*rng_, 5);
  ProofBasic good = prover.prove(chal);
  ASSERT_TRUE(verify(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, good));

  ProofBasic bad = good;
  bad.sigma = bad.sigma + curve::G1::generator();
  EXPECT_FALSE(verify(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, bad));

  bad = good;
  bad.y += Fr::one();
  EXPECT_FALSE(verify(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, bad));

  bad = good;
  bad.psi = bad.psi.dbl();
  EXPECT_FALSE(verify(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, bad));
}

TEST_F(AuditSoundness, TamperedPrivateProofElementsFail) {
  Prover prover(sc_.kp.pk, sc_.file, sc_.tag);
  Challenge chal = make_challenge(*rng_, 5);
  ProofPrivate good = prover.prove_private(chal, *rng_);
  ASSERT_TRUE(verify_private(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, good));

  ProofPrivate bad = good;
  bad.y_prime += Fr::one();
  EXPECT_FALSE(verify_private(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, bad));

  bad = good;
  bad.big_r = bad.big_r * bad.big_r;  // different commitment, stale y'
  EXPECT_FALSE(verify_private(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, bad));

  bad = good;
  bad.sigma = -bad.sigma;
  EXPECT_FALSE(verify_private(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal, bad));
}

TEST_F(AuditSoundness, ReplayedProofFromOldChallengeFails) {
  Prover prover(sc_.kp.pk, sc_.file, sc_.tag);
  Challenge chal1 = make_challenge(*rng_, 5);
  Challenge chal2 = make_challenge(*rng_, 5);
  ProofBasic old_proof = prover.prove(chal1);
  EXPECT_TRUE(verify(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal1, old_proof));
  EXPECT_FALSE(verify(sc_.kp.pk, sc_.name, sc_.file.num_chunks(), chal2, old_proof));
}

TEST_F(AuditSoundness, WrongFileNameFails) {
  Prover prover(sc_.kp.pk, sc_.file, sc_.tag);
  Challenge chal = make_challenge(*rng_, 5);
  ProofBasic proof = prover.prove(chal);
  EXPECT_FALSE(verify(sc_.kp.pk, sc_.name + Fr::one(), sc_.file.num_chunks(), chal, proof));
}

// ---------------------------------------------------------------------------
// Tag acceptance (the provider's Initialize-phase check).
// ---------------------------------------------------------------------------

TEST_F(AuditSoundness, HonestTagsAccepted) {
  EXPECT_TRUE(verify_tags(sc_.kp.pk, sc_.file, sc_.tag));
}

TEST_F(AuditSoundness, ForgedTagRejected) {
  // A cheating owner who corrupts one authenticator (to later frame the
  // provider) is caught at acceptance time.
  FileTag bad = sc_.tag;
  bad.sigmas[1] = bad.sigmas[1] + curve::G1::generator();
  EXPECT_FALSE(verify_tags(sc_.kp.pk, sc_.file, bad));
}

TEST_F(AuditSoundness, TagForDifferentDataRejected) {
  storage::EncodedFile other = sc_.file;
  other.chunks[0][0] += Fr::one();
  EXPECT_FALSE(verify_tags(sc_.kp.pk, other, sc_.tag));
}

TEST_F(AuditSoundness, StructuralMismatchesRejected) {
  FileTag bad = sc_.tag;
  bad.sigmas.pop_back();
  bad.num_chunks--;
  EXPECT_FALSE(verify_tags(sc_.kp.pk, sc_.file, bad));
  auto rng2 = SecureRng::deterministic(401);
  auto other_kp = keygen(sc_.kp.pk.s + 1, rng2);
  EXPECT_FALSE(verify_tags(other_kp.pk, sc_.file, sc_.tag));
}

TEST(AuditVerifier, PreparedVerifierMatchesFreeFunctions) {
  // One Verifier serving many rounds — basic, private, tags and batch — must
  // agree with the one-shot free functions on both accepts and rejects.
  auto rng = SecureRng::deterministic(450);
  Scenario sc = make_scenario(4000, 8, rng);
  Verifier verifier(sc.kp.pk);
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  EXPECT_TRUE(verifier.verify_tags(sc.file, sc.tag));

  PreparedFile file_ctx = prepare_file(sc.name, sc.file.num_chunks());
  for (int round = 0; round < 3; ++round) {
    Challenge chal = make_challenge(rng, 5);
    ProofBasic proof = prover.prove(chal);
    EXPECT_TRUE(verifier.verify(sc.name, sc.file.num_chunks(), chal, proof));
    EXPECT_TRUE(verifier.verify(file_ctx, chal, proof));
    ProofPrivate priv = prover.prove_private(chal, rng);
    EXPECT_TRUE(
        verifier.verify_private(sc.name, sc.file.num_chunks(), chal, priv));
    EXPECT_TRUE(verifier.verify_private(file_ctx, chal, priv));

    ProofBasic bad = proof;
    bad.y = bad.y + Fr::one();
    EXPECT_FALSE(verifier.verify(sc.name, sc.file.num_chunks(), chal, bad));
    EXPECT_FALSE(verifier.verify(file_ctx, chal, bad));
    ProofPrivate badp = priv;
    badp.y_prime = badp.y_prime + Fr::one();
    EXPECT_FALSE(
        verifier.verify_private(sc.name, sc.file.num_chunks(), chal, badp));
    EXPECT_FALSE(verifier.verify_private(file_ctx, chal, badp));
  }

  std::vector<BasicInstance> instances;
  for (int i = 0; i < 3; ++i) {
    BasicInstance inst;
    inst.name = sc.name;
    inst.num_chunks = sc.file.num_chunks();
    inst.challenge = make_challenge(rng, 4);
    inst.proof = prover.prove(inst.challenge);
    instances.push_back(inst);
  }
  EXPECT_TRUE(verifier.verify_batch(instances, rng));
  instances[1].proof.y = instances[1].proof.y + Fr::one();
  EXPECT_FALSE(verifier.verify_batch(instances, rng));
}

TEST(AuditProver, PreparedSigmaTableMatchesColdPath) {
  // The sigma subset-MSM over the prepared tag table must emit byte-for-byte
  // the proofs of the gather-then-cold-MSM path it replaces.
  auto rng = SecureRng::deterministic(415);
  Scenario sc = make_scenario(5000, 8, rng);
  Prover prepared(sc.kp.pk, sc.file, sc.tag, /*prepare_psi=*/true,
                  /*prepare_sigma=*/true);
  Prover cold(sc.kp.pk, sc.file, sc.tag);
  for (int i = 0; i < 3; ++i) {
    Challenge chal = make_challenge(rng, 4 + 3 * i);
    EXPECT_EQ(serialize(prepared.prove(chal)), serialize(cold.prove(chal)));
    auto rng_a = SecureRng::deterministic(500 + i);
    auto rng_b = SecureRng::deterministic(500 + i);
    EXPECT_EQ(serialize(prepared.prove_private(chal, rng_a)),
              serialize(cold.prove_private(chal, rng_b)));
  }
}

TEST(AuditProver, PreparedPsiTablesMatchColdPath) {
  // The prepared shifted-base tables for pk.g1_alpha_powers must leave the
  // proof bit-identical to the cold-MSM prover.
  auto rng = SecureRng::deterministic(451);
  Scenario sc = make_scenario(6000, 12, rng);
  Prover prepared(sc.kp.pk, sc.file, sc.tag, /*prepare_psi=*/true);
  Prover cold(sc.kp.pk, sc.file, sc.tag, /*prepare_psi=*/false);
  for (int i = 0; i < 2; ++i) {
    Challenge chal = make_challenge(rng, 6);
    ProofBasic a = prepared.prove(chal);
    ProofBasic b = cold.prove(chal);
    EXPECT_EQ(a.sigma, b.sigma);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.psi, b.psi);
  }
}

TEST(AuditTags, ParallelMatchesSerial) {
  auto rng = SecureRng::deterministic(402);
  auto kp = keygen(5, rng);
  auto data = std::vector<std::uint8_t>(2000, 0xab);
  auto file = storage::encode_file(data, 5);
  Fr name = Fr::random(rng);
  FileTag serial = generate_tags(kp.sk, kp.pk, file, name, 1);
  FileTag parallel = generate_tags(kp.sk, kp.pk, file, name, 4);
  ASSERT_EQ(serial.sigmas.size(), parallel.sigmas.size());
  for (std::size_t i = 0; i < serial.sigmas.size(); ++i) {
    EXPECT_EQ(serial.sigmas[i], parallel.sigmas[i]);
  }
}

// ---------------------------------------------------------------------------
// Batch verification.
// ---------------------------------------------------------------------------

TEST(AuditBatch, ManyRoundsVerifyTogether) {
  auto rng = SecureRng::deterministic(403);
  Scenario sc = make_scenario(3000, 6, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  std::vector<BasicInstance> instances;
  for (int i = 0; i < 8; ++i) {
    BasicInstance inst;
    inst.name = sc.name;
    inst.num_chunks = sc.file.num_chunks();
    inst.challenge = make_challenge(rng, 4);
    inst.proof = prover.prove(inst.challenge);
    instances.push_back(inst);
  }
  EXPECT_TRUE(verify_batch(sc.kp.pk, instances, rng));
}

TEST(AuditBatch, SingleBadProofPoisonsBatch) {
  auto rng = SecureRng::deterministic(404);
  Scenario sc = make_scenario(3000, 6, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  std::vector<BasicInstance> instances;
  for (int i = 0; i < 5; ++i) {
    BasicInstance inst;
    inst.name = sc.name;
    inst.num_chunks = sc.file.num_chunks();
    inst.challenge = make_challenge(rng, 4);
    inst.proof = prover.prove(inst.challenge);
    instances.push_back(inst);
  }
  instances[3].proof.y += Fr::one();
  EXPECT_FALSE(verify_batch(sc.kp.pk, instances, rng));
  EXPECT_TRUE(verify_batch(sc.kp.pk, std::span<const BasicInstance>{}, rng));
}

// ---------------------------------------------------------------------------
// Wire formats.
// ---------------------------------------------------------------------------

TEST(AuditWire, ProofSizesMatchPaper) {
  auto rng = SecureRng::deterministic(405);
  Scenario sc = make_scenario(2000, 10, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  Challenge chal = make_challenge(rng, 5);
  auto basic = serialize(prover.prove(chal));
  EXPECT_EQ(basic.size(), 96u);  // Fig. 5 "w/o on-chain privacy"
  auto priv = serialize(prover.prove_private(chal, rng));
  EXPECT_EQ(priv.size(), 288u);  // Table II / Fig. 5 "w/ on-chain privacy"
}

TEST(AuditWire, ProofRoundTrip) {
  auto rng = SecureRng::deterministic(406);
  Scenario sc = make_scenario(2000, 10, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  Challenge chal = make_challenge(rng, 5);

  ProofBasic basic = prover.prove(chal);
  auto basic_bytes = serialize(basic);
  auto basic2 = deserialize_basic(basic_bytes);
  ASSERT_TRUE(basic2.has_value());
  EXPECT_EQ(basic2->sigma, basic.sigma);
  EXPECT_EQ(basic2->y, basic.y);
  EXPECT_EQ(basic2->psi, basic.psi);
  EXPECT_TRUE(verify(sc.kp.pk, sc.name, sc.file.num_chunks(), chal, *basic2));

  ProofPrivate priv = prover.prove_private(chal, rng);
  auto priv_bytes = serialize(priv);
  auto priv2 = deserialize_private(priv_bytes);
  ASSERT_TRUE(priv2.has_value());
  EXPECT_EQ(priv2->big_r, priv.big_r);
  EXPECT_TRUE(verify_private(sc.kp.pk, sc.name, sc.file.num_chunks(), chal, *priv2));
}

TEST(AuditWire, MalformedProofRejected) {
  std::vector<std::uint8_t> junk(96, 0xff);
  EXPECT_FALSE(deserialize_basic(junk).has_value());
  EXPECT_FALSE(deserialize_basic(std::vector<std::uint8_t>(95)).has_value());
  std::vector<std::uint8_t> junk288(288, 0xff);
  EXPECT_FALSE(deserialize_private(junk288).has_value());
}

TEST(AuditWire, GtCompressionRoundTrip) {
  auto rng = SecureRng::deterministic(407);
  for (int i = 0; i < 3; ++i) {
    // Any pairing output is unit-norm.
    Fp12 g = ::dsaudit::pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
    auto bytes = gt_compress(g);
    auto back = gt_decompress(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, g);
  }
  // Identity (b = 0 path).
  auto one_bytes = gt_compress(Fp12::one());
  auto one_back = gt_decompress(one_bytes);
  ASSERT_TRUE(one_back.has_value());
  EXPECT_TRUE(one_back->is_one());
  // Non-unit-norm elements are rejected at compression time.
  Fp12 not_gt = Fp12::random(rng);
  EXPECT_THROW(gt_compress(not_gt), std::invalid_argument);
}

TEST(AuditWire, GtDecompressRejectsUnitNormNonSubgroupElements) {
  auto rng = SecureRng::deterministic(409);
  // f^{p^6 - 1} is unit-norm for any f (it survives gt_compress) but lives in
  // the full order-(p^6+1) subgroup, which is overwhelmingly larger than GT;
  // a decoder that only checks the norm equation would accept it.
  for (int i = 0; i < 3; ++i) {
    Fp12 f = Fp12::random(rng);
    Fp12 u = f.conjugate() * f.inverse();
    ASSERT_FALSE(::dsaudit::pairing::gt_in_subgroup(u));
    auto bytes = gt_compress(u);  // unit-norm: compression accepts
    EXPECT_FALSE(gt_decompress(bytes).has_value());
  }
  // -1 is unit-norm with order 2; r is odd, so it is not a pairing value.
  Fp12 minus_one{-ff::Fp6::one(), ff::Fp6::zero()};
  EXPECT_FALSE(gt_decompress(gt_compress(minus_one)).has_value());
  // Sanity: genuine pairing outputs do pass the subgroup check.
  Fp12 g = ::dsaudit::pairing::pairing(curve::g1_random(rng), curve::g2_random(rng));
  EXPECT_TRUE(::dsaudit::pairing::gt_in_subgroup(g));
}

TEST(AuditWire, TamperedProofAndKeyEncodingsRejected) {
  auto rng = SecureRng::deterministic(410);
  Scenario sc = make_scenario(1500, 8, rng);
  Prover prover(sc.kp.pk, sc.file, sc.tag);
  Challenge chal = make_challenge(rng, 4);

  // y (resp. y') replaced by the non-canonical encoding r itself.
  auto y_tampered = serialize(prover.prove(chal));
  Fr::modulus().to_be_bytes(
      std::span<std::uint8_t, 32>(y_tampered.data() + 32, 32));
  EXPECT_FALSE(deserialize_basic(y_tampered).has_value());

  // big_r replaced by a unit-norm element outside GT.
  auto priv_bytes = serialize(prover.prove_private(chal, rng));
  Fp12 f = Fp12::random(rng);
  auto bad_r = gt_compress(f.conjugate() * f.inverse());
  std::copy(bad_r.begin(), bad_r.end(), priv_bytes.begin() + 96);
  EXPECT_FALSE(deserialize_private(priv_bytes).has_value());

  // Public keys: s = 0, an infinity epsilon, and a non-GT e(g1, eps) all
  // fail to deserialize.
  auto pk_bytes = serialize(sc.kp.pk, true);
  auto zero_s = pk_bytes;
  std::fill(zero_s.begin(), zero_s.begin() + 8, std::uint8_t{0});
  EXPECT_FALSE(deserialize_public_key(zero_s).has_value());

  auto inf_eps = pk_bytes;
  std::fill(inf_eps.begin() + 8, inf_eps.begin() + 72, std::uint8_t{0});
  inf_eps[8] = 0x80;  // valid infinity encoding, invalid key component
  EXPECT_FALSE(deserialize_public_key(inf_eps).has_value());

  auto bad_gt_pk = pk_bytes;
  std::copy(bad_r.begin(), bad_r.end(), bad_gt_pk.end() - 192);
  EXPECT_FALSE(deserialize_public_key(bad_gt_pk).has_value());
}

TEST(AuditWire, PublicKeyRoundTripAndFig4Sizes) {
  auto rng = SecureRng::deterministic(408);
  for (std::size_t s : {10u, 20u, 50u, 100u}) {
    auto kp = keygen(s, rng);
    for (bool priv : {false, true}) {
      auto bytes = serialize(kp.pk, priv);
      EXPECT_EQ(bytes.size(), kp.pk.serialized_size(priv));
      auto back = deserialize_public_key(bytes);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(back->s, s);
      EXPECT_EQ(back->epsilon, kp.pk.epsilon);
      EXPECT_EQ(back->delta, kp.pk.delta);
      ASSERT_EQ(back->g1_alpha_powers.size(), kp.pk.g1_alpha_powers.size());
      if (priv) {
        EXPECT_EQ(back->e_g1_epsilon, kp.pk.e_g1_epsilon);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Misc protocol pieces.
// ---------------------------------------------------------------------------

TEST(AuditMisc, ChunksForConfidenceMatchesPaper) {
  // §VI-A: "setting k to 300 can give D storage assurance of 95% if only 1%
  // of entire data is tampered" — ln(0.05)/ln(0.99) = 298.07 -> 299.
  std::size_t k95 = chunks_for_confidence(0.95, 0.01);
  EXPECT_GE(k95, 295u);
  EXPECT_LE(k95, 300u);
  // Fig. 9's sweep endpoints.
  EXPECT_NEAR(static_cast<double>(chunks_for_confidence(0.91, 0.01)), 240.0, 5.0);
  EXPECT_NEAR(static_cast<double>(chunks_for_confidence(0.99, 0.01)), 460.0, 5.0);
  EXPECT_THROW(chunks_for_confidence(1.0, 0.01), std::invalid_argument);
  EXPECT_THROW(chunks_for_confidence(0.95, 0.0), std::invalid_argument);
}

TEST(AuditMisc, ExpandChallengeDeterministicAndDistinct) {
  auto rng = SecureRng::deterministic(409);
  Challenge c = make_challenge(rng, 50);
  auto a = expand_challenge(c, 200);
  auto b = expand_challenge(c, 200);
  EXPECT_EQ(a.indices, b.indices);
  for (std::size_t i = 0; i < a.coefficients.size(); ++i) {
    EXPECT_EQ(a.coefficients[i], b.coefficients[i]);
  }
  EXPECT_EQ(a.indices.size(), 50u);
  EXPECT_THROW(expand_challenge(c, 0), std::invalid_argument);
  Challenge zero_k = c;
  zero_k.k = 0;
  EXPECT_THROW(expand_challenge(zero_k, 10), std::invalid_argument);
}

TEST(AuditMisc, HashGtIsDeterministicAndSensitive) {
  auto rng = SecureRng::deterministic(410);
  Fp12 a = Fp12::random(rng);
  Fp12 b = Fp12::random(rng);
  EXPECT_EQ(hash_gt_to_fr(a), hash_gt_to_fr(a));
  EXPECT_NE(hash_gt_to_fr(a), hash_gt_to_fr(b));
}

TEST(AuditMisc, KeygenValidatesS) {
  auto rng = SecureRng::deterministic(411);
  EXPECT_THROW(keygen(0, rng), std::invalid_argument);
  auto kp = keygen(1, rng);
  EXPECT_EQ(kp.pk.g1_alpha_powers.size(), 1u);
  auto kp50 = keygen(50, rng);
  EXPECT_EQ(kp50.pk.g1_alpha_powers.size(), 49u);
  // e(g1, epsilon) consistency.
  EXPECT_EQ(kp50.pk.e_g1_epsilon,
            ::dsaudit::pairing::pairing(curve::G1::generator(), kp50.pk.epsilon));
}

}  // namespace
}  // namespace dsaudit::audit
