// Chaos tests for the deterministic fault engine: randomized fault schedules
// drawn from seeds, replayed through the full network simulation, with the
// system-wide invariants (money conservation, exact escrow accounting,
// liveness, recoverability-or-declared-loss) checked after every run.
//
// A failing seed prints itself plus the offending schedule so it can be
// replayed and pinned as a regression; the replay suite proves that a fixed
// (seed, schedule) pair reproduces the chain, the ledger and the stats
// bit-identically at DSAUDIT_THREADS = 1, 2 and 8.
//
// Seed count: DSAUDIT_CHAOS_SEEDS overrides the default (sanitizer CI runs a
// smaller sweep; the `chaos-smoke` ctest target runs only ChaosSmoke.*).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/network_sim.hpp"

namespace dsaudit::sim {
namespace {

// Tiny population, non-private proofs: one chaos run is a few milliseconds,
// so a 100-seed sweep stays inside the tier-1 budget. Retry and slashing are
// both on so the schedules exercise the full state machine.
NetworkConfig chaos_config() {
  NetworkConfig c;
  c.num_owners = 2;
  c.num_providers = 4;
  c.file_bytes = 400;
  c.s = 4;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.num_audits = 2;
  c.challenged_chunks = 999;  // challenge every chunk: deterministic outcomes
  c.private_proofs = false;
  c.timeout_retry_limit = 1;
  c.slash_after_consecutive = 2;
  return c;
}

chain::Timestamp chaos_horizon(const NetworkConfig& c) {
  return (c.num_audits + 2) * c.audit_period_s;
}

std::size_t seed_count(std::size_t fallback) {
  const char* env = std::getenv("DSAUDIT_CHAOS_SEEDS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

// One full chaos run: draw the schedule from `seed`, seed the network from it
// too (so placements, data and keys vary with the faults), run to completion
// and check every invariant. Reports the seed + schedule on any violation.
void run_chaos_seed(std::uint64_t seed) {
  const NetworkConfig base = chaos_config();
  FaultSchedule schedule =
      FaultSchedule::random(seed, base.num_providers, chaos_horizon(base), 4);
  try {
    NetworkConfig c = base;
    c.rng_seed = seed;
    NetworkSim net(c);
    net.set_fault_schedule(schedule);
    net.deploy();
    net.run_to_completion();
    net.check_invariants();
  } catch (const std::exception& e) {
    FAIL() << "chaos seed " << seed << " failed: " << e.what()
           << "\nschedule:\n"
           << schedule.describe();
  }
}

// Everything observable about a finished run, flattened to text so a replay
// mismatch shows up as a readable diff: the full transaction stream, every
// balance, the stats block and the per-owner recovery disposition.
// Contract addresses are canonicalized by first appearance: the raw labels
// come from a process-global counter, so back-to-back runs in one process
// get different numbers even with identical behavior.
std::string fingerprint(const NetworkSim& net, const NetworkConfig& c) {
  std::ostringstream out;
  const chain::Blockchain& chain = net.chain();
  out << "chain_bytes=" << chain.total_chain_bytes()
      << " gas=" << chain.total_gas_used() << " blocks=" << chain.blocks().size()
      << " txs=" << chain.transactions().size() << "\n";
  std::map<std::string, std::string> canon;
  auto canonical = [&canon](const std::string& from) -> const std::string& {
    if (from.rfind("contract-", 0) != 0) return from;
    auto [it, fresh] = canon.emplace(from, "");
    if (fresh) it->second = "C" + std::to_string(canon.size());
    return it->second;
  };
  for (const auto& tx : chain.transactions()) {
    out << canonical(tx.from) << "|" << tx.description << "|"
        << tx.payload_bytes << "|" << tx.gas_used << "|" << tx.submitted_at
        << "|" << tx.mined_at << "|" << tx.block_number << "\n";
  }
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    std::string who = "owner-" + std::to_string(o);
    out << who << "=" << net.balance(who) << " lost=" << net.data_lost(o)
        << " recover=" << net.owner_can_recover(o) << "\n";
  }
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    std::string who = "provider-" + std::to_string(p);
    out << who << "=" << net.balance(who) << "\n";
  }
  NetworkStats st = net.stats();
  out << "rounds=" << st.total_rounds << " pass=" << st.passes
      << " fail=" << st.fails << " timeout=" << st.timeouts
      << " gas=" << st.total_gas << " crashes=" << st.crashes
      << " offline=" << st.offline_events << " rejoins=" << st.rejoins
      << " shard_losses=" << st.shard_losses << " slashes=" << st.slashes
      << " exits=" << st.provider_exits << " retries=" << st.timeout_retries
      << " repairs=" << st.repairs << " bytes_repaired=" << st.bytes_repaired
      << " data_loss=" << st.data_loss_events << " repair_gas=" << st.repair_gas
      << "\n";
  return out.str();
}

std::string run_and_fingerprint(std::uint64_t seed) {
  NetworkConfig c = chaos_config();
  c.rng_seed = seed;
  FaultSchedule schedule =
      FaultSchedule::random(seed, c.num_providers, chaos_horizon(c), 4);
  NetworkSim net(c);
  net.set_fault_schedule(schedule);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();
  return fingerprint(net, c);
}

// --------------------------------------------------------------------------
// Property sweep: >= 100 randomized schedules hold every invariant.
// --------------------------------------------------------------------------

TEST(ChaosProperty, RandomizedFaultSchedulesHoldInvariants) {
  const std::size_t n = seed_count(100);
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    run_chaos_seed(seed);
    if (HasFatalFailure()) return;
  }
}

// --------------------------------------------------------------------------
// Replay determinism: same seed, bit-identical chain/ledger/stats at 1/2/8
// worker threads.
// --------------------------------------------------------------------------

TEST(ChaosProperty, ReplayIsBitIdenticalAcrossThreadCounts) {
  const NetworkConfig c = chaos_config();
  // Pick the first few seeds whose schedules are actually busy (>= 2 events)
  // so the replay exercises faults, not just the legacy path.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; seeds.size() < 3 && s < 200; ++s) {
    if (FaultSchedule::random(s, c.num_providers, chaos_horizon(c), 4)
            .events.size() >= 2) {
      seeds.push_back(s);
    }
  }
  ASSERT_EQ(seeds.size(), 3u);

  const unsigned original = parallel::thread_count();
  for (std::uint64_t seed : seeds) {
    parallel::set_thread_count(1);
    const std::string baseline = run_and_fingerprint(seed);
    for (unsigned width : {2u, 8u}) {
      parallel::set_thread_count(width);
      EXPECT_EQ(run_and_fingerprint(seed), baseline)
          << "seed " << seed << " diverged at " << width << " threads";
    }
  }
  parallel::set_thread_count(original);
}

// --------------------------------------------------------------------------
// Bounded smoke suite — the `chaos-smoke` ctest target runs exactly this
// (cheap enough for every sanitizer job in the CI matrix).
// --------------------------------------------------------------------------

TEST(ChaosSmoke, FixedSeedSweep) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    run_chaos_seed(seed);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace dsaudit::sim
