// §VII economics/scalability model tests, anchored to the paper's numbers.
#include <gtest/gtest.h>

#include "econ/cost_model.hpp"

namespace dsaudit::econ {
namespace {

TEST(CostModel, PerAuditAnchors) {
  AuditCostModel m;  // defaults = paper operating point
  EXPECT_EQ(m.gas_per_audit(), 589000u);
  // ~$0.42 gas + $0.01 beacon.
  EXPECT_NEAR(m.usd_per_audit(), 0.43, 0.01);
  // Non-private proofs save exactly the calldata delta.
  AuditCostModel basic = m;
  basic.proof_bytes = 96;
  EXPECT_EQ(m.gas_per_audit() - basic.gas_per_audit(), (288u - 96u) * 16u);
}

TEST(CostModel, WireSizesShareOneSourceOfTruth) {
  // The throughput model's per-audit byte count and the cost model's
  // calldata inputs must agree: both derive from kDefaultProofBytes /
  // kDefaultChallengeBytes, which static_asserts in cost_model.cpp pin to
  // the actual serialized sizes (ProofPrivate::kWireSize, BeaconOutput).
  AuditCostModel m;
  ThroughputModel t;
  EXPECT_EQ(t.audit_tx_bytes, m.proof_bytes + m.challenge_bytes);
  EXPECT_EQ(t.audit_tx_bytes, kDefaultAuditTxBytes);
  EXPECT_EQ(m.proof_bytes, kDefaultProofBytes);
  EXPECT_EQ(m.challenge_bytes, kDefaultChallengeBytes);
}

TEST(CostModel, AggregateWindowRows) {
  AuditCostModel m;
  // One settle-window tx: 88-byte header (seed + nonce + boundary + rounds
  // + opening) + ceil(rounds/8) bitmap.
  EXPECT_EQ(m.aggregate_tx_bytes(64), 96u);
  EXPECT_EQ(m.aggregate_tx_bytes(1), 89u);
  EXPECT_EQ(m.aggregate_tx_bytes(8), 89u);
  EXPECT_EQ(m.aggregate_tx_bytes(9), 90u);
  EXPECT_THROW(m.aggregate_tx_bytes(0), std::invalid_argument);
  EXPECT_THROW(m.aggregate_verify_ms(0), std::invalid_argument);
  // The ISSUE acceptance bar: at a 16-instant window (64 rounds at the
  // bench's 4 rounds/instant), both bytes and gas per audited round beat
  // per-round settlement by >= 5x.
  const std::uint64_t rounds = 64;
  const double bytes_ratio =
      static_cast<double>(m.proof_bytes + m.challenge_bytes) * rounds /
      static_cast<double>(m.aggregate_tx_bytes(rounds));
  EXPECT_GE(bytes_ratio, 5.0);
  const double gas_ratio = static_cast<double>(m.gas_per_audit()) /
                           static_cast<double>(m.gas_per_audit_aggregated(rounds));
  EXPECT_GE(gas_ratio, 5.0);
  // Window gas is monotone in rounds but sub-linear per round.
  EXPECT_GT(m.gas_per_window_tx(64), m.gas_per_window_tx(4));
  EXPECT_LT(m.gas_per_audit_aggregated(64), m.gas_per_audit_aggregated(4));
  EXPECT_EQ(m.gas_per_audit_aggregated(rounds),
            m.gas_per_window_tx(rounds) / rounds);
}

TEST(CostModel, Fig6AnnualFeeShape) {
  AuditCostModel m;
  // Daily auditing for a year lands near cloud-storage pricing (~$150/yr,
  // the Dropbox Business anchor in §VII-B).
  double daily_360 = contract_fee_usd(m, 360, 1.0);
  EXPECT_NEAR(daily_360, 155.0, 10.0);
  // Weekly auditing is ~7x cheaper.
  double weekly_360 = contract_fee_usd(m, 360, 1.0 / 7.0);
  EXPECT_NEAR(daily_360 / weekly_360, 7.0, 0.01);
  // Fees scale linearly in duration (Fig. 6's straight lines).
  EXPECT_NEAR(contract_fee_usd(m, 1800, 1.0) / daily_360, 5.0, 0.01);
  // And linearly in redundancy (§III-A remark).
  EXPECT_NEAR(contract_fee_usd(m, 360, 1.0, 10) / daily_360, 10.0, 0.01);
  EXPECT_THROW(contract_fee_usd(m, 360, 0.0), std::invalid_argument);
}

TEST(CostModel, PkStorageCostFig4Shape) {
  AuditCostModel m;
  // Sizes grow linearly in s; privacy adds a constant 192 bytes.
  auto c10 = pk_storage_cost(10, true, m);
  auto c100 = pk_storage_cost(100, true, m);
  auto c100_basic = pk_storage_cost(100, false, m);
  EXPECT_EQ(c10.bytes, 8u + 128u + 9u * 32u + 192u);
  EXPECT_EQ(c100.bytes, 8u + 128u + 99u * 32u + 192u);
  EXPECT_EQ(c100.bytes - c100_basic.bytes, 192u);
  // "no more than a few US dollars" (§VII-B).
  EXPECT_LT(c100.usd, 5.0);
  EXPECT_GT(c100.usd, 0.01);
  EXPECT_GT(c100.gas, c10.gas);
}

TEST(Throughput, PaperOperatingPoint) {
  ThroughputModel t;  // 18 KB blocks, 15 s
  // "the average throughput would be 2 transactions per second".
  EXPECT_NEAR(t.tx_per_second(), 2.0, 1.0);
  // "our system could support 5,000 active users at the same time with
  // ease" at daily audits with redundancy factored in.
  std::size_t users_plain = t.max_users(1.0, 1);
  EXPECT_GT(users_plain, 100'000u);  // daily audits are easy
  // Hourly audits with 10-provider redundancy is the stress case.
  std::size_t users_stress = t.max_users(24.0, 10);
  EXPECT_GT(users_stress, 500u);
  EXPECT_LT(users_stress, 5'000u);
  EXPECT_THROW(t.max_users(0.0), std::invalid_argument);
}

TEST(Throughput, Fig10ChainGrowthShape) {
  ThroughputModel t;
  // Fig. 10 left: ~1 GB/year at 10,000 users (daily audit, shown up to
  // ~1.2 GB/year); linear in users.
  double g1k = t.chain_growth_gb_per_year(1000, 1.0);
  double g10k = t.chain_growth_gb_per_year(10000, 1.0);
  EXPECT_NEAR(g10k / g1k, 10.0, 0.01);
  EXPECT_GT(g10k, 0.5);
  EXPECT_LT(g10k, 3.0);
  // Much slower than mainnet's ~128 MB/day = ~45 GB/year (§VII-D).
  EXPECT_LT(g10k, 45.0);
}

TEST(Throughput, Fig10ProverLoadShape) {
  // Fig. 10 right: linear growth; ~20 s for ~300 users at the paper's
  // ~60-70 ms/proof. The bench measures our own per-proof time; here we
  // check the model's arithmetic.
  EXPECT_NEAR(provider_prove_time_s(300, 66.0), 19.8, 0.1);
  EXPECT_NEAR(provider_prove_time_s(10, 66.0), 0.66, 0.01);
  EXPECT_EQ(provider_prove_time_s(0, 66.0), 0.0);
}

}  // namespace
}  // namespace dsaudit::econ
