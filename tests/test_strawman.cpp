// Strawman (§IV) tests: Merkle correctness, circuit/cost calibration against
// Table II, and the challenge-reuse cheat that motivates HLA-based auditing.
#include <gtest/gtest.h>

#include "primitives/random.hpp"
#include "strawman/strawman_audit.hpp"

namespace dsaudit::strawman {
namespace {

using primitives::SecureRng;

std::vector<std::uint8_t> random_bytes(std::size_t n, SecureRng& rng) {
  std::vector<std::uint8_t> v(n);
  rng.fill(v);
  return v;
}

TEST(Merkle, PathsVerifyForAllLeaves) {
  auto rng = SecureRng::deterministic(600);
  for (std::size_t size : {1u, 31u, 32u, 33u, 1000u, 1024u}) {
    auto data = random_bytes(size, rng);
    MerkleTree tree(data);
    for (std::size_t i = 0; i < tree.leaf_count(); ++i) {
      auto p = tree.path(i);
      EXPECT_TRUE(MerkleTree::verify_path(tree.root(), tree.leaf(i), p))
          << "size=" << size << " leaf=" << i;
    }
    EXPECT_THROW(tree.path(tree.leaf_count()), std::out_of_range);
  }
}

TEST(Merkle, PowerOfTwoPadding) {
  auto rng = SecureRng::deterministic(601);
  auto data = random_bytes(33, rng);  // 2 real leaves -> padded to 2
  MerkleTree t2(data);
  EXPECT_EQ(t2.leaf_count(), 2u);
  EXPECT_EQ(t2.depth(), 1u);
  MerkleTree t1k(random_bytes(1024, rng));  // paper's 1 KB file: 32 leaves
  EXPECT_EQ(t1k.leaf_count(), 32u);
  EXPECT_EQ(t1k.depth(), 5u);
}

TEST(Merkle, TamperDetection) {
  auto rng = SecureRng::deterministic(602);
  auto data = random_bytes(512, rng);
  MerkleTree tree(data);
  auto p = tree.path(3);
  // Wrong leaf.
  Digest32 wrong = tree.leaf(4);
  EXPECT_FALSE(MerkleTree::verify_path(tree.root(), wrong, p));
  // Tampered sibling.
  auto p2 = p;
  p2.siblings[0][0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify_path(tree.root(), tree.leaf(3), p2));
  // Wrong index (proof for a different position).
  auto p3 = p;
  p3.leaf_index = 5;
  EXPECT_FALSE(MerkleTree::verify_path(tree.root(), tree.leaf(3), p3));
  // Different data -> different root.
  data[0] ^= 1;
  MerkleTree other(data);
  EXPECT_NE(other.root(), tree.root());
}

TEST(SnarkSim, ConstraintCountMatchesTableII) {
  // Paper's strawman: 1 KB file, ~3x10^5 constraints.
  MerkleCircuit c = MerkleCircuit::for_file(1024);
  EXPECT_EQ(c.depth, 5u);
  EXPECT_EQ(c.constraints, 27904u * 11);  // 306,944
  EXPECT_NEAR(static_cast<double>(c.constraints), 3e5, 1e4);
}

TEST(SnarkSim, CostModelMatchesTableII) {
  Groth16CostModel m;
  std::size_t constraints = 300000;
  EXPECT_NEAR(m.setup_ms(constraints), 260000.0, 1.0);            // 260 s
  EXPECT_NEAR(m.prove_ms(constraints), 30000.0, 1.0);             // 30 s
  EXPECT_NEAR(m.params_bytes(constraints), 150.0 * 1048576.0, 1e3); // 150 MB
  EXPECT_NEAR(m.memory_bytes(constraints), 300.0 * 1048576.0, 1e3); // 300 MB
  EXPECT_EQ(m.proof_bytes, 384u);
  EXPECT_EQ(m.verify_ms, 30.0);
}

TEST(StrawmanAuditor, HonestRoundTrip) {
  auto rng = SecureRng::deterministic(603);
  auto data = random_bytes(1024, rng);
  StrawmanAuditor auditor(data);
  for (int round = 0; round < 20; ++round) {
    std::size_t leaf = auditor.challenge_leaf(rng.next_u64());
    StrawmanProof proof = auditor.prove(leaf);
    EXPECT_TRUE(StrawmanAuditor::verify(auditor.root(), proof));
    EXPECT_EQ(proof.proof_bytes, 384u);
    EXPECT_GT(proof.prove_ms_model, 1000.0);  // tens of seconds per Table II
  }
}

TEST(StrawmanAuditor, ChallengeReuseCheatSucceedsOverTime) {
  // §IV-D: after enough rounds the provider has seen most leaves; it drops
  // the file, keeps the (leaf, path) stash, and keeps passing audits.
  auto rng = SecureRng::deterministic(604);
  auto data = random_bytes(1024, rng);  // 32 leaves
  StrawmanAuditor auditor(data);
  CheatingStrawmanProvider cheat(auditor);

  // Phase 1: 200 honest rounds — coupon-collector says nearly all 32 leaves
  // get challenged.
  for (int i = 0; i < 200; ++i) {
    cheat.respond(auditor.challenge_leaf(rng.next_u64()));
  }
  EXPECT_GT(cheat.cached_leaves(), 28u);

  // Phase 2: the cheat drops the file. It still answers almost every audit.
  cheat.drop_file();
  int answered = 0, rounds = 100;
  for (int i = 0; i < rounds; ++i) {
    std::size_t leaf = auditor.challenge_leaf(rng.next_u64());
    auto proof = cheat.respond(leaf);
    if (proof) {
      EXPECT_TRUE(StrawmanAuditor::verify(auditor.root(), *proof));
      ++answered;
    }
  }
  EXPECT_GT(answered, 85);  // passes >85% of audits while storing no file
  EXPECT_GT(cheat.storage_bytes(), 0u);
}

TEST(StrawmanAuditor, MainProtocolImmuneToThatCheat) {
  // Contrast: in the HLA protocol the response depends on a fresh random
  // linear combination with a fresh evaluation point each round — storing
  // past proofs does not help, so the analogous "cache old answers" provider
  // fails immediately. (Replay is covered in test_audit; here we just check
  // old strawman responses cannot be stitched into a new round.)
  auto rng = SecureRng::deterministic(605);
  auto data = random_bytes(1024, rng);
  StrawmanAuditor auditor(data);
  StrawmanProof old_proof = auditor.prove(3);
  // A replayed proof for the wrong challenged leaf is detectable only if the
  // verifier checks the binding of index to randomness — which the strawman
  // must do out-of-band. This is the gap the paper criticizes.
  std::size_t challenged = 7;
  EXPECT_NE(old_proof.leaf_index, challenged);
  // The proof itself still verifies against the root...
  EXPECT_TRUE(StrawmanAuditor::verify(auditor.root(), old_proof));
  // ...so the contract MUST additionally pin the index.
  EXPECT_NE(old_proof.leaf_index, challenged);
}

}  // namespace
}  // namespace dsaudit::strawman
