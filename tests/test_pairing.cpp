// Pairing correctness: bilinearity, non-degeneracy, final-exponentiation
// cross-check, multi-pairing consistency. These tests gate everything above
// them — if the pairing is right, the audit protocol's algebra follows.
#include <gtest/gtest.h>

#include "pairing/pairing.hpp"

namespace dsaudit::pairing {
namespace {

using ff::Fr;
using primitives::SecureRng;

TEST(Pairing, NonDegenerate) {
  Fp12 e = pairing(G1::generator(), G2::generator());
  EXPECT_FALSE(e.is_one());
  EXPECT_FALSE(e.is_zero());
  // Result has order dividing r: e^r == 1.
  EXPECT_TRUE(e.pow_u256(Fr::modulus()).is_one());
}

TEST(Pairing, InfinityGivesOne) {
  auto rng = SecureRng::deterministic(60);
  EXPECT_TRUE(pairing(G1::infinity(), curve::g2_random(rng)).is_one());
  EXPECT_TRUE(pairing(curve::g1_random(rng), G2::infinity()).is_one());
}

TEST(Pairing, BilinearLeft) {
  auto rng = SecureRng::deterministic(61);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  Fr a = Fr::random(rng);
  EXPECT_EQ(pairing(p.mul(a), q), pairing(p, q).pow_u256(a.to_u256()));
}

TEST(Pairing, BilinearRight) {
  auto rng = SecureRng::deterministic(62);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  Fr b = Fr::random(rng);
  EXPECT_EQ(pairing(p, q.mul(b)), pairing(p, q).pow_u256(b.to_u256()));
}

TEST(Pairing, FullBilinearity) {
  auto rng = SecureRng::deterministic(63);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  Fr a = Fr::random(rng), b = Fr::random(rng);
  EXPECT_EQ(pairing(p.mul(a), q.mul(b)), pairing(p.mul(b), q.mul(a)));
  EXPECT_EQ(pairing(p.mul(a), q.mul(b)), pairing(p, q).pow_u256((a * b).to_u256()));
}

TEST(Pairing, AdditiveInFirstArgument) {
  auto rng = SecureRng::deterministic(64);
  G1 p1 = curve::g1_random(rng), p2 = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  EXPECT_EQ(pairing(p1 + p2, q), pairing(p1, q) * pairing(p2, q));
}

TEST(Pairing, AdditiveInSecondArgument) {
  auto rng = SecureRng::deterministic(65);
  G1 p = curve::g1_random(rng);
  G2 q1 = curve::g2_random(rng), q2 = curve::g2_random(rng);
  EXPECT_EQ(pairing(p, q1 + q2), pairing(p, q1) * pairing(p, q2));
}

TEST(Pairing, InverseRelation) {
  auto rng = SecureRng::deterministic(66);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  EXPECT_TRUE((pairing(p, q) * pairing(-p, q)).is_one());
  EXPECT_TRUE((pairing(p, q) * pairing(p, -q)).is_one());
}

TEST(FinalExp, FastMatchesSlow) {
  auto rng = SecureRng::deterministic(67);
  for (int i = 0; i < 3; ++i) {
    Fp12 f = Fp12::random(rng);
    if (f.is_zero()) continue;
    EXPECT_EQ(final_exponentiation(f), final_exponentiation_slow(f));
  }
  // And on an actual Miller-loop output.
  Fp12 m = miller_loop(G1::generator(), G2::generator());
  EXPECT_EQ(final_exponentiation(m), final_exponentiation_slow(m));
  EXPECT_THROW(final_exponentiation(Fp12::zero()), std::domain_error);
}

TEST(MultiPairing, MatchesProductOfPairings) {
  auto rng = SecureRng::deterministic(68);
  std::vector<std::pair<G1, G2>> pairs;
  Fp12 expect = Fp12::one();
  for (int i = 0; i < 4; ++i) {
    pairs.emplace_back(curve::g1_random(rng), curve::g2_random(rng));
    expect *= pairing(pairs.back().first, pairs.back().second);
  }
  EXPECT_EQ(multi_pairing(pairs), expect);
}

TEST(MultiPairing, ProductIsOneDetection) {
  auto rng = SecureRng::deterministic(69);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  // e(P,Q) * e(-P,Q) = 1, and with a third random pair it is not 1.
  std::vector<std::pair<G1, G2>> good{{p, q}, {-p, q}};
  EXPECT_TRUE(pairing_product_is_one(good));
  std::vector<std::pair<G1, G2>> bad{{p, q}, {-p, q},
                                     {curve::g1_random(rng), curve::g2_random(rng)}};
  EXPECT_FALSE(pairing_product_is_one(bad));
}

TEST(Prepared, MatchesTextbookPairingOnRandomPairs) {
  // The prepared projective engine and the textbook affine loop compute
  // Miller values differing by a subfield factor; the pairings must agree
  // exactly. This differential pins the whole prepared stack (projective
  // step formulas, cached coefficient chain, replay loop).
  auto rng = SecureRng::deterministic(70);
  for (int i = 0; i < 4; ++i) {
    G1 p = curve::g1_random(rng);
    G2 q = curve::g2_random(rng);
    Fp12 expect = pairing_textbook(p, q);
    EXPECT_EQ(pairing(p, q), expect);
    G2Prepared prep(q);
    EXPECT_EQ(pairing(p, prep), expect);
  }
}

TEST(Prepared, ReusedAcrossManyG1Points) {
  // One prepared Q serving many G1 arguments — the verifier-key usage
  // pattern — stays consistent with fresh pairings.
  auto rng = SecureRng::deterministic(71);
  G2 q = curve::g2_random(rng);
  G2Prepared prep(q);
  for (int i = 0; i < 3; ++i) {
    G1 p = curve::g1_random(rng);
    EXPECT_EQ(pairing(p, prep), pairing_textbook(p, q));
  }
}

TEST(Prepared, InfinityInputs) {
  auto rng = SecureRng::deterministic(72);
  G2Prepared inf_q{G2::infinity()};
  EXPECT_TRUE(inf_q.is_infinity());
  EXPECT_TRUE(pairing(curve::g1_random(rng), inf_q).is_one());
  G2Prepared q(curve::g2_random(rng));
  EXPECT_TRUE(pairing(G1::infinity(), q).is_one());
}

TEST(MultiPairing, InfinityEntriesAreNeutral) {
  // Infinity on either side of any entry contributes a factor 1 to the
  // product, for both the unprepared and the prepared overloads.
  auto rng = SecureRng::deterministic(73);
  G1 p1 = curve::g1_random(rng), p2 = curve::g1_random(rng);
  G2 q1 = curve::g2_random(rng), q2 = curve::g2_random(rng);
  std::vector<std::pair<G1, G2>> clean{{p1, q1}, {p2, q2}};
  std::vector<std::pair<G1, G2>> padded{{G1::infinity(), q1},
                                        {p1, q1},
                                        {p2, G2::infinity()},
                                        {p2, q2},
                                        {G1::infinity(), G2::infinity()}};
  EXPECT_EQ(multi_pairing(padded), multi_pairing(clean));

  G2Prepared pq1(q1), pq2(q2), pinf{G2::infinity()};
  std::vector<PreparedPair> prepared{{G1::infinity(), &pq1},
                                     {p1, &pq1},
                                     {p2, &pinf},
                                     {p2, &pq2}};
  EXPECT_EQ(multi_pairing(prepared), multi_pairing(clean));

  std::vector<std::pair<G1, G2>> all_inf{{G1::infinity(), q1},
                                         {p1, G2::infinity()}};
  EXPECT_TRUE(multi_pairing(all_inf).is_one());
  EXPECT_TRUE(pairing_product_is_one(all_inf));
}

TEST(MultiPairing, PreparedMatchesProductOfTextbookPairings) {
  auto rng = SecureRng::deterministic(74);
  std::vector<G2Prepared> prep;
  std::vector<std::pair<G1, G2>> raw;
  Fp12 expect = Fp12::one();
  for (int i = 0; i < 4; ++i) {
    raw.emplace_back(curve::g1_random(rng), curve::g2_random(rng));
    expect *= pairing_textbook(raw.back().first, raw.back().second);
  }
  prep.reserve(raw.size());
  std::vector<PreparedPair> pairs;
  for (const auto& [p, q] : raw) {
    prep.emplace_back(q);
    pairs.push_back({p, &prep.back()});
  }
  EXPECT_EQ(multi_pairing(pairs), expect);
}

TEST(FinalExp, FastMatchesSlowOnMultiPairProducts) {
  // The cyclotomic-squaring hard part must agree with the giant-exponent
  // reference on products of several Miller loops — the exact shape every
  // verification equation feeds it.
  auto rng = SecureRng::deterministic(75);
  Fp12 m = Fp12::one();
  for (int i = 0; i < 4; ++i) {
    m *= miller_loop(curve::g1_random(rng), curve::g2_random(rng));
  }
  EXPECT_EQ(final_exponentiation(m), final_exponentiation_slow(m));
}

TEST(Fp12Ops, CyclotomicSquareMatchesGenericOnCyclotomicElements) {
  // GT elements (pairing outputs) live in the cyclotomic subgroup, where
  // the Granger–Scott compressed squaring must equal the generic square.
  auto rng = SecureRng::deterministic(76);
  Fp12 g = pairing(curve::g1_random(rng), curve::g2_random(rng));
  Fp12 cur = g;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cur.cyclotomic_square(), cur.square());
    cur = cur.cyclotomic_square() * g;
  }
  ff::Fr e = ff::Fr::random(rng);
  EXPECT_EQ(g.cyclotomic_pow_u256(e.to_u256()), g.pow_u256(e.to_u256()));
  EXPECT_EQ(g.cyclotomic_pow_u64(ff::kBnParamT), g.pow_u64(ff::kBnParamT));
}

TEST(Fp12Ops, DirectFrobeniusPowersMatchIterated) {
  auto rng = SecureRng::deterministic(77);
  for (int i = 0; i < 3; ++i) {
    Fp12 f = Fp12::random(rng);
    EXPECT_EQ(f.frobenius2(), f.frobenius().frobenius());
    EXPECT_EQ(f.frobenius3(), f.frobenius().frobenius().frobenius());
    EXPECT_EQ(f.frobenius_pow(6), f.conjugate());
    EXPECT_EQ(f.frobenius_pow(12), f);
  }
}

TEST(Pairing, KnownExponentPairingIdentity) {
  // e(aG1, G2) == e(G1, aG2) for several small a — catches scalar/loop-count
  // mixups that bilinearity with random scalars might mask.
  for (ff::u64 a : {2ULL, 3ULL, 65537ULL}) {
    EXPECT_EQ(pairing(G1::generator().mul(Fr::from_u64(a)), G2::generator()),
              pairing(G1::generator(), G2::generator().mul(Fr::from_u64(a))))
        << "a=" << a;
  }
}

// ---------------------------------------------------------------------------
// Karabina compressed cyclotomic arithmetic, pinned to the Granger–Scott
// ladder (which itself is pinned to generic squaring above).
// ---------------------------------------------------------------------------

TEST(Karabina, CompressedSquareMatchesCyclotomicSquare) {
  auto rng = SecureRng::deterministic(80);
  Fp12 g = pairing(curve::g1_random(rng), curve::g2_random(rng));
  // Walk a chain of compressed squarings and decompress at every step: each
  // must equal the plain cyclotomic square of the previous full element.
  Fp12 full = g;
  Fp12::CompressedCyclo c = g.cyclotomic_compress();
  for (int i = 0; i < 50; ++i) {
    c = Fp12::compressed_cyclotomic_square(c);
    full = full.cyclotomic_square();
    EXPECT_TRUE(Fp12::cyclotomic_decompress(c) == full) << "step " << i;
    EXPECT_TRUE(full.cyclotomic_compress().h1 == c.h1);
  }
}

TEST(Karabina, BatchDecompressionMatchesSingle) {
  auto rng = SecureRng::deterministic(81);
  std::vector<Fp12::CompressedCyclo> cs;
  std::vector<Fp12> expected;
  Fp12 g = pairing(curve::g1_random(rng), curve::g2_random(rng));
  Fp12 cur = g;
  for (int i = 0; i < 9; ++i) {
    cur = cur.cyclotomic_square();
    cs.push_back(cur.cyclotomic_compress());
    expected.push_back(cur);
  }
  auto got = Fp12::cyclotomic_decompress_batch(cs);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i] == expected[i]) << i;
  }
  // The identity element (all compressed coordinates zero) round-trips.
  EXPECT_TRUE(Fp12::cyclotomic_decompress(Fp12::one().cyclotomic_compress())
                  .is_one());
}

TEST(Karabina, CompressedPowMatchesCyclotomicPow) {
  auto rng = SecureRng::deterministic(82);
  Fp12 g = pairing(curve::g1_random(rng), curve::g2_random(rng));
  // The BN parameter (the final exponentiation's chain), a random 254-bit
  // scalar (the sigma layer's GT exponent), and edge exponents.
  EXPECT_TRUE(g.cyclotomic_pow_compressed(ff::kBnParamT) ==
              g.cyclotomic_pow_u64(ff::kBnParamT));
  ff::Fr e = ff::Fr::random(rng);
  EXPECT_TRUE(g.cyclotomic_pow_compressed(e.to_u256()) ==
              g.cyclotomic_pow_u256(e.to_u256()));
  EXPECT_TRUE(g.cyclotomic_pow_compressed(ff::Fr::modulus()) ==
              g.cyclotomic_pow_u256(ff::Fr::modulus()));
  EXPECT_TRUE(g.cyclotomic_pow_compressed(std::uint64_t{0}).is_one());
  EXPECT_TRUE(g.cyclotomic_pow_compressed(std::uint64_t{1}) == g);
  EXPECT_TRUE(g.cyclotomic_pow_compressed(std::uint64_t{2}) ==
              g.cyclotomic_square());
}

TEST(PairingCountersHook, CountsChainsAndFinalExps) {
  auto rng = SecureRng::deterministic(83);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  reset_pairing_counters();
  pairing(p, q);
  auto c1 = pairing_counters();
  EXPECT_EQ(c1.chains, 1u);
  EXPECT_EQ(c1.final_exps, 1u);

  std::vector<G2Prepared> prep;
  std::vector<PreparedPair> pairs;
  prep.reserve(3);
  for (int i = 0; i < 3; ++i) prep.emplace_back(curve::g2_random(rng));
  for (int i = 0; i < 3; ++i) pairs.push_back({curve::g1_random(rng), &prep[i]});
  reset_pairing_counters();
  multi_pairing(std::span<const PreparedPair>(pairs));
  auto c3 = pairing_counters();
  EXPECT_EQ(c3.chains, 3u);
  EXPECT_EQ(c3.final_exps, 1u);

  // Infinite inputs contribute no chain.
  pairs[1].g1 = G1::infinity();
  reset_pairing_counters();
  multi_pairing(std::span<const PreparedPair>(pairs));
  EXPECT_EQ(pairing_counters().chains, 2u);
}

}  // namespace
}  // namespace dsaudit::pairing
