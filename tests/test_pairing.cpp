// Pairing correctness: bilinearity, non-degeneracy, final-exponentiation
// cross-check, multi-pairing consistency. These tests gate everything above
// them — if the pairing is right, the audit protocol's algebra follows.
#include <gtest/gtest.h>

#include "pairing/pairing.hpp"

namespace dsaudit::pairing {
namespace {

using ff::Fr;
using primitives::SecureRng;

TEST(Pairing, NonDegenerate) {
  Fp12 e = pairing(G1::generator(), G2::generator());
  EXPECT_FALSE(e.is_one());
  EXPECT_FALSE(e.is_zero());
  // Result has order dividing r: e^r == 1.
  EXPECT_TRUE(e.pow_u256(Fr::modulus()).is_one());
}

TEST(Pairing, InfinityGivesOne) {
  auto rng = SecureRng::deterministic(60);
  EXPECT_TRUE(pairing(G1::infinity(), curve::g2_random(rng)).is_one());
  EXPECT_TRUE(pairing(curve::g1_random(rng), G2::infinity()).is_one());
}

TEST(Pairing, BilinearLeft) {
  auto rng = SecureRng::deterministic(61);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  Fr a = Fr::random(rng);
  EXPECT_EQ(pairing(p.mul(a), q), pairing(p, q).pow_u256(a.to_u256()));
}

TEST(Pairing, BilinearRight) {
  auto rng = SecureRng::deterministic(62);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  Fr b = Fr::random(rng);
  EXPECT_EQ(pairing(p, q.mul(b)), pairing(p, q).pow_u256(b.to_u256()));
}

TEST(Pairing, FullBilinearity) {
  auto rng = SecureRng::deterministic(63);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  Fr a = Fr::random(rng), b = Fr::random(rng);
  EXPECT_EQ(pairing(p.mul(a), q.mul(b)), pairing(p.mul(b), q.mul(a)));
  EXPECT_EQ(pairing(p.mul(a), q.mul(b)), pairing(p, q).pow_u256((a * b).to_u256()));
}

TEST(Pairing, AdditiveInFirstArgument) {
  auto rng = SecureRng::deterministic(64);
  G1 p1 = curve::g1_random(rng), p2 = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  EXPECT_EQ(pairing(p1 + p2, q), pairing(p1, q) * pairing(p2, q));
}

TEST(Pairing, AdditiveInSecondArgument) {
  auto rng = SecureRng::deterministic(65);
  G1 p = curve::g1_random(rng);
  G2 q1 = curve::g2_random(rng), q2 = curve::g2_random(rng);
  EXPECT_EQ(pairing(p, q1 + q2), pairing(p, q1) * pairing(p, q2));
}

TEST(Pairing, InverseRelation) {
  auto rng = SecureRng::deterministic(66);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  EXPECT_TRUE((pairing(p, q) * pairing(-p, q)).is_one());
  EXPECT_TRUE((pairing(p, q) * pairing(p, -q)).is_one());
}

TEST(FinalExp, FastMatchesSlow) {
  auto rng = SecureRng::deterministic(67);
  for (int i = 0; i < 3; ++i) {
    Fp12 f = Fp12::random(rng);
    if (f.is_zero()) continue;
    EXPECT_EQ(final_exponentiation(f), final_exponentiation_slow(f));
  }
  // And on an actual Miller-loop output.
  Fp12 m = miller_loop(G1::generator(), G2::generator());
  EXPECT_EQ(final_exponentiation(m), final_exponentiation_slow(m));
  EXPECT_THROW(final_exponentiation(Fp12::zero()), std::domain_error);
}

TEST(MultiPairing, MatchesProductOfPairings) {
  auto rng = SecureRng::deterministic(68);
  std::vector<std::pair<G1, G2>> pairs;
  Fp12 expect = Fp12::one();
  for (int i = 0; i < 4; ++i) {
    pairs.emplace_back(curve::g1_random(rng), curve::g2_random(rng));
    expect *= pairing(pairs.back().first, pairs.back().second);
  }
  EXPECT_EQ(multi_pairing(pairs), expect);
}

TEST(MultiPairing, ProductIsOneDetection) {
  auto rng = SecureRng::deterministic(69);
  G1 p = curve::g1_random(rng);
  G2 q = curve::g2_random(rng);
  // e(P,Q) * e(-P,Q) = 1, and with a third random pair it is not 1.
  std::vector<std::pair<G1, G2>> good{{p, q}, {-p, q}};
  EXPECT_TRUE(pairing_product_is_one(good));
  std::vector<std::pair<G1, G2>> bad{{p, q}, {-p, q},
                                     {curve::g1_random(rng), curve::g2_random(rng)}};
  EXPECT_FALSE(pairing_product_is_one(bad));
}

TEST(Pairing, KnownExponentPairingIdentity) {
  // e(aG1, G2) == e(G1, aG2) for several small a — catches scalar/loop-count
  // mixups that bilinearity with random scalars might mask.
  for (ff::u64 a : {2ULL, 3ULL, 65537ULL}) {
    EXPECT_EQ(pairing(G1::generator().mul(Fr::from_u64(a)), G2::generator()),
              pairing(G1::generator(), G2::generator().mul(Fr::from_u64(a))))
        << "a=" << a;
  }
}

}  // namespace
}  // namespace dsaudit::pairing
