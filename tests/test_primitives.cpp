// Tests for hashes, cipher, RNG and the challenge-expansion PRP/PRF.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "primitives/chacha20.hpp"
#include "primitives/keccak256.hpp"
#include "primitives/prp.hpp"
#include "primitives/random.hpp"
#include "primitives/sha256.hpp"

namespace dsaudit::primitives {
namespace {

std::string to_hex(std::span<const std::uint8_t> d) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (auto b : d) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  auto oneshot = Sha256::hash(data);
  for (std::size_t split : {1u, 63u, 64u, 65u, 500u, 999u}) {
    Sha256 h;
    h.update(std::span(data).first(split));
    h.update(std::span(data).subspan(split));
    EXPECT_EQ(h.finalize(), oneshot) << "split=" << split;
  }
}

TEST(Sha256, MillionA) {
  // FIPS 180-4 long-message vector.
  Sha256 h;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacSha256, Rfc4231Vector1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  std::string msg = "Hi There";
  auto mac = hmac_sha256(key, std::span<const std::uint8_t>(
                                  reinterpret_cast<const std::uint8_t*>(msg.data()),
                                  msg.size()));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Keccak256, EthereumVectors) {
  // Keccak-256 of the empty string is Ethereum's well-known constant.
  EXPECT_EQ(to_hex(Keccak256::hash("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
  EXPECT_EQ(to_hex(Keccak256::hash("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(500);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  auto oneshot = Keccak256::hash(data);
  Keccak256 h;
  h.update(std::span(data).first(136));
  h.update(std::span(data).subspan(136, 1));
  h.update(std::span(data).subspan(137));
  EXPECT_EQ(h.finalize(), oneshot);
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.4.2 test vector: keystream for the canonical key/nonce.
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 c(key, nonce, 1);
  auto ks = c.keystream(16);
  EXPECT_EQ(to_hex(ks), "224f51f3401bd9e12fde276fb8631ded");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 0xaa;
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> plain(1777);
  for (std::size_t i = 0; i < plain.size(); ++i) plain[i] = static_cast<std::uint8_t>(i * 3);
  std::vector<std::uint8_t> buf = plain;
  ChaCha20(key, nonce, 0).crypt(buf);
  EXPECT_NE(buf, plain);
  ChaCha20(key, nonce, 0).crypt(buf);
  EXPECT_EQ(buf, plain);
}

TEST(SecureRng, DeterministicIsReproducible) {
  auto a = SecureRng::deterministic(42);
  auto b = SecureRng::deterministic(42);
  auto c = SecureRng::deterministic(43);
  EXPECT_EQ(a.bytes32(), b.bytes32());
  EXPECT_NE(SecureRng::deterministic(42).bytes32(), c.bytes32());
}

TEST(SecureRng, UniformBounds) {
  auto rng = SecureRng::deterministic(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(FeistelPrp, IsPermutation) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 1;
  for (std::uint64_t domain : {2ULL, 10ULL, 100ULL, 1000ULL, 4096ULL}) {
    FeistelPrp prp(key, domain);
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < domain; ++x) {
      std::uint64_t y = prp.permute(x);
      EXPECT_LT(y, domain);
      EXPECT_TRUE(seen.insert(y).second) << "collision in domain " << domain;
    }
  }
}

TEST(FeistelPrp, KeyDependence) {
  std::array<std::uint8_t, 32> k1{}, k2{};
  k2[0] = 1;
  FeistelPrp p1(k1, 1000), p2(k2, 1000);
  int differing = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (p1.permute(x) != p2.permute(x)) ++differing;
  }
  EXPECT_GT(differing, 900);  // different keys give (almost) disjoint behaviour
}

TEST(FeistelPrp, RejectsOutOfDomain) {
  std::array<std::uint8_t, 32> key{};
  FeistelPrp prp(key, 100);
  EXPECT_THROW(prp.permute(100), std::out_of_range);
  EXPECT_THROW(FeistelPrp(key, 1), std::invalid_argument);
}

TEST(ChallengeIndices, DistinctAndInRange) {
  std::array<std::uint8_t, 32> c1{};
  c1[5] = 0x77;
  auto idx = challenge_indices(c1, 1000, 300);
  EXPECT_EQ(idx.size(), 300u);
  std::set<std::uint64_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 300u);
  EXPECT_LT(*std::max_element(idx.begin(), idx.end()), 1000u);
}

TEST(ChallengeIndices, ClampsToDomain) {
  std::array<std::uint8_t, 32> c1{};
  auto idx = challenge_indices(c1, 5, 300);
  EXPECT_EQ(idx.size(), 5u);
  auto one = challenge_indices(c1, 1, 300);
  EXPECT_EQ(one, std::vector<std::uint64_t>{0});
  EXPECT_THROW(challenge_indices(c1, 0, 1), std::invalid_argument);
}

TEST(PrfBytes, DeterministicAndCounterSensitive) {
  std::array<std::uint8_t, 32> c2{};
  c2[0] = 9;
  EXPECT_EQ(prf_bytes(c2, 0), prf_bytes(c2, 0));
  EXPECT_NE(prf_bytes(c2, 0), prf_bytes(c2, 1));
}

}  // namespace
}  // namespace dsaudit::primitives
