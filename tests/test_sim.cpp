// Network-simulation tests: population-scale behaviour of the full system —
// audit outcomes, money conservation, chain growth, failure recovery, and
// the fault engine's exact churn/repair accounting under hand-written
// schedules (the randomized sweep lives in test_chaos.cpp).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "econ/cost_model.hpp"
#include "sim/network_sim.hpp"
#include "storage/codec.hpp"
#include "storage/dht.hpp"

namespace dsaudit::sim {
namespace {

NetworkConfig small_config() {
  NetworkConfig c;
  c.num_owners = 4;
  c.num_providers = 5;
  c.file_bytes = 1200;
  c.s = 5;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.num_audits = 3;
  c.challenged_chunks = 999;  // challenge every chunk: deterministic outcomes
  c.private_proofs = true;
  return c;
}

TEST(NetworkSim, AllHonestEveryAuditPasses) {
  NetworkSim net(small_config());
  net.deploy();
  net.run_to_completion();
  auto st = net.stats();
  // 4 owners x 3 shards x 3 audits.
  EXPECT_EQ(st.total_rounds, 4u * 3u * 3u);
  EXPECT_EQ(st.passes, st.total_rounds);
  EXPECT_EQ(st.fails, 0u);
  EXPECT_EQ(st.timeouts, 0u);
  // Gas settlement is deterministic: every private-proof round costs exactly
  // the paper's calibrated 589,000-gas anchor, so the network total is an
  // exact constant on any machine and at any thread count.
  EXPECT_EQ(st.total_gas, st.total_rounds * 589'000u);
  EXPECT_GT(st.chain_bytes, 0u);
  for (std::size_t o = 0; o < 4; ++o) EXPECT_TRUE(net.owner_can_recover(o));
}

TEST(NetworkSim, MoneyIsConserved) {
  NetworkSim net(small_config());
  net.deploy();
  std::uint64_t before = net.total_money();
  net.run_to_completion();
  EXPECT_EQ(net.total_money(), before);
}

TEST(NetworkSim, DataDroppingProviderIsCaughtAndSlashed) {
  NetworkConfig c = small_config();
  NetworkSim net(c);
  net.set_behavior("provider-0", ProviderBehavior::DropsData);
  net.deploy();
  // Balance snapshot is post-freeze: the collateral is already escrowed.
  std::uint64_t post_freeze = net.balance("provider-0");
  net.run_to_completion();
  auto st = net.stats();
  // provider-0's contracts fail every round (all chunks challenged); others
  // pass.
  auto bad_contracts = net.contracts_of("provider-0");
  std::uint64_t expected_fails = 0;
  for (const auto* ctr : bad_contracts) {
    EXPECT_EQ(ctr->fails(), c.num_audits);
    expected_fails += ctr->fails();
  }
  EXPECT_EQ(st.fails, expected_fails);
  if (!bad_contracts.empty()) {
    // All rounds failed: no rewards earned and no collateral returned, so the
    // balance stays at the post-freeze floor — strictly below what honesty
    // would have paid out.
    std::uint64_t if_honest =
        post_freeze + bad_contracts.size() * c.num_audits *
                          (c.reward_per_audit + c.penalty_per_fail);
    EXPECT_EQ(net.balance("provider-0"), post_freeze);
    EXPECT_LT(net.balance("provider-0"), if_honest);
  }
  EXPECT_EQ(st.passes + st.fails, st.total_rounds);
}

TEST(NetworkSim, UnresponsiveProviderTimesOutEverywhere) {
  NetworkSim net(small_config());
  net.set_behavior("provider-1", ProviderBehavior::Unresponsive);
  net.deploy();
  net.run_to_completion();
  for (const auto* ctr : net.contracts_of("provider-1")) {
    EXPECT_EQ(ctr->timeouts(), ctr->rounds_completed());
  }
}

TEST(NetworkSim, ErasureCodingSurvivesOneBadProvider) {
  // 2-of-3 coding: losing any single provider's shards must not lose data.
  NetworkSim net(small_config());
  net.set_behavior("provider-2", ProviderBehavior::DropsData);
  net.deploy();
  net.run_to_completion();
  for (std::size_t o = 0; o < 4; ++o) {
    EXPECT_TRUE(net.owner_can_recover(o)) << "owner " << o;
  }
}

TEST(NetworkSim, TooManyBadProvidersLosesSomeone) {
  // With every provider dropping data, recovery must fail.
  NetworkSim net(small_config());
  for (int p = 0; p < 5; ++p) {
    net.set_behavior("provider-" + std::to_string(p), ProviderBehavior::DropsData);
  }
  net.deploy();
  net.run_to_completion();
  for (std::size_t o = 0; o < 4; ++o) {
    EXPECT_FALSE(net.owner_can_recover(o));
  }
}

TEST(NetworkSim, ChainGrowthScalesWithPopulation) {
  NetworkConfig small = small_config();
  small.num_owners = 2;
  NetworkConfig big = small_config();
  big.num_owners = 6;
  NetworkSim a(small), b(big);
  a.deploy();
  a.run_to_completion();
  b.deploy();
  b.run_to_completion();
  // 3x the owners => ~3x the audit transactions; block overhead damps the
  // byte ratio but it must clearly grow.
  EXPECT_GT(b.stats().total_gas, 2 * a.stats().total_gas);
  EXPECT_GT(b.stats().chain_bytes, a.stats().chain_bytes);
}

TEST(NetworkSim, Validation) {
  NetworkConfig c = small_config();
  c.num_owners = 0;
  EXPECT_THROW(NetworkSim{c}, std::invalid_argument);
  NetworkSim ok(small_config());
  EXPECT_THROW(ok.run_to_completion(), std::logic_error);  // before deploy
  ok.deploy();
  EXPECT_THROW(ok.deploy(), std::logic_error);  // double deploy
  EXPECT_THROW(ok.set_behavior("provider-0", ProviderBehavior::Honest),
               std::logic_error);  // after deploy
}

TEST(NetworkSim, NonPrivateModeAlsoRuns) {
  NetworkConfig c = small_config();
  c.private_proofs = false;
  c.num_owners = 2;
  NetworkSim net(c);
  net.deploy();
  net.run_to_completion();
  EXPECT_EQ(net.stats().passes, net.stats().total_rounds);
}

// ---------------------------------------------------------------------------
// Fault engine: hand-written schedules with exact-constant accounting.
// ---------------------------------------------------------------------------

// Mirrors deploy()'s DHT placement so a test can pick its victim before the
// sim exists: shard (o, sh) lands on the sh-th ring successor of
// "owner-<o>/archive". Placement depends only on the name set, not the seed.
std::vector<std::vector<std::string>> predicted_placements(
    const NetworkConfig& c) {
  storage::ChordRing ring;
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    ring.join("provider-" + std::to_string(p));
  }
  const std::size_t shards = c.erasure_data + c.erasure_parity;
  std::vector<std::vector<std::string>> out(c.num_owners);
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    auto holders = ring.successors(
        storage::ring_hash("owner-" + std::to_string(o) + "/archive"), shards);
    for (std::size_t sh = 0; sh < shards; ++sh) {
      out[o].push_back(*ring.node_name(holders[sh % holders.size()]));
    }
  }
  return out;
}

struct Victim {
  std::string name;
  std::size_t index = 0;
  std::uint64_t contracts = 0;  // deployments it holds
};

// owner-0's shard-0 holder: guaranteed at least one contract.
Victim pick_victim(const NetworkConfig& c) {
  auto where = predicted_placements(c);
  Victim v;
  v.name = where[0][0];
  v.index = std::stoul(v.name.substr(v.name.find('-') + 1));
  for (const auto& row : where) {
    for (const auto& p : row) v.contracts += (p == v.name);
  }
  return v;
}

// Tag size of a repaired shard: small_config shards are ceil(1200/2) = 600
// bytes, re-encoded at s blocks per chunk with one 32-byte sigma per chunk.
std::size_t repair_tag_bytes(const NetworkConfig& c) {
  const std::size_t shard_len =
      (c.file_bytes + c.erasure_data - 1) / c.erasure_data;
  return storage::encode_file(std::vector<std::uint8_t>(shard_len), c.s)
             .num_chunks() *
         32;
}

TEST(NetworkSimFaults, CrashedProviderIsSlashedAndItsShardsRepaired) {
  NetworkConfig c = small_config();
  c.slash_after_consecutive = 2;
  const Victim v = pick_victim(c);
  ASSERT_GE(v.contracts, 1u);

  NetworkSim net(c);
  FaultSchedule sched;
  sched.events.push_back({100, v.index, FaultKind::Crash, 0});
  net.set_fault_schedule(sched);
  net.deploy();
  // Collateral is already escrowed; a slashed provider never gets it back,
  // so its balance must end exactly where it stands now.
  const std::uint64_t post_freeze = net.balance(v.name);
  net.run_to_completion();
  net.check_invariants();

  auto st = net.stats();
  EXPECT_EQ(st.crashes, 1u);
  EXPECT_EQ(st.slashes, v.contracts);
  EXPECT_EQ(st.timeouts, 2u * v.contracts);  // two misses, then slashed
  EXPECT_EQ(st.timeout_retries, 0u);         // retries are off here
  EXPECT_EQ(st.fails, 0u);
  // Each slashed contract settled 2 of its 3 rounds; its repair contract
  // runs the remaining 1 — the network-wide round count is unchanged.
  EXPECT_EQ(st.total_rounds, 36u);
  EXPECT_EQ(st.passes, st.total_rounds - st.timeouts);
  EXPECT_EQ(st.repairs, v.contracts);
  EXPECT_EQ(st.bytes_repaired, v.contracts * 600u);  // ceil(1200/2) per shard
  EXPECT_EQ(st.data_loss_events, 0u);

  // Repair pricing is deterministic in the replacement shard's tag size.
  econ::AuditCostModel model;
  EXPECT_EQ(st.repair_gas, v.contracts * model.repair_gas(repair_tag_bytes(c)));

  EXPECT_EQ(net.balance(v.name), post_freeze);
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    EXPECT_TRUE(net.owner_can_recover(o)) << "owner " << o;
    EXPECT_FALSE(net.data_lost(o));
  }
}

TEST(NetworkSimFaults, ShardLossFailsProofsThenSlashesAndRepairs) {
  NetworkConfig c = small_config();
  c.slash_after_consecutive = 2;
  const Victim v = pick_victim(c);

  NetworkSim net(c);
  FaultSchedule sched;
  sched.events.push_back({100, v.index, FaultKind::ShardLoss, 0});
  net.set_fault_schedule(sched);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();

  auto st = net.stats();
  // Unlike a crash, the provider keeps answering — over zeroed data, so the
  // proofs verify false and the consecutive-miss counter trips the slash.
  EXPECT_EQ(st.shard_losses, 1u);
  EXPECT_EQ(st.crashes, 0u);
  EXPECT_EQ(st.fails, 2u * v.contracts);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.slashes, v.contracts);
  EXPECT_EQ(st.repairs, v.contracts);
  EXPECT_EQ(st.bytes_repaired, v.contracts * 600u);
  EXPECT_EQ(st.total_rounds, 36u);
  EXPECT_EQ(st.passes, st.total_rounds - st.fails);
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    EXPECT_TRUE(net.owner_can_recover(o)) << "owner " << o;
  }
}

TEST(NetworkSimFaults, EarlyExitAbortsInFlightRoundAndRepairsElsewhere) {
  NetworkConfig c = small_config();
  const Victim v = pick_victim(c);

  NetworkSim net(c);
  FaultSchedule sched;
  // Round 0 is challenged at t=3600 and verifies at t=4200: at t=3700 every
  // contract of the victim is mid-round (Prove) and must abort cleanly.
  sched.events.push_back({3700, v.index, FaultKind::EarlyExit, 0});
  net.set_fault_schedule(sched);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();

  auto st = net.stats();
  EXPECT_EQ(st.provider_exits, v.contracts);
  EXPECT_EQ(st.slashes, 0u);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.fails, 0u);
  // The aborted rounds never settled (rounds_completed excludes them), so
  // each repair contract replays all 3 audits: the total is unchanged and
  // every settled round passed.
  EXPECT_EQ(st.total_rounds, 36u);
  EXPECT_EQ(st.passes, 36u);
  EXPECT_EQ(st.repairs, v.contracts);
  EXPECT_EQ(st.data_loss_events, 0u);
  for (const auto* ctr : net.contracts_of(v.name)) {
    EXPECT_EQ(ctr->close_reason(), contract::CloseReason::ProviderExit);
  }
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    EXPECT_TRUE(net.owner_can_recover(o)) << "owner " << o;
  }
}

TEST(NetworkSimFaults, DelayedProofIsSavedByTimeoutRetry) {
  NetworkConfig c = small_config();
  c.timeout_retry_limit = 1;
  const Victim v = pick_victim(c);

  NetworkSim net(c);
  FaultSchedule sched;
  // Round 1's challenge (t=7200) lands in the delay gap [7200, 7800): the
  // deadline passes, the retry re-issues at t=8400 and succeeds.
  sched.events.push_back({7200, v.index, FaultKind::DelayProof, 0});
  net.set_fault_schedule(sched);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();

  auto st = net.stats();
  EXPECT_EQ(st.timeout_retries, v.contracts);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.fails, 0u);
  EXPECT_EQ(st.total_rounds, 36u);
  EXPECT_EQ(st.passes, 36u);
  EXPECT_EQ(st.repairs, 0u);
  EXPECT_EQ(st.slashes, 0u);
}

TEST(NetworkSimFaults, DroppedProofExhaustsRetryAndCostsThePenalty) {
  NetworkConfig c = small_config();
  c.timeout_retry_limit = 1;
  const Victim v = pick_victim(c);

  NetworkSim net(c);
  FaultSchedule sched;
  // Drop gap [7200, 7200 + 2*600 + 1): the first retry (t=8400) also fails,
  // the retry budget is spent, and the round settles Timeout.
  sched.events.push_back({7200, v.index, FaultKind::DropProof, 0});
  net.set_fault_schedule(sched);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();

  auto st = net.stats();
  EXPECT_EQ(st.timeout_retries, v.contracts);
  EXPECT_EQ(st.timeouts, v.contracts);
  EXPECT_EQ(st.fails, 0u);
  EXPECT_EQ(st.total_rounds, 36u);
  EXPECT_EQ(st.passes, 36u - v.contracts);
  EXPECT_EQ(st.repairs, 0u);  // transient: data was never at risk
  EXPECT_EQ(st.slashes, 0u);
}

TEST(NetworkSimFaults, OfflineProviderRejoinsAndCountersSaySo) {
  NetworkConfig c = small_config();
  const Victim v = pick_victim(c);

  NetworkSim net(c);
  FaultSchedule sched;
  // Gap [4300, 6300) sits strictly between round 0's verify (4200) and
  // round 1's challenge (7200): no round is touched, only the churn
  // counters move.
  sched.events.push_back({4300, v.index, FaultKind::Offline, 2000});
  net.set_fault_schedule(sched);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();

  auto st = net.stats();
  EXPECT_EQ(st.offline_events, 1u);
  EXPECT_EQ(st.rejoins, 1u);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.total_rounds, 36u);
  EXPECT_EQ(st.passes, 36u);
  EXPECT_EQ(st.repairs, 0u);
}

}  // namespace
}  // namespace dsaudit::sim
