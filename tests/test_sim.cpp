// Network-simulation tests: population-scale behaviour of the full system —
// audit outcomes, money conservation, chain growth, failure recovery.
#include <gtest/gtest.h>

#include "sim/network_sim.hpp"

namespace dsaudit::sim {
namespace {

NetworkConfig small_config() {
  NetworkConfig c;
  c.num_owners = 4;
  c.num_providers = 5;
  c.file_bytes = 1200;
  c.s = 5;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.num_audits = 3;
  c.challenged_chunks = 999;  // challenge every chunk: deterministic outcomes
  c.private_proofs = true;
  return c;
}

TEST(NetworkSim, AllHonestEveryAuditPasses) {
  NetworkSim net(small_config());
  net.deploy();
  net.run_to_completion();
  auto st = net.stats();
  // 4 owners x 3 shards x 3 audits.
  EXPECT_EQ(st.total_rounds, 4u * 3u * 3u);
  EXPECT_EQ(st.passes, st.total_rounds);
  EXPECT_EQ(st.fails, 0u);
  EXPECT_EQ(st.timeouts, 0u);
  // Gas settlement is deterministic: every private-proof round costs exactly
  // the paper's calibrated 589,000-gas anchor, so the network total is an
  // exact constant on any machine and at any thread count.
  EXPECT_EQ(st.total_gas, st.total_rounds * 589'000u);
  EXPECT_GT(st.chain_bytes, 0u);
  for (std::size_t o = 0; o < 4; ++o) EXPECT_TRUE(net.owner_can_recover(o));
}

TEST(NetworkSim, MoneyIsConserved) {
  NetworkSim net(small_config());
  net.deploy();
  std::uint64_t before = net.total_money();
  net.run_to_completion();
  EXPECT_EQ(net.total_money(), before);
}

TEST(NetworkSim, DataDroppingProviderIsCaughtAndSlashed) {
  NetworkConfig c = small_config();
  NetworkSim net(c);
  net.set_behavior("provider-0", ProviderBehavior::DropsData);
  net.deploy();
  // Balance snapshot is post-freeze: the collateral is already escrowed.
  std::uint64_t post_freeze = net.balance("provider-0");
  net.run_to_completion();
  auto st = net.stats();
  // provider-0's contracts fail every round (all chunks challenged); others
  // pass.
  auto bad_contracts = net.contracts_of("provider-0");
  std::uint64_t expected_fails = 0;
  for (const auto* ctr : bad_contracts) {
    EXPECT_EQ(ctr->fails(), c.num_audits);
    expected_fails += ctr->fails();
  }
  EXPECT_EQ(st.fails, expected_fails);
  if (!bad_contracts.empty()) {
    // All rounds failed: no rewards earned and no collateral returned, so the
    // balance stays at the post-freeze floor — strictly below what honesty
    // would have paid out.
    std::uint64_t if_honest =
        post_freeze + bad_contracts.size() * c.num_audits *
                          (c.reward_per_audit + c.penalty_per_fail);
    EXPECT_EQ(net.balance("provider-0"), post_freeze);
    EXPECT_LT(net.balance("provider-0"), if_honest);
  }
  EXPECT_EQ(st.passes + st.fails, st.total_rounds);
}

TEST(NetworkSim, UnresponsiveProviderTimesOutEverywhere) {
  NetworkSim net(small_config());
  net.set_behavior("provider-1", ProviderBehavior::Unresponsive);
  net.deploy();
  net.run_to_completion();
  for (const auto* ctr : net.contracts_of("provider-1")) {
    EXPECT_EQ(ctr->timeouts(), ctr->rounds_completed());
  }
}

TEST(NetworkSim, ErasureCodingSurvivesOneBadProvider) {
  // 2-of-3 coding: losing any single provider's shards must not lose data.
  NetworkSim net(small_config());
  net.set_behavior("provider-2", ProviderBehavior::DropsData);
  net.deploy();
  net.run_to_completion();
  for (std::size_t o = 0; o < 4; ++o) {
    EXPECT_TRUE(net.owner_can_recover(o)) << "owner " << o;
  }
}

TEST(NetworkSim, TooManyBadProvidersLosesSomeone) {
  // With every provider dropping data, recovery must fail.
  NetworkSim net(small_config());
  for (int p = 0; p < 5; ++p) {
    net.set_behavior("provider-" + std::to_string(p), ProviderBehavior::DropsData);
  }
  net.deploy();
  net.run_to_completion();
  for (std::size_t o = 0; o < 4; ++o) {
    EXPECT_FALSE(net.owner_can_recover(o));
  }
}

TEST(NetworkSim, ChainGrowthScalesWithPopulation) {
  NetworkConfig small = small_config();
  small.num_owners = 2;
  NetworkConfig big = small_config();
  big.num_owners = 6;
  NetworkSim a(small), b(big);
  a.deploy();
  a.run_to_completion();
  b.deploy();
  b.run_to_completion();
  // 3x the owners => ~3x the audit transactions; block overhead damps the
  // byte ratio but it must clearly grow.
  EXPECT_GT(b.stats().total_gas, 2 * a.stats().total_gas);
  EXPECT_GT(b.stats().chain_bytes, a.stats().chain_bytes);
}

TEST(NetworkSim, Validation) {
  NetworkConfig c = small_config();
  c.num_owners = 0;
  EXPECT_THROW(NetworkSim{c}, std::invalid_argument);
  NetworkSim ok(small_config());
  EXPECT_THROW(ok.run_to_completion(), std::logic_error);  // before deploy
  ok.deploy();
  EXPECT_THROW(ok.deploy(), std::logic_error);  // double deploy
  EXPECT_THROW(ok.set_behavior("provider-0", ProviderBehavior::Honest),
               std::logic_error);  // after deploy
}

TEST(NetworkSim, NonPrivateModeAlsoRuns) {
  NetworkConfig c = small_config();
  c.private_proofs = false;
  c.num_owners = 2;
  NetworkSim net(c);
  net.deploy();
  net.run_to_completion();
  EXPECT_EQ(net.stats().passes, net.stats().total_rounds);
}

}  // namespace
}  // namespace dsaudit::sim
