// Streaming-vs-retained differential suite for the memory-bounded simulation
// path (chain::Retention::Streaming + NetworkConfig::retention/key_pool).
//
// The contract under test: a streaming run and its full-retention twin must
// agree bit-for-bit on everything both modes define — chain aggregates
// (blocks, txs, bytes, gas, payload, the mined-tx stream digest), ledger
// balances, NetworkStats and the fault/churn counters — across honest and
// misbehaving providers, chaos fault schedules, batched/windowed settlement,
// shared key pools and every DSAUDIT_THREADS width. Only history
// materialization may differ (blocks()/transactions()/rounds() stay empty or
// trimmed under streaming).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/network_sim.hpp"

namespace dsaudit {
namespace {

std::string hex(const std::array<std::uint8_t, 32>& d) {
  static const char* k = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : d) {
    out.push_back(k[b >> 4]);
    out.push_back(k[b & 0xf]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chain layer: identical task/tx workloads through both retention modes.
// ---------------------------------------------------------------------------

// A deterministic workload exercising every aggregate: mints, transfers,
// task-submitted txs of varying sizes (some exceeding one block's budget so
// the greedy-skip path runs), long idle gaps (the bulk empty-block path) and
// same-instant task batches.
void drive_workload(chain::Blockchain& bc) {
  bc.mint("alice", 1'000);
  bc.mint("bob", 500);
  auto submit = [&bc](const std::string& from, const std::string& what,
                      std::size_t bytes, std::uint64_t gas) {
    chain::Transaction tx;
    tx.from = from;
    tx.description = what;
    tx.payload_bytes = bytes;
    tx.gas_used = gas;
    bc.submit(tx);
  };
  // Two tasks at the same instant (batch ordering), one later, one far out
  // past a long empty-block run.
  bc.schedule(40, [&](chain::Timestamp) { submit("alice", "a", 300, 21'000); });
  bc.schedule(40, [&](chain::Timestamp) {
    submit("bob", "b", 9'000, 100'000);       // fat tx: fills most of a block
    submit("alice", "c", 9'000, 100'000);     // overflows -> next block
    bc.transfer("alice", "bob", 250);
  });
  bc.schedule(700, [&](chain::Timestamp) {
    submit("carol-contract", "d", 64, 5'000);  // fresh from-address interning
    bc.mint("carol-contract", 7);
  });
  // Nested scheduling from inside a task, landing after an idle stretch.
  bc.schedule(900, [&](chain::Timestamp now) {
    bc.schedule(now + 50'000, [&](chain::Timestamp) {
      submit("bob", "late", 128, 42'000);
    });
  });
  bc.advance(120'000);
}

std::string chain_aggregate_fingerprint(const chain::Blockchain& bc) {
  std::ostringstream out;
  out << "now=" << bc.now() << " blocks=" << bc.block_count()
      << " txs=" << bc.tx_count() << " bytes=" << bc.total_chain_bytes()
      << " gas=" << bc.total_gas_used()
      << " payload=" << bc.total_payload_bytes()
      << " supply=" << bc.total_supply() << " pending=" << bc.pending_count()
      << " alice=" << bc.balance("alice") << " bob=" << bc.balance("bob")
      << " digest=" << hex(bc.tx_stream_digest());
  return out.str();
}

TEST(ScaleChain, StreamingAggregatesMatchFullRetention) {
  chain::ChainConfig full_cfg;
  chain::ChainConfig stream_cfg;
  stream_cfg.retention = chain::Retention::Streaming;
  chain::Blockchain full(full_cfg), stream(stream_cfg);
  drive_workload(full);
  drive_workload(stream);

  EXPECT_EQ(chain_aggregate_fingerprint(full),
            chain_aggregate_fingerprint(stream));
  // Full retention materializes what the aggregates summarize...
  EXPECT_EQ(full.block_count(), full.blocks().size());
  std::uint64_t mined = 0;
  for (const auto& tx : full.transactions()) mined += tx.block_number != 0;
  EXPECT_EQ(full.tx_count(), mined);
  // ...streaming does not.
  EXPECT_TRUE(stream.blocks().empty());
  EXPECT_TRUE(stream.transactions().empty());
}

TEST(ScaleChain, BulkEmptyBlockAccountingIsExact) {
  // A year of idle 15 s blocks with one task in the middle: the streaming
  // fast path must account exactly the blocks the full chain materializes.
  chain::ChainConfig stream_cfg;
  stream_cfg.retention = chain::Retention::Streaming;
  chain::Blockchain full{chain::ChainConfig{}}, stream(stream_cfg);
  for (chain::Blockchain* bc : {&full, &stream}) {
    bc->mint("alice", 10);
    bc->schedule(10'000'000, [bc](chain::Timestamp) {
      chain::Transaction tx;
      tx.from = "alice";
      tx.description = "mid";
      tx.payload_bytes = 32;
      tx.gas_used = 1'000;
      bc->submit(tx);
    });
    bc->advance(31'536'000);
  }
  EXPECT_EQ(full.block_count(), stream.block_count());
  EXPECT_EQ(full.total_chain_bytes(), stream.total_chain_bytes());
  EXPECT_EQ(full.total_gas_used(), stream.total_gas_used());
  EXPECT_EQ(hex(full.tx_stream_digest()), hex(stream.tx_stream_digest()));
  EXPECT_EQ(full.block_count(), 31'536'000u / 15u);
}

// ---------------------------------------------------------------------------
// Network layer: streaming runs match their full-retention twins on every
// shared observable.
// ---------------------------------------------------------------------------

using sim::NetworkConfig;
using sim::NetworkSim;
using sim::NetworkStats;

NetworkConfig scale_config() {
  NetworkConfig c;
  c.num_owners = 3;
  c.num_providers = 4;
  c.file_bytes = 400;
  c.s = 4;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.num_audits = 3;
  c.challenged_chunks = 999;
  c.private_proofs = false;
  c.rng_seed = 11;
  return c;
}

// Everything both retention modes define, flattened to text: chain
// aggregates + digest, every owner/provider balance and recovery
// disposition, and the full stats block.
std::string sim_fingerprint(const NetworkSim& net, const NetworkConfig& c) {
  std::ostringstream out;
  const chain::Blockchain& chain = net.chain();
  out << "blocks=" << chain.block_count() << " txs=" << chain.tx_count()
      << " bytes=" << chain.total_chain_bytes()
      << " gas=" << chain.total_gas_used()
      << " payload=" << chain.total_payload_bytes()
      << " supply=" << chain.total_supply()
      << " digest=" << hex(chain.tx_stream_digest()) << "\n";
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    std::string who = "owner-" + std::to_string(o);
    out << who << "=" << net.balance(who) << " lost=" << net.data_lost(o)
        << " recover=" << net.owner_can_recover(o) << "\n";
  }
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    std::string who = "provider-" + std::to_string(p);
    out << who << "=" << net.balance(who) << "\n";
  }
  NetworkStats st = net.stats();
  out << "rounds=" << st.total_rounds << " pass=" << st.passes
      << " fail=" << st.fails << " timeout=" << st.timeouts
      << " gas=" << st.total_gas << " chain_bytes=" << st.chain_bytes
      << " crashes=" << st.crashes << " offline=" << st.offline_events
      << " rejoins=" << st.rejoins << " shard_losses=" << st.shard_losses
      << " slashes=" << st.slashes << " exits=" << st.provider_exits
      << " retries=" << st.timeout_retries << " repairs=" << st.repairs
      << " bytes_repaired=" << st.bytes_repaired
      << " data_loss=" << st.data_loss_events
      << " repair_gas=" << st.repair_gas << "\n";
  return out.str();
}

std::string run_mode(NetworkConfig c, chain::Retention retention,
                     std::optional<std::uint64_t> fault_seed = std::nullopt,
                     std::map<std::string, sim::ProviderBehavior> behaviors = {}) {
  c.retention = retention;
  NetworkSim net(c);
  for (const auto& [who, b] : behaviors) net.set_behavior(who, b);
  if (fault_seed) {
    net.set_fault_schedule(sim::FaultSchedule::random(
        *fault_seed, c.num_providers,
        (c.num_audits + 2) * c.audit_period_s, 4));
  }
  net.deploy();
  net.run_to_completion();
  net.check_invariants();
  return sim_fingerprint(net, c);
}

TEST(ScaleSim, HonestRunMatchesFullRetention) {
  const NetworkConfig c = scale_config();
  EXPECT_EQ(run_mode(c, chain::Retention::Full),
            run_mode(c, chain::Retention::Streaming));
}

// Contract freeze locks penalty_per_fail * num_audits of provider
// collateral per deployment, all at deploy time. At 10^6 owners the Chord
// arc skew concentrates enough contracts on one provider to exhaust the
// flat mint; deploy() must top funding up to the placement-derived demand.
// Reproduced at tiny scale with an oversized penalty: one provider carries
// several contracts whose combined lock exceeds the flat 1'000'000.
TEST(ScaleSim, ProviderFundingScalesWithPlacementLoad) {
  NetworkConfig c = scale_config();
  c.penalty_per_fail = 400'000;
  c.reward_per_audit = 600'000;  // owner side: 3 shards x 0.6M x 3 > 1M too
  EXPECT_EQ(run_mode(c, chain::Retention::Full),
            run_mode(c, chain::Retention::Streaming));
}

TEST(ScaleSim, PrivateProofsMatchFullRetention) {
  NetworkConfig c = scale_config();
  c.private_proofs = true;
  c.num_owners = 2;
  EXPECT_EQ(run_mode(c, chain::Retention::Full),
            run_mode(c, chain::Retention::Streaming));
}

TEST(ScaleSim, MisbehavingProvidersMatchFullRetention) {
  const NetworkConfig c = scale_config();
  const std::map<std::string, sim::ProviderBehavior> behaviors = {
      {"provider-0", sim::ProviderBehavior::DropsData},
      {"provider-2", sim::ProviderBehavior::Unresponsive},
  };
  EXPECT_EQ(run_mode(c, chain::Retention::Full, std::nullopt, behaviors),
            run_mode(c, chain::Retention::Streaming, std::nullopt, behaviors));
}

TEST(ScaleSim, ChaosSchedulesMatchFullRetention) {
  // The first few seeds whose schedules are busy (>= 2 events), so the
  // differential covers crash/offline/shard-loss/exit + repair, not just
  // the honest path.
  NetworkConfig c = scale_config();
  c.timeout_retry_limit = 1;
  c.slash_after_consecutive = 2;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; seeds.size() < 3 && s < 200; ++s) {
    if (sim::FaultSchedule::random(s, c.num_providers,
                                   (c.num_audits + 2) * c.audit_period_s, 4)
            .events.size() >= 2) {
      seeds.push_back(s);
    }
  }
  ASSERT_EQ(seeds.size(), 3u);
  for (std::uint64_t seed : seeds) {
    NetworkConfig cs = c;
    cs.rng_seed = seed;
    EXPECT_EQ(run_mode(cs, chain::Retention::Full, seed),
              run_mode(cs, chain::Retention::Streaming, seed))
        << "fault seed " << seed;
  }
}

TEST(ScaleSim, BatchedAndWindowedSettlementMatchFullRetention) {
  NetworkConfig c = scale_config();
  c.batched_settlement = true;
  c.batch_gas_discount = true;
  c.settlement_window_s = 1800;
  EXPECT_EQ(run_mode(c, chain::Retention::Full),
            run_mode(c, chain::Retention::Streaming));
}

TEST(ScaleSim, KeyPoolMatchesAcrossRetention) {
  // A shared key pool changes which keypair serves each owner, so it is its
  // own behavior (not compared against pool-less runs) — but the two
  // retention modes must still agree under it, and so must pool sizes that
  // map owners to identical keys.
  NetworkConfig c = scale_config();
  c.key_pool = 2;
  EXPECT_EQ(run_mode(c, chain::Retention::Full),
            run_mode(c, chain::Retention::Streaming));
}

TEST(ScaleSim, StreamingIsBitIdenticalAcrossThreadCounts) {
  NetworkConfig c = scale_config();
  c.retention = chain::Retention::Streaming;
  c.key_pool = 2;
  const unsigned original = parallel::thread_count();
  parallel::set_thread_count(1);
  const std::string baseline = run_mode(c, chain::Retention::Streaming, 3);
  for (unsigned width : {2u, 8u}) {
    parallel::set_thread_count(width);
    EXPECT_EQ(run_mode(c, chain::Retention::Streaming, 3), baseline)
        << "diverged at " << width << " threads";
  }
  parallel::set_thread_count(original);
}

// ---------------------------------------------------------------------------
// Aggregate plumbing and retention bookkeeping.
// ---------------------------------------------------------------------------

TEST(ScaleSim, StatsWalkOracleAgreesUnderFullRetention) {
  NetworkConfig c = scale_config();
  NetworkSim net(c);
  net.deploy();
  net.run_to_completion();
  const NetworkStats a = net.stats();
  const NetworkStats w = net.stats_by_walk();
  EXPECT_EQ(a.total_rounds, w.total_rounds);
  EXPECT_EQ(a.passes, w.passes);
  EXPECT_EQ(a.fails, w.fails);
  EXPECT_EQ(a.timeouts, w.timeouts);
  EXPECT_EQ(a.total_gas, w.total_gas);
  EXPECT_EQ(a.timeout_retries, w.timeout_retries);
}

TEST(ScaleSim, StatsWalkThrowsUnderStreaming) {
  NetworkConfig c = scale_config();
  c.retention = chain::Retention::Streaming;
  NetworkSim net(c);
  net.deploy();
  net.run_to_completion();
  EXPECT_THROW(net.stats_by_walk(), std::logic_error);
}

TEST(ScaleSim, StreamingBoundsRoundAndEventHistory) {
  NetworkConfig c = scale_config();
  c.retention = chain::Retention::Streaming;
  c.num_audits = 5;
  NetworkSim net(c);
  net.deploy();
  net.run_to_completion();
  std::size_t contracts = 0;
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    for (const auto* ct : net.contracts_of("provider-" + std::to_string(p))) {
      ++contracts;
      EXPECT_LE(ct->rounds().size(), 2u) << ct->address();
      EXPECT_LE(ct->events().size(), 4u) << ct->address();
      // The counters still carry the full history the ring no longer does.
      EXPECT_EQ(ct->passes() + ct->fails() + ct->timeouts(),
                ct->rounds_completed());
      EXPECT_EQ(ct->rounds_challenged(), c.num_audits);
    }
  }
  EXPECT_EQ(contracts, c.num_owners * (c.erasure_data + c.erasure_parity));
}

TEST(ScaleSim, RunToCompletionNamesStuckContracts) {
  // An unresponsive-forever provider with an effectively unbounded retry
  // budget: its rounds requeue past every extension epoch, the contract
  // never closes, and run_to_completion must throw naming it.
  NetworkConfig c = scale_config();
  c.num_owners = 1;
  c.erasure_parity = 0;  // two shards, fewer contracts in the blast radius
  c.timeout_retry_limit = 1'000'000;
  c.max_repairs = 0;  // guard = 2 extension epochs: fail fast
  sim::FaultSchedule schedule;
  schedule.events.push_back({/*at=*/1, /*provider=*/0, sim::FaultKind::Offline,
                             /*duration_s=*/2'000'000'000});
  schedule.events.push_back({/*at=*/1, /*provider=*/1, sim::FaultKind::Offline,
                             /*duration_s=*/2'000'000'000});
  schedule.events.push_back({/*at=*/1, /*provider=*/2, sim::FaultKind::Offline,
                             /*duration_s=*/2'000'000'000});
  schedule.events.push_back({/*at=*/1, /*provider=*/3, sim::FaultKind::Offline,
                             /*duration_s=*/2'000'000'000});
  NetworkSim net(c);
  net.set_fault_schedule(schedule);
  net.deploy();
  try {
    net.run_to_completion();
    FAIL() << "expected std::logic_error naming the stuck contracts";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed to complete"), std::string::npos) << what;
    EXPECT_NE(what.find("contract-"), std::string::npos) << what;
    EXPECT_NE(what.find("rounds "), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace dsaudit
