// Byzantine adversary engine tests: randomized strategy rosters composed
// with randomized fault schedules, replayed through the full network
// simulation with every system invariant checked — money conservation, exact
// escrow accounting, bisection exactness (no honest round ever charged),
// replay safety (no reused weight seed ever accepted) and the incremental
// adversary counters pinned to their stats_by_walk() re-derivation.
//
// A failing seed prints itself plus the roster and schedule so it replays as
// a regression; the replay suite proves a fixed seed reproduces the chain,
// ledger, stats and adversary counters bit-identically at DSAUDIT_THREADS =
// 1, 2 and 8 — including seed-grinding replays across settlement-window
// boundaries.
//
// Seed count: DSAUDIT_ADVERSARY_SEEDS overrides the default (sanitizer CI
// runs a smaller sweep; the `attack-smoke` ctest target runs only
// AdversarySmoke.*).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "contract/batch_settlement.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/network_sim.hpp"

namespace dsaudit::sim {
namespace {

// Tiny population, non-private proofs, batched windowed settlement: one run
// is a few milliseconds, so a 100-seed sweep stays inside the tier-1 budget.
// Retry, slashing, the batch registry and value tiers are all on so rosters
// exercise the full machine (selective responders see both contract tiers).
NetworkConfig adversary_config() {
  NetworkConfig c;
  c.num_owners = 2;
  c.num_providers = 4;
  c.file_bytes = 400;
  c.s = 4;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.num_audits = 3;
  c.challenged_chunks = 4;
  c.private_proofs = false;
  c.timeout_retry_limit = 1;
  c.slash_after_consecutive = 2;
  c.batched_settlement = true;
  c.settlement_window_s = 2 * c.audit_period_s;  // windows span 2 instants
  c.premium_owner_stride = 2;                    // owner 0 premium, owner 1 base
  return c;
}

chain::Timestamp horizon(const NetworkConfig& c) {
  return (c.num_audits + 2) * c.audit_period_s;
}

std::size_t seed_count(std::size_t fallback) {
  const char* env = std::getenv("DSAUDIT_ADVERSARY_SEEDS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

// One full adversarial run: draw the roster and the fault schedule from
// `seed`, seed the network from it too, run to completion, check every
// invariant. Reports the seed + roster + schedule on any violation.
void run_adversary_seed(std::uint64_t seed) {
  const NetworkConfig base = adversary_config();
  const attack::AdversaryRoster roster =
      attack::AdversaryRoster::random(seed, base.num_providers, 2);
  FaultSchedule schedule =
      FaultSchedule::random(seed, base.num_providers, horizon(base), 3);
  try {
    NetworkConfig c = base;
    c.rng_seed = seed;
    NetworkSim net(c);
    net.set_adversaries(roster);
    net.set_fault_schedule(schedule);
    net.deploy();
    net.run_to_completion();
    net.check_invariants();
  } catch (const std::exception& e) {
    FAIL() << "adversary seed " << seed << " failed: " << e.what()
           << "\nroster:\n"
           << roster.describe() << "schedule:\n"
           << schedule.describe();
  }
}

// The chaos fingerprint plus the adversary counters: a replay mismatch in
// attack accounting must diff just as loudly as one in the ledger.
std::string fingerprint(const NetworkSim& net, const NetworkConfig& c) {
  std::ostringstream out;
  const chain::Blockchain& chain = net.chain();
  out << "chain_bytes=" << chain.total_chain_bytes()
      << " gas=" << chain.total_gas_used()
      << " blocks=" << chain.blocks().size()
      << " txs=" << chain.transactions().size() << "\n";
  std::map<std::string, std::string> canon;
  auto canonical = [&canon](const std::string& from) -> const std::string& {
    if (from.rfind("contract-", 0) != 0) return from;
    auto [it, fresh] = canon.emplace(from, "");
    if (fresh) it->second = "C" + std::to_string(canon.size());
    return it->second;
  };
  for (const auto& tx : chain.transactions()) {
    out << canonical(tx.from) << "|" << tx.description << "|"
        << tx.payload_bytes << "|" << tx.gas_used << "|" << tx.submitted_at
        << "|" << tx.mined_at << "|" << tx.block_number << "\n";
  }
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    std::string who = "owner-" + std::to_string(o);
    out << who << "=" << net.balance(who) << "\n";
  }
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    std::string who = "provider-" + std::to_string(p);
    out << who << "=" << net.balance(who) << "\n";
  }
  const NetworkStats st = net.stats();
  out << "rounds=" << st.total_rounds << " pass=" << st.passes
      << " fail=" << st.fails << " timeout=" << st.timeouts
      << " slashes=" << st.slashes << " retries=" << st.timeout_retries
      << " attacks=" << st.attacks_attempted
      << " detected=" << st.attacks_detected
      << " attack_slashes=" << st.attacks_slashed
      << " replays=" << st.seed_replays_attempted << "/"
      << st.seed_replays_accepted << " profit=" << st.attacker_profit << "\n";
  return out.str();
}

std::string run_and_fingerprint(std::uint64_t seed) {
  NetworkConfig c = adversary_config();
  c.rng_seed = seed;
  const attack::AdversaryRoster roster =
      attack::AdversaryRoster::random(seed, c.num_providers, 2);
  FaultSchedule schedule =
      FaultSchedule::random(seed, c.num_providers, horizon(c), 3);
  NetworkSim net(c);
  net.set_adversaries(roster);
  net.set_fault_schedule(schedule);
  net.deploy();
  net.run_to_completion();
  net.check_invariants();
  return fingerprint(net, c);
}

// Every provider runs `strategy`; no fault schedule — every non-pass round
// must then belong to a cheating action (the bisection identity asserted in
// the directed tests below).
NetworkStats run_uniform(
    NetworkConfig c,
    const std::shared_ptr<const attack::AdversaryStrategy>& strategy) {
  NetworkSim net(c);
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    net.set_adversary(p, strategy);
  }
  net.deploy();
  net.run_to_completion();
  net.check_invariants();
  return net.stats();
}

// --------------------------------------------------------------------------
// Property sweep: >= 100 randomized (roster, fault schedule) pairs hold
// every invariant.
// --------------------------------------------------------------------------

TEST(AdversaryProperty, RandomizedRostersHoldInvariants) {
  const std::size_t n = seed_count(100);
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    run_adversary_seed(seed);
    if (HasFatalFailure()) return;
  }
}

// --------------------------------------------------------------------------
// Replay determinism: same seed, bit-identical chain/ledger/stats/attack
// counters at 1/2/8 worker threads.
// --------------------------------------------------------------------------

TEST(AdversaryProperty, ReplayIsBitIdenticalAcrossThreadCounts) {
  const unsigned original = parallel::thread_count();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    parallel::set_thread_count(1);
    const std::string baseline = run_and_fingerprint(seed);
    for (unsigned width : {2u, 8u}) {
      parallel::set_thread_count(width);
      EXPECT_EQ(run_and_fingerprint(seed), baseline)
          << "seed " << seed << " diverged at " << width << " threads";
    }
  }
  parallel::set_thread_count(original);
}

// --------------------------------------------------------------------------
// Directed per-strategy tests.
// --------------------------------------------------------------------------

// Partial storage: a prover holding a strict subset of the chunks passes
// exactly the challenges that avoid its holes — and is charged for exactly
// the rounds it cheated (check_invariants' misattributed_fails == 0 proves
// no honest round paid for any of it).
TEST(AdversaryDirected, PartialStorageProverIsCaughtOnUncoveredChallenges) {
  NetworkConfig c = adversary_config();
  c.rng_seed = 42;
  const NetworkStats st = run_uniform(
      c, std::make_shared<attack::PartialStorageStrategy>(
             /*seed=*/7, /*stored_permille=*/600, /*answer_uncovered=*/true));
  EXPECT_GT(st.attacks_attempted, 0u);
  // A proof over data with holes never verifies: every attack detected.
  EXPECT_EQ(st.attacks_detected, st.attacks_attempted);
  // Bisection identity (no faults): non-pass rounds == attacking rounds.
  EXPECT_EQ(st.fails + st.timeouts, st.attacks_detected);
}

// Colluding ring: every provider strikes on the same challenge coins,
// piling correlated cross-key failures into shared settlement windows. The
// batch bisection still isolates exactly the attacking rounds.
TEST(AdversaryDirected, ColludingRingFailuresAreIsolatedPerRound) {
  NetworkConfig c = adversary_config();
  c.rng_seed = 43;
  const NetworkStats st = run_uniform(
      c, std::make_shared<attack::ColludingStrategy>(/*group_seed=*/11,
                                                     /*cheat_permille=*/500));
  EXPECT_GT(st.attacks_attempted, 0u);
  EXPECT_EQ(st.attacks_detected, st.attacks_attempted);
  EXPECT_EQ(st.fails + st.timeouts, st.attacks_detected);
  // The ring passed some rounds honestly and was paid for exactly those.
  EXPECT_GT(st.passes, 0u);
}

// Selective responder: premium contracts (owner 0 under stride 2, double
// value) are served honestly; sub-threshold contracts are cheated every
// round and slashed. Cheating is confined to the cheap tier.
TEST(AdversaryDirected, SelectiveResponderSparesPremiumContracts) {
  NetworkConfig c = adversary_config();
  c.rng_seed = 44;
  // Base contract value: 10 * 3 = 30; premium: 20 * 3 = 60. Threshold 45.
  const auto strategy = std::make_shared<attack::SelectiveStrategy>(
      /*seed=*/13, /*value_threshold=*/45, /*cheat_permille=*/1000);
  const NetworkStats st = run_uniform(c, strategy);
  const std::size_t shards = c.erasure_data + c.erasure_parity;
  // Every premium round passes; cheated contracts slash after 2 consecutive
  // misses, so each base contract dies after exactly 2 attacking rounds.
  EXPECT_EQ(st.passes, shards * c.num_audits);
  EXPECT_EQ(st.attacks_attempted, shards * 2);
  EXPECT_EQ(st.attacks_detected, st.attacks_attempted);
  EXPECT_EQ(st.attacks_slashed, shards);
  // All premium: the same strategy over uniform premium terms is honest.
  NetworkConfig all_premium = c;
  all_premium.premium_owner_stride = 1;
  const NetworkStats honest = run_uniform(all_premium, strategy);
  EXPECT_EQ(honest.attacks_attempted, 0u);
  EXPECT_EQ(honest.fails + honest.timeouts, 0u);
}

// Seed grinding: the adversary grinds candidate proofs and replays every
// spent window weight-seed against the settlement registry. All replays are
// refused, every ground proof still verifies (grinding buys nothing), and
// the attacker earns exactly the honest wage.
TEST(AdversaryDirected, SeedGrindingIsRefusedByReplayRegistry) {
  NetworkConfig c = adversary_config();
  c.rng_seed = 45;
  c.private_proofs = true;  // the randomized proof shape grinding targets
  c.num_owners = 1;
  c.erasure_data = 2;
  c.erasure_parity = 0;
  const NetworkStats st = run_uniform(
      c, std::make_shared<attack::SeedGrindingStrategy>(/*seed=*/17,
                                                        /*candidates=*/3));
  EXPECT_GT(st.attacks_attempted, 0u);   // every round is a grind
  EXPECT_EQ(st.attacks_detected, 0u);    // ...that still verifies
  EXPECT_EQ(st.fails + st.timeouts, 0u);
  EXPECT_GT(st.seed_replays_attempted, 0u);
  EXPECT_EQ(st.seed_replays_accepted, 0u);
  // Honest wage: reward per round, nothing more (premium tier on owner 0).
  EXPECT_EQ(st.attacker_profit,
            static_cast<std::int64_t>(st.passes * 2 * c.reward_per_audit));
}

// Seed grinding against the aggregate settle-window tx: the per-window seed
// now travels ON CHAIN inside the one aggregate tx, so the grinder replays
// exactly that posted seed. The registry still refuses every replay, clean
// windows still settle through their single tx, and the seed the attacker
// saw on chain is the one the registry spent.
TEST(AdversaryDirected, SeedGrindingCannotReplayTheAggregateWindowSeed) {
  NetworkConfig c = adversary_config();
  c.rng_seed = 47;
  c.private_proofs = true;
  c.num_owners = 1;
  c.erasure_data = 2;
  c.erasure_parity = 0;
  c.settlement_window_s = 3 * c.audit_period_s;
  c.aggregate_settlement = true;
  NetworkSim net(c);
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    net.set_adversary(p, std::make_shared<attack::SeedGrindingStrategy>(
                             /*seed=*/23, /*candidates=*/3));
  }
  net.deploy();
  net.run_to_completion();
  net.check_invariants();

  const NetworkStats st = net.stats();
  EXPECT_GT(st.attacks_attempted, 0u);  // every round is a grind
  EXPECT_EQ(st.attacks_detected, 0u);   // ...that still verifies
  EXPECT_GT(st.seed_replays_attempted, 0u);
  EXPECT_EQ(st.seed_replays_accepted, 0u);
  // Ground proofs verify, so every window is clean: aggregate txs only.
  EXPECT_GT(st.aggregate_txs, 0u);
  EXPECT_EQ(st.fallback_windows, 0u);
  EXPECT_EQ(st.total_gas, 0u);  // no per-round prove gas in clean windows

  // The seed in the posted window tx IS the spent one: replaying it is
  // refused at the registry.
  const contract::BatchSettlement* bs = net.batch_settlement();
  ASSERT_NE(bs, nullptr);
  ASSERT_TRUE(bs->last_aggregate().has_value());
  ASSERT_TRUE(bs->last_weight_seed().has_value());
  const audit::AggregateSettlement tx = *bs->last_aggregate();
  EXPECT_EQ(tx.weight_seed, *bs->last_weight_seed());

  // The posted tx is verifiably bound to its window: the seed re-derives
  // from the tx's own nonce + boundary and the window's canonical round
  // transcripts. An attacker who swapped in a ground/self-chosen seed (under
  // which forged proofs could cancel in the weighted batch check) could not
  // produce this equality.
  const auto transcripts = bs->last_transcripts();
  ASSERT_FALSE(transcripts.empty());
  EXPECT_EQ(tx.rounds, transcripts.size());
  EXPECT_EQ(audit::derive_settlement_seed(tx.seed_nonce, tx.window_boundary,
                                          transcripts),
            tx.weight_seed);
  // A seed the attacker picks himself does not re-derive.
  auto forged = tx;
  forged.weight_seed[0] ^= 1;
  EXPECT_NE(audit::derive_settlement_seed(forged.seed_nonce,
                                          forged.window_boundary, transcripts),
            forged.weight_seed);
}

// Malformed bytes: corrupted wire encodings die at the typed decode
// boundary — no ticket, a failed round, never a crash.
TEST(AdversaryDirected, MalformedBytesDieAtDecodeBoundary) {
  NetworkConfig c = adversary_config();
  c.rng_seed = 46;
  for (bool priv : {false, true}) {
    c.private_proofs = priv;
    const NetworkStats st = run_uniform(
        c, std::make_shared<attack::MalformedBytesStrategy>(
               /*seed=*/19, /*malformed_permille=*/500));
    EXPECT_GT(st.attacks_attempted, 0u);
    EXPECT_EQ(st.attacks_detected, st.attacks_attempted);
    EXPECT_EQ(st.fails + st.timeouts, st.attacks_detected);
  }
}

// Grinding replays across settlement-window boundaries, replayed at 1/2/8
// threads: window state (spent seeds, mid-window pending rounds) must not
// introduce any thread-count dependence.
TEST(AdversaryDirected, WindowedGrindingReplaysBitIdenticalAcrossThreads) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig c = adversary_config();
    c.rng_seed = seed;
    c.private_proofs = true;
    c.num_owners = 1;
    c.erasure_data = 2;
    c.erasure_parity = 0;
    c.settlement_window_s = 3 * c.audit_period_s;  // rounds straddle windows
    NetworkSim net(c);
    for (std::size_t p = 0; p < c.num_providers; ++p) {
      net.set_adversary(p, std::make_shared<attack::SeedGrindingStrategy>(
                               seed, /*candidates=*/2));
    }
    net.deploy();
    net.run_to_completion();
    net.check_invariants();
    EXPECT_GT(net.stats().seed_replays_attempted, 0u);
    return fingerprint(net, c);
  };
  const unsigned original = parallel::thread_count();
  parallel::set_thread_count(1);
  const std::string baseline = run(91);
  for (unsigned width : {2u, 8u}) {
    parallel::set_thread_count(width);
    EXPECT_EQ(run(91), baseline) << "diverged at " << width << " threads";
  }
  parallel::set_thread_count(original);
}

// --------------------------------------------------------------------------
// Bounded smoke suite — the `attack-smoke` ctest target runs exactly this
// (cheap enough for every sanitizer job in the CI matrix).
// --------------------------------------------------------------------------

TEST(AdversarySmoke, FixedSeedSweep) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    run_adversary_seed(seed);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace dsaudit::sim
