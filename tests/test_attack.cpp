// §V-C attack tests: full plaintext-block recovery from non-private audit
// trails, and the negative control showing the sigma-protocol variant leaks
// nothing recoverable by the same adversary.
#include <gtest/gtest.h>

#include "attack/trail_attack.hpp"

namespace dsaudit::attack {
namespace {

using audit::FileTag;
using audit::KeyPair;
using primitives::SecureRng;

struct Victim {
  KeyPair kp;
  storage::EncodedFile file;
  FileTag tag;
  audit::Fr name;
  std::unique_ptr<audit::Prover> prover;

  Victim(std::size_t file_size, std::size_t s, SecureRng& rng) {
    kp = audit::keygen(s, rng);
    std::vector<std::uint8_t> data(file_size);
    rng.fill(data);
    file = storage::encode_file(data, s);
    name = audit::Fr::random(rng);
    tag = audit::generate_tags(kp.sk, kp.pk, file, name);
    prover = std::make_unique<audit::Prover>(kp.pk, file, tag);
  }
};

audit::Challenge beacon_challenge(SecureRng& rng, std::size_t k) {
  audit::Challenge c;
  c.c1 = rng.bytes32();
  c.c2 = rng.bytes32();
  c.r = audit::Fr::random(rng);
  c.k = k;
  return c;
}

TEST(InterpolationView, RecoversPkPolynomial) {
  // The paper's exposition: fixed seeds (same indices & coefficients),
  // s distinct evaluation points -> Lagrange gives P_k(x) exactly.
  auto rng = SecureRng::deterministic(700);
  const std::size_t s = 6;
  Victim v(1200, s, rng);
  audit::Challenge base = beacon_challenge(rng, 3);

  std::vector<ObservedTrail> trails;
  for (std::size_t t = 0; t < s; ++t) {
    audit::Challenge c = base;
    c.r = audit::Fr::from_u64(1000 + t);  // eclipse-style chosen points
    trails.push_back({c, v.prover->prove(c).y});
  }
  poly::Polynomial pk_poly = interpolate_pk(trails, s);

  // Cross-check against the ground truth P_k built from the file.
  auto ex = audit::expand_challenge(base, v.file.num_chunks());
  std::vector<audit::Fr> expect(s, audit::Fr::zero());
  for (std::size_t j = 0; j < ex.indices.size(); ++j) {
    for (std::size_t l = 0; l < s; ++l) {
      expect[l] += ex.coefficients[j] * v.file.chunks[ex.indices[j]][l];
    }
  }
  for (std::size_t l = 0; l < s; ++l) {
    EXPECT_EQ(pk_poly.coefficient(l), expect[l]) << "coefficient " << l;
  }
}

TEST(InterpolationView, InputValidation) {
  auto rng = SecureRng::deterministic(701);
  Victim v(600, 4, rng);
  audit::Challenge a = beacon_challenge(rng, 2);
  audit::Challenge b = beacon_challenge(rng, 2);  // different seeds
  std::vector<ObservedTrail> mixed{{a, audit::Fr::one()}, {b, audit::Fr::one()}};
  EXPECT_THROW(interpolate_pk(mixed, 4), std::invalid_argument);
  std::vector<ObservedTrail> dup{{a, audit::Fr::one()}, {a, audit::Fr::one()}};
  EXPECT_THROW(interpolate_pk(dup, 2), std::invalid_argument);  // duplicate r
  EXPECT_THROW(interpolate_pk(std::span<const ObservedTrail>{}, 1),
               std::invalid_argument);
}

TEST(FullAttack, EclipseAdversaryRecoversEveryBlock) {
  // The headline §V-C result: with adversary-chosen challenges (eclipse) on
  // the NON-private protocol, d*s trails recover the entire file exactly.
  auto rng = SecureRng::deterministic(702);
  const std::size_t s = 4;
  Victim v(800, s, rng);  // 800 bytes -> 26 blocks -> 7 chunks
  const std::size_t d = v.file.num_chunks();

  TrailAnalyzer analyzer(d, s);
  std::uint64_t round = 0;
  std::optional<std::map<BlockId, Fr>> recovered;
  while (round < 3 * d * s) {  // safety cap
    audit::Challenge chal = eclipse_challenge(round++, d);
    analyzer.add_trail({chal, v.prover->prove(chal).y});
    if (analyzer.equations() >= analyzer.unknowns()) {
      recovered = analyzer.recover();
      if (recovered) break;
    }
  }
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovery_rate(*recovered, v.file), 1.0);  // every single block
  EXPECT_LE(round, d * s + 5);  // information-theoretic minimum d*s, small slack
}

TEST(FullAttack, HonestBeaconTrailsAlsoLeakEventually) {
  // Even WITHOUT eclipse control — plain observation of honest random
  // challenges (k = d case, e.g. small files) — the system closes after
  // about d*s rounds. "Every single block can be recovered by adversaries
  // given a normal contract duration."
  auto rng = SecureRng::deterministic(703);
  const std::size_t s = 3;
  Victim v(400, s, rng);  // 13 blocks -> 5 chunks
  const std::size_t d = v.file.num_chunks();

  TrailAnalyzer analyzer(d, s);
  std::optional<std::map<BlockId, Fr>> recovered;
  for (int round = 0; round < 200 && !recovered; ++round) {
    audit::Challenge chal = beacon_challenge(rng, d);  // contract challenges all
    analyzer.add_trail({chal, v.prover->prove(chal).y});
    if (analyzer.equations() >= analyzer.unknowns()) {
      recovered = analyzer.recover();
    }
  }
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovery_rate(*recovered, v.file), 1.0);
}

TEST(FullAttack, PartialChallengesRecoverPartialData) {
  // k < d: only chunks that appear in some challenge are recoverable; the
  // adversary gets exactly the sampled subset once enough equations cover it.
  auto rng = SecureRng::deterministic(704);
  const std::size_t s = 3;
  Victim v(2000, s, rng);
  const std::size_t d = v.file.num_chunks();
  ASSERT_GT(d, 10u);

  TrailAnalyzer analyzer(d, s);
  for (int round = 0; round < 400; ++round) {
    audit::Challenge chal = beacon_challenge(rng, 3);  // k = 3 << d
    analyzer.add_trail({chal, v.prover->prove(chal).y});
  }
  auto recovered = analyzer.recover();
  if (recovered) {
    double rate = recovery_rate(*recovered, v.file);
    EXPECT_GT(rate, 0.0);
    // Everything it claims must be correct (no garbage recovery).
    for (const auto& [id, value] : *recovered) {
      EXPECT_EQ(value, v.file.chunks[id.chunk][id.position]);
    }
  }
  // With 400 rounds of k=3 over a small d, coverage is near-certain.
  EXPECT_GE(analyzer.unknowns(), d * s - 3 * s);
}

TEST(PrivacyDefense, SigmaProtocolTrailsRecoverNothing) {
  // The same adversary pipeline fed with y' from PRIVATE proofs: each round
  // has fresh hidden (z, zeta), so the linear system over the blocks is
  // inconsistent and recover() must keep failing no matter how many trails
  // accumulate. This is Theorem 2 made executable.
  auto rng = SecureRng::deterministic(705);
  const std::size_t s = 4;
  Victim v(800, s, rng);
  const std::size_t d = v.file.num_chunks();

  TrailAnalyzer analyzer(d, s);
  for (std::uint64_t round = 0; round < 4 * d * s; ++round) {
    audit::Challenge chal = eclipse_challenge(round, d);
    auto proof = v.prover->prove_private(chal, rng);
    analyzer.add_trail({chal, proof.y_prime});
  }
  EXPECT_GE(analyzer.equations(), analyzer.unknowns());
  EXPECT_FALSE(analyzer.recover().has_value());
}

TEST(PrivacyDefense, InterpolationOnPrivateTrailsGivesGarbage) {
  // Interpolating y' values "as if" they were P_k(r) yields a polynomial
  // unrelated to the data (checked against the true coefficients).
  auto rng = SecureRng::deterministic(706);
  const std::size_t s = 5;
  Victim v(900, s, rng);
  audit::Challenge base = beacon_challenge(rng, 2);

  std::vector<ObservedTrail> trails;
  for (std::size_t t = 0; t < s; ++t) {
    audit::Challenge c = base;
    c.r = audit::Fr::from_u64(2000 + t);
    trails.push_back({c, v.prover->prove_private(c, rng).y_prime});
  }
  poly::Polynomial garbage = interpolate_pk(trails, s);
  auto ex = audit::expand_challenge(base, v.file.num_chunks());
  int matches = 0;
  for (std::size_t l = 0; l < s; ++l) {
    Fr truth = Fr::zero();
    for (std::size_t j = 0; j < ex.indices.size(); ++j) {
      truth += ex.coefficients[j] * v.file.chunks[ex.indices[j]][l];
    }
    if (garbage.coefficient(l) == truth) ++matches;
  }
  EXPECT_EQ(matches, 0);  // not a single coefficient survives the masking
}

TEST(TrailAnalyzer, Validation) {
  EXPECT_THROW(TrailAnalyzer(0, 3), std::invalid_argument);
  EXPECT_THROW(TrailAnalyzer(3, 0), std::invalid_argument);
  TrailAnalyzer a(3, 2);
  EXPECT_EQ(a.equations(), 0u);
  EXPECT_EQ(a.unknowns(), 0u);
  EXPECT_FALSE(a.recover().has_value());
}

}  // namespace
}  // namespace dsaudit::attack
