// Batched round settlement, end to end: the audit-layer engine (cross-key
// and private batches, exact pairing counts, culprit isolation by
// bisection), the contract-layer BatchSettlement (weight freshness,
// cross-contract blocks), and batched-vs-sequential bit identity of the
// whole simulated network — chain state, gas totals and ledger.
#include <gtest/gtest.h>

#include <cstring>

#include "audit/protocol.hpp"
#include "audit/serialize.hpp"
#include "contract/batch_settlement.hpp"
#include "econ/cost_model.hpp"
#include "pairing/pairing.hpp"
#include "primitives/keccak256.hpp"
#include "sim/network_sim.hpp"

namespace dsaudit {
namespace {

using audit::BasicInstance;
using audit::Challenge;
using audit::Fr;
using audit::KeyPair;
using audit::PreparedFile;
using audit::Prover;
using audit::SettlementInstance;
using audit::SettlementOutcome;
using audit::Verifier;
using primitives::SecureRng;

std::vector<std::uint8_t> random_bytes(std::size_t n, SecureRng& rng) {
  std::vector<std::uint8_t> v(n);
  rng.fill(v);
  return v;
}

struct Scenario {
  KeyPair kp;
  storage::EncodedFile file;
  audit::FileTag tag;
  Fr name;
};

Scenario make_scenario(std::size_t file_size, std::size_t s, SecureRng& rng) {
  Scenario sc;
  sc.kp = audit::keygen(s, rng);
  auto data = random_bytes(file_size, rng);
  sc.file = storage::encode_file(data, s);
  sc.name = Fr::random(rng);
  sc.tag = audit::generate_tags(sc.kp.sk, sc.kp.pk, sc.file, sc.name);
  return sc;
}

Challenge make_challenge(SecureRng& rng, std::size_t k) {
  Challenge c;
  c.c1 = rng.bytes32();
  c.c2 = rng.bytes32();
  c.r = Fr::random(rng);
  c.k = k;
  return c;
}

std::array<std::uint8_t, 32> seed_of(SecureRng& rng) { return rng.bytes32(); }

// ---------------------------------------------------------------------------
// audit::verify_settlement — the aggregation engine.
// ---------------------------------------------------------------------------

TEST(Settlement, SameKeyBatchIsExactlyThreePairings) {
  auto rng = SecureRng::deterministic(900);
  Scenario sc = make_scenario(4000, 6, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(16);
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 5);
    inst.basic = prover.prove(inst.challenge);
  }
  pairing::reset_pairing_counters();
  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  auto counters = pairing::pairing_counters();

  EXPECT_TRUE(out.all_ok());
  EXPECT_EQ(out.batch_checks, 1u);
  EXPECT_EQ(out.single_checks, 0u);
  // The headline invariant: 16 rounds of one key settle with EXACTLY 3
  // Miller chains and one final exponentiation.
  EXPECT_EQ(counters.chains, 3u);
  EXPECT_EQ(counters.final_exps, 1u);
}

TEST(Settlement, CrossKeyBatchCostsOnePlusTwoPerKey) {
  auto rng = SecureRng::deterministic(901);
  Scenario a = make_scenario(3000, 5, rng);
  Scenario b = make_scenario(3500, 6, rng);
  Verifier va(a.kp.pk), vb(b.kp.pk);
  PreparedFile ca = audit::prepare_file(a.name, a.file.num_chunks());
  PreparedFile cb = audit::prepare_file(b.name, b.file.num_chunks());
  Prover pa(a.kp.pk, a.file, a.tag), pb(b.kp.pk, b.file, b.tag);

  std::vector<SettlementInstance> instances;
  for (int i = 0; i < 4; ++i) {
    SettlementInstance inst;
    const bool first = i % 2 == 0;
    inst.verifier = first ? &va : &vb;
    inst.file = first ? &ca : &cb;
    inst.challenge = make_challenge(rng, 4);
    inst.basic = (first ? pa : pb).prove(inst.challenge);
    instances.push_back(std::move(inst));
  }
  pairing::reset_pairing_counters();
  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  auto counters = pairing::pairing_counters();

  EXPECT_TRUE(out.all_ok());
  // Two distinct keys: shared generator chain + (epsilon, delta) per key.
  EXPECT_EQ(counters.chains, 1u + 2u * 2u);
  EXPECT_EQ(counters.final_exps, 1u);
}

TEST(Settlement, SameKeyAcrossDistinctVerifierObjectsStillGroups) {
  auto rng = SecureRng::deterministic(902);
  Scenario sc = make_scenario(3000, 5, rng);
  // Two Verifier objects over the same public key (two contracts of one
  // owner): content-based grouping must still give 3 pairings.
  Verifier v1(sc.kp.pk), v2(sc.kp.pk);
  EXPECT_EQ(v1.key_id(), v2.key_id());
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(4);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    instances[i].verifier = i % 2 ? &v1 : &v2;
    instances[i].file = &ctx;
    instances[i].challenge = make_challenge(rng, 4);
    instances[i].basic = prover.prove(instances[i].challenge);
  }
  pairing::reset_pairing_counters();
  EXPECT_TRUE(audit::verify_settlement(instances, seed_of(rng)).all_ok());
  EXPECT_EQ(pairing::pairing_counters().chains, 3u);
}

TEST(Settlement, PrivateAndMixedProofBatches) {
  auto rng = SecureRng::deterministic(903);
  Scenario sc = make_scenario(4000, 6, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(6);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    instances[i].verifier = &verifier;
    instances[i].file = &ctx;
    instances[i].challenge = make_challenge(rng, 5);
    if (i % 2 == 0) {
      instances[i].priv = prover.prove_private(instances[i].challenge, rng);
    } else {
      instances[i].basic = prover.prove(instances[i].challenge);
    }
  }
  pairing::reset_pairing_counters();
  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  EXPECT_TRUE(out.all_ok());
  // The private commitments fold into the GT side; still 3 pairings.
  EXPECT_EQ(pairing::pairing_counters().chains, 3u);

  // A tampered private proof fails its round (and only its round).
  instances[2].priv->y_prime += Fr::one();
  out = audit::verify_settlement(instances, seed_of(rng));
  EXPECT_FALSE(out.ok[2]);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (i != 2) EXPECT_TRUE(out.ok[i]) << i;
  }
}

TEST(Settlement, BisectionIsolatesSingleCulprit) {
  auto rng = SecureRng::deterministic(904);
  Scenario sc = make_scenario(4000, 6, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(9);
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 5);
    inst.basic = prover.prove(inst.challenge);
  }
  instances[5].basic->y += Fr::one();  // the cheater

  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  EXPECT_FALSE(out.all_ok());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(out.ok[i], i != 5) << i;
  }
  // Bisection ran: more than one aggregate check, and every leaf it opened
  // was re-verified exactly.
  EXPECT_GT(out.batch_checks, 1u);
  EXPECT_GE(out.single_checks, 1u);
}

TEST(Settlement, BisectionIsolatesMultipleCulprits) {
  auto rng = SecureRng::deterministic(905);
  Scenario sc = make_scenario(4000, 6, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(12);
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 5);
    inst.basic = prover.prove(inst.challenge);
  }
  // Three cheaters in different halves, plus adjacent honest rounds.
  instances[0].basic->y += Fr::one();
  instances[6].basic->sigma = instances[6].basic->sigma + curve::G1::generator();
  instances[11].basic->psi = -instances[11].basic->psi;

  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const bool cheat = i == 0 || i == 6 || i == 11;
    EXPECT_EQ(out.ok[i], !cheat) << i;
  }
}

TEST(Settlement, MalformedInstancesFailWithoutPoisoningTheBatch) {
  auto rng = SecureRng::deterministic(906);
  Scenario sc = make_scenario(3000, 5, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(4);
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 4);
    inst.basic = prover.prove(inst.challenge);
  }
  instances[0].verifier = nullptr;              // no key
  instances[1].basic.reset();                   // no proof at all
  instances[2].priv = audit::ProofPrivate{};    // both shapes engaged

  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  EXPECT_FALSE(out.ok[0]);
  EXPECT_FALSE(out.ok[1]);
  EXPECT_FALSE(out.ok[2]);
  EXPECT_TRUE(out.ok[3]);

  // And the empty batch is trivially clean.
  EXPECT_TRUE(audit::verify_settlement({}, seed_of(rng)).all_ok());
}

TEST(Settlement, ColdPathWithoutPreparedFileMatches) {
  auto rng = SecureRng::deterministic(907);
  Scenario sc = make_scenario(3000, 5, rng);
  Verifier verifier(sc.kp.pk);
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  SettlementInstance inst;
  inst.verifier = &verifier;
  inst.name = sc.name;
  inst.num_chunks = sc.file.num_chunks();
  inst.challenge = make_challenge(rng, 4);
  inst.basic = prover.prove(inst.challenge);
  EXPECT_TRUE(
      audit::verify_settlement(std::span<const SettlementInstance>(&inst, 1),
                               seed_of(rng))
          .all_ok());
  inst.basic->y += Fr::one();
  EXPECT_FALSE(
      audit::verify_settlement(std::span<const SettlementInstance>(&inst, 1),
                               seed_of(rng))
          .all_ok());
}

TEST(Settlement, CheaterAtEveryWindowPosition) {
  // A multi-instant window batch: two keys, three file contexts, mixed
  // Eq. 1 / Eq. 2 shapes — then a cheating round injected at EVERY position
  // in turn. Bisection must isolate exactly the culprit; every honest round
  // in the same window settles Pass, whichever position cheats.
  auto rng = SecureRng::deterministic(910);
  Scenario a = make_scenario(3000, 5, rng);
  Scenario b = make_scenario(2500, 5, rng);
  Verifier va(a.kp.pk), vb(b.kp.pk);
  PreparedFile ca = audit::prepare_file(a.name, a.file.num_chunks());
  PreparedFile cb = audit::prepare_file(b.name, b.file.num_chunks());
  Prover pa(a.kp.pk, a.file, a.tag), pb(b.kp.pk, b.file, b.tag);

  std::vector<SettlementInstance> window(8);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const bool first_key = i % 3 != 0;
    auto& inst = window[i];
    inst.verifier = first_key ? &va : &vb;
    inst.file = first_key ? &ca : &cb;
    inst.challenge = make_challenge(rng, 4);
    Prover& p = first_key ? pa : pb;
    if (i % 2 == 0) {
      inst.priv = p.prove_private(inst.challenge, rng);
    } else {
      inst.basic = p.prove(inst.challenge);
    }
  }

  for (std::size_t cheat = 0; cheat < window.size(); ++cheat) {
    std::vector<SettlementInstance> batch = window;
    if (batch[cheat].basic) {
      batch[cheat].basic->y += Fr::one();
    } else {
      batch[cheat].priv->y_prime += Fr::one();
    }
    SettlementOutcome out = audit::verify_settlement(batch, seed_of(rng));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(out.ok[i], i != cheat) << "cheat at " << cheat << ", round " << i;
    }
    EXPECT_GT(out.batch_checks, 1u) << cheat;   // bisection actually ran
    EXPECT_GE(out.single_checks, 1u) << cheat;  // and re-verified the leaf
  }
}

TEST(Settlement, MixedShapeWindowPairingCountAcrossKeys) {
  // >= 3 contracts' worth of rounds (three file contexts) over 2 distinct
  // keys, Eq. 1 and Eq. 2 mixed: a clean window must cost exactly
  // 1 + 2 * (#keys) Miller chains and one final exponentiation, with every
  // private commitment folded through the shared GT multi-exponentiation.
  auto rng = SecureRng::deterministic(911);
  Scenario a = make_scenario(3200, 6, rng);
  Scenario b = make_scenario(2400, 4, rng);
  Verifier va(a.kp.pk), vb(b.kp.pk);
  PreparedFile ca1 = audit::prepare_file(a.name, a.file.num_chunks());
  Fr second_name = Fr::random(rng);
  auto second_tag = audit::generate_tags(a.kp.sk, a.kp.pk, a.file, second_name);
  PreparedFile ca2 = audit::prepare_file(second_name, a.file.num_chunks());
  PreparedFile cb = audit::prepare_file(b.name, b.file.num_chunks());
  Prover pa1(a.kp.pk, a.file, a.tag), pa2(a.kp.pk, a.file, second_tag);
  Prover pb(b.kp.pk, b.file, b.tag);

  std::vector<SettlementInstance> instances(9);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    auto& inst = instances[i];
    switch (i % 3) {
      case 0: inst.verifier = &va; inst.file = &ca1; break;
      case 1: inst.verifier = &va; inst.file = &ca2; break;
      default: inst.verifier = &vb; inst.file = &cb; break;
    }
    inst.challenge = make_challenge(rng, 4);
    Prover& p = i % 3 == 0 ? pa1 : i % 3 == 1 ? pa2 : pb;
    if (i % 2 == 0) {
      inst.priv = p.prove_private(inst.challenge, rng);
    } else {
      inst.basic = p.prove(inst.challenge);
    }
  }
  pairing::reset_pairing_counters();
  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng));
  auto counters = pairing::pairing_counters();
  EXPECT_TRUE(out.all_ok());
  EXPECT_EQ(out.batch_checks, 1u);
  EXPECT_EQ(counters.chains, 1u + 2u * 2u);
  EXPECT_EQ(counters.final_exps, 1u);

  // One cheater per key, different shapes: exactly those two rounds fail.
  instances[3].basic->sigma = instances[3].basic->sigma + curve::G1::generator();
  instances[8].priv->y_prime += Fr::one();
  out = audit::verify_settlement(instances, seed_of(rng));
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(out.ok[i], i != 3 && i != 8) << i;
  }
}

TEST(Settlement, ReducedSoundnessWeightsAreGatedAndWork) {
  // The 64-bit-weight mode: explicit opt-in, settles honest windows, still
  // catches tampering (residual soundness ~2^-64 per batch).
  auto rng = SecureRng::deterministic(912);
  Scenario sc = make_scenario(3000, 5, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(6);
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 4);
    inst.priv = prover.prove_private(inst.challenge, rng);
  }
  audit::SettlementOptions reduced;
  reduced.reduced_soundness_weights = true;
  auto seed = seed_of(rng);
  EXPECT_TRUE(audit::verify_settlement(instances, seed, reduced).all_ok());
  // Same batch, same seed, default soundness: also clean (the width only
  // changes the weights, not the verdicts).
  EXPECT_TRUE(audit::verify_settlement(instances, seed).all_ok());

  instances[4].priv->psi = -instances[4].priv->psi;
  SettlementOutcome out = audit::verify_settlement(instances, seed_of(rng), reduced);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(out.ok[i], i != 4) << i;
  }
}

TEST(Settlement, AggregateSettlementTxVerifiesAndBindsItsSeed) {
  // The one-tx-per-window object: seed + nonce + one aggregated KZG opening
  // + the outcome bitmap. An honest tx — whose seed IS
  // derive_settlement_seed(nonce, boundary, transcripts) — is accepted; a
  // ground/self-chosen seed, a tampered nonce or boundary, a substituted
  // opening, a lying bitmap or a count/transcript mismatch is refused.
  auto rng = SecureRng::deterministic(913);
  Scenario sc = make_scenario(4000, 6, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(9);
  std::vector<std::array<std::uint8_t, 32>> transcripts;
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 5);
    inst.basic = prover.prove(inst.challenge);
    transcripts.push_back(rng.bytes32());
  }
  instances[4].basic->y += Fr::one();  // one cheater: a dirty-window bitmap

  const std::uint64_t nonce = 0x5EED'0913;
  const std::uint64_t boundary = 4000;
  const auto seed = audit::derive_settlement_seed(nonce, boundary, transcripts);
  audit::SettlementOptions opts;
  opts.compute_aggregate_opening = true;
  SettlementOutcome out = audit::verify_settlement(instances, seed, opts);
  ASSERT_FALSE(out.all_ok());

  audit::AggregateSettlement tx;
  tx.weight_seed = seed;
  tx.seed_nonce = nonce;
  tx.window_boundary = boundary;
  tx.rounds = instances.size();
  tx.opening = out.aggregated_opening;
  tx.outcomes.assign(audit::AggregateSettlement::bitmap_bytes(tx.rounds), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    tx.set_outcome(i, out.ok[i]);
  }

  EXPECT_TRUE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, tx));
  // Round-trips through the wire format and still verifies.
  auto decoded = audit::decode_aggregate_settlement(audit::serialize(tx));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(audit::verify_settlement_aggregate(instances, transcripts,
                                                 boundary, *decoded));

  // Ground seed: no longer the transcript derivation — refused.
  audit::AggregateSettlement bad = tx;
  bad.weight_seed[0] ^= 1;
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, bad));
  // Tampered nonce: the seed no longer re-derives.
  bad = tx;
  bad.seed_nonce ^= 1;
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, bad));
  // Replay against a different window: the boundary check refuses it (and
  // even a boundary-matching forgery would fail the seed re-derivation).
  EXPECT_FALSE(audit::verify_settlement_aggregate(instances, transcripts,
                                                  boundary + 4000, tx));
  bad = tx;
  bad.window_boundary += 4000;
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, bad));
  // Substituted opening.
  bad = tx;
  bad.opening = bad.opening + curve::G1::generator();
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, bad));
  // Lying bitmap: the cheater marked clean.
  bad = tx;
  bad.outcomes[0] |= static_cast<std::uint8_t>(1u << 4);
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, bad));
  // Count mismatch with the instance set.
  EXPECT_FALSE(audit::verify_settlement_aggregate(
      std::span<const SettlementInstance>(instances.data(), 8),
      std::span<const std::array<std::uint8_t, 32>>(transcripts.data(), 8),
      boundary, tx));
  // Transcript substitution: same instances, different committed identities.
  auto other = transcripts;
  other[0][0] ^= 1;
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, other, boundary, tx));
}

TEST(Settlement, ColludingCancellationUnderSelfChosenSeedIsRefused) {
  // The attack the seed binding exists for: batch weights rho_i are a public
  // function of the seed, so a prover who FIXES a seed before crafting
  // proofs can corrupt two rounds with errors that cancel in the weighted
  // batch check (d2 = -rho1*d1/rho2 on the y slot; zeta = 1 for basic
  // proofs). Under the self-chosen seed the whole window then "settles
  // clean" — the forged tx's bitmap and opening both match. The aggregate
  // verifier must still refuse it, because that seed cannot be presented as
  // Keccak(nonce || boundary || transcripts) over the committed transcripts.
  auto rng = SecureRng::deterministic(914);
  Scenario sc = make_scenario(4000, 6, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::vector<SettlementInstance> instances(6);
  std::vector<std::array<std::uint8_t, 32>> transcripts;
  for (auto& inst : instances) {
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 5);
    inst.basic = prover.prove(inst.challenge);
    transcripts.push_back(rng.bytes32());
  }

  // The engine's public weight schedule: rho_i = low 16 bytes of
  // Keccak(seed || 'w' || i), interpreted big-endian (see weight_at in
  // protocol.cpp).
  const auto attacker_seed = seed_of(rng);
  auto rho_at = [&](std::uint64_t i) {
    std::array<std::uint8_t, 41> buf;
    std::memcpy(buf.data(), attacker_seed.data(), 32);
    buf[32] = 'w';
    for (int b = 0; b < 8; ++b) {
      buf[33 + b] = static_cast<std::uint8_t>(i >> (8 * b));
    }
    const auto h = primitives::Keccak256::hash(
        std::span<const std::uint8_t>(buf.data(), buf.size()));
    std::array<std::uint8_t, 32> wide{};
    std::copy(h.begin(), h.begin() + 16, wide.end() - 16);
    return Fr::from_be_bytes_mod(std::span<const std::uint8_t, 32>(wide));
  };
  const Fr d1 = Fr::random(rng);
  const Fr d2 = -(rho_at(1) * d1) * rho_at(2).inverse();
  instances[1].basic->y += d1;
  instances[2].basic->y += d2;

  // The cancellation is real: under the attacker's seed the weighted batch
  // check passes and every round (the two cheaters included) reads Pass.
  audit::SettlementOptions opts;
  opts.compute_aggregate_opening = true;
  SettlementOutcome forged =
      audit::verify_settlement(instances, attacker_seed, opts);
  ASSERT_TRUE(forged.all_ok());

  // The forged window tx: all-pass bitmap, matching opening, the attacker's
  // seed, and whatever nonce/boundary the attacker claims.
  const std::uint64_t boundary = 8000;
  audit::AggregateSettlement tx;
  tx.weight_seed = attacker_seed;
  tx.seed_nonce = 0xBAD5EED;
  tx.window_boundary = boundary;
  tx.rounds = instances.size();
  tx.opening = forged.aggregated_opening;
  tx.outcomes.assign(audit::AggregateSettlement::bitmap_bytes(tx.rounds), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) tx.set_outcome(i, true);

  // Refused: the self-chosen seed is not the derivation over the committed
  // transcripts, for this (or any feasible) nonce.
  EXPECT_FALSE(
      audit::verify_settlement_aggregate(instances, transcripts, boundary, tx));

  // And the honestly derived seed — fixed only after the transcripts — does
  // not cooperate with the cancellation: both cheaters are isolated.
  const auto honest_seed =
      audit::derive_settlement_seed(tx.seed_nonce, boundary, transcripts);
  SettlementOutcome honest =
      audit::verify_settlement(instances, honest_seed, opts);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(honest.ok[i], i != 1 && i != 2) << i;
  }
}

// ---------------------------------------------------------------------------
// contract::BatchSettlement — the block-level coordinator.
// ---------------------------------------------------------------------------

TEST(BatchSettlementEngine, ReplayedWeightSeedsAreRejected) {
  contract::BatchSettlement batch(7);
  auto rng = SecureRng::deterministic(908);
  auto seed = rng.bytes32();
  EXPECT_TRUE(batch.consume_weight_seed(seed));
  EXPECT_FALSE(batch.consume_weight_seed(seed));  // replay refused
  EXPECT_TRUE(batch.consume_weight_seed(rng.bytes32()));
}

TEST(BatchSettlementEngine, UnknownTicketThrows) {
  contract::BatchSettlement batch(8);
  EXPECT_THROW(batch.outcome({42, 0, 0}), std::logic_error);
}

TEST(BatchSettlementEngine, FlushSeedEntersReplayRegistry) {
  // Every settled window's derived Fiat–Shamir seed lands in the freshness
  // registry: replaying it is refused, and consecutive windows never share
  // a seed.
  auto rng = SecureRng::deterministic(909);
  Scenario sc = make_scenario(2500, 5, rng);
  Verifier verifier(sc.kp.pk);
  PreparedFile ctx = audit::prepare_file(sc.name, sc.file.num_chunks());
  Prover prover(sc.kp.pk, sc.file, sc.tag);

  chain::Blockchain chain;
  contract::BatchSettlement batch(9);
  EXPECT_FALSE(batch.last_weight_seed().has_value());

  std::array<std::uint8_t, 32> seeds[2];
  for (int window = 0; window < 2; ++window) {
    SettlementInstance inst;
    inst.verifier = &verifier;
    inst.file = &ctx;
    inst.challenge = make_challenge(rng, 4);
    inst.basic = prover.prove(inst.challenge);
    auto ticket = batch.enqueue(chain, std::move(inst), rng.bytes32());
    EXPECT_TRUE(batch.outcome(ticket).ok);  // direct-call flush
    ASSERT_TRUE(batch.last_weight_seed().has_value());
    seeds[window] = *batch.last_weight_seed();
    // The flush itself consumed the seed — a replay is refused.
    EXPECT_FALSE(batch.consume_weight_seed(seeds[window]));
  }
  EXPECT_NE(seeds[0], seeds[1]);  // fresh nonce per window
}

// ---------------------------------------------------------------------------
// Windowed settlement across chain instants.
// ---------------------------------------------------------------------------

/// Three contracts over two keys with staggered audit cadences and mixed
/// proof shapes, all deferring into one shared engine on a chain with a
/// settlement window: rounds due at three DIFFERENT instants must settle in
/// one flush at the window boundary, for 1 + 2·keys pairings total.
TEST(WindowedSettlement, MultiInstantWindowMixedShapesAcrossContracts) {
  auto rng = SecureRng::deterministic(920);
  Scenario a = make_scenario(2500, 5, rng);
  Scenario b = make_scenario(2000, 4, rng);

  chain::ChainConfig cc;
  cc.settlement_window_s = 4000;
  chain::Blockchain chain(cc);
  chain::TrustedBeacon beacon(rng.bytes32());
  contract::BatchSettlement batch(11);

  struct Party {
    Scenario* sc;
    chain::Timestamp period;
    bool priv;
    std::unique_ptr<Prover> prover;
    std::unique_ptr<primitives::SecureRng> prng;
    std::unique_ptr<contract::AuditContract> contract;
  };
  Party parties[3] = {{&a, 1000, false, nullptr, nullptr, nullptr},
                      {&a, 1300, true, nullptr, nullptr, nullptr},
                      {&b, 1600, true, nullptr, nullptr, nullptr}};
  for (int i = 0; i < 3; ++i) {
    Party& p = parties[i];
    std::string owner = "owner-" + std::to_string(i);
    std::string provider = "provider-" + std::to_string(i);
    chain.mint(owner, 100'000);
    chain.mint(provider, 100'000);
    p.prover = std::make_unique<Prover>(p.sc->kp.pk, p.sc->file, p.sc->tag);
    p.prng = std::make_unique<SecureRng>(SecureRng::deterministic(921 + i));
    contract::ContractTerms terms;
    terms.owner = owner;
    terms.provider = provider;
    terms.num_audits = 2;
    terms.audit_period_s = p.period;
    terms.response_window_s = 100;
    terms.reward_per_audit = 10;
    terms.penalty_per_fail = 25;
    terms.challenged_chunks = 4;
    terms.private_proofs = p.priv;
    p.contract = std::make_unique<contract::AuditContract>(
        chain, beacon, terms, p.sc->kp.pk, p.sc->name,
        p.sc->file.num_chunks());
    p.contract->enable_deferred_settlement(batch);
    Prover* prover = p.prover.get();
    primitives::SecureRng* prng = p.prng.get();
    bool priv = p.priv;
    p.contract->set_responder(
        [prover, prng, priv](const Challenge& chal)
            -> std::optional<std::vector<std::uint8_t>> {
          if (priv) return audit::serialize(prover->prove_private(chal, *prng));
          return audit::serialize(prover->prove(chal));
        });
    p.contract->negotiated();
    p.contract->acked(true);
    p.contract->freeze();
  }

  // Round 1 of the three contracts is due at t = 1100, 1400 and 1700; the
  // window boundary is 4000. Nothing settles before it...
  pairing::reset_pairing_counters();
  chain.advance(3999);
  EXPECT_EQ(batch.stats().batches, 0u);
  EXPECT_EQ(pairing::pairing_counters().chains, 0u);
  for (const Party& p : parties) {
    EXPECT_EQ(p.contract->rounds_completed(), 0u);
  }

  // ...and the boundary settles all three rounds in ONE flush: a shared
  // generator chain plus (epsilon, delta) per distinct key.
  chain.advance(2);
  EXPECT_EQ(batch.stats().batches, 1u);
  EXPECT_EQ(batch.stats().rounds, 3u);
  EXPECT_EQ(batch.stats().instants, 3u);  // three distinct due instants
  EXPECT_EQ(pairing::pairing_counters().chains, 1u + 2u * 2u);
  EXPECT_EQ(pairing::pairing_counters().final_exps, 1u);
  for (const Party& p : parties) {
    EXPECT_EQ(p.contract->rounds_completed(), 1u);
    EXPECT_EQ(p.contract->passes(), 1u);
  }

  // The window's seed sits in the replay registry.
  ASSERT_TRUE(batch.last_weight_seed().has_value());
  EXPECT_FALSE(batch.consume_weight_seed(*batch.last_weight_seed()));

  // Round 2 re-challenges on the original cadence (anchored at the round-1
  // challenge times, all past by now, so they fire together) and settles at
  // the next boundary; everything completes and everyone was paid.
  chain.advance(20'000);
  EXPECT_EQ(batch.stats().batches, 2u);
  EXPECT_EQ(batch.stats().rounds, 6u);
  for (const Party& p : parties) {
    EXPECT_EQ(p.contract->state(), contract::State::Closed);
    EXPECT_EQ(p.contract->passes(), 2u);
    EXPECT_EQ(p.contract->fails() + p.contract->timeouts(), 0u);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(chain.balance("provider-" + std::to_string(i)), 100'000u + 2 * 10);
  }
}

// ---------------------------------------------------------------------------
// Batched vs sequential settlement of a whole simulated network.
// ---------------------------------------------------------------------------

struct SimSnapshot {
  sim::NetworkStats stats;
  std::vector<std::uint64_t> balances;
  std::size_t blocks = 0;
  std::size_t txs = 0;
  // Settlement-layer chain footprint, split by tx kind.
  std::uint64_t prove_txs = 0, prove_bytes = 0, prove_gas = 0;
  std::uint64_t window_txs = 0, window_bytes = 0, window_gas = 0;
};

SimSnapshot run_sim(bool batched, bool discount, std::size_t num_owners = 2,
                    sim::ProviderBehavior bad = sim::ProviderBehavior::DropsData,
                    chain::Timestamp settlement_window_s = 0,
                    bool aggregate = false) {
  sim::NetworkConfig c;
  c.num_owners = num_owners;
  c.num_providers = 3;
  c.file_bytes = 1000;
  c.s = 5;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.num_audits = 2;
  c.challenged_chunks = 999;  // sample every chunk: corruption always caught
  c.private_proofs = true;
  c.batched_settlement = batched;
  c.batch_gas_discount = discount;
  c.settlement_window_s = settlement_window_s;
  c.aggregate_settlement = aggregate;
  sim::NetworkSim net(c);
  net.set_behavior("provider-1", bad);
  net.deploy();
  net.run_to_completion();
  SimSnapshot snap;
  snap.stats = net.stats();
  for (std::size_t o = 0; o < c.num_owners; ++o) {
    snap.balances.push_back(net.balance("owner-" + std::to_string(o)));
  }
  for (std::size_t p = 0; p < c.num_providers; ++p) {
    snap.balances.push_back(net.balance("provider-" + std::to_string(p)));
  }
  snap.blocks = net.chain().blocks().size();
  snap.txs = net.chain().transactions().size();
  for (const auto& tx : net.chain().transactions()) {
    if (tx.description == "prove") {
      ++snap.prove_txs;
      snap.prove_bytes += tx.payload_bytes;
      snap.prove_gas += tx.gas_used;
    } else if (tx.description == "settle-window") {
      ++snap.window_txs;
      snap.window_bytes += tx.payload_bytes;
      snap.window_gas += tx.gas_used;
    }
  }
  if (batched) {
    const contract::BatchSettlement* bs = net.batch_settlement();
    EXPECT_NE(bs, nullptr);
    EXPECT_GT(bs->stats().batches, 0u);
    EXPECT_EQ(bs->stats().rounds, snap.stats.total_rounds);
  }
  return snap;
}

TEST(BatchedSettlementSim, BitIdenticalToSequentialSettlement) {
  SimSnapshot seq = run_sim(false, false);
  SimSnapshot bat = run_sim(true, false);
  // Honest providers in the cheater's block still pass: outcomes identical.
  EXPECT_EQ(seq.stats.total_rounds, bat.stats.total_rounds);
  EXPECT_EQ(seq.stats.passes, bat.stats.passes);
  EXPECT_EQ(seq.stats.fails, bat.stats.fails);
  EXPECT_EQ(seq.stats.timeouts, bat.stats.timeouts);
  // Chain state, gas totals and ledger: bit-identical.
  EXPECT_EQ(seq.stats.total_gas, bat.stats.total_gas);
  EXPECT_EQ(seq.stats.chain_bytes, bat.stats.chain_bytes);
  EXPECT_EQ(seq.balances, bat.balances);
  EXPECT_EQ(seq.blocks, bat.blocks);
  EXPECT_EQ(seq.txs, bat.txs);
  EXPECT_GT(bat.stats.fails, 0u);  // the cheater was actually caught
}

TEST(WindowedSettlementSim, Window1BitIdenticalToPerInstantAndInline) {
  // The acceptance invariant: a settlement window of 1 degenerates to the
  // per-instant deferred engine, which is itself bit-identical to inline
  // settlement — chain bytes, gas totals, ledger, block and tx counts.
  SimSnapshot inline_run = run_sim(false, false);
  SimSnapshot per_instant = run_sim(true, false);
  SimSnapshot window1 = run_sim(true, false, 2,
                                sim::ProviderBehavior::DropsData, 1);
  for (const SimSnapshot* other : {&per_instant, &window1}) {
    EXPECT_EQ(inline_run.stats.total_rounds, other->stats.total_rounds);
    EXPECT_EQ(inline_run.stats.passes, other->stats.passes);
    EXPECT_EQ(inline_run.stats.fails, other->stats.fails);
    EXPECT_EQ(inline_run.stats.timeouts, other->stats.timeouts);
    EXPECT_EQ(inline_run.stats.total_gas, other->stats.total_gas);
    EXPECT_EQ(inline_run.stats.chain_bytes, other->stats.chain_bytes);
    EXPECT_EQ(inline_run.balances, other->balances);
    EXPECT_EQ(inline_run.blocks, other->blocks);
    EXPECT_EQ(inline_run.txs, other->txs);
  }
  EXPECT_GT(window1.stats.fails, 0u);  // the cheater was still caught
}

TEST(WindowedSettlementSim, WideWindowSettlesEveryRoundAndMatchesOutcomes) {
  // A window spanning two audit periods: every round's redemption defers to
  // a boundary, yet outcomes, payouts and (undiscounted) gas match the
  // per-instant run exactly — the cheater loses every round, honest
  // providers never pay for sharing its window.
  SimSnapshot per_instant = run_sim(true, false);
  SimSnapshot windowed = run_sim(true, false, 2,
                                 sim::ProviderBehavior::DropsData, 7200);
  EXPECT_EQ(per_instant.stats.total_rounds, windowed.stats.total_rounds);
  EXPECT_EQ(per_instant.stats.passes, windowed.stats.passes);
  EXPECT_EQ(per_instant.stats.fails, windowed.stats.fails);
  EXPECT_EQ(windowed.stats.timeouts, 0u);
  EXPECT_GT(windowed.stats.fails, 0u);
  EXPECT_EQ(per_instant.stats.total_gas, windowed.stats.total_gas);
  EXPECT_EQ(per_instant.balances, windowed.balances);
}

TEST(AggregateSettlementSim, CleanWindowsPostOneTxAndCutBytesAndGasFivefold) {
  // ISSUE 10 tentpole: aggregate mode replaces every per-round prove tx in a
  // clean window with ONE settle-window tx (seed + aggregated opening +
  // bitmap). Outcomes and the ledger match the legacy windowed run exactly;
  // settlement bytes and gas per audited round drop by >= 5x.
  SimSnapshot legacy = run_sim(true, false, 2, sim::ProviderBehavior::Honest,
                               7200);
  SimSnapshot agg = run_sim(true, false, 2, sim::ProviderBehavior::Honest,
                            7200, /*aggregate=*/true);

  // Outcomes, payouts: identical.
  EXPECT_EQ(legacy.stats.total_rounds, agg.stats.total_rounds);
  EXPECT_EQ(legacy.stats.passes, agg.stats.passes);
  EXPECT_EQ(legacy.stats.fails, agg.stats.fails);
  EXPECT_EQ(legacy.balances, agg.balances);

  // Clean windows: no per-round prove txs, no per-round gas; the stats
  // mirror the chain exactly.
  EXPECT_EQ(agg.prove_txs, 0u);
  EXPECT_EQ(agg.stats.total_gas, 0u);
  EXPECT_GT(agg.window_txs, 0u);
  EXPECT_EQ(agg.stats.aggregate_txs, agg.window_txs);
  EXPECT_EQ(agg.stats.aggregate_tx_bytes, agg.window_bytes);
  EXPECT_EQ(agg.stats.aggregate_tx_gas, agg.window_gas);
  EXPECT_EQ(agg.stats.fallback_windows, 0u);

  // The acceptance bar: >= 5x on settlement bytes AND gas per round.
  ASSERT_GT(agg.window_bytes, 0u);
  ASSERT_GT(agg.window_gas, 0u);
  EXPECT_GE(static_cast<double>(legacy.prove_bytes) /
                static_cast<double>(agg.window_bytes),
            5.0);
  EXPECT_GE(static_cast<double>(legacy.prove_gas) /
                static_cast<double>(agg.window_gas),
            5.0);
  // Whole-chain footprint shrinks too.
  EXPECT_LT(agg.stats.chain_bytes, legacy.stats.chain_bytes);
}

TEST(AggregateSettlementSim, DirtyWindowFallsBackToPerRoundProofs) {
  // A cheater inside the window: the bisection evidence must land on chain,
  // so the whole window re-posts its individual prove txs (fallback), and
  // the ledger still matches the legacy windowed run — honest providers in
  // the cheater's window are paid identically.
  SimSnapshot legacy = run_sim(true, false, 2, sim::ProviderBehavior::DropsData,
                               7200);
  SimSnapshot agg = run_sim(true, false, 2, sim::ProviderBehavior::DropsData,
                            7200, /*aggregate=*/true);

  EXPECT_GT(agg.stats.fails, 0u);  // the cheater was caught
  EXPECT_GT(agg.stats.fallback_windows, 0u);
  // Every fallback round re-posted its prove tx with the legacy gas row.
  EXPECT_GT(agg.prove_txs, 0u);
  EXPECT_EQ(legacy.stats.passes, agg.stats.passes);
  EXPECT_EQ(legacy.stats.fails, agg.stats.fails);
  EXPECT_EQ(legacy.balances, agg.balances);
  // The window tx (with its failure bitmap) is still posted on top.
  EXPECT_EQ(agg.stats.aggregate_txs, agg.window_txs);
  EXPECT_GT(agg.window_txs, 0u);
}

TEST(AggregateSettlementSim, RequiresBatchedSettlement) {
  sim::NetworkConfig c;
  c.num_owners = 1;
  c.num_providers = 3;
  c.erasure_data = 2;
  c.erasure_parity = 1;
  c.batched_settlement = false;
  c.aggregate_settlement = true;
  EXPECT_THROW(sim::NetworkSim net(c), std::invalid_argument);
}

TEST(BatchedSettlementSim, CulpritIsolationAtPopulationScale) {
  SimSnapshot bat = run_sim(true, false, 3);
  // provider-1 holds some shards; every one of its rounds fails, every
  // other round passes — no honest round pays for the cheater.
  EXPECT_GT(bat.stats.fails, 0u);
  EXPECT_EQ(bat.stats.timeouts, 0u);
  EXPECT_EQ(bat.stats.passes + bat.stats.fails, bat.stats.total_rounds);
}

TEST(BatchedSettlementSim, GasDiscountRowIsExactAndCheaper) {
  econ::AuditCostModel model;
  // The discount row nests inside the §VII-B anchor: a batch of one is the
  // unbatched constant...
  ASSERT_DOUBLE_EQ(model.verify_prep_ms + model.verify_pair_ms, model.verify_ms);
  EXPECT_EQ(model.gas_per_audit_batched(1), model.gas_per_audit());
  EXPECT_EQ(model.gas_per_audit_batched(1), 589'000u);
  // ...and larger blocks are strictly cheaper, monotonically.
  EXPECT_LT(model.gas_per_audit_batched(8), model.gas_per_audit_batched(2));
  EXPECT_LT(model.gas_per_audit_batched(64), model.gas_per_audit_batched(8));
  EXPECT_THROW(model.batched_verify_ms(0), std::invalid_argument);
  // Window-aware rows nest in the batched rows: window 1 reproduces the
  // per-instant figures (down to the 589,000-gas anchor at one round per
  // instant), and fattening the window is strictly cheaper.
  EXPECT_EQ(model.gas_per_audit_windowed(6, 1), model.gas_per_audit_batched(6));
  EXPECT_EQ(model.gas_per_audit_windowed(1, 1), 589'000u);
  EXPECT_EQ(model.gas_per_audit_windowed(2, 8), model.gas_per_audit_batched(16));
  EXPECT_LT(model.gas_per_audit_windowed(6, 4), model.gas_per_audit_batched(6));
  EXPECT_THROW(model.windowed_verify_ms(6, 0), std::invalid_argument);

  // In the sim: 2 owners x 3 shards = 6 deployments, all audited at the
  // same instants, so every round settles in a batch of 6 and pays the
  // exact calibrated batch-of-6 constant.
  SimSnapshot bat = run_sim(true, true, 2, sim::ProviderBehavior::Honest);
  const std::uint64_t expected = model.gas_per_audit_batched(6);
  EXPECT_EQ(bat.stats.total_gas, bat.stats.total_rounds * expected);
  EXPECT_LT(bat.stats.total_gas, bat.stats.total_rounds * 589'000u);
}

}  // namespace
}  // namespace dsaudit
