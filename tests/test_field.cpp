// Field-arithmetic tests: Montgomery Fp/Fr, the Fp2/Fp6/Fp12 tower,
// Frobenius maps and Tonelli–Shanks square roots.
#include <gtest/gtest.h>

#include "field/batch_inverse.hpp"
#include "field/fp12.hpp"
#include "field/sqrt.hpp"

namespace dsaudit::ff {
namespace {

using primitives::SecureRng;

// ---------------------------------------------------------------------------
// Generic field axioms, parameterized over the tower levels via typed tests.
// ---------------------------------------------------------------------------

template <typename F>
class FieldAxioms : public ::testing::Test {};

using FieldTypes = ::testing::Types<Fp, Fr, Fp2, Fp6, Fp12>;
TYPED_TEST_SUITE(FieldAxioms, FieldTypes);

TYPED_TEST(FieldAxioms, AdditiveGroup) {
  auto rng = SecureRng::deterministic(21);
  for (int i = 0; i < 25; ++i) {
    TypeParam a = TypeParam::random(rng);
    TypeParam b = TypeParam::random(rng);
    TypeParam c = TypeParam::random(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + TypeParam::zero(), a);
    EXPECT_EQ(a + (-a), TypeParam::zero());
    EXPECT_EQ(a - b, a + (-b));
  }
}

TYPED_TEST(FieldAxioms, MultiplicativeGroup) {
  auto rng = SecureRng::deterministic(22);
  for (int i = 0; i < 25; ++i) {
    TypeParam a = TypeParam::random(rng);
    TypeParam b = TypeParam::random(rng);
    TypeParam c = TypeParam::random(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * TypeParam::one(), a);
    EXPECT_EQ(a * TypeParam::zero(), TypeParam::zero());
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.inverse(), TypeParam::one());
    }
  }
}

TYPED_TEST(FieldAxioms, Distributivity) {
  auto rng = SecureRng::deterministic(23);
  for (int i = 0; i < 25; ++i) {
    TypeParam a = TypeParam::random(rng);
    TypeParam b = TypeParam::random(rng);
    TypeParam c = TypeParam::random(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TYPED_TEST(FieldAxioms, SquareMatchesMul) {
  auto rng = SecureRng::deterministic(24);
  for (int i = 0; i < 25; ++i) {
    TypeParam a = TypeParam::random(rng);
    EXPECT_EQ(a.square(), a * a);
  }
}

// ---------------------------------------------------------------------------
// Base-field specifics.
// ---------------------------------------------------------------------------

TEST(Fp, CanonicalRoundTrip) {
  auto rng = SecureRng::deterministic(25);
  for (int i = 0; i < 50; ++i) {
    Fp a = Fp::random(rng);
    EXPECT_EQ(Fp::from_u256(a.to_u256()), a);
  }
  EXPECT_EQ(Fp::from_u64(5).to_dec(), "5");
  EXPECT_TRUE(Fp::zero().to_u256().is_zero());
  EXPECT_EQ(Fp::one().to_dec(), "1");
}

TEST(Fp, ReductionOfLargeValues) {
  // from_u256 of p itself must be zero; of p+1 must be one.
  U256 p = Fp::modulus();
  EXPECT_TRUE(Fp::from_u256(p).is_zero());
  U256 p1;
  bigint::add_with_carry(p, U256{1}, p1);
  EXPECT_TRUE(Fp::from_u256(p1).is_one());
}

TEST(Fp, MulAgainstSlowPath) {
  auto rng = SecureRng::deterministic(26);
  for (int i = 0; i < 100; ++i) {
    Fp a = Fp::random(rng), b = Fp::random(rng);
    U256 expect = bigint::mul_mod_slow(a.to_u256(), b.to_u256(), Fp::modulus());
    EXPECT_EQ((a * b).to_u256(), expect);
  }
}

TEST(Fp, FermatLittleTheorem) {
  auto rng = SecureRng::deterministic(27);
  Fp a = Fp::random(rng);
  U256 pm1;
  bigint::sub_with_borrow(Fp::modulus(), U256{1}, pm1);
  EXPECT_TRUE(a.pow_u256(pm1).is_one());
}

TEST(Fp, SqrtOfSquares) {
  auto rng = SecureRng::deterministic(28);
  for (int i = 0; i < 25; ++i) {
    Fp a = Fp::random(rng);
    Fp sq = a.square();
    auto root = sq.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == -a);
  }
  // -1 is a non-residue for p = 3 mod 4.
  EXPECT_FALSE((-Fp::one()).sqrt().has_value());
  EXPECT_EQ((-Fp::one()).legendre(), -1);
  EXPECT_EQ(Fp::one().legendre(), 1);
  EXPECT_EQ(Fp::zero().legendre(), 0);
}

TEST(Fr, ModulusMatchesPaperGroupOrder) {
  EXPECT_EQ(Fr::modulus().to_dec(),
            "21888242871839275222246405745257275088548364400416034343698204186575808495617");
}

TEST(Fr, FromBeBytesModReducesConsistently) {
  // 2^256 - 1 mod r, cross-checked with VarUInt.
  std::array<std::uint8_t, 32> all_ff;
  all_ff.fill(0xff);
  Fr got = Fr::from_be_bytes_mod(all_ff);
  VarUInt v = VarUInt{1}.shl(256) - VarUInt{1};
  VarUInt expect = VarUInt::divmod(v, VarUInt{Fr::modulus()}).second;
  EXPECT_EQ(VarUInt{got.to_u256()}, expect);
}

// ---------------------------------------------------------------------------
// Tower specifics.
// ---------------------------------------------------------------------------

TEST(Fp2Tower, USquaredIsMinusOne) {
  Fp2 u{Fp::zero(), Fp::one()};
  EXPECT_EQ(u.square(), -Fp2::one());
}

TEST(Fp2Tower, MulByXiMatchesMul) {
  auto rng = SecureRng::deterministic(29);
  for (int i = 0; i < 20; ++i) {
    Fp2 a = Fp2::random(rng);
    EXPECT_EQ(a.mul_by_xi(), a * xi());
  }
}

TEST(Fp2Tower, FrobeniusIsPthPower) {
  auto rng = SecureRng::deterministic(30);
  Fp2 a = Fp2::random(rng);
  Fp2 frob = a.frobenius();
  Fp2 pth = pow_var(a, VarUInt{Fp::modulus()});
  EXPECT_EQ(frob, pth);
}

TEST(Fp6Tower, VCubedIsXi) {
  Fp6 v{Fp2::zero(), Fp2::one(), Fp2::zero()};
  Fp6 v3 = v * v * v;
  EXPECT_EQ(v3, Fp6(xi(), Fp2::zero(), Fp2::zero()));
}

TEST(Fp6Tower, MulByVMatchesMul) {
  auto rng = SecureRng::deterministic(31);
  Fp6 v{Fp2::zero(), Fp2::one(), Fp2::zero()};
  for (int i = 0; i < 20; ++i) {
    Fp6 a = Fp6::random(rng);
    EXPECT_EQ(a.mul_by_v(), a * v);
  }
}

TEST(Fp12Tower, WSquaredIsV) {
  Fp12 w{Fp6::zero(), Fp6::one()};
  Fp6 v{Fp2::zero(), Fp2::one(), Fp2::zero()};
  EXPECT_EQ(w.square(), Fp12(v, Fp6::zero()));
}

TEST(Fp12Tower, FrobeniusIsPthPower) {
  auto rng = SecureRng::deterministic(32);
  Fp12 a = Fp12::random(rng);
  EXPECT_EQ(a.frobenius(), pow_var(a, VarUInt{Fp::modulus()}));
}

TEST(Fp12Tower, FrobeniusOrderTwelve) {
  auto rng = SecureRng::deterministic(33);
  Fp12 a = Fp12::random(rng);
  EXPECT_EQ(a.frobenius_pow(12), a);
  EXPECT_NE(a.frobenius_pow(6), a);  // overwhelming probability for random a
  EXPECT_EQ(a.frobenius_pow(6), Fp12(a.c0, -a.c1));  // p^6 Frobenius == conjugate
}

TEST(Fp12Tower, PowHomomorphism) {
  auto rng = SecureRng::deterministic(34);
  Fp12 a = Fp12::random(rng);
  EXPECT_EQ(a.pow_u64(3) * a.pow_u64(5), a.pow_u64(8));
  EXPECT_EQ(a.pow_u64(0), Fp12::one());
  U256 e1{123456789}, e2{987654321};
  U256 sum;
  bigint::add_with_carry(e1, e2, sum);
  EXPECT_EQ(a.pow_u256(e1) * a.pow_u256(e2), a.pow_u256(sum));
}

// ---------------------------------------------------------------------------
// Square roots in extensions.
// ---------------------------------------------------------------------------

TEST(Sqrt, Fp2RoundTrip) {
  auto rng = SecureRng::deterministic(35);
  int residues = 0;
  for (int i = 0; i < 10; ++i) {
    Fp2 a = Fp2::random(rng);
    Fp2 sq = a.square();
    auto root = sqrt(sq);
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == -a);
    if (sqrt(a).has_value()) ++residues;
  }
  // Roughly half of random elements are squares; just ensure both kinds occur.
  EXPECT_GT(residues, 0);
  EXPECT_LT(residues, 10);
}

TEST(Sqrt, Fp6RoundTrip) {
  auto rng = SecureRng::deterministic(36);
  for (int i = 0; i < 4; ++i) {
    Fp6 a = Fp6::random(rng);
    Fp6 sq = a.square();
    auto root = sqrt(sq);
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == -a);
  }
  EXPECT_EQ(sqrt(Fp6::zero()).value(), Fp6::zero());
}

// ---------------------------------------------------------------------------
// batch_inverse (Montgomery's trick) vs. per-element inverse().
// ---------------------------------------------------------------------------

TYPED_TEST(FieldAxioms, BatchInverseMatchesElementwise) {
  auto rng = SecureRng::deterministic(27);
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 257u}) {
    std::vector<TypeParam> xs(n);
    std::vector<TypeParam> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = TypeParam::random(rng);
      expect[i] = xs[i].inverse();
    }
    batch_inverse(xs);
    EXPECT_EQ(xs, expect) << "n=" << n;
  }
}

TYPED_TEST(FieldAxioms, BatchInverseSkipsZeros) {
  auto rng = SecureRng::deterministic(28);
  // Zeros interleaved at every position pattern, including all-zero.
  for (int pattern = 0; pattern < 8; ++pattern) {
    std::vector<TypeParam> xs(3);
    std::vector<TypeParam> expect(3);
    for (int i = 0; i < 3; ++i) {
      xs[i] = (pattern >> i) & 1 ? TypeParam::random(rng) : TypeParam::zero();
      expect[i] = xs[i].inverse();  // inverse() returns zero for zero
    }
    batch_inverse(xs);
    EXPECT_EQ(xs, expect) << "pattern=" << pattern;
  }
}

TEST(BatchInverse, LargeSetSingleInversionIsConsistent) {
  auto rng = SecureRng::deterministic(29);
  std::vector<Fp> xs(1000);
  for (auto& x : xs) x = Fp::random(rng);
  std::vector<Fp> orig = xs;
  batch_inverse(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(orig[i] * xs[i], Fp::one());
  }
}

TEST(TowerConsts, GammaConsistency) {
  const auto& tc = tower_consts();
  // gamma[k] = gamma[1]^k and gamma[1]^6 = xi^{p-1}.
  EXPECT_EQ(tc.gamma[2], tc.gamma[1] * tc.gamma[1]);
  EXPECT_EQ(tc.gamma[3], tc.gamma[2] * tc.gamma[1]);
  Fp2 g6 = tc.gamma[3] * tc.gamma[3];
  VarUInt pm1 = VarUInt{Fp::modulus()} - VarUInt{1};
  EXPECT_EQ(g6, pow_var(xi(), pm1));
}

}  // namespace
}  // namespace dsaudit::ff
