// The paper's motivating scenario (§I-A): backing up a photo collection
// off-site on a decentralized storage network.
//
// Pipeline (§III-A storage infrastructure + §V auditing):
//   1. encrypt client-side (mandatory),
//   2. erasure-code 3-of-10 (the §VII-B redundancy example),
//   3. place shards on providers discovered via the Chord DHT,
//   4. one audit contract per shard-holding provider,
//   5. run months of scheduled audits on the simulated chain,
//   6. lose three providers entirely — and still recover the photos.
//
// Build & run:  ./build/examples/archive_backup
#include <cstdio>

#include "audit/serialize.hpp"
#include "contract/audit_contract.hpp"
#include "econ/cost_model.hpp"
#include "storage/dht.hpp"
#include "storage/erasure.hpp"

using namespace dsaudit;

int main() {
  auto rng = primitives::SecureRng::from_os();

  // --- 1. The photo collection, encrypted before anything leaves home. ----
  std::vector<std::uint8_t> photos(256 * 1024);
  rng.fill(photos);
  auto original = photos;

  std::array<std::uint8_t, 32> master_key = rng.bytes32();
  storage::encrypt_in_place(photos, master_key, /*file_id=*/2026);
  std::printf("owner: encrypted %zu KiB of photos\n", photos.size() / 1024);

  // --- 2. Erasure-code into 10 shards, any 3 reconstruct. -----------------
  storage::ReedSolomon rs(3, 7);
  auto shards = rs.encode(photos);
  std::printf("owner: 3-of-10 Reed-Solomon -> %zu shards x %zu KiB\n",
              shards.size(), shards[0].size() / 1024);

  // --- 3. Provider discovery on the DHT ring. -----------------------------
  storage::ChordRing ring;
  for (int i = 0; i < 40; ++i) ring.join("provider-" + std::to_string(i));
  auto holders = ring.successors(storage::ring_hash("photos-2026"), shards.size());
  std::size_t total_hops = 0;
  for (auto id : holders) total_hops += ring.lookup(id).hops;
  std::printf("owner: placed shards on %zu of %zu providers (avg %.1f routing hops)\n",
              holders.size(), ring.size(),
              static_cast<double>(total_hops) / holders.size());

  // --- 4. One audit contract per shard holder. ----------------------------
  const std::size_t s = 20;
  chain::Blockchain chainsim;
  std::array<std::uint8_t, 32> bseed = rng.bytes32();
  chain::TrustedBeacon beacon(bseed);

  audit::KeyPair kp = audit::keygen(s, rng);
  chainsim.mint("owner", 10'000'000);

  struct ShardDeployment {
    storage::EncodedFile file;
    audit::FileTag tag;
    audit::Fr name;
    std::unique_ptr<audit::Prover> prover;
    // Each shard's contract answers challenges from its own RNG stream:
    // with DSAUDIT_THREADS > 1 the chain prepares concurrent rounds across
    // contracts, and a shared stream would race.
    std::unique_ptr<primitives::SecureRng> prover_rng;
    std::unique_ptr<contract::AuditContract> contract;
  };
  std::vector<ShardDeployment> deployments(shards.size());

  contract::ContractTerms base_terms;
  base_terms.owner = "owner";
  base_terms.num_audits = 30;          // one month, daily
  base_terms.audit_period_s = 86400;
  base_terms.response_window_s = 3600;
  base_terms.reward_per_audit = 10;
  base_terms.penalty_per_fail = 25;
  base_terms.challenged_chunks = 50;
  base_terms.private_proofs = true;

  for (std::size_t i = 0; i < shards.size(); ++i) {
    auto& dep = deployments[i];
    dep.file = storage::encode_file(shards[i], s);
    dep.name = audit::Fr::random(rng);
    dep.tag = audit::generate_tags(kp.sk, kp.pk, dep.file, dep.name, 4);
    dep.prover = std::make_unique<audit::Prover>(kp.pk, dep.file, dep.tag);

    contract::ContractTerms terms = base_terms;
    terms.provider = *ring.node_name(holders[i]);
    chainsim.mint(terms.provider, 100'000);
    dep.contract = std::make_unique<contract::AuditContract>(
        chainsim, beacon, terms, kp.pk, dep.name, dep.file.num_chunks());
    audit::Prover* prover = dep.prover.get();
    dep.prover_rng = std::make_unique<primitives::SecureRng>(rng.bytes32());
    primitives::SecureRng* dep_rng = dep.prover_rng.get();
    dep.contract->set_responder(
        [prover, dep_rng](const audit::Challenge& chal)
            -> std::optional<std::vector<std::uint8_t>> {
          return audit::serialize(prover->prove_private(chal, *dep_rng));
        });
    dep.contract->negotiated();
    dep.contract->acked(true);
    dep.contract->freeze();
  }
  std::printf("owner: %zu audit contracts funded and scheduled\n",
              deployments.size());

  // --- 5. A month of daily audits on the chain. ---------------------------
  chainsim.advance(31ull * 86400);
  std::uint64_t passes = 0, gas = 0;
  for (auto& dep : deployments) {
    passes += dep.contract->passes();
    for (const auto& r : dep.contract->rounds()) gas += r.gas_used;
  }
  chain::PriceModel price;
  std::printf("month 1: %llu/%u audits passed, %.2f USD total on-chain cost\n",
              static_cast<unsigned long long>(passes),
              static_cast<unsigned>(deployments.size() * base_terms.num_audits),
              price.usd(gas));

  econ::AuditCostModel model;
  std::printf("model:   %.2f USD/audit x 10 providers x 365 days = %.0f USD/yr "
              "(daily auditing, full redundancy)\n",
              model.usd_per_audit(),
              econ::contract_fee_usd(model, 365, 1.0, 10));

  // --- 6. Catastrophe: three providers vanish. Recover from any 3 shards. -
  std::vector<std::optional<std::vector<std::uint8_t>>> surviving(shards.size());
  surviving[1] = shards[1];
  surviving[4] = shards[4];
  surviving[9] = shards[9];
  auto recovered = rs.reconstruct(surviving, photos.size());
  if (!recovered) {
    std::printf("recovery FAILED\n");
    return 1;
  }
  storage::decrypt_in_place(*recovered, master_key, 2026);
  bool intact = *recovered == original;
  std::printf("recovery from 3 surviving shards: %s\n",
              intact ? "photos intact" : "CORRUPTED");
  return intact ? 0 : 1;
}
