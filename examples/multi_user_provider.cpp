// One storage provider, many data owners (§VII-D / Fig. 10 right).
//
// A provider holding data for many owners must answer every owner's audit
// each round; authenticators are per-owner-key, so proofs cannot be merged
// across owners. This example measures the provider's aggregate proving time
// as its tenant count grows, and shows the contract side settling a round of
// audits for all of them with batch verification.
//
// Build & run:  ./build/examples/multi_user_provider
#include <chrono>
#include <cstdio>

#include "audit/protocol.hpp"

using namespace dsaudit;
using Clock = std::chrono::steady_clock;

int main() {
  auto rng = primitives::SecureRng::from_os();
  const std::size_t s = 20;
  const std::size_t file_bytes = 8 * 1024;
  const std::size_t k = 10;

  struct Tenant {
    audit::KeyPair kp;
    storage::EncodedFile file;
    audit::FileTag tag;
    audit::Fr name;
  };

  std::printf("provider load vs tenant count (s=%zu, %zu KiB/file, k=%zu):\n",
              s, file_bytes / 1024, k);
  std::printf("%8s %14s %14s\n", "tenants", "prove-all (ms)", "ms/tenant");

  std::vector<Tenant> tenants;
  for (std::size_t target : {5u, 10u, 20u, 40u}) {
    while (tenants.size() < target) {
      Tenant t;
      t.kp = audit::keygen(s, rng);
      std::vector<std::uint8_t> data(file_bytes);
      rng.fill(data);
      t.file = storage::encode_file(data, s);
      t.name = audit::Fr::random(rng);
      t.tag = audit::generate_tags(t.kp.sk, t.kp.pk, t.file, t.name, 4);
      tenants.push_back(std::move(t));
    }
    // One audit round: every tenant's contract challenges this provider.
    audit::Challenge chal;
    chal.c1 = rng.bytes32();
    chal.c2 = rng.bytes32();
    chal.r = audit::Fr::random(rng);
    chal.k = k;

    auto t0 = Clock::now();
    std::vector<audit::BasicInstance> round;
    for (const auto& t : tenants) {
      audit::Prover prover(t.kp.pk, t.file, t.tag);
      audit::BasicInstance inst;
      inst.name = t.name;
      inst.num_chunks = t.file.num_chunks();
      inst.challenge = chal;
      inst.proof = prover.prove(chal);
      round.push_back(inst);
    }
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::printf("%8zu %14.1f %14.2f\n", tenants.size(), ms, ms / tenants.size());

    // The owners' contracts verify; per-owner keys, so verification runs per
    // tenant (batching applies within one owner's instances).
    for (const auto& inst : round) {
      const auto& t = tenants[&inst - round.data()];
      std::vector<audit::BasicInstance> own{inst};
      if (!audit::verify_batch(t.kp.pk, own, rng)) {
        std::printf("verification failed for a tenant (BUG)\n");
        return 1;
      }
    }
  }

  std::printf("\nscaling is linear in tenants, matching Fig. 10 (right); at the\n"
              "paper's scale (300 owners/provider) extrapolate ms/tenant x 300.\n");
  return 0;
}
