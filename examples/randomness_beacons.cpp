// §V-E: reliable challenging randomness, live.
//
// The challenge randomness decides WHICH chunks get audited. A biased beacon
// lets a colluding provider steer audits away from chunks it has dropped.
// This example quantifies that with the three beacon designs the paper
// discusses:
//
//   1. commit-reveal (Randao-style): the LAST revealer withholds whenever
//      the output would sample its dropped chunk — audit pass rate climbs
//      well above the honest detection rate;
//   2. the VDF-hardened beacon (paper ref [37]): the same adversary gains
//      nothing, because the output is fixed before the last reveal can react;
//   3. a trusted beacon (NIST-style) as the baseline.
//
// Build & run:  ./build/examples/randomness_beacons
#include <cstdio>

#include "chain/beacon.hpp"
#include "primitives/prp.hpp"

using namespace dsaudit;

namespace {

// The provider dropped chunk `victim` of d chunks; each round the contract
// samples k chunks from the beacon output. Returns the fraction of rounds
// the drop goes UNDETECTED.
double undetected_rate(chain::RandomnessBeacon& beacon, std::size_t d,
                       std::size_t k, std::size_t victim, int rounds) {
  int undetected = 0;
  for (int round = 0; round < rounds; ++round) {
    auto out = beacon.randomness(static_cast<std::uint64_t>(round));
    std::array<std::uint8_t, 32> c1{};
    std::copy(out.begin(), out.begin() + 32, c1.begin());
    auto idx = primitives::challenge_indices(c1, d, k);
    bool hit = false;
    for (auto i : idx) hit |= (i == victim);
    if (!hit) ++undetected;
  }
  return static_cast<double>(undetected) / rounds;
}

// Bias strategy for the commit-reveal adversary: reveal iff the with-reveal
// output does NOT sample the victim chunk (otherwise withhold and take the
// without-reveal output — a free one-bit choice every round).
chain::CommitRevealBeacon::BiasStrategy dodge_chunk(std::size_t d, std::size_t k,
                                                    std::size_t victim) {
  return [d, k, victim](const chain::BeaconOutput& with,
                        const chain::BeaconOutput& without) {
    auto samples_victim = [&](const chain::BeaconOutput& out) {
      std::array<std::uint8_t, 32> c1{};
      std::copy(out.begin(), out.begin() + 32, c1.begin());
      for (auto i : primitives::challenge_indices(c1, d, k)) {
        if (i == victim) return true;
      }
      return false;
    };
    bool with_bad = samples_victim(with);
    bool without_bad = samples_victim(without);
    if (with_bad == without_bad) return true;  // indifferent: reveal
    return !with_bad;                          // pick whichever dodges
  };
}

}  // namespace

int main() {
  const std::size_t d = 20, k = 4, victim = 7;
  const int rounds = 2000;
  // Honest sampling misses the victim with probability ~(1 - k/d) = 80%.
  double expected_honest = 1.0;
  for (std::size_t j = 0; j < k; ++j) {
    expected_honest *= static_cast<double>(d - victim > 0 ? d - 1 - j : d - j) /
                       (d - j);
  }
  std::printf("setup: d=%zu chunks, k=%zu challenged, provider dropped chunk %zu\n",
              d, k, victim);
  std::printf("honest expectation: drop evades one audit with p = %.1f%%\n\n",
              100.0 * (1.0 - static_cast<double>(k) / d));

  std::array<std::uint8_t, 32> seed{};
  seed[0] = 0x5e;

  chain::TrustedBeacon trusted(seed);
  double p_trusted = undetected_rate(trusted, d, k, victim, rounds);
  std::printf("trusted beacon:        evades %5.1f%% of audits\n", 100 * p_trusted);

  chain::CommitRevealBeacon biased(seed, 5, dodge_chunk(d, k, victim));
  double p_biased = undetected_rate(biased, d, k, victim, rounds);
  std::printf("commit-reveal, biased: evades %5.1f%% of audits "
              "(withheld %zu/%d reveals)\n",
              100 * p_biased, biased.withhold_count(), rounds);

  chain::VdfBeacon vdf(seed, 500);
  double p_vdf = undetected_rate(vdf, d, k, victim, rounds);
  std::printf("VDF-hardened beacon:   evades %5.1f%% of audits "
              "(withholding is pointless)\n\n",
              100 * p_vdf);

  bool ok = p_biased > p_trusted + 0.05 && p_vdf < p_biased;
  std::printf("conclusion: the last-revealer bias materially weakens storage\n"
              "guarantees; the VDF restores them — exactly the §V-E argument.%s\n",
              ok ? "" : " (UNEXPECTED NUMBERS)");
  return ok ? 0 : 1;
}
