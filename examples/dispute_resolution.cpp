// Dispute resolution (§III-C, Fig. 2): a provider silently drops part of the
// archive mid-contract. The contract detects it through failed audits,
// compensates the owner from the provider's collateral, and the final ledger
// shows exactly who paid whom — no court, no trusted third party.
//
// Build & run:  ./build/examples/dispute_resolution
#include <cstdio>

#include "audit/serialize.hpp"
#include "contract/audit_contract.hpp"

using namespace dsaudit;

int main() {
  auto rng = primitives::SecureRng::from_os();
  chain::Blockchain chainsim;
  auto bseed = rng.bytes32();
  chain::TrustedBeacon beacon(bseed);

  // Setup: 20 KiB archive, s = 10.
  const std::size_t s = 10;
  audit::KeyPair kp = audit::keygen(s, rng);
  std::vector<std::uint8_t> data(20 * 1024);
  rng.fill(data);
  storage::EncodedFile file = storage::encode_file(data, s);
  audit::Fr name = audit::Fr::random(rng);
  audit::FileTag tag = audit::generate_tags(kp.sk, kp.pk, file, name, 4);

  contract::ContractTerms terms;
  terms.owner = "alice";
  terms.provider = "mallory";
  terms.num_audits = 10;
  terms.audit_period_s = 86400;
  terms.response_window_s = 3600;
  terms.reward_per_audit = 100;
  terms.penalty_per_fail = 300;
  terms.challenged_chunks = file.num_chunks();  // small file: challenge all
  terms.private_proofs = true;

  chainsim.mint("alice", 10'000);
  chainsim.mint("mallory", 10'000);
  std::printf("ledger before: alice=%llu mallory=%llu\n",
              (unsigned long long)chainsim.balance("alice"),
              (unsigned long long)chainsim.balance("mallory"));

  contract::AuditContract contract(chainsim, beacon, terms, kp.pk, name,
                                   file.num_chunks());

  // Mallory behaves for 4 rounds, then "reclaims space" by zeroing a chunk
  // (the §III-C adversarial behaviour: "simply drop the data to reclaim
  // more storage for more monetary benefits").
  storage::EncodedFile held = file;
  int round = 0;
  audit::Prover honest_prover(kp.pk, held, tag);
  contract.set_responder(
      [&](const audit::Challenge& chal) -> std::optional<std::vector<std::uint8_t>> {
        ++round;
        if (round == 5) {
          for (auto& b : held.chunks[3]) b = audit::Fr::zero();
          std::printf("round %d: mallory silently drops chunk 3\n", round);
        }
        audit::Prover p(kp.pk, held, tag);
        return audit::serialize(p.prove_private(chal, rng));
      });

  contract.negotiated();
  contract.acked(true);
  contract.freeze();
  std::printf("escrow locked: %llu (rewards %llu + collateral %llu)\n",
              (unsigned long long)contract.escrow_balance(),
              (unsigned long long)(terms.reward_per_audit * terms.num_audits),
              (unsigned long long)(terms.penalty_per_fail * terms.num_audits));

  chainsim.advance((terms.num_audits + 1) * terms.audit_period_s);

  std::printf("\naudit history:\n");
  for (const auto& r : contract.rounds()) {
    const char* outcome = r.outcome == contract::RoundOutcome::Pass ? "PASS"
                          : r.outcome == contract::RoundOutcome::Fail
                              ? "FAIL (slash)"
                              : "TIMEOUT (slash)";
    std::printf("  round %2llu: %-14s proof=%zuB gas=%llu\n",
                (unsigned long long)r.round, outcome, r.proof_bytes,
                (unsigned long long)r.gas_used);
  }
  std::printf("\nsummary: %llu passed, %llu failed, %llu timeouts\n",
              (unsigned long long)contract.passes(),
              (unsigned long long)contract.fails(),
              (unsigned long long)contract.timeouts());
  std::printf("ledger after:  alice=%llu mallory=%llu (escrow=%llu)\n",
              (unsigned long long)chainsim.balance("alice"),
              (unsigned long long)chainsim.balance("mallory"),
              (unsigned long long)contract.escrow_balance());

  // Economic outcome: mallory earned 4 honest rewards but lost 6 penalties.
  bool mallory_lost = chainsim.balance("mallory") < 10'000;
  std::printf("dispute resolved on-chain: mallory %s\n",
              mallory_lost ? "paid for the data loss" : "escaped (BUG)");
  return mallory_lost ? 0 : 1;
}
