// The §V-C on-chain privacy attack, live.
//
// An off-chain observer scrapes audit trails from the public blockchain and
// runs the interpolation / linear-algebra attack:
//   * against the NON-private protocol (Eq. 1): the original file bytes are
//     recovered EXACTLY — including a human-readable message;
//   * against the privacy-assured protocol (Eq. 2): the same pipeline
//     recovers nothing.
//
// Build & run:  ./build/examples/privacy_attack_demo
#include <cstdio>
#include <cstring>
#include <string>

#include "attack/trail_attack.hpp"

using namespace dsaudit;

int main() {
  auto rng = primitives::SecureRng::from_os();

  // The victim's "sensitive archive": a message the adversary should never
  // learn from the blockchain. (Real deployments also encrypt; the paper's
  // point is that even encrypted blocks must not leak, since deduplication
  // commonly uses deterministic encryption — recovering ciphertext blocks
  // enables offline brute-force and equality attacks.)
  std::string secret =
      "TOP-SECRET: merger signing at 09:00 June 13, wire 4.2M to escrow acct "
      "7741-9921; passphrase 'velvet-otter-prime'.";
  std::vector<std::uint8_t> data(secret.begin(), secret.end());

  const std::size_t s = 4;
  audit::KeyPair kp = audit::keygen(s, rng);
  storage::EncodedFile file = storage::encode_file(data, s);
  audit::Fr name = audit::Fr::random(rng);
  audit::FileTag tag = audit::generate_tags(kp.sk, kp.pk, file, name);
  audit::Prover prover(kp.pk, file, tag);
  const std::size_t d = file.num_chunks();
  std::printf("victim file: %zu bytes -> %zu chunks x %zu blocks\n\n",
              data.size(), d, s);

  // ------------------------------------------------------------------
  // Scenario A: non-private proofs (y = P_k(r) on chain).
  // ------------------------------------------------------------------
  std::printf("[A] protocol WITHOUT on-chain privacy (96-byte proofs)\n");
  attack::TrailAnalyzer observer(d, s);
  std::uint64_t rounds = 0;
  std::optional<std::map<attack::BlockId, attack::Fr>> loot;
  while (!loot && rounds < 10 * d * s) {
    audit::Challenge chal = attack::eclipse_challenge(rounds++, d);
    audit::ProofBasic proof = prover.prove(chal);  // lands on the blockchain
    observer.add_trail({chal, proof.y});
    if (observer.equations() >= observer.unknowns()) loot = observer.recover();
  }
  if (!loot) {
    std::printf("    attack failed unexpectedly\n");
    return 1;
  }
  std::printf("    observed %llu audit trails -> solved %zu unknowns\n",
              (unsigned long long)rounds, observer.unknowns());
  std::printf("    block recovery rate: %.0f%%\n",
              100.0 * attack::recovery_rate(*loot, file));

  // Reassemble the plaintext from the recovered field elements.
  storage::EncodedFile stolen = file;  // geometry only; overwrite contents
  for (auto& chunk : stolen.chunks) {
    for (auto& b : chunk) b = audit::Fr::zero();
  }
  for (const auto& [id, value] : *loot) {
    stolen.chunks[id.chunk][id.position] = value;
  }
  auto stolen_bytes = storage::decode_file(stolen);
  std::string leaked(stolen_bytes.begin(), stolen_bytes.end());
  std::printf("    adversary reads: \"%.60s...\"\n\n", leaked.c_str());

  // ------------------------------------------------------------------
  // Scenario B: the paper's privacy-assured protocol (288-byte proofs).
  // ------------------------------------------------------------------
  std::printf("[B] protocol WITH on-chain privacy (288-byte sigma proofs)\n");
  attack::TrailAnalyzer observer2(d, s);
  for (std::uint64_t round = 0; round < 10 * d * s; ++round) {
    audit::Challenge chal = attack::eclipse_challenge(round, d);
    audit::ProofPrivate proof = prover.prove_private(chal, rng);
    observer2.add_trail({chal, proof.y_prime});
  }
  auto nothing = observer2.recover();
  std::printf("    observed %llu audit trails (4x the amount that broke [A])\n",
              (unsigned long long)(10 * d * s));
  std::printf("    recovery: %s\n",
              nothing ? "!!! LEAKED (BUG) !!!" : "nothing — system inconsistent");

  bool ok = leaked == secret && !nothing;
  std::printf("\nverdict: non-private trails leak the file verbatim; the sigma "
              "layer stops the identical adversary. %s\n",
              ok ? "" : "(UNEXPECTED RESULT)");
  return ok ? 0 : 1;
}
