// Quickstart: one complete audit round, end to end, on one page.
//
//   owner: keygen -> encode file -> authenticators
//   contract: challenge from beacon randomness
//   provider: privacy-assured proof (288 bytes)
//   contract: Eq. 2 verification
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "audit/protocol.hpp"
#include "audit/serialize.hpp"

using namespace dsaudit;

int main() {
  auto rng = primitives::SecureRng::from_os();

  // --- Data owner D: pick s, generate keys, encode + tag the file. --------
  const std::size_t s = 50;  // blocks per chunk (paper's sweet spot)
  audit::KeyPair kp = audit::keygen(s, rng);

  std::vector<std::uint8_t> archive(64 * 1024);  // a 64 KiB archive file
  rng.fill(archive);

  storage::EncodedFile file = storage::encode_file(archive, s);
  audit::Fr name = audit::Fr::random(rng);  // on-chain file identifier
  audit::FileTag tag = audit::generate_tags(kp.sk, kp.pk, file, name);

  std::printf("owner: encoded %zu bytes into %zu blocks = %zu chunks (s = %zu)\n",
              archive.size(), file.num_blocks, file.num_chunks(), s);
  std::printf("owner: public key is %zu bytes on chain\n",
              kp.pk.serialized_size(/*with_privacy=*/true));

  // --- Storage provider S: accept only if the authenticators check out. ---
  if (!audit::verify_tags(kp.pk, file, tag)) {
    std::printf("provider: REJECTED tags (owner tried to cheat)\n");
    return 1;
  }
  std::printf("provider: authenticators verified, contract acked\n");

  // --- Smart contract: challenge k chunks (95%% confidence at 1%% loss). --
  audit::Challenge chal;
  chal.c1 = rng.bytes32();  // in production: randomness beacon output
  chal.c2 = rng.bytes32();
  chal.r = audit::Fr::random(rng);
  chal.k = audit::chunks_for_confidence(0.95, 0.01);
  std::printf("contract: challenged k = %zu of %zu chunks\n", chal.k,
              file.num_chunks());

  // --- Provider: the 288-byte privacy-assured response. -------------------
  audit::Prover prover(kp.pk, file, tag);
  audit::ProverTimings t;
  audit::ProofPrivate proof = prover.prove_private(chal, rng, &t);
  auto wire = audit::serialize(proof);
  std::printf("provider: proof = %zu bytes (Zp %.2f ms | ECC %.2f ms | GT %.2f ms)\n",
              wire.size(), t.zp_ms, t.ecc_ms, t.gt_ms);

  // --- Contract: constant-cost verification (Eq. 2). ----------------------
  auto received = audit::deserialize_private(wire);
  bool ok = received && audit::verify_private(kp.pk, name, file.num_chunks(),
                                              chal, *received);
  std::printf("contract: verification %s -> micro-payment to %s\n",
              ok ? "PASS" : "FAIL", ok ? "provider" : "owner");
  return ok ? 0 : 1;
}
