// dsaudit — command-line driver for the auditing protocol.
//
// A downstream user's entry point: run the whole owner/provider/contract
// workflow on real files from a shell, with every artifact as a file.
//
//   dsaudit keygen   --s 50 --sk sk.bin --pk pk.bin
//   dsaudit tag      --sk sk.bin --pk pk.bin --file archive.bin --tag tag.bin
//   dsaudit accept   --pk pk.bin --file archive.bin --tag tag.bin
//   dsaudit challenge --k 300 --out chal.bin
//   dsaudit prove    --pk pk.bin --file archive.bin --tag tag.bin
//                    --challenge chal.bin --proof proof.bin [--basic]
//   dsaudit verify   --pk pk.bin --tag tag.bin --challenge chal.bin
//                    --proof proof.bin [--basic]
//
// Exit code 0 = success / proof valid; 1 = failure; 2 = usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "audit/protocol.hpp"
#include "audit/serialize.hpp"
#include "pairing/pairing.hpp"

using namespace dsaudit;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: dsaudit <keygen|tag|accept|challenge|prove|verify> [options]\n"
               "  keygen    --s N --sk FILE --pk FILE\n"
               "  tag       --sk FILE --pk FILE --file FILE --tag FILE\n"
               "  accept    --pk FILE --file FILE --tag FILE\n"
               "  challenge --k N --out FILE\n"
               "  prove     --pk FILE --file FILE --tag FILE --challenge FILE "
               "--proof FILE [--basic]\n"
               "  verify    --pk FILE --tag FILE --challenge FILE --proof FILE "
               "[--basic]\n");
  std::exit(2);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "dsaudit: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !out.write(reinterpret_cast<const char*>(data.data()),
                         static_cast<std::streamsize>(data.size()))) {
    std::fprintf(stderr, "dsaudit: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

struct Args {
  std::map<std::string, std::string> named;
  bool basic = false;

  const std::string& get(const std::string& key) const {
    auto it = named.find(key);
    if (it == named.end()) {
      std::fprintf(stderr, "dsaudit: missing --%s\n", key.c_str());
      usage();
    }
    return it->second;
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--basic") {
      args.basic = true;
    } else if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.named[a.substr(2)] = argv[++i];
    } else {
      usage();
    }
  }
  return args;
}

audit::PublicKey load_pk(const std::string& path) {
  auto pk = audit::deserialize_public_key(read_file(path));
  if (!pk) {
    std::fprintf(stderr, "dsaudit: malformed public key %s\n", path.c_str());
    std::exit(1);
  }
  if (pk->e_g1_epsilon.is_zero()) {
    // Key was stored without the privacy extras; recompute the GT base.
    pk->e_g1_epsilon = dsaudit::pairing::pairing(curve::G1::generator(), pk->epsilon);
  }
  return *pk;
}

audit::FileTag load_tag(const std::string& path) {
  auto tag = audit::deserialize_file_tag(read_file(path));
  if (!tag) {
    std::fprintf(stderr, "dsaudit: malformed tag %s\n", path.c_str());
    std::exit(1);
  }
  return *tag;
}

audit::Challenge load_challenge(const std::string& path) {
  auto chal = audit::deserialize_challenge(read_file(path));
  if (!chal) {
    std::fprintf(stderr, "dsaudit: malformed challenge %s\n", path.c_str());
    std::exit(1);
  }
  return *chal;
}

int cmd_keygen(const Args& args) {
  std::size_t s = std::stoull(args.get("s"));
  auto rng = primitives::SecureRng::from_os();
  audit::KeyPair kp = audit::keygen(s, rng);
  write_file(args.get("sk"), audit::serialize(kp.sk));
  write_file(args.get("pk"), audit::serialize(kp.pk, /*with_privacy=*/true));
  std::printf("keygen: s=%zu, pk=%zu bytes on chain\n", s,
              kp.pk.serialized_size(true));
  return 0;
}

int cmd_tag(const Args& args) {
  auto sk = audit::deserialize_secret_key(read_file(args.get("sk")));
  if (!sk) {
    std::fprintf(stderr, "dsaudit: malformed secret key\n");
    return 1;
  }
  audit::PublicKey pk = load_pk(args.get("pk"));
  auto data = read_file(args.get("file"));
  auto file = storage::encode_file(data, pk.s);
  auto rng = primitives::SecureRng::from_os();
  audit::Fr name = audit::Fr::random(rng);
  audit::FileTag tag = audit::generate_tags(*sk, pk, file, name, 4);
  write_file(args.get("tag"), audit::serialize(tag));
  std::printf("tag: %zu bytes -> %zu chunks, name=%s\n", data.size(),
              tag.num_chunks, name.to_dec().c_str());
  return 0;
}

int cmd_accept(const Args& args) {
  audit::PublicKey pk = load_pk(args.get("pk"));
  auto data = read_file(args.get("file"));
  auto file = storage::encode_file(data, pk.s);
  audit::FileTag tag = load_tag(args.get("tag"));
  bool ok = audit::verify_tags(pk, file, tag);
  std::printf("accept: authenticators %s\n", ok ? "VALID" : "INVALID");
  return ok ? 0 : 1;
}

int cmd_challenge(const Args& args) {
  auto rng = primitives::SecureRng::from_os();
  audit::Challenge chal;
  chal.c1 = rng.bytes32();
  chal.c2 = rng.bytes32();
  chal.r = audit::Fr::random(rng);
  chal.k = std::stoull(args.get("k"));
  write_file(args.get("out"), audit::serialize(chal));
  std::printf("challenge: k=%zu written\n", chal.k);
  return 0;
}

int cmd_prove(const Args& args) {
  audit::PublicKey pk = load_pk(args.get("pk"));
  auto data = read_file(args.get("file"));
  auto file = storage::encode_file(data, pk.s);
  audit::FileTag tag = load_tag(args.get("tag"));
  audit::Challenge chal = load_challenge(args.get("challenge"));
  audit::Prover prover(pk, file, tag);
  std::vector<std::uint8_t> proof_bytes;
  if (args.basic) {
    proof_bytes = audit::serialize(prover.prove(chal));
  } else {
    auto rng = primitives::SecureRng::from_os();
    proof_bytes = audit::serialize(prover.prove_private(chal, rng));
  }
  write_file(args.get("proof"), proof_bytes);
  std::printf("prove: %zu-byte proof written\n", proof_bytes.size());
  return 0;
}

int cmd_verify(const Args& args) {
  audit::PublicKey pk = load_pk(args.get("pk"));
  audit::FileTag tag = load_tag(args.get("tag"));
  audit::Challenge chal = load_challenge(args.get("challenge"));
  auto proof_bytes = read_file(args.get("proof"));
  bool ok = false;
  if (args.basic) {
    auto proof = audit::deserialize_basic(proof_bytes);
    ok = proof && audit::verify(pk, tag.name, tag.num_chunks, chal, *proof);
  } else {
    auto proof = audit::deserialize_private(proof_bytes);
    ok = proof && audit::verify_private(pk, tag.name, tag.num_chunks, chal, *proof);
  }
  std::printf("verify: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  Args args = parse(argc, argv, 2);
  try {
    if (cmd == "keygen") return cmd_keygen(args);
    if (cmd == "tag") return cmd_tag(args);
    if (cmd == "accept") return cmd_accept(args);
    if (cmd == "challenge") return cmd_challenge(args);
    if (cmd == "prove") return cmd_prove(args);
    if (cmd == "verify") return cmd_verify(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsaudit: %s\n", e.what());
    return 1;
  }
  usage();
}
