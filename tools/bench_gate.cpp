// bench_gate: CI regression gate over the committed BENCH_*.json baselines.
//
// Compares every gated metric series in a freshly generated benchmark
// against the committed baseline and fails (exit 1) if any row regresses by
// more than the allowed fraction:
//
//   bench_gate [--max-regression 0.25] [--allow-missing] \
//              <baseline.json> <fresh.json>
//
// Gated metrics and their regression direction:
//   ms_per_round    — higher is worse (BENCH_settlement.json)
//   rounds_per_sec  — lower is worse  (BENCH_settlement / BENCH_scale)
//   bytes_per_user  — higher is worse (BENCH_scale.json memory rows)
//
// Rows are matched in document order by default (a count mismatch means the
// committed baseline must be regenerated). --allow-missing switches to a
// label join: rows present in only one file are reported and skipped — the
// mode the scale-smoke CI step uses, where a quick subset run is gated
// against the committed full sweep.
//
// The parser is deliberately a scanner, not a JSON library: the bench
// writers emit a fixed shape, and the gate only cares about the ordered
// (label, metric, value) rows. Faster rows never fail; CI runners are noisy,
// so the default headroom is 25%.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Metric {
  const char* key;
  bool lower_is_bad;  // regression direction
};

constexpr Metric kMetrics[] = {
    {"ms_per_round", false},
    {"rounds_per_sec", true},
    {"bytes_per_user", false},
    {"bytes_per_round", false},
    {"gas_per_round", false},
};

struct Row {
  std::string label;  // e.g. "basic batch_size=64 ms_per_round"
  double value;
  bool lower_is_bad;
};

/// Extracts the numeric value following `"key":` starting at `from`;
/// returns the position after the number, or std::string::npos.
std::size_t scan_number(const std::string& text, const std::string& key,
                        std::size_t from, double& out) {
  std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::string::npos;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return std::string::npos;
  ++at;
  while (at < text.size() && std::isspace(static_cast<unsigned char>(text[at]))) ++at;
  char* end = nullptr;
  out = std::strtod(text.c_str() + at, &end);
  if (end == text.c_str() + at) return std::string::npos;
  return static_cast<std::size_t>(end - text.c_str());
}

/// Context label for a metric found at `at`: the nearest preceding
/// population/threads pair (BENCH_scale rows) if one is closer than any
/// settlement section, else the section ("basic"/"private"/"window_sweep")
/// plus the nearest batch_size/window qualifier (BENCH_settlement rows).
std::string context_label(const std::string& text, std::size_t at) {
  std::size_t pop_at = text.rfind("\"population\"", at);
  std::string section = "?";
  std::size_t section_at = std::string::npos;
  for (const char* s :
       {"\"basic\"", "\"private\"", "\"window_sweep\"", "\"aggregate\""}) {
    std::size_t f = text.rfind(s, at);
    if (f != std::string::npos &&
        (section_at == std::string::npos || f > section_at)) {
      section_at = f;
      section = std::string(s + 1, std::strlen(s) - 2);
    }
  }
  if (pop_at != std::string::npos &&
      (section_at == std::string::npos || pop_at > section_at)) {
    double pop = 0, threads = 0;
    scan_number(text, "population", pop_at, pop);
    std::size_t t_at = text.rfind("\"threads\"", at);
    std::string label = "population=" + std::to_string(static_cast<long>(pop));
    if (t_at != std::string::npos && t_at > pop_at &&
        scan_number(text, "threads", t_at, threads) != std::string::npos) {
      label += " threads=" + std::to_string(static_cast<long>(threads));
    }
    return label;
  }
  std::string qual;
  std::size_t bs_at = text.rfind("\"batch_size\"", at);
  std::size_t w_at = text.rfind("\"window\"", at);
  double v = 0;
  if (bs_at != std::string::npos && (w_at == std::string::npos || bs_at > w_at)) {
    scan_number(text, "batch_size", bs_at, v);
    qual = " batch_size=" + std::to_string(static_cast<long>(v));
  } else if (w_at != std::string::npos) {
    scan_number(text, "window", w_at, v);
    qual = " window=" + std::to_string(static_cast<long>(v));
  } else {
    qual = " unbatched";
  }
  return section + qual;
}

/// Walks the document once, collecting every gated metric in order.
std::vector<Row> parse_rows(const std::string& text) {
  std::vector<Row> rows;
  std::size_t pos = 0;
  while (true) {
    // Next occurrence of any gated metric after pos.
    const Metric* best = nullptr;
    std::size_t best_at = std::string::npos;
    for (const Metric& m : kMetrics) {
      std::size_t at = text.find("\"" + std::string(m.key) + "\"", pos);
      if (at != std::string::npos && (best == nullptr || at < best_at)) {
        best = &m;
        best_at = at;
      }
    }
    if (best == nullptr) break;
    double value = 0;
    std::size_t next = scan_number(text, best->key, best_at, value);
    if (next == std::string::npos) break;
    rows.push_back({context_label(text, best_at) + " " + best->key, value,
                    best->lower_is_bad});
    pos = next;
  }
  return rows;
}

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_gate: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Regression fraction, oriented so positive always means "worse".
double regression(const Row& base, const Row& fresh) {
  if (base.value <= 0 || fresh.value <= 0) return 0.0;
  return base.lower_is_bad ? base.value / fresh.value - 1.0
                           : fresh.value / base.value - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  double max_regression = 0.25;
  bool allow_missing = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
      allow_missing = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "bench_gate: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_gate [--max-regression FRAC] [--allow-missing] "
                 "baseline.json fresh.json\n");
    return 2;
  }

  auto base = parse_rows(slurp(files[0]));
  auto fresh = parse_rows(slurp(files[1]));
  if (base.empty() || fresh.empty()) {
    std::fprintf(stderr, "bench_gate: no gated metric rows found\n");
    return 2;
  }
  if (!allow_missing && base.size() != fresh.size()) {
    std::fprintf(stderr,
                 "bench_gate: row count mismatch (baseline %zu vs fresh %zu) — "
                 "regenerate the committed baseline\n",
                 base.size(), fresh.size());
    return 1;
  }

  // Pair rows: by position in strict mode, by label join with --allow-missing.
  std::vector<std::pair<const Row*, const Row*>> pairs;
  if (allow_missing) {
    std::size_t unmatched_fresh = 0;
    for (const Row& f : fresh) {
      const Row* b = nullptr;
      for (const Row& cand : base) {
        if (cand.label == f.label) {
          b = &cand;
          break;
        }
      }
      if (b) {
        pairs.emplace_back(b, &f);
      } else {
        ++unmatched_fresh;
      }
    }
    if (unmatched_fresh) {
      std::printf("bench_gate: %zu fresh row(s) have no baseline (skipped)\n",
                  unmatched_fresh);
    }
    if (pairs.size() < base.size()) {
      std::printf("bench_gate: %zu baseline row(s) not re-measured (skipped)\n",
                  base.size() - pairs.size());
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "bench_gate: no rows matched by label\n");
      return 2;
    }
  } else {
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base[i].label != fresh[i].label) {
        std::fprintf(stderr,
                     "bench_gate: row %zu label mismatch (\"%s\" vs \"%s\") — "
                     "regenerate the committed baseline\n",
                     i, base[i].label.c_str(), fresh[i].label.c_str());
        return 1;
      }
      pairs.emplace_back(&base[i], &fresh[i]);
    }
  }

  int failures = 0;
  std::printf("%-48s %14s %14s %9s\n", "row", "baseline", "fresh", "delta");
  for (const auto& [b, f] : pairs) {
    const double delta = regression(*b, *f);
    const bool bad = delta > max_regression;
    std::printf("%-48s %14.3f %14.3f %+8.1f%%%s\n", b->label.c_str(), b->value,
                f->value, delta * 100, bad ? "  << REGRESSION" : "");
    if (bad) ++failures;
  }
  if (failures) {
    std::fprintf(stderr,
                 "bench_gate: %d row(s) regressed more than %.0f%% vs %s\n",
                 failures, max_regression * 100, files[0]);
    return 1;
  }
  std::printf("bench_gate: OK (max allowed regression %.0f%%)\n",
              max_regression * 100);
  return 0;
}
