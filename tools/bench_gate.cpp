// bench_gate: CI regression gate over BENCH_settlement.json.
//
// Compares every "ms_per_round" series in a freshly generated settlement
// benchmark against the committed baseline, in document order, and fails
// (exit 1) if any row regresses by more than the allowed fraction:
//
//   bench_gate [--max-regression 0.25] <baseline.json> <fresh.json>
//
// The parser is deliberately a scanner, not a JSON library: the bench writer
// (bench_settlement.cpp) emits a fixed shape, and the gate only cares about
// the ordered (label, ms_per_round) rows — batch sizes for the two proof
// shapes followed by the window sweep. Faster rows never fail; CI runners
// are noisy, so the default headroom is 25%.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string label;   // e.g. "basic batch_size=64" or "window=16"
  double ms_per_round; // the gated metric
};

/// Extracts the numeric value following `"key":` starting at `from`;
/// returns the position after the number, or std::string::npos.
std::size_t scan_number(const std::string& text, const std::string& key,
                        std::size_t from, double& out) {
  std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::string::npos;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return std::string::npos;
  ++at;
  while (at < text.size() && std::isspace(static_cast<unsigned char>(text[at]))) ++at;
  char* end = nullptr;
  out = std::strtod(text.c_str() + at, &end);
  if (end == text.c_str() + at) return std::string::npos;
  return static_cast<std::size_t>(end - text.c_str());
}

/// Walks the document once, labelling each ms_per_round row by the section
/// ("basic"/"private"/"window_sweep") and the nearest preceding batch_size
/// or window key.
std::vector<Row> parse_rows(const std::string& text) {
  std::vector<Row> rows;
  std::size_t pos = 0;
  while (true) {
    double ms = 0;
    std::size_t next = scan_number(text, "ms_per_round", pos, ms);
    if (next == std::string::npos) break;

    // Label: last section name and last batch_size/window before this row.
    std::string section = "?";
    for (const char* s : {"\"basic\"", "\"private\"", "\"window_sweep\""}) {
      std::size_t at = text.rfind(s, next);
      if (at != std::string::npos &&
          (section == "?" || at > text.rfind("\"" + section + "\"", next))) {
        section = std::string(s + 1, std::strlen(s) - 2);
      }
    }
    std::string qual;
    std::size_t bs_at = text.rfind("\"batch_size\"", next);
    std::size_t w_at = text.rfind("\"window\"", next);
    double v = 0;
    if (bs_at != std::string::npos && (w_at == std::string::npos || bs_at > w_at)) {
      scan_number(text, "batch_size", bs_at, v);
      qual = " batch_size=" + std::to_string(static_cast<long>(v));
    } else if (w_at != std::string::npos) {
      scan_number(text, "window", w_at, v);
      qual = " window=" + std::to_string(static_cast<long>(v));
    } else {
      qual = " unbatched";
    }
    rows.push_back({section + qual, ms});
    pos = next;
  }
  return rows;
}

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_gate: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  double max_regression = 0.25;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "bench_gate: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_gate [--max-regression FRAC] baseline.json fresh.json\n");
    return 2;
  }

  auto base = parse_rows(slurp(files[0]));
  auto fresh = parse_rows(slurp(files[1]));
  if (base.empty() || fresh.empty()) {
    std::fprintf(stderr, "bench_gate: no ms_per_round rows found\n");
    return 2;
  }
  if (base.size() != fresh.size()) {
    std::fprintf(stderr,
                 "bench_gate: row count mismatch (baseline %zu vs fresh %zu) — "
                 "regenerate the committed baseline\n",
                 base.size(), fresh.size());
    return 1;
  }

  int failures = 0;
  std::printf("%-32s %12s %12s %9s\n", "row", "baseline ms", "fresh ms", "delta");
  for (std::size_t i = 0; i < base.size(); ++i) {
    double delta = base[i].ms_per_round > 0
                       ? fresh[i].ms_per_round / base[i].ms_per_round - 1.0
                       : 0.0;
    bool bad = delta > max_regression;
    std::printf("%-32s %12.3f %12.3f %+8.1f%%%s\n", base[i].label.c_str(),
                base[i].ms_per_round, fresh[i].ms_per_round, delta * 100,
                bad ? "  << REGRESSION" : "");
    if (bad) ++failures;
  }
  if (failures) {
    std::fprintf(stderr,
                 "bench_gate: %d row(s) regressed more than %.0f%% vs %s\n",
                 failures, max_regression * 100, files[0]);
    return 1;
  }
  std::printf("bench_gate: OK (max allowed regression %.0f%%)\n",
              max_regression * 100);
  return 0;
}
