// Fig. 8: prover time split into ECC operations vs Z_p operations at
// k = 300 (95% confidence), for s in {10, 20, 50, 100}, with and without
// the on-chain privacy extras (the "+ security" bars).
#include "bench/bench_util.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(48);
  header("Fig. 8 reproduction: prover time breakdown, k = 300");
  std::printf("%6s %12s %12s %12s %14s %14s\n", "s", "Zp (ms)", "ECC (ms)",
              "GT (ms)", "total w/o (ms)", "total w/ (ms)");

  for (std::size_t s : {10u, 20u, 50u, 100u}) {
    // Need d >= 300 chunks so k = 300 is honoured: 320 chunks of s blocks.
    std::size_t file_bytes = 320 * s * 31;
    Scenario sc = make_scenario(file_bytes, s, rng);
    audit::Prover prover(sc.kp.pk, sc.file, sc.tag);
    audit::Challenge chal = make_challenge(rng, 300);

    audit::ProverTimings best{1e18, 1e18, 1e18};
    for (int rep = 0; rep < 3; ++rep) {
      audit::ProverTimings t;
      auto proof = prover.prove_private(chal, rng, &t);
      (void)proof;
      if (t.zp_ms + t.ecc_ms + t.gt_ms < best.zp_ms + best.ecc_ms + best.gt_ms) {
        best = t;
      }
    }
    std::printf("%6zu %12.2f %12.2f %12.2f %14.2f %14.2f\n", s, best.zp_ms,
                best.ecc_ms, best.gt_ms, best.zp_ms + best.ecc_ms,
                best.zp_ms + best.ecc_ms + best.gt_ms);
  }
  std::printf("\npaper: ECC dominates at every s; Zp work peaks near s=50 but\n"
              "stays minor; privacy (\"+ security\") adds a roughly constant\n"
              "GT-exponentiation increment. shape check: same ordering here.\n");
  return 0;
}
