// Google-benchmark microbenchmarks of every cryptographic building block,
// from field multiplication up to full proof verification. These are the
// constants behind all the per-figure numbers.
#include <benchmark/benchmark.h>

#include <memory>

#include "audit/serialize.hpp"
#include "bench/bench_util.hpp"
#include "kzg/kzg.hpp"
#include "pairing/pairing.hpp"
#include "parallel/thread_pool.hpp"

using namespace dsaudit;

namespace {

primitives::SecureRng& rng() {
  static auto r = primitives::SecureRng::deterministic(51);
  return r;
}

void BM_FpMul(benchmark::State& state) {
  ff::Fp a = ff::Fp::random(rng()), b = ff::Fp::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a * b);
  }
}
BENCHMARK(BM_FpMul);

void BM_FpInverse(benchmark::State& state) {
  ff::Fp a = ff::Fp::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a.inverse() + ff::Fp::one());
  }
}
BENCHMARK(BM_FpInverse);

void BM_Fp12Mul(benchmark::State& state) {
  ff::Fp12 a = ff::Fp12::random(rng()), b = ff::Fp12::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a * b);
  }
}
BENCHMARK(BM_Fp12Mul);

void BM_G1ScalarMul(benchmark::State& state) {
  curve::G1 p = curve::g1_random(rng());
  ff::Fr k = ff::Fr::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G1ScalarMul);

/// The pre-GLV generic route: 5-bit signed wNAF over the whole 254-bit
/// scalar. BM_G1ScalarMul (above) takes the GLV half-length interleaved
/// route; the gap between the two rows is the endomorphism dividend.
void BM_G1ScalarMulWnaf(benchmark::State& state) {
  curve::G1 p = curve::g1_random(rng());
  ff::Fr k = ff::Fr::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul_wnaf(k.to_u256()));
  }
}
BENCHMARK(BM_G1ScalarMulWnaf);

void BM_G1ScalarMulNaive(benchmark::State& state) {
  curve::G1 p = curve::g1_random(rng());
  ff::Fr k = ff::Fr::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul_naive(k));
  }
}
BENCHMARK(BM_G1ScalarMulNaive);

void BM_G1FixedBaseMul(benchmark::State& state) {
  curve::g1_generator_table();  // build outside the timed region
  ff::Fr k = ff::Fr::random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve::g1_mul_generator(k));
  }
}
BENCHMARK(BM_G1FixedBaseMul);

void BM_HashToG1(benchmark::State& state) {
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::chunk_hash(ff::Fr::from_u64(7), ctr++));
  }
}
BENCHMARK(BM_HashToG1);

void BM_MsmG1(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<curve::G1> pts;
  std::vector<ff::Fr> sc;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(curve::g1_random(rng()));
    sc.push_back(ff::Fr::random(rng()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve::msm<curve::G1>(pts, sc));
  }
}
BENCHMARK(BM_MsmG1)->Arg(50)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Pairing(benchmark::State& state) {
  curve::G1 p = curve::g1_random(rng());
  curve::G2 q = curve::g2_random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pairing(p, q));
  }
}
BENCHMARK(BM_Pairing);

void BM_PairingTextbook(benchmark::State& state) {
  curve::G1 p = curve::g1_random(rng());
  curve::G2 q = curve::g2_random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pairing_textbook(p, q));
  }
}
BENCHMARK(BM_PairingTextbook);

void BM_G2Prepare(benchmark::State& state) {
  curve::G2 q = curve::g2_random(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::G2Prepared(q));
  }
}
BENCHMARK(BM_G2Prepare);

/// Pairing against a cached line table — the per-call cost a prepared
/// verifier key pays.
void BM_PairingPrepared(benchmark::State& state) {
  curve::G1 p = curve::g1_random(rng());
  pairing::G2Prepared q(curve::g2_random(rng()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pairing(p, q));
  }
}
BENCHMARK(BM_PairingPrepared);

void BM_FinalExp(benchmark::State& state) {
  ff::Fp12 m = pairing::miller_loop(curve::g1_random(rng()), curve::g2_random(rng()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::final_exponentiation(m));
  }
}
BENCHMARK(BM_FinalExp);

void BM_MultiPairing4(benchmark::State& state) {
  std::vector<std::pair<curve::G1, curve::G2>> pairs;
  for (int i = 0; i < 4; ++i) {
    pairs.emplace_back(curve::g1_random(rng()), curve::g2_random(rng()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::multi_pairing(pairs));
  }
}
BENCHMARK(BM_MultiPairing4);

/// The verification-equation shape: 4 Miller loops over fixed, prepared G2
/// points, lock-step squarings, one final exponentiation.
void BM_MultiPairing4Prepared(benchmark::State& state) {
  std::vector<pairing::G2Prepared> prep;
  std::vector<curve::G1> g1s;
  for (int i = 0; i < 4; ++i) {
    prep.emplace_back(curve::g2_random(rng()));
    g1s.push_back(curve::g1_random(rng()));
  }
  std::vector<pairing::PreparedPair> pairs;
  for (int i = 0; i < 4; ++i) pairs.push_back({g1s[i], &prep[i]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::multi_pairing(pairs));
  }
}
BENCHMARK(BM_MultiPairing4Prepared);

kzg::Srs& srs4096() {
  static kzg::Srs srs = kzg::make_srs(ff::Fr::random(rng()), 4096);
  return srs;
}

void BM_MakeSrs(benchmark::State& state) {
  ff::Fr alpha = ff::Fr::random(rng());
  std::size_t deg = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kzg::make_srs(alpha, deg));
  }
}
BENCHMARK(BM_MakeSrs)->Arg(256)->Arg(4096);

/// Commit through the cold MSM path (no prepared key).
void BM_KzgCommit(benchmark::State& state) {
  std::size_t deg = static_cast<std::size_t>(state.range(0));
  static kzg::Srs srs256 = kzg::make_srs(ff::Fr::random(rng()), 256);
  kzg::Srs& srs = deg <= 256 ? srs256 : srs4096();
  poly::Polynomial p = poly::Polynomial::random(deg, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kzg::commit(srs, p));
  }
}
BENCHMARK(BM_KzgCommit)->Arg(256)->Arg(4096);

/// Commit with Srs::prepare()'s shifted-base key (the production path for
/// anything that commits more than a handful of times).
void BM_KzgCommitPrepared(benchmark::State& state) {
  static kzg::Srs srs = [] {
    kzg::Srs s = srs4096();
    s.prepare();
    return s;
  }();
  std::size_t deg = static_cast<std::size_t>(state.range(0));
  poly::Polynomial p = poly::Polynomial::random(deg, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kzg::commit(srs, p));
  }
}
BENCHMARK(BM_KzgCommitPrepared)->Arg(256)->Arg(4096);

struct ProveFixture {
  benchutil::Scenario sc;
  std::unique_ptr<audit::Prover> prover;
  audit::Challenge chal;

  ProveFixture() {
    sc = benchutil::make_scenario(320 * 50 * 31, 50, rng());
    prover = std::make_unique<audit::Prover>(sc.kp.pk, sc.file, sc.tag,
                                             /*prepare_psi=*/true,
                                             /*prepare_sigma=*/true);
    chal = benchutil::make_challenge(rng(), 300);
  }
};

ProveFixture& fixture() {
  static ProveFixture f;
  return f;
}

void BM_ProveBasic_k300_s50(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.prover->prove(f.chal));
  }
}
BENCHMARK(BM_ProveBasic_k300_s50);

void BM_ProvePrivate_k300_s50(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.prover->prove_private(f.chal, rng()));
  }
}
BENCHMARK(BM_ProvePrivate_k300_s50);

void BM_VerifyBasic_k300(benchmark::State& state) {
  auto& f = fixture();
  auto proof = f.prover->prove(f.chal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::verify(f.sc.kp.pk, f.sc.name,
                                           f.sc.file.num_chunks(), f.chal, proof));
  }
}
BENCHMARK(BM_VerifyBasic_k300);

void BM_VerifyPrivate_k300(benchmark::State& state) {
  auto& f = fixture();
  auto proof = f.prover->prove_private(f.chal, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::verify_private(
        f.sc.kp.pk, f.sc.name, f.sc.file.num_chunks(), f.chal, proof));
  }
}
BENCHMARK(BM_VerifyPrivate_k300);

/// The production verifier: G2 line tables prepared once per public key and
/// the chunk-hash table once per file, amortized over every round (the
/// contract's steady state).
void BM_VerifyBasicPrepared_k300(benchmark::State& state) {
  auto& f = fixture();
  static audit::Verifier verifier(fixture().sc.kp.pk);
  static audit::PreparedFile file_ctx =
      audit::prepare_file(fixture().sc.name, fixture().sc.file.num_chunks());
  auto proof = f.prover->prove(f.chal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(file_ctx, f.chal, proof));
  }
}
BENCHMARK(BM_VerifyBasicPrepared_k300);

void BM_VerifyPrivatePrepared_k300(benchmark::State& state) {
  auto& f = fixture();
  static audit::Verifier verifier(fixture().sc.kp.pk);
  static audit::PreparedFile file_ctx =
      audit::prepare_file(fixture().sc.name, fixture().sc.file.num_chunks());
  auto proof = f.prover->prove_private(f.chal, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify_private(file_ctx, f.chal, proof));
  }
}
BENCHMARK(BM_VerifyPrivatePrepared_k300);

void BM_KzgVerify(benchmark::State& state) {
  static kzg::Srs srs = kzg::make_srs(ff::Fr::random(rng()), 256);
  poly::Polynomial p = poly::Polynomial::random(200, rng());
  auto c = kzg::commit(srs, p);
  auto o = kzg::open(srs, p, ff::Fr::random(rng()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kzg::verify(srs, c, o));
  }
}
BENCHMARK(BM_KzgVerify);

void BM_KzgVerifyPrepared(benchmark::State& state) {
  static kzg::Srs srs = [] {
    kzg::Srs s = kzg::make_srs(ff::Fr::random(rng()), 256);
    s.prepare();
    return s;
  }();
  poly::Polynomial p = poly::Polynomial::random(200, rng());
  auto c = kzg::commit(srs, p);
  auto o = kzg::open(srs, p, ff::Fr::random(rng()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kzg::verify(srs, c, o));
  }
}
BENCHMARK(BM_KzgVerifyPrepared);

// ---------------------------------------------------------------------------
// Thread scaling: the same hot paths with the parallel layer pinned to 1, 2,
// 4 and 8 threads (overriding DSAUDIT_THREADS for the timed region). Results
// are identical at every width — these measure wall-clock only.
// ---------------------------------------------------------------------------

/// Pins the pool width for one benchmark run and restores the environment
/// default afterwards.
struct ThreadPin {
  explicit ThreadPin(unsigned n) { parallel::set_thread_count(n); }
  ~ThreadPin() { parallel::set_thread_count(0); }
};

void BM_MsmG1Threads(benchmark::State& state) {
  ThreadPin pin(static_cast<unsigned>(state.range(0)));
  constexpr std::size_t n = 4096;
  std::vector<curve::G1> pts;
  std::vector<ff::Fr> sc;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(curve::g1_random(rng()));
    sc.push_back(ff::Fr::random(rng()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve::msm<curve::G1>(pts, sc));
  }
}
BENCHMARK(BM_MsmG1Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_MultiPairing4PreparedThreads(benchmark::State& state) {
  ThreadPin pin(static_cast<unsigned>(state.range(0)));
  std::vector<pairing::G2Prepared> prep;
  std::vector<curve::G1> g1s;
  for (int i = 0; i < 4; ++i) {
    prep.emplace_back(curve::g2_random(rng()));
    g1s.push_back(curve::g1_random(rng()));
  }
  std::vector<pairing::PreparedPair> pairs;
  for (int i = 0; i < 4; ++i) pairs.push_back({g1s[i], &prep[i]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::multi_pairing(pairs));
  }
}
BENCHMARK(BM_MultiPairing4PreparedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ProveBasicThreads(benchmark::State& state) {
  ThreadPin pin(static_cast<unsigned>(state.range(0)));
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.prover->prove(f.chal));
  }
}
BENCHMARK(BM_ProveBasicThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_VerifyPrivatePreparedThreads(benchmark::State& state) {
  ThreadPin pin(static_cast<unsigned>(state.range(0)));
  auto& f = fixture();
  static audit::Verifier verifier(fixture().sc.kp.pk);
  static audit::PreparedFile file_ctx =
      audit::prepare_file(fixture().sc.name, fixture().sc.file.num_chunks());
  auto proof = f.prover->prove_private(f.chal, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify_private(file_ctx, f.chal, proof));
  }
}
BENCHMARK(BM_VerifyPrivatePreparedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Batched settlement + the cyclotomic exponentiation flavours behind it.
// ---------------------------------------------------------------------------

/// GT exponentiation by a random 254-bit scalar, plain cyclotomic ladder.
void BM_GtPowCyclotomic(benchmark::State& state) {
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng()), curve::g2_random(rng()));
  auto e = ff::Fr::random(rng()).to_u256();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.cyclotomic_pow_u256(e));
  }
}
BENCHMARK(BM_GtPowCyclotomic);

/// Same exponent through the Karabina compressed squaring chain.
void BM_GtPowKarabina(benchmark::State& state) {
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng()), curve::g2_random(rng()));
  auto e = ff::Fr::random(rng()).to_u256();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.cyclotomic_pow_compressed(e));
  }
}
BENCHMARK(BM_GtPowKarabina);

/// The settlement weights' shape, shared by both multi-exp benchmarks so
/// their ratio (the README speedup table) always compares like for like:
/// n random GT elements with dense 128-bit exponents.
std::pair<std::vector<ff::Fp12>, std::vector<ff::U256>> gt_multipow_inputs(
    std::size_t n) {
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng()), curve::g2_random(rng()));
  std::vector<ff::Fp12> bases(n);
  std::vector<ff::U256> exps(n);
  for (std::size_t i = 0; i < n; ++i) {
    bases[i] = g.cyclotomic_pow_u256(ff::Fr::random(rng()).to_u256());
    exps[i] = ff::U256{rng().next_u64(), rng().next_u64(), 0, 0};
  }
  return {std::move(bases), std::move(exps)};
}

/// GT multi-exponentiation through the shared-squaring engine; items/sec is
/// per-element throughput.
void BM_GtMultiPow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto [bases, exps] = gt_multipow_inputs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ff::Fp12::multi_pow(bases, exps));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GtMultiPow)->Arg(2)->Arg(8)->Arg(64);

/// The unsigned-window Straus engine on the same inputs: full-size tables,
/// no conjugate trick. The delta against BM_GtMultiPow is what the
/// signed-digit recoding buys.
void BM_GtMultiPowUnsigned(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto [bases, exps] = gt_multipow_inputs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ff::Fp12::multi_pow_unsigned(bases, exps));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GtMultiPowUnsigned)->Arg(2)->Arg(8)->Arg(64);

/// The naive baseline for the same shape: n independent 128-bit ladders
/// (what verify_settlement paid per round before the multi-exp reroute).
void BM_GtMultiPowNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto [bases, exps] = gt_multipow_inputs(n);
  for (auto _ : state) {
    ff::Fp12 acc = ff::Fp12::one();
    for (std::size_t i = 0; i < n; ++i) {
      acc *= bases[i].cyclotomic_pow_u256(exps[i]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GtMultiPowNaive)->Arg(2)->Arg(8)->Arg(64);

/// Settling `batch_size` same-key Eq. 1 rounds in one weighted check (3
/// pairings total); time is for the whole batch — divide by the argument
/// for per-round cost. bench_settlement emits the JSON trajectory.
void BM_SettleBatchBasic(benchmark::State& state) {
  auto& f = fixture();
  static audit::Verifier verifier(fixture().sc.kp.pk);
  static audit::PreparedFile file_ctx =
      audit::prepare_file(fixture().sc.name, fixture().sc.file.num_chunks());
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  static std::vector<audit::SettlementInstance> pool = [] {
    std::vector<audit::SettlementInstance> v(64);
    for (auto& inst : v) {
      inst.verifier = &verifier;
      inst.file = &file_ctx;
      inst.challenge = benchutil::make_challenge(rng(), 8);
      inst.basic = fixture().prover->prove(inst.challenge);
    }
    return v;
  }();
  std::span<const audit::SettlementInstance> batch(pool.data(), n);
  auto seed = rng().bytes32();
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::verify_settlement(batch, seed));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SettleBatchBasic)->Arg(1)->Arg(8)->Arg(64);

void BM_GtCompress(benchmark::State& state) {
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng()), curve::g2_random(rng()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::gt_compress(g));
  }
}
BENCHMARK(BM_GtCompress);

void BM_GtDecompress(benchmark::State& state) {
  ff::Fp12 g = pairing::pairing(curve::g1_random(rng()), curve::g2_random(rng()));
  auto bytes = audit::gt_compress(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::gt_decompress(bytes));
  }
}
BENCHMARK(BM_GtDecompress);

}  // namespace

BENCHMARK_MAIN();
