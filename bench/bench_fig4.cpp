// Fig. 4: one-time on-chain public-key size vs the chunk parameter s,
// with and without the on-chain-privacy extras. Exact serialized bytes.
#include "audit/serialize.hpp"
#include "bench/bench_util.hpp"
#include "econ/cost_model.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(44);
  header("Fig. 4 reproduction: initial one-time on-chain public key size");
  std::printf("(paper reports the same quantities in KB bars, 0.5-4 KB range,\n"
              " privacy adding a constant |GT| = 192-byte increment)\n\n");
  std::printf("%6s %18s %18s %12s %14s\n", "s", "w/o privacy (B)",
              "w/ privacy (B)", "delta (B)", "one-time USD");

  econ::AuditCostModel cost;
  for (std::size_t s : {10u, 20u, 50u, 100u}) {
    audit::KeyPair kp = audit::keygen(s, rng);
    auto plain = audit::serialize(kp.pk, false);
    auto priv = audit::serialize(kp.pk, true);
    auto usd = econ::pk_storage_cost(s, true, cost).usd;
    std::printf("%6zu %18zu %18zu %12zu %14.3f\n", s, plain.size(), priv.size(),
                priv.size() - plain.size(), usd);
    if (priv.size() - plain.size() != 192) std::abort();
  }
  std::printf("\nshape check: linear in s (32 B per alpha-power), constant 192 B\n"
              "privacy increment, well under \"a few US dollars\" one-time cost.\n");
  return 0;
}
