// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints the paper's reported values next to what this
// implementation measures or models, in plain text tables that EXPERIMENTS.md
// records. Absolute timings differ from the paper's 2020 Go/assembly testbed;
// the shapes (who wins, scaling exponents, crossovers) are the claims under
// reproduction.
#pragma once

#include <chrono>
#include <cstdio>
#include <vector>

#include "audit/protocol.hpp"

namespace dsaudit::benchutil {

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Time a callable, best of `reps` runs (ms).
template <typename F>
double time_best_ms(F&& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto t0 = Clock::now();
    fn();
    best = std::min(best, ms_since(t0));
  }
  return best;
}

struct Scenario {
  audit::KeyPair kp;
  storage::EncodedFile file;
  audit::FileTag tag;
  audit::Fr name;
};

inline Scenario make_scenario(std::size_t file_bytes, std::size_t s,
                              primitives::SecureRng& rng, unsigned threads = 4) {
  Scenario sc;
  sc.kp = audit::keygen(s, rng);
  std::vector<std::uint8_t> data(file_bytes);
  rng.fill(data);
  sc.file = storage::encode_file(data, s);
  sc.name = audit::Fr::random(rng);
  sc.tag = audit::generate_tags(sc.kp.sk, sc.kp.pk, sc.file, sc.name, threads);
  return sc;
}

inline audit::Challenge make_challenge(primitives::SecureRng& rng, std::size_t k) {
  audit::Challenge c;
  c.c1 = rng.bytes32();
  c.c2 = rng.bytes32();
  c.r = audit::Fr::random(rng);
  c.k = k;
  return c;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace dsaudit::benchutil
