// Population-scale throughput and memory benchmark for the streaming
// simulation path (chain::Retention::Streaming + NetworkConfig::key_pool):
// rounds/s, peak RSS and bytes/user at 10^2..10^5 owners (10^6 behind
// --max-pop), at 1 and 4 worker threads.
//
// Each (population, threads) row runs in a fresh child process (this binary
// re-invoked with --row) so peak RSS — VmHWM from /proc/self/status — is the
// row's own high-water mark, not the max across the whole sweep.
//
// Plain main() program (no google-benchmark dependency) so CI's scale-smoke
// step can always build and run it; emits BENCH_scale.json recording the
// perf/memory trajectory.
// Usage: bench_scale [--out FILE] [--smoke] [--max-pop N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/network_sim.hpp"

using namespace dsaudit;

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Peak resident set (bytes) of this process: VmHWM from /proc/self/status.
// Returns 0 where procfs is unavailable (the row then reports rss 0 and the
// gate's label join skips it).
std::size_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

// Rounds per contract, tapered so total settled rounds stays bounded as the
// population grows (10^5 x 2 and 10^2 x 10 are both honest working sets).
std::uint64_t audits_for(std::size_t population) {
  if (population <= 1'000) return 10;
  if (population <= 10'000) return 4;
  if (population <= 100'000) return 2;
  return 1;
}

// The population-scale operating point: streaming retention, a shared key
// pool, one single-chunk shard per owner (deployments == population), basic
// proofs settled in blocks. Everything observable is pinned against full
// retention by tests/test_scale.cpp; this benchmark only measures it.
sim::NetworkConfig scale_config(std::size_t population) {
  sim::NetworkConfig c;
  c.num_owners = population;
  c.num_providers = population < 64 ? 16 : 64;
  c.file_bytes = 124;  // one s=4 chunk (4 * 31 bytes)
  c.s = 4;
  c.erasure_data = 1;
  c.erasure_parity = 0;
  c.num_audits = audits_for(population);
  c.challenged_chunks = 1;
  c.private_proofs = false;
  c.batched_settlement = true;
  c.batch_gas_discount = true;
  c.retention = chain::Retention::Streaming;
  c.key_pool = 16;
  c.rng_seed = 42;
  return c;
}

// Child mode: run one row, print its JSON object on stdout, exit.
int run_row(std::size_t population, unsigned threads) {
  parallel::set_thread_count(threads);
  sim::NetworkConfig c = scale_config(population);

  auto t0 = Clock::now();
  sim::NetworkSim net(c);
  net.deploy();
  const double deploy_s = secs_since(t0);

  t0 = Clock::now();
  net.run_to_completion();
  const double run_s = secs_since(t0);
  net.check_invariants();

  const sim::NetworkStats st = net.stats();
  const std::size_t rss = peak_rss_bytes();
  std::printf(
      "{\"population\": %zu, \"threads\": %u, \"num_audits\": %llu, "
      "\"providers\": %zu, \"rounds\": %llu, \"deploy_s\": %.3f, "
      "\"run_s\": %.3f, \"rounds_per_sec\": %.1f, \"chain_bytes\": %zu, "
      "\"peak_rss_bytes\": %zu, \"bytes_per_user\": %.1f}\n",
      population, threads, static_cast<unsigned long long>(c.num_audits),
      c.num_providers, static_cast<unsigned long long>(st.total_rounds),
      deploy_s, run_s, run_s > 0 ? st.total_rounds / run_s : 0.0,
      st.chain_bytes, rss,
      population ? static_cast<double>(rss) / population : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  bool smoke = false;
  std::size_t max_pop = 100'000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    if (!std::strcmp(argv[i], "--max-pop") && i + 1 < argc) {
      max_pop = std::strtoull(argv[++i], nullptr, 10);
    }
    if (!std::strcmp(argv[i], "--row") && i + 2 < argc) {
      return run_row(std::strtoull(argv[i + 1], nullptr, 10),
                     static_cast<unsigned>(std::atoi(argv[i + 2])));
    }
  }

  std::vector<std::size_t> populations;
  std::vector<unsigned> widths;
  if (smoke) {
    populations = {100, 1'000};
    widths = {1};
  } else {
    populations = {100, 1'000, 10'000, 100'000, 1'000'000};
    widths = {1, 4};
  }

  std::string json = "{\n  \"config\": {\"retention\": \"streaming\", "
                     "\"key_pool\": 16, \"proofs\": \"basic\", "
                     "\"batched_settlement\": true, \"seed\": 42},\n"
                     "  \"rows\": [";
  bool first = true;
  for (std::size_t pop : populations) {
    if (pop > max_pop) continue;
    for (unsigned w : widths) {
      std::fprintf(stderr, "bench_scale: population %zu, %u thread(s)...\n",
                   pop, w);
      std::string cmd = std::string("\"") + argv[0] + "\" --row " +
                        std::to_string(pop) + " " + std::to_string(w);
      std::FILE* child = popen(cmd.c_str(), "r");
      if (!child) {
        std::fprintf(stderr, "bench_scale: failed to spawn row\n");
        return 1;
      }
      std::string row;
      char buf[512];
      while (std::fgets(buf, sizeof(buf), child)) row += buf;
      const int status = pclose(child);
      while (!row.empty() && (row.back() == '\n' || row.back() == '\r')) {
        row.pop_back();
      }
      if (status != 0 || row.empty() || row.front() != '{') {
        std::fprintf(stderr,
                     "bench_scale: row (population %zu, threads %u) failed "
                     "(status %d): %s\n",
                     pop, w, status, row.c_str());
        return 1;
      }
      json += first ? "\n    " : ",\n    ";
      json += row;
      first = false;
      std::fprintf(stderr, "  %s\n", row.c_str());
    }
  }
  json += "\n  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
