// Fig. 9: proof-generation time vs storage-confidence level (91%..99% at 1%
// corruption, i.e. k = 240..460), with and without on-chain privacy.
#include "bench/bench_util.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(49);
  header("Fig. 9 reproduction: prove time vs storage confidence (1% corruption)");

  const std::size_t s = 50;
  // Enough chunks for the largest k (k = 459 at 99%).
  Scenario sc = make_scenario(500 * s * 31, s, rng);
  audit::Prover prover(sc.kp.pk, sc.file, sc.tag);

  std::printf("%12s %6s %18s %18s %12s\n", "confidence", "k", "w/o privacy (ms)",
              "w/ privacy (ms)", "overhead");
  for (double conf : {0.91, 0.93, 0.95, 0.97, 0.99}) {
    std::size_t k = audit::chunks_for_confidence(conf, 0.01);
    audit::Challenge chal = make_challenge(rng, k);
    double t_basic = time_best_ms([&] { (void)prover.prove(chal); });
    double t_priv = time_best_ms([&] { (void)prover.prove_private(chal, rng); });
    std::printf("%11.0f%% %6zu %18.2f %18.2f %11.2fx\n", conf * 100, k, t_basic,
                t_priv, t_priv / t_basic);
  }
  std::printf("\npaper: both curves rise with k (roughly linearly: one more\n"
              "sigma_i^c_i per extra chunk) and the privacy line sits a small\n"
              "constant above (15->45 ms band). shape check: same here.\n");
  return 0;
}
