// Byzantine strategy zoo: econ incentive verdicts (model) next to measured
// detection/profit counters from an adversarial NetworkSim run.
//
// For every strategy in src/attack the incentive DP (econ/incentives.hpp)
// answers "is this attack profitable under the contract's reward / penalty /
// slash schedule?", sweeps the detection x penalty grid for the break-even
// penalty, and a small end-to-end simulation measures what the audit protocol
// actually detected and what the attacker actually earned. Everything is
// seeded and deterministic, so the emitted BENCH_attack.json is a committed
// artifact: the verdict table under reproduction, not a timing.
//
// Plain main() program (no google-benchmark dependency) so CI's bench-smoke
// step can always build and run it. Usage: bench_attack [--out FILE]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "econ/incentives.hpp"
#include "sim/network_sim.hpp"

using namespace dsaudit;

namespace {

struct StrategyCase {
  const char* name;
  std::shared_ptr<const attack::AdversaryStrategy> strategy;
  econ::IncentiveParams model;
  const char* mapping;  // how the strategy maps onto the model knobs
};

sim::NetworkConfig bench_config() {
  sim::NetworkConfig cfg;
  cfg.num_owners = 2;
  cfg.num_providers = 3;
  cfg.file_bytes = 400;
  cfg.s = 4;
  cfg.erasure_data = 2;
  cfg.erasure_parity = 1;
  cfg.num_audits = 4;
  cfg.challenged_chunks = 4;
  cfg.private_proofs = true;  // grinding needs the randomized proof shape
  cfg.batched_settlement = true;
  cfg.settlement_window_s = 2 * cfg.audit_period_s;  // replay across windows
  cfg.timeout_retry_limit = 1;
  cfg.slash_after_consecutive = 2;
  cfg.reward_per_audit = 10;
  cfg.penalty_per_fail = 25;
  cfg.rng_seed = 0xA77AC4;
  return cfg;
}

struct Measured {
  std::uint64_t attempted = 0, detected = 0, slashed = 0, replays = 0;
  std::int64_t profit = 0;
};

Measured run_measured(
    const std::shared_ptr<const attack::AdversaryStrategy>& strategy) {
  sim::NetworkSim net(bench_config());
  for (std::size_t p = 0; p < bench_config().num_providers; ++p) {
    net.set_adversary(p, strategy);
  }
  net.deploy();
  net.run_to_completion();
  net.check_invariants();  // conservation + bisection + replay safety
  const sim::NetworkStats st = net.stats();
  return Measured{st.attacks_attempted, st.attacks_detected,
                  st.attacks_slashed, st.seed_replays_attempted,
                  st.attacker_profit};
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_attack.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
  }

  // The model horizon: a longer contract than the measured mini-sim so the
  // slash dynamics have room; terms match the sim's reward/penalty ratio.
  econ::IncentiveParams base;
  base.num_audits = 32;
  base.slash_after = 2;
  base.reward_per_audit = 10;
  base.penalty_per_fail = 25;
  base.cost_per_round = 2;
  base.saving_per_cheat = 2;

  const double kDetectionGrid[] = {0.10, 0.25, 0.50, 0.75, 1.00};
  const double kPenaltyGrid[] = {0, 5, 10, 20, 25, 40, 80};

  std::vector<StrategyCase> cases;
  {
    // Partial storage: stores 60% of chunks, always answers; detection is
    // the exact hypergeometric hit probability of a 4-of-32 challenge.
    econ::IncentiveParams m = base;
    m.cheat_prob = 1.0;
    m.detection_prob = econ::partial_storage_detection(0.60, 4, 32);
    m.saving_per_cheat = 0.40 * base.cost_per_round;
    cases.push_back(
        {"partial-storage",
         std::make_shared<attack::PartialStorageStrategy>(7, 600, true), m,
         "q=1, d=1-C(0.6n,k)/C(n,k), saving=40% of cost"});
  }
  {
    // Colluding ring: strikes on 50% of challenges; a corrupted proof never
    // verifies, so detection is certain per strike.
    econ::IncentiveParams m = base;
    m.cheat_prob = 0.5;
    m.detection_prob = 1.0;
    cases.push_back({"colluding",
                     std::make_shared<attack::ColludingStrategy>(11, 500), m,
                     "q=0.5 (ring strike rate), d=1"});
  }
  {
    // Selective responder: cheats every round of sub-threshold contracts.
    // The model prices exactly those contracts (premium ones are honest).
    econ::IncentiveParams m = base;
    m.cheat_prob = 1.0;
    m.detection_prob = 1.0;
    cases.push_back(
        {"selective",
         std::make_shared<attack::SelectiveStrategy>(13, 60, 1000), m,
         "q=1 on sub-threshold contracts, d=1"});
  }
  {
    // Seed grinding: the replay registry refuses every reused weight seed,
    // so grinding degenerates to honest proving — cheat_prob 0.
    econ::IncentiveParams m = base;
    m.cheat_prob = 0.0;
    m.detection_prob = 1.0;
    m.saving_per_cheat = 0;
    cases.push_back({"seed-grinding",
                     std::make_shared<attack::SeedGrindingStrategy>(17, 3), m,
                     "q=0: registry neutralizes the attack"});
  }
  {
    // Malformed bytes: 50% strike rate; the typed decode boundary rejects
    // every corrupted encoding, so detection is certain.
    econ::IncentiveParams m = base;
    m.cheat_prob = 0.5;
    m.detection_prob = 1.0;
    cases.push_back(
        {"malformed-bytes",
         std::make_shared<attack::MalformedBytesStrategy>(19, 500), m,
         "q=0.5, d=1 (typed decode rejection)"});
  }

  std::printf("Byzantine strategy zoo: econ verdicts\n");
  std::printf("model horizon: %llu audits, slash after %llu consecutive, "
              "reward %.0f, penalty %.0f, cost/round %.1f\n\n",
              static_cast<unsigned long long>(base.num_audits),
              static_cast<unsigned long long>(base.slash_after),
              base.reward_per_audit, base.penalty_per_fail,
              base.cost_per_round);
  std::printf("%-16s %-10s %-12s %-10s %-10s %-10s | %-9s %-9s %-8s %-8s\n",
              "strategy", "E[adv]", "E[honest]", "advantage", "P[slash]",
              "verdict", "attacked", "detected", "slashed", "profit");

  std::string json = "{\n  \"bench\": \"attack\",\n  \"strategies\": [";
  bool first = true;
  for (const auto& c : cases) {
    const econ::IncentiveOutcome model = econ::evaluate(c.model);
    const double break_even =
        econ::break_even_penalty(c.model, kPenaltyGrid);
    const Measured meas = run_measured(c.strategy);
    std::printf(
        "%-16s %-10.1f %-12.1f %-10.1f %-10.3f %-10s | %-9llu %-9llu "
        "%-8llu %-8lld\n",
        c.name, model.adversary_profit, model.honest_profit, model.advantage,
        model.slash_probability, model.deterred ? "DETERRED" : "PROFITABLE",
        static_cast<unsigned long long>(meas.attempted),
        static_cast<unsigned long long>(meas.detected),
        static_cast<unsigned long long>(meas.slashed),
        static_cast<long long>(meas.profit));
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"strategy\": \"%s\", \"mapping\": \"%s\",\n"
        "     \"model\": {\"cheat_prob\": %.3f, \"detection_prob\": %.3f,\n"
        "       \"adversary_profit\": %.2f, \"honest_profit\": %.2f, "
        "\"advantage\": %.2f,\n"
        "       \"slash_probability\": %.4f, \"expected_misses\": %.2f,\n"
        "       \"deterred\": %s, \"break_even_penalty\": %.1f},\n"
        "     \"measured\": {\"attacks_attempted\": %llu, "
        "\"attacks_detected\": %llu,\n"
        "       \"contracts_slashed\": %llu, \"seed_replays_attempted\": "
        "%llu, \"attacker_profit\": %lld}}",
        first ? "" : ",", c.name, c.mapping, c.model.cheat_prob,
        c.model.detection_prob, model.adversary_profit, model.honest_profit,
        model.advantage, model.slash_probability, model.expected_misses,
        model.deterred ? "true" : "false", break_even,
        static_cast<unsigned long long>(meas.attempted),
        static_cast<unsigned long long>(meas.detected),
        static_cast<unsigned long long>(meas.slashed),
        static_cast<unsigned long long>(meas.replays),
        static_cast<long long>(meas.profit));
    json += buf;
    first = false;
  }
  json += "\n  ],\n  \"penalty_sweep\": [";

  // The grid: advantage of the always-cheat strategy per (detection,
  // penalty) point — where does the protocol's detection power price
  // cheating out of the market?
  econ::IncentiveParams grid_base = base;
  grid_base.cheat_prob = 1.0;
  const auto rows = econ::sweep(grid_base, kDetectionGrid, kPenaltyGrid);
  std::printf("\nalways-cheat advantage over honest, by detection x penalty "
              "(negative = deterred):\n%-10s", "d \\ pen");
  for (double p : kPenaltyGrid) std::printf("%9.0f", p);
  std::printf("\n");
  std::size_t r = 0;
  first = true;
  for (double d : kDetectionGrid) {
    std::printf("%-10.2f", d);
    for (double p : kPenaltyGrid) {
      (void)p;
      const auto& row = rows[r++];
      std::printf("%9.1f", row.outcome.advantage);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s\n    {\"detection\": %.2f, \"penalty\": %.0f, "
                    "\"advantage\": %.2f, \"deterred\": %s}",
                    first ? "" : ",", row.detection_prob, row.penalty_per_fail,
                    row.outcome.advantage,
                    row.outcome.deterred ? "true" : "false");
      json += buf;
      first = false;
    }
    std::printf("\n");
  }
  json += "\n  ]\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
