// Table II: SNARK-based strawman vs the main HLA+KZG solution.
//
// Strawman column: the R1CS constraint count comes from the real Merkle
// circuit shape; time/size figures come from the Table II-calibrated Groth16
// cost model (see DESIGN.md substitutions) — the real Merkle logic is also
// executed and timed for reference.
// Main column: everything is actually executed; the 1 GB preprocessing time
// is extrapolated from a measured 8 MiB run (tag generation is per-chunk
// linear in file size).
#include "audit/serialize.hpp"
#include "bench/bench_util.hpp"
#include "strawman/strawman_audit.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(42);
  header("Table II reproduction: strawman vs main solution");

  // ---------------- Strawman on the paper's 1 KB file ----------------------
  std::vector<std::uint8_t> small(1024);
  rng.fill(small);
  strawman::StrawmanAuditor sim(small);
  const auto& model = sim.cost_model();
  std::size_t constraints = sim.circuit().constraints;

  double merkle_prove_ms = time_best_ms([&] {
    auto proof = sim.prove(sim.challenge_leaf(7));
    (void)proof;
  });
  double merkle_verify_ms = time_best_ms([&] {
    auto proof = sim.prove(sim.challenge_leaf(7));
    if (!strawman::StrawmanAuditor::verify(sim.root(), proof)) std::abort();
  });

  // ---------------- Main protocol, s = 50, k = 300 ------------------------
  const std::size_t s = 50;
  const std::size_t sample_bytes = 8 * 1024 * 1024;  // measured slice
  auto t0 = Clock::now();
  Scenario sc = make_scenario(sample_bytes, s, rng, 4);
  double pre_ms_sample = ms_since(t0);
  double pre_s_1gb = pre_ms_sample / 1000.0 * (1024.0 * 1024 * 1024 / sample_bytes);

  audit::Prover prover(sc.kp.pk, sc.file, sc.tag);
  audit::Challenge chal = make_challenge(rng, 300);
  audit::ProofPrivate proof;
  double prove_ms = time_best_ms([&] { proof = prover.prove_private(chal, rng); });
  auto wire = audit::serialize(proof);
  double verify_ms = time_best_ms([&] {
    if (!audit::verify_private(sc.kp.pk, sc.name, sc.file.num_chunks(), chal,
                               proof)) {
      std::abort();
    }
  });
  std::size_t param_bytes = sc.kp.pk.serialized_size(true);
  // Prover working set while answering a challenge: the k challenged chunks'
  // coefficients, their authenticators, the SRS powers and the aggregation
  // buffers (the file itself streams from disk chunk by chunk).
  std::size_t prover_mem = 300 * s * 32        // challenged chunk data
                           + 300 * sizeof(curve::G1)  // their sigmas
                           + sc.kp.pk.g1_alpha_powers.size() * sizeof(curve::G1) +
                           2 * s * 32;  // P_k and quotient coefficients

  std::printf("\n%-28s %-26s %-26s\n", "", "Strawman (1 KB file)", "Main (1 GB file, s=50)");
  std::printf("%-28s %-26s %-26s\n", "----------------------------",
              "--------------------------", "--------------------------");
  std::printf("%-28s %-26s %-26s\n", "paper: pre-process", "260 s", "~120 s");
  std::printf("%-28s %-9.0f s (model)      %.0f s (measured 8 MiB x %.0f)\n",
              "ours:  pre-process", model.setup_ms(constraints) / 1000.0,
              pre_s_1gb, 1024.0 * 1024 * 1024 / sample_bytes);
  std::printf("%-28s %-26s %-26s\n", "paper: param size", "150 MB", "~5 KB");
  std::printf("%-28s %-9.0f MB (model)     %zu bytes (exact)\n",
              "ours:  param size",
              model.params_bytes(constraints) / 1024 / 1024, param_bytes);
  std::printf("%-28s %-26s %-26s\n", "paper: # constraints", "3x10^5", "-");
  std::printf("%-28s %-26zu %-26s\n", "ours:  # constraints", constraints, "-");
  std::printf("%-28s %-26s %-26s\n", "paper: proof generation", "30 s", "46 ms");
  std::printf("%-28s %-9.0f s (model)      %.1f ms (measured)\n",
              "ours:  proof generation", model.prove_ms(constraints) / 1000.0,
              prove_ms);
  std::printf("       (real Merkle open:    %.3f ms)\n", merkle_prove_ms);
  std::printf("%-28s %-26s %-26s\n", "paper: prover memory", "~300 MB", "3 MB");
  std::printf("%-28s %-9.0f MB (model)     %.1f MB (working set)\n",
              "ours:  prover memory", model.memory_bytes(constraints) / 1024 / 1024,
              prover_mem / 1024.0 / 1024.0);
  std::printf("%-28s %-26s %-26s\n", "paper: proof size", "384 bytes", "288 bytes");
  std::printf("%-28s %-9zu bytes          %zu bytes (exact)\n",
              "ours:  proof size", model.proof_bytes, wire.size());
  std::printf("%-28s %-26s %-26s\n", "paper: verification", "30 ms", "7 ms");
  std::printf("%-28s %-9.0f ms (model)     %.1f ms (measured)\n",
              "ours:  verification", model.verify_ms, verify_ms);
  std::printf("       (real Merkle check:   %.3f ms)\n", merkle_verify_ms);

  std::printf("\nshape check: main wins pre-process (file 10^6 x larger, similar time),\n"
              "proof generation (ms vs tens of s), params (KB vs 100s of MB);\n"
              "both proofs are O(100) bytes with main's 288 < strawman's 384.\n");
  return 0;
}
