// Fig. 5: gas cost as a function of extrapolated verification time, for the
// 96-byte (w/o privacy) and 288-byte (w/ privacy) proofs, using the paper's
// own gas-extrapolation methodology; plus our actually-measured verification
// times placed on the same curve.
#include "bench/bench_util.hpp"
#include "chain/gas.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(45);
  header("Fig. 5 reproduction: gas cost vs extrapolated verification time");

  chain::GasSchedule gas = chain::GasSchedule::calibrated();
  std::printf("calibration anchor: 288 B proof @ 7.2 ms = %llu gas (paper: 589,000)\n\n",
              static_cast<unsigned long long>(gas.audit_tx_gas(288, 48, 7.2)));

  std::printf("%14s %26s %26s\n", "verify (ms)", "w/o privacy 96 B (Mgas)",
              "w/ privacy 288 B (Mgas)");
  for (double ms : {5.0, 6.0, 7.0, 8.0, 9.0}) {
    std::printf("%14.1f %26.3f %26.3f\n", ms,
                gas.audit_tx_gas(96, 48, ms) / 1e6,
                gas.audit_tx_gas(288, 48, ms) / 1e6);
  }

  // Our measured verification times on this machine, same extrapolation.
  Scenario sc = make_scenario(512 * 1024, 50, rng);
  audit::Prover prover(sc.kp.pk, sc.file, sc.tag);
  audit::Challenge chal = make_challenge(rng, 300);
  auto basic = prover.prove(chal);
  auto priv = prover.prove_private(chal, rng);
  double t_basic = time_best_ms([&] {
    if (!audit::verify(sc.kp.pk, sc.name, sc.file.num_chunks(), chal, basic))
      std::abort();
  });
  double t_priv = time_best_ms([&] {
    if (!audit::verify_private(sc.kp.pk, sc.name, sc.file.num_chunks(), chal, priv))
      std::abort();
  });
  std::printf("\nmeasured on this machine (k = 300):\n");
  std::printf("  w/o privacy: %6.1f ms -> %.3f Mgas\n", t_basic,
              gas.audit_tx_gas(96, 48, t_basic) / 1e6);
  std::printf("  w/  privacy: %6.1f ms -> %.3f Mgas\n", t_priv,
              gas.audit_tx_gas(288, 48, t_priv) / 1e6);
  std::printf("\nshape check: both lines linear in verification time with slope\n"
              "%.0f gas/ms; privacy costs a constant %llu extra calldata gas.\n",
              gas.verify_gas_per_ms,
              static_cast<unsigned long long>((288 - 96) * 16));
  return 0;
}
