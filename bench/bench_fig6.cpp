// Fig. 6: estimated auditing fees vs contract duration, daily vs weekly
// auditing, at the paper's April-2020 price anchors (5 Gwei, 143 USD/ETH).
#include "bench/bench_util.hpp"
#include "econ/cost_model.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  header("Fig. 6 reproduction: auditing fees vs contract duration");
  econ::AuditCostModel model;  // paper operating point: 589k gas + beacon
  std::printf("per-audit: %llu gas = %.3f USD (+%.2f USD beacon)\n\n",
              static_cast<unsigned long long>(model.gas_per_audit()),
              model.price.usd(model.gas_per_audit()), model.beacon_usd_per_round);

  std::printf("%16s %20s %20s\n", "duration (days)", "daily auditing ($)",
              "weekly auditing ($)");
  for (unsigned days : {30u, 90u, 180u, 360u, 720u, 1800u}) {
    std::printf("%16u %20.2f %20.2f\n", days,
                econ::contract_fee_usd(model, days, 1.0),
                econ::contract_fee_usd(model, days, 1.0 / 7.0));
  }
  std::printf("\nshape check: linear in duration; daily/weekly ratio = 7; a daily\n"
              "360-day contract lands near commodity cloud pricing (~$150/yr,\n"
              "the paper's Dropbox Business anchor), matching Fig. 6's message.\n");
  return 0;
}
