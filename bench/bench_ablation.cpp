// Ablation benches for the design choices DESIGN.md calls out:
//   A1  Pippenger MSM vs naive per-point scalar multiplication
//   A2  shared-final-exponentiation multi-pairing vs separate pairings
//   A3  batch verification vs one-by-one (the §VII-D batching claim)
//   A4  the s-parameter's provider storage overhead (paper: extra storage
//       is 1/s of the file)
//   A5  GT compression: 288-byte vs 480-byte private proofs, and the
//       decompression cost it buys
#include "audit/serialize.hpp"
#include "bench/bench_util.hpp"
#include "pairing/pairing.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(60);
  header("Ablation A1: Pippenger MSM vs naive scalar-mul-and-add");
  {
    std::vector<curve::G1> pts;
    std::vector<ff::Fr> sc;
    for (int i = 0; i < 300; ++i) {
      pts.push_back(curve::g1_random(rng));
      sc.push_back(ff::Fr::random(rng));
    }
    double t_msm = time_best_ms([&] { (void)curve::msm<curve::G1>(pts, sc); });
    double t_naive = time_best_ms([&] {
      curve::G1 acc = curve::G1::infinity();
      for (int i = 0; i < 300; ++i) acc += pts[i].mul(sc[i]);
      (void)acc;
    });
    std::printf("n=300: naive %.1f ms, Pippenger %.1f ms  (%.1fx)\n", t_naive,
                t_msm, t_naive / t_msm);
  }

  header("Ablation A2: multi-pairing (shared final exp) vs separate pairings");
  {
    std::vector<std::pair<curve::G1, curve::G2>> pairs;
    for (int i = 0; i < 4; ++i) {
      pairs.emplace_back(curve::g1_random(rng), curve::g2_random(rng));
    }
    double t_multi = time_best_ms([&] { (void)pairing::multi_pairing(pairs); });
    double t_sep = time_best_ms([&] {
      ff::Fp12 acc = ff::Fp12::one();
      for (const auto& [p, q] : pairs) acc *= pairing::pairing(p, q);
      (void)acc;
    });
    std::printf("4 pairings: separate %.1f ms, multi %.1f ms  (%.1fx)\n", t_sep,
                t_multi, t_sep / t_multi);
  }

  header("Ablation A3: batch verification vs one-by-one (Eq. 1 instances)");
  {
    Scenario sc = make_scenario(64 * 31 * 20, 20, rng);
    audit::Prover prover(sc.kp.pk, sc.file, sc.tag);
    std::vector<audit::BasicInstance> instances;
    for (int i = 0; i < 8; ++i) {
      audit::BasicInstance inst;
      inst.name = sc.name;
      inst.num_chunks = sc.file.num_chunks();
      inst.challenge = make_challenge(rng, 10);
      inst.proof = prover.prove(inst.challenge);
      instances.push_back(inst);
    }
    double t_batch = time_best_ms([&] {
      if (!audit::verify_batch(sc.kp.pk, instances, rng)) std::abort();
    }, 2);
    double t_each = time_best_ms([&] {
      for (const auto& inst : instances) {
        if (!audit::verify(sc.kp.pk, inst.name, inst.num_chunks, inst.challenge,
                           inst.proof)) {
          std::abort();
        }
      }
    }, 2);
    std::printf("8 audits: one-by-one %.1f ms, batched %.1f ms  (%.1fx)\n",
                t_each, t_batch, t_each / t_batch);
  }

  header("Ablation A4: provider storage overhead vs s (paper: 1/s of file)");
  {
    const std::size_t file_bytes = 310000;
    std::printf("%6s %18s %16s\n", "s", "tag bytes", "fraction of file");
    for (std::size_t s : {1u, 10u, 50u, 100u}) {
      auto file = storage::encode_file(std::vector<std::uint8_t>(file_bytes, 7), s);
      // One 32-byte compressed sigma per chunk.
      std::size_t tag_bytes = 48 + 32 * file.num_chunks();
      std::printf("%6zu %18zu %15.4f%%\n", s, tag_bytes,
                  100.0 * tag_bytes / file_bytes);
    }
  }

  header("Ablation A5: GT compression (the 288-byte proof)");
  {
    Scenario sc = make_scenario(31 * 10 * 40, 10, rng);
    audit::Prover prover(sc.kp.pk, sc.file, sc.tag);
    auto proof = prover.prove_private(make_challenge(rng, 10), rng);
    auto wire = audit::serialize(proof);
    std::size_t uncompressed = 32 + 32 + 32 + 12 * 32;  // raw Fp12 for R
    double t_comp = time_best_ms([&] { (void)audit::gt_compress(proof.big_r); });
    auto bytes = audit::gt_compress(proof.big_r);
    double t_decomp = time_best_ms([&] {
      if (!audit::gt_decompress(bytes)) std::abort();
    });
    std::printf("proof: %zu B compressed vs %zu B raw (-%zu B calldata "
                "= %llu gas/audit saved)\n",
                wire.size(), uncompressed, uncompressed - wire.size(),
                static_cast<unsigned long long>((uncompressed - wire.size()) * 16));
    std::printf("cost: compress %.3f ms (prover), decompress %.2f ms "
                "(Fp6 Tonelli-Shanks, verifier side)\n", t_comp, t_decomp);
  }
  return 0;
}
