// Batched-settlement throughput: rounds/sec at batch sizes 1 / 8 / 64
// against the unbatched prepared-verifier path, for both proof shapes.
//
// Plain main() program (no google-benchmark dependency) so CI's bench-smoke
// step can always build and run it; emits BENCH_settlement.json recording
// the perf trajectory. Usage: bench_settlement [--out FILE] [--reps N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "audit/protocol.hpp"
#include "econ/cost_model.hpp"
#include "storage/codec.hpp"

using namespace dsaudit;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double ms_per_round(Clock::time_point t0, int reps, std::size_t rounds) {
  return ms_since(t0) / reps / static_cast<double>(rounds);
}

struct Shape {
  const char* label;
  bool private_proofs;
  double unbatched_ms = 0;
  struct Row {
    std::size_t size;
    double ms_per_round;
  };
  std::vector<Row> rows;
};

audit::Challenge challenge_from(primitives::SecureRng& rng, std::size_t k) {
  audit::Challenge c;
  c.c1 = rng.bytes32();
  c.c2 = rng.bytes32();
  c.r = audit::Fr::random(rng);
  c.k = k;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_settlement.json";
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
    if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) reps = std::atoi(argv[++i]);
  }

  // One provider-held file: 64 chunks, s = 10, k = 8 challenged chunks per
  // round (the simulator's population-scale operating point, where pairings
  // rather than the chi MSM dominate a round).
  constexpr std::size_t kS = 10, kChunks = 64, kK = 8;
  auto rng = primitives::SecureRng::deterministic(4242);
  auto kp = audit::keygen(kS, rng);
  std::vector<std::uint8_t> data(kChunks * kS * 31);
  rng.fill(data);
  auto file = storage::encode_file(data, kS);
  audit::Fr name = audit::Fr::random(rng);
  auto tag = audit::generate_tags(kp.sk, kp.pk, file, name);
  audit::Prover prover(kp.pk, file, tag, /*prepare_psi=*/true,
                       /*prepare_sigma=*/true);
  audit::Verifier verifier(kp.pk);
  audit::PreparedFile ctx = audit::prepare_file(name, file.num_chunks());

  const std::size_t sizes[] = {1, 8, 64};
  Shape shapes[] = {{"basic", false}, {"private", true}};

  for (Shape& shape : shapes) {
    // Pre-generate 64 distinct rounds.
    std::vector<audit::SettlementInstance> pool(64);
    for (auto& inst : pool) {
      inst.verifier = &verifier;
      inst.file = &ctx;
      inst.challenge = challenge_from(rng, kK);
      if (shape.private_proofs) {
        inst.priv = prover.prove_private(inst.challenge, rng);
      } else {
        inst.basic = prover.prove(inst.challenge);
      }
    }

    // Unbatched reference: the prepared per-round verifier.
    {
      auto t0 = Clock::now();
      int n = 0;
      for (int r = 0; r < reps; ++r) {
        for (int i = 0; i < 8; ++i, ++n) {
          const auto& inst = pool[i];
          bool ok = shape.private_proofs
                        ? verifier.verify_private(ctx, inst.challenge, *inst.priv)
                        : verifier.verify(ctx, inst.challenge, *inst.basic);
          if (!ok) return std::fprintf(stderr, "unbatched verify failed\n"), 1;
        }
      }
      shape.unbatched_ms = ms_since(t0) / n;
    }

    for (std::size_t size : sizes) {
      std::vector<audit::SettlementInstance> batch(pool.begin(),
                                                   pool.begin() + size);
      auto seed = rng.bytes32();
      auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        if (!audit::verify_settlement(batch, seed).all_ok()) {
          return std::fprintf(stderr, "batch verify failed\n"), 1;
        }
      }
      shape.rows.push_back({size, ms_per_round(t0, reps, size)});
    }
  }

  // Window sweep: a settlement window spanning `window` chain instants of 4
  // due private rounds each settles their union in one flush under one
  // Fiat–Shamir seed — the per-round cost of fattening small blocks.
  constexpr std::size_t kRoundsPerInstant = 4;
  const std::size_t windows[] = {1, 4, 16};
  struct WindowRow {
    std::size_t window;
    std::size_t rounds;
    double ms_per_round;
  };
  std::vector<WindowRow> window_rows;
  {
    std::vector<audit::SettlementInstance> pool(64);
    for (auto& inst : pool) {
      inst.verifier = &verifier;
      inst.file = &ctx;
      inst.challenge = challenge_from(rng, kK);
      inst.priv = prover.prove_private(inst.challenge, rng);
    }
    for (std::size_t window : windows) {
      const std::size_t rounds = kRoundsPerInstant * window;
      std::vector<audit::SettlementInstance> batch(pool.begin(),
                                                   pool.begin() + rounds);
      auto seed = rng.bytes32();
      auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        if (!audit::verify_settlement(batch, seed).all_ok()) {
          return std::fprintf(stderr, "window sweep verify failed\n"), 1;
        }
      }
      window_rows.push_back({window, rounds, ms_per_round(t0, reps, rounds)});
    }
  }

  // Aggregate settle-window tx: the same window sweep, but verification also
  // computes the one aggregated KZG opening that the settle-window tx posts
  // on chain (the measured marginal cost of the extra MSM), and each row
  // prices the tx against the per-round prove tx via the econ model — the
  // chain-footprint trajectory ISSUE 10 gates (bytes and gas per audited
  // round, higher is worse).
  struct AggregateRow {
    std::size_t window;
    std::size_t rounds;
    double ms_per_round;
    double bytes_per_round;
    std::uint64_t gas_per_round;
  };
  std::vector<AggregateRow> aggregate_rows;
  const econ::AuditCostModel cost_model;
  {
    std::vector<audit::SettlementInstance> pool(64);
    for (auto& inst : pool) {
      inst.verifier = &verifier;
      inst.file = &ctx;
      inst.challenge = challenge_from(rng, kK);
      inst.priv = prover.prove_private(inst.challenge, rng);
    }
    audit::SettlementOptions opts;
    opts.compute_aggregate_opening = true;
    for (std::size_t window : windows) {
      const std::size_t rounds = kRoundsPerInstant * window;
      std::vector<audit::SettlementInstance> batch(pool.begin(),
                                                   pool.begin() + rounds);
      auto seed = rng.bytes32();
      auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        if (!audit::verify_settlement(batch, seed, opts).all_ok()) {
          return std::fprintf(stderr, "aggregate sweep verify failed\n"), 1;
        }
      }
      aggregate_rows.push_back(
          {window, rounds, ms_per_round(t0, reps, rounds),
           static_cast<double>(cost_model.aggregate_tx_bytes(rounds)) /
               static_cast<double>(rounds),
           cost_model.gas_per_audit_aggregated(rounds)});
    }
  }

  std::string json = "{\n";
  json += "  \"num_chunks\": " + std::to_string(kChunks) +
          ", \"s\": " + std::to_string(kS) + ", \"k\": " + std::to_string(kK) +
          ",\n";
  for (std::size_t si = 0; si < 2; ++si) {
    const Shape& shape = shapes[si];
    char buf[256];
    std::snprintf(buf, sizeof(buf), "  \"%s\": {\n    \"unbatched_ms_per_round\": %.3f,\n    \"batched\": [",
                  shape.label, shape.unbatched_ms);
    json += buf;
    for (std::size_t i = 0; i < shape.rows.size(); ++i) {
      const auto& row = shape.rows[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n      {\"batch_size\": %zu, \"ms_per_round\": %.3f, "
                    "\"rounds_per_sec\": %.1f}",
                    i ? "," : "", row.size, row.ms_per_round,
                    1000.0 / row.ms_per_round);
      json += buf;
    }
    std::snprintf(buf, sizeof(buf), "\n    ],\n    \"speedup_at_64\": %.2f\n  },\n",
                  shape.unbatched_ms / shape.rows.back().ms_per_round);
    json += buf;
  }
  json += "  \"window_sweep\": {\n    \"shape\": \"private\", \"rounds_per_instant\": " +
          std::to_string(kRoundsPerInstant) + ",\n    \"rows\": [";
  for (std::size_t i = 0; i < window_rows.size(); ++i) {
    const auto& row = window_rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n      {\"window\": %zu, \"rounds\": %zu, "
                  "\"ms_per_round\": %.3f, \"rounds_per_sec\": %.1f}",
                  i ? "," : "", row.window, row.rounds, row.ms_per_round,
                  1000.0 / row.ms_per_round);
    json += buf;
  }
  json += "\n    ]\n  },\n";
  {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "  \"aggregate\": {\n    \"shape\": \"private-aggregate\", "
                  "\"rounds_per_instant\": %zu,\n    \"legacy_bytes_per_round\""
                  ": %zu, \"legacy_gas_per_round\": %llu,\n    \"rows\": [",
                  kRoundsPerInstant, cost_model.proof_bytes,
                  static_cast<unsigned long long>(cost_model.gas_per_audit()));
    json += buf;
    for (std::size_t i = 0; i < aggregate_rows.size(); ++i) {
      const auto& row = aggregate_rows[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n      {\"window\": %zu, \"rounds\": %zu, "
                    "\"ms_per_round\": %.3f, \"bytes_per_round\": %.3f, "
                    "\"gas_per_round\": %llu}",
                    i ? "," : "", row.window, row.rounds, row.ms_per_round,
                    row.bytes_per_round,
                    static_cast<unsigned long long>(row.gas_per_round));
      json += buf;
    }
    const AggregateRow& widest = aggregate_rows.back();
    std::snprintf(buf, sizeof(buf),
                  "\n    ],\n    \"bytes_reduction_at_%zu\": %.1f, "
                  "\"gas_reduction_at_%zu\": %.1f\n  }\n}\n",
                  widest.window,
                  static_cast<double>(cost_model.proof_bytes) /
                      widest.bytes_per_round,
                  widest.window,
                  static_cast<double>(cost_model.gas_per_audit()) /
                      static_cast<double>(widest.gas_per_round));
    json += buf;
  }

  std::fputs(json.c_str(), stdout);
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
