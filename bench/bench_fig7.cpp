// Fig. 7: data-owner pre-processing time for 1 GB as a function of s, with
// and without the s-parameter (s = 1 is the classic per-block HLA scheme).
//
// Tag generation is embarrassingly parallel and strictly linear in the
// number of chunks, so we measure an adaptively-sized slice per s (to keep
// the bench short) and report the exact linear extrapolation to 1 GB,
// alongside throughput in MB/s (paper: 35.31 MB/s at s = 50 on a quad-core).
#include "bench/bench_util.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(47);
  header("Fig. 7 reproduction: owner pre-processing time for 1 GB vs s");
  std::printf("(4 threads, mirroring the paper's quad-core testbed)\n\n");
  std::printf("%6s %14s %14s %16s %14s\n", "s", "slice (MiB)", "slice (s)",
              "1 GB extrap (s)", "MB/s");

  const double kGiB = 1024.0 * 1024 * 1024;
  double t_s50 = 0, t_s1 = 0;
  for (std::size_t s : {1u, 10u, 20u, 30u, 50u, 80u, 100u, 200u, 300u, 500u}) {
    // s = 1 pays one authenticator per 31-byte block — use a small slice.
    std::size_t slice = s == 1 ? 192 * 1024 : 4 * 1024 * 1024;
    std::vector<std::uint8_t> data(slice);
    rng.fill(data);
    audit::KeyPair kp = audit::keygen(s, rng);
    auto file = storage::encode_file(data, s);
    auto name = audit::Fr::random(rng);
    auto t0 = Clock::now();
    auto tag = audit::generate_tags(kp.sk, kp.pk, file, name, 4);
    double ms = ms_since(t0);
    double extrap_s = ms / 1000.0 * (kGiB / slice);
    double mbps = (slice / 1e6) / (ms / 1000.0);
    std::printf("%6zu %14.2f %14.3f %16.0f %14.2f\n", s, slice / 1048576.0,
                ms / 1000.0, extrap_s, mbps);
    if (s == 50) t_s50 = extrap_s;
    if (s == 1) t_s1 = extrap_s;
    if (tag.sigmas.empty()) std::abort();
  }
  std::printf("\npaper: ~120 s at s=50 (35.31 MB/s); s=1 in the thousands of\n"
              "seconds (left axis of Fig. 7). ours: s=50 -> %.0f s; s=1 -> %.0f s;\n"
              "speedup from the s-parameter: %.0fx (paper: ~30x).\n",
              t_s50, t_s1, t_s1 / t_s50);
  std::printf("shape check: time falls steeply from s=1, flattens past s~50 —\n"
              "the hash H(name||i) and the per-chunk exponentiation amortize\n"
              "across s blocks, then Zp work grows linearly and the curve bottoms.\n");
  return 0;
}
