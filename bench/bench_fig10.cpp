// Fig. 10: (left) annual blockchain growth vs user base; (right) a storage
// provider's total proving time per round vs the number of owners storing
// data on it.
//
// The left panel cross-validates the closed-form model against the actual
// discrete-event chain simulator (one simulated day of traffic, scaled up);
// the right panel uses a measured per-proof time on this machine.
#include "bench/bench_util.hpp"
#include "chain/blockchain.hpp"
#include "econ/cost_model.hpp"

using namespace dsaudit;
using namespace dsaudit::benchutil;

int main() {
  auto rng = primitives::SecureRng::deterministic(50);
  header("Fig. 10 (left): annual blockchain growth vs user base");

  econ::ThroughputModel model;
  // Cross-validate the model with the simulator at a small scale: 200 users,
  // one audit each over one simulated day.
  chain::Blockchain bc;
  for (int u = 0; u < 200; ++u) {
    chain::Transaction tx;
    tx.from = "user";
    tx.payload_bytes = model.audit_tx_bytes;
    tx.gas_used = 589000;
    bc.submit(tx);
  }
  bc.advance(86400);
  double sim_bytes_per_user_day =
      static_cast<double>(bc.total_chain_bytes()) / 200.0;
  // Simulator mines (empty) blocks all day; subtract that fixed cost to get
  // the marginal per-tx growth the model prices.
  chain::Blockchain idle;
  idle.advance(86400);
  double marginal =
      (static_cast<double>(bc.total_chain_bytes()) - idle.total_chain_bytes()) / 200.0;

  std::printf("simulator: %.0f B/user/day marginal chain growth (model: %.0f)\n\n",
              marginal,
              model.chain_growth_gb_per_year(1, 1.0) * 1024 * 1024 * 1024 / 365.0);
  (void)sim_bytes_per_user_day;

  std::printf("%12s %22s\n", "user base", "growth (GB/year)");
  for (std::size_t users : {1000u, 2000u, 5000u, 8000u, 10000u}) {
    std::printf("%12zu %22.3f\n", users, model.chain_growth_gb_per_year(users, 1.0));
  }
  std::printf("paper: up to ~1.2 GB/year at 10,000 users — linear, far below\n"
              "mainnet's ~45 GB/year. throughput: %.1f audit-tx/s (paper: ~2).\n",
              model.tx_per_second());

  header("Fig. 10 (right): provider's total prove time vs # users served");
  // Measure one real proof at the paper's operating point (s=50, k=300).
  const std::size_t s = 50;
  Scenario sc = make_scenario(320 * s * 31, s, rng);
  audit::Prover prover(sc.kp.pk, sc.file, sc.tag);
  audit::Challenge chal = make_challenge(rng, 300);
  double per_proof_ms = time_best_ms([&] { (void)prover.prove_private(chal, rng); });

  std::printf("measured per-proof time (s=50, k=300, private): %.1f ms\n\n",
              per_proof_ms);
  std::printf("%12s %24s\n", "# users", "prove-all time (s)");
  for (std::size_t users : {10u, 20u, 50u, 100u, 150u, 300u}) {
    std::printf("%12zu %24.2f\n", users,
                econ::provider_prove_time_s(users, per_proof_ms));
  }
  std::printf("paper: linear, ~20 s at 300 users (~66 ms/proof on their Xeon);\n"
              "ours scales identically with our own per-proof constant.\n");
  return 0;
}
