// Fixed-width 256-bit and 512-bit unsigned integer arithmetic.
//
// These are the workhorse types underneath the Montgomery field arithmetic in
// src/field. They are deliberately simple value types (no dynamic allocation,
// trivially copyable) with explicit carry handling built on the compiler's
// 128-bit integer support.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace dsaudit::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// 256-bit unsigned integer, little-endian limb order (limb[0] is least
/// significant). Arithmetic is modulo 2^256 unless the function reports carry.
struct U256 {
  std::array<u64, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(u64 v) : limb{v, 0, 0, 0} {}
  constexpr U256(u64 l0, u64 l1, u64 l2, u64 l3) : limb{l0, l1, l2, l3} {}

  static U256 zero() { return U256{}; }
  static U256 one() { return U256{1}; }

  /// Parse a hex string (with or without 0x prefix). Throws std::invalid_argument
  /// on malformed input or overflow past 256 bits.
  static U256 from_hex(std::string_view hex);

  /// Parse a decimal string. Throws std::invalid_argument on malformed input.
  static U256 from_dec(std::string_view dec);

  /// 32-byte big-endian encoding (the conventional wire format for field
  /// elements in this library).
  static U256 from_be_bytes(std::span<const std::uint8_t, 32> bytes);
  void to_be_bytes(std::span<std::uint8_t, 32> out) const;

  std::string to_hex() const;
  std::string to_dec() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool is_odd() const { return limb[0] & 1; }
  bool bit(unsigned i) const { return (limb[i / 64] >> (i % 64)) & 1; }

  /// Bits [bit_offset, bit_offset + width) as an integer, width <= 64. Bits
  /// at or past 256 read as zero, so callers can scan fixed-width windows off
  /// the top without clamping. This is the MSM window-digit extractor: one
  /// shift (or two, straddling a limb boundary) instead of `width` bit()
  /// probes.
  u64 extract_window(unsigned bit_offset, unsigned width) const {
    if (bit_offset >= 256 || width == 0) return 0;
    unsigned idx = bit_offset / 64;
    unsigned shift = bit_offset % 64;
    u64 v = limb[idx] >> shift;
    if (shift != 0 && idx + 1 < 4) v |= limb[idx + 1] << (64 - shift);
    u64 mask = width >= 64 ? ~u64{0} : (u64{1} << width) - 1;
    return v & mask;
  }

  /// Number of significant bits (0 for zero).
  unsigned bit_length() const;

  friend bool operator==(const U256& a, const U256& b) = default;
};

// The carry/borrow/compare/shift primitives below are the inner loop of every
// Montgomery field operation, so they live in the header where they inline
// into call sites (measurably faster than out-of-line calls for 4-limb work).

inline int cmp(const U256& a, const U256& b) {  // -1, 0, +1
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

/// a < b, a <= b as unsigned 256-bit integers.
inline bool lt(const U256& a, const U256& b) { return cmp(a, b) < 0; }
inline bool lte(const U256& a, const U256& b) { return cmp(a, b) <= 0; }

/// out = a + b; returns carry-out (0 or 1).
inline u64 add_with_carry(const U256& a, const U256& b, U256& out) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 v = static_cast<u128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<u64>(v);
    carry = v >> 64;
  }
  return static_cast<u64>(carry);
}

/// out = a - b; returns borrow-out (0 or 1).
inline u64 sub_with_borrow(const U256& a, const U256& b, U256& out) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 v = static_cast<u128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<u64>(v);
    borrow = (v >> 64) & 1;  // two's-complement borrow propagates in bit 64
  }
  return static_cast<u64>(borrow);
}

/// (a + b) mod m; requires a, b < m.
inline U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  u64 carry = add_with_carry(a, b, sum);
  if (carry || !lt(sum, m)) {
    U256 reduced;
    sub_with_borrow(sum, m, reduced);
    return reduced;
  }
  return sum;
}

/// (a - b) mod m; requires a, b < m.
inline U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 diff;
  u64 borrow = sub_with_borrow(a, b, diff);
  if (borrow) {
    U256 fixed;
    add_with_carry(diff, m, fixed);
    return fixed;
  }
  return diff;
}

inline U256 shl1(const U256& a) {  // a << 1 (mod 2^256)
  U256 r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    r.limb[i] = (a.limb[i] << 1) | carry;
    carry = a.limb[i] >> 63;
  }
  return r;
}

inline U256 shr1(const U256& a) {  // a >> 1
  U256 r;
  u64 carry = 0;
  for (int i = 3; i >= 0; --i) {
    r.limb[i] = (a.limb[i] >> 1) | (carry << 63);
    carry = a.limb[i] & 1;
  }
  return r;
}

/// 512-bit unsigned integer, little-endian limbs.
struct U512 {
  std::array<u64, 8> limb{};

  bool is_zero() const {
    u64 acc = 0;
    for (u64 l : limb) acc |= l;
    return acc == 0;
  }
  U256 lo() const { return U256{limb[0], limb[1], limb[2], limb[3]}; }
  U256 hi() const { return U256{limb[4], limb[5], limb[6], limb[7]}; }

  friend bool operator==(const U512& a, const U512& b) = default;
};

/// Full 256x256 -> 512 bit product.
U512 mul_wide(const U256& a, const U256& b);

/// Low 256 bits of a * b (the product modulo 2^256) — the lattice-vector
/// accumulation step of the GLV decomposition, where the small results are
/// exact in two's complement even though the intermediate products wrap.
U256 mul_lo(const U256& a, const U256& b);

/// round(a * b / 2^256) = floor((a * b + 2^255) / 2^256): the widening
/// mul-high with rounding used by the GLV Babai-rounding step, where b is a
/// precomputed round(2^256 * v / r) constant.
U256 mul_high_rounded(const U256& a, const U256& b);

// Two's-complement views of U256: the GLV half-scalars come out of the
// lattice subtraction as signed 256-bit values whose magnitudes are small
// (< 2^128); these helpers split them back into (magnitude, sign).

/// Top bit of a, read as the sign of the two's-complement interpretation.
inline bool sign_bit(const U256& a) { return (a.limb[3] >> 63) != 0; }

/// -a modulo 2^256 (two's-complement negation).
inline U256 neg2c(const U256& a) {
  U256 r;
  sub_with_borrow(U256{}, a, r);
  return r;
}

/// Magnitude of the two's-complement interpretation of a; sets `negative` to
/// the sign. abs2c(a).first <= 2^255, and for GLV half-scalars the result is
/// guaranteed < 2^128 (asserted by the decomposition).
inline U256 abs2c(const U256& a, bool& negative) {
  negative = sign_bit(a);
  return negative ? neg2c(a) : a;
}

/// a mod m via binary long division. Slow (bit-by-bit); intended for
/// init-time constant derivation only — hot paths use Montgomery reduction.
U256 mod(const U512& a, const U256& m);

/// (a * b) mod m, via mul_wide + mod. Init-time use only.
U256 mul_mod_slow(const U256& a, const U256& b, const U256& m);

/// a^e mod m by square-and-multiply using the slow modmul. Init-time only.
U256 pow_mod_slow(const U256& a, const U256& e, const U256& m);

/// Modular inverse of a mod m (m odd, gcd(a,m)=1) via the extended binary
/// Euclidean algorithm. Throws std::domain_error if not invertible.
U256 inv_mod(const U256& a, const U256& m);

/// -m^{-1} mod 2^64, for Montgomery reduction (m must be odd).
u64 mont_n0_inv(const U256& m);

}  // namespace dsaudit::bigint
