// Arbitrary-precision unsigned integers for init-time constant derivation.
//
// The pairing and tower-field code needs exponents such as (p^6 - 1)/2^e,
// (p^12 - 1)/r and xi^((p^k - 1)/6) at library-initialization time. Rather
// than hard-coding hundreds of magic limbs (easy to get silently wrong), we
// derive everything from the BN parameter t with this small bignum class and
// cross-check the curve constants. Not used on any hot path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bigint/u256.hpp"

namespace dsaudit::bigint {

/// Little-endian dynamically sized unsigned integer. Normalized: no trailing
/// zero limbs (zero is represented by an empty limb vector).
class VarUInt {
 public:
  VarUInt() = default;
  explicit VarUInt(u64 v);
  explicit VarUInt(const U256& v);

  static VarUInt from_dec(const std::string& dec);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  unsigned bit_length() const;
  bool bit(unsigned i) const;
  std::size_t limb_count() const { return limbs_.size(); }
  u64 limb(std::size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  /// Truncate to the low 256 bits. Throws std::overflow_error if the value
  /// does not fit.
  U256 to_u256() const;
  std::string to_dec() const;

  friend VarUInt operator+(const VarUInt& a, const VarUInt& b);
  /// Requires a >= b; throws std::underflow_error otherwise.
  friend VarUInt operator-(const VarUInt& a, const VarUInt& b);
  friend VarUInt operator*(const VarUInt& a, const VarUInt& b);
  friend bool operator==(const VarUInt& a, const VarUInt& b) = default;

  static int cmp(const VarUInt& a, const VarUInt& b);

  VarUInt shl(unsigned bits) const;
  VarUInt shr(unsigned bits) const;

  /// Quotient and remainder by binary long division (init-time only).
  /// Returns {quotient, remainder}.
  static std::pair<VarUInt, VarUInt> divmod(const VarUInt& a, const VarUInt& b);

  static VarUInt pow(const VarUInt& base, unsigned exp);

 private:
  void normalize();
  std::vector<u64> limbs_;
};

}  // namespace dsaudit::bigint
