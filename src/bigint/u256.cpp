#include "bigint/u256.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsaudit::bigint {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

U256 U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty()) throw std::invalid_argument("U256::from_hex: empty string");
  if (hex.size() > 64) throw std::invalid_argument("U256::from_hex: overflow");
  U256 r;
  unsigned nibble = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, ++nibble) {
    int d = hex_digit(*it);
    if (d < 0) throw std::invalid_argument("U256::from_hex: bad digit");
    r.limb[nibble / 16] |= static_cast<u64>(d) << (4 * (nibble % 16));
  }
  return r;
}

U256 U256::from_dec(std::string_view dec) {
  if (dec.empty()) throw std::invalid_argument("U256::from_dec: empty string");
  U256 r;
  for (char c : dec) {
    if (c < '0' || c > '9') throw std::invalid_argument("U256::from_dec: bad digit");
    // r = r * 10 + digit
    u128 carry = static_cast<u64>(c - '0');
    for (int i = 0; i < 4; ++i) {
      u128 v = static_cast<u128>(r.limb[i]) * 10 + carry;
      r.limb[i] = static_cast<u64>(v);
      carry = v >> 64;
    }
    if (carry != 0) throw std::invalid_argument("U256::from_dec: overflow");
  }
  return r;
}

U256 U256::from_be_bytes(std::span<const std::uint8_t, 32> bytes) {
  U256 r;
  for (int i = 0; i < 32; ++i) {
    r.limb[3 - i / 8] |= static_cast<u64>(bytes[i]) << (8 * (7 - i % 8));
  }
  return r;
}

void U256::to_be_bytes(std::span<std::uint8_t, 32> out) const {
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(limb[3 - i / 8] >> (8 * (7 - i % 8)));
  }
}

std::string U256::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  bool leading = true;
  for (int i = 63; i >= 0; --i) {
    int d = static_cast<int>((limb[i / 16] >> (4 * (i % 16))) & 0xf);
    if (leading && d == 0 && i != 0) continue;
    leading = false;
    s.push_back(digits[d]);
  }
  return s;
}

std::string U256::to_dec() const {
  if (is_zero()) return "0";
  U256 v = *this;
  std::string s;
  while (!v.is_zero()) {
    // divide by 10, collect remainder
    u128 rem = 0;
    for (int i = 3; i >= 0; --i) {
      u128 cur = (rem << 64) | v.limb[i];
      v.limb[i] = static_cast<u64>(cur / 10);
      rem = cur % 10;
    }
    s.push_back(static_cast<char>('0' + static_cast<int>(rem)));
  }
  std::reverse(s.begin(), s.end());
  return s;
}

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) {
      return static_cast<unsigned>(64 * i + 64 - __builtin_clzll(limb[i]));
    }
  }
  return 0;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 v = static_cast<u128>(a.limb[i]) * b.limb[j] + r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<u64>(v);
      carry = v >> 64;
    }
    r.limb[i + 4] = static_cast<u64>(carry);
  }
  return r;
}

U256 mul_lo(const U256& a, const U256& b) {
  U256 r;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; i + j < 4; ++j) {
      u128 v = static_cast<u128>(a.limb[i]) * b.limb[j] + r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<u64>(v);
      carry = v >> 64;
    }
  }
  return r;
}

U256 mul_high_rounded(const U256& a, const U256& b) {
  U512 w = mul_wide(a, b);
  // Add 2^255 to the low half and propagate the carry into the high half.
  u128 carry = (static_cast<u128>(w.limb[3]) + (u64{1} << 63)) >> 64;
  U256 hi = w.hi();
  for (int i = 0; i < 4 && carry; ++i) {
    u128 v = static_cast<u128>(hi.limb[i]) + carry;
    hi.limb[i] = static_cast<u64>(v);
    carry = v >> 64;
  }
  return hi;
}

U256 mod(const U512& a, const U256& m) {
  if (m.is_zero()) throw std::domain_error("mod: division by zero");
  // Binary long division over 512 bits: process from the most significant bit
  // down, maintaining remainder < m. Init-time only, so clarity over speed.
  U256 rem;
  for (int bit = 511; bit >= 0; --bit) {
    // rem = rem*2 + bit; top bit of rem is always 0 before the shift because
    // rem < m < 2^256, but guard anyway via carry-aware compare.
    u64 top = rem.limb[3] >> 63;
    rem = shl1(rem);
    if ((a.limb[bit / 64] >> (bit % 64)) & 1) rem.limb[0] |= 1;
    if (top || !lt(rem, m)) {
      U256 t;
      sub_with_borrow(rem, m, t);
      rem = t;
    }
  }
  return rem;
}

U256 mul_mod_slow(const U256& a, const U256& b, const U256& m) {
  return mod(mul_wide(a, b), m);
}

U256 pow_mod_slow(const U256& a, const U256& e, const U256& m) {
  U256 base = mod(U512{{a.limb[0], a.limb[1], a.limb[2], a.limb[3], 0, 0, 0, 0}}, m);
  U256 result{1};
  result = mod(U512{{1, 0, 0, 0, 0, 0, 0, 0}}, m);  // handles m == 1
  unsigned nbits = e.bit_length();
  for (unsigned i = 0; i < nbits; ++i) {
    if (e.bit(i)) result = mul_mod_slow(result, base, m);
    base = mul_mod_slow(base, base, m);
  }
  return result;
}

U256 inv_mod(const U256& a, const U256& m) {
  if (a.is_zero()) throw std::domain_error("inv_mod: zero has no inverse");
  if (!m.is_odd()) throw std::domain_error("inv_mod: modulus must be odd");
  // Extended binary GCD (classic almost-inverse-free variant):
  // maintain u*a ≡ x (mod m), v*a ≡ y (mod m) with gcd tracking.
  U256 x = a, y = m;
  U256 u{1}, v{0};
  while (!x.is_zero()) {
    while (!x.is_odd()) {
      x = shr1(x);
      if (u.is_odd()) {
        U256 t;
        u64 carry = add_with_carry(u, m, t);
        u = shr1(t);
        if (carry) u.limb[3] |= 0x8000000000000000ULL;
      } else {
        u = shr1(u);
      }
    }
    while (!y.is_odd()) {
      y = shr1(y);
      if (v.is_odd()) {
        U256 t;
        u64 carry = add_with_carry(v, m, t);
        v = shr1(t);
        if (carry) v.limb[3] |= 0x8000000000000000ULL;
      } else {
        v = shr1(v);
      }
    }
    if (!lt(x, y)) {
      x = sub_mod(x, y, m);
      u = sub_mod(u, v, m);
    } else {
      y = sub_mod(y, x, m);
      v = sub_mod(v, u, m);
    }
  }
  if (!(y == U256{1})) throw std::domain_error("inv_mod: not invertible");
  return v;
}

u64 mont_n0_inv(const U256& m) {
  if (!m.is_odd()) throw std::domain_error("mont_n0_inv: modulus must be odd");
  // Newton iteration: inv *= 2 - m*inv doubles correct bits each round.
  u64 m0 = m.limb[0];
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;
  return ~inv + 1;  // -inv mod 2^64
}

}  // namespace dsaudit::bigint
