#include "bigint/varuint.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsaudit::bigint {

VarUInt::VarUInt(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

VarUInt::VarUInt(const U256& v) {
  limbs_.assign(v.limb.begin(), v.limb.end());
  normalize();
}

VarUInt VarUInt::from_dec(const std::string& dec) {
  VarUInt r;
  for (char c : dec) {
    if (c < '0' || c > '9') throw std::invalid_argument("VarUInt::from_dec: bad digit");
    r = r * VarUInt{10} + VarUInt{static_cast<u64>(c - '0')};
  }
  return r;
}

void VarUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

unsigned VarUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return static_cast<unsigned>(64 * (limbs_.size() - 1) + 64 -
                               __builtin_clzll(limbs_.back()));
}

bool VarUInt::bit(unsigned i) const {
  std::size_t w = i / 64;
  if (w >= limbs_.size()) return false;
  return (limbs_[w] >> (i % 64)) & 1;
}

U256 VarUInt::to_u256() const {
  if (limbs_.size() > 4) throw std::overflow_error("VarUInt::to_u256: too large");
  U256 r;
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limb[i] = limbs_[i];
  return r;
}

std::string VarUInt::to_dec() const {
  if (is_zero()) return "0";
  VarUInt v = *this;
  VarUInt ten{10};
  std::string s;
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, ten);
    s.push_back(static_cast<char>('0' + (r.is_zero() ? 0 : r.limbs_[0])));
    v = q;
  }
  std::reverse(s.begin(), s.end());
  return s;
}

int VarUInt::cmp(const VarUInt& a, const VarUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

VarUInt operator+(const VarUInt& a, const VarUInt& b) {
  VarUInt r;
  std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.resize(n);
  u128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 v = carry + a.limb(i) + b.limb(i);
    r.limbs_[i] = static_cast<u64>(v);
    carry = v >> 64;
  }
  if (carry) r.limbs_.push_back(static_cast<u64>(carry));
  r.normalize();
  return r;
}

VarUInt operator-(const VarUInt& a, const VarUInt& b) {
  if (VarUInt::cmp(a, b) < 0) throw std::underflow_error("VarUInt: negative result");
  VarUInt r;
  r.limbs_.resize(a.limbs_.size());
  u128 borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 v = static_cast<u128>(a.limb(i)) - b.limb(i) - borrow;
    r.limbs_[i] = static_cast<u64>(v);
    borrow = (v >> 64) & 1;
  }
  r.normalize();
  return r;
}

VarUInt operator*(const VarUInt& a, const VarUInt& b) {
  if (a.is_zero() || b.is_zero()) return {};
  VarUInt r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 v = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<u64>(v);
      carry = v >> 64;
    }
    r.limbs_[i + b.limbs_.size()] += static_cast<u64>(carry);
  }
  r.normalize();
  return r;
}

VarUInt VarUInt::shl(unsigned bits) const {
  if (is_zero()) return {};
  unsigned words = bits / 64, rem = bits % 64;
  VarUInt r;
  r.limbs_.assign(limbs_.size() + words + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + words] |= rem ? (limbs_[i] << rem) : limbs_[i];
    if (rem) r.limbs_[i + words + 1] |= limbs_[i] >> (64 - rem);
  }
  r.normalize();
  return r;
}

VarUInt VarUInt::shr(unsigned bits) const {
  unsigned words = bits / 64, rem = bits % 64;
  if (words >= limbs_.size()) return {};
  VarUInt r;
  r.limbs_.assign(limbs_.size() - words, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = rem ? (limbs_[i + words] >> rem) : limbs_[i + words];
    if (rem && i + words + 1 < limbs_.size()) {
      r.limbs_[i] |= limbs_[i + words + 1] << (64 - rem);
    }
  }
  r.normalize();
  return r;
}

std::pair<VarUInt, VarUInt> VarUInt::divmod(const VarUInt& a, const VarUInt& b) {
  if (b.is_zero()) throw std::domain_error("VarUInt::divmod: division by zero");
  if (cmp(a, b) < 0) return {{}, a};
  unsigned shift = a.bit_length() - b.bit_length();
  VarUInt rem = a;
  VarUInt quot;
  quot.limbs_.assign(shift / 64 + 1, 0);
  VarUInt d = b.shl(shift);
  for (int i = static_cast<int>(shift); i >= 0; --i) {
    if (cmp(rem, d) >= 0) {
      rem = rem - d;
      quot.limbs_[i / 64] |= 1ULL << (i % 64);
    }
    d = d.shr(1);
  }
  quot.normalize();
  return {quot, rem};
}

VarUInt VarUInt::pow(const VarUInt& base, unsigned exp) {
  VarUInt r{1};
  for (unsigned i = 0; i < exp; ++i) r = r * base;
  return r;
}

}  // namespace dsaudit::bigint
