// GF(2^8) arithmetic with log/antilog tables (polynomial x^8+x^4+x^3+x^2+1,
// generator 2) — the little field underneath Reed–Solomon erasure coding.
#pragma once

#include <array>
#include <cstdint>

namespace dsaudit::storage {

class Gf256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);  // throws on b == 0
  static std::uint8_t inv(std::uint8_t a);                  // throws on a == 0
  static std::uint8_t pow(std::uint8_t base, unsigned e);

 private:
  struct Tables {
    std::array<std::uint8_t, 256> log;
    std::array<std::uint8_t, 512> exp;  // doubled to skip a mod 255
  };
  static const Tables& tables();
};

}  // namespace dsaudit::storage
