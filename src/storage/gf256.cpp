#include "storage/gf256.hpp"

#include <stdexcept>

namespace dsaudit::storage {

const Gf256::Tables& Gf256::tables() {
  static const Tables t = [] {
    Tables t{};
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      t.exp[i] = static_cast<std::uint8_t>(x);
      t.log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
    t.log[0] = 0;  // unused sentinel
    return t;
  }();
  return t;
}

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("Gf256::div: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("Gf256::inv: zero");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t Gf256::pow(std::uint8_t base, unsigned e) {
  if (e == 0) return 1;
  if (base == 0) return 0;
  const auto& t = tables();
  return t.exp[(static_cast<unsigned>(t.log[base]) * e) % 255];
}

}  // namespace dsaudit::storage
