// File <-> field-element codec (paper §V-B).
//
// "Assume the file to be stored as F. It is further divided into n data
//  blocks in the form of group elements. Then, each s collection of data
//  blocks can constitute data chunks" — a block is one Z_p element packed
// from 31 raw bytes (248 bits always fits below the 254-bit r); a chunk is
// the coefficient vector of the degree-(s-1) polynomial M_i.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "field/fp.hpp"

namespace dsaudit::storage {

using ff::Fr;

/// Bytes carried per block; 31*8 = 248 < 254 bits guarantees injectivity.
inline constexpr std::size_t kBytesPerBlock = 31;

/// The encoded file: d = ceil(n/s) chunks of exactly s blocks each (the last
/// chunk is zero-padded, mirroring the paper's "the last data block may need
/// padding").
struct EncodedFile {
  std::size_t original_size = 0;  // bytes, needed to strip padding on decode
  std::size_t s = 0;              // blocks per chunk
  std::size_t num_blocks = 0;     // n, before chunk padding
  std::vector<std::vector<Fr>> chunks;

  std::size_t num_chunks() const { return chunks.size(); }
};

/// Split data into Z_p blocks and group them into chunks of s blocks.
/// s must be >= 1; empty input yields a single all-zero chunk so that the
/// protocol (which requires d >= 1) still runs.
EncodedFile encode_file(std::span<const std::uint8_t> data, std::size_t s);

/// Inverse of encode_file.
std::vector<std::uint8_t> decode_file(const EncodedFile& file);

/// In-place ChaCha20 encryption with a key/nonce derived from a 32-byte
/// master key and file identifier — §III-A makes owner-side encryption
/// mandatory before any byte leaves the client.
void encrypt_in_place(std::span<std::uint8_t> data,
                      const std::array<std::uint8_t, 32>& master_key,
                      std::uint64_t file_id);
inline void decrypt_in_place(std::span<std::uint8_t> data,
                             const std::array<std::uint8_t, 32>& master_key,
                             std::uint64_t file_id) {
  encrypt_in_place(data, master_key, file_id);
}

}  // namespace dsaudit::storage
