#include "storage/erasure.hpp"

#include <stdexcept>

#include "storage/gf256.hpp"

namespace dsaudit::storage {

namespace {

using Matrix = std::vector<std::vector<std::uint8_t>>;

}  // namespace

ReedSolomon::Matrix ReedSolomon::invert(Matrix m) {
  std::size_t n = m.size();
  Matrix inv(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col] == 0) ++pivot;
    if (pivot == n) throw std::domain_error("ReedSolomon: singular matrix");
    std::swap(m[pivot], m[col]);
    std::swap(inv[pivot], inv[col]);
    std::uint8_t piv_inv = Gf256::inv(m[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      m[col][j] = Gf256::mul(m[col][j], piv_inv);
      inv[col][j] = Gf256::mul(inv[col][j], piv_inv);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || m[row][col] == 0) continue;
      std::uint8_t f = m[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        m[row][j] ^= Gf256::mul(f, m[col][j]);
        inv[row][j] ^= Gf256::mul(f, inv[col][j]);
      }
    }
  }
  return inv;
}

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t parity_shards)
    : k_(data_shards), m_(parity_shards) {
  if (k_ == 0) throw std::invalid_argument("ReedSolomon: need >= 1 data shard");
  if (k_ + m_ > 255) throw std::invalid_argument("ReedSolomon: k+m must be <= 255");
  // Systematic encoding matrix [I ; C] with C a Cauchy block:
  // C[i][j] = 1 / (x_i + y_j) with all x_i, y_j distinct. Every square
  // submatrix of a Cauchy matrix is nonsingular, and mixing identity rows
  // only shrinks the Cauchy minor, so ANY k of the k+m rows are invertible
  // (this guarantee is why Cauchy, not Vandermonde-derived, matrices are
  // used for systematic RS).
  encode_matrix_.assign(k_ + m_, std::vector<std::uint8_t>(k_, 0));
  for (std::size_t i = 0; i < k_; ++i) encode_matrix_[i][i] = 1;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) {
      auto x = static_cast<std::uint8_t>(k_ + i);
      auto y = static_cast<std::uint8_t>(j);
      encode_matrix_[k_ + i][j] = Gf256::inv(static_cast<std::uint8_t>(x ^ y));
    }
  }
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::uint8_t> data) const {
  std::size_t shard_len = (data.size() + k_ - 1) / k_;
  if (shard_len == 0) shard_len = 1;
  std::vector<std::vector<std::uint8_t>> shards(
      k_ + m_, std::vector<std::uint8_t>(shard_len, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    shards[i / shard_len][i % shard_len] = data[i];
  }
  for (std::size_t r = k_; r < k_ + m_; ++r) {
    for (std::size_t c = 0; c < k_; ++c) {
      std::uint8_t coeff = encode_matrix_[r][c];
      if (coeff == 0) continue;
      for (std::size_t b = 0; b < shard_len; ++b) {
        shards[r][b] ^= Gf256::mul(coeff, shards[c][b]);
      }
    }
  }
  return shards;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::reconstruct(
    const std::vector<std::optional<std::vector<std::uint8_t>>>& shards,
    std::size_t original_size) const {
  if (shards.size() != k_ + m_) {
    throw std::invalid_argument("ReedSolomon::reconstruct: wrong shard count");
  }
  // Collect the first k present shards and the matching encode-matrix rows.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < shards.size() && rows.size() < k_; ++i) {
    if (shards[i].has_value()) rows.push_back(i);
  }
  if (rows.size() < k_) return std::nullopt;
  std::size_t shard_len = shards[rows[0]]->size();
  for (auto r : rows) {
    if (shards[r]->size() != shard_len) {
      throw std::invalid_argument("ReedSolomon::reconstruct: ragged shards");
    }
  }
  Matrix sub(k_, std::vector<std::uint8_t>(k_));
  for (std::size_t i = 0; i < k_; ++i) sub[i] = encode_matrix_[rows[i]];
  Matrix dec = invert(std::move(sub));
  // data_shard[c] = sum_i dec[c][i] * received[i]
  std::vector<std::uint8_t> out(k_ * shard_len, 0);
  for (std::size_t c = 0; c < k_; ++c) {
    for (std::size_t i = 0; i < k_; ++i) {
      std::uint8_t coeff = dec[c][i];
      if (coeff == 0) continue;
      const auto& src = *shards[rows[i]];
      for (std::size_t b = 0; b < shard_len; ++b) {
        out[c * shard_len + b] ^= Gf256::mul(coeff, src[b]);
      }
    }
  }
  if (original_size > out.size()) {
    throw std::invalid_argument("ReedSolomon::reconstruct: size too large");
  }
  out.resize(original_size);
  return out;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::reconstruct(
    const std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>>&
        indexed_shards,
    std::size_t original_size) const {
  std::vector<std::optional<std::vector<std::uint8_t>>> positional(k_ + m_);
  for (const auto& [index, data] : indexed_shards) {
    if (index >= k_ + m_) {
      throw std::invalid_argument(
          "ReedSolomon::reconstruct: shard index out of range");
    }
    if (positional[index].has_value()) {
      throw std::invalid_argument(
          "ReedSolomon::reconstruct: duplicate shard index");
    }
    positional[index] = data;
  }
  return reconstruct(positional, original_size);
}

}  // namespace dsaudit::storage
