#include "storage/dht.hpp"

#include <cstring>
#include <stdexcept>

#include "primitives/sha256.hpp"

namespace dsaudit::storage {

NodeId ring_hash(const std::string& name) {
  auto h = primitives::Sha256::hash(name);
  NodeId id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | h[i];
  return id;
}

NodeId ChordRing::join(const std::string& name) {
  NodeId id = ring_hash(name);
  while (nodes_.count(id)) ++id;  // astronomically unlikely; keep ids unique
  nodes_.emplace(id, Node{name, {}});
  stabilize();
  return id;
}

void ChordRing::leave(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::invalid_argument("ChordRing::leave: unknown node");
  nodes_.erase(it);
  stabilize();
}

std::optional<std::string> ChordRing::node_name(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.name;
}

NodeId ChordRing::successor_of(NodeId key) const {
  auto it = nodes_.lower_bound(key);
  if (it == nodes_.end()) it = nodes_.begin();  // wrap around
  return it->first;
}

void ChordRing::stabilize() {
  for (auto& [id, node] : nodes_) {
    node.fingers.assign(kFingerBits, 0);
    for (int i = 0; i < kFingerBits; ++i) {
      node.fingers[i] = successor_of(id + (std::uint64_t{1} << i));
    }
  }
}

namespace {
/// True if x is in the half-open clockwise interval (a, b] on the ring.
bool in_interval(NodeId x, NodeId a, NodeId b) {
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}
}  // namespace

ChordRing::LookupResult ChordRing::lookup(NodeId key,
                                          std::optional<NodeId> start) const {
  if (nodes_.empty()) throw std::logic_error("ChordRing::lookup: empty ring");
  NodeId current = start.value_or(nodes_.begin()->first);
  if (!nodes_.count(current)) {
    throw std::invalid_argument("ChordRing::lookup: unknown start node");
  }
  LookupResult res;
  res.path.push_back(current);
  // Canonical Chord find_successor: if the key falls between us and our
  // immediate successor, the successor is responsible; otherwise forward to
  // the closest preceding finger.
  for (;;) {
    if (current == key) {  // we ARE successor(key)
      res.responsible = current;
      return res;
    }
    const Node& node = nodes_.at(current);
    NodeId succ = node.fingers[0];  // finger[0] = immediate successor
    if (in_interval(key, current, succ)) {
      res.responsible = succ;
      if (succ != current) {
        res.path.push_back(succ);
        ++res.hops;
      }
      return res;
    }
    NodeId next = succ;  // closest_preceding_node fallback
    for (int i = kFingerBits - 1; i >= 0; --i) {
      NodeId f = node.fingers[i];
      if (f != current && in_interval(f, current, key)) {
        next = f;
        break;
      }
    }
    current = next;
    res.path.push_back(current);
    ++res.hops;
    if (res.hops > nodes_.size()) {
      throw std::logic_error("ChordRing::lookup: routing loop");
    }
  }
}

std::vector<NodeId> ChordRing::successors(NodeId key, std::size_t count) const {
  if (nodes_.empty()) throw std::logic_error("ChordRing::successors: empty ring");
  count = std::min(count, nodes_.size());
  std::vector<NodeId> out;
  auto it = nodes_.lower_bound(key);
  while (out.size() < count) {
    if (it == nodes_.end()) it = nodes_.begin();
    out.push_back(it->first);
    ++it;
  }
  return out;
}

}  // namespace dsaudit::storage
