// Systematic Reed–Solomon erasure coding over GF(2^8).
//
// §III-A: "erasure coding (parity blocks) is also required for data
// redundancy" and §VII-B prices a "3-out-of-10" style redundancy factor.
// Encoding is systematic (the first k shards are the data itself); any k of
// the k+m shards reconstruct the original.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace dsaudit::storage {

class ReedSolomon {
 public:
  /// k data shards, m parity shards; k >= 1, m >= 0, k + m <= 255.
  ReedSolomon(std::size_t data_shards, std::size_t parity_shards);

  std::size_t data_shards() const { return k_; }
  std::size_t parity_shards() const { return m_; }
  std::size_t total_shards() const { return k_ + m_; }

  /// Split `data` into k data shards (zero-padded to equal length) and
  /// compute m parity shards. Returns k+m shards of equal size.
  std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::uint8_t> data) const;

  /// Reconstruct the original data from any subset of >= k shards.
  /// `shards[i]` must be nullopt for missing shards; `original_size` strips
  /// padding. Returns nullopt if fewer than k shards are present.
  std::optional<std::vector<std::uint8_t>> reconstruct(
      const std::vector<std::optional<std::vector<std::uint8_t>>>& shards,
      std::size_t original_size) const;

  /// Sparse form for repair paths that gather surviving shards one by one:
  /// each entry is (shard index, shard bytes). Throws std::invalid_argument
  /// on a duplicate or out-of-range index — a buggy caller must get a clear
  /// error, never a silently garbage decode. Returns nullopt when fewer
  /// than k distinct shards are supplied.
  std::optional<std::vector<std::uint8_t>> reconstruct(
      const std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>>&
          indexed_shards,
      std::size_t original_size) const;

 private:
  using Matrix = std::vector<std::vector<std::uint8_t>>;
  static Matrix invert(Matrix m);  // throws std::domain_error if singular

  std::size_t k_, m_;
  Matrix encode_matrix_;  // (k+m) x k, top k rows = identity
};

}  // namespace dsaudit::storage
