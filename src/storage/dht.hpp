// Chord-style distributed hash table (paper §III-A: "the data owner looks up
// the storage provider candidates using the distributed hash table and uses
// this table for routing", citing Chord [16]).
//
// Single-process simulation: nodes live on a 64-bit identifier ring with
// finger tables; lookups walk real finger-table hops so routing complexity
// (O(log n) hops) is measurable, and join/leave re-wires the ring the way a
// real deployment would.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsaudit::storage {

using NodeId = std::uint64_t;

/// Hash arbitrary names (provider addresses, file identifiers) onto the ring.
NodeId ring_hash(const std::string& name);

class ChordRing {
 public:
  ChordRing() = default;

  /// Add a node; returns its ring identifier. Names must be unique.
  NodeId join(const std::string& name);
  /// Remove a node. Keys it was responsible for fall to its successor.
  void leave(NodeId id);

  std::size_t size() const { return nodes_.size(); }
  bool contains(NodeId id) const { return nodes_.count(id) > 0; }
  std::optional<std::string> node_name(NodeId id) const;

  struct LookupResult {
    NodeId responsible = 0;  // successor(key)
    std::size_t hops = 0;    // finger-table hops taken
    std::vector<NodeId> path;
  };

  /// Route from an arbitrary start node to successor(key) via finger tables.
  /// Throws std::logic_error on an empty ring.
  LookupResult lookup(NodeId key, std::optional<NodeId> start = std::nullopt) const;

  /// The first `count` distinct successors of key (clockwise) — the natural
  /// provider-selection primitive for placing erasure-coded shards.
  std::vector<NodeId> successors(NodeId key, std::size_t count) const;

  /// Rebuild all finger tables (called automatically by join/leave; exposed
  /// for tests that mutate many nodes at once).
  void stabilize();

 private:
  static constexpr int kFingerBits = 64;
  struct Node {
    std::string name;
    std::vector<NodeId> fingers;  // finger[i] = successor(id + 2^i)
  };

  NodeId successor_of(NodeId key) const;

  std::map<NodeId, Node> nodes_;  // ordered ring
};

}  // namespace dsaudit::storage
