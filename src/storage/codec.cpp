#include "storage/codec.hpp"

#include <cstring>
#include <stdexcept>

#include "primitives/chacha20.hpp"
#include "primitives/keccak256.hpp"

namespace dsaudit::storage {

EncodedFile encode_file(std::span<const std::uint8_t> data, std::size_t s) {
  if (s == 0) throw std::invalid_argument("encode_file: s must be >= 1");
  EncodedFile out;
  out.original_size = data.size();
  out.s = s;
  out.num_blocks = (data.size() + kBytesPerBlock - 1) / kBytesPerBlock;
  if (out.num_blocks == 0) out.num_blocks = 1;  // degenerate empty file
  std::size_t d = (out.num_blocks + s - 1) / s;
  out.chunks.assign(d, std::vector<Fr>(s, Fr::zero()));
  for (std::size_t b = 0; b < out.num_blocks; ++b) {
    std::array<std::uint8_t, 32> be{};  // top byte zero => value < 2^248 < r
    std::size_t off = b * kBytesPerBlock;
    std::size_t take = std::min(kBytesPerBlock, data.size() - std::min(off, data.size()));
    if (take > 0) std::memcpy(be.data() + 1 + (kBytesPerBlock - take), data.data() + off, take);
    out.chunks[b / s][b % s] = Fr::from_be_bytes_mod(be);
  }
  return out;
}

std::vector<std::uint8_t> decode_file(const EncodedFile& file) {
  std::vector<std::uint8_t> out(file.original_size);
  for (std::size_t b = 0; b < file.num_blocks; ++b) {
    std::size_t off = b * kBytesPerBlock;
    if (off >= out.size()) break;
    std::size_t take = std::min(kBytesPerBlock, out.size() - off);
    auto be = file.chunks[b / file.s][b % file.s].to_bytes();
    std::memcpy(out.data() + off, be.data() + 1 + (kBytesPerBlock - take), take);
  }
  return out;
}

void encrypt_in_place(std::span<std::uint8_t> data,
                      const std::array<std::uint8_t, 32>& master_key,
                      std::uint64_t file_id) {
  // Derive a per-file key so nonce reuse across files is impossible.
  std::uint8_t info[32 + 8];
  std::memcpy(info, master_key.data(), 32);
  std::memcpy(info + 32, &file_id, 8);
  auto file_key = primitives::Keccak256::hash(std::span<const std::uint8_t>(info, sizeof(info)));
  std::array<std::uint8_t, 12> nonce{};
  std::memcpy(nonce.data(), "dsa-file", 8);
  primitives::ChaCha20 cipher(file_key, nonce, 0);
  cipher.crypt(data);
}

}  // namespace dsaudit::storage
