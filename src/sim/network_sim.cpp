#include "sim/network_sim.hpp"

#include <stdexcept>

#include "audit/serialize.hpp"
#include "parallel/thread_pool.hpp"

namespace dsaudit::sim {

namespace {

chain::ChainConfig chain_config_for(const NetworkConfig& config) {
  chain::ChainConfig cc;
  cc.settlement_window_s = config.settlement_window_s;
  return cc;
}

}  // namespace

NetworkSim::NetworkSim(NetworkConfig config)
    : config_(config),
      rng_(primitives::SecureRng::deterministic(config.rng_seed)),
      chain_(chain_config_for(config)) {
  if (config_.num_owners == 0 || config_.num_providers == 0) {
    throw std::invalid_argument("NetworkSim: need owners and providers");
  }
  if (config_.erasure_data == 0) {
    throw std::invalid_argument("NetworkSim: erasure_data must be >= 1");
  }
  auto bseed = rng_.bytes32();
  beacon_ = std::make_unique<chain::TrustedBeacon>(bseed);
  if (config_.batched_settlement) {
    batch_ = std::make_unique<contract::BatchSettlement>(config_.rng_seed);
  }
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    ring_.join("provider-" + std::to_string(p));
  }
}

void NetworkSim::set_behavior(const std::string& provider, ProviderBehavior b) {
  if (deployed_) throw std::logic_error("NetworkSim: set_behavior before deploy");
  behavior_[provider] = b;
}

void NetworkSim::deploy() {
  if (deployed_) throw std::logic_error("NetworkSim: already deployed");
  deployed_ = true;

  std::size_t shards_per_owner = config_.erasure_data + config_.erasure_parity;
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);

  // Provers and contracts borrow owner_keys_[o].pk for their whole lifetime;
  // size up front so nothing reallocates under those references.
  owner_keys_.resize(config_.num_owners);
  owner_data_.reserve(config_.num_owners);
  owner_shards_.reserve(config_.num_owners);

  // Phase 1 (sequential): everything drawn from the shared network RNG —
  // owner data, file names — plus ring placement and ledger mints, in a
  // fixed order that no pool width can disturb.
  std::vector<ProviderBehavior> behaviors;
  for (std::size_t o = 0; o < config_.num_owners; ++o) {
    std::string owner = "owner-" + std::to_string(o);
    chain_.mint(owner, 1'000'000);
    std::vector<std::uint8_t> data(config_.file_bytes);
    rng_.fill(data);
    owner_data_.push_back(data);
    owner_shards_.push_back(rs.encode(data));

    // Place shards on the DHT ring successors of the file key.
    auto holders =
        ring_.successors(storage::ring_hash(owner + "/archive"), shards_per_owner);

    for (std::size_t sh = 0; sh < shards_per_owner; ++sh) {
      std::string provider = *ring_.node_name(holders[sh % holders.size()]);
      chain_.mint(provider, 1'000'000);  // idempotent top-up is fine for sim

      auto dep = std::make_unique<Deployment>();
      dep->placement = {o, sh, provider};
      dep->name = audit::Fr::random(rng_);
      ProviderBehavior behavior = ProviderBehavior::Honest;
      if (auto it = behavior_.find(provider); it != behavior_.end()) {
        behavior = it->second;
      }
      behaviors.push_back(behavior);
      deployments_.push_back(std::move(dep));
    }
  }

  // Phase 2 (parallel): per-owner key generation. Each owner's keys come
  // from an RNG derived from the network seed and the owner index (the same
  // scheme as the per-deployment prover RNGs), so concurrently generated
  // keys never share an RNG stream and the output is byte-identical at
  // every DSAUDIT_THREADS setting.
  parallel::parallel_for(config_.num_owners, [&](std::size_t o) {
    auto key_rng = primitives::SecureRng::deterministic(
        config_.rng_seed ^ (0xC2B2AE3D27D4EB4FULL * (o + 1)));
    owner_keys_[o] = audit::keygen(config_.s, key_rng);
  });

  // Phase 3 (parallel): the heavy per-deployment crypto — file encoding,
  // failure injection, tag generation, the prover's prepared MSM tables and
  // the verifier-side per-file context. Whole deployments shard across the
  // pool; the primitives' own inner sharding collapses inline on workers.
  std::vector<audit::PreparedFile> file_ctxs(deployments_.size());
  parallel::parallel_for(deployments_.size(), [&](std::size_t i) {
    Deployment& dep = *deployments_[i];
    const std::size_t o = dep.placement.owner;
    dep.file = storage::encode_file(owner_shards_[o][dep.placement.shard],
                                    config_.s);
    dep.held = dep.file;
    dep.tag = audit::generate_tags(owner_keys_[o].sk, owner_keys_[o].pk,
                                   dep.file, dep.name,
                                   parallel::thread_count());
    if (behaviors[i] == ProviderBehavior::DropsData) {
      for (auto& b : dep.held.chunks[0]) b = audit::Fr::zero();
    }
    // Contract-serving provers answer num_audits rounds: build both
    // prepared MSM tables (psi over the SRS powers, sigma over the tags).
    dep.prover = std::make_unique<audit::Prover>(
        owner_keys_[o].pk, dep.held, dep.tag, /*prepare_psi=*/true,
        /*prepare_sigma=*/true);
    file_ctxs[i] = audit::prepare_file(dep.name, dep.file.num_chunks());
  });

  // Phase 4 (sequential): contracts and their chain transactions, in
  // deployment order — addresses, tx ordering and escrow flows are chain
  // state and stay single-threaded.
  for (std::size_t i = 0; i < deployments_.size(); ++i) {
    Deployment& dep = *deployments_[i];
    const std::size_t o = dep.placement.owner;
    contract::ContractTerms terms;
    terms.owner = "owner-" + std::to_string(o);
    terms.provider = dep.placement.provider;
    terms.num_audits = config_.num_audits;
    terms.audit_period_s = config_.audit_period_s;
    terms.response_window_s = config_.response_window_s;
    terms.reward_per_audit = config_.reward_per_audit;
    terms.penalty_per_fail = config_.penalty_per_fail;
    terms.challenged_chunks = config_.challenged_chunks;
    terms.private_proofs = config_.private_proofs;
    terms.batch_gas_discount = config_.batch_gas_discount;

    dep.contract = std::make_unique<contract::AuditContract>(
        chain_, *beacon_, terms, owner_keys_[o].pk, dep.name,
        dep.file.num_chunks(), std::move(file_ctxs[i]));
    if (batch_) dep.contract->enable_deferred_settlement(*batch_);
    if (behaviors[i] != ProviderBehavior::Unresponsive) {
      dep.prover_rng = std::make_unique<primitives::SecureRng>(
          primitives::SecureRng::deterministic(
              config_.rng_seed ^ (0x9E3779B97F4A7C15ULL * (i + 1))));
      audit::Prover* prover = dep.prover.get();
      bool priv = config_.private_proofs;
      primitives::SecureRng* rng = dep.prover_rng.get();
      dep.contract->set_responder(
          [prover, priv, rng](const audit::Challenge& chal)
              -> std::optional<std::vector<std::uint8_t>> {
            if (priv) return audit::serialize(prover->prove_private(chal, *rng));
            return audit::serialize(prover->prove(chal));
          });
    }
    dep.contract->negotiated();
    dep.contract->acked(true);
    dep.contract->freeze();
    placements_.push_back(dep.placement);
  }
  initial_money_ = total_money();
}

void NetworkSim::run_to_completion() {
  if (!deployed_) throw std::logic_error("NetworkSim: deploy first");
  // Windowed settlement defers each round's redemption by up to one window;
  // widen the horizon accordingly (zero extra when windows are off or
  // degenerate, keeping those chains byte-identical to the unwindowed run).
  chain::Timestamp slack =
      config_.settlement_window_s > 1
          ? (config_.num_audits + 2) * config_.settlement_window_s
          : 0;
  chain_.advance((config_.num_audits + 2) * config_.audit_period_s + slack);
  for (const auto& dep : deployments_) {
    if (dep->contract->state() != contract::State::Closed) {
      throw std::logic_error("NetworkSim: a contract failed to complete");
    }
  }
}

NetworkStats NetworkSim::stats() const {
  NetworkStats st;
  chain::PriceModel price;
  for (const auto& dep : deployments_) {
    st.total_rounds += dep->contract->rounds_completed();
    st.passes += dep->contract->passes();
    st.fails += dep->contract->fails();
    st.timeouts += dep->contract->timeouts();
    for (const auto& r : dep->contract->rounds()) st.total_gas += r.gas_used;
  }
  st.chain_bytes = chain_.total_chain_bytes();
  st.total_usd = price.usd(st.total_gas);
  return st;
}

std::uint64_t NetworkSim::total_money() const {
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < config_.num_owners; ++o) {
    total += chain_.balance("owner-" + std::to_string(o));
  }
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    total += chain_.balance("provider-" + std::to_string(p));
  }
  for (const auto& dep : deployments_) {
    total += chain_.balance(dep->contract->address());
  }
  return total;
}

std::vector<const contract::AuditContract*> NetworkSim::contracts_of(
    const std::string& provider) const {
  std::vector<const contract::AuditContract*> out;
  for (const auto& dep : deployments_) {
    if (dep->placement.provider == provider) out.push_back(dep->contract.get());
  }
  return out;
}

bool NetworkSim::owner_can_recover(std::size_t owner) const {
  if (owner >= config_.num_owners) {
    throw std::out_of_range("NetworkSim::owner_can_recover");
  }
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);
  std::size_t shards_per_owner = config_.erasure_data + config_.erasure_parity;
  std::vector<std::optional<std::vector<std::uint8_t>>> available(shards_per_owner);
  for (const auto& dep : deployments_) {
    if (dep->placement.owner != owner) continue;
    ProviderBehavior b = ProviderBehavior::Honest;
    if (auto it = behavior_.find(dep->placement.provider); it != behavior_.end()) {
      b = it->second;
    }
    if (b == ProviderBehavior::Honest) {
      available[dep->placement.shard] = owner_shards_[owner][dep->placement.shard];
    }
  }
  auto rec = rs.reconstruct(available, owner_data_[owner].size());
  return rec && *rec == owner_data_[owner];
}

}  // namespace dsaudit::sim
