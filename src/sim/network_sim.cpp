#include "sim/network_sim.hpp"

#include <stdexcept>
#include <utility>

#include "audit/serialize.hpp"
#include "econ/cost_model.hpp"
#include "parallel/thread_pool.hpp"

namespace dsaudit::sim {

namespace {

chain::ChainConfig chain_config_for(const NetworkConfig& config) {
  chain::ChainConfig cc;
  cc.settlement_window_s = config.settlement_window_s;
  return cc;
}

}  // namespace

NetworkSim::NetworkSim(NetworkConfig config)
    : config_(config),
      rng_(primitives::SecureRng::deterministic(config.rng_seed)),
      chain_(chain_config_for(config)) {
  if (config_.num_owners == 0 || config_.num_providers == 0) {
    throw std::invalid_argument("NetworkSim: need owners and providers");
  }
  if (config_.erasure_data == 0) {
    throw std::invalid_argument("NetworkSim: erasure_data must be >= 1");
  }
  auto bseed = rng_.bytes32();
  beacon_ = std::make_unique<chain::TrustedBeacon>(bseed);
  if (config_.batched_settlement) {
    batch_ = std::make_unique<contract::BatchSettlement>(config_.rng_seed);
  }
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    const std::string name = "provider-" + std::to_string(p);
    provider_ids_.push_back(ring_.join(name));
    provider_index_[name] = p;
  }
}

void NetworkSim::set_behavior(const std::string& provider, ProviderBehavior b) {
  if (deployed_) throw std::logic_error("NetworkSim: set_behavior before deploy");
  behavior_[provider] = b;
}

void NetworkSim::set_fault_schedule(FaultSchedule schedule) {
  if (deployed_) {
    throw std::logic_error("NetworkSim: set_fault_schedule before deploy");
  }
  fault_schedule_ = std::move(schedule);
  have_faults_ = true;
  // Availability is precomputed once, before anything can run concurrently:
  // responders only ever read this immutable view.
  fault_view_ = FaultView(fault_schedule_, config_.num_providers,
                          config_.response_window_s);
}

ProviderBehavior NetworkSim::behavior_of(const std::string& provider) const {
  if (auto it = behavior_.find(provider); it != behavior_.end()) {
    return it->second;
  }
  return ProviderBehavior::Honest;
}

void NetworkSim::deploy() {
  if (deployed_) throw std::logic_error("NetworkSim: already deployed");
  deployed_ = true;

  std::size_t shards_per_owner = config_.erasure_data + config_.erasure_parity;
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);

  // Provers and contracts borrow owner_keys_[o].pk for their whole lifetime;
  // size up front so nothing reallocates under those references.
  owner_keys_.resize(config_.num_owners);
  owner_data_.reserve(config_.num_owners);
  owner_shards_.reserve(config_.num_owners);
  current_dep_.assign(config_.num_owners,
                      std::vector<std::size_t>(shards_per_owner, 0));
  data_lost_.assign(config_.num_owners, false);

  // Phase 1 (sequential): everything drawn from the shared network RNG —
  // owner data, file names — plus ring placement and ledger mints, in a
  // fixed order that no pool width can disturb. Every provider is funded,
  // placed or not: a repair may open a contract with any of them.
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    chain_.mint("provider-" + std::to_string(p), 1'000'000);
  }
  std::vector<ProviderBehavior> behaviors;
  for (std::size_t o = 0; o < config_.num_owners; ++o) {
    std::string owner = "owner-" + std::to_string(o);
    chain_.mint(owner, 1'000'000);
    std::vector<std::uint8_t> data(config_.file_bytes);
    rng_.fill(data);
    owner_data_.push_back(data);
    owner_shards_.push_back(rs.encode(data));

    // Place shards on the DHT ring successors of the file key.
    auto holders =
        ring_.successors(storage::ring_hash(owner + "/archive"), shards_per_owner);

    for (std::size_t sh = 0; sh < shards_per_owner; ++sh) {
      std::string provider = *ring_.node_name(holders[sh % holders.size()]);

      auto dep = std::make_unique<Deployment>();
      dep->placement = {o, sh, provider};
      dep->provider_index = provider_index_.at(provider);
      dep->name = audit::Fr::random(rng_);
      behaviors.push_back(behavior_of(provider));
      current_dep_[o][sh] = deployments_.size();
      deployments_.push_back(std::move(dep));
    }
  }

  // Phase 2 (parallel): per-owner key generation. Each owner's keys come
  // from an RNG derived from the network seed and the owner index (the same
  // scheme as the per-deployment prover RNGs), so concurrently generated
  // keys never share an RNG stream and the output is byte-identical at
  // every DSAUDIT_THREADS setting.
  parallel::parallel_for(config_.num_owners, [&](std::size_t o) {
    auto key_rng = primitives::SecureRng::deterministic(
        config_.rng_seed ^ (0xC2B2AE3D27D4EB4FULL * (o + 1)));
    owner_keys_[o] = audit::keygen(config_.s, key_rng);
  });

  // Phase 3 (parallel): the heavy per-deployment crypto — file encoding,
  // failure injection, tag generation, the prover's prepared MSM tables and
  // the verifier-side per-file context. Whole deployments shard across the
  // pool; the primitives' own inner sharding collapses inline on workers.
  std::vector<audit::PreparedFile> file_ctxs(deployments_.size());
  parallel::parallel_for(deployments_.size(), [&](std::size_t i) {
    Deployment& dep = *deployments_[i];
    const std::size_t o = dep.placement.owner;
    dep.file = storage::encode_file(owner_shards_[o][dep.placement.shard],
                                    config_.s);
    dep.held = dep.file;
    dep.tag = audit::generate_tags(owner_keys_[o].sk, owner_keys_[o].pk,
                                   dep.file, dep.name,
                                   parallel::thread_count());
    if (behaviors[i] == ProviderBehavior::DropsData) {
      for (auto& b : dep.held.chunks[0]) b = audit::Fr::zero();
    }
    // Contract-serving provers answer num_audits rounds: build both
    // prepared MSM tables (psi over the SRS powers, sigma over the tags).
    dep.prover = std::make_unique<audit::Prover>(
        owner_keys_[o].pk, dep.held, dep.tag, /*prepare_psi=*/true,
        /*prepare_sigma=*/true);
    file_ctxs[i] = audit::prepare_file(dep.name, dep.file.num_chunks());
  });

  // Phase 4 (sequential): contracts and their chain transactions, in
  // deployment order — addresses, tx ordering and escrow flows are chain
  // state and stay single-threaded.
  for (std::size_t i = 0; i < deployments_.size(); ++i) {
    Deployment& dep = *deployments_[i];
    if (behaviors[i] != ProviderBehavior::Unresponsive) {
      dep.prover_rng = std::make_unique<primitives::SecureRng>(
          primitives::SecureRng::deterministic(
              config_.rng_seed ^ (0x9E3779B97F4A7C15ULL * (i + 1))));
    }
    install_contract(dep, i, config_.num_audits, std::move(file_ctxs[i]));
    placements_.push_back(dep.placement);
  }

  // Fault events become sequential chain actions at their instants; every
  // consequence (ring departure, shard zeroing, exit, repair) runs in the
  // deterministic action phase.
  if (have_faults_) {
    for (const FaultEvent& ev : fault_schedule_.events) {
      chain_.schedule(ev.at,
                      [this, ev](chain::Timestamp now) { apply_fault(ev, now); });
    }
  }
  initial_money_ = total_money();
}

void NetworkSim::install_contract(Deployment& dep, std::size_t dep_index,
                                  std::uint64_t num_audits,
                                  std::optional<audit::PreparedFile> prepared) {
  const std::size_t o = dep.placement.owner;
  contract::ContractTerms terms;
  terms.owner = "owner-" + std::to_string(o);
  terms.provider = dep.placement.provider;
  terms.num_audits = num_audits;
  terms.audit_period_s = config_.audit_period_s;
  terms.response_window_s = config_.response_window_s;
  terms.reward_per_audit = config_.reward_per_audit;
  terms.penalty_per_fail = config_.penalty_per_fail;
  terms.challenged_chunks = config_.challenged_chunks;
  terms.private_proofs = config_.private_proofs;
  terms.batch_gas_discount = config_.batch_gas_discount;
  terms.timeout_retry_limit = config_.timeout_retry_limit;
  terms.slash_after_consecutive = config_.slash_after_consecutive;

  dep.contract = std::make_unique<contract::AuditContract>(
      chain_, *beacon_, terms, owner_keys_[o].pk, dep.name,
      dep.file.num_chunks(), std::move(prepared));
  if (batch_) dep.contract->enable_deferred_settlement(*batch_);
  if (behavior_of(dep.placement.provider) != ProviderBehavior::Unresponsive) {
    audit::Prover* prover = dep.prover.get();
    bool priv = config_.private_proofs;
    primitives::SecureRng* rng = dep.prover_rng.get();
    const FaultView* faults = have_faults_ ? &fault_view_ : nullptr;
    const std::size_t pidx = dep.provider_index;
    const chain::Blockchain* chain = &chain_;
    dep.contract->set_responder(
        [prover, priv, rng, faults, pidx, chain](const audit::Challenge& chal)
            -> std::optional<std::vector<std::uint8_t>> {
          // A challenge issued while the provider is crashed, exited or
          // inside an offline/proof-fault gap goes unanswered; the round
          // times out (and retries, if the terms allow).
          if (faults && !faults->available(pidx, chain->now())) {
            return std::nullopt;
          }
          if (priv) return audit::serialize(prover->prove_private(chal, *rng));
          return audit::serialize(prover->prove(chal));
        });
  }
  dep.contract->set_on_closed([this, dep_index](contract::CloseReason reason) {
    if (reason == contract::CloseReason::Slashed) ++churn_.slashes;
    if (reason == contract::CloseReason::ProviderExit) ++churn_.provider_exits;
    Deployment& d = *deployments_[dep_index];
    if (d.needs_repair && !d.repair_done) schedule_repair(dep_index);
  });
  dep.contract->negotiated();
  dep.contract->acked(true);
  dep.contract->freeze();
}

void NetworkSim::apply_fault(const FaultEvent& ev, chain::Timestamp now) {
  auto each_live_dep = [&](auto&& fn) {
    for (std::size_t i = 0; i < deployments_.size(); ++i) {
      Deployment& d = *deployments_[i];
      if (!d.retired && d.provider_index == ev.provider) fn(i, d);
    }
  };
  // A fault against a contract that already closed (or a repair deployment
  // that never needed one) still invalidates the shard: repair directly.
  auto repair_now_if_unhooked = [&](std::size_t i, Deployment& d) {
    if (!d.contract || d.contract->state() == contract::State::Closed) {
      schedule_repair(i);
    }
    // Otherwise the contract is live: it will keep missing/failing rounds
    // until slashing or expiry closes it, and on_closed triggers the repair.
  };
  switch (ev.kind) {
    case FaultKind::Crash: {
      ++churn_.crashes;
      if (ring_.contains(provider_ids_[ev.provider])) {
        ring_.leave(provider_ids_[ev.provider]);
      }
      each_live_dep([&](std::size_t i, Deployment& d) {
        d.shard_ok = false;
        d.needs_repair = true;
        repair_now_if_unhooked(i, d);
      });
      break;
    }
    case FaultKind::Offline: {
      ++churn_.offline_events;
      // Availability itself is served from the precomputed FaultView gap;
      // the scheduled tick is the observable rejoin (churn bookkeeping).
      chain_.schedule(now + ev.duration_s,
                      [this](chain::Timestamp) { ++churn_.rejoins; });
      break;
    }
    case FaultKind::ShardLoss: {
      ++churn_.shard_losses;
      each_live_dep([&](std::size_t i, Deployment& d) {
        d.shard_ok = false;
        d.needs_repair = true;
        // The provider keeps answering — over garbage: zero what it holds
        // so every subsequent proof fails verification.
        for (auto& chunk : d.held.chunks) {
          for (auto& b : chunk) b = audit::Fr::zero();
        }
        repair_now_if_unhooked(i, d);
      });
      break;
    }
    case FaultKind::DropProof:
    case FaultKind::DelayProof:
      break;  // pure availability faults, served entirely by FaultView
    case FaultKind::EarlyExit: {
      if (ring_.contains(provider_ids_[ev.provider])) {
        ring_.leave(provider_ids_[ev.provider]);
      }
      each_live_dep([&](std::size_t i, Deployment& d) {
        d.shard_ok = false;
        d.needs_repair = true;
        if (d.contract && (d.contract->state() == contract::State::Audit ||
                           d.contract->state() == contract::State::Prove)) {
          d.contract->provider_exit();  // close fires on_closed -> repair
        } else {
          schedule_repair(i);
        }
      });
      break;
    }
  }
}

void NetworkSim::schedule_repair(std::size_t dep_index) {
  // Runs at the current instant, after the in-flight action batch — still
  // inside the sequential action phase.
  chain_.schedule(chain_.now(), [this, dep_index](chain::Timestamp now) {
    run_repair(dep_index, now);
  });
}

void NetworkSim::declare_data_loss(std::size_t owner) {
  if (data_lost_[owner]) return;
  data_lost_[owner] = true;
  ++churn_.data_loss_events;
}

void NetworkSim::run_repair(std::size_t dep_index, chain::Timestamp now) {
  Deployment& old = *deployments_[dep_index];
  if (old.repair_done) return;  // both close- and fault-paths may schedule
  old.repair_done = true;
  old.retired = true;
  const std::size_t o = old.placement.owner;
  const std::size_t sh = old.placement.shard;
  const std::size_t shards_per_owner =
      config_.erasure_data + config_.erasure_parity;
  if (data_lost_[o]) return;  // shards only die; a declared loss is final

  // Gather the surviving shards of this owner — sparse and indexed, through
  // the duplicate/range-checked reconstruct overload the repair path owns.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> survivors;
  for (std::size_t j = 0; j < shards_per_owner; ++j) {
    const Deployment& d = *deployments_[current_dep_[o][j]];
    if (d.retired || !d.shard_ok) continue;
    if (behavior_of(d.placement.provider) != ProviderBehavior::Honest) continue;
    survivors.emplace_back(j, owner_shards_[o][j]);
  }
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);
  std::optional<std::vector<std::uint8_t>> rec;
  if (survivors.size() >= config_.erasure_data) {
    rec = rs.reconstruct(survivors, owner_data_[o].size());
  }
  if (!rec || *rec != owner_data_[o] || churn_.repairs >= config_.max_repairs) {
    declare_data_loss(o);
    return;
  }

  // Replacement provider: the file key's first ring successor that is not
  // the failed holder. Crashed/exited providers have left the ring, so ring
  // membership alone certifies liveness; for a shard-loss repair the failed
  // provider is still a member and serves as the last resort.
  const std::string owner_name = "owner-" + std::to_string(o);
  std::optional<std::size_t> target;
  if (ring_.size() > 0) {
    auto cands = ring_.successors(storage::ring_hash(owner_name + "/archive"),
                                  ring_.size());
    for (auto id : cands) {
      const std::string name = *ring_.node_name(id);
      if (name != old.placement.provider) {
        target = provider_index_.at(name);
        break;
      }
    }
    if (!target && ring_.contains(provider_ids_[old.provider_index])) {
      target = old.provider_index;
    }
  }
  if (!target) {
    declare_data_loss(o);
    return;
  }

  ++churn_.repairs;
  auto nd = std::make_unique<Deployment>();
  nd->placement = {o, sh, "provider-" + std::to_string(*target)};
  nd->provider_index = *target;
  // One fresh RNG per repair, derived from the network seed and the repair
  // sequence number: the replacement file name and this prover's masking
  // randomness come from a stream no other task shares, and repairs run
  // sequentially in action order — bit-identical at every thread count.
  nd->prover_rng = std::make_unique<primitives::SecureRng>(
      primitives::SecureRng::deterministic(
          config_.rng_seed ^ (0xD1B54A32D192ED03ULL * (repair_seq_ + 1))));
  ++repair_seq_;
  nd->name = audit::Fr::random(*nd->prover_rng);
  auto shards = rs.encode(*rec);
  churn_.bytes_repaired += shards[sh].size();
  nd->file = storage::encode_file(shards[sh], config_.s);
  nd->held = nd->file;
  // Re-tag only the replacement shard, under its fresh name.
  nd->tag = audit::generate_tags(owner_keys_[o].sk, owner_keys_[o].pk, nd->file,
                                 nd->name, parallel::thread_count());
  nd->prover = std::make_unique<audit::Prover>(owner_keys_[o].pk, nd->held,
                                               nd->tag, /*prepare_psi=*/true,
                                               /*prepare_sigma=*/true);
  auto file_ctx = audit::prepare_file(nd->name, nd->file.num_chunks());

  // The repair tx: the replacement shard's tag set plus the placement record
  // go on chain, priced by the econ repair row (kept out of the round-based
  // total_gas figure; NetworkStats reports it separately).
  econ::AuditCostModel cost;
  const std::size_t tag_bytes = nd->tag.sigmas.size() * 32;
  chain::Transaction tx;
  tx.from = owner_name;
  tx.description = "repair";
  tx.payload_bytes = tag_bytes + 40;
  tx.gas_used = cost.repair_gas(tag_bytes);
  chain_.submit(tx);
  churn_.repair_gas += tx.gas_used;

  // A fresh contract audits the replacement shard for whatever rounds the
  // failed one never delivered; zero left means placement-only repair.
  const std::uint64_t done =
      old.contract ? old.contract->rounds_completed() : config_.num_audits;
  const std::uint64_t remaining =
      config_.num_audits > done ? config_.num_audits - done : 0;

  const std::size_t new_index = deployments_.size();
  placements_.push_back(nd->placement);
  current_dep_[o][sh] = new_index;
  deployments_.push_back(std::move(nd));
  if (remaining > 0) {
    install_contract(*deployments_[new_index], new_index, remaining,
                     std::move(file_ctx));
  }
  (void)now;
}

bool NetworkSim::all_contracts_closed() const {
  for (const auto& dep : deployments_) {
    if (dep->contract && dep->contract->state() != contract::State::Closed) {
      return false;
    }
  }
  return true;
}

void NetworkSim::run_to_completion() {
  if (!deployed_) throw std::logic_error("NetworkSim: deploy first");
  // Windowed settlement defers each round's redemption by up to one window;
  // widen the horizon accordingly (zero extra when windows are off or
  // degenerate, keeping those chains byte-identical to the unwindowed run).
  chain::Timestamp slack =
      config_.settlement_window_s > 1
          ? (config_.num_audits + 2) * config_.settlement_window_s
          : 0;
  const chain::Timestamp epoch =
      (config_.num_audits + 2) * config_.audit_period_s + slack;
  chain_.advance(epoch);
  // Fault runs open repair contracts mid-flight, and retried rounds can
  // settle past the nominal horizon: extend in bounded epochs until every
  // contract closes. Fault-free runs close inside the first epoch, so the
  // loop never perturbs them.
  std::size_t guard = config_.max_repairs + 2;
  while (!all_contracts_closed() && guard-- > 0) chain_.advance(epoch);
  if (!all_contracts_closed()) {
    throw std::logic_error("NetworkSim: a contract failed to complete");
  }
}

NetworkStats NetworkSim::stats() const {
  NetworkStats st;
  chain::PriceModel price;
  for (const auto& dep : deployments_) {
    if (!dep->contract) continue;
    st.total_rounds += dep->contract->rounds_completed();
    st.passes += dep->contract->passes();
    st.fails += dep->contract->fails();
    st.timeouts += dep->contract->timeouts();
    st.timeout_retries += dep->contract->timeout_retries();
    for (const auto& r : dep->contract->rounds()) st.total_gas += r.gas_used;
  }
  st.chain_bytes = chain_.total_chain_bytes();
  st.total_usd = price.usd(st.total_gas);
  st.crashes = churn_.crashes;
  st.offline_events = churn_.offline_events;
  st.rejoins = churn_.rejoins;
  st.shard_losses = churn_.shard_losses;
  st.slashes = churn_.slashes;
  st.provider_exits = churn_.provider_exits;
  st.repairs = churn_.repairs;
  st.bytes_repaired = churn_.bytes_repaired;
  st.data_loss_events = churn_.data_loss_events;
  st.repair_gas = churn_.repair_gas;
  return st;
}

std::uint64_t NetworkSim::total_money() const {
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < config_.num_owners; ++o) {
    total += chain_.balance("owner-" + std::to_string(o));
  }
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    total += chain_.balance("provider-" + std::to_string(p));
  }
  for (const auto& dep : deployments_) {
    if (dep->contract) total += chain_.balance(dep->contract->address());
  }
  return total;
}

std::vector<const contract::AuditContract*> NetworkSim::contracts_of(
    const std::string& provider) const {
  std::vector<const contract::AuditContract*> out;
  for (const auto& dep : deployments_) {
    if (dep->placement.provider == provider && dep->contract) {
      out.push_back(dep->contract.get());
    }
  }
  return out;
}

bool NetworkSim::owner_can_recover(std::size_t owner) const {
  if (owner >= config_.num_owners) {
    throw std::out_of_range("NetworkSim::owner_can_recover");
  }
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);
  std::size_t shards_per_owner = config_.erasure_data + config_.erasure_parity;
  std::vector<std::optional<std::vector<std::uint8_t>>> available(shards_per_owner);
  for (std::size_t j = 0; j < shards_per_owner; ++j) {
    const Deployment& dep = *deployments_[current_dep_[owner][j]];
    if (dep.retired || !dep.shard_ok) continue;
    if (behavior_of(dep.placement.provider) != ProviderBehavior::Honest) continue;
    available[j] = owner_shards_[owner][j];
  }
  auto rec = rs.reconstruct(available, owner_data_[owner].size());
  return rec && *rec == owner_data_[owner];
}

bool NetworkSim::data_lost(std::size_t owner) const {
  if (owner >= config_.num_owners) {
    throw std::out_of_range("NetworkSim::data_lost");
  }
  return data_lost_[owner];
}

void NetworkSim::check_invariants() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("NetworkSim invariant violated: " + what);
  };
  if (!deployed_) fail("not deployed");
  // Money conservation: rewards, penalties, slashes, exit fees and repair
  // escrows only ever move value between owners, providers and contract
  // escrow — the network total is fixed at deploy time.
  if (total_money() != initial_money_) fail("money not conserved");
  for (const auto& dep : deployments_) {
    if (!dep->contract) continue;
    const auto& c = *dep->contract;
    // Liveness: every contract — original or repair — reached Closed.
    if (c.state() != contract::State::Closed) {
      fail("contract still open: " + c.address());
    }
    // Exact escrow accounting: a closed contract holds nothing.
    if (c.escrow_balance() != 0) {
      fail("closed contract retains escrow: " + c.address());
    }
    // Every challenged round settled (Pass/Fail/Timeout) or was explicitly
    // aborted by a provider exit; settled count matches the round counter.
    std::uint64_t settled = 0, aborted = 0;
    for (const auto& r : c.rounds()) {
      if (r.outcome == contract::RoundOutcome::Aborted) {
        ++aborted;
      } else {
        ++settled;
      }
    }
    if (settled != c.rounds_completed()) {
      fail("settled rounds != rounds_completed: " + c.address());
    }
    if (aborted > 1) fail("more than one aborted round: " + c.address());
    if (aborted > 0 &&
        c.close_reason() != contract::CloseReason::ProviderExit) {
      fail("aborted round without a provider exit: " + c.address());
    }
  }
  // Recoverability or declared loss, per owner. Legacy behavior injection
  // (set_behavior) breaks recoverability outside the fault engine's books,
  // so the check applies only to fault-schedule-driven runs.
  bool legacy_faulty = false;
  for (const auto& [name, b] : behavior_) {
    legacy_faulty |= b != ProviderBehavior::Honest;
  }
  if (!legacy_faulty) {
    for (std::size_t o = 0; o < config_.num_owners; ++o) {
      if (!owner_can_recover(o) && !data_lost_[o]) {
        fail("owner " + std::to_string(o) + " lost data without declaration");
      }
    }
  }
  // Terminal disposition: every fault-invalidated shard was either repaired
  // or folded into a declared data loss.
  for (const auto& dep : deployments_) {
    if (dep->needs_repair && !dep->repair_done) {
      fail("faulted shard never repaired or declared lost (owner " +
           std::to_string(dep->placement.owner) + ", shard " +
           std::to_string(dep->placement.shard) + ")");
    }
  }
}

}  // namespace dsaudit::sim
