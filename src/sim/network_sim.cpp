#include "sim/network_sim.hpp"

#include <stdexcept>
#include <utility>

#include "attack/corpus.hpp"
#include "audit/serialize.hpp"
#include "econ/cost_model.hpp"
#include "parallel/thread_pool.hpp"

namespace dsaudit::sim {

namespace {

chain::ChainConfig chain_config_for(const NetworkConfig& config) {
  chain::ChainConfig cc;
  cc.settlement_window_s = config.settlement_window_s;
  cc.retention = config.retention;
  return cc;
}

/// Per-owner data seed: streaming mode regenerates owner bytes on demand
/// from this stream instead of materializing them at deploy.
constexpr std::uint64_t kOwnerDataSeed = 0x94D049BB133111EBULL;

}  // namespace

NetworkSim::NetworkSim(NetworkConfig config)
    : config_(config),
      rng_(primitives::SecureRng::deterministic(config.rng_seed)),
      chain_(chain_config_for(config)) {
  if (config_.num_owners == 0 || config_.num_providers == 0) {
    throw std::invalid_argument("NetworkSim: need owners and providers");
  }
  if (config_.erasure_data == 0) {
    throw std::invalid_argument("NetworkSim: erasure_data must be >= 1");
  }
  auto bseed = rng_.bytes32();
  beacon_ = std::make_unique<chain::TrustedBeacon>(bseed);
  if (config_.batched_settlement) {
    batch_ = std::make_unique<contract::BatchSettlement>(config_.rng_seed);
    if (config_.aggregate_settlement) batch_->enable_aggregate_tx();
  } else if (config_.aggregate_settlement) {
    throw std::invalid_argument(
        "NetworkSim: aggregate_settlement requires batched_settlement");
  }
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    const std::string name = "provider-" + std::to_string(p);
    provider_ids_.push_back(ring_.join(name));
    provider_index_[name] = p;
  }
  adversary_.assign(config_.num_providers, nullptr);
}

void NetworkSim::set_behavior(const std::string& provider, ProviderBehavior b) {
  if (deployed_) throw std::logic_error("NetworkSim: set_behavior before deploy");
  behavior_[provider] = b;
}

void NetworkSim::set_fault_schedule(FaultSchedule schedule) {
  if (deployed_) {
    throw std::logic_error("NetworkSim: set_fault_schedule before deploy");
  }
  fault_schedule_ = std::move(schedule);
  have_faults_ = true;
  // Availability is precomputed once, before anything can run concurrently:
  // responders only ever read this immutable view.
  fault_view_ = FaultView(fault_schedule_, config_.num_providers,
                          config_.response_window_s);
}

void NetworkSim::set_adversary(
    std::size_t provider,
    std::shared_ptr<const attack::AdversaryStrategy> strategy) {
  if (deployed_) throw std::logic_error("NetworkSim: set_adversary before deploy");
  if (provider >= config_.num_providers) {
    throw std::out_of_range("NetworkSim::set_adversary: provider index");
  }
  adversary_[provider] = std::move(strategy);
  have_adversaries_ = true;
}

void NetworkSim::set_adversaries(const attack::AdversaryRoster& roster) {
  for (std::size_t p = 0;
       p < roster.by_provider.size() && p < config_.num_providers; ++p) {
    if (roster.by_provider[p]) set_adversary(p, roster.by_provider[p]);
  }
}

ProviderBehavior NetworkSim::behavior_of(const std::string& provider) const {
  if (auto it = behavior_.find(provider); it != behavior_.end()) {
    return it->second;
  }
  return ProviderBehavior::Honest;
}

const audit::Verifier* NetworkSim::shared_verifier_for(std::size_t owner) const {
  if (config_.key_pool) return pool_verifiers_[owner % config_.key_pool].get();
  if (config_.retention == chain::Retention::Streaming) {
    return owner_verifiers_[owner].get();
  }
  return nullptr;  // legacy layout: every contract owns a prepared verifier
}

std::vector<std::uint8_t> NetworkSim::owner_data_of(std::size_t owner) const {
  if (config_.retention == chain::Retention::Full) return owner_data_[owner];
  std::vector<std::uint8_t> data(config_.file_bytes);
  auto drng = primitives::SecureRng::deterministic(
      config_.rng_seed ^ (kOwnerDataSeed * (owner + 1)));
  drng.fill(data);
  return data;
}

std::vector<std::vector<std::uint8_t>> NetworkSim::owner_shards_of(
    std::size_t owner) const {
  if (config_.retention == chain::Retention::Full) return owner_shards_[owner];
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);
  return rs.encode(owner_data_of(owner));
}

void NetworkSim::push_hot(std::uint32_t provider_index) {
  hot_provider_.push_back(provider_index);
  hot_flags_.push_back(kShardOk);
  hot_corruption_.push_back(static_cast<std::uint8_t>(Corruption::None));
  hot_next_due_.push_back(0);
  hot_rounds_done_.push_back(0);
}

void NetworkSim::deploy() {
  if (deployed_) throw std::logic_error("NetworkSim: already deployed");
  deployed_ = true;
  const bool streaming = config_.retention == chain::Retention::Streaming;

  std::size_t shards_per_owner = config_.erasure_data + config_.erasure_parity;
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);

  if (!streaming) {
    owner_data_.reserve(config_.num_owners);
    owner_shards_.reserve(config_.num_owners);
  }
  current_dep_.assign(config_.num_owners,
                      std::vector<std::size_t>(shards_per_owner, 0));
  data_lost_.assign(config_.num_owners, false);

  // Phase 1 (sequential): everything drawn from the shared network RNG —
  // owner data (full retention; streaming derives it per owner on demand),
  // file names — plus ring placement and ledger mints, in a fixed order that
  // no pool width can disturb. Every provider is funded, placed or not: a
  // repair may open a contract with any of them.
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    chain_.mint("provider-" + std::to_string(p), 1'000'000);
  }
  // Contract freeze locks reward_per_audit * num_audits from the owner and
  // penalty_per_fail * num_audits from the provider, for every deployment,
  // all up front. The flat 1'000'000 covers that at test populations but
  // not at 10^5-10^6 owners, where Chord arc skew can put tens of
  // thousands of contracts on one provider. Owners' demand is known now;
  // providers are topped up after placement below. Both top-ups are zero
  // whenever the flat mint suffices, keeping every pinned ledger constant.
  std::vector<ProviderBehavior> behaviors;
  for (std::size_t o = 0; o < config_.num_owners; ++o) {
    std::string owner = "owner-" + std::to_string(o);
    // Premium-tier owners (premium_owner_stride) lock twice the rewards.
    const std::uint64_t owner_need = static_cast<std::uint64_t>(
        shards_per_owner * config_.reward_per_audit * config_.num_audits *
        tier_multiplier(o));
    chain_.mint(owner, std::max<std::uint64_t>(1'000'000, owner_need));
    if (!streaming) {
      std::vector<std::uint8_t> data(config_.file_bytes);
      rng_.fill(data);
      owner_shards_.push_back(rs.encode(data));
      owner_data_.push_back(std::move(data));
    }

    // Place shards on the DHT ring successors of the file key.
    auto holders =
        ring_.successors(storage::ring_hash(owner + "/archive"), shards_per_owner);

    for (std::size_t sh = 0; sh < shards_per_owner; ++sh) {
      std::string provider = *ring_.node_name(holders[sh % holders.size()]);

      auto dep = std::make_unique<Deployment>();
      dep->placement = {o, sh, provider};
      dep->name = audit::Fr::random(rng_);
      behaviors.push_back(behavior_of(provider));
      current_dep_[o][sh] = deployments_.size();
      push_hot(static_cast<std::uint32_t>(provider_index_.at(provider)));
      deployments_.push_back(std::move(dep));
    }
  }

  // Provider-side funding top-up: now that placement is fixed, mint each
  // provider up to its actual deploy-time collateral demand. Sequential and
  // placement-derived, so it is identical across retention modes and
  // thread counts.
  {
    std::vector<std::uint64_t> lock_on(config_.num_providers, 0);
    for (std::size_t i = 0; i < deployments_.size(); ++i) {
      // Per-deployment collateral, scaled by the owner's contract tier.
      lock_on[hot_provider_[i]] +=
          config_.penalty_per_fail * config_.num_audits *
          tier_multiplier(deployments_[i]->placement.owner);
    }
    for (std::size_t p = 0; p < config_.num_providers; ++p) {
      if (lock_on[p] > 1'000'000) {
        chain_.mint("provider-" + std::to_string(p), lock_on[p] - 1'000'000);
      }
    }
  }

  // Phase 2 (parallel): key generation. Each keypair comes from an RNG
  // derived from the network seed and its slot index (the same scheme as the
  // per-deployment prover RNGs), so concurrently generated keys never share
  // an RNG stream and the output is byte-identical at every DSAUDIT_THREADS
  // setting. With a key pool, owners share config_.key_pool keypairs and
  // every contract borrows one of as many shared prepared Verifiers — the
  // per-contract verifier tables are what dominate memory at 10^5+ owners.
  // Keys are sized up front: provers, verifiers and contracts borrow them
  // for their whole lifetime, so nothing may reallocate underneath.
  if (config_.key_pool > 0) {
    pool_keys_.resize(config_.key_pool);
    parallel::parallel_for(config_.key_pool, [&](std::size_t k) {
      auto key_rng = primitives::SecureRng::deterministic(
          config_.rng_seed ^ (0xC2B2AE3D27D4EB4FULL * (k + 1)));
      pool_keys_[k] = audit::keygen(config_.s, key_rng);
    });
    pool_verifiers_.resize(config_.key_pool);
    parallel::parallel_for(config_.key_pool, [&](std::size_t k) {
      pool_verifiers_[k] = std::make_unique<audit::Verifier>(pool_keys_[k].pk);
    });
  } else {
    owner_keys_.resize(config_.num_owners);
    parallel::parallel_for(config_.num_owners, [&](std::size_t o) {
      auto key_rng = primitives::SecureRng::deterministic(
          config_.rng_seed ^ (0xC2B2AE3D27D4EB4FULL * (o + 1)));
      owner_keys_[o] = audit::keygen(config_.s, key_rng);
    });
    if (streaming) {
      // No pool, but contracts still must not each own a verifier: share one
      // prepared verifier per owner across its shard contracts.
      owner_verifiers_.resize(config_.num_owners);
      parallel::parallel_for(config_.num_owners, [&](std::size_t o) {
        owner_verifiers_[o] =
            std::make_unique<audit::Verifier>(owner_keys_[o].pk);
      });
    }
  }

  // Phase 3 (parallel): the heavy per-deployment crypto. Full retention
  // materializes everything — file encoding, failure injection on the held
  // copy, tag generation, the prover's prepared MSM tables and the
  // verifier-side per-file context — exactly as the original simulator did.
  // Streaming computes the same tags over the same Fr values but keeps only
  // the tag and the chunk count: data is regenerated and a transient prover
  // built per challenge (streaming_prove), and contracts verify through the
  // cold per-round path. Whole deployments shard across the pool; the
  // primitives' own inner sharding collapses inline on workers.
  std::vector<audit::PreparedFile> file_ctxs;
  if (!streaming) file_ctxs.resize(deployments_.size());
  parallel::parallel_for(deployments_.size(), [&](std::size_t i) {
    Deployment& dep = *deployments_[i];
    const std::size_t o = dep.placement.owner;
    const audit::KeyPair& kp = key_of(o);
    if (streaming) {
      auto shards = owner_shards_of(o);
      auto file = storage::encode_file(shards[dep.placement.shard], config_.s);
      dep.num_chunks = file.num_chunks();
      dep.tag = audit::generate_tags(kp.sk, kp.pk, file, dep.name,
                                     parallel::thread_count());
      if (behaviors[i] == ProviderBehavior::DropsData) {
        hot_corruption_[i] = static_cast<std::uint8_t>(Corruption::DropChunk);
      }
    } else {
      dep.file = storage::encode_file(owner_shards_[o][dep.placement.shard],
                                      config_.s);
      dep.held = dep.file;
      dep.num_chunks = dep.file.num_chunks();
      dep.tag = audit::generate_tags(kp.sk, kp.pk, dep.file, dep.name,
                                     parallel::thread_count());
      if (behaviors[i] == ProviderBehavior::DropsData) {
        for (auto& b : dep.held.chunks[0]) b = audit::Fr::zero();
        hot_corruption_[i] = static_cast<std::uint8_t>(Corruption::DropChunk);
      }
      // Contract-serving provers answer num_audits rounds: build both
      // prepared MSM tables (psi over the SRS powers, sigma over the tags).
      dep.prover = std::make_unique<audit::Prover>(
          kp.pk, dep.held, dep.tag, /*prepare_psi=*/true,
          /*prepare_sigma=*/true);
      file_ctxs[i] = audit::prepare_file(dep.name, dep.num_chunks);
    }
  });

  // Phase 4 (sequential): contracts and their chain transactions, in
  // deployment order — addresses, tx ordering and escrow flows are chain
  // state and stay single-threaded.
  for (std::size_t i = 0; i < deployments_.size(); ++i) {
    Deployment& dep = *deployments_[i];
    if (behaviors[i] != ProviderBehavior::Unresponsive ||
        adversary_of(i) != nullptr) {
      dep.prover_rng = std::make_unique<primitives::SecureRng>(
          primitives::SecureRng::deterministic(
              config_.rng_seed ^ (0x9E3779B97F4A7C15ULL * (i + 1))));
    }
    install_contract(dep, i, config_.num_audits,
                     streaming ? std::optional<audit::PreparedFile>{}
                               : std::optional<audit::PreparedFile>(
                                     std::move(file_ctxs[i])));
    placements_.push_back(dep.placement);
  }

  // Fault events become sequential chain actions at their instants; every
  // consequence (ring departure, shard zeroing, exit, repair) runs in the
  // deterministic action phase.
  if (have_faults_) {
    for (const FaultEvent& ev : fault_schedule_.events) {
      chain_.schedule(ev.at,
                      [this, ev](chain::Timestamp now) { apply_fault(ev, now); });
    }
  }
  initial_money_ = total_money();
}

std::optional<std::vector<std::uint8_t>> NetworkSim::streaming_prove(
    std::size_t dep_index, const audit::Challenge& chal,
    primitives::SecureRng& rng) const {
  const Deployment& dep = *deployments_[dep_index];
  const std::size_t o = dep.placement.owner;
  // Regenerate this deployment's chunks from the owner seed (repaired shards
  // carry byte-identical content to the originals — reconstruction equality
  // is checked before any repair proceeds), apply the provider's corruption
  // state, and prove through a transient table-less prover. Same Fr values
  // as the materialized path; nothing retained afterwards.
  auto shards = owner_shards_of(o);
  storage::EncodedFile held =
      storage::encode_file(shards[dep.placement.shard], config_.s);
  switch (static_cast<Corruption>(hot_corruption_[dep_index])) {
    case Corruption::DropChunk:
      for (auto& b : held.chunks[0]) b = audit::Fr::zero();
      break;
    case Corruption::AllZero:
      for (auto& chunk : held.chunks) {
        for (auto& b : chunk) b = audit::Fr::zero();
      }
      break;
    case Corruption::None:
      break;
  }
  audit::Prover prover(key_of(o).pk, held, dep.tag, /*prepare_psi=*/false,
                       /*prepare_sigma=*/false);
  if (config_.private_proofs) {
    return audit::serialize(prover.prove_private(chal, rng));
  }
  return audit::serialize(prover.prove(chal));
}

attack::AdversaryContext NetworkSim::adversary_context(
    std::size_t dep_index) const {
  const Deployment& dep = *deployments_[dep_index];
  attack::AdversaryContext ctx;
  ctx.deployment = dep_index;
  ctx.provider = hot_provider_[dep_index];
  ctx.owner = dep.placement.owner;
  ctx.num_chunks = dep.num_chunks;
  const std::uint64_t mult = tier_multiplier(dep.placement.owner);
  ctx.reward_per_audit = config_.reward_per_audit * mult;
  ctx.penalty_per_fail = config_.penalty_per_fail * mult;
  ctx.num_audits = dep.contract ? dep.contract->terms().num_audits
                                : config_.num_audits;
  return ctx;
}

std::optional<std::vector<std::uint8_t>> NetworkSim::adversarial_prove(
    std::size_t dep_index, const attack::AdversaryContext& ctx,
    const attack::AdversaryStrategy& adv, const audit::Challenge& chal,
    primitives::SecureRng& rng) const {
  const auto action = adv.decide(ctx, chal);
  if (action == attack::AdversaryAction::NoAnswer) return std::nullopt;

  // Regenerate the held chunks exactly as streaming_prove does (identical Fr
  // values in both retention modes), apply any fault corruption, then — for
  // a cheating answer — zero every chunk the strategy does not actually
  // hold: the proof fails exactly when the challenge touches one.
  const Deployment& dep = *deployments_[dep_index];
  const std::size_t o = dep.placement.owner;
  auto shards = owner_shards_of(o);
  storage::EncodedFile held =
      storage::encode_file(shards[dep.placement.shard], config_.s);
  switch (static_cast<Corruption>(hot_corruption_[dep_index])) {
    case Corruption::DropChunk:
      for (auto& b : held.chunks[0]) b = audit::Fr::zero();
      break;
    case Corruption::AllZero:
      for (auto& chunk : held.chunks) {
        for (auto& b : chunk) b = audit::Fr::zero();
      }
      break;
    case Corruption::None:
      break;
  }
  if (action == attack::AdversaryAction::CorruptProof) {
    for (std::size_t i = 0; i < held.chunks.size(); ++i) {
      if (!adv.holds_chunk(ctx, i)) {
        for (auto& b : held.chunks[i]) b = audit::Fr::zero();
      }
    }
  }
  audit::Prover prover(key_of(o).pk, held, dep.tag, /*prepare_psi=*/false,
                       /*prepare_sigma=*/false);
  std::vector<std::uint8_t> bytes;
  if (config_.private_proofs) {
    if (action == attack::AdversaryAction::GrindProof) {
      // Grind the masking randomness: several VALID proofs, submit the
      // lexicographically smallest serialization (a bid to bias the batch
      // transcript and, through it, the Fiat–Shamir weight seed). The
      // grinder pays candidates-1 extra provings for it.
      const std::size_t g = std::max<std::size_t>(1, adv.grind_candidates());
      for (std::size_t c = 0; c < g; ++c) {
        auto candidate = audit::serialize(prover.prove_private(chal, rng));
        if (bytes.empty() || candidate < bytes) bytes = std::move(candidate);
      }
    } else {
      bytes = audit::serialize(prover.prove_private(chal, rng));
    }
  } else {
    // Basic proofs are deterministic — nothing to grind; the strategy
    // degenerates to an honest (valid) answer.
    bytes = audit::serialize(prover.prove(chal));
  }
  if (action == attack::AdversaryAction::MalformedProof) {
    bytes = attack::corpus::corrupt_proof(
        bytes, attack::detail::fold(chal.c1) ^ dep_index);
  }
  return bytes;
}

void NetworkSim::install_contract(Deployment& dep, std::size_t dep_index,
                                  std::uint64_t num_audits,
                                  std::optional<audit::PreparedFile> prepared) {
  const std::size_t o = dep.placement.owner;
  const bool streaming = config_.retention == chain::Retention::Streaming;
  contract::ContractTerms terms;
  terms.owner = "owner-" + std::to_string(o);
  terms.provider = dep.placement.provider;
  terms.num_audits = num_audits;
  terms.audit_period_s = config_.audit_period_s;
  terms.response_window_s = config_.response_window_s;
  const std::uint64_t tier = tier_multiplier(o);
  terms.reward_per_audit = config_.reward_per_audit * tier;
  terms.penalty_per_fail = config_.penalty_per_fail * tier;
  terms.challenged_chunks = config_.challenged_chunks;
  terms.private_proofs = config_.private_proofs;
  terms.batch_gas_discount = config_.batch_gas_discount;
  terms.timeout_retry_limit = config_.timeout_retry_limit;
  terms.slash_after_consecutive = config_.slash_after_consecutive;
  if (streaming) {
    // Bounded history: the in-flight record plus its predecessor (the round
    // scheduler reads the previous challenge instant), and a short event
    // tail. Aggregate counters stay exact regardless.
    terms.retained_rounds = 2;
    terms.retained_events = 4;
  }

  const audit::Verifier* shared = shared_verifier_for(o);
  if (shared) {
    if (prepared) {
      dep.file_ctx =
          std::make_unique<audit::PreparedFile>(std::move(*prepared));
    }
    dep.contract = std::make_unique<contract::AuditContract>(
        chain_, *beacon_, terms, *shared, dep.name, dep.num_chunks,
        dep.file_ctx.get());
  } else {
    dep.contract = std::make_unique<contract::AuditContract>(
        chain_, *beacon_, terms, key_of(o).pk, dep.name, dep.num_chunks,
        std::move(prepared));
  }
  if (batch_) dep.contract->enable_deferred_settlement(*batch_);
  const attack::AdversaryStrategy* adv = adversary_of(dep_index);
  if (adv != nullptr) {
    // Byzantine responder: the strategy decides, the sim executes. Decisions
    // are pure functions of (ctx, challenge), so the concurrent prepare
    // stages here, the sequential classification in on_round below and the
    // stats_by_walk() oracle always agree on what this round was.
    const FaultView* faults = have_faults_ ? &fault_view_ : nullptr;
    primitives::SecureRng* rng = dep.prover_rng.get();
    const std::size_t pidx = hot_provider_[dep_index];
    const attack::AdversaryContext ctx = adversary_context(dep_index);
    dep.contract->set_responder(
        [this, dep_index, ctx, adv, rng, faults, pidx](
            const audit::Challenge& chal)
            -> std::optional<std::vector<std::uint8_t>> {
          if (faults && !faults->available(pidx, chain_.now())) {
            return std::nullopt;  // even adversaries sit out fault gaps
          }
          return adversarial_prove(dep_index, ctx, *adv, chal, *rng);
        });
  } else if (behavior_of(dep.placement.provider) !=
             ProviderBehavior::Unresponsive) {
    const FaultView* faults = have_faults_ ? &fault_view_ : nullptr;
    if (streaming) {
      primitives::SecureRng* rng = dep.prover_rng.get();
      const std::size_t pidx = hot_provider_[dep_index];
      dep.contract->set_responder(
          [this, dep_index, rng, faults, pidx](const audit::Challenge& chal)
              -> std::optional<std::vector<std::uint8_t>> {
            if (faults && !faults->available(pidx, chain_.now())) {
              return std::nullopt;
            }
            return streaming_prove(dep_index, chal, *rng);
          });
    } else {
      audit::Prover* prover = dep.prover.get();
      bool priv = config_.private_proofs;
      primitives::SecureRng* rng = dep.prover_rng.get();
      const std::size_t pidx = hot_provider_[dep_index];
      const chain::Blockchain* chain = &chain_;
      dep.contract->set_responder(
          [prover, priv, rng, faults, pidx, chain](const audit::Challenge& chal)
              -> std::optional<std::vector<std::uint8_t>> {
            // A challenge issued while the provider is crashed, exited or
            // inside an offline/proof-fault gap goes unanswered; the round
            // times out (and retries, if the terms allow).
            if (faults && !faults->available(pidx, chain->now())) {
              return std::nullopt;
            }
            if (priv) return audit::serialize(prover->prove_private(chal, *rng));
            return audit::serialize(prover->prove(chal));
          });
    }
  }
  // Incremental population aggregates: every terminal round folds in here,
  // so stats() never walks history (which streaming mode trims anyway).
  dep.contract->set_on_round(
      [this, dep_index, adv](const contract::RoundRecord& r) {
        if (r.outcome != contract::RoundOutcome::Aborted) {
          ++agg_.total_rounds;
          switch (r.outcome) {
            case contract::RoundOutcome::Pass: ++agg_.passes; break;
            case contract::RoundOutcome::Fail: ++agg_.fails; break;
            default: ++agg_.timeouts; break;
          }
          // Adversary bookkeeping, in the sequential action phase. The
          // strategy's decision is re-derived from the settled challenge —
          // pure, so it matches what the responder actually did.
          const bool corrupted =
              hot_corruption_[dep_index] !=
                  static_cast<std::uint8_t>(Corruption::None) ||
              behavior_of(deployments_[dep_index]->placement.provider) !=
                  ProviderBehavior::Honest;
          const attack::AdversaryAction action =
              adv ? adv->decide(adversary_context(dep_index), r.challenge)
                  : attack::AdversaryAction::Honest;
          if (adv && action != attack::AdversaryAction::Honest) {
            ++advc_.attempted;
            if (r.outcome != contract::RoundOutcome::Pass) ++advc_.detected;
          } else if (r.outcome == contract::RoundOutcome::Fail && !corrupted) {
            // An honest answer over intact data can never fail — a Fail
            // here means a penalty was misattributed to an honest round.
            ++advc_.misattributed_fails;
          }
          if (adv) {
            const auto& t = deployments_[dep_index]->contract->terms();
            if (r.outcome == contract::RoundOutcome::Pass) {
              advc_.profit += static_cast<std::int64_t>(t.reward_per_audit);
            } else {
              advc_.profit -= static_cast<std::int64_t>(t.penalty_per_fail);
            }
            // The seed-grinding adversary also attacks the settlement layer:
            // replay the last settled window's Fiat–Shamir weight seed
            // against the freshness registry. Every attempt must be refused.
            if (adv->kind() == attack::StrategyKind::SeedGrinding && batch_) {
              if (auto seed = batch_->last_weight_seed()) {
                ++advc_.replay_attempts;
                if (batch_->consume_weight_seed(*seed)) {
                  ++advc_.replays_accepted;
                }
              }
            }
          }
        }
        agg_.total_gas += r.gas_used;
        agg_.timeout_retries += r.retries;
        ++hot_rounds_done_[dep_index];
        hot_next_due_[dep_index] = r.challenged_at + config_.audit_period_s;
      });
  dep.contract->set_on_closed(
      [this, dep_index, adv](contract::CloseReason reason) {
        if (reason == contract::CloseReason::Slashed) ++churn_.slashes;
        if (reason == contract::CloseReason::ProviderExit) {
          ++churn_.provider_exits;
        }
        if (adv) {
          const auto& c = *deployments_[dep_index]->contract;
          const auto& t = c.terms();
          const std::uint64_t misses = c.fails() + c.timeouts();
          if (reason == contract::CloseReason::Slashed) {
            ++advc_.slashed;
            // Forfeited collateral: the full lock minus per-round penalties
            // already paid out (slash_and_close drains the rest to the
            // owner).
            advc_.profit -= static_cast<std::int64_t>(
                t.penalty_per_fail * (t.num_audits - misses));
          } else if (reason == contract::CloseReason::ProviderExit) {
            advc_.profit -= static_cast<std::int64_t>(
                std::min(t.penalty_per_fail,
                         t.penalty_per_fail * t.num_audits -
                             t.penalty_per_fail * misses));
          }
        }
        --open_contracts_;
        hot_next_due_[dep_index] = 0;
        if (flag(dep_index, kNeedsRepair) && !flag(dep_index, kRepairDone)) {
          schedule_repair(dep_index);
        }
      });
  ++open_contracts_;
  dep.contract->negotiated();
  dep.contract->acked(true);
  dep.contract->freeze();
}

void NetworkSim::apply_fault(const FaultEvent& ev, chain::Timestamp now) {
  // One cache-linear scan over the hot arrays; the cold Deployment is only
  // dereferenced for the handful of matches.
  auto each_live_dep = [&](auto&& fn) {
    for (std::size_t i = 0; i < deployments_.size(); ++i) {
      if (flag(i, kRetired) || hot_provider_[i] != ev.provider) continue;
      fn(i, *deployments_[i]);
    }
  };
  // A fault against a contract that already closed (or a repair deployment
  // that never needed one) still invalidates the shard: repair directly.
  auto repair_now_if_unhooked = [&](std::size_t i, Deployment& d) {
    if (!d.contract || d.contract->state() == contract::State::Closed) {
      schedule_repair(i);
    }
    // Otherwise the contract is live: it will keep missing/failing rounds
    // until slashing or expiry closes it, and on_closed triggers the repair.
  };
  switch (ev.kind) {
    case FaultKind::Crash: {
      ++churn_.crashes;
      if (ring_.contains(provider_ids_[ev.provider])) {
        ring_.leave(provider_ids_[ev.provider]);
      }
      each_live_dep([&](std::size_t i, Deployment& d) {
        clear_flag(i, kShardOk);
        set_flag(i, kNeedsRepair);
        repair_now_if_unhooked(i, d);
      });
      break;
    }
    case FaultKind::Offline: {
      ++churn_.offline_events;
      // Availability itself is served from the precomputed FaultView gap;
      // the scheduled tick is the observable rejoin (churn bookkeeping).
      chain_.schedule(now + ev.duration_s,
                      [this](chain::Timestamp) { ++churn_.rejoins; });
      break;
    }
    case FaultKind::ShardLoss: {
      ++churn_.shard_losses;
      each_live_dep([&](std::size_t i, Deployment& d) {
        clear_flag(i, kShardOk);
        set_flag(i, kNeedsRepair);
        // The provider keeps answering — over garbage: every subsequent
        // proof must fail verification. Full retention zeroes the
        // materialized held copy (the prepared prover references it);
        // streaming records the corruption and applies it at regeneration.
        hot_corruption_[i] = static_cast<std::uint8_t>(Corruption::AllZero);
        if (config_.retention == chain::Retention::Full) {
          for (auto& chunk : d.held.chunks) {
            for (auto& b : chunk) b = audit::Fr::zero();
          }
        }
        repair_now_if_unhooked(i, d);
      });
      break;
    }
    case FaultKind::DropProof:
    case FaultKind::DelayProof:
      break;  // pure availability faults, served entirely by FaultView
    case FaultKind::EarlyExit: {
      if (ring_.contains(provider_ids_[ev.provider])) {
        ring_.leave(provider_ids_[ev.provider]);
      }
      each_live_dep([&](std::size_t i, Deployment& d) {
        clear_flag(i, kShardOk);
        set_flag(i, kNeedsRepair);
        if (d.contract && (d.contract->state() == contract::State::Audit ||
                           d.contract->state() == contract::State::Prove)) {
          d.contract->provider_exit();  // close fires on_closed -> repair
        } else {
          schedule_repair(i);
        }
      });
      break;
    }
  }
}

void NetworkSim::schedule_repair(std::size_t dep_index) {
  // Runs at the current instant, after the in-flight action batch — still
  // inside the sequential action phase.
  chain_.schedule(chain_.now(), [this, dep_index](chain::Timestamp now) {
    run_repair(dep_index, now);
  });
}

void NetworkSim::declare_data_loss(std::size_t owner) {
  if (data_lost_[owner]) return;
  data_lost_[owner] = true;
  ++churn_.data_loss_events;
}

void NetworkSim::run_repair(std::size_t dep_index, chain::Timestamp now) {
  Deployment& old = *deployments_[dep_index];
  if (flag(dep_index, kRepairDone)) return;  // both close- and fault-paths
                                             // may schedule
  set_flag(dep_index, kRepairDone);
  set_flag(dep_index, kRetired);
  const std::size_t o = old.placement.owner;
  const std::size_t sh = old.placement.shard;
  const std::size_t shards_per_owner =
      config_.erasure_data + config_.erasure_parity;
  if (data_lost_[o]) return;  // shards only die; a declared loss is final

  // Owner bytes/shards: stored under full retention, regenerated from the
  // owner seed under streaming (repairs are rare — the regeneration cost is
  // one erasure encode, not a per-round cost).
  const auto odata = owner_data_of(o);
  const auto oshards = owner_shards_of(o);

  // Gather the surviving shards of this owner — sparse and indexed, through
  // the duplicate/range-checked reconstruct overload the repair path owns.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> survivors;
  for (std::size_t j = 0; j < shards_per_owner; ++j) {
    const std::size_t di = current_dep_[o][j];
    if (flag(di, kRetired) || !flag(di, kShardOk)) continue;
    if (behavior_of(deployments_[di]->placement.provider) !=
        ProviderBehavior::Honest) {
      continue;
    }
    survivors.emplace_back(j, oshards[j]);
  }
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);
  std::optional<std::vector<std::uint8_t>> rec;
  if (survivors.size() >= config_.erasure_data) {
    rec = rs.reconstruct(survivors, odata.size());
  }
  if (!rec || *rec != odata || churn_.repairs >= config_.max_repairs) {
    declare_data_loss(o);
    return;
  }

  // Replacement provider: the file key's first ring successor that is not
  // the failed holder. Crashed/exited providers have left the ring, so ring
  // membership alone certifies liveness; for a shard-loss repair the failed
  // provider is still a member and serves as the last resort.
  const std::string owner_name = "owner-" + std::to_string(o);
  std::optional<std::size_t> target;
  if (ring_.size() > 0) {
    auto cands = ring_.successors(storage::ring_hash(owner_name + "/archive"),
                                  ring_.size());
    for (auto id : cands) {
      const std::string name = *ring_.node_name(id);
      if (name != old.placement.provider) {
        target = provider_index_.at(name);
        break;
      }
    }
    if (!target &&
        ring_.contains(provider_ids_[hot_provider_[dep_index]])) {
      target = hot_provider_[dep_index];
    }
  }
  if (!target) {
    declare_data_loss(o);
    return;
  }

  ++churn_.repairs;
  const bool streaming = config_.retention == chain::Retention::Streaming;
  auto nd = std::make_unique<Deployment>();
  nd->placement = {o, sh, "provider-" + std::to_string(*target)};
  // One fresh RNG per repair, derived from the network seed and the repair
  // sequence number: the replacement file name and this prover's masking
  // randomness come from a stream no other task shares, and repairs run
  // sequentially in action order — bit-identical at every thread count.
  nd->prover_rng = std::make_unique<primitives::SecureRng>(
      primitives::SecureRng::deterministic(
          config_.rng_seed ^ (0xD1B54A32D192ED03ULL * (repair_seq_ + 1))));
  ++repair_seq_;
  nd->name = audit::Fr::random(*nd->prover_rng);
  auto shards = rs.encode(*rec);
  churn_.bytes_repaired += shards[sh].size();
  // Re-tag only the replacement shard, under its fresh name. Streaming keeps
  // the tag and chunk count; the shard bytes themselves are reproducible
  // from the owner seed (reconstruction equality was just checked), so
  // streaming_prove serves repair deployments through the same regeneration.
  auto nd_file = storage::encode_file(shards[sh], config_.s);
  nd->num_chunks = nd_file.num_chunks();
  nd->tag = audit::generate_tags(key_of(o).sk, key_of(o).pk, nd_file, nd->name,
                                 parallel::thread_count());
  std::optional<audit::PreparedFile> file_ctx;
  if (!streaming) {
    nd->file = std::move(nd_file);
    nd->held = nd->file;
    nd->prover = std::make_unique<audit::Prover>(key_of(o).pk, nd->held,
                                                 nd->tag, /*prepare_psi=*/true,
                                                 /*prepare_sigma=*/true);
    file_ctx = audit::prepare_file(nd->name, nd->num_chunks);
  }

  // The repair tx: the replacement shard's tag set plus the placement record
  // go on chain, priced by the econ repair row (kept out of the round-based
  // total_gas figure; NetworkStats reports it separately).
  econ::AuditCostModel cost;
  const std::size_t tag_bytes = nd->tag.sigmas.size() * 32;
  chain::Transaction tx;
  tx.from = owner_name;
  tx.description = "repair";
  tx.payload_bytes = tag_bytes + 40;
  tx.gas_used = cost.repair_gas(tag_bytes);
  chain_.submit(tx);
  churn_.repair_gas += tx.gas_used;

  // A fresh contract audits the replacement shard for whatever rounds the
  // failed one never delivered; zero left means placement-only repair.
  const std::uint64_t done =
      old.contract ? old.contract->rounds_completed() : config_.num_audits;
  const std::uint64_t remaining =
      config_.num_audits > done ? config_.num_audits - done : 0;

  const std::size_t new_index = deployments_.size();
  placements_.push_back(nd->placement);
  current_dep_[o][sh] = new_index;
  push_hot(static_cast<std::uint32_t>(*target));
  deployments_.push_back(std::move(nd));
  if (remaining > 0) {
    install_contract(*deployments_[new_index], new_index, remaining,
                     std::move(file_ctx));
  }
  (void)now;
}

void NetworkSim::run_to_completion() {
  if (!deployed_) throw std::logic_error("NetworkSim: deploy first");
  // Windowed settlement defers each round's redemption by up to one window;
  // widen the horizon accordingly (zero extra when windows are off or
  // degenerate, keeping those chains byte-identical to the unwindowed run).
  chain::Timestamp slack =
      config_.settlement_window_s > 1
          ? (config_.num_audits + 2) * config_.settlement_window_s
          : 0;
  const chain::Timestamp epoch =
      (config_.num_audits + 2) * config_.audit_period_s + slack;
  chain_.advance(epoch);
  // Fault runs open repair contracts mid-flight, and retried rounds can
  // settle past the nominal horizon: extend in bounded epochs until every
  // contract closes. Fault-free runs close inside the first epoch, so the
  // loop never perturbs them.
  std::size_t guard = config_.max_repairs + 2;
  while (!all_contracts_closed() && guard-- > 0) chain_.advance(epoch);
  if (!all_contracts_closed()) {
    // Name the stuck contracts — a truncated roster beats a blind failure
    // when 10^5 contracts ran and three wedged.
    std::size_t open = 0;
    std::string stuck;
    for (std::size_t i = 0; i < deployments_.size(); ++i) {
      const auto& c = deployments_[i]->contract;
      if (!c || c->state() == contract::State::Closed) continue;
      ++open;
      if (open <= 8) {
        stuck += " " + c->address() + " (rounds " +
                 std::to_string(c->rounds_completed()) + "/" +
                 std::to_string(c->terms().num_audits) + ", next due " +
                 std::to_string(hot_next_due_[i]) + ")";
      }
    }
    throw std::logic_error(
        "NetworkSim: " + std::to_string(open) +
        " contract(s) failed to complete within " +
        std::to_string(config_.max_repairs + 3) + " extension epochs; stuck:" +
        stuck + (open > 8 ? " ..." : ""));
  }
}

NetworkStats NetworkSim::stats() const {
  NetworkStats st;
  chain::PriceModel price;
  st.total_rounds = agg_.total_rounds;
  st.passes = agg_.passes;
  st.fails = agg_.fails;
  st.timeouts = agg_.timeouts;
  st.total_gas = agg_.total_gas;
  st.timeout_retries = agg_.timeout_retries;
  st.chain_bytes = chain_.total_chain_bytes();
  st.total_usd = price.usd(st.total_gas);
  st.crashes = churn_.crashes;
  st.offline_events = churn_.offline_events;
  st.rejoins = churn_.rejoins;
  st.shard_losses = churn_.shard_losses;
  st.slashes = churn_.slashes;
  st.provider_exits = churn_.provider_exits;
  st.repairs = churn_.repairs;
  st.bytes_repaired = churn_.bytes_repaired;
  st.data_loss_events = churn_.data_loss_events;
  st.repair_gas = churn_.repair_gas;
  st.attacks_attempted = advc_.attempted;
  st.attacks_detected = advc_.detected;
  st.attacks_slashed = advc_.slashed;
  st.seed_replays_attempted = advc_.replay_attempts;
  st.seed_replays_accepted = advc_.replays_accepted;
  st.attacker_profit = advc_.profit;
  fill_aggregate_stats(st);
  return st;
}

NetworkStats NetworkSim::stats_by_walk() const {
  if (config_.retention == chain::Retention::Streaming) {
    throw std::logic_error(
        "NetworkSim::stats_by_walk requires full retention (streaming trims "
        "the round records it would walk)");
  }
  NetworkStats st;
  chain::PriceModel price;
  for (const auto& dep : deployments_) {
    if (!dep->contract) continue;
    st.total_rounds += dep->contract->rounds_completed();
    st.passes += dep->contract->passes();
    st.fails += dep->contract->fails();
    st.timeouts += dep->contract->timeouts();
    st.timeout_retries += dep->contract->timeout_retries();
    for (const auto& r : dep->contract->rounds()) st.total_gas += r.gas_used;
  }
  st.chain_bytes = chain_.total_chain_bytes();
  st.total_usd = price.usd(st.total_gas);
  st.crashes = churn_.crashes;
  st.offline_events = churn_.offline_events;
  st.rejoins = churn_.rejoins;
  st.shard_losses = churn_.shard_losses;
  st.slashes = churn_.slashes;
  st.provider_exits = churn_.provider_exits;
  st.repairs = churn_.repairs;
  st.bytes_repaired = churn_.bytes_repaired;
  st.data_loss_events = churn_.data_loss_events;
  st.repair_gas = churn_.repair_gas;
  // Adversary counters, re-derived post hoc from the retained round records
  // by replaying every strategy decision — the differential oracle for the
  // incremental advc_ accounting above. (Replay attempts are interactions
  // with the settlement registry, not round outcomes; they have no record
  // to walk and are copied.)
  for (std::size_t i = 0; i < deployments_.size(); ++i) {
    const auto& dep = *deployments_[i];
    const attack::AdversaryStrategy* adv = adversary_of(i);
    if (!adv || !dep.contract) continue;
    const auto& c = *dep.contract;
    const auto& t = c.terms();
    const attack::AdversaryContext ctx = adversary_context(i);
    for (const auto& r : c.rounds()) {
      if (r.outcome == contract::RoundOutcome::Aborted) continue;
      if (adv->decide(ctx, r.challenge) != attack::AdversaryAction::Honest) {
        ++st.attacks_attempted;
        if (r.outcome != contract::RoundOutcome::Pass) ++st.attacks_detected;
      }
      if (r.outcome == contract::RoundOutcome::Pass) {
        st.attacker_profit += static_cast<std::int64_t>(t.reward_per_audit);
      } else {
        st.attacker_profit -= static_cast<std::int64_t>(t.penalty_per_fail);
      }
    }
    const std::uint64_t misses = c.fails() + c.timeouts();
    if (c.close_reason() == contract::CloseReason::Slashed) {
      ++st.attacks_slashed;
      st.attacker_profit -= static_cast<std::int64_t>(
          t.penalty_per_fail * (t.num_audits - misses));
    } else if (c.close_reason() == contract::CloseReason::ProviderExit) {
      st.attacker_profit -= static_cast<std::int64_t>(
          std::min(t.penalty_per_fail,
                   t.penalty_per_fail * t.num_audits -
                       t.penalty_per_fail * misses));
    }
  }
  st.seed_replays_attempted = advc_.replay_attempts;
  st.seed_replays_accepted = advc_.replays_accepted;
  fill_aggregate_stats(st);
  return st;
}

/// Aggregate-settlement telemetry comes straight from the engine's own
/// counters (the engine posts the txs, so it is the source of truth); both
/// stats() and the stats_by_walk() oracle read the same source.
void NetworkSim::fill_aggregate_stats(NetworkStats& st) const {
  if (!batch_) return;
  const auto bs = batch_->stats();
  st.aggregate_txs = bs.aggregate_txs;
  st.aggregate_tx_bytes = bs.aggregate_tx_bytes;
  st.aggregate_tx_gas = bs.aggregate_tx_gas;
  st.fallback_windows = bs.fallback_windows;
}

std::uint64_t NetworkSim::total_money() const {
  // Mint-only supply, maintained by the ledger — O(1) at any population.
  // check_invariants() cross-checks it against the explicit account walk.
  return chain_.total_supply();
}

std::vector<const contract::AuditContract*> NetworkSim::contracts_of(
    const std::string& provider) const {
  std::vector<const contract::AuditContract*> out;
  for (const auto& dep : deployments_) {
    if (dep->placement.provider == provider && dep->contract) {
      out.push_back(dep->contract.get());
    }
  }
  return out;
}

bool NetworkSim::owner_can_recover(std::size_t owner) const {
  if (owner >= config_.num_owners) {
    throw std::out_of_range("NetworkSim::owner_can_recover");
  }
  storage::ReedSolomon rs(config_.erasure_data, config_.erasure_parity);
  std::size_t shards_per_owner = config_.erasure_data + config_.erasure_parity;
  const auto odata = owner_data_of(owner);
  const auto oshards = owner_shards_of(owner);
  std::vector<std::optional<std::vector<std::uint8_t>>> available(shards_per_owner);
  for (std::size_t j = 0; j < shards_per_owner; ++j) {
    const std::size_t di = current_dep_[owner][j];
    if (flag(di, kRetired) || !flag(di, kShardOk)) continue;
    if (behavior_of(deployments_[di]->placement.provider) !=
        ProviderBehavior::Honest) {
      continue;
    }
    available[j] = oshards[j];
  }
  auto rec = rs.reconstruct(available, odata.size());
  return rec && *rec == odata;
}

bool NetworkSim::data_lost(std::size_t owner) const {
  if (owner >= config_.num_owners) {
    throw std::out_of_range("NetworkSim::data_lost");
  }
  return data_lost_[owner];
}

void NetworkSim::check_invariants() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("NetworkSim invariant violated: " + what);
  };
  if (!deployed_) fail("not deployed");
  const bool full = config_.retention == chain::Retention::Full;
  // Money conservation: rewards, penalties, slashes, exit fees and repair
  // escrows only ever move value between owners, providers and contract
  // escrow — the network total is fixed at deploy time. The walk is the
  // oracle; the ledger's O(1) supply must agree with it.
  std::uint64_t walk = 0;
  for (std::size_t o = 0; o < config_.num_owners; ++o) {
    walk += chain_.balance("owner-" + std::to_string(o));
  }
  for (std::size_t p = 0; p < config_.num_providers; ++p) {
    walk += chain_.balance("provider-" + std::to_string(p));
  }
  for (const auto& dep : deployments_) {
    if (dep->contract) walk += chain_.balance(dep->contract->address());
  }
  if (walk != initial_money_) fail("money not conserved");
  if (chain_.total_supply() != walk) {
    fail("ledger total_supply drifted from the account walk");
  }
  for (const auto& dep : deployments_) {
    if (!dep->contract) continue;
    const auto& c = *dep->contract;
    // Liveness: every contract — original or repair — reached Closed.
    if (c.state() != contract::State::Closed) {
      fail("contract still open: " + c.address());
    }
    // Exact escrow accounting: a closed contract holds nothing.
    if (c.escrow_balance() != 0) {
      fail("closed contract retains escrow: " + c.address());
    }
    // Every challenged round settled (Pass/Fail/Timeout) or was explicitly
    // aborted by a provider exit; settled count matches the round counter.
    // Served from the O(1) aggregate counters in every retention mode.
    const std::uint64_t settled = c.passes() + c.fails() + c.timeouts();
    if (settled != c.rounds_completed()) {
      fail("settled rounds != rounds_completed: " + c.address());
    }
    if (c.aborted_rounds() > 1) {
      fail("more than one aborted round: " + c.address());
    }
    if (c.aborted_rounds() > 0 &&
        c.close_reason() != contract::CloseReason::ProviderExit) {
      fail("aborted round without a provider exit: " + c.address());
    }
    if (full) {
      // Full retention keeps every record: re-derive each counter from the
      // retained history so the incremental aggregates keep their post-hoc
      // oracle.
      std::uint64_t pw = 0, fw = 0, tw = 0, aw = 0, gw = 0, rw = 0;
      for (const auto& r : c.rounds()) {
        switch (r.outcome) {
          case contract::RoundOutcome::Pass: ++pw; break;
          case contract::RoundOutcome::Fail: ++fw; break;
          case contract::RoundOutcome::Timeout: ++tw; break;
          case contract::RoundOutcome::Aborted: ++aw; break;
        }
        gw += r.gas_used;
        rw += r.retries;
      }
      if (pw != c.passes() || fw != c.fails() || tw != c.timeouts() ||
          aw != c.aborted_rounds() || gw != c.total_round_gas() ||
          rw != c.timeout_retries() ||
          c.rounds().size() != c.rounds_challenged()) {
        fail("aggregate counters diverge from round records: " + c.address());
      }
    }
  }
  if (full) {
    // Pin the incremental stats() against the original history walk.
    const NetworkStats a = stats();
    const NetworkStats w = stats_by_walk();
    if (a.total_rounds != w.total_rounds || a.passes != w.passes ||
        a.fails != w.fails || a.timeouts != w.timeouts ||
        a.total_gas != w.total_gas ||
        a.timeout_retries != w.timeout_retries) {
      fail("incremental stats diverge from stats_by_walk");
    }
    if (a.attacks_attempted != w.attacks_attempted ||
        a.attacks_detected != w.attacks_detected ||
        a.attacks_slashed != w.attacks_slashed ||
        a.attacker_profit != w.attacker_profit) {
      fail("incremental adversary counters diverge from stats_by_walk");
    }
  }
  // Bisection exactness: an honest round on uncorrupted data never fails.
  // Any Fail charged to a provider whose strategy chose Honest for that
  // challenge (and whose data the fault engine never touched) would slash
  // an innocent round — the attack engine's core safety property.
  if (advc_.misattributed_fails != 0) {
    fail("honest uncorrupted round charged as Fail (bisection over-slash)");
  }
  // Replay safety: the settlement registry must refuse every reused weight
  // seed the grinding adversary replays.
  if (advc_.replays_accepted != 0) {
    fail("settlement accepted a replayed weight seed");
  }
  // Recoverability or declared loss, per owner. Legacy behavior injection
  // (set_behavior) breaks recoverability outside the fault engine's books,
  // so the check applies only to fault-schedule-driven runs.
  bool legacy_faulty = false;
  for (const auto& [name, b] : behavior_) {
    legacy_faulty |= b != ProviderBehavior::Honest;
  }
  if (!legacy_faulty) {
    for (std::size_t o = 0; o < config_.num_owners; ++o) {
      if (!owner_can_recover(o) && !data_lost_[o]) {
        fail("owner " + std::to_string(o) + " lost data without declaration");
      }
    }
  }
  // Terminal disposition: every fault-invalidated shard was either repaired
  // or folded into a declared data loss.
  for (std::size_t i = 0; i < deployments_.size(); ++i) {
    if (flag(i, kNeedsRepair) && !flag(i, kRepairDone)) {
      fail("faulted shard never repaired or declared lost (owner " +
           std::to_string(deployments_[i]->placement.owner) + ", shard " +
           std::to_string(deployments_[i]->placement.shard) + ")");
    }
  }
}

}  // namespace dsaudit::sim
