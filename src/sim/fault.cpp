#include "sim/fault.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "primitives/random.hpp"

namespace dsaudit::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Offline: return "offline";
    case FaultKind::ShardLoss: return "shard-loss";
    case FaultKind::DropProof: return "drop-proof";
    case FaultKind::DelayProof: return "delay-proof";
    case FaultKind::EarlyExit: return "early-exit";
  }
  return "?";
}

FaultSchedule FaultSchedule::random(std::uint64_t seed,
                                    std::size_t num_providers,
                                    chain::Timestamp horizon_s,
                                    std::size_t max_events) {
  if (num_providers == 0 || horizon_s == 0) {
    throw std::invalid_argument("FaultSchedule::random: empty network/horizon");
  }
  auto rng = primitives::SecureRng::deterministic(seed ^ 0xFA017EE7D15A57E4ULL);
  FaultSchedule sched;
  const std::size_t n = rng.uniform(max_events + 1);
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.at = 1 + rng.uniform(horizon_s);
    ev.provider = rng.uniform(num_providers);
    ev.kind = static_cast<FaultKind>(rng.uniform(6));
    if (ev.kind == FaultKind::Offline) {
      ev.duration_s = 1 + rng.uniform(horizon_s / 2);
    }
    sched.events.push_back(ev);
  }
  // Canonical time order: installation and consequence ordering must not
  // depend on draw order.
  std::stable_sort(sched.events.begin(), sched.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return sched;
}

std::string FaultSchedule::describe() const {
  std::ostringstream os;
  for (const auto& ev : events) {
    os << "  t=" << ev.at << " provider-" << ev.provider << " "
       << to_string(ev.kind);
    if (ev.kind == FaultKind::Offline) os << " for " << ev.duration_s << "s";
    os << "\n";
  }
  if (events.empty()) os << "  (no events)\n";
  return os.str();
}

FaultView::FaultView(const FaultSchedule& schedule, std::size_t num_providers,
                     chain::Timestamp response_window_s)
    : providers_(num_providers) {
  for (const auto& ev : schedule.events) {
    if (ev.provider >= num_providers) {
      throw std::invalid_argument("FaultView: provider index out of range");
    }
    Provider& p = providers_[ev.provider];
    switch (ev.kind) {
      case FaultKind::Crash:
        p.crashed_at = std::min(p.crashed_at, ev.at);
        p.silent_from = std::min(p.silent_from, ev.at);
        break;
      case FaultKind::EarlyExit:
        p.silent_from = std::min(p.silent_from, ev.at);
        break;
      case FaultKind::Offline:
        p.gaps.push_back({ev.at, ev.at + ev.duration_s});
        break;
      case FaultKind::DropProof:
        // Long enough that the first retry (one response window later)
        // still lands inside the gap: only a second retry recovers.
        p.gaps.push_back({ev.at, ev.at + 2 * response_window_s + 1});
        break;
      case FaultKind::DelayProof:
        // The first attempt misses the deadline; a retry one response
        // window later is already outside the gap and succeeds.
        p.gaps.push_back({ev.at, ev.at + response_window_s});
        break;
      case FaultKind::ShardLoss:
        break;  // data consequence only; availability is untouched
    }
  }
}

bool FaultView::available(std::size_t provider, chain::Timestamp t) const {
  if (provider >= providers_.size()) return true;
  const Provider& p = providers_[provider];
  if (t >= p.silent_from) return false;
  for (const auto& gap : p.gaps) {
    if (t >= gap.begin && t < gap.end) return false;
  }
  return true;
}

bool FaultView::crashed_by(std::size_t provider, chain::Timestamp t) const {
  if (provider >= providers_.size()) return false;
  return t >= providers_[provider].crashed_at;
}

}  // namespace dsaudit::sim
