// Whole-network simulation: the decentralized storage network of §III-A with
// many data owners and providers, DHT-based shard placement, one Fig. 2
// contract per (owner, provider) pair, and a shared blockchain + beacon.
//
// This is the harness behind the system-wide results (§VII-D / Fig. 10):
// tests and examples use it to measure chain growth, audit pass rates,
// escrow conservation and provider-side proving load at population scale,
// with per-provider failure injection (drop data / go offline).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "contract/audit_contract.hpp"
#include "storage/dht.hpp"
#include "storage/erasure.hpp"

namespace dsaudit::sim {

struct NetworkConfig {
  std::size_t num_owners = 10;
  std::size_t num_providers = 5;
  std::size_t file_bytes = 4096;       // per owner
  std::size_t s = 10;                  // blocks per chunk
  std::size_t erasure_data = 3;        // k-of-n shard coding; n = shards per
  std::size_t erasure_parity = 0;      //   owner = erasure_data + parity
  std::uint64_t num_audits = 5;        // rounds per contract
  chain::Timestamp audit_period_s = 3600;
  chain::Timestamp response_window_s = 600;
  std::uint64_t reward_per_audit = 10;
  std::uint64_t penalty_per_fail = 25;
  std::size_t challenged_chunks = 8;
  bool private_proofs = true;
  /// Settle every round due at one chain instant as a single batch
  /// (contract::BatchSettlement): same outcomes, ledger and chain state as
  /// inline settlement, block-level verification cost.
  bool batched_settlement = false;
  /// With batched settlement: price prove-txs by the calibrated batch
  /// discount row instead of the flat per-round gas constant.
  bool batch_gas_discount = false;
  /// With batched settlement: widen each settlement batch across a window
  /// of chain instants (seconds; rounds due inside one window settle
  /// together at its boundary, under one Fiat–Shamir seed). 0 or 1 keeps
  /// the per-instant behavior, bit-identically.
  chain::Timestamp settlement_window_s = 0;
  std::uint64_t rng_seed = 1;
};

/// Provider misbehaviour knobs for failure injection.
enum class ProviderBehavior {
  Honest,       // stores and answers everything
  DropsData,    // silently zeroes one chunk of every shard it holds
  Unresponsive  // never answers challenges
};

struct Placement {
  std::size_t owner = 0;
  std::size_t shard = 0;
  std::string provider;
};

struct NetworkStats {
  std::uint64_t total_rounds = 0;
  std::uint64_t passes = 0;
  std::uint64_t fails = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t total_gas = 0;
  std::size_t chain_bytes = 0;
  double total_usd = 0;
};

class NetworkSim {
 public:
  explicit NetworkSim(NetworkConfig config);

  /// Override one provider's behaviour before deploy() (default Honest).
  void set_behavior(const std::string& provider, ProviderBehavior b);

  /// Encode, tag and place every owner's shards; open and fund contracts.
  void deploy();

  /// Run the full contract horizon on the simulated chain.
  void run_to_completion();

  // --- results --------------------------------------------------------------
  NetworkStats stats() const;
  const std::vector<Placement>& placements() const { return placements_; }
  const chain::Blockchain& chain() const { return chain_; }
  std::uint64_t balance(const std::string& who) const { return chain_.balance(who); }
  /// Sum of all balances + escrow — must be invariant (conservation check).
  std::uint64_t total_money() const;
  /// Every contract involving this provider.
  std::vector<const contract::AuditContract*> contracts_of(
      const std::string& provider) const;

  /// The shared block-settlement engine (null unless batched_settlement).
  const contract::BatchSettlement* batch_settlement() const {
    return batch_.get();
  }

  // Deployment introspection for the cross-thread-count differential tests
  // (deploy() shards whole deployments over the pool; keys, tags and the
  // ledger must come out byte-identical at every width).
  const std::vector<audit::KeyPair>& owner_keys() const { return owner_keys_; }
  std::size_t num_deployments() const { return deployments_.size(); }
  const audit::FileTag& deployment_tag(std::size_t i) const {
    return deployments_.at(i)->tag;
  }

  /// True iff `owner` can still reconstruct its file from honest providers'
  /// shards (exercises the erasure layer against the injected failures).
  bool owner_can_recover(std::size_t owner) const;

 private:
  struct Deployment {
    Placement placement;
    storage::EncodedFile file;   // what the provider *should* hold
    storage::EncodedFile held;   // what it actually holds (failure injection)
    audit::FileTag tag;
    audit::Fr name;
    std::unique_ptr<audit::Prover> prover;
    // Private-proof masking randomness. Per-deployment (seeded from the
    // network seed + deployment index) so concurrently-prepared audit rounds
    // never share an RNG stream: results stay deterministic at every
    // DSAUDIT_THREADS setting.
    std::unique_ptr<primitives::SecureRng> prover_rng;
    std::unique_ptr<contract::AuditContract> contract;
  };

  NetworkConfig config_;
  primitives::SecureRng rng_;
  chain::Blockchain chain_;
  std::unique_ptr<chain::TrustedBeacon> beacon_;
  std::unique_ptr<contract::BatchSettlement> batch_;
  storage::ChordRing ring_;
  std::map<std::string, ProviderBehavior> behavior_;
  std::vector<audit::KeyPair> owner_keys_;
  std::vector<std::vector<std::uint8_t>> owner_data_;
  std::vector<std::vector<std::vector<std::uint8_t>>> owner_shards_;
  std::vector<Placement> placements_;
  std::vector<std::unique_ptr<Deployment>> deployments_;
  std::uint64_t initial_money_ = 0;
  bool deployed_ = false;
};

}  // namespace dsaudit::sim
