// Whole-network simulation: the decentralized storage network of §III-A with
// many data owners and providers, DHT-based shard placement, one Fig. 2
// contract per (owner, provider) pair, and a shared blockchain + beacon.
//
// This is the harness behind the system-wide results (§VII-D / Fig. 10):
// tests and examples use it to measure chain growth, audit pass rates,
// escrow conservation and provider-side proving load at population scale,
// with per-provider failure injection (drop data / go offline) and — via
// set_fault_schedule — the deterministic fault engine (src/sim/fault.hpp):
// timed crash / offline / shard-loss / proof-fault / early-exit events whose
// consequences flow through slashing, timeout retries and Reed–Solomon
// repair onto Chord successors.
//
// Memory model (NetworkConfig::retention):
//
//   chain::Retention::Full      (default) — every byte materialized: owner
//     data and shards, per-deployment EncodedFiles (intended + actually-held
//     copies), prepared Provers, per-contract round history, the full tx /
//     block vectors. Bit-identical to the historical simulator; the oracle
//     mode for every exact-constant test.
//
//   chain::Retention::Streaming — O(1) memory per user/round. Owner data and
//     shard chunks are regenerated on demand from per-owner deterministic
//     seeds (the same Fr values flow through tagging and proving; the bytes
//     are never stored), provers are built transiently per challenge behind
//     the same responder interface, contracts keep bounded round rings, the
//     chain folds history into rolling aggregates, and stats()/
//     check_invariants() serve from incrementally maintained counters.
//     Everything observable that both modes define — NetworkStats, ledger
//     balances, chain bytes/gas/digest, fault counters — is identical
//     between the two, because every byte/gas figure derives from sizes and
//     every outcome from behavior, never from the (different) data bytes.
//
// Hot per-deployment lifecycle state (provider index, shard/corruption
// flags, next-due instant, settled-round count) lives in struct-of-arrays
// vectors iterated cache-linearly by the fault and repair scans.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "contract/audit_contract.hpp"
#include "sim/fault.hpp"
#include "storage/dht.hpp"
#include "storage/erasure.hpp"

namespace dsaudit::sim {

struct NetworkConfig {
  std::size_t num_owners = 10;
  std::size_t num_providers = 5;
  std::size_t file_bytes = 4096;       // per owner
  std::size_t s = 10;                  // blocks per chunk
  std::size_t erasure_data = 3;        // k-of-n shard coding; n = shards per
  std::size_t erasure_parity = 0;      //   owner = erasure_data + parity
  std::uint64_t num_audits = 5;        // rounds per contract
  chain::Timestamp audit_period_s = 3600;
  chain::Timestamp response_window_s = 600;
  std::uint64_t reward_per_audit = 10;
  std::uint64_t penalty_per_fail = 25;
  std::size_t challenged_chunks = 8;
  bool private_proofs = true;
  /// Settle every round due at one chain instant as a single batch
  /// (contract::BatchSettlement): same outcomes, ledger and chain state as
  /// inline settlement, block-level verification cost.
  bool batched_settlement = false;
  /// With batched settlement: price prove-txs by the calibrated batch
  /// discount row instead of the flat per-round gas constant.
  bool batch_gas_discount = false;
  /// With batched settlement: widen each settlement batch across a window
  /// of chain instants (seconds; rounds due inside one window settle
  /// together at its boundary, under one Fiat–Shamir seed). 0 or 1 keeps
  /// the per-instant behavior, bit-identically.
  chain::Timestamp settlement_window_s = 0;
  /// With batched settlement: post ONE aggregate settlement tx per window
  /// (Fiat–Shamir seed + aggregated KZG opening + outcome bitmap —
  /// audit::AggregateSettlement) and redeem every clean round against it
  /// instead of posting a per-round prove tx; a window containing a
  /// detected cheater falls back to individual proofs. Off (default):
  /// chain bytes/gas/ledger bit-identical to per-round settlement.
  bool aggregate_settlement = false;
  /// Fault-engine contract knobs, forwarded into every ContractTerms
  /// (0 = off, preserving the original miss-once / run-to-expiry lifecycle).
  std::uint32_t timeout_retry_limit = 0;
  std::uint32_t slash_after_consecutive = 0;
  /// Ceiling on shard re-deployments across the whole run; once reached,
  /// a further irrecoverable shard is declared lost instead of repaired.
  std::size_t max_repairs = 16;
  std::uint64_t rng_seed = 1;
  /// History/memory mode — see the header comment. Streaming bounds memory
  /// for 10^5–10^6-owner runs; Full (default) keeps the historical,
  /// fully-materialized behavior.
  chain::Retention retention = chain::Retention::Full;
  /// 0 (default): one keypair per owner, and — under full retention — one
  /// prepared Verifier inside every contract, exactly as before. N >= 1:
  /// owners share a pool of N keypairs (owner o uses key o % N) and every
  /// contract borrows one of N shared prepared Verifiers. The per-contract
  /// verifier tables are what dominate memory at 10^5+ owners; a pool makes
  /// that cost O(N) instead of O(owners) while keeping per-owner RNG
  /// streams and all observable statistics unchanged.
  std::size_t key_pool = 0;
  /// Contract-value tiers for the selective-responder adversary: 0 (default)
  /// keeps uniform terms; N >= 1 gives owners with o % N == 0 "premium"
  /// contracts at twice the reward AND penalty (funding scales to match).
  /// Zero preserves every pinned ledger constant bit-identically.
  std::size_t premium_owner_stride = 0;
};

/// Provider misbehaviour knobs for failure injection.
enum class ProviderBehavior {
  Honest,       // stores and answers everything
  DropsData,    // silently zeroes one chunk of every shard it holds
  Unresponsive  // never answers challenges
};

struct Placement {
  std::size_t owner = 0;
  std::size_t shard = 0;
  std::string provider;
};

struct NetworkStats {
  std::uint64_t total_rounds = 0;
  std::uint64_t passes = 0;
  std::uint64_t fails = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t total_gas = 0;  // audit rounds only (the §VII-B figures)
  std::size_t chain_bytes = 0;
  double total_usd = 0;
  /// Aggregate-settlement telemetry (zero unless aggregate_settlement):
  /// settle-window txs posted, their summed payload bytes and gas, and how
  /// many windows fell back to per-round proofs because of a detected
  /// cheater. Window-tx gas is accounted here, NOT in total_gas (which
  /// stays "per-round audit txs only").
  std::uint64_t aggregate_txs = 0;
  std::uint64_t aggregate_tx_bytes = 0;
  std::uint64_t aggregate_tx_gas = 0;
  std::uint64_t fallback_windows = 0;
  // Fault-engine churn/repair telemetry (all zero without a fault schedule).
  std::uint64_t crashes = 0;
  std::uint64_t offline_events = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t shard_losses = 0;
  std::uint64_t slashes = 0;          // contracts closed CloseReason::Slashed
  std::uint64_t provider_exits = 0;   // contracts closed CloseReason::ProviderExit
  std::uint64_t timeout_retries = 0;  // requeued rounds across all contracts
  std::uint64_t repairs = 0;          // shards re-deployed
  std::uint64_t bytes_repaired = 0;
  std::uint64_t data_loss_events = 0; // owners whose data was declared lost
  std::uint64_t repair_gas = 0;       // repair txs (separate from total_gas)
  // Byzantine-adversary telemetry (all zero without set_adversary). An
  // "attack" is one settled round whose strategy action was not Honest;
  // it is "detected" when the round did not Pass (the proof failed, was
  // refused at the decode boundary, or never came).
  std::uint64_t attacks_attempted = 0;
  std::uint64_t attacks_detected = 0;
  std::uint64_t attacks_slashed = 0;   // adversarial contracts closed Slashed
  /// Weight-seed replays attempted against the BatchSettlement registry by
  /// seed-grinding adversaries, and how many the registry let through
  /// (check_invariants requires accepted == 0, always).
  std::uint64_t seed_replays_attempted = 0;
  std::uint64_t seed_replays_accepted = 0;
  /// Net ledger delta of all adversarial providers' audit activity:
  /// + reward per passed round, - penalty per failed/timed-out round,
  /// - forfeited collateral at a slash, - the exit fee at a provider exit.
  std::int64_t attacker_profit = 0;
};

class NetworkSim {
 public:
  explicit NetworkSim(NetworkConfig config);

  /// Override one provider's behaviour before deploy() (default Honest).
  void set_behavior(const std::string& provider, ProviderBehavior b);

  /// Install a fault schedule before deploy(). Events are applied as
  /// sequential chain actions at their timestamps; availability is served
  /// from an immutable FaultView so concurrently-running prepare stages
  /// never observe a mutation — results are bit-identical at every
  /// DSAUDIT_THREADS setting.
  void set_fault_schedule(FaultSchedule schedule);

  /// Run `strategy` on every contract this provider serves, instead of the
  /// honest responder (before deploy). Strategies are immutable and shared:
  /// decide() is pure, so concurrent prepare stages, the sequential
  /// classification in on_round and the stats_by_walk() oracle all see the
  /// same action for the same challenge. Composes with set_fault_schedule —
  /// a fault gap silences the adversary like anyone else. Takes precedence
  /// over set_behavior for the same provider.
  void set_adversary(std::size_t provider,
                     std::shared_ptr<const attack::AdversaryStrategy> strategy);
  /// Install a whole roster (index = provider; null entries stay honest).
  void set_adversaries(const attack::AdversaryRoster& roster);

  /// Encode, tag and place every owner's shards; open and fund contracts.
  void deploy();

  /// Run the full contract horizon on the simulated chain. Fault runs open
  /// repair contracts mid-flight; the horizon extends (in bounded epochs)
  /// until every contract — original and repair — reaches Closed. Throws
  /// std::logic_error naming the stuck contracts if the extension budget
  /// runs out with contracts still open.
  void run_to_completion();

  // --- results --------------------------------------------------------------
  /// O(1): served from aggregates maintained as each round settles (and the
  /// chain/churn counters) — no history walk at any population.
  NetworkStats stats() const;
  /// The original post-hoc implementation — walks every contract's retained
  /// round records. Kept as the differential oracle for stats(); requires
  /// full retention (throws under streaming, where history is trimmed).
  NetworkStats stats_by_walk() const;
  const std::vector<Placement>& placements() const { return placements_; }
  const chain::Blockchain& chain() const { return chain_; }
  std::uint64_t balance(const std::string& who) const { return chain_.balance(who); }
  /// Sum of all balances + escrow — must be invariant (conservation check).
  /// O(1): the ledger's mint-only total supply.
  std::uint64_t total_money() const;
  /// Every contract involving this provider.
  std::vector<const contract::AuditContract*> contracts_of(
      const std::string& provider) const;

  /// The shared block-settlement engine (null unless batched_settlement).
  const contract::BatchSettlement* batch_settlement() const {
    return batch_.get();
  }

  // Deployment introspection for the cross-thread-count differential tests
  // (deploy() shards whole deployments over the pool; keys, tags and the
  // ledger must come out byte-identical at every width).
  /// Per-owner keypairs; empty when key_pool > 0 (owners share pool keys).
  const std::vector<audit::KeyPair>& owner_keys() const { return owner_keys_; }
  std::size_t num_deployments() const { return deployments_.size(); }
  const audit::FileTag& deployment_tag(std::size_t i) const {
    return deployments_.at(i)->tag;
  }

  /// True iff `owner` can still reconstruct its file from live, intact
  /// shards (original or repaired) held by honest providers.
  bool owner_can_recover(std::size_t owner) const;

  /// True iff this owner's data was declared lost: fewer than k live shards
  /// at repair time, no eligible replacement provider, or the repair budget
  /// (max_repairs) was exhausted.
  bool data_lost(std::size_t owner) const;

  /// Post-run checker; throws std::logic_error naming the violated
  /// invariant:
  ///   - money conservation (total_money unchanged since deploy), with the
  ///     O(1) ledger supply cross-checked against the account-walk sum,
  ///   - exact escrow accounting (every closed contract holds zero),
  ///   - liveness (every contract Closed; settled counter == rounds
  ///     completed; at most one Aborted round, only via provider exit),
  ///   - under full retention: every aggregate counter re-derived from the
  ///     retained round records and stats() pinned equal to stats_by_walk()
  ///     — the incremental aggregates keep their post-hoc oracle,
  ///   - recoverability-or-declared-loss for every owner,
  ///   - a terminal disposition (repair or declared loss) for every
  ///     fault-invalidated shard,
  ///   - under adversaries: no honest round misattributed (every Fail
  ///     belongs to a cheating action or fault-corrupted data), zero
  ///     accepted weight-seed replays, and the incremental adversary
  ///     counters pinned to their stats_by_walk() re-derivation.
  void check_invariants() const;

 private:
  void fill_aggregate_stats(NetworkStats& st) const;

  /// Cold per-deployment state: identity, crypto artifacts and the contract.
  /// Hot lifecycle state lives in the struct-of-arrays vectors below.
  struct Deployment {
    Placement placement;
    storage::EncodedFile file;   // full retention: what S *should* hold
    storage::EncodedFile held;   // full retention: what it actually holds
    audit::FileTag tag;
    audit::Fr name;
    std::size_t num_chunks = 0;  // chunks in this shard's encoded file
    std::unique_ptr<audit::Prover> prover;  // full retention: prepared tables
    // Private-proof masking randomness. Per-deployment (seeded from the
    // network seed + deployment index) so concurrently-prepared audit rounds
    // never share an RNG stream: results stay deterministic at every
    // DSAUDIT_THREADS setting.
    std::unique_ptr<primitives::SecureRng> prover_rng;
    // Shared-verifier mode: the per-file context the contract borrows (null
    // under streaming — contracts use the cold verification path).
    std::unique_ptr<audit::PreparedFile> file_ctx;
    std::unique_ptr<contract::AuditContract> contract;  // null iff a repair
                                                        // had no rounds left
  };

  /// What the provider actually serves for this deployment, relative to the
  /// intended shard. Full retention applies these to the materialized
  /// `held` copy at injection time; streaming applies them to the
  /// regenerated chunks at prove time. Same Fr values either way.
  enum class Corruption : std::uint8_t { None = 0, DropChunk, AllZero };

  // hot_flags_ bits.
  static constexpr std::uint8_t kShardOk = 1;      // shard data still intact
  static constexpr std::uint8_t kNeedsRepair = 2;  // a fault invalidated it
  static constexpr std::uint8_t kRepairDone = 4;   // terminal disposition
  static constexpr std::uint8_t kRetired = 8;      // superseded by a repair

  ProviderBehavior behavior_of(const std::string& provider) const;
  /// Key serving this owner: its own keypair, or its pool slot.
  const audit::KeyPair& key_of(std::size_t owner) const {
    return config_.key_pool ? pool_keys_[owner % config_.key_pool]
                            : owner_keys_[owner];
  }
  /// Shared prepared verifier for this owner's contracts, or null when each
  /// contract owns its verifier (full retention without a key pool — the
  /// historical layout).
  const audit::Verifier* shared_verifier_for(std::size_t owner) const;
  /// Owner file bytes: the stored copy under full retention, regenerated
  /// from the owner's deterministic seed under streaming.
  std::vector<std::uint8_t> owner_data_of(std::size_t owner) const;
  /// The owner's erasure-coded shards (same sourcing rule).
  std::vector<std::vector<std::uint8_t>> owner_shards_of(std::size_t owner) const;
  /// Streaming responder backend: regenerate this deployment's encoded
  /// chunks (applying its corruption state), build a transient table-less
  /// prover, and serialize the proof.
  std::optional<std::vector<std::uint8_t>> streaming_prove(
      std::size_t dep_index, const audit::Challenge& chal,
      primitives::SecureRng& rng) const;
  /// The contract-value multiplier of this owner's tier (1, or 2 for
  /// premium owners under premium_owner_stride).
  std::uint64_t tier_multiplier(std::size_t owner) const {
    return (config_.premium_owner_stride != 0 &&
            owner % config_.premium_owner_stride == 0)
               ? 2
               : 1;
  }
  /// The strategy attacking this deployment's provider (null = honest).
  const attack::AdversaryStrategy* adversary_of(std::size_t dep_index) const {
    const std::size_t p = hot_provider_[dep_index];
    return p < adversary_.size() ? adversary_[p].get() : nullptr;
  }
  /// The immutable per-deployment facts decide() sees; also rebuilt by the
  /// stats_by_walk() oracle, so it must derive only from stable state.
  attack::AdversaryContext adversary_context(std::size_t dep_index) const;
  /// Adversarial responder backend: evaluate the strategy for this
  /// challenge and produce its answer — honest proof, proof over data with
  /// the strategy's unheld chunks zeroed, ground candidate set, corrupted
  /// wire bytes, or silence. Regenerates held data like streaming_prove
  /// (identical Fr values in both retention modes).
  std::optional<std::vector<std::uint8_t>> adversarial_prove(
      std::size_t dep_index, const attack::AdversaryContext& ctx,
      const attack::AdversaryStrategy& adv, const audit::Challenge& chal,
      primitives::SecureRng& rng) const;
  /// Shared by deploy() and the repair path: terms from config (with
  /// `num_audits` rounds), deferred settlement, the fault-aware responder,
  /// the on-closed/on-round hooks, then negotiated/acked/freeze.
  /// dep.prover_rng must be set first for any provider that answers.
  void install_contract(Deployment& dep, std::size_t dep_index,
                        std::uint64_t num_audits,
                        std::optional<audit::PreparedFile> prepared);
  void apply_fault(const FaultEvent& ev, chain::Timestamp now);
  void schedule_repair(std::size_t dep_index);
  void run_repair(std::size_t dep_index, chain::Timestamp now);
  void declare_data_loss(std::size_t owner);
  bool all_contracts_closed() const { return open_contracts_ == 0; }
  /// Append one entry to every hot struct-of-arrays vector.
  void push_hot(std::uint32_t provider_index);
  bool flag(std::size_t i, std::uint8_t bit) const {
    return (hot_flags_[i] & bit) != 0;
  }
  void set_flag(std::size_t i, std::uint8_t bit) { hot_flags_[i] |= bit; }
  void clear_flag(std::size_t i, std::uint8_t bit) {
    hot_flags_[i] &= static_cast<std::uint8_t>(~bit);
  }

  NetworkConfig config_;
  primitives::SecureRng rng_;
  chain::Blockchain chain_;
  std::unique_ptr<chain::TrustedBeacon> beacon_;
  std::unique_ptr<contract::BatchSettlement> batch_;
  storage::ChordRing ring_;
  std::map<std::string, ProviderBehavior> behavior_;
  std::vector<audit::KeyPair> owner_keys_;
  // Key-pool / shared-verifier state (see NetworkConfig::key_pool).
  std::vector<audit::KeyPair> pool_keys_;
  std::vector<std::unique_ptr<audit::Verifier>> pool_verifiers_;
  std::vector<std::unique_ptr<audit::Verifier>> owner_verifiers_;  // streaming
  // Full retention only; streaming regenerates via owner_data_of/_shards_of.
  std::vector<std::vector<std::uint8_t>> owner_data_;
  std::vector<std::vector<std::vector<std::uint8_t>>> owner_shards_;
  std::vector<Placement> placements_;
  std::vector<std::unique_ptr<Deployment>> deployments_;

  // Hot per-deployment state, struct-of-arrays (indexed like deployments_).
  std::vector<std::uint32_t> hot_provider_;      // provider-N namespace index
  std::vector<std::uint8_t> hot_flags_;          // kShardOk | kNeedsRepair...
  std::vector<std::uint8_t> hot_corruption_;     // Corruption
  std::vector<chain::Timestamp> hot_next_due_;   // next challenge instant
  std::vector<std::uint32_t> hot_rounds_done_;   // settled/aborted rounds

  // Incrementally maintained aggregates (fed by the contracts' on_round /
  // on_closed callbacks; the streaming replacement for history walks).
  struct RoundAgg {
    std::uint64_t total_rounds = 0, passes = 0, fails = 0, timeouts = 0,
                  total_gas = 0, timeout_retries = 0;
  } agg_;
  std::size_t open_contracts_ = 0;

  std::uint64_t initial_money_ = 0;
  bool deployed_ = false;

  // Fault engine.
  FaultSchedule fault_schedule_;
  bool have_faults_ = false;
  FaultView fault_view_;
  std::vector<storage::NodeId> provider_ids_;        // ring ids, by index
  std::map<std::string, std::size_t> provider_index_;
  /// Live deployment serving each (owner, shard) — repair repoints this.
  std::vector<std::vector<std::size_t>> current_dep_;
  std::vector<bool> data_lost_;
  std::size_t repair_seq_ = 0;  // derives each repair's RNG stream
  struct Churn {
    std::uint64_t crashes = 0, offline_events = 0, rejoins = 0,
                  shard_losses = 0, slashes = 0, provider_exits = 0,
                  repairs = 0, bytes_repaired = 0, data_loss_events = 0,
                  repair_gas = 0;
  } churn_;

  // Byzantine adversary engine (src/attack). Strategies are shared_ptr so a
  // roster and the sim can co-own them; they are immutable after install.
  std::vector<std::shared_ptr<const attack::AdversaryStrategy>> adversary_;
  bool have_adversaries_ = false;
  struct AdvCounters {
    std::uint64_t attempted = 0, detected = 0, slashed = 0,
                  replay_attempts = 0, replays_accepted = 0;
    std::int64_t profit = 0;
    /// Fail rounds with an Honest action over uncorrupted data — the
    /// "no honest round is ever slashed/penalized" invariant counter
    /// (spans ALL deployments, adversarial or not); must stay zero.
    std::uint64_t misattributed_fails = 0;
  } advc_;
};

}  // namespace dsaudit::sim
