// Deterministic, seed-replayable fault engine for the network simulation.
//
// A FaultSchedule is a timed list of provider events — crash, offline-for-a-
// while, shard loss, dropped/delayed proof submission, early contract exit —
// either hand-written (exact-constant tests) or drawn from a seed
// (FaultSchedule::random, the chaos property tests). NetworkSim installs the
// schedule at deploy() and wires each event's consequences through the
// contract layer (missed-deadline slashing, provider-exit settlement), the
// batch-settlement layer (timeout retry at the next window boundary) and the
// storage layer (Reed–Solomon repair of lost shards onto Chord successors).
//
// Determinism contract: the same (network seed, schedule) pair produces the
// same chain bytes, ledger, events and stats at every DSAUDIT_THREADS
// setting. Two properties make that hold:
//   1. Availability is a PURE function of the schedule. FaultView precomputes
//      every provider's offline intervals / crash / exit instants at install
//      time, so concurrently-running prepare stages (where responders run)
//      only ever read immutable state.
//   2. Every mutating consequence (ring departure, shard zeroing, contract
//      abort, repair) runs as a chain::Blockchain scheduled *action* —
//      actions are sequential in schedule order at every thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"

namespace dsaudit::sim {

enum class FaultKind : std::uint8_t {
  /// Permanent: the provider goes silent forever and its held shard data is
  /// lost. Its contracts miss deadlines until the slashing threshold
  /// terminates them; repair re-deploys the lost shards.
  Crash,
  /// Transient: unresponsive for duration_s, then rejoins intact. Missed
  /// rounds inside the gap time out (and retry, if the terms allow).
  Offline,
  /// The provider keeps answering but silently loses its held chunk data:
  /// proofs verify false, rounds fail, and the shard needs repair.
  ShardLoss,
  /// The proof for any challenge issued in [at, at + 2*response_window] is
  /// lost in transit: the round times out and its first retry fails too —
  /// only a second retry (or none) saves it from the penalty.
  DropProof,
  /// The proof for any challenge issued in [at, at + response_window)
  /// misses the deadline but the provider recovers: a retry at the next
  /// settlement boundary succeeds. Distinguishes "late" from "lost".
  DelayProof,
  /// The provider walks away from every live contract at `at` (paid exit:
  /// it forfeits one penalty_per_fail per contract but keeps the rest of
  /// its collateral); its shards must be re-deployed elsewhere.
  EarlyExit,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  chain::Timestamp at = 0;
  std::size_t provider = 0;  // index into NetworkSim's provider set
  FaultKind kind = FaultKind::Offline;
  chain::Timestamp duration_s = 0;  // Offline only
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// Draw a schedule from a seed: up to max_events events over [0, horizon),
  /// uniformly mixing every FaultKind over `num_providers` providers. The
  /// same seed always yields the same schedule — chaos tests print the seed
  /// on failure and replaying it reproduces the run bit-identically.
  static FaultSchedule random(std::uint64_t seed, std::size_t num_providers,
                              chain::Timestamp horizon_s,
                              std::size_t max_events = 6);

  /// One line per event — printed by the chaos harness on failure so the
  /// offending schedule can be pinned as a regression.
  std::string describe() const;
};

/// Immutable, thread-safe view of a schedule's availability consequences.
/// Built once (before any concurrent phase); prepare-stage responders query
/// it with the challenge instant.
class FaultView {
 public:
  FaultView() = default;
  FaultView(const FaultSchedule& schedule, std::size_t num_providers,
            chain::Timestamp response_window_s);

  /// True iff the provider answers challenges issued at instant `t`:
  /// not crashed, not exited, not inside an offline/proof-fault gap.
  bool available(std::size_t provider, chain::Timestamp t) const;
  /// True iff the provider is permanently gone at/after `t` (Crash).
  bool crashed_by(std::size_t provider, chain::Timestamp t) const;

 private:
  struct Interval {
    chain::Timestamp begin = 0;
    chain::Timestamp end = 0;  // exclusive; begin == end never matches
  };
  struct Provider {
    std::vector<Interval> gaps;
    chain::Timestamp silent_from =
        std::numeric_limits<chain::Timestamp>::max();  // crash or exit
    chain::Timestamp crashed_at = std::numeric_limits<chain::Timestamp>::max();
  };
  std::vector<Provider> providers_;
};

}  // namespace dsaudit::sim
