#include "econ/incentives.hpp"

#include <algorithm>
#include <cmath>

namespace dsaudit::econ {

namespace {

struct Value {
  double profit = 0;
  double pslash = 0;
  double misses = 0;
};

}  // namespace

IncentiveOutcome evaluate(const IncentiveParams& params) {
  const std::uint64_t n = params.num_audits;
  const std::uint64_t slash_after = params.slash_after;
  // c (consecutive misses) lives in [0, slash_after): reaching slash_after
  // terminates the contract inside the transition. With slashing disabled
  // the dimension collapses to a single state.
  const std::size_t cdim = slash_after > 0 ? slash_after : 1;
  const std::size_t mdim = n + 1;
  const double q = std::clamp(params.cheat_prob, 0.0, 1.0);
  const double d = std::clamp(params.detection_prob, 0.0, 1.0);
  // A cheating round pays (cost - saving) whatever the outcome; an honest
  // round pays the full cost and always passes.
  const double cheat_base = -(params.cost_per_round - params.saving_per_cheat);
  const double honest_round = params.reward_per_audit - params.cost_per_round;

  // V[c][m] for a fixed number of rounds remaining; rolled over t.
  std::vector<Value> prev(cdim * mdim);  // t - 1 rounds remaining
  std::vector<Value> cur(cdim * mdim);
  auto at = [&](std::vector<Value>& v, std::size_t c,
                std::size_t m) -> Value& { return v[c * mdim + m]; };

  for (std::uint64_t t = 1; t <= n; ++t) {
    // After n - t rounds elapsed, at most n - t misses have accumulated.
    const std::size_t mmax = static_cast<std::size_t>(n - t);
    for (std::size_t c = 0; c < cdim; ++c) {
      for (std::size_t m = 0; m <= mmax; ++m) {
        const Value& pass_next = at(prev, 0, m);
        Value v;
        // Honest branch: guaranteed pass, consecutive counter resets.
        v.profit += (1 - q) * (honest_round + pass_next.profit);
        v.pslash += (1 - q) * pass_next.pslash;
        v.misses += (1 - q) * pass_next.misses;
        // Cheat + undetected: pass on corrupted service.
        v.profit += q * (1 - d) *
                    (params.reward_per_audit + cheat_base + pass_next.profit);
        v.pslash += q * (1 - d) * pass_next.pslash;
        v.misses += q * (1 - d) * pass_next.misses;
        // Cheat + detected: -penalty, consecutive counter advances.
        const double fail_now = cheat_base - params.penalty_per_fail;
        if (slash_after > 0 && c + 1 >= slash_after) {
          // Slash: forfeit the remaining collateral, contract terminates.
          const double forfeited =
              params.penalty_per_fail * static_cast<double>(n - (m + 1));
          v.profit += q * d * (fail_now - forfeited);
          v.pslash += q * d;
          v.misses += q * d;
        } else {
          const std::size_t cnext = slash_after > 0 ? c + 1 : 0;
          const Value& fail_next = at(prev, cnext, m + 1);
          v.profit += q * d * (fail_now + fail_next.profit);
          v.pslash += q * d * fail_next.pslash;
          v.misses += q * d * (1 + fail_next.misses);
        }
        at(cur, c, m) = v;
      }
    }
    std::swap(prev, cur);
  }

  const Value root = n > 0 ? at(prev, 0, 0) : Value{};
  IncentiveOutcome out;
  out.honest_profit = static_cast<double>(n) * honest_round;
  out.adversary_profit = root.profit;
  out.advantage = out.adversary_profit - out.honest_profit;
  out.slash_probability = root.pslash;
  out.expected_misses = root.misses;
  out.deterred = out.advantage <= 0;
  return out;
}

std::vector<SweepRow> sweep(const IncentiveParams& base,
                            std::span<const double> detection_grid,
                            std::span<const double> penalty_grid) {
  std::vector<SweepRow> rows;
  rows.reserve(detection_grid.size() * penalty_grid.size());
  for (double d : detection_grid) {
    for (double p : penalty_grid) {
      IncentiveParams params = base;
      params.detection_prob = d;
      params.penalty_per_fail = p;
      rows.push_back(SweepRow{d, p, evaluate(params)});
    }
  }
  return rows;
}

double break_even_penalty(const IncentiveParams& base,
                          std::span<const double> penalty_grid) {
  for (double p : penalty_grid) {
    IncentiveParams params = base;
    params.penalty_per_fail = p;
    if (evaluate(params).deterred) return p;
  }
  return -1;
}

double partial_storage_detection(double stored_fraction, std::uint64_t k,
                                 std::uint64_t num_chunks) {
  const double f = std::clamp(stored_fraction, 0.0, 1.0);
  if (k == 0) return 0;
  if (num_chunks == 0) return 1 - std::pow(f, static_cast<double>(k));
  const std::uint64_t held = static_cast<std::uint64_t>(
      std::llround(f * static_cast<double>(num_chunks)));
  const std::uint64_t draws = std::min(k, num_chunks);
  if (draws > held) return 1;  // cannot cover the challenge
  // Exact hypergeometric survival: every challenged chunk lands on a held
  // one when drawing `draws` distinct chunks out of num_chunks.
  double survive = 1;
  for (std::uint64_t i = 0; i < draws; ++i) {
    survive *= static_cast<double>(held - i) /
               static_cast<double>(num_chunks - i);
  }
  return 1 - survive;
}

}  // namespace dsaudit::econ
