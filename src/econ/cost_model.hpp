// §VII cost and scalability models: per-audit USD, one-time pk storage,
// annual fees (Fig. 6), blockchain throughput/user-base ceilings and chain
// growth (Fig. 10), provider-side aggregate proving load.
#pragma once

#include <cstdint>

#include "chain/gas.hpp"

namespace dsaudit::econ {

/// Everything needed to price one audit round on chain.
struct AuditCostModel {
  chain::GasSchedule gas = chain::GasSchedule::calibrated();
  chain::PriceModel price;
  std::size_t proof_bytes = 288;      // 96 without privacy
  std::size_t challenge_bytes = 48;   // C1, C2, r
  double verify_ms = 7.2;             // measured on-chain verification time
  /// Split of verify_ms for the batched-settlement discount row: the
  /// per-round aggregation work (challenge expansion, chi, weighting) every
  /// round pays, and the pairing + final-exponentiation work a whole batch
  /// shares. Calibrated so prep + pair == verify_ms: a batch of one prices
  /// exactly like the unbatched anchor (589,000 gas at 288 bytes).
  double verify_prep_ms = 1.8;
  double verify_pair_ms = 5.4;
  double beacon_usd_per_round = 0.01; // §VII-B randomness cost (0.01-0.05)

  std::uint64_t gas_per_audit() const {
    return gas.audit_tx_gas(proof_bytes, challenge_bytes, verify_ms);
  }
  double usd_per_audit() const {
    return price.usd(gas_per_audit()) + beacon_usd_per_round;
  }

  /// Calibrated per-round verification time when `batch_size` rounds settle
  /// in one combined check: prep stays per-round, the 3 pairings amortize.
  double batched_verify_ms(std::size_t batch_size) const;
  /// The batched-settlement gas row: deterministic in batch_size alone.
  std::uint64_t gas_per_audit_batched(std::size_t batch_size) const;

  /// Window-aware row: with a settlement window spanning `window` chain
  /// instants of `rounds_per_instant` due rounds each, one flush settles
  /// their product — the batched row evaluated at that fattened size. A
  /// window of 1 reproduces the per-instant batched row exactly (and so,
  /// at one round per instant, the unbatched 589,000-gas anchor).
  double windowed_verify_ms(std::size_t rounds_per_instant,
                            std::size_t window) const;
  std::uint64_t gas_per_audit_windowed(std::size_t rounds_per_instant,
                                       std::size_t window) const;

  /// Repair row (fault engine): re-deploying one lost shard puts the
  /// replacement shard's fresh tag set plus a placement record (new
  /// provider, file name — 40 bytes) on chain, mirroring the `negotiated`
  /// storage tx of the original deployment. Deterministic in tag_bytes
  /// alone, like every other settlement figure.
  std::uint64_t repair_gas(std::size_t tag_bytes) const;
  double repair_usd(std::size_t tag_bytes) const;
};

/// Fig. 6: total auditing fees over a contract, with a tunable frequency and
/// the §III-A redundancy remark (auditing cost scales linearly with the
/// number of providers holding shards).
double contract_fee_usd(const AuditCostModel& model, unsigned duration_days,
                        double audits_per_day, unsigned num_providers = 1);

/// One-time on-chain public-key storage cost (Fig. 4 sizes + SSTORE gas).
struct PkStorageCost {
  std::size_t bytes = 0;
  std::uint64_t gas = 0;
  double usd = 0;
};
PkStorageCost pk_storage_cost(std::size_t s, bool with_privacy,
                              const AuditCostModel& model);

/// §VII-D throughput: a dedicated audit chain with fixed block size/interval.
struct ThroughputModel {
  std::size_t block_bytes = 18 * 1024;  // average Ethereum block, per paper
  double block_interval_s = 15.0;
  std::size_t block_overhead_bytes = 500;
  std::size_t tx_overhead_bytes = 110;
  std::size_t audit_tx_bytes = 288 + 48;

  double tx_per_second() const;
  /// Max concurrently-active users given per-user audit cadence and shard
  /// redundancy (each user audits `num_providers` providers).
  std::size_t max_users(double audits_per_user_per_day,
                        unsigned num_providers = 1) const;
  /// Fig. 10 (left): chain growth for a user base, GB/year.
  double chain_growth_gb_per_year(std::size_t users, double audits_per_user_per_day,
                                  unsigned num_providers = 1) const;
};

/// Fig. 10 (right): total proving time per audit round for a provider
/// holding data of `users_on_provider` distinct owners (proofs cannot be
/// merged across owners' keys, so the work is linear — the paper's
/// regression assumption).
double provider_prove_time_s(std::size_t users_on_provider, double per_proof_ms);

}  // namespace dsaudit::econ
