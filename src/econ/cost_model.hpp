// §VII cost and scalability models: per-audit USD, one-time pk storage,
// annual fees (Fig. 6), blockchain throughput/user-base ceilings and chain
// growth (Fig. 10), provider-side aggregate proving load.
#pragma once

#include <cstdint>

#include "chain/gas.hpp"

namespace dsaudit::econ {

/// The paper's §VII operating point, shared by AuditCostModel (gas pricing)
/// and ThroughputModel (chain-growth modeling) so the two can never
/// desynchronize. cost_model.cpp static_asserts pin these to the real wire
/// structs (audit::ProofPrivate::kWireSize, the 48-byte beacon output) —
/// a proof-shape change breaks the build here instead of silently skewing
/// one model.
inline constexpr std::size_t kDefaultProofBytes = 288;      // ProofPrivate
inline constexpr std::size_t kDefaultChallengeBytes = 48;   // beacon bytes
inline constexpr std::size_t kDefaultAuditTxBytes =
    kDefaultProofBytes + kDefaultChallengeBytes;

/// Everything needed to price one audit round on chain.
struct AuditCostModel {
  chain::GasSchedule gas = chain::GasSchedule::calibrated();
  chain::PriceModel price;
  std::size_t proof_bytes = kDefaultProofBytes;      // 96 without privacy
  std::size_t challenge_bytes = kDefaultChallengeBytes;  // C1, C2, r
  double verify_ms = 7.2;             // measured on-chain verification time
  /// Split of verify_ms for the batched-settlement discount row: the
  /// per-round aggregation work (challenge expansion, chi, weighting) every
  /// round pays, and the pairing + final-exponentiation work a whole batch
  /// shares. Calibrated so prep + pair == verify_ms: a batch of one prices
  /// exactly like the unbatched anchor (589,000 gas at 288 bytes).
  double verify_prep_ms = 1.8;
  double verify_pair_ms = 5.4;
  /// Aggregate-settlement calibration: the on-chain check of one aggregate
  /// window tx re-derives the weight schedule from the posted seed and runs
  /// the window's single weighted pairing equation — per-round prep
  /// (challenge expansion, chi MSM, weighting) plus one shared pairing +
  /// final-exponentiation tail. Unlike the verify_prep/pair split above
  /// (kept at its historical PR-4 values for gas bit-compatibility), these
  /// are calibrated against the CURRENT measured engine
  /// (BENCH_settlement.json window sweep: 0.5 + 2.0/64 ≈ 0.531 ms/round at
  /// the 64-round window).
  double aggregate_prep_ms = 0.5;
  double aggregate_pair_ms = 2.0;
  double beacon_usd_per_round = 0.01; // §VII-B randomness cost (0.01-0.05)

  std::uint64_t gas_per_audit() const {
    return gas.audit_tx_gas(proof_bytes, challenge_bytes, verify_ms);
  }
  double usd_per_audit() const {
    return price.usd(gas_per_audit()) + beacon_usd_per_round;
  }

  /// Calibrated per-round verification time when `batch_size` rounds settle
  /// in one combined check: prep stays per-round, the 3 pairings amortize.
  double batched_verify_ms(std::size_t batch_size) const;
  /// The batched-settlement gas row: deterministic in batch_size alone.
  std::uint64_t gas_per_audit_batched(std::size_t batch_size) const;

  /// Window-aware row: with a settlement window spanning `window` chain
  /// instants of `rounds_per_instant` due rounds each, one flush settles
  /// their product — the batched row evaluated at that fattened size. A
  /// window of 1 reproduces the per-instant batched row exactly (and so,
  /// at one round per instant, the unbatched 589,000-gas anchor).
  double windowed_verify_ms(std::size_t rounds_per_instant,
                            std::size_t window) const;
  std::uint64_t gas_per_audit_windowed(std::size_t rounds_per_instant,
                                       std::size_t window) const;

  /// Aggregate-settlement rows: one constant-size tx per window (seed +
  /// aggregated KZG opening + outcome bitmap) replaces every per-round
  /// prove tx. Bytes come from the real wire encoding
  /// (audit::AggregateSettlement::serialized_size_for — 88 + ceil(rounds/8))
  /// so the model can never drift from the serializer.
  std::size_t aggregate_tx_bytes(std::size_t rounds) const;
  double aggregate_verify_ms(std::size_t rounds) const;
  /// Gas of the whole window tx: base + calldata over the aggregate
  /// encoding + the aggregate check's verification gas.
  std::uint64_t gas_per_window_tx(std::size_t rounds) const;
  /// Per-audited-round share of the window tx — the row BENCH_settlement
  /// commits next to the legacy 589,000-gas anchor.
  std::uint64_t gas_per_audit_aggregated(std::size_t rounds) const;

  /// Repair row (fault engine): re-deploying one lost shard puts the
  /// replacement shard's fresh tag set plus a placement record (new
  /// provider, file name — 40 bytes) on chain, mirroring the `negotiated`
  /// storage tx of the original deployment. Deterministic in tag_bytes
  /// alone, like every other settlement figure.
  std::uint64_t repair_gas(std::size_t tag_bytes) const;
  double repair_usd(std::size_t tag_bytes) const;
};

/// Fig. 6: total auditing fees over a contract, with a tunable frequency and
/// the §III-A redundancy remark (auditing cost scales linearly with the
/// number of providers holding shards).
double contract_fee_usd(const AuditCostModel& model, unsigned duration_days,
                        double audits_per_day, unsigned num_providers = 1);

/// One-time on-chain public-key storage cost (Fig. 4 sizes + SSTORE gas).
struct PkStorageCost {
  std::size_t bytes = 0;
  std::uint64_t gas = 0;
  double usd = 0;
};
PkStorageCost pk_storage_cost(std::size_t s, bool with_privacy,
                              const AuditCostModel& model);

/// §VII-D throughput: a dedicated audit chain with fixed block size/interval.
struct ThroughputModel {
  std::size_t block_bytes = 18 * 1024;  // average Ethereum block, per paper
  double block_interval_s = 15.0;
  std::size_t block_overhead_bytes = 500;
  std::size_t tx_overhead_bytes = 110;
  /// Per-round audit footprint (proof + challenge reference) — the same
  /// operating point AuditCostModel prices, via the shared constants above.
  std::size_t audit_tx_bytes = kDefaultAuditTxBytes;

  double tx_per_second() const;
  /// Max concurrently-active users given per-user audit cadence and shard
  /// redundancy (each user audits `num_providers` providers).
  std::size_t max_users(double audits_per_user_per_day,
                        unsigned num_providers = 1) const;
  /// Fig. 10 (left): chain growth for a user base, GB/year.
  double chain_growth_gb_per_year(std::size_t users, double audits_per_user_per_day,
                                  unsigned num_providers = 1) const;
};

/// Fig. 10 (right): total proving time per audit round for a provider
/// holding data of `users_on_provider` distinct owners (proofs cannot be
/// merged across owners' keys, so the work is linear — the paper's
/// regression assumption).
double provider_prove_time_s(std::size_t users_on_provider, double per_proof_ms);

}  // namespace dsaudit::econ
