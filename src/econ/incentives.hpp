// Rational-adversary incentive model: is cheating ever profitable under the
// contract's reward / penalty / slash schedule?
//
// The contract charges -penalty per failed or timed-out round and slashes the
// remaining collateral (penalty * (num_audits - misses)) once
// `slash_after_consecutive` misses land in a row — exactly the accounting
// audit_contract.cpp implements and NetworkSim's attacker_profit counter
// measures. This model closes the loop: a finite-horizon dynamic program over
// (rounds remaining, consecutive misses, total misses) computes the exact
// expected profit of a randomized cheating strategy, so every strategy in the
// attack zoo gets a verdict (deterred or profitable) instead of a vibe.
//
// Strategy mapping (see bench/bench_attack.cpp for the sweep):
//   partial-storage  cheat_prob = 1, detection = 1 - f^k (f = stored
//                    fraction, k = challenged chunks), saving = (1-f) * cost
//   colluding        cheat_prob = strike rate, detection = 1 (a corrupted
//                    proof never verifies), saving = cost of serving
//   selective        same as colluding but only on sub-threshold contracts
//   seed-grinding    cheat_prob = 0 under the replay registry (every reused
//                    weight seed is refused, so grinding degenerates to
//                    honest proving) — profitable iff honest is
//   malformed-bytes  cheat_prob = rate, detection = 1 (typed decode
//                    rejection -> no ticket -> round fails)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dsaudit::econ {

struct IncentiveParams {
  std::uint64_t num_audits = 32;
  /// Misses in a row that trigger the slash (contract
  /// slash_after_consecutive). 0 disables slashing in the model.
  std::uint64_t slash_after = 3;
  double reward_per_audit = 10;
  double penalty_per_fail = 20;
  /// Per-round probability the adversary chooses to cheat (strategy strike
  /// rate). 1 = cheats every round, 0 = honest.
  double cheat_prob = 1.0;
  /// P(round fails | adversary cheated it): the audit's per-round detection
  /// power. For proof-corrupting strategies this is 1; for partial storage
  /// it is P(challenge touches an unheld chunk).
  double detection_prob = 1.0;
  /// Operating cost of serving one round honestly (storage + proving),
  /// and the fraction of it a cheating round avoids.
  double cost_per_round = 2.0;
  double saving_per_cheat = 2.0;
};

struct IncentiveOutcome {
  double honest_profit = 0;     ///< num_audits * (reward - cost)
  double adversary_profit = 0;  ///< expected, from the DP
  double advantage = 0;         ///< adversary_profit - honest_profit
  double slash_probability = 0; ///< P(contract ends slashed)
  double expected_misses = 0;
  bool deterred = false;        ///< advantage <= 0: honesty dominates
};

/// Exact finite-horizon DP over (rounds left, consecutive misses, total
/// misses); O(num_audits^2 * slash_after) time.
IncentiveOutcome evaluate(const IncentiveParams& params);

/// One row of the detection x penalty sweep grid.
struct SweepRow {
  double detection_prob = 0;
  double penalty_per_fail = 0;
  IncentiveOutcome outcome;
};

/// Evaluate `base` at every (detection, penalty) grid point.
std::vector<SweepRow> sweep(const IncentiveParams& base,
                            std::span<const double> detection_grid,
                            std::span<const double> penalty_grid);

/// Smallest penalty (scanning `penalty_grid` in order) that deters the
/// adversary, or a negative value if none on the grid does.
double break_even_penalty(const IncentiveParams& base,
                          std::span<const double> penalty_grid);

/// Detection probability that a partial-storage prover with `stored_fraction`
/// of the chunks survives: 1 - C(held, k)/C(n, k), the exact hypergeometric
/// miss probability for k challenged chunks out of n (falls back to the
/// 1 - f^k sampling-with-replacement form when k > held).
double partial_storage_detection(double stored_fraction, std::uint64_t k,
                                 std::uint64_t num_chunks);

}  // namespace dsaudit::econ
