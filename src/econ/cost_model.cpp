#include "econ/cost_model.hpp"

#include <stdexcept>
#include <tuple>

#include "audit/types.hpp"
#include "chain/beacon.hpp"

namespace dsaudit::econ {

// One source of truth: the model's shared operating-point constants are the
// real wire sizes. A proof-shape or beacon change fails HERE, loudly,
// instead of desynchronizing gas pricing from chain-growth modeling.
static_assert(kDefaultProofBytes == audit::ProofPrivate::kWireSize);
static_assert(kDefaultChallengeBytes ==
              std::tuple_size_v<chain::BeaconOutput>);

double AuditCostModel::batched_verify_ms(std::size_t batch_size) const {
  if (batch_size == 0) {
    throw std::invalid_argument("batched_verify_ms: empty batch");
  }
  return verify_prep_ms + verify_pair_ms / static_cast<double>(batch_size);
}

std::uint64_t AuditCostModel::gas_per_audit_batched(std::size_t batch_size) const {
  return gas.audit_tx_gas(proof_bytes, challenge_bytes,
                          batched_verify_ms(batch_size));
}

double AuditCostModel::windowed_verify_ms(std::size_t rounds_per_instant,
                                          std::size_t window) const {
  if (window == 0) {
    throw std::invalid_argument("windowed_verify_ms: empty window");
  }
  return batched_verify_ms(rounds_per_instant * window);
}

std::uint64_t AuditCostModel::gas_per_audit_windowed(
    std::size_t rounds_per_instant, std::size_t window) const {
  return gas.audit_tx_gas(proof_bytes, challenge_bytes,
                          windowed_verify_ms(rounds_per_instant, window));
}

std::size_t AuditCostModel::aggregate_tx_bytes(std::size_t rounds) const {
  if (rounds == 0) {
    throw std::invalid_argument("aggregate_tx_bytes: empty window");
  }
  return audit::AggregateSettlement::serialized_size_for(rounds);
}

double AuditCostModel::aggregate_verify_ms(std::size_t rounds) const {
  if (rounds == 0) {
    throw std::invalid_argument("aggregate_verify_ms: empty window");
  }
  return aggregate_prep_ms * static_cast<double>(rounds) + aggregate_pair_ms;
}

std::uint64_t AuditCostModel::gas_per_window_tx(std::size_t rounds) const {
  return gas.tx_base + gas.calldata_gas(aggregate_tx_bytes(rounds)) +
         static_cast<std::uint64_t>(gas.verify_gas_per_ms *
                                    aggregate_verify_ms(rounds));
}

std::uint64_t AuditCostModel::gas_per_audit_aggregated(
    std::size_t rounds) const {
  // Integer per-round share; the window tx's total is the exact figure.
  return gas_per_window_tx(rounds) / rounds;
}

std::uint64_t AuditCostModel::repair_gas(std::size_t tag_bytes) const {
  // Placement record: new provider address (20) + file name (16) + shard
  // index (4). The tag set and the record both land in contract storage so
  // future audits can run against the replacement shard.
  const std::size_t record_bytes = tag_bytes + 40;
  return gas.tx_base + gas.calldata_gas(record_bytes) +
         gas.storage_word * ((record_bytes + 31) / 32);
}

double AuditCostModel::repair_usd(std::size_t tag_bytes) const {
  return price.usd(repair_gas(tag_bytes));
}

double contract_fee_usd(const AuditCostModel& model, unsigned duration_days,
                        double audits_per_day, unsigned num_providers) {
  if (audits_per_day <= 0 || num_providers == 0) {
    throw std::invalid_argument("contract_fee_usd: bad frequency/providers");
  }
  double audits = duration_days * audits_per_day * num_providers;
  return audits * model.usd_per_audit();
}

PkStorageCost pk_storage_cost(std::size_t s, bool with_privacy,
                              const AuditCostModel& model) {
  // Same accounting as PublicKey::serialized_size: s (8) + two G2 (128) +
  // (s-1) G1 powers (32 each) + optional GT base (192).
  std::size_t powers = s >= 2 ? s - 1 : 1;
  PkStorageCost c;
  c.bytes = 8 + 64 + 64 + 32 * powers + (with_privacy ? 192 : 0);
  c.gas = model.gas.tx_base + model.gas.calldata_gas(c.bytes) +
          model.gas.storage_word * ((c.bytes + 31) / 32);
  c.usd = model.price.usd(c.gas);
  return c;
}

double ThroughputModel::tx_per_second() const {
  double usable = static_cast<double>(block_bytes - block_overhead_bytes);
  double per_tx = static_cast<double>(audit_tx_bytes + tx_overhead_bytes);
  return usable / per_tx / block_interval_s;
}

std::size_t ThroughputModel::max_users(double audits_per_user_per_day,
                                       unsigned num_providers) const {
  if (audits_per_user_per_day <= 0 || num_providers == 0) {
    throw std::invalid_argument("ThroughputModel::max_users: bad parameters");
  }
  double tx_per_day = tx_per_second() * 86400.0;
  return static_cast<std::size_t>(tx_per_day /
                                  (audits_per_user_per_day * num_providers));
}

double ThroughputModel::chain_growth_gb_per_year(
    std::size_t users, double audits_per_user_per_day,
    unsigned num_providers) const {
  double tx_per_year = users * audits_per_user_per_day * num_providers * 365.0;
  double bytes = tx_per_year * (audit_tx_bytes + tx_overhead_bytes);
  // Plus block overhead amortized over the blocks those txs occupy.
  double txs_per_block = static_cast<double>(block_bytes - block_overhead_bytes) /
                         (audit_tx_bytes + tx_overhead_bytes);
  bytes += tx_per_year / txs_per_block * block_overhead_bytes;
  return bytes / (1024.0 * 1024.0 * 1024.0);
}

double provider_prove_time_s(std::size_t users_on_provider, double per_proof_ms) {
  return users_on_provider * per_proof_ms / 1000.0;
}

}  // namespace dsaudit::econ
