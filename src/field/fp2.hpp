// Quadratic extension Fp2 = Fp[u]/(u^2 + 1). Valid because p ≡ 3 (mod 4),
// so -1 is a quadratic non-residue mod p.
#pragma once

#include "field/fp.hpp"

namespace dsaudit::ff {

class Fp2 {
 public:
  Fp c0, c1;  // c0 + c1 * u

  Fp2() = default;
  Fp2(const Fp& a, const Fp& b) : c0(a), c1(b) {}

  static Fp2 zero() { return {}; }
  static Fp2 one() { return {Fp::one(), Fp::zero()}; }
  static Fp2 from_u64(u64 a, u64 b) { return {Fp::from_u64(a), Fp::from_u64(b)}; }
  static Fp2 random(primitives::SecureRng& rng) {
    return {Fp::random(rng), Fp::random(rng)};
  }

  bool is_zero() const { return c0.is_zero() && c1.is_zero(); }
  bool is_one() const { return c0.is_one() && c1.is_zero(); }

  friend Fp2 operator+(const Fp2& a, const Fp2& b) {
    return {a.c0 + b.c0, a.c1 + b.c1};
  }
  friend Fp2 operator-(const Fp2& a, const Fp2& b) {
    return {a.c0 - b.c0, a.c1 - b.c1};
  }
  Fp2 operator-() const { return {-c0, -c1}; }

  friend Fp2 operator*(const Fp2& a, const Fp2& b) {
    // Karatsuba: (a0+a1u)(b0+b1u) = a0b0 - a1b1 + ((a0+a1)(b0+b1)-a0b0-a1b1)u
    Fp v0 = a.c0 * b.c0;
    Fp v1 = a.c1 * b.c1;
    Fp mid = (a.c0 + a.c1) * (b.c0 + b.c1);
    return {v0 - v1, mid - v0 - v1};
  }
  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  Fp2 mul_fp(const Fp& s) const { return {c0 * s, c1 * s}; }

  Fp2 dbl() const { return {c0 + c0, c1 + c1}; }
  Fp2 triple() const { return *this + *this + *this; }

  Fp2 square() const {
    // (a+bu)^2 = (a+b)(a-b) + 2ab u
    Fp ab = c0 * c1;
    return {(c0 + c1) * (c0 - c1), ab + ab};
  }

  /// Complex conjugate — also the p-power Frobenius on Fp2.
  Fp2 conjugate() const { return {c0, -c1}; }
  Fp2 frobenius() const { return conjugate(); }

  Fp2 inverse() const {
    // 1/(a+bu) = (a-bu)/(a^2+b^2)
    Fp norm = c0.square() + c1.square();
    Fp inv = norm.inverse();
    return {c0 * inv, -(c1 * inv)};
  }

  /// Multiply by the sextic non-residue xi = 9 + u (tower constant).
  Fp2 mul_by_xi() const {
    // (9+u)(a+bu) = (9a - b) + (a + 9b)u
    Fp nine_a = times9(c0);
    Fp nine_b = times9(c1);
    return {nine_a - c1, c0 + nine_b};
  }

  friend bool operator==(const Fp2& a, const Fp2& b) = default;

  /// Canonical 64-byte big-endian encoding (c0 || c1).
  std::array<std::uint8_t, 64> to_bytes() const {
    std::array<std::uint8_t, 64> out;
    c0.to_be_bytes(std::span<std::uint8_t, 32>(out.data(), 32));
    c1.to_be_bytes(std::span<std::uint8_t, 32>(out.data() + 32, 32));
    return out;
  }

 private:
  static Fp times9(const Fp& x) {
    Fp x2 = x + x;
    Fp x4 = x2 + x2;
    Fp x8 = x4 + x4;
    return x8 + x;
  }
};

/// The sextic non-residue xi = 9 + u defining Fp6 = Fp2[v]/(v^3 - xi).
inline Fp2 xi() { return Fp2::from_u64(9, 1); }

}  // namespace dsaudit::ff
