// Quadratic extension Fp12 = Fp6[w]/(w^2 - v). Target group GT of the
// pairing lives in the order-r cyclotomic subgroup of Fp12*.
//
// Frobenius maps use the constants gamma_k = xi^{k(p-1)/6} in Fp2, derived
// once at init (see tower_consts.cpp) rather than hard-coded.
#pragma once

#include <span>
#include <vector>

#include "field/batch_inverse.hpp"
#include "field/fp6.hpp"

namespace dsaudit::ff {

/// gamma_k = xi^{k(p-1)/6} for k = 0..5 (gamma[0] = 1), plus the Fp-valued
/// constants for the squared Frobenius used by the G2 endomorphism.
struct TowerConsts {
  std::array<Fp2, 6> gamma;     // for Frobenius on Fp12/Fp6
  std::array<Fp2, 6> gamma_p2;  // xi^{k(p^2-1)/6}: direct p^2-Frobenius
  std::array<Fp2, 6> gamma_p3;  // xi^{k(p^3-1)/6}: direct p^3-Frobenius
  Fp2 twist_frob_x;             // gamma[2]: x-coeff of untwist-Frobenius-twist
  Fp2 twist_frob_y;             // gamma[3]: y-coeff
  Fp2 twist_frob2_x;            // xi^{(p^2-1)/3}
  Fp2 twist_frob2_y;            // xi^{(p^2-1)/2}
};
const TowerConsts& tower_consts();

class Fp12 {
 public:
  Fp6 c0, c1;  // c0 + c1 w

  Fp12() = default;
  Fp12(const Fp6& a, const Fp6& b) : c0(a), c1(b) {}

  static Fp12 zero() { return {}; }
  static Fp12 one() { return {Fp6::one(), Fp6::zero()}; }
  static Fp12 random(primitives::SecureRng& rng) {
    return {Fp6::random(rng), Fp6::random(rng)};
  }

  bool is_zero() const { return c0.is_zero() && c1.is_zero(); }
  bool is_one() const { return c0.is_one() && c1.is_zero(); }

  friend Fp12 operator+(const Fp12& a, const Fp12& b) {
    return {a.c0 + b.c0, a.c1 + b.c1};
  }
  friend Fp12 operator-(const Fp12& a, const Fp12& b) {
    return {a.c0 - b.c0, a.c1 - b.c1};
  }
  Fp12 operator-() const { return {-c0, -c1}; }

  friend Fp12 operator*(const Fp12& a, const Fp12& b) {
    // Karatsuba over Fp6 with w^2 = v.
    Fp6 v0 = a.c0 * b.c0;
    Fp6 v1 = a.c1 * b.c1;
    Fp6 mid = (a.c0 + a.c1) * (b.c0 + b.c1);
    return {v0 + v1.mul_by_v(), mid - v0 - v1};
  }
  Fp12& operator*=(const Fp12& o) { return *this = *this * o; }

  Fp12 square() const {
    // Complex squaring: (a + bw)^2 = (a^2 + v b^2) + 2ab w
    Fp6 ab = c0 * c1;
    Fp6 a2 = c0.square();
    Fp6 b2 = c1.square();
    return {a2 + b2.mul_by_v(), ab + ab};
  }

  /// Multiplication by a sparse element (A, 0, 0) + (B, C, 0)w — the shape
  /// of every Miller-loop line evaluation. ~35% cheaper than generic mul.
  Fp12 mul_by_line(const Fp2& a, const Fp2& b, const Fp2& c) const {
    // v0 = c0 * (A,0,0): coefficient-wise scaling by A.
    Fp6 v0 = c0.mul_fp2(a);
    // v1 = c1 * (B + Cv): (y0+y1v+y2v^2)(B+Cv)
    //    = (y0B + xi y2C) + (y1B + y0C)v + (y2B + y1C)v^2.
    Fp6 v1{c1.c0 * b + (c1.c2 * c).mul_by_xi(), c1.c1 * b + c1.c0 * c,
           c1.c2 * b + c1.c1 * c};
    // Karatsuba cross term with l0 + l1 = (A+B) + Cv.
    Fp6 sum = c0 + c1;
    Fp2 ab_sum = a + b;
    Fp6 mid{sum.c0 * ab_sum + (sum.c2 * c).mul_by_xi(), sum.c1 * ab_sum + sum.c0 * c,
            sum.c2 * ab_sum + sum.c1 * c};
    return {v0 + v1.mul_by_v(), mid - v0 - v1};
  }

  /// Squaring restricted to the cyclotomic subgroup (elements of order
  /// dividing p^4 - p^2 + 1, i.e. anything that already passed the easy part
  /// of the final exponentiation). Granger–Scott compressed squaring over the
  /// three Fp4 subalgebras — ~2x cheaper than the generic square(), and the
  /// dominant operation of the hard part's exponentiations by the BN
  /// parameter. NOT valid for general Fp12 elements.
  Fp12 cyclotomic_square() const {
    // With x = (x0 + x1 v + x2 v^2) + (x3 + x4 v + x5 v^2) w, the pairs
    // (x0, x4), (x3, x2), (x1, x5) each span an Fp4 = Fp2[y]/(y^2 - xi) in
    // which a unit-norm element squares with 2 Fp2 squarings (Eq. 3.2 of
    // eprint 2009/565).
    Fp2 t0 = c1.c1.square();                            // x4^2
    Fp2 t1 = c0.c0.square();                            // x0^2
    Fp2 t6 = (c1.c1 + c0.c0).square() - t0 - t1;        // 2 x0 x4
    Fp2 t2 = c0.c2.square();                            // x2^2
    Fp2 t3 = c1.c0.square();                            // x3^2
    Fp2 t7 = (c0.c2 + c1.c0).square() - t2 - t3;        // 2 x2 x3
    Fp2 t4 = c1.c2.square();                            // x5^2
    Fp2 t5 = c0.c1.square();                            // x1^2
    Fp2 t8 = ((c1.c2 + c0.c1).square() - t4 - t5).mul_by_xi();  // 2 x1 x5 xi
    t0 = t0.mul_by_xi() + t1;                           // x4^2 xi + x0^2
    t2 = t2.mul_by_xi() + t3;                           // x2^2 xi + x3^2
    t4 = t4.mul_by_xi() + t5;                           // x5^2 xi + x1^2
    return {Fp6{(t0 - c0.c0).dbl() + t0, (t2 - c0.c1).dbl() + t2,
                (t4 - c0.c2).dbl() + t4},
            Fp6{(t8 + c1.c0).dbl() + t8, (t6 + c1.c1).dbl() + t6,
                (t7 + c1.c2).dbl() + t7}};
  }

  /// GT exponentiation by an arbitrary 256-bit integer: LSB-first
  /// square-and-multiply with cyclotomic squarings. The one shared ladder —
  /// the u64 overload delegates here — and the differential oracle for
  /// every fancier GT exponentiation (Karabina chains, multi_pow). Only
  /// valid on elements of the cyclotomic subgroup (every GT element
  /// qualifies).
  Fp12 cyclotomic_pow_u256(const U256& e) const {
    Fp12 result = one();
    Fp12 base = *this;
    unsigned n = e.bit_length();
    for (unsigned i = 0; i < n; ++i) {
      if (e.bit(i)) result *= base;
      base = base.cyclotomic_square();
    }
    return result;
  }

  /// Same ladder, u64 exponent (the final-exponentiation t-power chains).
  Fp12 cyclotomic_pow_u64(u64 e) const { return cyclotomic_pow_u256(U256{e}); }

  /// Karabina compressed form of a cyclotomic-subgroup element: in the
  /// Fp2[w]/(w^6 - xi) view of the tower (x = sum h_i w^i with h_i =
  /// (c0.c0, c1.c0, c0.c1, c1.c1, c0.c2, c1.c2)), the four coefficients
  /// {h1, h2, h4, h5} are closed under cyclotomic squaring — restricting the
  /// Granger–Scott formulas to them drops h0/h4-side work from every step.
  /// The missing h0, h3 are recovered algebraically (one Fp2 inversion,
  /// batchable) only where a full product is needed. eprint 2010/542.
  struct CompressedCyclo {
    Fp2 h1, h2, h4, h5;
  };

  /// Only valid on cyclotomic-subgroup elements (like every cyclotomic_*).
  CompressedCyclo cyclotomic_compress() const {
    return {c1.c0, c0.c1, c0.c2, c1.c2};
  }

  /// One squaring in compressed form: 6 Fp2 squarings (the cross products
  /// 2 h2 h5 and 2 h1 h4 fall out of the sum squarings), vs. the 9 squarings
  /// of the full Granger–Scott step.
  ///   h1' = 2 h1 + 6 xi h2 h5        h2' = 3 (h1^2 + xi h4^2) - 2 h2
  ///   h4' = 3 (h2^2 + xi h5^2) - 2 h4    h5' = 2 h5 + 6 h1 h4
  static CompressedCyclo compressed_cyclotomic_square(const CompressedCyclo& a) {
    Fp2 s1 = a.h1.square();
    Fp2 s2 = a.h2.square();
    Fp2 s4 = a.h4.square();
    Fp2 s5 = a.h5.square();
    Fp2 c25 = (a.h2 + a.h5).square() - s2 - s5;  // 2 h2 h5
    Fp2 c14 = (a.h1 + a.h4).square() - s1 - s4;  // 2 h1 h4
    return {a.h1.dbl() + c25.mul_by_xi().triple(),
            (s1 + s4.mul_by_xi()).triple() - a.h2.dbl(),
            (s2 + s5.mul_by_xi()).triple() - a.h4.dbl(),
            a.h5.dbl() + c14.triple()};
  }

  /// Recover the full elements of a whole squaring chain with ONE field
  /// inversion (Montgomery's trick over the per-element denominators):
  ///   h3 = (3 h2^2 + xi h5^2 - 2 h4) / (4 h1)          [h1 != 0]
  ///   h3 = (h1^2 + 3 xi h4^2 - 2 h2) / (4 xi h5)       [h1 == 0, h5 != 0]
  ///   h0 = xi (h1 h5 - 3 h2 h4 + 2 h3^2) + 1
  /// h1 == h5 == 0 forces h3 = 0 (only the identity arises in practice).
  static std::vector<Fp12> cyclotomic_decompress_batch(
      std::span<const CompressedCyclo> cs) {
    std::vector<Fp2> dens(cs.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const CompressedCyclo& a = cs[i];
      dens[i] = (!a.h1.is_zero() ? a.h1 : a.h5.mul_by_xi()).dbl().dbl();
    }
    batch_inverse(std::span<Fp2>(dens));
    std::vector<Fp12> out(cs.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const CompressedCyclo& a = cs[i];
      Fp2 h3;
      if (!a.h1.is_zero()) {
        h3 = (a.h2.square().triple() + a.h5.square().mul_by_xi() - a.h4.dbl()) *
             dens[i];
      } else if (!a.h5.is_zero()) {
        h3 = (a.h1.square() + a.h4.square().mul_by_xi().triple() - a.h2.dbl()) *
             dens[i];
      }
      Fp2 h0 = (a.h1 * a.h5 - (a.h2 * a.h4).triple() + h3.square().dbl())
                   .mul_by_xi() +
               Fp2::one();
      out[i] = Fp12{Fp6{h0, a.h2, a.h4}, Fp6{a.h1, h3, a.h5}};
    }
    return out;
  }

  static Fp12 cyclotomic_decompress(const CompressedCyclo& c) {
    return cyclotomic_decompress_batch(std::span<const CompressedCyclo>(&c, 1))[0];
  }

  /// Square-and-multiply with Karabina compressed squarings: the whole
  /// doubling chain runs compressed, the values needed at set bits are
  /// recorded and decompressed together with a single inversion. ~35% less
  /// squaring work than cyclotomic_pow_u256 for the same (bit-identical)
  /// result; same cyclotomic-subgroup-only contract.
  Fp12 cyclotomic_pow_compressed(const U256& e) const {
    unsigned n = e.bit_length();
    if (n == 0) return one();
    if (n == 1) return *this;
    std::vector<CompressedCyclo> snaps;
    CompressedCyclo acc = cyclotomic_compress();
    for (unsigned i = 1; i < n; ++i) {
      acc = compressed_cyclotomic_square(acc);
      if (e.bit(i)) snaps.push_back(acc);
    }
    std::vector<Fp12> factors = cyclotomic_decompress_batch(snaps);
    Fp12 result = e.bit(0) ? *this : one();
    for (const Fp12& f : factors) result *= f;
    return result;
  }

  Fp12 cyclotomic_pow_compressed(u64 e) const {
    return cyclotomic_pow_compressed(U256{e});
  }

  /// GT multi-exponentiation: prod_i bases[i]^{exps[i]} with ONE shared
  /// cyclotomic squaring chain for the whole batch (Straus interleaving —
  /// the same shared-doubling idea as the Pippenger MSM, in multiplicative
  /// notation). Per base: a small table of window powers plus one table
  /// multiply per nonzero digit; per batch: max_bits squarings total,
  /// instead of max_bits *per element*. The window width is chosen at
  /// runtime from (n, max_bits) by a deterministic cost model. n == 1
  /// delegates to the Karabina compressed chain (the one shape where
  /// compressed squarings win: no interleaved multiplies, so the whole
  /// chain stays compressed and decompresses with one batched inversion);
  /// for n >= 2 the interleaved table multiplies would force a per-window
  /// decompression, so the shared chain uses plain Granger–Scott squarings.
  /// Same contract as every cyclotomic_*: inputs must lie in the cyclotomic
  /// subgroup (every GT element qualifies). The per-element
  /// cyclotomic_pow_u256 ladder is retained as the differential oracle.
  /// Throws std::invalid_argument on bases/exps length mismatch.
  ///
  /// The tables are signed-digit: window digits run in [-2^{w-1}, 2^{w-1}]
  /// with a carry, so each base stores only the powers 1..2^{w-1} — half the
  /// unsigned table and its cache pressure — and negative digits multiply by
  /// the conjugate, which inverts for free on the unit-norm cyclotomic
  /// subgroup. multi_pow_unsigned keeps the full-table variant as the
  /// differential/bench reference.
  static Fp12 multi_pow(std::span<const Fp12> bases, std::span<const U256> exps);
  static Fp12 multi_pow_unsigned(std::span<const Fp12> bases,
                                 std::span<const U256> exps);

  /// p^6-power Frobenius; for elements of the cyclotomic subgroup (unit
  /// norm) this equals the inverse.
  Fp12 conjugate() const { return {c0, -c1}; }

  Fp12 inverse() const {
    Fp6 norm = c0.square() - c1.square().mul_by_v();
    Fp6 inv = norm.inverse();
    return {c0 * inv, -(c1 * inv)};
  }

  /// p-power Frobenius endomorphism.
  Fp12 frobenius() const {
    const auto& tc = tower_consts();
    // Coefficient of v^i w^j maps to conj(coef) * gamma[(2i + j) mod 6's exponent]
    Fp6 a{c0.c0.conjugate(), c0.c1.conjugate() * tc.gamma[2],
          c0.c2.conjugate() * tc.gamma[4]};
    Fp6 b{c1.c0.conjugate() * tc.gamma[1], c1.c1.conjugate() * tc.gamma[3],
          c1.c2.conjugate() * tc.gamma[5]};
    return {a, b};
  }

  /// p^2-power Frobenius: coefficients stay un-conjugated (conj^2 = id) and
  /// scale by the Fp-valued gamma_p2 constants — 10 Fp2-by-Fp2 products
  /// cheaper than two chained frobenius() calls.
  Fp12 frobenius2() const {
    const auto& tc = tower_consts();
    Fp6 a{c0.c0, c0.c1 * tc.gamma_p2[2], c0.c2 * tc.gamma_p2[4]};
    Fp6 b{c1.c0 * tc.gamma_p2[1], c1.c1 * tc.gamma_p2[3],
          c1.c2 * tc.gamma_p2[5]};
    return {a, b};
  }

  /// p^3-power Frobenius (conjugate coefficients, gamma_p3 scaling).
  Fp12 frobenius3() const {
    const auto& tc = tower_consts();
    Fp6 a{c0.c0.conjugate(), c0.c1.conjugate() * tc.gamma_p3[2],
          c0.c2.conjugate() * tc.gamma_p3[4]};
    Fp6 b{c1.c0.conjugate() * tc.gamma_p3[1], c1.c1.conjugate() * tc.gamma_p3[3],
          c1.c2.conjugate() * tc.gamma_p3[5]};
    return {a, b};
  }

  Fp12 frobenius_pow(int n) const {
    int m = n % 12;
    if (m < 0) m += 12;
    Fp12 r = *this;
    for (; m >= 3; m -= 3) r = r.frobenius3();
    if (m == 2) return r.frobenius2();
    if (m == 1) return r.frobenius();
    return r;
  }

  /// Exponentiation by the |t| BN parameter (used by the fast final
  /// exponentiation) or any u64.
  Fp12 pow_u64(u64 e) const {
    Fp12 result = one();
    Fp12 base = *this;
    while (e != 0) {
      if (e & 1) result *= base;
      base = base.square();
      e >>= 1;
    }
    return result;
  }

  /// Exponentiation by a canonical Fr scalar (for GT^z in the sigma layer).
  Fp12 pow_u256(const U256& e) const {
    Fp12 result = one();
    Fp12 base = *this;
    unsigned n = e.bit_length();
    for (unsigned i = 0; i < n; ++i) {
      if (e.bit(i)) result *= base;
      base = base.square();
    }
    return result;
  }

  friend bool operator==(const Fp12& a, const Fp12& b) = default;
};

}  // namespace dsaudit::ff
