// Montgomery's batch-inversion trick: invert n field elements with a single
// field inversion plus 3(n-1) multiplications. One inversion costs ~280
// multiplications at BN254 size, so this turns point-set normalization
// (Jacobian -> affine) from "n inversions" into "essentially free".
//
// Works for any field type with zero-semantics matching PrimeField: one(),
// is_zero(), inverse() (returning zero for zero), operator*.
#pragma once

#include <span>
#include <vector>

namespace dsaudit::ff {

/// In-place: xs[i] <- xs[i]^{-1} for every non-zero entry; zero entries are
/// left as zero (the PrimeField::inverse() convention).
template <typename F>
void batch_inverse(std::span<F> xs) {
  if (xs.empty()) return;
  // prefix[i] = product of the non-zero elements before index i.
  std::vector<F> prefix(xs.size());
  F run = F::one();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    prefix[i] = run;
    if (!xs[i].is_zero()) run = run * xs[i];
  }
  F inv = run.inverse();
  for (std::size_t i = xs.size(); i-- > 0;) {
    if (xs[i].is_zero()) continue;
    F xi = xs[i];
    xs[i] = inv * prefix[i];
    inv = inv * xi;
  }
}

template <typename F>
void batch_inverse(std::vector<F>& xs) {
  batch_inverse(std::span<F>(xs));
}

}  // namespace dsaudit::ff
