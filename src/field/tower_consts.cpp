#include "field/fp12.hpp"

#include <stdexcept>

namespace dsaudit::ff {

namespace {

/// xi^e for a VarUInt exponent, computed with plain square-and-multiply in
/// Fp2. Init-time only.
Fp2 xi_pow(const VarUInt& e) { return pow_var(xi(), e); }

TowerConsts build_tower_consts() {
  TowerConsts tc;
  VarUInt p{Fp::modulus()};
  VarUInt one{1};
  VarUInt pm1 = p - one;
  // (p-1)/6 is exact: p ≡ 1 (mod 6) for BN primes.
  auto [e6, rem6] = VarUInt::divmod(pm1, VarUInt{6});
  if (!rem6.is_zero()) throw std::logic_error("tower_consts: p != 1 mod 6");
  Fp2 g1 = xi_pow(e6);
  tc.gamma[0] = Fp2::one();
  for (int k = 1; k < 6; ++k) tc.gamma[k] = tc.gamma[k - 1] * g1;
  // Direct p^2- and p^3-Frobenius constants: xi^{k(p^n-1)/6}. Both exponents
  // are exact because p ≡ 1 (mod 6) implies p^n ≡ 1 (mod 6).
  auto [e6_2, rem2] = VarUInt::divmod(p * p - one, VarUInt{6});
  auto [e6_3, rem3] = VarUInt::divmod(p * p * p - one, VarUInt{6});
  if (!rem2.is_zero() || !rem3.is_zero()) {
    throw std::logic_error("tower_consts: p^n != 1 mod 6");
  }
  Fp2 g2 = xi_pow(e6_2);
  Fp2 g3 = xi_pow(e6_3);
  tc.gamma_p2[0] = Fp2::one();
  tc.gamma_p3[0] = Fp2::one();
  for (int k = 1; k < 6; ++k) {
    tc.gamma_p2[k] = tc.gamma_p2[k - 1] * g2;
    tc.gamma_p3[k] = tc.gamma_p3[k - 1] * g3;
  }
  tc.twist_frob_x = tc.gamma[2];
  tc.twist_frob_y = tc.gamma[3];
  VarUInt p2m1 = p * p - one;
  tc.twist_frob2_x = xi_pow(VarUInt::divmod(p2m1, VarUInt{3}).first);
  tc.twist_frob2_y = xi_pow(VarUInt::divmod(p2m1, VarUInt{2}).first);
  return tc;
}

}  // namespace

const TowerConsts& tower_consts() {
  static const TowerConsts tc = build_tower_consts();
  return tc;
}

}  // namespace dsaudit::ff
