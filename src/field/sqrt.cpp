#include "field/sqrt.hpp"

#include <functional>
#include <stdexcept>

namespace dsaudit::ff {

namespace {

/// Precomputed Tonelli–Shanks context for a field of order q.
template <typename F>
struct TsContext {
  unsigned e = 0;     // 2-adicity of q-1
  VarUInt m;          // odd part: q-1 = 2^e * m
  VarUInt m_plus_1_over_2;
  VarUInt q_minus_1_over_2;
  F z_pow_m;          // c = z^m for a quadratic non-residue z
};

template <typename F>
TsContext<F> make_ts_context(const VarUInt& q, const std::function<F(u64)>& candidate) {
  TsContext<F> ctx;
  VarUInt qm1 = q - VarUInt{1};
  ctx.q_minus_1_over_2 = qm1.shr(1);
  ctx.m = qm1;
  while (!ctx.m.is_odd()) {
    ctx.m = ctx.m.shr(1);
    ++ctx.e;
  }
  ctx.m_plus_1_over_2 = (ctx.m + VarUInt{1}).shr(1);
  // Deterministic non-residue search over small candidate elements.
  for (u64 n = 1; n < 1000; ++n) {
    F z = candidate(n);
    if (z.is_zero()) continue;
    F euler = pow_var(z, ctx.q_minus_1_over_2);
    if (!euler.is_one()) {
      ctx.z_pow_m = pow_var(z, ctx.m);
      return ctx;
    }
  }
  throw std::logic_error("tonelli_shanks: no non-residue found (broken field?)");
}

template <typename F>
std::optional<F> tonelli_shanks(const F& a, const TsContext<F>& ctx) {
  if (a.is_zero()) return F::zero();
  F x = pow_var(a, ctx.m_plus_1_over_2);
  F t = pow_var(a, ctx.m);
  F c = ctx.z_pow_m;
  unsigned e = ctx.e;
  while (!t.is_one()) {
    // Find the least i with t^{2^i} = 1.
    unsigned i = 0;
    F probe = t;
    while (!probe.is_one()) {
      probe = probe.square();
      ++i;
      if (i >= e) return std::nullopt;  // non-residue
    }
    F b = c;
    for (unsigned j = 0; j + i + 1 < e; ++j) b = b.square();
    x = x * b;
    c = b.square();
    t = t * c;
    e = i;
  }
  if (x.square() == a) return x;
  return std::nullopt;
}

}  // namespace

std::optional<Fp2> sqrt(const Fp2& a) {
  static const TsContext<Fp2> ctx = [] {
    VarUInt p{Fp::modulus()};
    // Candidates must leave the base field: every Fp element is a square in
    // Fp2 (its Euler exponent (p^2-1)/2 is a multiple of p-1).
    return make_ts_context<Fp2>(
        p * p, [](u64 n) { return Fp2::from_u64(n & 0xff, 1 + (n >> 8)); });
  }();
  return tonelli_shanks(a, ctx);
}

std::optional<Fp6> sqrt(const Fp6& a) {
  static const TsContext<Fp6> ctx = [] {
    VarUInt p{Fp::modulus()};
    VarUInt q = VarUInt::pow(p, 6);
    // A quadratic non-residue of Fp2 stays a non-residue in Fp6 (the
    // extension degree 3 is odd: (p^6-1)/2 = (p^2-1)/2 * (p^4+p^2+1) with an
    // odd second factor), so candidates are Fp2 elements with a non-zero
    // u-part — never pure base-field elements, which are always squares and
    // would make the search crawl through hundreds of 1500-bit Euler tests.
    return make_ts_context<Fp6>(q, [](u64 n) {
      return Fp6(Fp2::from_u64(n & 0xff, 1 + (n >> 8)), Fp2::zero(), Fp2::zero());
    });
  }();
  return tonelli_shanks(a, ctx);
}

}  // namespace dsaudit::ff
