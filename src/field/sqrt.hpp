// Square roots in the tower fields via generic Tonelli–Shanks.
//
//   sqrt(Fp2) — decompressing 64-byte G2 points.
//   sqrt(Fp6) — decompressing 192-byte GT elements: a cyclotomic-subgroup
//               element g = a + b w satisfies g * conj(g) = 1, i.e.
//               a^2 - v b^2 = 1, so b is recoverable from a up to sign via
//               b = sqrt((a^2 - 1)/v). This is what lets the private proof
//               carry R in 192 bytes (1536 bits), matching the paper's
//               288-byte total.
#pragma once

#include <optional>

#include "field/fp6.hpp"

namespace dsaudit::ff {

std::optional<Fp2> sqrt(const Fp2& a);
std::optional<Fp6> sqrt(const Fp6& a);

}  // namespace dsaudit::ff
