// Montgomery-form prime fields for the BN254 curve.
//
//   Fp — the base field (254-bit p), coordinates of G1/G2/GT elements.
//   Fr — the scalar field (group order r), the paper's Z_p of data blocks.
//
// Elements are stored in Montgomery form (x * 2^256 mod p) and multiplied
// with a 4-limb CIOS reduction. All constants (R^2, -p^-1 mod 2^64, ...) are
// derived at first use from the modulus string, and the moduli themselves are
// re-derived from the BN parameter t at init (see curve/bn254_params), so a
// single typo cannot silently corrupt the arithmetic.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "bigint/u256.hpp"
#include "bigint/varuint.hpp"
#include "primitives/random.hpp"

namespace dsaudit::ff {

using bigint::U256;
using bigint::VarUInt;
using bigint::u64;

struct MontParams {
  U256 modulus;
  U256 r_mod;    // 2^256 mod p  (Montgomery form of 1)
  U256 r2_mod;   // (2^256)^2 mod p
  U256 r3_mod;   // (2^256)^3 mod p (single-step Montgomery inversion)
  u64 n0_inv;    // -p^{-1} mod 2^64
  bool no_carry = false;       // top modulus limb < 2^62: no-carry CIOS valid
  bool has_fast_sqrt = false;  // true iff modulus ≡ 3 (mod 4)
  U256 p_plus_1_over_4;   // sqrt exponent (only valid when has_fast_sqrt)
  U256 p_minus_1_over_2;  // Euler criterion exponent
  U256 p_minus_2;         // Fermat inversion exponent
};

/// Builds Montgomery parameters from an odd modulus.
MontParams make_mont_params(const U256& modulus);

namespace detail {

/// Generic 4-limb CIOS with a fifth carry limb; works for any odd modulus.
U256 mont_mul_generic(const U256& a, const U256& b, const MontParams& P);

/// CIOS with the "no-carry" optimization: when the modulus' top limb is well
/// below 2^63 (true for both BN254 moduli), the interleaved multiply/reduce
/// columns never spill into a fifth limb, so the whole product fits in four
/// words plus two running carries. Requires a, b < modulus. Lives in the
/// header so it inlines into the field operators — this is the innermost
/// loop of every curve operation.
inline U256 mont_mul_nocarry(const U256& a, const U256& b, const MontParams& P) {
  using bigint::u128;
  const std::array<u64, 4>& q = P.modulus.limb;
  u64 t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 ai = a.limb[i];
    u128 v = static_cast<u128>(ai) * b.limb[0] + t0;
    u64 A = static_cast<u64>(v >> 64);
    const u64 m = static_cast<u64>(v) * P.n0_inv;
    u128 w = static_cast<u128>(m) * q[0] + static_cast<u64>(v);
    u64 C = static_cast<u64>(w >> 64);
    v = static_cast<u128>(ai) * b.limb[1] + t1 + A;
    A = static_cast<u64>(v >> 64);
    w = static_cast<u128>(m) * q[1] + static_cast<u64>(v) + C;
    C = static_cast<u64>(w >> 64);
    t0 = static_cast<u64>(w);
    v = static_cast<u128>(ai) * b.limb[2] + t2 + A;
    A = static_cast<u64>(v >> 64);
    w = static_cast<u128>(m) * q[2] + static_cast<u64>(v) + C;
    C = static_cast<u64>(w >> 64);
    t1 = static_cast<u64>(w);
    v = static_cast<u128>(ai) * b.limb[3] + t3 + A;
    A = static_cast<u64>(v >> 64);
    w = static_cast<u128>(m) * q[3] + static_cast<u64>(v) + C;
    C = static_cast<u64>(w >> 64);
    t2 = static_cast<u64>(w);
    t3 = A + C;  // cannot overflow: q[3] < 2^62 bounds both carries
  }
  U256 r{t0, t1, t2, t3};
  if (!bigint::lt(r, P.modulus)) {
    U256 reduced;
    bigint::sub_with_borrow(r, P.modulus, reduced);
    return reduced;
  }
  return r;
}

inline U256 mont_mul(const U256& a, const U256& b, const MontParams& P) {
  return P.no_carry ? mont_mul_nocarry(a, b, P) : mont_mul_generic(a, b, P);
}

}  // namespace detail

/// A prime-field element. Tag supplies the modulus via Tag::params().
template <typename Tag>
class PrimeField {
 public:
  PrimeField() = default;  // zero

  static const MontParams& params() { return Tag::params(); }
  static const U256& modulus() { return params().modulus; }

  static PrimeField zero() { return PrimeField{}; }
  static PrimeField one() {
    PrimeField r;
    r.v_ = params().r_mod;
    return r;
  }

  static PrimeField from_u64(u64 v) { return from_u256(U256{v}); }

  /// Reduce an arbitrary 256-bit value mod p and lift to Montgomery form.
  static PrimeField from_u256(const U256& v) {
    const auto& P = params();
    U256 reduced = bigint::lt(v, P.modulus)
                       ? v
                       : bigint::mod(widen(v), P.modulus);
    PrimeField r;
    r.v_ = detail::mont_mul(reduced, P.r2_mod, P);
    return r;
  }

  /// Interpret 32 big-endian bytes as an integer and reduce mod p. This is
  /// the PRF-output-to-Z_p mapping used during challenge expansion.
  static PrimeField from_be_bytes_mod(std::span<const std::uint8_t, 32> bytes) {
    return from_u256(U256::from_be_bytes(bytes));
  }

  static PrimeField random(primitives::SecureRng& rng) {
    // 2^256 / p > 4 for BN254, so modular reduction of 256 uniform bits has
    // bias < 2^-62 relative to uniform — acceptable everywhere we use it.
    auto b = rng.bytes32();
    return from_be_bytes_mod(std::span<const std::uint8_t, 32>(b));
  }

  /// Canonical (non-Montgomery) integer value in [0, p).
  U256 to_u256() const {
    const auto& P = params();
    return detail::mont_mul(v_, U256{1}, P);
  }

  void to_be_bytes(std::span<std::uint8_t, 32> out) const {
    to_u256().to_be_bytes(out);
  }
  std::array<std::uint8_t, 32> to_bytes() const {
    std::array<std::uint8_t, 32> out;
    to_be_bytes(out);
    return out;
  }

  std::string to_dec() const { return to_u256().to_dec(); }

  bool is_zero() const { return v_.is_zero(); }
  bool is_one() const { return v_ == params().r_mod; }

  friend PrimeField operator+(const PrimeField& a, const PrimeField& b) {
    PrimeField r;
    r.v_ = bigint::add_mod(a.v_, b.v_, params().modulus);
    return r;
  }
  friend PrimeField operator-(const PrimeField& a, const PrimeField& b) {
    PrimeField r;
    r.v_ = bigint::sub_mod(a.v_, b.v_, params().modulus);
    return r;
  }
  PrimeField operator-() const {
    PrimeField r;
    r.v_ = v_.is_zero() ? v_ : bigint::sub_mod(U256{}, v_, params().modulus);
    return r;
  }
  friend PrimeField operator*(const PrimeField& a, const PrimeField& b) {
    PrimeField r;
    r.v_ = detail::mont_mul(a.v_, b.v_, params());
    return r;
  }
  PrimeField& operator+=(const PrimeField& o) { return *this = *this + o; }
  PrimeField& operator-=(const PrimeField& o) { return *this = *this - o; }
  PrimeField& operator*=(const PrimeField& o) { return *this = *this * o; }

  // A dedicated sum-of-squares path was measured slower than the interleaved
  // CIOS multiply at 4 limbs (the separate reduction pass costs more than the
  // 6 saved limb products), so squaring just multiplies.
  PrimeField square() const { return *this * *this; }
  PrimeField dbl() const { return *this + *this; }

  /// Inversion via binary extended GCD (an order of magnitude faster than
  /// Fermat at this size; the Miller loop inverts once per step). Returns
  /// zero for zero — callers that care check is_zero() first.
  PrimeField inverse() const {
    if (is_zero()) return zero();
    const auto& P = params();
    // v_ = a*R; inv_mod gives a^{-1} R^{-1}; multiply by R^3 (two Montgomery
    // reductions fold in) to land back on a^{-1} R.
    U256 raw = bigint::inv_mod(v_, P.modulus);
    PrimeField r;
    r.v_ = detail::mont_mul(raw, P.r3_mod, P);
    return r;
  }

  /// Fermat inversion a^{p-2}; kept as an independent cross-check path.
  PrimeField inverse_fermat() const { return pow_u256(params().p_minus_2); }

  PrimeField pow_u256(const U256& e) const {
    PrimeField result = one();
    PrimeField base = *this;
    unsigned n = e.bit_length();
    for (unsigned i = 0; i < n; ++i) {
      if (e.bit(i)) result *= base;
      base = base.square();
    }
    return result;
  }

  /// Square root via the p ≡ 3 (mod 4) shortcut; nullopt if not a quadratic
  /// residue. Throws std::logic_error for fields without the shortcut (Fr has
  /// r ≡ 1 mod 4; nothing in the protocol needs square roots there).
  std::optional<PrimeField> sqrt() const {
    if (!params().has_fast_sqrt) {
      throw std::logic_error("PrimeField::sqrt: modulus is not 3 mod 4");
    }
    PrimeField cand = pow_u256(params().p_plus_1_over_4);
    if (cand.square() == *this) return cand;
    return std::nullopt;
  }

  /// Euler criterion: +1 residue, -1 non-residue, 0 for zero.
  int legendre() const {
    if (is_zero()) return 0;
    PrimeField e = pow_u256(params().p_minus_1_over_2);
    return e.is_one() ? 1 : -1;
  }

  /// True if the canonical integer representative is odd (used for point
  /// compression sign bits).
  bool is_odd_canonical() const { return to_u256().is_odd(); }

  friend bool operator==(const PrimeField& a, const PrimeField& b) = default;

  /// Raw Montgomery limbs (serialization of internal state for hashing
  /// would be non-canonical; use to_bytes() instead). Exposed for tests.
  const U256& mont_repr() const { return v_; }

 private:
  static bigint::U512 widen(const U256& v) {
    return bigint::U512{{v.limb[0], v.limb[1], v.limb[2], v.limb[3], 0, 0, 0, 0}};
  }
  U256 v_{};  // Montgomery form
};

struct FpTag {
  static const MontParams& params();
};
struct FrTag {
  static const MontParams& params();
};

/// Base field of BN254 (alt_bn128): coordinates of curve points.
using Fp = PrimeField<FpTag>;
/// Scalar field (group order r): the paper's Z_p of data blocks/exponents.
using Fr = PrimeField<FrTag>;

/// The BN parameter t with p(t), r(t) — exposed so the curve layer can verify
/// p = 36t^4+36t^3+24t^2+6t+1 and r = 36t^4+36t^3+18t^2+6t+1 at startup.
inline constexpr u64 kBnParamT = 4965661367192848881ULL;
extern const char* const kFpModulusHex;
extern const char* const kFrModulusHex;

/// Generic exponentiation by a VarUInt exponent for any multiplicative group
/// element type (needs one(), operator*, square()).
template <typename F>
F pow_var(const F& base, const VarUInt& e) {
  F result = F::one();
  F b = base;
  unsigned n = e.bit_length();
  for (unsigned i = 0; i < n; ++i) {
    if (e.bit(i)) result = result * b;
    b = b.square();
  }
  return result;
}

}  // namespace dsaudit::ff
