// Cubic extension Fp6 = Fp2[v]/(v^3 - xi), xi = 9 + u.
#pragma once

#include "field/fp2.hpp"

namespace dsaudit::ff {

class Fp6 {
 public:
  Fp2 c0, c1, c2;  // c0 + c1 v + c2 v^2

  Fp6() = default;
  Fp6(const Fp2& a, const Fp2& b, const Fp2& c) : c0(a), c1(b), c2(c) {}

  static Fp6 zero() { return {}; }
  static Fp6 one() { return {Fp2::one(), Fp2::zero(), Fp2::zero()}; }
  static Fp6 random(primitives::SecureRng& rng) {
    return {Fp2::random(rng), Fp2::random(rng), Fp2::random(rng)};
  }

  bool is_zero() const { return c0.is_zero() && c1.is_zero() && c2.is_zero(); }
  bool is_one() const { return c0.is_one() && c1.is_zero() && c2.is_zero(); }

  friend Fp6 operator+(const Fp6& a, const Fp6& b) {
    return {a.c0 + b.c0, a.c1 + b.c1, a.c2 + b.c2};
  }
  friend Fp6 operator-(const Fp6& a, const Fp6& b) {
    return {a.c0 - b.c0, a.c1 - b.c1, a.c2 - b.c2};
  }
  Fp6 operator-() const { return {-c0, -c1, -c2}; }

  friend Fp6 operator*(const Fp6& a, const Fp6& b) {
    // Toom/Karatsuba-style interpolation (Guide to PBC, Alg. 5.21):
    Fp2 v0 = a.c0 * b.c0;
    Fp2 v1 = a.c1 * b.c1;
    Fp2 v2 = a.c2 * b.c2;
    Fp2 t0 = ((a.c1 + a.c2) * (b.c1 + b.c2) - v1 - v2).mul_by_xi() + v0;
    Fp2 t1 = (a.c0 + a.c1) * (b.c0 + b.c1) - v0 - v1 + v2.mul_by_xi();
    Fp2 t2 = (a.c0 + a.c2) * (b.c0 + b.c2) - v0 - v2 + v1;
    return {t0, t1, t2};
  }
  Fp6& operator+=(const Fp6& o) { return *this = *this + o; }
  Fp6& operator-=(const Fp6& o) { return *this = *this - o; }
  Fp6& operator*=(const Fp6& o) { return *this = *this * o; }

  Fp6 dbl() const { return *this + *this; }

  Fp6 square() const {
    // Chung–Hasan SQR2: 2 squarings + 3 multiplications in Fp2.
    Fp2 s0 = c0.square();
    Fp2 ab = c0 * c1;
    Fp2 s1 = ab + ab;
    Fp2 s2 = (c0 - c1 + c2).square();
    Fp2 bc = c1 * c2;
    Fp2 s3 = bc + bc;
    Fp2 s4 = c2.square();
    return {s0 + s3.mul_by_xi(), s1 + s4.mul_by_xi(), s1 + s2 + s3 - s0 - s4};
  }

  Fp6 mul_fp2(const Fp2& s) const { return {c0 * s, c1 * s, c2 * s}; }

  /// Multiplication by v: (c0, c1, c2) -> (xi*c2, c0, c1).
  Fp6 mul_by_v() const { return {c2.mul_by_xi(), c0, c1}; }

  Fp6 inverse() const {
    // Standard norm-based inversion (Guide to PBC, Alg. 5.23).
    Fp2 t0 = c0.square();
    Fp2 t1 = c1.square();
    Fp2 t2 = c2.square();
    Fp2 t3 = c0 * c1;
    Fp2 t4 = c0 * c2;
    Fp2 t5 = c1 * c2;
    Fp2 n0 = t0 - t5.mul_by_xi();
    Fp2 n1 = t2.mul_by_xi() - t3;
    Fp2 n2 = t1 - t4;
    Fp2 denom = c0 * n0 + (c2 * n1 + c1 * n2).mul_by_xi();
    Fp2 inv = denom.inverse();
    return {n0 * inv, n1 * inv, n2 * inv};
  }

  friend bool operator==(const Fp6& a, const Fp6& b) = default;
};

}  // namespace dsaudit::ff
