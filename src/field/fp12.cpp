// GT multi-exponentiation (Fp12::multi_pow): the shared-squaring engine the
// batched settlement uses to fold every private round's R^rho commitment in
// one pass. Out of line because the window tables want real code, not header
// inlining.
#include "field/fp12.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace dsaudit::ff {

namespace {

/// Deterministic window-width choice in squaring-equivalent units (one
/// generic Fp12 multiply ~ 2 cyclotomic squarings): per base, building the
/// 2^w - 1 table costs 2^w - 2 multiplies and the scan multiplies once per
/// (worst case, every) window position; the shared chain pays w squarings
/// per position regardless of n. Depends only on (n, bits), so the chosen
/// width — and therefore the exact multiplication sequence — is identical
/// at every thread count and on every platform.
unsigned pick_window(std::size_t n, unsigned bits) {
  unsigned best_w = 1;
  std::uint64_t best_cost = ~std::uint64_t{0};
  for (unsigned w = 1; w <= 6; ++w) {
    const std::uint64_t positions = (bits + w - 1) / w;
    const std::uint64_t table = (std::uint64_t{1} << w) - 2;
    const std::uint64_t mults = n * (table + positions);
    const std::uint64_t cost = 2 * mults + positions * w;
    if (cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return best_w;
}

}  // namespace

Fp12 Fp12::multi_pow(std::span<const Fp12> bases, std::span<const U256> exps) {
  if (bases.size() != exps.size()) {
    throw std::invalid_argument("Fp12::multi_pow: bases/exps size mismatch");
  }
  const std::size_t n = bases.size();
  if (n == 0) return one();
  unsigned bits = 0;
  for (const U256& e : exps) bits = std::max(bits, e.bit_length());
  if (bits == 0) return one();
  if (n == 1) return bases[0].cyclotomic_pow_compressed(exps[0]);

  const unsigned w = pick_window(n, bits);
  const std::size_t tsize = (std::size_t{1} << w) - 1;
  // table[i * tsize + (d - 1)] = bases[i]^d for digits d = 1..2^w - 1. The
  // d = 2 entry comes from a cyclotomic squaring, the rest from one multiply
  // each off the previous power.
  std::vector<Fp12> table(n * tsize);
  for (std::size_t i = 0; i < n; ++i) {
    Fp12* row = table.data() + i * tsize;
    row[0] = bases[i];
    if (tsize >= 2) row[1] = bases[i].cyclotomic_square();
    for (std::size_t d = 3; d <= tsize; ++d) row[d - 1] = row[d - 2] * bases[i];
  }

  const unsigned positions = (bits + w - 1) / w;
  Fp12 acc = one();
  for (unsigned pos = positions; pos-- > 0;) {
    if (pos + 1 != positions) {
      for (unsigned s = 0; s < w; ++s) acc = acc.cyclotomic_square();
    }
    for (std::size_t i = 0; i < n; ++i) {
      const u64 d = exps[i].extract_window(pos * w, w);
      if (d != 0) acc *= table[i * tsize + d - 1];
    }
  }
  return acc;
}

}  // namespace dsaudit::ff
