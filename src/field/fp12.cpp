// GT multi-exponentiation (Fp12::multi_pow): the shared-squaring engine the
// batched settlement uses to fold every private round's R^rho commitment in
// one pass. Out of line because the window tables want real code, not header
// inlining.
#include "field/fp12.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace dsaudit::ff {

namespace {

/// Deterministic window-width choice in squaring-equivalent units (one
/// generic Fp12 multiply ~ 2 cyclotomic squarings): per base, building the
/// table costs `tsize - 1` multiplies and the scan multiplies once per
/// (worst case, every) window position; the shared chain pays w squarings
/// per position regardless of n. `signed_digits` halves the table size
/// (powers 1..2^{w-1}; negatives are free conjugates). Depends only on
/// (n, bits, signedness), so the chosen width — and therefore the exact
/// multiplication sequence — is identical at every thread count and on
/// every platform.
unsigned pick_window(std::size_t n, unsigned bits, bool signed_digits) {
  unsigned best_w = 1;
  std::uint64_t best_cost = ~std::uint64_t{0};
  for (unsigned w = 1; w <= 7; ++w) {
    const std::uint64_t positions = (bits + w - 1) / w;
    const std::uint64_t table = signed_digits ? (std::uint64_t{1} << (w - 1)) - 1
                                              : (std::uint64_t{1} << w) - 2;
    const std::uint64_t mults = n * (table + positions);
    const std::uint64_t cost = 2 * mults + positions * w;
    if (cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return best_w;
}

}  // namespace

Fp12 Fp12::multi_pow(std::span<const Fp12> bases, std::span<const U256> exps) {
  if (bases.size() != exps.size()) {
    throw std::invalid_argument("Fp12::multi_pow: bases/exps size mismatch");
  }
  const std::size_t n = bases.size();
  if (n == 0) return one();
  unsigned bits = 0;
  for (const U256& e : exps) bits = std::max(bits, e.bit_length());
  if (bits == 0) return one();
  if (n == 1) return bases[0].cyclotomic_pow_compressed(exps[0]);

  const unsigned w = pick_window(n, bits, /*signed_digits=*/true);
  const std::uint64_t half = std::uint64_t{1} << (w - 1);
  const std::size_t tsize = half;
  // table[i * tsize + (d - 1)] = bases[i]^d for d = 1..2^{w-1}: half the
  // unsigned table — negative digits read the same entry and conjugate.
  std::vector<Fp12> table(n * tsize);
  for (std::size_t i = 0; i < n; ++i) {
    Fp12* row = table.data() + i * tsize;
    row[0] = bases[i];
    if (tsize >= 2) row[1] = bases[i].cyclotomic_square();
    for (std::size_t d = 3; d <= tsize; ++d) row[d - 1] = row[d - 2] * bases[i];
  }

  // Signed window digits in [-(2^{w-1} - 1), 2^{w-1}] with carry, extracted
  // position-major (the carry can push one position past bits/w).
  const unsigned positions = (bits + w - 1) / w + 1;
  std::vector<std::int8_t> digits(std::size_t{positions} * n);
  unsigned used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t carry = 0;
    for (unsigned pos = 0; pos < positions; ++pos) {
      std::uint64_t raw = exps[i].extract_window(pos * w, w) + carry;
      std::int8_t d;
      if (raw > half) {
        d = static_cast<std::int8_t>(static_cast<int>(raw) - (1 << w));
        carry = 1;
      } else {
        d = static_cast<std::int8_t>(raw);
        carry = 0;
      }
      digits[std::size_t{pos} * n + i] = d;
      if (d != 0 && pos + 1 > used) used = pos + 1;
    }
  }

  Fp12 acc = one();
  for (unsigned pos = used; pos-- > 0;) {
    if (pos + 1 != used) {
      for (unsigned s = 0; s < w; ++s) acc = acc.cyclotomic_square();
    }
    const std::int8_t* dp = digits.data() + std::size_t{pos} * n;
    for (std::size_t i = 0; i < n; ++i) {
      const int d = dp[i];
      if (d > 0) {
        acc *= table[i * tsize + d - 1];
      } else if (d < 0) {
        acc *= table[i * tsize + (-d) - 1].conjugate();
      }
    }
  }
  return acc;
}

Fp12 Fp12::multi_pow_unsigned(std::span<const Fp12> bases,
                              std::span<const U256> exps) {
  if (bases.size() != exps.size()) {
    throw std::invalid_argument("Fp12::multi_pow_unsigned: bases/exps size mismatch");
  }
  const std::size_t n = bases.size();
  if (n == 0) return one();
  unsigned bits = 0;
  for (const U256& e : exps) bits = std::max(bits, e.bit_length());
  if (bits == 0) return one();
  if (n == 1) return bases[0].cyclotomic_pow_compressed(exps[0]);

  const unsigned w = pick_window(n, bits, /*signed_digits=*/false);
  const std::size_t tsize = (std::size_t{1} << w) - 1;
  // table[i * tsize + (d - 1)] = bases[i]^d for digits d = 1..2^w - 1. The
  // d = 2 entry comes from a cyclotomic squaring, the rest from one multiply
  // each off the previous power.
  std::vector<Fp12> table(n * tsize);
  for (std::size_t i = 0; i < n; ++i) {
    Fp12* row = table.data() + i * tsize;
    row[0] = bases[i];
    if (tsize >= 2) row[1] = bases[i].cyclotomic_square();
    for (std::size_t d = 3; d <= tsize; ++d) row[d - 1] = row[d - 2] * bases[i];
  }

  const unsigned positions = (bits + w - 1) / w;
  Fp12 acc = one();
  for (unsigned pos = positions; pos-- > 0;) {
    if (pos + 1 != positions) {
      for (unsigned s = 0; s < w; ++s) acc = acc.cyclotomic_square();
    }
    for (std::size_t i = 0; i < n; ++i) {
      const u64 d = exps[i].extract_window(pos * w, w);
      if (d != 0) acc *= table[i * tsize + d - 1];
    }
  }
  return acc;
}

}  // namespace dsaudit::ff
