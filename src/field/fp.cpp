#include "field/fp.hpp"

#include <stdexcept>

namespace dsaudit::ff {

const char* const kFpModulusHex =
    "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47";
const char* const kFrModulusHex =
    "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001";

MontParams make_mont_params(const U256& modulus) {
  if (!modulus.is_odd()) throw std::invalid_argument("make_mont_params: even modulus");
  MontParams P;
  P.has_fast_sqrt = (modulus.limb[0] & 3) == 3;
  P.modulus = modulus;
  VarUInt m{modulus};
  VarUInt r = VarUInt{1}.shl(256);
  P.r_mod = VarUInt::divmod(r, m).second.to_u256();
  P.r2_mod = VarUInt::divmod(r * r, m).second.to_u256();
  P.r3_mod = VarUInt::divmod(r * r * r, m).second.to_u256();
  P.n0_inv = bigint::mont_n0_inv(modulus);
  P.no_carry = modulus.limb[3] < (u64{1} << 62);
  U256 one{1};
  bigint::sub_with_borrow(modulus, one, P.p_minus_2);
  bigint::sub_with_borrow(P.p_minus_2, one, P.p_minus_2);
  // (p-1)/2 and (p+1)/4: p odd, p ≡ 3 mod 4 checked above.
  U256 pm1;
  bigint::sub_with_borrow(modulus, one, pm1);
  P.p_minus_1_over_2 = bigint::shr1(pm1);
  if (P.has_fast_sqrt) {
    U256 pp1;
    bigint::add_with_carry(modulus, one, pp1);  // p < 2^255, no carry
    P.p_plus_1_over_4 = bigint::shr1(bigint::shr1(pp1));
  }
  return P;
}

namespace detail {

U256 mont_mul_generic(const U256& a, const U256& b, const MontParams& P) {
  using bigint::u128;
  u64 t[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 v = static_cast<u128>(a.limb[i]) * b.limb[j] + t[j] + carry;
      t[j] = static_cast<u64>(v);
      carry = v >> 64;
    }
    u128 t4 = static_cast<u128>(t[4]) + carry;
    // Reduce: add m*p so the low limb vanishes, then shift right one limb.
    u64 m = t[0] * P.n0_inv;
    u128 v = static_cast<u128>(m) * P.modulus.limb[0] + t[0];
    carry = v >> 64;
    for (int j = 1; j < 4; ++j) {
      v = static_cast<u128>(m) * P.modulus.limb[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(v);
      carry = v >> 64;
    }
    v = t4 + carry;
    t[3] = static_cast<u64>(v);
    t[4] = static_cast<u64>(v >> 64);
  }
  U256 r{t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || !bigint::lt(r, P.modulus)) {
    U256 reduced;
    bigint::sub_with_borrow(r, P.modulus, reduced);
    return reduced;
  }
  return r;
}

}  // namespace detail

const MontParams& FpTag::params() {
  static const MontParams P = make_mont_params(U256::from_hex(kFpModulusHex));
  return P;
}

const MontParams& FrTag::params() {
  static const MontParams P = make_mont_params(U256::from_hex(kFrModulusHex));
  return P;
}

}  // namespace dsaudit::ff
