// Keccak-256 (the pre-FIPS padding variant used by Ethereum).
//
// Serves as the protocol's random oracles: H : {0,1}* -> G1 (block-index
// binding, via try-and-increment in src/curve) and H' : GT -> Zp (the sigma
// protocol's Fiat–Shamir style hiding-parameter derivation, §V-D).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace dsaudit::primitives {

class Keccak256 {
 public:
  Keccak256() = default;

  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, 32> finalize();

  static std::array<std::uint8_t, 32> hash(std::span<const std::uint8_t> data);
  static std::array<std::uint8_t, 32> hash(std::string_view s);

 private:
  void absorb_block();

  static constexpr std::size_t kRate = 136;  // 1088-bit rate for 256-bit output
  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, kRate> buffer_{};
  std::size_t buffer_len_ = 0;
};

}  // namespace dsaudit::primitives
