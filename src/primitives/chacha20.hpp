// ChaCha20 stream cipher (RFC 8439 block function and counter layout).
//
// §III-A of the paper makes client-side encryption mandatory before data
// leaves the owner: "encryption is a mandatory action taken on the side of
// the data owner". This is the cipher the storage substrate uses for it.
// Also doubles as a fast deterministic generator for test/bench workloads.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dsaudit::primitives {

class ChaCha20 {
 public:
  /// 256-bit key, 96-bit nonce, initial 32-bit block counter.
  ChaCha20(std::span<const std::uint8_t, 32> key,
           std::span<const std::uint8_t, 12> nonce,
           std::uint32_t counter = 0);

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void crypt(std::span<std::uint8_t> data);

  /// Produce `n` keystream bytes (for use as a deterministic RNG).
  std::vector<std::uint8_t> keystream(std::size_t n);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // exhausted
};

}  // namespace dsaudit::primitives
