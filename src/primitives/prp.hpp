// Pseudo-random permutation and pseudo-random function (paper Definition 2).
//
// The on-chain challenge is only (C1, C2, r); the prover and the contract
// expand it deterministically:
//   pi  : {0,1}^lambda x {0,1}^log n -> chunk indices   (PRP, no collisions)
//   f   : {0,1}^lambda -> Z_p^k                         (PRF coefficients)
// The PRP is a 4-round Feistel network over the smallest balanced bit-domain
// covering [0, domain_size), with cycle-walking to land inside the domain —
// a standard small-domain PRP construction (format-preserving encryption).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dsaudit::primitives {

class FeistelPrp {
 public:
  /// Permutation over [0, domain_size). domain_size must be >= 2.
  FeistelPrp(std::array<std::uint8_t, 32> key, std::uint64_t domain_size);

  /// Image of x under the permutation; x must be < domain_size.
  std::uint64_t permute(std::uint64_t x) const;

  std::uint64_t domain_size() const { return domain_size_; }

 private:
  std::uint64_t feistel_once(std::uint64_t x) const;
  std::uint32_t round_fn(int round, std::uint32_t half) const;

  std::array<std::uint8_t, 32> key_;
  std::uint64_t domain_size_;
  int half_bits_;  // each Feistel half is this many bits
};

/// The paper's challenge expansion: first k outputs of pi(C1, .) as distinct
/// chunk indices in [0, d). If k >= d every chunk is challenged (k clamps).
std::vector<std::uint64_t> challenge_indices(const std::array<std::uint8_t, 32>& c1,
                                             std::uint64_t d, std::uint64_t k);

/// PRF f(C2, i): 32 pseudorandom bytes per counter value (mapped into Z_p by
/// the caller, which owns the field arithmetic).
std::array<std::uint8_t, 32> prf_bytes(const std::array<std::uint8_t, 32>& c2,
                                       std::uint64_t counter);

}  // namespace dsaudit::primitives
