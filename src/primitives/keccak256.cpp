#include "primitives/keccak256.hpp"

#include <cstring>

namespace dsaudit::primitives {

namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotation[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                               25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

inline std::uint64_t rotl(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    std::uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl(a[x + 5 * y], kRotation[x + 5 * y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Keccak256::absorb_block() {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, buffer_.data() + 8 * i, 8);  // little-endian host assumed
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffer_len_ = 0;
}

void Keccak256::update(std::span<const std::uint8_t> data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t take = std::min(data.size() - pos, kRate - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data() + pos, take);
    buffer_len_ += take;
    pos += take;
    if (buffer_len_ == kRate) absorb_block();
  }
}

std::array<std::uint8_t, 32> Keccak256::finalize() {
  // Keccak (original) padding: 0x01 ... 0x80.
  std::memset(buffer_.data() + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] = 0x01;
  buffer_[kRate - 1] |= 0x80;
  buffer_len_ = kRate;
  absorb_block();
  std::array<std::uint8_t, 32> out;
  std::memcpy(out.data(), state_.data(), 32);
  return out;
}

std::array<std::uint8_t, 32> Keccak256::hash(std::span<const std::uint8_t> data) {
  Keccak256 h;
  h.update(data);
  return h.finalize();
}

std::array<std::uint8_t, 32> Keccak256::hash(std::string_view s) {
  return hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

}  // namespace dsaudit::primitives
