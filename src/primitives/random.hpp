// Randomness utilities: an OS-seeded CSPRNG (ChaCha20-based) and a
// deterministic variant for reproducible tests and benchmarks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "primitives/chacha20.hpp"

namespace dsaudit::primitives {

/// ChaCha20-based pseudorandom generator. Seeded either from the OS
/// (`SecureRng::from_os()`) or deterministically for reproducibility.
class SecureRng {
 public:
  explicit SecureRng(std::span<const std::uint8_t, 32> seed);

  /// Seed from /dev/urandom; throws std::runtime_error if unavailable.
  static SecureRng from_os();
  /// Deterministic instance for tests/benches (seed derived from a label).
  static SecureRng deterministic(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out);
  std::uint64_t next_u64();
  std::array<std::uint8_t, 32> bytes32();
  /// Uniform value in [0, bound) via rejection sampling; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

 private:
  ChaCha20 stream_;
};

}  // namespace dsaudit::primitives
