#include "primitives/random.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace dsaudit::primitives {

namespace {
constexpr std::array<std::uint8_t, 12> kRngNonce = {'d', 's', 'a', 'u', 'd', 'i',
                                                    't', '-', 'r', 'n', 'g', '0'};
}

SecureRng::SecureRng(std::span<const std::uint8_t, 32> seed)
    : stream_(seed, kRngNonce, 0) {}

SecureRng SecureRng::from_os() {
  std::array<std::uint8_t, 32> seed;
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr || std::fread(seed.data(), 1, seed.size(), f) != seed.size()) {
    if (f) std::fclose(f);
    throw std::runtime_error("SecureRng: cannot read /dev/urandom");
  }
  std::fclose(f);
  return SecureRng(seed);
}

SecureRng SecureRng::deterministic(std::uint64_t seed) {
  std::array<std::uint8_t, 32> s{};
  std::memcpy(s.data(), &seed, sizeof(seed));
  s[8] = 0xd5;  // domain-separate from an all-zero OS seed
  return SecureRng(s);
}

void SecureRng::fill(std::span<std::uint8_t> out) {
  if (out.empty()) return;  // memset on a null data() is UB
  std::memset(out.data(), 0, out.size());
  stream_.crypt(out);
}

std::uint64_t SecureRng::next_u64() {
  std::uint8_t b[8];
  fill(b);
  std::uint64_t v;
  std::memcpy(&v, b, 8);
  return v;
}

std::array<std::uint8_t, 32> SecureRng::bytes32() {
  std::array<std::uint8_t, 32> out;
  fill(out);
  return out;
}

std::uint64_t SecureRng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("SecureRng::uniform: zero bound");
  // Rejection sampling on the top multiple of bound.
  std::uint64_t limit = bound * ((~0ULL) / bound);
  for (;;) {
    std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

}  // namespace dsaudit::primitives
