#include "primitives/prp.hpp"

#include <cstring>
#include <stdexcept>

#include "primitives/keccak256.hpp"

namespace dsaudit::primitives {

FeistelPrp::FeistelPrp(std::array<std::uint8_t, 32> key, std::uint64_t domain_size)
    : key_(key), domain_size_(domain_size) {
  if (domain_size < 2) throw std::invalid_argument("FeistelPrp: domain too small");
  int bits = 64 - __builtin_clzll(domain_size - 1);
  half_bits_ = (bits + 1) / 2;
  if (half_bits_ < 1) half_bits_ = 1;
  if (half_bits_ > 31) throw std::invalid_argument("FeistelPrp: domain too large");
}

std::uint32_t FeistelPrp::round_fn(int round, std::uint32_t half) const {
  std::uint8_t buf[32 + 1 + 4];
  std::memcpy(buf, key_.data(), 32);
  buf[32] = static_cast<std::uint8_t>(round);
  std::memcpy(buf + 33, &half, 4);
  auto h = Keccak256::hash(std::span<const std::uint8_t>(buf, sizeof(buf)));
  std::uint32_t v;
  std::memcpy(&v, h.data(), 4);
  return v & ((1u << half_bits_) - 1);
}

std::uint64_t FeistelPrp::feistel_once(std::uint64_t x) const {
  std::uint32_t left = static_cast<std::uint32_t>(x >> half_bits_);
  std::uint32_t right = static_cast<std::uint32_t>(x & ((1ULL << half_bits_) - 1));
  for (int round = 0; round < 4; ++round) {
    std::uint32_t next = left ^ round_fn(round, right);
    left = right;
    right = next;
  }
  return (static_cast<std::uint64_t>(left) << half_bits_) | right;
}

std::uint64_t FeistelPrp::permute(std::uint64_t x) const {
  if (x >= domain_size_) throw std::out_of_range("FeistelPrp::permute: x outside domain");
  // Cycle-walk: the Feistel net permutes [0, 2^{2*half_bits}); iterate until
  // we land back inside [0, domain_size). Expected < 4 iterations.
  std::uint64_t y = feistel_once(x);
  while (y >= domain_size_) y = feistel_once(y);
  return y;
}

std::vector<std::uint64_t> challenge_indices(const std::array<std::uint8_t, 32>& c1,
                                             std::uint64_t d, std::uint64_t k) {
  if (d == 0) throw std::invalid_argument("challenge_indices: empty file");
  if (k > d) k = d;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (d == 1) {
    out.push_back(0);
    return out;
  }
  FeistelPrp prp(c1, d);
  for (std::uint64_t j = 0; j < k; ++j) out.push_back(prp.permute(j));
  return out;
}

std::array<std::uint8_t, 32> prf_bytes(const std::array<std::uint8_t, 32>& c2,
                                       std::uint64_t counter) {
  std::uint8_t buf[32 + 8];
  std::memcpy(buf, c2.data(), 32);
  std::memcpy(buf + 32, &counter, 8);
  return Keccak256::hash(std::span<const std::uint8_t>(buf, sizeof(buf)));
}

}  // namespace dsaudit::primitives
