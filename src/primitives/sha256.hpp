// FIPS 180-4 SHA-256. Used by the Merkle-tree strawman auditor (§IV) and as a
// general-purpose hash for commitments in the blockchain simulator.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dsaudit::primitives {

using Digest32 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  Digest32 finalize();

  static Digest32 hash(std::span<const std::uint8_t> data);
  static Digest32 hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104), used to key the PRF/PRP constructions.
Digest32 hmac_sha256(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> message);

}  // namespace dsaudit::primitives
