#include "chain/blockchain.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace dsaudit::chain {

Blockchain::Blockchain(ChainConfig config) : config_(config) {
  next_block_at_ = config_.block_interval_s;
}

void Blockchain::mint(const Address& who, std::uint64_t amount) {
  balances_[who] += amount;
}

std::uint64_t Blockchain::balance(const Address& who) const {
  auto it = balances_.find(who);
  return it == balances_.end() ? 0 : it->second;
}

void Blockchain::transfer(const Address& from, const Address& to,
                          std::uint64_t amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    throw std::runtime_error("Blockchain::transfer: insufficient funds of " + from);
  }
  it->second -= amount;
  balances_[to] += amount;
}

std::size_t Blockchain::submit(Transaction tx) {
  tx.submitted_at = now_;
  txs_.push_back(std::move(tx));
  pending_.push_back(txs_.size() - 1);
  return txs_.size() - 1;
}

void Blockchain::schedule(Timestamp when, std::function<void(Timestamp)> action) {
  tasks_.emplace(when, ScheduledTask{when, std::move(action), nullptr});
}

void Blockchain::schedule(Timestamp when, std::function<void(Timestamp)> prepare,
                          std::function<void(Timestamp)> action) {
  tasks_.emplace(when, ScheduledTask{when, std::move(action), std::move(prepare)});
}

void Blockchain::defer_until_actions(std::function<void(Timestamp)> fn) {
  std::lock_guard<std::mutex> lock(deferred_mutex_);
  deferred_.push_back(std::move(fn));
}

void Blockchain::mine_one_block() {
  Block b;
  b.number = blocks_.size() + 1;
  b.timestamp = now_;
  b.size_bytes = config_.block_overhead_bytes;
  // Greedy inclusion under the block's size and gas budgets (FIFO order —
  // our simulation has no fee market).
  std::vector<std::size_t> still_pending;
  for (std::size_t idx : pending_) {
    Transaction& tx = txs_[idx];
    std::size_t tx_bytes = tx.payload_bytes + config_.tx_overhead_bytes;
    if (b.size_bytes + tx_bytes > config_.max_block_bytes ||
        b.gas_used + tx.gas_used > config_.max_block_gas) {
      still_pending.push_back(idx);
      continue;
    }
    tx.mined_at = now_;
    tx.block_number = b.number;
    b.size_bytes += tx_bytes;
    b.gas_used += tx.gas_used;
    b.tx_indices.push_back(idx);
  }
  pending_ = std::move(still_pending);
  total_bytes_ += b.size_bytes;
  total_gas_ += b.gas_used;
  blocks_.push_back(std::move(b));
}

void Blockchain::advance(Timestamp seconds) {
  Timestamp target = now_ + seconds;
  for (;;) {
    // Next event: a scheduled task or a block boundary, whichever first.
    Timestamp next_task =
        tasks_.empty() ? target + 1 : tasks_.begin()->first;
    Timestamp next_event = std::min(next_block_at_, next_task);
    if (next_event > target) break;
    now_ = next_event;
    // Fire all tasks due now (they may submit txs mined in the next block).
    // Each batch drains everything due at this instant: prepares run first —
    // concurrently when a pool is configured; they are side-effect-free by
    // contract — then actions run sequentially in schedule order, so ledger
    // and transaction ordering are identical at every thread count. Actions
    // may schedule new tasks at <= now_; the outer loop batches those too.
    while (!tasks_.empty() && tasks_.begin()->first <= now_) {
      std::vector<ScheduledTask> batch;
      while (!tasks_.empty() && tasks_.begin()->first <= now_) {
        batch.push_back(std::move(tasks_.begin()->second));
        tasks_.erase(tasks_.begin());
      }
      std::vector<std::size_t> prepares;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].prepare) prepares.push_back(i);
      }
      parallel::parallel_for(prepares.size(), [&](std::size_t k) {
        batch[prepares[k]].prepare(now_);
      });
      // Deferred hooks registered by the prepares (the batched settlement's
      // once-per-instant verification) run between prepares and actions.
      std::vector<std::function<void(Timestamp)>> hooks;
      {
        std::lock_guard<std::mutex> lock(deferred_mutex_);
        hooks.swap(deferred_);
      }
      for (auto& hook : hooks) hook(now_);
      for (auto& task : batch) task.action(now_);
    }
    if (now_ >= next_block_at_) {
      mine_one_block();
      next_block_at_ += config_.block_interval_s;
    }
  }
  now_ = target;
}

}  // namespace dsaudit::chain
