#include "chain/blockchain.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "primitives/keccak256.hpp"

namespace dsaudit::chain {

Blockchain::Blockchain(ChainConfig config) : config_(config) {
  next_block_at_ = config_.block_interval_s;
}

void Blockchain::mint(const Address& who, std::uint64_t amount) {
  balances_[who] += amount;
  total_supply_ += amount;
}

std::uint64_t Blockchain::balance(const Address& who) const {
  auto it = balances_.find(who);
  return it == balances_.end() ? 0 : it->second;
}

void Blockchain::transfer(const Address& from, const Address& to,
                          std::uint64_t amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    throw std::runtime_error("Blockchain::transfer: insufficient funds of " + from);
  }
  it->second -= amount;
  balances_[to] += amount;
  // Drop zeroed entries so the ledger map tracks live accounts, not every
  // address ever seen — closed contract escrows dominate at population
  // scale. balance() reports missing entries as 0, so this is unobservable.
  it = balances_.find(from);
  if (it != balances_.end() && it->second == 0) balances_.erase(it);
}

std::size_t Blockchain::submit(Transaction tx) {
  tx.submitted_at = now_;
  std::size_t index = submitted_count_++;
  if (config_.retention == Retention::Full) {
    txs_.push_back(std::move(tx));
    pending_.push_back(txs_.size() - 1);
  } else {
    pending_stream_.push_back(std::move(tx));
  }
  return index;
}

void Blockchain::schedule(Timestamp when, std::function<void(Timestamp)> action) {
  tasks_.push_back({when, task_seq_++, {when, std::move(action), nullptr}});
  std::push_heap(tasks_.begin(), tasks_.end(), TaskAfter{});
}

void Blockchain::schedule(Timestamp when, std::function<void(Timestamp)> prepare,
                          std::function<void(Timestamp)> action) {
  tasks_.push_back(
      {when, task_seq_++, {when, std::move(action), std::move(prepare)}});
  std::push_heap(tasks_.begin(), tasks_.end(), TaskAfter{});
}

void Blockchain::defer_until_actions(std::function<void(Timestamp)> fn) {
  std::lock_guard<std::mutex> lock(deferred_mutex_);
  deferred_.push_back(std::move(fn));
}

void Blockchain::fold_mined(const Transaction& tx) {
  ++tx_count_;
  total_payload_bytes_ += tx.payload_bytes;
  // Digest = keccak(prev || intern(from) || desc || fixed-width fields),
  // folded in mined order. Interning `from` by first appearance makes the
  // digest a function of behavior, not of the process-global contract
  // counter, so it compares across runs and retention modes.
  auto [it, fresh] = addr_intern_.emplace(tx.from, addr_intern_.size());
  (void)fresh;
  std::vector<std::uint8_t> buf;
  buf.reserve(32 + 8 + 2 + tx.description.size() + 8 * 5);
  buf.insert(buf.end(), tx_digest_.begin(), tx_digest_.end());
  auto put64 = [&buf](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) buf.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  };
  put64(it->second);
  buf.push_back(static_cast<std::uint8_t>(tx.description.size() & 0xff));
  buf.push_back(static_cast<std::uint8_t>(tx.description.size() >> 8));
  buf.insert(buf.end(), tx.description.begin(), tx.description.end());
  put64(tx.payload_bytes);
  put64(tx.gas_used);
  put64(tx.submitted_at);
  put64(tx.mined_at);
  put64(tx.block_number);
  tx_digest_ = primitives::Keccak256::hash(
      std::span<const std::uint8_t>(buf.data(), buf.size()));
}

void Blockchain::mine_one_block() {
  Block b;
  b.number = block_count_ + 1;
  b.timestamp = now_;
  b.size_bytes = config_.block_overhead_bytes;
  // Greedy inclusion under the block's size and gas budgets (FIFO order —
  // our simulation has no fee market).
  if (config_.retention == Retention::Full) {
    std::vector<std::size_t> still_pending;
    for (std::size_t idx : pending_) {
      Transaction& tx = txs_[idx];
      std::size_t tx_bytes = tx.payload_bytes + config_.tx_overhead_bytes;
      if (b.size_bytes + tx_bytes > config_.max_block_bytes ||
          b.gas_used + tx.gas_used > config_.max_block_gas) {
        still_pending.push_back(idx);
        continue;
      }
      tx.mined_at = now_;
      tx.block_number = b.number;
      b.size_bytes += tx_bytes;
      b.gas_used += tx.gas_used;
      b.tx_indices.push_back(idx);
      fold_mined(tx);
    }
    pending_ = std::move(still_pending);
  } else {
    std::vector<Transaction> still_pending;
    for (Transaction& tx : pending_stream_) {
      std::size_t tx_bytes = tx.payload_bytes + config_.tx_overhead_bytes;
      if (b.size_bytes + tx_bytes > config_.max_block_bytes ||
          b.gas_used + tx.gas_used > config_.max_block_gas) {
        still_pending.push_back(std::move(tx));
        continue;
      }
      tx.mined_at = now_;
      tx.block_number = b.number;
      b.size_bytes += tx_bytes;
      b.gas_used += tx.gas_used;
      fold_mined(tx);
    }
    pending_stream_ = std::move(still_pending);
  }
  total_bytes_ += b.size_bytes;
  total_gas_ += b.gas_used;
  ++block_count_;
  if (config_.retention == Retention::Full) blocks_.push_back(std::move(b));
}

void Blockchain::advance(Timestamp seconds) {
  Timestamp target = now_ + seconds;
  for (;;) {
    // Next event: a scheduled task or a block boundary, whichever first.
    Timestamp next_task = tasks_.empty() ? target + 1 : tasks_.front().when;
    // Streaming fast path: a maximal run of empty blocks strictly before the
    // next task is pure arithmetic — k blocks, k * overhead bytes, no gas.
    // (Full retention materializes each Block, so it walks them one by one.)
    if (config_.retention == Retention::Streaming && pending_stream_.empty() &&
        next_block_at_ < next_task) {
      Timestamp hi = std::min(target, next_task - 1);
      if (next_block_at_ <= hi) {
        std::uint64_t k = (hi - next_block_at_) / config_.block_interval_s + 1;
        block_count_ += k;
        total_bytes_ += k * config_.block_overhead_bytes;
        now_ = next_block_at_ + (k - 1) * config_.block_interval_s;
        next_block_at_ += k * config_.block_interval_s;
        continue;
      }
    }
    Timestamp next_event = std::min(next_block_at_, next_task);
    if (next_event > target) break;
    now_ = next_event;
    // Fire all tasks due now (they may submit txs mined in the next block).
    // Each batch drains everything due at this instant: prepares run first —
    // concurrently when a pool is configured; they are side-effect-free by
    // contract — then actions run sequentially in schedule order, so ledger
    // and transaction ordering are identical at every thread count. Actions
    // may schedule new tasks at <= now_; the outer loop batches those too.
    while (!tasks_.empty() && tasks_.front().when <= now_) {
      std::vector<ScheduledTask> batch;
      while (!tasks_.empty() && tasks_.front().when <= now_) {
        std::pop_heap(tasks_.begin(), tasks_.end(), TaskAfter{});
        batch.push_back(std::move(tasks_.back().task));
        tasks_.pop_back();
      }
      std::vector<std::size_t> prepares;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].prepare) prepares.push_back(i);
      }
      parallel::parallel_for(prepares.size(), [&](std::size_t k) {
        batch[prepares[k]].prepare(now_);
      });
      // Deferred hooks registered by the prepares (the batched settlement's
      // once-per-instant verification) run between prepares and actions.
      std::vector<std::function<void(Timestamp)>> hooks;
      {
        std::lock_guard<std::mutex> lock(deferred_mutex_);
        hooks.swap(deferred_);
      }
      for (auto& hook : hooks) hook(now_);
      for (auto& task : batch) task.action(now_);
    }
    if (now_ >= next_block_at_) {
      mine_one_block();
      next_block_at_ += config_.block_interval_s;
    }
  }
  now_ = target;
}

}  // namespace dsaudit::chain
