#include "chain/beacon.hpp"

#include <cstring>
#include <stdexcept>

#include "primitives/keccak256.hpp"

namespace dsaudit::chain {

namespace {

using primitives::Keccak256;

std::array<std::uint8_t, 32> round_hash(const std::array<std::uint8_t, 32>& seed,
                                        std::uint64_t round, std::uint64_t salt) {
  std::uint8_t buf[32 + 8 + 8];
  std::memcpy(buf, seed.data(), 32);
  std::memcpy(buf + 32, &round, 8);
  std::memcpy(buf + 40, &salt, 8);
  return Keccak256::hash(std::span<const std::uint8_t>(buf, sizeof(buf)));
}

BeaconOutput expand48(const std::array<std::uint8_t, 32>& state) {
  BeaconOutput out{};
  auto h1 = Keccak256::hash(state);
  std::uint8_t again[33];
  std::memcpy(again, state.data(), 32);
  again[32] = 0x01;
  auto h2 = Keccak256::hash(std::span<const std::uint8_t>(again, 33));
  std::memcpy(out.data(), h1.data(), 32);
  std::memcpy(out.data() + 32, h2.data(), 16);
  return out;
}

}  // namespace

BeaconOutput TrustedBeacon::randomness(std::uint64_t round) {
  return expand48(round_hash(seed_, round, 0));
}

CommitRevealBeacon::CommitRevealBeacon(std::array<std::uint8_t, 32> seed,
                                       std::size_t participants,
                                       BiasStrategy last_revealer_bias)
    : seed_(seed), participants_(participants), bias_(std::move(last_revealer_bias)) {
  if (participants_ < 2) {
    throw std::invalid_argument("CommitRevealBeacon: need >= 2 participants");
  }
}

BeaconOutput CommitRevealBeacon::mix(std::uint64_t round, bool include_last) const {
  std::array<std::uint8_t, 32> acc{};
  std::size_t n = include_last ? participants_ : participants_ - 1;
  for (std::size_t p = 0; p < n; ++p) {
    auto contrib = round_hash(seed_, round, p + 1);
    for (int i = 0; i < 32; ++i) acc[i] ^= contrib[i];
  }
  return expand48(acc);
}

BeaconOutput CommitRevealBeacon::randomness(std::uint64_t round) {
  BeaconOutput with = mix(round, true);
  if (!bias_) return with;
  // The last revealer sees the pre-image of both outcomes and picks; this is
  // exactly the one-bit-per-round bias of naive Randao designs.
  BeaconOutput without = mix(round, false);
  if (bias_(with, without)) return with;
  ++withheld_;
  return without;
}

std::array<std::uint8_t, 32> VdfBeacon::vdf(std::array<std::uint8_t, 32> input,
                                            unsigned iterations) {
  for (unsigned i = 0; i < iterations; ++i) {
    input = Keccak256::hash(input);
  }
  return input;
}

BeaconOutput VdfBeacon::randomness(std::uint64_t round) {
  // The committed state is fixed before reveals; the VDF output only becomes
  // known after the delay, so no participant can react to it.
  return expand48(vdf(round_hash(seed_, round, 0), delay_iterations_));
}

}  // namespace dsaudit::chain
