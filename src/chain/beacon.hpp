// Randomness beacons (§V-E "Reliable challenging randomness").
//
// The paper discusses three practical sources and we model each:
//   * TrustedBeacon      — an external trusted source (NIST-style beacon),
//                          keyed hash of the round number.
//   * CommitRevealBeacon — Randao-style commit-and-reveal among
//                          participants, including the known last-revealer
//                          bias: a withholding participant picks the better
//                          of "reveal" and "abort" for its own interest
//                          (the attack of [36] that motivates VDFs).
//   * VdfBeacon          — commit-reveal hardened by a verifiable delay
//                          function (modeled as iterated hashing): the
//                          output is fixed before the last reveal can react.
//
// Every beacon yields the paper's 48 challenge bytes: C1, C2 seeds (32
// expanded bytes here) and the 16-byte evaluation-point seed; the audit
// layer maps them into a Challenge.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace dsaudit::chain {

/// 48 bytes of per-round challenge randomness, as priced in §VII-B.
using BeaconOutput = std::array<std::uint8_t, 48>;

class RandomnessBeacon {
 public:
  virtual ~RandomnessBeacon() = default;
  virtual BeaconOutput randomness(std::uint64_t round) = 0;
  /// Estimated on-chain cost of obtaining one output, in USD (§VII-B quotes
  /// 0.01$ to 0.05$ per round depending on the service).
  virtual double cost_usd_per_round() const = 0;
};

/// Trusted external source (e.g. the NIST beacon referenced by the paper).
class TrustedBeacon final : public RandomnessBeacon {
 public:
  explicit TrustedBeacon(std::array<std::uint8_t, 32> seed) : seed_(seed) {}
  BeaconOutput randomness(std::uint64_t round) override;
  double cost_usd_per_round() const override { return 0.01; }

 private:
  std::array<std::uint8_t, 32> seed_;
};

/// Randao-style commit-and-reveal. Participants' contributions are XOR-mixed
/// hash preimages. The `bias` hook lets tests and the attack demo model the
/// last participant choosing to withhold: given the two candidate outputs
/// (with and without its reveal) it returns which to use.
class CommitRevealBeacon final : public RandomnessBeacon {
 public:
  using BiasStrategy = std::function<bool(const BeaconOutput& with_reveal,
                                          const BeaconOutput& without_reveal)>;

  /// participants >= 2; honest by default (always reveals).
  CommitRevealBeacon(std::array<std::uint8_t, 32> seed, std::size_t participants,
                     BiasStrategy last_revealer_bias = nullptr);
  BeaconOutput randomness(std::uint64_t round) override;
  double cost_usd_per_round() const override { return 0.05; }
  /// How many rounds the (biased) last revealer withheld so far.
  std::size_t withhold_count() const { return withheld_; }

 private:
  BeaconOutput mix(std::uint64_t round, bool include_last) const;
  std::array<std::uint8_t, 32> seed_;
  std::size_t participants_;
  BiasStrategy bias_;
  std::size_t withheld_ = 0;
};

/// Commit-reveal + VDF: the delay function output of the pre-reveal state is
/// final, so withholding cannot change it (paper ref [37]).
class VdfBeacon final : public RandomnessBeacon {
 public:
  VdfBeacon(std::array<std::uint8_t, 32> seed, unsigned delay_iterations = 10000)
      : seed_(seed), delay_iterations_(delay_iterations) {}
  BeaconOutput randomness(std::uint64_t round) override;
  double cost_usd_per_round() const override { return 0.03; }
  /// Evaluate the delay function (iterated hashing stands in for a
  /// sequential-squaring VDF; same interface, same unbiasability argument).
  static std::array<std::uint8_t, 32> vdf(std::array<std::uint8_t, 32> input,
                                          unsigned iterations);

 private:
  std::array<std::uint8_t, 32> seed_;
  unsigned delay_iterations_;
};

}  // namespace dsaudit::chain
