// Ethereum-calibrated gas and pricing model (§VII-B).
//
// The paper cannot run pairing crypto natively in Solidity; it deploys a
// custom precompile and *extrapolates* gas from measured verification time
// against a Ropsten ZK-SNARK verification transaction (Fig. 5). We implement
// the same extrapolation:
//
//   gas(tx) = base + calldata + verify_gas_per_ms * verification_ms
//
// with the per-ms coefficient anchored so that the paper's operating point
// (288-byte proof, 7.2 ms verification) costs the paper's reported 589,000
// gas. Price conversion uses the paper's footnote constants (5 Gwei,
// 143 USD/ETH, April 2020).
#pragma once

#include <cstdint>
#include <span>

namespace dsaudit::chain {

struct GasSchedule {
  std::uint64_t tx_base = 21000;
  std::uint64_t calldata_nonzero_byte = 16;  // EIP-2028 (Istanbul, pre-paper)
  std::uint64_t calldata_zero_byte = 4;
  std::uint64_t storage_word = 20000;  // SSTORE of a fresh 32-byte word
  std::uint64_t log_byte = 8;
  /// Extrapolation coefficient; see anchor_verify_gas_per_ms().
  double verify_gas_per_ms = 0.0;

  /// Solve verify_gas_per_ms so that a proof of `anchor_proof_bytes` (all
  /// nonzero) + `anchor_challenge_bytes` calldata verified in `anchor_ms`
  /// costs exactly `anchor_gas`. Defaults are the paper's §VII-B numbers.
  static GasSchedule calibrated(std::uint64_t anchor_gas = 589000,
                                double anchor_ms = 7.2,
                                std::size_t anchor_proof_bytes = 288,
                                std::size_t anchor_challenge_bytes = 48);

  std::uint64_t calldata_gas(std::span<const std::uint8_t> payload) const;
  /// Gas for a payload assumed fully non-zero (upper bound used in models).
  std::uint64_t calldata_gas(std::size_t nonzero_bytes) const;
  /// Full audit-response transaction: calldata + on-chain verification.
  std::uint64_t audit_tx_gas(std::size_t proof_bytes, std::size_t challenge_bytes,
                             double verify_ms) const;
};

struct PriceModel {
  double gwei_per_gas = 5.0;   // paper footnote 1
  double usd_per_eth = 143.0;  // paper footnote 1

  double eth(std::uint64_t gas) const { return gas * gwei_per_gas * 1e-9; }
  double usd(std::uint64_t gas) const { return eth(gas) * usd_per_eth; }
};

}  // namespace dsaudit::chain
