#include "chain/gas.hpp"

#include <stdexcept>

namespace dsaudit::chain {

GasSchedule GasSchedule::calibrated(std::uint64_t anchor_gas, double anchor_ms,
                                    std::size_t anchor_proof_bytes,
                                    std::size_t anchor_challenge_bytes) {
  GasSchedule g;
  std::uint64_t fixed =
      g.tx_base + g.calldata_gas(anchor_proof_bytes + anchor_challenge_bytes);
  if (anchor_gas <= fixed || anchor_ms <= 0) {
    throw std::invalid_argument("GasSchedule::calibrated: anchor below fixed costs");
  }
  g.verify_gas_per_ms = static_cast<double>(anchor_gas - fixed) / anchor_ms;
  return g;
}

std::uint64_t GasSchedule::calldata_gas(std::span<const std::uint8_t> payload) const {
  std::uint64_t gas = 0;
  for (auto b : payload) {
    gas += b == 0 ? calldata_zero_byte : calldata_nonzero_byte;
  }
  return gas;
}

std::uint64_t GasSchedule::calldata_gas(std::size_t nonzero_bytes) const {
  return nonzero_bytes * calldata_nonzero_byte;
}

std::uint64_t GasSchedule::audit_tx_gas(std::size_t proof_bytes,
                                        std::size_t challenge_bytes,
                                        double verify_ms) const {
  return tx_base + calldata_gas(proof_bytes + challenge_bytes) +
         static_cast<std::uint64_t>(verify_gas_per_ms * verify_ms);
}

}  // namespace dsaudit::chain
