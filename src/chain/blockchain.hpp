// Discrete-event blockchain simulator.
//
// Substitutes the paper's 3-node private Ethereum testnet (miner / provider /
// owner, §VII-A). It models what the evaluation actually measures: per-tx gas
// and size, block production at a fixed interval with a size budget
// (§VII-D assumes ~18 KB average blocks => ~2 tx/s for 288-byte audit txs
// plus overhead), cumulative chain growth (Fig. 10 left) and a native-token
// ledger for the deposit/micro-payment flows of Fig. 2.
//
// Time is event-driven: advance() skips from due instant to due instant over
// a binary min-heap of scheduled tasks plus the block-boundary cadence — no
// per-second walking. History is governed by ChainConfig::retention:
//
//   Retention::Full       (default) materializes every Transaction and Block,
//                         exactly as the original simulator did — the oracle
//                         mode every exact-constant test pins against.
//   Retention::Streaming  folds mined txs and blocks into rolling aggregates
//                         (counts, bytes, gas, a running keccak digest of the
//                         mined tx stream) the moment they are mined, and
//                         accounts runs of empty blocks arithmetically. O(1)
//                         memory per tx/block; blocks()/transactions() stay
//                         empty. Every aggregate is maintained identically in
//                         both modes, so a streaming run must match its
//                         full-retention twin bit-for-bit on
//                         block_count/tx_count/bytes/gas/digest.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "chain/gas.hpp"

namespace dsaudit::chain {

using Address = std::string;
using Timestamp = std::uint64_t;  // seconds since simulation start

/// History retention policy (see the header comment).
enum class Retention : std::uint8_t { Full, Streaming };

struct Transaction {
  Address from;
  std::string description;        // e.g. "prove", "challenge", "freeze"
  std::size_t payload_bytes = 0;  // calldata size
  std::uint64_t gas_used = 0;
  Timestamp submitted_at = 0;
  Timestamp mined_at = 0;
  std::uint64_t block_number = 0;
};

struct Block {
  std::uint64_t number = 0;
  Timestamp timestamp = 0;
  std::size_t size_bytes = 0;
  std::uint64_t gas_used = 0;
  std::vector<std::size_t> tx_indices;  // into Blockchain::transactions()
};

struct ChainConfig {
  Timestamp block_interval_s = 15;      // Ethereum-like
  std::size_t max_block_bytes = 18 * 1024;  // §VII-D average block size
  // Generous by default so the paper's size budget (18 KB) is the binding
  // constraint, as §VII-D assumes for its dedicated audit fork.
  std::uint64_t max_block_gas = 30'000'000;
  std::size_t block_overhead_bytes = 500;   // header+receipts amortized
  std::size_t tx_overhead_bytes = 110;      // envelope per tx
  /// Deferred-settlement window (seconds). Rounds due anywhere inside one
  /// window settle together at its boundary (the next multiple of this
  /// value) — fattening small batches at population scale. 0 or 1 means
  /// per-instant settlement: every boundary coincides with the due instant,
  /// byte-identical to the pre-window behavior.
  Timestamp settlement_window_s = 0;
  /// History retention (Full = materialized vectors, the historical
  /// behavior; Streaming = rolling aggregates, O(1) memory per tx/block).
  Retention retention = Retention::Full;
};

/// Scheduled callback ("Ethereum Alarm Clock" in Fig. 2): fires the first
/// time a block at/after `when` is mined. A task may carry an optional
/// `prepare` stage holding its side-effect-free heavy work (proof generation,
/// proof verification): advance() runs the prepares of all tasks due at one
/// instant concurrently on the parallel pool, then runs every `action`
/// sequentially in schedule order — so chain state (balances, transactions,
/// events) evolves exactly as it would under one-at-a-time execution.
struct ScheduledTask {
  Timestamp when = 0;
  std::function<void(Timestamp)> action;
  std::function<void(Timestamp)> prepare;  // optional, must not touch chain
};

class Blockchain {
 public:
  explicit Blockchain(ChainConfig config = {});

  Timestamp now() const { return now_; }
  Retention retention() const { return config_.retention; }

  /// Configured deferred-settlement window (see ChainConfig).
  Timestamp settlement_window() const { return config_.settlement_window_s; }
  /// First window boundary at or after `t`: ceil(t / window) * window, or
  /// `t` itself when windows are disabled (window <= 1). Work due at `t`
  /// settles at this instant.
  Timestamp settlement_boundary(Timestamp t) const {
    const Timestamp w = config_.settlement_window_s;
    if (w <= 1) return t;
    return (t + w - 1) / w * w;
  }

  // --- ledger -------------------------------------------------------------
  void mint(const Address& who, std::uint64_t amount);
  std::uint64_t balance(const Address& who) const;
  /// Throws std::runtime_error on insufficient funds.
  void transfer(const Address& from, const Address& to, std::uint64_t amount);
  /// Sum of every balance (mint-only monotone; transfers conserve it).
  /// Maintained incrementally — O(1), valid in both retention modes.
  std::uint64_t total_supply() const { return total_supply_; }

  // --- transactions -------------------------------------------------------
  /// Queue a transaction; it is mined by the next advance() with capacity.
  /// Returns the tx index (the running submission count under streaming
  /// retention, where transactions() stays empty).
  std::size_t submit(Transaction tx);

  /// Schedule a callback at a future timestamp.
  void schedule(Timestamp when, std::function<void(Timestamp)> action);
  /// Schedule a callback plus a side-effect-free prepare stage that advance()
  /// may run concurrently with other due tasks' prepares before any action.
  void schedule(Timestamp when, std::function<void(Timestamp)> prepare,
                std::function<void(Timestamp)> action);

  /// From within a prepare stage: register work to run exactly once at the
  /// current instant, after every due task's prepare has finished and before
  /// any action runs. This is the block-level barrier the deferred audit
  /// settlement uses — every contract's prepare enqueues its round, the
  /// deferred hook verifies the whole batch once, and the actions then
  /// consume per-round outcomes sequentially in schedule order. Thread-safe
  /// (prepares run concurrently); the hooks themselves run sequentially on
  /// the driving thread, so they may use the parallel pool.
  void defer_until_actions(std::function<void(Timestamp)> fn);

  /// Advance simulated time, skipping straight to the next due instant
  /// (scheduled task or block boundary) and firing everything due there.
  /// Under streaming retention, maximal runs of empty blocks between events
  /// are accounted arithmetically in one step.
  void advance(Timestamp seconds);

  // --- introspection ------------------------------------------------------
  /// Materialized history; empty under Retention::Streaming.
  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Transaction>& transactions() const { return txs_; }
  std::size_t pending_count() const {
    return config_.retention == Retention::Full ? pending_.size()
                                                : pending_stream_.size();
  }
  /// Total bytes appended to the chain so far (Fig. 10 left measures the
  /// annual rate of this).
  std::size_t total_chain_bytes() const { return total_bytes_; }
  std::uint64_t total_gas_used() const { return total_gas_; }

  // Rolling aggregates, maintained identically in both retention modes.
  /// Blocks mined so far (== blocks().size() under full retention).
  std::uint64_t block_count() const { return block_count_; }
  /// Transactions MINED so far (excludes still-pending submissions; under
  /// full retention transactions() additionally shows the pending tail).
  std::uint64_t tx_count() const { return tx_count_; }
  /// Sum of payload_bytes over every mined tx.
  std::uint64_t total_payload_bytes() const { return total_payload_bytes_; }
  /// Running keccak-256 over the mined transaction stream, folded in mined
  /// order. `from` addresses enter as first-appearance intern ids, so two
  /// runs whose contracts carry different process-global counter suffixes
  /// but behave identically produce the same digest — the cross-run,
  /// cross-retention-mode comparison handle.
  const std::array<std::uint8_t, 32>& tx_stream_digest() const {
    return tx_digest_;
  }

 private:
  void mine_one_block();
  /// Fold one freshly mined tx into the rolling aggregates (count, payload
  /// bytes, stream digest). Called in mined order in both retention modes.
  void fold_mined(const Transaction& tx);

  ChainConfig config_;
  Timestamp now_ = 0;
  Timestamp next_block_at_;

  // Full-retention history (empty under streaming).
  std::vector<Transaction> txs_;
  std::vector<std::size_t> pending_;  // indices into txs_
  std::vector<Block> blocks_;
  // Streaming-retention pending queue: owns the not-yet-mined txs, FIFO with
  // greedy skip (same inclusion rule as full retention).
  std::vector<Transaction> pending_stream_;

  // Scheduler: binary min-heap ordered by (when, seq). seq is the insertion
  // number, so the pop order is exactly the old multimap's (time, insertion)
  // order — the firing sequence every determinism test pins.
  struct PendingTask {
    Timestamp when = 0;
    std::uint64_t seq = 0;
    ScheduledTask task;
  };
  struct TaskAfter {
    bool operator()(const PendingTask& a, const PendingTask& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  std::vector<PendingTask> tasks_;  // heap under TaskAfter
  std::uint64_t task_seq_ = 0;

  std::vector<std::function<void(Timestamp)>> deferred_;
  std::mutex deferred_mutex_;
  std::map<Address, std::uint64_t> balances_;
  std::size_t total_bytes_ = 0;
  std::uint64_t total_gas_ = 0;

  // Rolling aggregates (both modes).
  std::uint64_t block_count_ = 0;
  std::uint64_t tx_count_ = 0;
  std::uint64_t submitted_count_ = 0;
  std::uint64_t total_payload_bytes_ = 0;
  std::uint64_t total_supply_ = 0;
  std::array<std::uint8_t, 32> tx_digest_{};
  std::map<Address, std::uint64_t> addr_intern_;
};

}  // namespace dsaudit::chain
