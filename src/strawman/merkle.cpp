#include "strawman/merkle.hpp"

#include <cstring>
#include <stdexcept>

namespace dsaudit::strawman {

MerkleTree::MerkleTree(std::span<const std::uint8_t> data) {
  std::size_t n_leaves = (data.size() + 31) / 32;
  if (n_leaves == 0) n_leaves = 1;
  // Round up to a power of two.
  std::size_t pow2 = 1;
  while (pow2 < n_leaves) pow2 <<= 1;
  std::vector<Digest32> leaves(pow2);
  for (std::size_t i = 0; i < pow2; ++i) {
    std::uint8_t block[32] = {0};
    std::size_t off = i * 32;
    if (off < data.size()) {
      std::memcpy(block, data.data() + off, std::min<std::size_t>(32, data.size() - off));
    }
    // Hash the raw block into the leaf (standard leaf = H(block)).
    leaves[i] = primitives::Sha256::hash(std::span<const std::uint8_t>(block, 32));
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest32> next(prev.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = hash_pair(prev[2 * i], prev[2 * i + 1]);
    }
    levels_.push_back(std::move(next));
  }
}

Digest32 MerkleTree::hash_pair(const Digest32& a, const Digest32& b) {
  primitives::Sha256 h;
  h.update(a);
  h.update(b);
  return h.finalize();
}

MerkleTree::Path MerkleTree::path(std::size_t leaf_index) const {
  if (leaf_index >= leaf_count()) {
    throw std::out_of_range("MerkleTree::path: leaf index out of range");
  }
  Path p;
  p.leaf_index = leaf_index;
  std::size_t idx = leaf_index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    p.siblings.push_back(levels_[level][idx ^ 1]);
    idx >>= 1;
  }
  return p;
}

bool MerkleTree::verify_path(const Digest32& root, const Digest32& leaf,
                             const Path& path) {
  Digest32 acc = leaf;
  std::size_t idx = path.leaf_index;
  for (const auto& sib : path.siblings) {
    acc = (idx & 1) ? hash_pair(sib, acc) : hash_pair(acc, sib);
    idx >>= 1;
  }
  return acc == root;
}

}  // namespace dsaudit::strawman
