// Groth16 ZK-SNARK cost simulator for the §IV strawman.
//
// SUBSTITUTION (see DESIGN.md): the paper prototyped this baseline with the
// Rust Bellman library on ≤16 KB files. We do not re-implement Groth16;
// instead the circuit's R1CS constraint count is computed from the real
// Merkle-statement shape (SHA-256 compressions along the path), and
// setup/prove costs scale linearly in constraints with coefficients
// calibrated to Table II's own measurements (3x10^5 constraints -> 260 s
// setup / 150 MB params / 30 s prove / ~300 MB memory / 384 B proof /
// 30 ms verify). The *relative* comparison against the main protocol — the
// paper's actual claim — is preserved by construction; the Merkle logic the
// circuit would prove is executed for real in strawman_audit.
#pragma once

#include <cstddef>

namespace dsaudit::strawman {

/// Constraint count for a Merkle-membership circuit over a file of
/// `file_bytes` (32-byte leaves): one leaf hash + `depth` path hashes, each
/// SHA-256 over 64 bytes = 2 compression rounds.
struct MerkleCircuit {
  static constexpr std::size_t kConstraintsPerCompression = 27904;  // bellman sha256
  std::size_t depth = 0;
  std::size_t constraints = 0;

  static MerkleCircuit for_file(std::size_t file_bytes);
};

/// Linear-in-constraints cost model, Table II calibration.
struct Groth16CostModel {
  // Coefficients derived from Table II's 3x10^5-constraint data point.
  double setup_ms_per_constraint = 260000.0 / 300000.0;   // 260 s
  double prove_ms_per_constraint = 30000.0 / 300000.0;    // 30 s
  double params_bytes_per_constraint = 150.0 * 1024 * 1024 / 300000.0;  // 150 MB
  double memory_bytes_per_constraint = 300.0 * 1024 * 1024 / 300000.0;  // ~300 MB
  double verify_ms = 30.0;            // constant (3 pairings + MSM in vk)
  std::size_t proof_bytes = 384;      // Table II (uncompressed Groth16)

  double setup_ms(std::size_t constraints) const {
    return setup_ms_per_constraint * static_cast<double>(constraints);
  }
  double prove_ms(std::size_t constraints) const {
    return prove_ms_per_constraint * static_cast<double>(constraints);
  }
  double params_bytes(std::size_t constraints) const {
    return params_bytes_per_constraint * static_cast<double>(constraints);
  }
  double memory_bytes(std::size_t constraints) const {
    return memory_bytes_per_constraint * static_cast<double>(constraints);
  }
};

}  // namespace dsaudit::strawman
