// The §IV strawman auditor: Merkle-tree storage proofs wrapped in a
// (simulated) ZK-SNARK for on-chain privacy, plus the cheating provider that
// exploits its limited challenge entropy (§IV-D / Table I's "low storage
// guarantees" for Merkle-based designs).
#pragma once

#include <optional>
#include <set>

#include "strawman/merkle.hpp"
#include "strawman/snark_sim.hpp"

namespace dsaudit::strawman {

/// What goes on chain per strawman audit: the (simulated) SNARK proof that
/// "challenged leaf + path lead to rt". The leaf/path themselves stay
/// off-chain — that is the whole point of the wrapper — but we carry them in
/// the struct so the simulation can execute the statement for real.
struct StrawmanProof {
  std::size_t leaf_index = 0;
  Digest32 leaf{};
  MerkleTree::Path path;
  std::size_t proof_bytes = 0;   // modeled SNARK proof size (384)
  double prove_ms_model = 0;     // modeled Groth16 proving time
};

class StrawmanAuditor {
 public:
  /// Build the tree and the (simulated) trusted setup for its circuit.
  explicit StrawmanAuditor(std::span<const std::uint8_t> data);

  const Digest32& root() const { return tree_.root(); }
  std::size_t leaf_count() const { return tree_.leaf_count(); }
  const MerkleCircuit& circuit() const { return circuit_; }
  const Groth16CostModel& cost_model() const { return model_; }

  /// Map challenge randomness to a leaf index (the strawman's PRF step).
  std::size_t challenge_leaf(std::uint64_t randomness) const;

  /// Honest prover.
  StrawmanProof prove(std::size_t leaf_index) const;

  /// Verifier: executes the SNARK statement (the Merkle check) for real;
  /// verification time on chain is modeled as cost_model().verify_ms.
  static bool verify(const Digest32& root, const StrawmanProof& proof);

 private:
  MerkleTree tree_;
  MerkleCircuit circuit_;
  Groth16CostModel model_;
};

/// §IV-D: "the storage provider can reuse the proofs for challenged blocks
/// ... instead of honestly storing all data". This provider drops the file
/// and keeps only (leaf, path) pairs it has been challenged on before.
class CheatingStrawmanProvider {
 public:
  explicit CheatingStrawmanProvider(const StrawmanAuditor& honest)
      : honest_(honest) {}

  /// While the provider still "has" the file it answers and caches; after
  /// drop_file() it can only answer challenges it has seen.
  void drop_file() { has_file_ = false; }
  std::optional<StrawmanProof> respond(std::size_t leaf_index);
  std::size_t cached_leaves() const { return cache_.size(); }
  /// Bytes of storage the cheater actually uses (leaves + paths).
  std::size_t storage_bytes() const;

 private:
  const StrawmanAuditor& honest_;
  bool has_file_ = true;
  std::set<std::size_t> cache_;
};

}  // namespace dsaudit::strawman
