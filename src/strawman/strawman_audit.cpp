#include "strawman/strawman_audit.hpp"

namespace dsaudit::strawman {

MerkleCircuit MerkleCircuit::for_file(std::size_t file_bytes) {
  std::size_t n_leaves = (file_bytes + 31) / 32;
  if (n_leaves == 0) n_leaves = 1;
  std::size_t pow2 = 1;
  MerkleCircuit c;
  while (pow2 < n_leaves) {
    pow2 <<= 1;
    ++c.depth;
  }
  // Leaf hash (32-byte input: 1 compression) + depth pair-hashes (64-byte
  // input: 2 compressions each, data + padding block).
  c.constraints = kConstraintsPerCompression * (1 + 2 * c.depth);
  return c;
}

StrawmanAuditor::StrawmanAuditor(std::span<const std::uint8_t> data)
    : tree_(data), circuit_(MerkleCircuit::for_file(data.size())) {}

std::size_t StrawmanAuditor::challenge_leaf(std::uint64_t randomness) const {
  return randomness % tree_.leaf_count();
}

StrawmanProof StrawmanAuditor::prove(std::size_t leaf_index) const {
  StrawmanProof p;
  p.leaf_index = leaf_index;
  p.leaf = tree_.leaf(leaf_index);
  p.path = tree_.path(leaf_index);
  p.proof_bytes = model_.proof_bytes;
  p.prove_ms_model = model_.prove_ms(circuit_.constraints);
  return p;
}

bool StrawmanAuditor::verify(const Digest32& root, const StrawmanProof& proof) {
  return MerkleTree::verify_path(root, proof.leaf, proof.path);
}

std::optional<StrawmanProof> CheatingStrawmanProvider::respond(
    std::size_t leaf_index) {
  if (has_file_) {
    cache_.insert(leaf_index);
    return honest_.prove(leaf_index);
  }
  if (cache_.count(leaf_index)) {
    return honest_.prove(leaf_index);  // replayed from its stash
  }
  return std::nullopt;  // caught: it no longer stores this leaf
}

std::size_t CheatingStrawmanProvider::storage_bytes() const {
  // Each cached entry: 32-byte leaf + depth sibling hashes.
  std::size_t per_entry = 32 + 32 * honest_.circuit().depth;
  return cache_.size() * per_entry;
}

}  // namespace dsaudit::strawman
