// SHA-256 Merkle tree — the real audit logic inside the §IV strawman.
//
// The strawman proves storage by opening challenged leaves against an
// on-chain root. (Sia-style; the paper's critique is that the challenge
// space is small and proofs leak the leaf, which the ZK-SNARK wrapper then
// has to hide at great cost.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "primitives/sha256.hpp"

namespace dsaudit::strawman {

using primitives::Digest32;

class MerkleTree {
 public:
  /// Build from 32-byte leaf blocks; data is padded with zero bytes to a
  /// power-of-two number of 32-byte leaves (at least one).
  explicit MerkleTree(std::span<const std::uint8_t> data);

  const Digest32& root() const { return levels_.back()[0]; }
  std::size_t leaf_count() const { return levels_[0].size(); }
  std::size_t depth() const { return levels_.size() - 1; }
  const Digest32& leaf(std::size_t i) const { return levels_[0].at(i); }

  struct Path {
    std::size_t leaf_index = 0;
    std::vector<Digest32> siblings;  // bottom-up
  };
  Path path(std::size_t leaf_index) const;

  /// Stateless verification against a root (what the contract / the SNARK
  /// circuit's statement checks).
  static bool verify_path(const Digest32& root, const Digest32& leaf,
                          const Path& path);

 private:
  static Digest32 hash_pair(const Digest32& a, const Digest32& b);
  std::vector<std::vector<Digest32>> levels_;  // levels_[0] = leaves
};

}  // namespace dsaudit::strawman
