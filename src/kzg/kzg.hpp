// KZG (Kate–Zaverucha–Goldberg) polynomial commitments over BN254.
//
// This is the polynomial-commitment machinery (paper refs [29], [30]) that
// the main auditing protocol fuses with homomorphic linear authenticators:
// the SRS {g1^{alpha^j}} is exactly the public key component the data owner
// publishes, and the prover's psi = g1^{Q_k(alpha)} is a KZG opening witness
// computed from the SRS without knowing alpha.
//
// Provided standalone (with its own verification key) so it can be tested
// and benchmarked in isolation from the audit protocol.
#pragma once

#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include <memory>

#include "pairing/pairing.hpp"
#include "poly/polynomial.hpp"

namespace dsaudit::kzg {

using curve::G1;
using curve::G2;
using ff::Fr;
using poly::Polynomial;

/// Prepared verification key: the two fixed G2 points of the SRS with their
/// Miller-loop line tables cached. Build once per SRS; every verify() against
/// it runs the prepared-pairing engine with zero G2-side field work.
struct VerifierKey {
  // No default constructor: a key of two "prepared infinity" points would
  // make every pairing product trivially 1 and accept arbitrary proofs.
  VerifierKey(const G2& g2_, const G2& g2_alpha_)
      : g2(g2_), g2_alpha(g2_alpha_), src_g2(g2_), src_g2_alpha(g2_alpha_) {}

  pairing::G2Prepared g2;
  pairing::G2Prepared g2_alpha;
  // The points the tables were built from — lets verify(const Srs&, ...)
  // detect an Srs whose G2 side was mutated after prepare() and fall back to
  // a fresh preparation instead of verifying against stale line tables.
  G2 src_g2;
  G2 src_g2_alpha;

  bool matches(const G2& g2_, const G2& g2_alpha_) const {
    return src_g2 == g2_ && src_g2_alpha == g2_alpha_;
  }
};

/// Structured reference string: powers of a secret alpha in G1, plus the
/// G2-side elements needed for verification.
struct Srs {
  std::vector<G1> g1_powers;  // g1^{alpha^0} .. g1^{alpha^{max_degree}}
  G2 g2;                      // group generator
  G2 g2_alpha;                // g2^{alpha}

  /// Optional prepared commitment key (shifted-base tables for the MSM).
  /// Built by prepare(); ~25-40% faster commits at a few MB of memory and a
  /// one-time cost of ~254 point doublings per SRS power. Production callers
  /// that commit more than a handful of times should prepare once.
  std::shared_ptr<const curve::MsmBasesTable<G1>> commit_key;

  /// Optional prepared verification key (cached G2 line tables); also built
  /// by prepare(). verify(const Srs&, ...) uses it when present and falls
  /// back to preparing on the fly otherwise.
  std::shared_ptr<const VerifierKey> verify_key;

  std::size_t max_degree() const { return g1_powers.size() - 1; }

  /// Builds commit_key and verify_key (idempotent).
  void prepare();

  /// Builds a fresh prepared key (~two G2 preparations — not an accessor;
  /// repeated verifiers should prepare() once and use verify_key).
  VerifierKey make_verifier_key() const { return VerifierKey{g2, g2_alpha}; }
};

/// Trusted setup. In the audit protocol the data owner runs this (alpha is
/// part of its secret key, so no multi-party ceremony is needed — the owner
/// is the party the commitment protects).
Srs make_srs(const Fr& alpha, std::size_t max_degree);

/// Commitment C = g1^{P(alpha)}, via MSM over the SRS.
G1 commit(const Srs& srs, const Polynomial& p);

/// Opening proof at point r: value y = P(r) and witness psi = g1^{Q(alpha)}
/// with Q = (P - y)/(x - r).
struct Opening {
  Fr point;
  Fr value;
  G1 witness;
};
Opening open(const Srs& srs, const Polynomial& p, const Fr& r);

/// Check e(C / g1^y, g2) == e(psi, g2^alpha / g2^r), evaluated as the
/// equivalent 2-pairing product e(C - y g1 + r psi, g2) * e(-psi, g2^alpha)
/// == 1 — the challenge scalar moves to the (cheap) G1 side so both G2
/// arguments are the fixed, prepared key points.
bool verify(const VerifierKey& vk, const G1& commitment, const Opening& opening);

/// Convenience overload: uses srs.verify_key when prepare() built it,
/// otherwise prepares the two G2 points for this one call.
bool verify(const Srs& srs, const G1& commitment, const Opening& opening);

}  // namespace dsaudit::kzg
