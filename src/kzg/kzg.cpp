#include "kzg/kzg.hpp"

#include <stdexcept>

#include "pairing/pairing.hpp"

namespace dsaudit::kzg {

Srs make_srs(const Fr& alpha, std::size_t max_degree) {
  Srs srs;
  srs.g1_powers.reserve(max_degree + 1);
  // Every SRS power is a multiple of the fixed generator, so each one is a
  // handful of mixed additions against the cached window table instead of a
  // full double-and-add ladder.
  Fr power = Fr::one();
  for (std::size_t j = 0; j <= max_degree; ++j) {
    srs.g1_powers.push_back(curve::g1_mul_generator(power));
    power *= alpha;
  }
  srs.g2 = G2::generator();
  srs.g2_alpha = curve::g2_mul_generator(alpha);
  return srs;
}

void Srs::prepare() {
  if (commit_key) return;
  commit_key = std::make_shared<const curve::MsmBasesTable<G1>>(
      curve::msm_precompute<G1>(g1_powers));
}

G1 commit(const Srs& srs, const Polynomial& p) {
  if (p.is_zero()) return G1::infinity();
  if (p.degree() > srs.max_degree()) {
    throw std::invalid_argument("kzg::commit: polynomial exceeds SRS degree");
  }
  auto coeffs = p.coefficients();
  if (srs.commit_key) return curve::msm_precomputed(*srs.commit_key, coeffs);
  return curve::msm<G1>(std::span<const G1>(srs.g1_powers.data(), coeffs.size()),
                        coeffs);
}

Opening open(const Srs& srs, const Polynomial& p, const Fr& r) {
  auto [q, y] = p.divide_by_linear(r);
  Opening o;
  o.point = r;
  o.value = y;
  o.witness = commit(srs, q);
  return o;
}

bool verify(const Srs& srs, const G1& commitment, const Opening& opening) {
  // e(C - [y]g1, g2) * e(-psi, [alpha]g2 - [r]g2) == 1
  G1 c_minus_y = commitment - curve::g1_mul_generator(opening.value);
  // srs.g2 is the group generator by construction (make_srs); the equality
  // check keeps the fixed-base shortcut honest for hand-built SRS values.
  G2 r_g2 = srs.g2 == G2::generator() ? curve::g2_mul_generator(opening.point)
                                      : srs.g2.mul(opening.point);
  G2 alpha_minus_r = srs.g2_alpha - r_g2;
  std::vector<std::pair<G1, G2>> pairs{
      {c_minus_y, srs.g2},
      {-opening.witness, alpha_minus_r},
  };
  return pairing::pairing_product_is_one(pairs);
}

}  // namespace dsaudit::kzg
