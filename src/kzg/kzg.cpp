#include "kzg/kzg.hpp"

#include <stdexcept>

#include "pairing/pairing.hpp"

namespace dsaudit::kzg {

Srs make_srs(const Fr& alpha, std::size_t max_degree) {
  Srs srs;
  srs.g1_powers.reserve(max_degree + 1);
  // Every SRS power is a multiple of the fixed generator, so each one is a
  // handful of mixed additions against the cached window table instead of a
  // full double-and-add ladder.
  Fr power = Fr::one();
  for (std::size_t j = 0; j <= max_degree; ++j) {
    srs.g1_powers.push_back(curve::g1_mul_generator(power));
    power *= alpha;
  }
  srs.g2 = G2::generator();
  srs.g2_alpha = curve::g2_mul_generator(alpha);
  return srs;
}

void Srs::prepare() {
  if (!commit_key) {
    commit_key = std::make_shared<const curve::MsmBasesTable<G1>>(
        curve::msm_precompute<G1>(g1_powers));
  }
  if (!verify_key) {
    verify_key = std::make_shared<const VerifierKey>(g2, g2_alpha);
  }
}

G1 commit(const Srs& srs, const Polynomial& p) {
  if (p.is_zero()) return G1::infinity();
  if (p.degree() > srs.max_degree()) {
    throw std::invalid_argument("kzg::commit: polynomial exceeds SRS degree");
  }
  auto coeffs = p.coefficients();
  if (srs.commit_key) return curve::msm_precomputed(*srs.commit_key, coeffs);
  return curve::msm<G1>(std::span<const G1>(srs.g1_powers.data(), coeffs.size()),
                        coeffs);
}

Opening open(const Srs& srs, const Polynomial& p, const Fr& r) {
  auto [q, y] = p.divide_by_linear(r);
  Opening o;
  o.point = r;
  o.value = y;
  o.witness = commit(srs, q);
  return o;
}

bool verify(const VerifierKey& vk, const G1& commitment, const Opening& opening) {
  // e(C - [y]g1, g2) == e(psi, [alpha]g2 - [r]g2), rearranged with the
  // challenge moved to G1 (e(psi, -[r]g2) == e([r]psi, g2)^{-1}) so both
  // pairings hit the prepared fixed points:
  //   e(C - [y]g1 + [r]psi, g2) * e(-psi, [alpha]g2) == 1.
  // A G1 scalar mul replaces the old G2 one — ~3x cheaper field ops — and
  // the two Miller loops replay cached line tables in lock-step.
  G1 lhs = commitment - curve::g1_mul_generator(opening.value) +
           opening.witness.mul(opening.point);
  std::array<pairing::PreparedPair, 2> pairs{
      pairing::PreparedPair{lhs, &vk.g2},
      pairing::PreparedPair{-opening.witness, &vk.g2_alpha},
  };
  return pairing::pairing_product_is_one(pairs);
}

bool verify(const Srs& srs, const G1& commitment, const Opening& opening) {
  if (srs.verify_key && srs.verify_key->matches(srs.g2, srs.g2_alpha)) {
    return verify(*srs.verify_key, commitment, opening);
  }
  return verify(VerifierKey{srs.g2, srs.g2_alpha}, commitment, opening);
}

}  // namespace dsaudit::kzg
