#include "kzg/kzg.hpp"

#include <stdexcept>

#include "pairing/pairing.hpp"

namespace dsaudit::kzg {

Srs make_srs(const Fr& alpha, std::size_t max_degree) {
  Srs srs;
  srs.g1_powers.reserve(max_degree + 1);
  Fr power = Fr::one();
  for (std::size_t j = 0; j <= max_degree; ++j) {
    srs.g1_powers.push_back(G1::generator().mul(power));
    power *= alpha;
  }
  srs.g2 = G2::generator();
  srs.g2_alpha = G2::generator().mul(alpha);
  return srs;
}

G1 commit(const Srs& srs, const Polynomial& p) {
  if (p.is_zero()) return G1::infinity();
  if (p.degree() > srs.max_degree()) {
    throw std::invalid_argument("kzg::commit: polynomial exceeds SRS degree");
  }
  auto coeffs = p.coefficients();
  return curve::msm<G1>(std::span<const G1>(srs.g1_powers.data(), coeffs.size()),
                        coeffs);
}

Opening open(const Srs& srs, const Polynomial& p, const Fr& r) {
  auto [q, y] = p.divide_by_linear(r);
  Opening o;
  o.point = r;
  o.value = y;
  o.witness = commit(srs, q);
  return o;
}

bool verify(const Srs& srs, const G1& commitment, const Opening& opening) {
  // e(C - [y]g1, g2) * e(-psi, [alpha]g2 - [r]g2) == 1
  G1 c_minus_y = commitment - G1::generator().mul(opening.value);
  G2 alpha_minus_r = srs.g2_alpha - srs.g2.mul(opening.point);
  std::vector<std::pair<G1, G2>> pairs{
      {c_minus_y, srs.g2},
      {-opening.witness, alpha_minus_r},
  };
  return pairing::pairing_product_is_one(pairs);
}

}  // namespace dsaudit::kzg
