// GLV endomorphism scalar decomposition for BN254's G1.
//
// BN254 has j-invariant 0, so E(Fp) : y^2 = x^3 + 3 carries the efficient
// endomorphism phi(x, y) = (beta * x, y) with beta a primitive cube root of
// unity in Fp. On G1 (prime order r, cofactor 1) phi acts as multiplication
// by lambda, the cube root of unity mod r picked out by the curve:
//
//   lambda = 36 t^3 + 18 t^2 + 6 t + 1,   lambda^2 + lambda + 1 = 0 (mod r)
//
// with t the BN parameterization constant (ff::kBnParamT). Every scalar
// k < r then splits as k = k1 + k2 * lambda (mod r) with |k1|, |k2| < 2^127,
// so k * P = k1 * P + k2 * phi(P) runs half the doubling chain of a direct
// 254-bit ladder (Gallant-Lambert-Vanstone, CRYPTO 2001).
//
// The split is Babai rounding against an explicit short basis of the lattice
// L = {(x, y) : x + y*lambda = 0 (mod r)}, derived from the same
// t-parameterization (see params_check for the re-derivation):
//
//   v1 = (6 t^2 + 4 t + 1,  2 t + 1)
//   v2 = (-(2 t + 1),       6 t^2 + 2 t)         det(v1, v2) = r exactly
//
// Writing (k, 0) = c1 v1 + c2 v2 over the rationals gives c1 = k(6t^2+2t)/r
// and c2 = -k(2t+1)/r; rounding c_i to integers m_i with the precomputed
// 2^256-scaled reciprocals g_i = floor(2^256 * b_i / r) (one widening
// mul-high each, total rounding error < 3/4) leaves the short remainder
// (k1, k2) = (k, 0) - m1 v1 - m2 v2 with both coordinates < 2^127 in
// magnitude — strictly, 3/4 * (6t^2 + 6t + 2) < 2^127.
//
// This header depends only on the field layer; the runtime constants
// (including the beta root matched against the G1 generator) are derived
// once in glv.cpp and self-checked at init.
#pragma once

#include "bigint/u256.hpp"
#include "field/fp.hpp"

namespace dsaudit::curve {

/// Upper bound (in bits) on the GLV half-scalar magnitudes; the
/// decomposition throws std::logic_error if a half ever exceeds it.
inline constexpr unsigned kGlvHalfBits = 127;

/// Runtime GLV constants, derived from ff::kBnParamT and self-verified
/// (lambda root relation, lattice membership, determinant, beta/generator
/// eigenvalue match) — any mismatch throws at first use.
struct GlvParams {
  ff::Fp beta;        // phi(x, y) = (beta * x, y) acts as [lambda] on G1
  bigint::U256 lambda;  // canonical mod r
  bigint::U256 a1, b1, b2;  // v1 = (a1, b1), v2 = (-b1, b2)
  bigint::U256 g1, g2;      // floor(2^256 * b2 / r), floor(2^256 * b1 / r)
};

const GlvParams& glv_params();

/// k = (neg1 ? -k1 : k1) + (neg2 ? -k2 : k2) * lambda (mod r), with the
/// magnitudes k1, k2 < 2^kGlvHalfBits. Requires k < r (canonical scalar).
struct GlvDecomposed {
  bigint::U256 k1, k2;
  bool neg1 = false, neg2 = false;
};

GlvDecomposed glv_decompose(const bigint::U256& k);

}  // namespace dsaudit::curve
