// G1: the prime-order-r group E(Fp) : y^2 = x^3 + 3, generator (1, 2).
// The curve has cofactor 1, so every finite curve point is in the group.
//
// Includes the protocol's random oracle H : {0,1}* -> G1 (try-and-increment
// over Keccak-256) and the canonical 32-byte point compression that gives the
// paper's 96-byte non-private proofs.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "curve/fixed_base.hpp"
#include "curve/point.hpp"
#include "field/fp.hpp"

namespace dsaudit::curve {

using ff::Fp;

struct G1Tag {
  static const Fp& curve_b();
  static const Point<Fp, G1Tag>& generator();
  /// GLV endomorphism constant: phi(x, y) = (endo_beta() * x, y) acts as
  /// multiplication by lambda on G1 (cofactor 1, so on every curve point).
  /// Declaring this opts the whole scalar layer — Point::mul, msm,
  /// msm_precomputed — into endomorphism-split mode for this group; G2's tag
  /// deliberately omits it (the twist's cofactor points break the eigenvalue
  /// relation, and g2_in_subgroup needs integer-multiple semantics).
  static const Fp& endo_beta();
};

using G1 = Point<Fp, G1Tag>;

/// Process-wide fixed-base window table for the G1 generator (built lazily,
/// thread-safe). Use g1_mul_generator for k * g1 on any hot path.
const FixedBaseTable<G1>& g1_generator_table();
G1 g1_mul_generator(const ff::Fr& k);

/// Uniform-enough random group element (random scalar times the generator).
G1 g1_random(primitives::SecureRng& rng);

/// H(name || i): hash arbitrary bytes onto the curve by try-and-increment.
/// Deterministic; ~2 attempts expected. Used for block-index binding in the
/// authenticators sigma_i = (g1^{M_i(alpha)} * H(name||i))^x.
G1 hash_to_g1(std::span<const std::uint8_t> data);
G1 hash_to_g1(std::string_view s);

/// 32-byte compressed encoding: big-endian x with bit 255 = infinity flag and
/// bit 254 = parity of y (p is 254 bits, so both are free).
std::array<std::uint8_t, 32> g1_compress(const G1& p);
/// Decompress; nullopt on any malformed encoding (x >= p, x not on curve,
/// bad padding bits).
std::optional<G1> g1_decompress(std::span<const std::uint8_t, 32> bytes);

}  // namespace dsaudit::curve
