// Fixed-base scalar multiplication via precomputed window tables.
//
// For a base point B fixed for the lifetime of the process (the G1/G2
// generators here), store d * 2^{w*i} * B for every w-bit window position i
// and every digit d = 1..2^w-1, batch-normalized to affine. A scalar
// multiplication is then ceil(256/w) mixed additions and *zero* doublings —
// ~15x faster than the generic wNAF ladder at w = 8, for ~0.5 MB per G1
// table. make_srs, kzg::verify and the audit protocol's generator
// multiplications all sit on this.
#pragma once

#include "curve/point.hpp"

namespace dsaudit::curve {

template <typename P>
class FixedBaseTable {
 public:
  using Affine = typename P::Affine;

  /// Builds the table: (2^width - 1) * ceil(256/width) precomputed points,
  /// one group addition each, normalized to affine with a single inversion.
  explicit FixedBaseTable(const P& base, unsigned width = 8) : width_(width) {
    if (width_ == 0 || width_ > 16) {
      throw std::invalid_argument("FixedBaseTable: width out of range");
    }
    // Cover all 256 scalar bits so any canonical U256 is valid, even though
    // Fr scalars stop at 254 — the top windows just stay unused.
    windows_ = (256 + width_ - 1) / width_;
    per_window_ = (std::size_t{1} << width_) - 1;
    std::vector<P> jac;
    jac.reserve(windows_ * per_window_);
    P window_base = base;  // 2^{width*i} * B
    for (unsigned i = 0; i < windows_; ++i) {
      P acc = window_base;
      for (std::size_t d = 1; d <= per_window_; ++d) {
        jac.push_back(acc);      // acc == d * window_base
        acc += window_base;
      }
      window_base = acc;  // (2^width) * previous window base
    }
    table_ = P::batch_to_affine(jac);
  }

  /// k * base, one mixed addition per nonzero window digit.
  P mul(const U256& k) const {
    P acc = P::infinity();
    for (unsigned i = 0; i < windows_; ++i) {
      bigint::u64 d = k.extract_window(i * width_, width_);
      if (d != 0) acc = acc.mixed_add(table_[i * per_window_ + d - 1]);
    }
    return acc;
  }
  P mul(const Fr& k) const { return mul(k.to_u256()); }

  unsigned width() const { return width_; }

 private:
  unsigned width_;
  unsigned windows_;
  std::size_t per_window_;
  std::vector<Affine> table_;
};

}  // namespace dsaudit::curve
