#include "curve/g2.hpp"

#include <algorithm>

#include "field/fp12.hpp"
#include "field/sqrt.hpp"

namespace dsaudit::curve {

namespace {

// EIP-197 / py_ecc generator for the order-r subgroup of the twist.
const char* kG2GenX0 =
    "10857046999023057135944570762232829481370756359578518086990519993285655852781";
const char* kG2GenX1 =
    "11559732032986387107991004021392285783925812861821192530917403151452391805634";
const char* kG2GenY0 =
    "8495653923123431417604973247489272438418190587263600148770280649306958101930";
const char* kG2GenY1 =
    "4082367875863433681332203403145435568316851327593401208105741076214120093531";

Fp2 fp2_from_dec(const char* c0, const char* c1) {
  return Fp2{ff::Fp::from_u256(ff::U256::from_dec(c0)),
             ff::Fp::from_u256(ff::U256::from_dec(c1))};
}

/// Lexicographic comparison of the canonical byte encoding, used to pin down
/// which of the two square roots a compressed point refers to.
bool lex_greater(const Fp2& a, const Fp2& b) {
  auto ab = a.to_bytes();
  auto bb = b.to_bytes();
  return std::lexicographical_compare(bb.begin(), bb.end(), ab.begin(), ab.end());
}

}  // namespace

const Fp2& G2Tag::curve_b() {
  // b' = 3 / xi  (D-type twist).
  static const Fp2 b = ff::xi().inverse().mul_fp(ff::Fp::from_u64(3));
  return b;
}

const G2& G2Tag::generator() {
  static const G2 g{fp2_from_dec(kG2GenX0, kG2GenX1),
                    fp2_from_dec(kG2GenY0, kG2GenY1)};
  return g;
}

const FixedBaseTable<G2>& g2_generator_table() {
  static const FixedBaseTable<G2> table(G2::generator());
  return table;
}

G2 g2_mul_generator(const ff::Fr& k) { return g2_generator_table().mul(k); }

G2 g2_random(primitives::SecureRng& rng) {
  return g2_mul_generator(Fr::random(rng));
}

bool g2_in_subgroup(const G2& p) {
  if (!p.is_on_curve()) return false;
  if (p.is_infinity()) return true;
  // psi(Q) == [6t^2] Q characterizes the order-r subgroup of the twist:
  //  - completeness: on the r-subgroup psi acts as [p], and p = r + 6t^2,
  //    so psi(Q) = [p mod r] Q = [6t^2] Q;
  //  - soundness: the twist's cofactor h2 = 2p - r is coprime to r
  //    (h2 = 12t^2 mod r != 0), so any Q splits as Q_r + Q_c. psi satisfies
  //    its characteristic polynomial psi^2 - tr*psi + p = 0 (tr = 6t^2 + 1);
  //    if psi(Q_c) = [6t^2] Q_c then [36t^4 - tr*6t^2 + p] Q_c =
  //    [p - 6t^2] Q_c = [r] Q_c = 0, and r coprime to the cofactor forces
  //    Q_c = 0.
  // 6t^2 is 127 bits, so the ladder runs half the order-r oracle's length.
  static const ff::U256 six_t_sq = [] {
    const bigint::u128 v =
        bigint::u128{6} * ff::kBnParamT * ff::kBnParamT;
    return ff::U256{static_cast<bigint::u64>(v),
                    static_cast<bigint::u64>(v >> 64), 0, 0};
  }();
  return g2_frobenius(p) == p.mul(six_t_sq);
}

bool g2_in_subgroup_naive(const G2& p) {
  if (!p.is_on_curve()) return false;
  return p.mul(Fr::modulus()).is_infinity();
}

G2 g2_frobenius(const G2& p) {
  if (p.is_infinity()) return p;
  const auto& tc = ff::tower_consts();
  auto [x, y] = p.to_affine();
  return G2{x.conjugate() * tc.twist_frob_x, y.conjugate() * tc.twist_frob_y};
}

G2 g2_frobenius2(const G2& p) {
  if (p.is_infinity()) return p;
  const auto& tc = ff::tower_consts();
  auto [x, y] = p.to_affine();
  return G2{x * tc.twist_frob2_x, y * tc.twist_frob2_y};
}

std::array<std::uint8_t, 64> g2_compress(const G2& p) {
  std::array<std::uint8_t, 64> out{};
  if (p.is_infinity()) {
    out[0] = 0x80;
    return out;
  }
  auto [x, y] = p.to_affine();
  // x.c1 first so the flag bits land in the top bits of a 254-bit value.
  x.c1.to_be_bytes(std::span<std::uint8_t, 32>(out.data(), 32));
  x.c0.to_be_bytes(std::span<std::uint8_t, 32>(out.data() + 32, 32));
  if (lex_greater(y, -y)) out[0] |= 0x40;
  return out;
}

std::optional<G2> g2_decompress(std::span<const std::uint8_t, 64> bytes) {
  std::array<std::uint8_t, 64> buf;
  std::copy(bytes.begin(), bytes.end(), buf.begin());
  bool inf = (buf[0] & 0x80) != 0;
  bool greater = (buf[0] & 0x40) != 0;
  buf[0] &= 0x3f;
  if (inf) {
    for (auto b : buf) {
      if (b != 0) return std::nullopt;
    }
    if (greater) return std::nullopt;
    return G2::infinity();
  }
  ff::U256 x1 = ff::U256::from_be_bytes(std::span<const std::uint8_t, 32>(buf.data(), 32));
  ff::U256 x0 =
      ff::U256::from_be_bytes(std::span<const std::uint8_t, 32>(buf.data() + 32, 32));
  if (!bigint::lt(x1, ff::Fp::modulus()) || !bigint::lt(x0, ff::Fp::modulus())) {
    return std::nullopt;
  }
  Fp2 x{ff::Fp::from_u256(x0), ff::Fp::from_u256(x1)};
  Fp2 rhs = x.square() * x + G2Tag::curve_b();
  auto y = ff::sqrt(rhs);
  if (!y) return std::nullopt;
  Fp2 yy = (lex_greater(*y, -*y) == greater) ? *y : -*y;
  G2 p{x, yy};
  if (!g2_in_subgroup(p)) return std::nullopt;  // reject cofactor components
  return p;
}

}  // namespace dsaudit::curve
