// G2: the order-r subgroup of the sextic twist E'(Fp2) : y^2 = x^3 + 3/xi,
// xi = 9 + u, with the standard EIP-197 generator. Unlike G1, the twist has a
// large cofactor, so membership requires an explicit subgroup check.
#pragma once

#include <cstdint>
#include <optional>

#include "curve/fixed_base.hpp"
#include "curve/point.hpp"
#include "field/fp2.hpp"

namespace dsaudit::curve {

using ff::Fp2;

struct G2Tag {
  static const Fp2& curve_b();
  static const Point<Fp2, G2Tag>& generator();
};

using G2 = Point<Fp2, G2Tag>;

/// Process-wide fixed-base window table for the G2 generator (built lazily,
/// thread-safe). Use g2_mul_generator for k * g2 on any hot path.
const FixedBaseTable<G2>& g2_generator_table();
G2 g2_mul_generator(const ff::Fr& k);

G2 g2_random(primitives::SecureRng& rng);

/// True iff the point is on the twist AND in the order-r subgroup. Fast
/// path: the twist-endomorphism criterion psi(Q) == [6t^2] Q (one psi plus a
/// 127-bit ladder instead of the full 254-bit order-r ladder) — see g2.cpp
/// for the soundness argument. Contract deserialization pays this on every
/// public key.
bool g2_in_subgroup(const G2& p);

/// The retained differential oracle: the full order-r ladder
/// [r] Q == infinity.
bool g2_in_subgroup_naive(const G2& p);

/// The untwist-Frobenius-twist endomorphism psi(x, y) = (gamma2 * conj(x),
/// gamma3 * conj(y)), needed for the optimal-ate final line additions.
G2 g2_frobenius(const G2& p);
/// psi^2 — multiplication of coordinates by the Fp-valued constants.
G2 g2_frobenius2(const G2& p);

/// 64-byte compressed encoding: x.c1 || x.c0 big-endian, flags in the top
/// bits of the first byte (bit7 infinity, bit6 y-parity of c0 — with c1's
/// parity breaking ties when y.c0 is zero is unnecessary: we define the sign
/// by lexicographic order of the full serialized y).
std::array<std::uint8_t, 64> g2_compress(const G2& p);
std::optional<G2> g2_decompress(std::span<const std::uint8_t, 64> bytes);

}  // namespace dsaudit::curve
