// Short-Weierstrass points in Jacobian coordinates, shared by G1 and G2.
//
// Curve equation: y^2 = x^3 + b over the coordinate field F, with b supplied
// by the curve tag (b = 3 for G1; b = 3/(9+u) for the sextic twist hosting
// G2). Jacobian coordinates (X, Y, Z) represent the affine point
// (X/Z^2, Y/Z^3); infinity is Z = 0.
//
// The scalar-multiplication layer on top:
//   - AffinePoint + mixed Jacobian/affine addition (madd-2007-bl, 7M+4S vs.
//     11M+5S for the general add) — the workhorse of every fast path;
//   - batch_to_affine: Jacobian -> affine for whole point sets with a single
//     field inversion (Montgomery's trick);
//   - Point::mul: signed-digit wNAF with a batch-normalized table of odd
//     multiples (Point::mul_naive keeps the double-and-add reference);
//   - msm: Pippenger bucketing over affine bases with signed windows (half
//     the buckets), limb-wise digit extraction, and batched affine bucket
//     accumulation that amortizes one inversion over thousands of additions;
//   - all three MSM entry points shard their signed-digit window positions
//     across the parallel::thread_pool (see detail::msm_sharded), falling
//     back to the identical sequential pipeline at one thread.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "curve/glv.hpp"
#include "field/batch_inverse.hpp"
#include "field/fp.hpp"
#include "parallel/thread_pool.hpp"

namespace dsaudit::curve {

/// A curve tag opts into GLV endomorphism-split scalar arithmetic by
/// exposing the endomorphism constant (see G1Tag::endo_beta). Split mode
/// requires the group to have cofactor 1 (every point has order r), so
/// scalars may be reduced mod r and phi acts as [lambda] on every input.
template <typename Tag>
concept HasEndomorphism = requires { Tag::endo_beta(); };

using ff::Fr;
using ff::U256;

/// A finite curve point (x, y), or infinity. This is the memory- and
/// operation-efficient representation for *inputs* to addition chains; all
/// accumulation happens in Jacobian coordinates.
template <typename F, typename Tag>
struct AffinePoint {
  F x, y;
  bool infinity = true;

  AffinePoint() = default;  // infinity
  AffinePoint(const F& x_, const F& y_) : x(x_), y(y_), infinity(false) {}

  bool is_infinity() const { return infinity; }

  AffinePoint operator-() const {
    AffinePoint r = *this;
    if (!r.infinity) r.y = -r.y;
    return r;
  }

  friend bool operator==(const AffinePoint& p, const AffinePoint& q) {
    if (p.infinity || q.infinity) return p.infinity == q.infinity;
    return p.x == q.x && p.y == q.y;
  }
};

template <typename F, typename Tag>
class Point {
 public:
  using Field = F;
  using TagType = Tag;
  using Affine = AffinePoint<F, Tag>;

  Point() : x_(F::one()), y_(F::one()), z_(F::zero()) {}  // infinity
  Point(const F& x, const F& y) : x_(x), y_(y), z_(F::one()) {}

  static Point infinity() { return Point(); }
  static const Point& generator() { return Tag::generator(); }
  static const F& curve_b() { return Tag::curve_b(); }

  static Point from_affine(const Affine& a) {
    if (a.infinity) return infinity();
    return Point(a.x, a.y);
  }

  bool is_infinity() const { return z_.is_zero(); }

  /// Affine coordinates; must not be called on the point at infinity.
  std::pair<F, F> to_affine() const {
    if (is_infinity()) throw std::logic_error("Point::to_affine: infinity");
    F zinv = z_.inverse();
    F zinv2 = zinv.square();
    return {x_ * zinv2, y_ * zinv2 * zinv};
  }

  Affine to_affine_point() const {
    if (is_infinity()) return Affine{};
    auto [x, y] = to_affine();
    return Affine{x, y};
  }

  /// Normalize a whole point set to affine with one field inversion
  /// (Montgomery's trick on the Z coordinates). Infinity maps to infinity.
  static std::vector<Affine> batch_to_affine(std::span<const Point> pts) {
    std::vector<F> zs(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) zs[i] = pts[i].z_;
    ff::batch_inverse(std::span<F>(zs));
    std::vector<Affine> out(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (zs[i].is_zero()) continue;  // infinity: Z had no inverse
      F zinv2 = zs[i].square();
      out[i] = Affine{pts[i].x_ * zinv2, pts[i].y_ * zinv2 * zs[i]};
    }
    return out;
  }

  bool is_on_curve() const {
    if (is_infinity()) return true;
    // Y^2 = X^3 + b Z^6
    F z2 = z_.square();
    F z6 = z2.square() * z2;
    return y_.square() == x_.square() * x_ + curve_b() * z6;
  }

  Point operator-() const {
    Point r = *this;
    r.y_ = -r.y_;
    return r;
  }

  Point dbl() const {
    if (is_infinity()) return *this;
    // dbl-2009-l (a = 0)
    F a = x_.square();
    F b = y_.square();
    F c = b.square();
    F d = ((x_ + b).square() - a - c).dbl();
    F e = a + a + a;
    F f = e.square();
    Point r;
    r.x_ = f - d.dbl();
    r.y_ = e * (d - r.x_) - c.dbl().dbl().dbl();
    r.z_ = (y_ * z_).dbl();
    return r;
  }

  friend Point operator+(const Point& p, const Point& q) {
    if (p.is_infinity()) return q;
    if (q.is_infinity()) return p;
    // add-2007-bl
    F z1z1 = p.z_.square();
    F z2z2 = q.z_.square();
    F u1 = p.x_ * z2z2;
    F u2 = q.x_ * z1z1;
    F s1 = p.y_ * q.z_ * z2z2;
    F s2 = q.y_ * p.z_ * z1z1;
    if (u1 == u2) {
      if (s1 == s2) return p.dbl();
      return infinity();
    }
    F h = u2 - u1;
    F i = h.dbl().square();
    F j = h * i;
    F rr = (s2 - s1).dbl();
    F v = u1 * i;
    Point r;
    r.x_ = rr.square() - j - v.dbl();
    r.y_ = rr * (v - r.x_) - (s1 * j).dbl();
    r.z_ = ((p.z_ + q.z_).square() - z1z1 - z2z2) * h;
    return r;
  }
  friend Point operator-(const Point& p, const Point& q) { return p + (-q); }
  Point& operator+=(const Point& o) { return *this = *this + o; }

  /// Mixed addition with an affine point (madd-2007-bl): 7M+4S instead of
  /// the general add's 11M+5S.
  Point mixed_add(const Affine& q) const {
    if (q.infinity) return *this;
    if (is_infinity()) return from_affine(q);
    F z1z1 = z_.square();
    F u2 = q.x * z1z1;
    F s2 = q.y * z_ * z1z1;
    if (u2 == x_) {
      if (s2 == y_) return dbl();
      return infinity();
    }
    F h = u2 - x_;
    F hh = h.square();
    F i = hh.dbl().dbl();
    F j = h * i;
    F rr = (s2 - y_).dbl();
    F v = x_ * i;
    Point r;
    r.x_ = rr.square() - j - v.dbl();
    r.y_ = rr * (v - r.x_) - (y_ * j).dbl();
    r.z_ = (z_ + h).square() - z1z1 - hh;
    return r;
  }

  /// Scalar multiplication by a canonical integer. For endomorphism-capable
  /// groups (G1) this is the GLV 2-way interleaved signed-wNAF over
  /// {P, phi(P)} — half the doubling chain; otherwise the width-5 wNAF
  /// ladder. Both agree bit-for-bit with mul_naive on the group.
  Point mul(const U256& k) const {
    if constexpr (HasEndomorphism<Tag>) {
      return mul_glv(k);
    } else {
      return mul_wnaf(k);
    }
  }
  Point mul(const Fr& k) const { return mul(k.to_u256()); }

  /// Width-5 wNAF over a batch-normalized table of odd multiples:
  /// ~bit_length doublings plus one mixed addition every ~6 bits. The
  /// generic path for groups without an endomorphism tag, retained on G1 as
  /// the GLV differential/bench reference.
  Point mul_wnaf(const U256& k) const {
    if (is_infinity() || k.is_zero()) return infinity();

    constexpr unsigned w = kWnafWidth;
    std::vector<std::int8_t> naf = wnaf_digits(k, w);

    // Odd multiples 1P, 3P, ..., (2^{w-1}-1)P, normalized in one inversion.
    constexpr std::size_t table_size = std::size_t{1} << (w - 2);
    std::vector<Point> tbl(table_size);
    tbl[0] = *this;
    Point twice = dbl();
    for (std::size_t i = 1; i < table_size; ++i) tbl[i] = tbl[i - 1] + twice;
    std::vector<Affine> atbl = batch_to_affine(tbl);

    Point acc = infinity();
    for (std::size_t i = naf.size(); i-- > 0;) {
      acc = acc.dbl();
      int d = naf[i];
      if (d > 0) {
        acc = acc.mixed_add(atbl[d >> 1]);
      } else if (d < 0) {
        acc = acc.mixed_add(-atbl[(-d) >> 1]);
      }
    }
    return acc;
  }

  /// phi(X, Y, Z) = (beta * X, Y, Z): the GLV endomorphism, acting as
  /// multiplication by lambda. Only instantiated for endomorphism-tagged
  /// groups.
  Point endo() const {
    Point r = *this;
    r.x_ = r.x_ * Tag::endo_beta();
    return r;
  }

  /// GLV scalar multiplication: k reduced mod r (sound on cofactor-1
  /// groups, where every point has order r), split into half-scalars
  /// k = k1 + k2 * lambda, then one interleaved width-4 signed-wNAF pass
  /// over the joint odd-multiples table of {±P, ±phi(P)} — ~127 doublings
  /// instead of ~254, one shared normalization inversion.
  Point mul_glv(const U256& k) const {
    if (is_infinity() || k.is_zero()) return infinity();
    U256 v = k;
    while (!bigint::lt(v, Fr::modulus())) {
      U256 t;
      bigint::sub_with_borrow(v, Fr::modulus(), t);
      v = t;
    }
    if (v.is_zero()) return infinity();
    const GlvDecomposed dec = glv_decompose(v);

    constexpr unsigned w = kGlvWnafWidth;
    const std::vector<std::int8_t> n1 = wnaf_digits(dec.k1, w);
    const std::vector<std::int8_t> n2 = wnaf_digits(dec.k2, w);

    // Joint table: odd multiples of base1 = ±P in [0, ts), of base2 =
    // ±phi(P) in [ts, 2*ts) — the decomposition signs fold into the bases.
    constexpr std::size_t ts = std::size_t{1} << (w - 2);
    std::vector<Point> tbl(2 * ts);
    tbl[0] = dec.neg1 ? -*this : *this;
    Point twice = tbl[0].dbl();
    for (std::size_t i = 1; i < ts; ++i) tbl[i] = tbl[i - 1] + twice;
    tbl[ts] = dec.neg2 ? -endo() : endo();
    twice = tbl[ts].dbl();
    for (std::size_t i = 1; i < ts; ++i) tbl[ts + i] = tbl[ts + i - 1] + twice;
    std::vector<Affine> atbl = batch_to_affine(tbl);

    Point acc = infinity();
    for (std::size_t i = std::max(n1.size(), n2.size()); i-- > 0;) {
      acc = acc.dbl();
      if (i < n1.size()) {
        int d = n1[i];
        if (d > 0) {
          acc = acc.mixed_add(atbl[d >> 1]);
        } else if (d < 0) {
          acc = acc.mixed_add(-atbl[(-d) >> 1]);
        }
      }
      if (i < n2.size()) {
        int d = n2[i];
        if (d > 0) {
          acc = acc.mixed_add(atbl[ts + (d >> 1)]);
        } else if (d < 0) {
          acc = acc.mixed_add(-atbl[ts + ((-d) >> 1)]);
        }
      }
    }
    return acc;
  }

  /// Reference double-and-add ladder (MSB-first). Retained as the
  /// differential-test oracle for the wNAF path.
  Point mul_naive(const U256& k) const {
    Point acc = infinity();
    unsigned n = k.bit_length();
    for (unsigned i = n; i-- > 0;) {
      acc = acc.dbl();
      if (k.bit(i)) acc += *this;
    }
    return acc;
  }
  Point mul_naive(const Fr& k) const { return mul_naive(k.to_u256()); }

  friend Point operator*(const Fr& k, const Point& p) { return p.mul(k); }

  /// Equality in the group (compares the underlying affine points).
  friend bool operator==(const Point& p, const Point& q) {
    if (p.is_infinity() || q.is_infinity()) {
      return p.is_infinity() == q.is_infinity();
    }
    // X1 Z2^2 == X2 Z1^2  and  Y1 Z2^3 == Y2 Z1^3
    F z1z1 = p.z_.square();
    F z2z2 = q.z_.square();
    return p.x_ * z2z2 == q.x_ * z1z1 &&
           p.y_ * z2z2 * q.z_ == q.y_ * z1z1 * p.z_;
  }

  const F& jac_x() const { return x_; }
  const F& jac_y() const { return y_; }
  const F& jac_z() const { return z_; }

 private:
  using u64 = bigint::u64;
  static constexpr unsigned kWnafWidth = 5;
  // Narrower window for the GLV halves: two tables share the scan, so the
  // per-table build cost weighs double while each half only runs ~127 bits.
  static constexpr unsigned kGlvWnafWidth = 4;

  /// Signed odd digits: k = sum naf[i] * 2^i, naf[i] in {0, ±1, ±3, ...,
  /// ±(2^{w-1}-1)}, nonzero digits at least w apart. Rounding a digit up
  /// can briefly push the working value past 2^256; `carry` holds that bit.
  static std::vector<std::int8_t> wnaf_digits(const U256& k, unsigned w) {
    const int full = 1 << w;
    const u64 half = u64{1} << (w - 1);
    std::vector<std::int8_t> naf;
    naf.reserve(k.bit_length() + 2);
    U256 v = k;
    bool carry = false;
    while (!v.is_zero() || carry) {
      std::int8_t d = 0;
      if (v.is_odd()) {
        u64 low = v.limb[0] & (full - 1);
        if (low > half) {
          d = static_cast<std::int8_t>(static_cast<int>(low) - full);
          if (bigint::add_with_carry(v, U256{static_cast<u64>(-d)}, v)) {
            carry = true;
          }
        } else {
          d = static_cast<std::int8_t>(low);
          bigint::sub_with_borrow(v, U256{low}, v);
        }
      }
      naf.push_back(d);
      v = bigint::shr1(v);
      if (carry) {
        v.limb[3] |= u64{1} << 63;
        carry = false;
      }
    }
    return naf;
  }

  F x_, y_, z_;
};

namespace detail {

/// Sum of two affine points given the batch-inverted chord denominator
/// d_inv = 1/(q.x - p.x), zero when the denominator was zero. Implements the
/// shared exceptional-case policy of every batched round: infinity is
/// encoded as y == 0 (valid for all odd-order BN254 groups, see
/// batch_affine_add_round below), a same-x doubling pays its own un-batched
/// inversion, and p == -q collapses to infinity.
template <typename F, typename Tag>
AffinePoint<F, Tag> affine_pair_sum(const AffinePoint<F, Tag>& p,
                                    const AffinePoint<F, Tag>& q,
                                    const F& d_inv) {
  if (!d_inv.is_zero()) [[likely]] {
    if (p.y.is_zero()) return q;  // p is infinity
    if (q.y.is_zero()) return p;  // q is infinity
    // lambda = (y2-y1)/(x2-x1); x3 = lambda^2 - x1 - x2
    F lambda = (q.y - p.y) * d_inv;
    F x3 = lambda.square() - p.x - q.x;
    return {x3, lambda * (p.x - x3) - p.y};
  }
  if (p.y.is_zero()) return q;  // p infinity (and the result, if q is too)
  if (q.y.is_zero()) return p;  // q infinity, p a finite point with matching x
  if (p.y == q.y) {
    // Doubling; pays an un-batched inversion, fine for a rare case.
    F x2 = p.x.square();
    F lambda = (x2 + x2 + x2) * p.y.dbl().inverse();
    F x3 = lambda.square() - p.x.dbl();
    return {x3, lambda * (p.x - x3) - p.y};
  }
  return {};  // p == -q
}

/// Batched inversion of the chord denominators: scratch[i] <- 1/dens[i] with
/// one field inversion total (prefix products forward, one inversion, walk
/// back). Zero denominators (same-x pairs, double-infinity pairs) are
/// skipped and come out zero — the pair-sum classification key.
template <typename F>
void batch_invert_chords(const std::vector<F>& dens, std::vector<F>& scratch) {
  const std::size_t n = dens.size();
  F run = F::one();
  for (std::size_t t = 0; t < n; ++t) {
    scratch[t] = run;
    if (!dens[t].is_zero()) run = run * dens[t];
  }
  F inv = run.inverse();
  for (std::size_t t = n; t-- > 0;) {
    if (dens[t].is_zero()) {
      scratch[t] = F::zero();
      continue;
    }
    F d_inv = inv * scratch[t];
    inv = inv * dens[t];
    scratch[t] = d_inv;
  }
}

/// One round of batched affine additions over a set of "runs" (contiguous
/// slices of `pts`): within each run listed in `active`, adjacent points are
/// paired and summed in place, halving the run (results compact to the front;
/// an odd leftover is carried behind them). All the additions' denominators
/// share a single batch inversion — ~6 multiplications per addition instead
/// of a 7M+4S mixed add. `active` is rewritten to the runs still holding more
/// than one point, so iterated rounds touch only live runs. Returns the
/// number of pairs processed this round.
/// Exceptional pairs (an infinity operand, a doubling, a cancellation) are
/// detected through y == 0 ⟺ infinity: every finite point of BN254's G1, G2
/// and even the full twist has y != 0, because those groups all have odd
/// order (no 2-torsion), and AffinePoint's infinity encoding zeroes y. That
/// keeps the hot path free of classification state: one unconditional
/// subtraction per pair feeds the batch inversion, and the rare specials are
/// sorted out in the write pass (a same-x doubling pays a full inversion
/// there — negligible for any input that isn't almost entirely duplicates).
template <typename F, typename Tag>
std::size_t batch_affine_add_round(std::vector<AffinePoint<F, Tag>>& pts,
                                   const std::vector<std::uint32_t>& offsets,
                                   std::vector<std::uint32_t>& len,
                                   std::vector<std::uint32_t>& active,
                                   std::vector<F>& dens, std::vector<F>& scratch) {
  // Pass 1: count pairs, then one unconditional denominator per pair.
  std::size_t pair_count = 0;
  for (std::uint32_t b : active) pair_count += len[b] / 2;
  if (pair_count == 0) {
    active.clear();
    return 0;
  }
  dens.resize(pair_count);
  scratch.resize(pair_count);
  std::size_t t = 0;
  for (std::uint32_t b : active) {
    const std::uint32_t n = len[b];
    const std::uint32_t off = offsets[b];
    for (std::uint32_t k = 0; k + 1 < n; k += 2) {
      dens[t++] = pts[off + k + 1].x - pts[off + k].x;
    }
  }

  batch_invert_chords(dens, scratch);

  // Pass 2: same walk; compute pair results, carry odd leftovers, update run
  // lengths, and rebuild `active` in place with the runs still longer than
  // one.
  std::size_t iv = 0, live = 0;
  for (std::uint32_t b : active) {
    const std::uint32_t n = len[b];
    const std::uint32_t off = offsets[b];
    for (std::uint32_t k = 0; k + 1 < n; k += 2) {
      pts[off + k / 2] =
          affine_pair_sum<F, Tag>(pts[off + k], pts[off + k + 1], scratch[iv++]);
    }
    // Odd element carries over behind the pair results (safe here: all of
    // this run's pair reads and writes are done).
    if (n & 1) pts[off + n / 2] = pts[off + n - 1];
    const std::uint32_t nn = n / 2 + (n & 1);
    len[b] = nn;
    if (nn > 1) active[live++] = b;
  }
  active.resize(live);
  return pair_count;
}

/// Signed window digit extraction shared by msm and msm_precomputed:
/// digits[t * n + i] is scalar i's signed digit in [-half, half] at window
/// position t (position-major so every later pass is a linear scan; digit 0
/// never touches a bucket). Returns the number of positions actually used —
/// the highest position holding any nonzero digit plus one, 0 when every
/// scalar is zero.
inline unsigned extract_signed_digits(std::span<const Fr> scalars, unsigned c,
                                      unsigned positions,
                                      std::vector<std::int32_t>& digits) {
  const std::size_t n = scalars.size();
  const bigint::u64 half = bigint::u64{1} << (c - 1);
  digits.resize(std::size_t{positions} * n);
  unsigned used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    U256 k = scalars[i].to_u256();
    bigint::u64 carry = 0;
    for (unsigned t = 0; t < positions; ++t) {
      bigint::u64 raw = k.extract_window(t * c, c) + carry;
      std::int32_t d;
      if (raw > half) {
        d = static_cast<std::int32_t>(raw) - (1 << c);
        carry = 1;
      } else {
        d = static_cast<std::int32_t>(raw);
        carry = 0;
      }
      digits[std::size_t{t} * n + i] = d;
      if (d != 0 && t + 1 > used) used = t + 1;
    }
  }
  return used;
}

/// Endomorphism-split digit extraction: scalar i GLV-decomposes into
/// k = k1 + k2 * lambda, and the digit matrix covers 2n virtual columns —
/// column i holds k1's signed digits (sign-folded), column n + i holds k2's.
/// Since |k1|, |k2| < 2^kGlvHalfBits, only ceil(kGlvHalfBits / c) + 1 window
/// positions exist: the same digit entries as an unsplit extraction of
/// full-width scalars, at half the window rows — half the bucket spaces and
/// half the Horner doublings downstream. Returns used positions, 0 when all
/// scalars are zero.
inline unsigned extract_signed_digits_glv(std::span<const Fr> scalars, unsigned c,
                                          unsigned positions,
                                          std::vector<std::int32_t>& digits) {
  const std::size_t n = scalars.size();
  const bigint::u64 half = bigint::u64{1} << (c - 1);
  digits.resize(std::size_t{positions} * 2 * n);
  unsigned used = 0;
  auto emit = [&](const U256& mag, bool neg, std::size_t col) {
    bigint::u64 carry = 0;
    for (unsigned t = 0; t < positions; ++t) {
      bigint::u64 raw = mag.extract_window(t * c, c) + carry;
      std::int32_t d;
      if (raw > half) {
        d = static_cast<std::int32_t>(raw) - (1 << c);
        carry = 1;
      } else {
        d = static_cast<std::int32_t>(raw);
        carry = 0;
      }
      if (neg) d = -d;
      digits[std::size_t{t} * 2 * n + col] = d;
      if (d != 0 && t + 1 > used) used = t + 1;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    const GlvDecomposed dec = glv_decompose(scalars[i].to_u256());
    emit(dec.k1, dec.neg1, i);
    emit(dec.k2, dec.neg2, n + i);
  }
  return used;
}

/// Window positions needed by an endo-split digit matrix (+1: signed carry).
inline unsigned glv_digit_positions(unsigned c) {
  return (kGlvHalfBits + c - 1) / c + 1;
}

/// The whole bucket pipeline shared by msm and msm_precomputed, from signed
/// digits to the final point: counting-sort of the nonzero digits into bucket
/// runs, shared-round batched-affine tree reduction, the row/column
/// (w_d = u*K + v) gather and reduction, and the final combine. Operates on
/// the digit positions [t_begin, t_end) of the position-major digit array —
/// the sequential paths pass the full range, the sharded driver below hands
/// each pool task a contiguous sub-range.
///
/// Parameterized by the two things that differ between the callers:
///   - runs per position: with `per_position_buckets` every window position
///     owns its own bucket space and the combine runs Horner over positions
///     with c doublings per step (cold msm); without, all positions share one
///     bucket space — the precomputed table's shifted bases bake the 2^{ct}
///     weights in, so no doublings remain (msm_precomputed);
///   - the base lookup `base(t, i)`: position-independent bases for the cold
///     path, tbl.pts[t * n + i] for the shifted-base table.
template <typename P, typename BaseFn>
P msm_from_digits(const std::int32_t* digits, std::size_t n, unsigned t_begin,
                  unsigned t_end, unsigned c, bool per_position_buckets,
                  BaseFn&& base) {
  using F = typename P::Field;
  using A = typename P::Affine;
  using u32 = std::uint32_t;
  const u32 half = u32{1} << (c - 1);
  // Row/column split of the bucket weight: w_d = b + 1 = u*K + v.
  const unsigned kbits = c / 2;
  const u32 K = u32{1} << kbits;
  const u32 R = half / K + 1;
  const unsigned used = t_end - t_begin;
  const unsigned spaces = per_position_buckets ? used : 1;

  // Counting-sort of all positions' nonzero digits into bucket runs;
  // bucket id = space * half + |digit| - 1.
  const std::size_t nb = std::size_t{spaces} * half;
  std::vector<u32> counts(nb, 0);
  for (unsigned t = t_begin; t < t_end; ++t) {
    const std::int32_t* dt = digits + std::size_t{t} * n;
    const std::size_t wb =
        per_position_buckets ? std::size_t{t - t_begin} * half : 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int32_t d = dt[i];
      if (d != 0) ++counts[wb + (d > 0 ? d : -d) - 1];
    }
  }
  // Index-based scatter: each entry lands as a packed (position, sign,
  // index) id — 8 bytes of random-access write instead of a 72-byte affine
  // copy (that copy was ~18% of the cold path at n >= 16k). Points
  // materialize exactly once, in the dedicated first halving round below,
  // which writes only ceil(entries/2) results into the compact layout the
  // in-place rounds then continue on. Packing bounds (index < 2^32,
  // position < 2^31) dwarf any MSM that fits in memory.
  std::vector<u32> scat_off(nb), scat_len(nb, 0);
  u32 entries = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    scat_off[b] = entries;
    entries += counts[b];
  }
  std::vector<std::uint64_t> ids(entries);
  for (unsigned t = t_begin; t < t_end; ++t) {
    const std::int32_t* dt = digits + std::size_t{t} * n;
    const std::size_t wb =
        per_position_buckets ? std::size_t{t - t_begin} * half : 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int32_t d = dt[i];
      if (d == 0) continue;
      std::size_t b = wb + (d > 0 ? d : -d) - 1;
      ids[scat_off[b] + scat_len[b]++] =
          (std::uint64_t{t} << 33) | (std::uint64_t{d < 0} << 32) | i;
    }
  }
  auto id_x = [&base](std::uint64_t id) -> const F& {
    // Negation flips y only, so denominators read x straight off the base.
    return base(static_cast<unsigned>(id >> 33),
                static_cast<std::size_t>(id & 0xFFFFFFFFu))
        .x;
  };
  auto id_point = [&base](std::uint64_t id) -> A {
    A p = base(static_cast<unsigned>(id >> 33),
               static_cast<std::size_t>(id & 0xFFFFFFFFu));
    if (id & (std::uint64_t{1} << 32)) p.y = -p.y;
    return p;
  };

  // First halving round straight off the id array (same shared-inversion
  // policy as batch_affine_add_round, with the reads indirected), then the
  // generic in-place rounds finish each bucket.
  std::vector<u32> offsets(nb), len(nb, 0), active;
  u32 halved = 0;
  std::size_t pair_count = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    offsets[b] = halved;
    len[b] = counts[b] / 2 + (counts[b] & 1);
    halved += len[b];
    pair_count += counts[b] / 2;
    if (len[b] > 1) active.push_back(static_cast<u32>(b));
  }
  std::vector<F> dens(pair_count), inv_scratch(pair_count);
  std::size_t tp = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const u32 cnt = counts[b];
    const u32 soff = scat_off[b];
    for (u32 k = 0; k + 1 < cnt; k += 2) {
      dens[tp++] = id_x(ids[soff + k + 1]) - id_x(ids[soff + k]);
    }
  }
  batch_invert_chords(dens, inv_scratch);
  std::vector<A> sorted(halved);
  std::size_t iv = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const u32 cnt = counts[b];
    if (cnt == 0) continue;
    const u32 soff = scat_off[b];
    const u32 doff = offsets[b];
    for (u32 k = 0; k + 1 < cnt; k += 2) {
      sorted[doff + k / 2] = affine_pair_sum<F, typename P::TagType>(
          id_point(ids[soff + k]), id_point(ids[soff + k + 1]),
          inv_scratch[iv++]);
    }
    if (cnt & 1) sorted[doff + cnt / 2] = id_point(ids[soff + cnt - 1]);
  }
  ids.clear();
  ids.shrink_to_fit();
  while (batch_affine_add_round<F, typename P::TagType>(sorted, offsets, len,
                                                        active, dens,
                                                        inv_scratch) > 0) {
  }

  // Gather bucket sums into row runs (u = w_d / K, skipping the weight-0 row
  // u = 0) and column runs (v = w_d % K, skipping v = 0), then tree-reduce
  // those with the same shared batched rounds. Run ids: rows at w * R + u,
  // columns at spaces * R + w * K + v. Both gathers visit run ids in
  // ascending order, so the runs come out contiguous.
  const std::size_t n_row_runs = std::size_t{spaces} * R;
  const std::size_t n_runs = n_row_runs + std::size_t{spaces} * K;
  std::vector<u32> g_off(n_runs, 0), g_len(n_runs, 0);
  std::vector<A> gathered;
  gathered.reserve(std::min<std::size_t>(entries, nb) + 16);
  active.clear();
  for (unsigned w = 0; w < spaces; ++w) {
    const std::size_t wb = std::size_t{w} * half;
    for (u32 b = 0; b < half; ++b) {
      if (len[wb + b] == 0) continue;
      const u32 u = (b + 1) >> kbits;
      if (u == 0) continue;
      const std::size_t run = std::size_t{w} * R + u;
      if (g_len[run] == 0) g_off[run] = static_cast<u32>(gathered.size());
      ++g_len[run];
      gathered.push_back(sorted[offsets[wb + b]]);
    }
  }
  for (unsigned w = 0; w < spaces; ++w) {
    const std::size_t wb = std::size_t{w} * half;
    for (u32 v = 1; v < K; ++v) {
      const std::size_t run = n_row_runs + std::size_t{w} * K + v;
      for (u32 u = 0; u * K + v - 1 < half; ++u) {
        const std::size_t b = wb + u * K + v - 1;
        if (len[b] == 0) continue;
        if (g_len[run] == 0) g_off[run] = static_cast<u32>(gathered.size());
        ++g_len[run];
        gathered.push_back(sorted[offsets[b]]);
      }
    }
  }
  for (std::size_t r = 0; r < n_runs; ++r) {
    if (g_len[r] > 1) active.push_back(static_cast<u32>(r));
  }
  while (batch_affine_add_round<F, typename P::TagType>(gathered, g_off, g_len,
                                                        active, dens,
                                                        inv_scratch) > 0) {
  }

  // Per-space combine: acc_w = K * sum_u u*Row_u + sum_v v*Col_v via two
  // short running sums (the only sequential Jacobian work left), then Horner
  // over the positions with c doublings per step (a no-op for the shared
  // bucket space, whose shifted bases already carry the weights).
  P total = P::infinity();
  for (unsigned w = spaces; w-- > 0;) {
    if (per_position_buckets) {
      for (unsigned i = 0; i < c; ++i) total = total.dbl();
    }
    P run = P::infinity();
    P s1 = P::infinity();
    for (u32 u = R; u-- > 1;) {
      const std::size_t r = std::size_t{w} * R + u;
      if (g_len[r]) run = run.mixed_add(gathered[g_off[r]]);
      s1 += run;
    }
    run = P::infinity();
    P s2 = P::infinity();
    for (u32 v = K; v-- > 1;) {
      const std::size_t r = n_row_runs + std::size_t{w} * K + v;
      if (g_len[r]) run = run.mixed_add(gathered[g_off[r]]);
      s2 += run;
    }
    for (unsigned i = 0; i < kbits; ++i) s1 = s1.dbl();
    total += s1 + s2;
  }
  return total;
}

/// Sharded driver over msm_from_digits: splits the used digit positions into
/// contiguous groups (one per pool thread, at most one per position), reduces
/// every group's bucket pipeline concurrently, and combines the group results
/// sequentially in descending group order. For the per-position (cold) path
/// the combine re-applies each group's 2^{c*t_begin} weight with c doublings
/// per covered position — the same total doubling count the unsharded Horner
/// pays. For the shared-space (precomputed) path the shifted bases already
/// carry the weights, so the combine is a plain ordered sum. With one thread
/// (or from inside a pool worker) this is exactly the unsharded pipeline.
template <typename P, typename BaseFn>
P msm_sharded(const std::vector<std::int32_t>& digits, std::size_t n,
              unsigned used, unsigned c, bool per_position_buckets,
              BaseFn&& base) {
  const unsigned threads = parallel::thread_count();
  // Below ~2^12 digit entries the whole pipeline runs in well under a
  // millisecond and fork/join overhead would dominate.
  if (threads <= 1 || parallel::in_worker() || used < 2 ||
      std::size_t{used} * n < 4096) {
    return msm_from_digits<P>(digits.data(), n, 0, used, c,
                              per_position_buckets, base);
  }
  const unsigned groups = threads < used ? threads : used;
  std::vector<unsigned> bounds(groups + 1);
  for (unsigned g = 0; g <= groups; ++g) {
    bounds[g] = static_cast<unsigned>((std::uint64_t{used} * g) / groups);
  }
  std::vector<P> partial(groups);
  parallel::parallel_for(groups, [&](std::size_t g) {
    partial[g] = msm_from_digits<P>(digits.data(), n, bounds[g], bounds[g + 1],
                                    c, per_position_buckets, base);
  });
  P total = P::infinity();
  for (unsigned g = groups; g-- > 0;) {
    if (per_position_buckets) {
      const unsigned span = bounds[g + 1] - bounds[g];
      for (unsigned i = 0; i < c * span; ++i) total = total.dbl();
    }
    total += partial[g];
  }
  return total;
}

}  // namespace detail

/// Multi-scalar multiplication via Pippenger bucketing: returns
/// sum scalars[i] * points[i]. The prover's two dominant ECC operations
/// (aggregating sigma = prod sigma_i^{c_i} and computing psi from the SRS)
/// are exactly this primitive.
///
/// Fast-path structure:
///   - bases are pre-normalized to affine (one inversion for the whole set);
///   - window digits are signed (halving the bucket count) and extracted
///     limb-wise from the canonical scalars, scanning the 254-bit Fr width
///     instead of 256;
///   - every window's buckets live in one global run array, and bucket
///     contents are tree-reduced with batched affine additions: one field
///     inversion per round is shared by every addition in every window;
///   - the classic sequential running-sum reduction is replaced by a
///     row/column split of the bucket weight (w = u*K + v), which turns all
///     but ~2(sqrt-bucket-count) of the reduction into batched affine
///     additions too. That makes wide windows cheap, cutting total work.
template <typename P>
P msm(std::span<const P> points, std::span<const Fr> scalars) {
  using A = typename P::Affine;
  if (points.size() != scalars.size()) {
    throw std::invalid_argument("msm: size mismatch");
  }
  if (points.empty()) return P::infinity();
  if (points.size() == 1) return points[0].mul(scalars[0]);

  const std::size_t n = points.size();
  // Window width c = log2(n)/2 + 4, measured optimum on this implementation
  // across n = 64..16384: total additions ~ (254/c + 1)*n + nonempty-buckets
  // is minimized where widening windows stops paying for the extra
  // reduction-tree work.
  const unsigned lg = std::bit_width(n);
  const unsigned c0 = (lg >> 1) + 4;
  const unsigned c = c0 < 4 ? 4 : (c0 > 16 ? 16 : c0);
  if constexpr (HasEndomorphism<typename P::TagType>) {
    // Endomorphism split: same scatter-entry count as the unsplit matrix at
    // full scalar width, but half the window rows — half the bucket spaces,
    // half the Horner doublings, and a much smaller per-space reduction
    // bill. Short scalars (e.g. the 128-bit settlement batch weights) skip
    // the split: below ~1.5x the half-scalar width the row savings cannot
    // recoup the doubled entries.
    unsigned max_bits = 0;
    for (const Fr& s : scalars) {
      max_bits = std::max(max_bits, s.to_u256().bit_length());
    }
    if (2 * max_bits > 3 * kGlvHalfBits) {
      std::vector<std::int32_t> digits;
      const unsigned used = detail::extract_signed_digits_glv(
          scalars, c, detail::glv_digit_positions(c), digits);
      if (used == 0) return P::infinity();
      std::vector<A> base = P::batch_to_affine(points);
      base.resize(2 * n);
      const auto& beta = P::TagType::endo_beta();
      for (std::size_t i = 0; i < n; ++i) {
        base[n + i] = base[i];
        base[n + i].x = base[i].x * beta;  // phi: (beta*x, y); infinity copies
      }
      return detail::msm_sharded<P>(
          digits, 2 * n, used, c, /*per_position_buckets=*/true,
          [&base](unsigned, std::size_t i) -> const A& { return base[i]; });
    }
  }

  // Scalars are canonical Fr values: bounded by the 254-bit modulus, not 256.
  const unsigned scalar_bits = Fr::modulus().bit_length();
  const unsigned windows = (scalar_bits + c - 1) / c + 1;  // +1: signed carry

  std::vector<std::int32_t> digits;
  const unsigned used = detail::extract_signed_digits(scalars, c, windows, digits);
  if (used == 0) return P::infinity();

  const std::vector<A> base = P::batch_to_affine(points);
  return detail::msm_sharded<P>(
      digits, n, used, c, /*per_position_buckets=*/true,
      [&base](unsigned, std::size_t i) -> const A& { return base[i]; });
}

/// Precomputed shifted bases for repeated MSMs over a fixed base set (a KZG
/// SRS, a commitment key): pts[t * n + i] = 2^{c*t} * B_i in affine. With
/// these, every digit position of every scalar lands in one shared bucket
/// space, so an MSM needs no doublings, a single reduction, and ~25% fewer
/// additions than the cold path — at ~positions*n*72 bytes of memory and a
/// one-time build of ~254 doublings per base.
template <typename P>
struct MsmBasesTable {
  unsigned c = 0;          // digit width the table was built for
  unsigned positions = 0;  // digit positions covered: ceil(254/c) + 1, or
                           // ceil(kGlvHalfBits/c) + 1 in glv layout
  std::size_t n = 0;       // number of bases
  bool glv = false;        // endomorphism-split layout: row t holds
                           // [n shifted bases | their n phi images], and
                           // lookups run over 2m virtual half-scalar columns
  std::vector<typename P::Affine> pts;
};

/// Builds the shifted-bases table. Window width is chosen for the expected
/// MSM size n unless `c` is forced nonzero.
template <typename P>
MsmBasesTable<P> msm_precompute(std::span<const P> points, unsigned c = 0) {
  MsmBasesTable<P> tbl;
  tbl.n = points.size();
  if (c == 0) {
    // One window pass total, so wider windows than the cold heuristic: the
    // added reduction cost is a single bucket space. Measured optimum ~
    // log2(n)/2 + 7.
    const unsigned lg = std::bit_width(tbl.n | 1);
    c = (lg >> 1) + 7;
    if (c < 8) c = 8;
    if (c > 18) c = 18;
  }
  tbl.c = c;
  if constexpr (HasEndomorphism<typename P::TagType>) {
    // Endomorphism-split layout: half the shifted rows to build (the
    // half-scalar digit matrix never reaches higher positions), and the
    // second half of every row is a phi image — one coordinate multiply per
    // entry instead of a c-deep doubling chain.
    tbl.glv = true;
    tbl.positions = detail::glv_digit_positions(c);
  } else {
    const unsigned scalar_bits = Fr::modulus().bit_length();
    tbl.positions = (scalar_bits + c - 1) / c + 1;  // +1: signed-digit carry
  }
  std::vector<P> jac(std::size_t{tbl.positions} * tbl.n);
  for (std::size_t i = 0; i < tbl.n; ++i) jac[i] = points[i];
  // Each base's doubling chain is independent, so the build shards by base
  // column; per-column results are identical regardless of the pool width.
  const unsigned positions = tbl.positions;
  const std::size_t stride = tbl.n;
  parallel::parallel_for_ranges(tbl.n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (unsigned t = 1; t < positions; ++t) {
        P p = jac[std::size_t{t - 1} * stride + i];
        for (unsigned d = 0; d < c; ++d) p = p.dbl();
        jac[std::size_t{t} * stride + i] = p;
      }
    }
  });
  std::vector<typename P::Affine> flat = P::batch_to_affine(jac);
  if constexpr (HasEndomorphism<typename P::TagType>) {
    tbl.pts.resize(2 * flat.size());
    const auto& beta = P::TagType::endo_beta();
    for (unsigned t = 0; t < positions; ++t) {
      for (std::size_t i = 0; i < stride; ++i) {
        const auto& src = flat[std::size_t{t} * stride + i];
        tbl.pts[std::size_t{t} * 2 * stride + i] = src;
        auto& phi = tbl.pts[std::size_t{t} * 2 * stride + stride + i];
        phi = src;
        phi.x = src.x * beta;  // infinity entries copy through unchanged
      }
    }
  } else {
    tbl.pts = std::move(flat);
  }
  return tbl;
}

/// MSM against a precomputed table: sum scalars[i] * B_i for the first
/// scalars.size() <= tbl.n bases. Bit-identical to msm() / the naive sum.
template <typename P>
P msm_precomputed(const MsmBasesTable<P>& tbl, std::span<const Fr> scalars) {
  using A = typename P::Affine;
  const std::size_t m = scalars.size();
  if (m > tbl.n) throw std::invalid_argument("msm_precomputed: too many scalars");
  if (m == 0) return P::infinity();

  // One shared bucket space for all positions: digit d at position t maps
  // base tbl.pts[t*n + i] into bucket |d| - 1 — the shifted bases carry the
  // 2^{ct} weights, so no Horner doublings remain in the combine. In glv
  // layout the scalars split into 2m half-scalar columns over half the rows,
  // with columns >= m hitting the phi images.
  std::vector<std::int32_t> digits;
  if (tbl.glv) {
    const unsigned used =
        detail::extract_signed_digits_glv(scalars, tbl.c, tbl.positions, digits);
    if (used == 0) return P::infinity();
    const A* pts = tbl.pts.data();
    const std::size_t stride = 2 * tbl.n, n = tbl.n;
    return detail::msm_sharded<P>(
        digits, 2 * m, used, tbl.c, /*per_position_buckets=*/false,
        [pts, stride, n, m](unsigned t, std::size_t i) -> const A& {
          return pts[std::size_t{t} * stride + (i < m ? i : n + (i - m))];
        });
  }
  const unsigned used =
      detail::extract_signed_digits(scalars, tbl.c, tbl.positions, digits);
  if (used == 0) return P::infinity();

  const A* pts = tbl.pts.data();
  const std::size_t stride = tbl.n;
  return detail::msm_sharded<P>(
      digits, m, used, tbl.c, /*per_position_buckets=*/false,
      [pts, stride](unsigned t, std::size_t i) -> const A& {
        return pts[std::size_t{t} * stride + i];
      });
}

/// MSM of an arbitrary subset of a precomputed table's bases:
/// sum scalars[j] * B_{indices[j]} (duplicate indices allowed). The audit
/// verifier's chi = prod H(name||i)^{c_i} over challenged indices is exactly
/// this shape — the base lookup indirects through the index list, everything
/// else is the shared pipeline.
template <typename P>
P msm_precomputed(const MsmBasesTable<P>& tbl,
                  std::span<const std::uint64_t> indices,
                  std::span<const Fr> scalars) {
  using A = typename P::Affine;
  const std::size_t m = scalars.size();
  if (m != indices.size()) {
    throw std::invalid_argument("msm_precomputed: index/scalar size mismatch");
  }
  if (m == 0) return P::infinity();
  for (std::uint64_t idx : indices) {
    if (idx >= tbl.n) {
      throw std::invalid_argument("msm_precomputed: index out of range");
    }
  }

  std::vector<std::int32_t> digits;
  if (tbl.glv) {
    const unsigned used =
        detail::extract_signed_digits_glv(scalars, tbl.c, tbl.positions, digits);
    if (used == 0) return P::infinity();
    const A* pts = tbl.pts.data();
    const std::size_t stride = 2 * tbl.n, n = tbl.n;
    const std::uint64_t* idx = indices.data();
    return detail::msm_sharded<P>(
        digits, 2 * m, used, tbl.c, /*per_position_buckets=*/false,
        [pts, stride, n, m, idx](unsigned t, std::size_t i) -> const A& {
          return pts[std::size_t{t} * stride +
                     (i < m ? idx[i] : n + idx[i - m])];
        });
  }
  const unsigned used =
      detail::extract_signed_digits(scalars, tbl.c, tbl.positions, digits);
  if (used == 0) return P::infinity();

  const A* pts = tbl.pts.data();
  const std::size_t stride = tbl.n;
  const std::uint64_t* idx = indices.data();
  return detail::msm_sharded<P>(
      digits, m, used, tbl.c, /*per_position_buckets=*/false,
      [pts, stride, idx](unsigned t, std::size_t i) -> const A& {
        return pts[std::size_t{t} * stride + idx[i]];
      });
}

}  // namespace dsaudit::curve
