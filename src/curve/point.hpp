// Short-Weierstrass points in Jacobian coordinates, shared by G1 and G2.
//
// Curve equation: y^2 = x^3 + b over the coordinate field F, with b supplied
// by the curve tag (b = 3 for G1; b = 3/(9+u) for the sextic twist hosting
// G2). Jacobian coordinates (X, Y, Z) represent the affine point
// (X/Z^2, Y/Z^3); infinity is Z = 0.
#pragma once

#include <vector>

#include "field/fp.hpp"

namespace dsaudit::curve {

using ff::Fr;
using ff::U256;

template <typename F, typename Tag>
class Point {
 public:
  Point() : x_(F::one()), y_(F::one()), z_(F::zero()) {}  // infinity
  Point(const F& x, const F& y) : x_(x), y_(y), z_(F::one()) {}

  static Point infinity() { return Point(); }
  static const Point& generator() { return Tag::generator(); }
  static const F& curve_b() { return Tag::curve_b(); }

  bool is_infinity() const { return z_.is_zero(); }

  /// Affine coordinates; must not be called on the point at infinity.
  std::pair<F, F> to_affine() const {
    if (is_infinity()) throw std::logic_error("Point::to_affine: infinity");
    F zinv = z_.inverse();
    F zinv2 = zinv.square();
    return {x_ * zinv2, y_ * zinv2 * zinv};
  }

  bool is_on_curve() const {
    if (is_infinity()) return true;
    // Y^2 = X^3 + b Z^6
    F z2 = z_.square();
    F z6 = z2.square() * z2;
    return y_.square() == x_.square() * x_ + curve_b() * z6;
  }

  Point operator-() const {
    Point r = *this;
    r.y_ = -r.y_;
    return r;
  }

  Point dbl() const {
    if (is_infinity()) return *this;
    // dbl-2009-l (a = 0)
    F a = x_.square();
    F b = y_.square();
    F c = b.square();
    F d = ((x_ + b).square() - a - c).dbl();
    F e = a + a + a;
    F f = e.square();
    Point r;
    r.x_ = f - d.dbl();
    r.y_ = e * (d - r.x_) - c.dbl().dbl().dbl();
    r.z_ = (y_ * z_).dbl();
    return r;
  }

  friend Point operator+(const Point& p, const Point& q) {
    if (p.is_infinity()) return q;
    if (q.is_infinity()) return p;
    // add-2007-bl
    F z1z1 = p.z_.square();
    F z2z2 = q.z_.square();
    F u1 = p.x_ * z2z2;
    F u2 = q.x_ * z1z1;
    F s1 = p.y_ * q.z_ * z2z2;
    F s2 = q.y_ * p.z_ * z1z1;
    if (u1 == u2) {
      if (s1 == s2) return p.dbl();
      return infinity();
    }
    F h = u2 - u1;
    F i = h.dbl().square();
    F j = h * i;
    F rr = (s2 - s1).dbl();
    F v = u1 * i;
    Point r;
    r.x_ = rr.square() - j - v.dbl();
    r.y_ = rr * (v - r.x_) - (s1 * j).dbl();
    r.z_ = ((p.z_ + q.z_).square() - z1z1 - z2z2) * h;
    return r;
  }
  friend Point operator-(const Point& p, const Point& q) { return p + (-q); }
  Point& operator+=(const Point& o) { return *this = *this + o; }

  /// Scalar multiplication by a canonical integer (double-and-add, MSB-first).
  Point mul(const U256& k) const {
    Point acc = infinity();
    unsigned n = k.bit_length();
    for (unsigned i = n; i-- > 0;) {
      acc = acc.dbl();
      if (k.bit(i)) acc += *this;
    }
    return acc;
  }
  Point mul(const Fr& k) const { return mul(k.to_u256()); }

  friend Point operator*(const Fr& k, const Point& p) { return p.mul(k); }

  /// Equality in the group (compares the underlying affine points).
  friend bool operator==(const Point& p, const Point& q) {
    if (p.is_infinity() || q.is_infinity()) {
      return p.is_infinity() == q.is_infinity();
    }
    // X1 Z2^2 == X2 Z1^2  and  Y1 Z2^3 == Y2 Z1^3
    F z1z1 = p.z_.square();
    F z2z2 = q.z_.square();
    return p.x_ * z2z2 == q.x_ * z1z1 &&
           p.y_ * z2z2 * q.z_ == q.y_ * z1z1 * p.z_;
  }

  const F& jac_x() const { return x_; }
  const F& jac_y() const { return y_; }
  const F& jac_z() const { return z_; }

 private:
  F x_, y_, z_;
};

/// Multi-scalar multiplication via Pippenger bucketing. scalars[i] are
/// canonical Fr values; returns sum scalars[i] * points[i]. The prover's two
/// dominant ECC operations (aggregating sigma = prod sigma_i^{c_i} and
/// computing psi from the SRS) are exactly this primitive.
template <typename P>
P msm(std::span<const P> points, std::span<const Fr> scalars) {
  if (points.size() != scalars.size()) {
    throw std::invalid_argument("msm: size mismatch");
  }
  if (points.empty()) return P::infinity();
  if (points.size() == 1) return points[0].mul(scalars[0]);

  // Window size tuned for n points (standard Pippenger heuristic).
  std::size_t n = points.size();
  unsigned c = 3;
  while ((1u << (c + 2)) < n && c < 16) ++c;

  std::vector<U256> ks(n);
  for (std::size_t i = 0; i < n; ++i) ks[i] = scalars[i].to_u256();

  constexpr unsigned kScalarBits = 256;
  unsigned windows = (kScalarBits + c - 1) / c;
  P total = P::infinity();
  for (unsigned w = windows; w-- > 0;) {
    for (unsigned i = 0; i < c; ++i) total = total.dbl();
    std::vector<P> buckets(std::size_t{1} << c, P::infinity());
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      unsigned lo = w * c;
      std::uint64_t digit = 0;
      for (unsigned b = 0; b < c && lo + b < kScalarBits; ++b) {
        if (ks[i].bit(lo + b)) digit |= 1ULL << b;
      }
      if (digit != 0) {
        buckets[digit] += points[i];
        any = true;
      }
    }
    if (!any) continue;
    // Running-sum bucket reduction: sum_j j * bucket[j].
    P running = P::infinity();
    P acc = P::infinity();
    for (std::size_t j = buckets.size(); j-- > 1;) {
      running += buckets[j];
      acc += running;
    }
    total += acc;
  }
  return total;
}

}  // namespace dsaudit::curve
