// Startup self-validation of all BN254 curve constants.
//
// Everything in the crypto stack flows from a handful of constants (the BN
// parameter t, the two moduli, the G2 generator). A silent typo would
// produce a scheme that "works" against itself but is not BN254. This check
// re-derives the moduli from t, and verifies generators, subgroup orders and
// the twist endomorphism. Called once from tests and from library entry
// points; throws std::logic_error with a description on any mismatch.
#pragma once

namespace dsaudit::curve {

void validate_bn254_parameters();

}  // namespace dsaudit::curve
