#include "curve/params_check.hpp"

#include <stdexcept>

#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "curve/glv.hpp"

namespace dsaudit::curve {

namespace {

using bigint::VarUInt;

void require(bool ok, const char* what) {
  if (!ok) throw std::logic_error(std::string("BN254 parameter check failed: ") + what);
}

}  // namespace

void validate_bn254_parameters() {
  static const bool once = [] {
    // 1. Moduli match the BN polynomial family at t = kBnParamT.
    VarUInt t{ff::kBnParamT};
    VarUInt t2 = t * t, t3 = t2 * t, t4 = t3 * t;
    VarUInt p = VarUInt{36} * t4 + VarUInt{36} * t3 + VarUInt{24} * t2 +
                VarUInt{6} * t + VarUInt{1};
    VarUInt r = VarUInt{36} * t4 + VarUInt{36} * t3 + VarUInt{18} * t2 +
                VarUInt{6} * t + VarUInt{1};
    require(p.to_u256() == ff::Fp::modulus(), "p(t) != Fp modulus");
    require(r.to_u256() == ff::Fr::modulus(), "r(t) != Fr modulus");

    // 2. Generators are on their curves and have order r.
    require(G1::generator().is_on_curve(), "G1 generator not on curve");
    require(G1::generator().mul(ff::Fr::modulus()).is_infinity(),
            "G1 generator order != r");
    require(G2::generator().is_on_curve(), "G2 generator not on twist");
    require(g2_in_subgroup(G2::generator()), "G2 generator not in r-subgroup");

    // 3. Twist endomorphism psi satisfies psi(Q) = [p]Q on the r-subgroup
    //    (the eigenvalue of Frobenius on G2 is p mod r).
    ff::Fr p_mod_r = ff::Fr::from_u256(ff::Fp::modulus());
    G2 q = G2::generator().mul(ff::Fr::from_u64(12345));
    require(g2_frobenius(q) == q.mul(p_mod_r), "psi(Q) != [p]Q");
    require(g2_frobenius2(q) == q.mul(p_mod_r * p_mod_r), "psi^2(Q) != [p^2]Q");

    // 4. GLV endomorphism parameters, re-derived independently over VarUInt.
    //    lambda = 36t^3 + 18t^2 + 6t + 1, the cube root of unity mod r that
    //    phi(x, y) = (beta*x, y) realizes on G1; the lattice basis
    //    v1 = (a1, b1), v2 = (-b1, b2) spans the kernel of
    //    (k1, k2) -> k1 + k2*lambda mod r with determinant exactly r.
    const GlvParams& glv = glv_params();
    VarUInt lambda = VarUInt{36} * t3 + VarUInt{18} * t2 + VarUInt{6} * t +
                     VarUInt{1};
    VarUInt a1 = VarUInt{6} * t2 + VarUInt{4} * t + VarUInt{1};
    VarUInt b1 = VarUInt{2} * t + VarUInt{1};
    VarUInt b2 = VarUInt{6} * t2 + VarUInt{2} * t;
    require(lambda.to_u256() == glv.lambda, "GLV lambda != 36t^3+18t^2+6t+1");
    require(a1.to_u256() == glv.a1 && b1.to_u256() == glv.b1 &&
                b2.to_u256() == glv.b2,
            "GLV lattice basis mismatch");
    require((a1 * b2 + b1 * b1) == r, "GLV lattice determinant != r");
    // Exact polynomial identity for the BN family:
    //   lambda^2 + lambda + 1 = (36t^2 + 3) * r.
    require(lambda * lambda + lambda + VarUInt{1} ==
                (VarUInt{36} * t2 + VarUInt{3}) * r,
            "lambda^2 + lambda + 1 != (36t^2+3) r");
    // beta is a primitive cube root of unity in Fp, oriented so that the
    // curve endomorphism matches the eigenvalue lambda on all of G1.
    require(glv.beta != ff::Fp::one() &&
                glv.beta * glv.beta * glv.beta == ff::Fp::one(),
            "GLV beta not a primitive cube root of unity");
    G1 gpt = G1::generator().mul(ff::Fr::from_u64(987654321));
    G1 phi = gpt;
    {
      auto [x, y] = gpt.to_affine();
      phi = G1{x * glv.beta, y};
    }
    require(phi == gpt.mul_naive(glv.lambda), "phi(P) != [lambda]P");
    return true;
  }();
  (void)once;
}

}  // namespace dsaudit::curve
