#include "curve/params_check.hpp"

#include <stdexcept>

#include "curve/g1.hpp"
#include "curve/g2.hpp"

namespace dsaudit::curve {

namespace {

using bigint::VarUInt;

void require(bool ok, const char* what) {
  if (!ok) throw std::logic_error(std::string("BN254 parameter check failed: ") + what);
}

}  // namespace

void validate_bn254_parameters() {
  static const bool once = [] {
    // 1. Moduli match the BN polynomial family at t = kBnParamT.
    VarUInt t{ff::kBnParamT};
    VarUInt t2 = t * t, t3 = t2 * t, t4 = t3 * t;
    VarUInt p = VarUInt{36} * t4 + VarUInt{36} * t3 + VarUInt{24} * t2 +
                VarUInt{6} * t + VarUInt{1};
    VarUInt r = VarUInt{36} * t4 + VarUInt{36} * t3 + VarUInt{18} * t2 +
                VarUInt{6} * t + VarUInt{1};
    require(p.to_u256() == ff::Fp::modulus(), "p(t) != Fp modulus");
    require(r.to_u256() == ff::Fr::modulus(), "r(t) != Fr modulus");

    // 2. Generators are on their curves and have order r.
    require(G1::generator().is_on_curve(), "G1 generator not on curve");
    require(G1::generator().mul(ff::Fr::modulus()).is_infinity(),
            "G1 generator order != r");
    require(G2::generator().is_on_curve(), "G2 generator not on twist");
    require(g2_in_subgroup(G2::generator()), "G2 generator not in r-subgroup");

    // 3. Twist endomorphism psi satisfies psi(Q) = [p]Q on the r-subgroup
    //    (the eigenvalue of Frobenius on G2 is p mod r).
    ff::Fr p_mod_r = ff::Fr::from_u256(ff::Fp::modulus());
    G2 q = G2::generator().mul(ff::Fr::from_u64(12345));
    require(g2_frobenius(q) == q.mul(p_mod_r), "psi(Q) != [p]Q");
    require(g2_frobenius2(q) == q.mul(p_mod_r * p_mod_r), "psi^2(Q) != [p^2]Q");
    return true;
  }();
  (void)once;
}

}  // namespace dsaudit::curve
