#include "curve/g1.hpp"

#include "curve/glv.hpp"
#include "primitives/keccak256.hpp"

namespace dsaudit::curve {

const Fp& G1Tag::curve_b() {
  static const Fp b = Fp::from_u64(3);
  return b;
}

const G1& G1Tag::generator() {
  static const G1 g{Fp::from_u64(1), Fp::from_u64(2)};
  return g;
}

const Fp& G1Tag::endo_beta() { return glv_params().beta; }

const FixedBaseTable<G1>& g1_generator_table() {
  static const FixedBaseTable<G1> table(G1::generator());
  return table;
}

G1 g1_mul_generator(const ff::Fr& k) { return g1_generator_table().mul(k); }

G1 g1_random(primitives::SecureRng& rng) {
  return g1_mul_generator(Fr::random(rng));
}

G1 hash_to_g1(std::span<const std::uint8_t> data) {
  // Try-and-increment: x = Keccak(data || ctr) mod p until x^3+3 is square.
  // The expected number of iterations is 2; the parity of y is taken from the
  // hash as well so the map does not favour one square root.
  std::vector<std::uint8_t> buf(data.begin(), data.end());
  buf.resize(data.size() + 4);
  for (std::uint32_t ctr = 0;; ++ctr) {
    buf[data.size()] = static_cast<std::uint8_t>(ctr >> 24);
    buf[data.size() + 1] = static_cast<std::uint8_t>(ctr >> 16);
    buf[data.size() + 2] = static_cast<std::uint8_t>(ctr >> 8);
    buf[data.size() + 3] = static_cast<std::uint8_t>(ctr);
    auto h = primitives::Keccak256::hash(buf);
    bool want_odd = (h[0] & 0x80) != 0;  // consumed before the mod-p mapping
    Fp x = Fp::from_be_bytes_mod(std::span<const std::uint8_t, 32>(h));
    Fp rhs = x.square() * x + G1Tag::curve_b();
    if (auto y = rhs.sqrt()) {
      Fp yy = (y->is_odd_canonical() == want_odd) ? *y : -*y;
      G1 p{x, yy};
      return p;
    }
  }
}

G1 hash_to_g1(std::string_view s) {
  return hash_to_g1(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::array<std::uint8_t, 32> g1_compress(const G1& p) {
  std::array<std::uint8_t, 32> out{};
  if (p.is_infinity()) {
    out[0] = 0x80;  // infinity flag, rest zero
    return out;
  }
  auto [x, y] = p.to_affine();
  x.to_be_bytes(out);
  if (y.is_odd_canonical()) out[0] |= 0x40;
  return out;
}

std::optional<G1> g1_decompress(std::span<const std::uint8_t, 32> bytes) {
  std::array<std::uint8_t, 32> buf;
  std::copy(bytes.begin(), bytes.end(), buf.begin());
  bool inf = (buf[0] & 0x80) != 0;
  bool odd = (buf[0] & 0x40) != 0;
  buf[0] &= 0x3f;
  if (inf) {
    for (auto b : buf) {
      if (b != 0) return std::nullopt;
    }
    if (odd) return std::nullopt;
    return G1::infinity();
  }
  ff::U256 xi = ff::U256::from_be_bytes(buf);
  if (!bigint::lt(xi, Fp::modulus())) return std::nullopt;  // non-canonical
  Fp x = Fp::from_u256(xi);
  Fp rhs = x.square() * x + G1Tag::curve_b();
  auto y = rhs.sqrt();
  if (!y) return std::nullopt;
  Fp yy = (y->is_odd_canonical() == odd) ? *y : -*y;
  return G1{x, yy};
}

}  // namespace dsaudit::curve
