// Runtime derivation and self-check of the GLV constants (see glv.hpp for
// the math). Everything is rebuilt from ff::kBnParamT at first use; the
// derivation cross-checks itself and throws std::logic_error on any
// mismatch, so a wrong constant can never silently mis-multiply.
#include "curve/glv.hpp"

#include <stdexcept>

#include "curve/g1.hpp"

namespace dsaudit::curve {

namespace {

using bigint::U256;
using bigint::u128;
using bigint::u64;

/// floor(a / d) for a small divisor (used for (p - 1) / 3).
U256 div_u64(const U256& a, u64 d) {
  U256 q;
  u128 rem = 0;
  for (int i = 3; i >= 0; --i) {
    u128 cur = (rem << 64) | a.limb[i];
    q.limb[i] = static_cast<u64>(cur / d);
    rem = cur % d;
  }
  return q;
}

/// floor(num * 2^256 / den) by binary long division over the shifted 512-bit
/// value. Init-time only; the quotients here are < 2^130.
U256 div_pow256(const U256& num, const U256& den) {
  U256 rem, quo;
  for (int bit = 511; bit >= 0; --bit) {
    u64 top = rem.limb[3] >> 63;
    rem = bigint::shl1(rem);
    if (bit >= 256 && num.bit(static_cast<unsigned>(bit - 256))) {
      rem.limb[0] |= 1;
    }
    quo = bigint::shl1(quo);
    if (top || !bigint::lt(rem, den)) {
      U256 t;
      bigint::sub_with_borrow(rem, den, t);
      rem = t;
      quo.limb[0] |= 1;
    }
  }
  return quo;
}

GlvParams derive() {
  const U256 r = ff::Fr::modulus();
  const U256 t{ff::kBnParamT};
  const U256 t2 = bigint::mul_lo(t, t);        // < 2^126: exact
  const U256 t3 = bigint::mul_lo(t2, t);       // < 2^189: exact
  auto small_mul = [](const U256& a, u64 m) { return bigint::mul_lo(a, U256{m}); };
  auto sum = [](std::initializer_list<U256> vs) {
    U256 acc;
    for (const U256& v : vs) bigint::add_with_carry(acc, v, acc);
    return acc;
  };

  GlvParams gp;
  // lambda = 36 t^3 + 18 t^2 + 6 t + 1 — the eigenvalue of phi on G1.
  gp.lambda = sum({small_mul(t3, 36), small_mul(t2, 18), small_mul(t, 6), U256::one()});
  // Short lattice basis: v1 = (a1, b1), v2 = (-b1, b2).
  gp.a1 = sum({small_mul(t2, 6), small_mul(t, 4), U256::one()});
  gp.b1 = sum({small_mul(t, 2), U256::one()});
  gp.b2 = sum({small_mul(t2, 6), small_mul(t, 2)});
  // 2^256-scaled reciprocals for the Babai rounding step.
  gp.g1 = div_pow256(gp.b2, r);
  gp.g2 = div_pow256(gp.b1, r);

  // --- self-checks: the algebra that makes the decomposition sound ---
  if (!bigint::lt(gp.lambda, r)) throw std::logic_error("glv: lambda >= r");
  // lambda^2 + lambda + 1 = 0 (mod r): lambda is a primitive cube root.
  U256 l2 = bigint::mul_mod_slow(gp.lambda, gp.lambda, r);
  U256 acc = bigint::add_mod(l2, gp.lambda, r);
  acc = bigint::add_mod(acc, U256::one(), r);
  if (!acc.is_zero()) throw std::logic_error("glv: lambda is not a cube root");
  // Lattice membership: a1 + b1*lambda = 0 and b2*lambda - b1 = 0 (mod r).
  U256 v1 = bigint::add_mod(gp.a1, bigint::mul_mod_slow(gp.b1, gp.lambda, r), r);
  if (!v1.is_zero()) throw std::logic_error("glv: v1 not in lattice");
  U256 v2 = bigint::sub_mod(bigint::mul_mod_slow(gp.b2, gp.lambda, r), gp.b1, r);
  if (!v2.is_zero()) throw std::logic_error("glv: v2 not in lattice");
  // det(v1, v2) = a1*b2 + b1^2 must equal r exactly (full 512-bit compare).
  bigint::U512 det = bigint::mul_wide(gp.a1, gp.b2);
  bigint::U512 b1sq = bigint::mul_wide(gp.b1, gp.b1);
  u64 carry = 0;
  for (int i = 0; i < 8; ++i) {
    u128 v = static_cast<u128>(det.limb[i]) + b1sq.limb[i] + carry;
    det.limb[i] = static_cast<u64>(v);
    carry = static_cast<u64>(v >> 64);
  }
  if (carry != 0 || !det.hi().is_zero() || !(det.lo() == r)) {
    throw std::logic_error("glv: det(v1, v2) != r");
  }

  // beta: a primitive cube root of unity in Fp, oriented so that
  // (beta * x_G, y_G) == [lambda] G on the G1 generator (the other root
  // pairs with lambda^2). The eigenvalue check below uses mul_naive — the
  // fast mul depends on these very constants.
  const U256 exp = div_u64(bigint::sub_mod(ff::Fp::modulus(), U256::one(),
                                           ff::Fp::modulus()),
                           3);
  ff::Fp beta = ff::Fp::one();
  for (u64 g = 2; beta == ff::Fp::one(); ++g) {
    beta = ff::Fp::from_u64(g).pow_u256(exp);
  }
  const G1& gen = G1::generator();
  const G1 lam_g = gen.mul_naive(gp.lambda);
  auto phi_matches = [&](const ff::Fp& b) {
    auto [x, y] = gen.to_affine();
    return G1{x * b, y} == lam_g;
  };
  if (phi_matches(beta)) {
    gp.beta = beta;
  } else if (phi_matches(beta.square())) {
    gp.beta = beta.square();
  } else {
    throw std::logic_error("glv: no cube root matches the lambda eigenvalue");
  }
  return gp;
}

}  // namespace

const GlvParams& glv_params() {
  static const GlvParams gp = derive();
  return gp;
}

GlvDecomposed glv_decompose(const U256& k) {
  const GlvParams& gp = glv_params();
  // Babai rounding: m1 = round(k * b2 / r), m2 = round(k * b1 / r) — the
  // magnitudes of the rational coordinates c1 = k*b2/r, c2 = -k*b1/r.
  const U256 m1 = bigint::mul_high_rounded(k, gp.g1);
  const U256 m2 = bigint::mul_high_rounded(k, gp.g2);
  // (k1, k2) = (k, 0) - m1 * (a1, b1) - (-m2) * (-b1, b2), exact in two's
  // complement because the true results are < 2^127 in magnitude.
  U256 k1;
  bigint::sub_with_borrow(k, bigint::mul_lo(m1, gp.a1), k1);
  bigint::sub_with_borrow(k1, bigint::mul_lo(m2, gp.b1), k1);
  U256 k2;
  bigint::sub_with_borrow(bigint::mul_lo(m2, gp.b2), bigint::mul_lo(m1, gp.b1), k2);

  GlvDecomposed d;
  d.k1 = bigint::abs2c(k1, d.neg1);
  d.k2 = bigint::abs2c(k2, d.neg2);
  if (d.k1.bit_length() > kGlvHalfBits || d.k2.bit_length() > kGlvHalfBits) {
    throw std::logic_error("glv_decompose: half-scalar exceeds bound");
  }
  return d;
}

}  // namespace dsaudit::curve
