// Process-wide chunked-range thread pool behind every sharded hot path
// (Pippenger window groups, Miller-loop chain groups, the prover's per-chunk
// aggregation, the simulator's concurrent audit rounds).
//
// Design constraints, in order:
//   1. Determinism. Work is decomposed into tasks whose boundaries and
//      combine order are chosen by the *caller*; the pool only decides which
//      thread runs which task. Every sharded algorithm in the library
//      combines per-task results sequentially in task order, so outputs are
//      independent of the thread count (group-level identical everywhere,
//      bit-identical wherever the arithmetic is exact — which is everywhere
//      in this codebase).
//   2. No nested parallelism. parallel_for called from inside a pool worker
//      runs inline on that worker: the outermost shard (e.g. the simulator's
//      per-contract round work) keeps the pool busy, and inner shards
//      (the MSMs inside a prove) degrade to their sequential paths instead
//      of deadlocking or oversubscribing.
//   3. A runtime knob. The pool size comes from DSAUDIT_THREADS (unset/0 =
//      hardware concurrency); set_thread_count() overrides it at runtime,
//      which is what the cross-thread-count differential tests use.
//
// With thread_count() == 1 nothing is ever offloaded: callers take their
// pre-existing sequential paths, bit-identical to the unsharded library.
#pragma once

#include <cstddef>
#include <functional>

namespace dsaudit::parallel {

/// Current pool width (>= 1). First call reads DSAUDIT_THREADS; unset, empty
/// or "0" falls back to std::thread::hardware_concurrency().
unsigned thread_count();

/// Resize the pool at runtime (0 = re-read the environment/hardware default).
/// Not safe to call concurrently with in-flight parallel_for calls; intended
/// for test harnesses and tools that sweep thread counts.
void set_thread_count(unsigned n);

/// True when the calling thread is a pool worker executing a task. Used to
/// collapse nested parallelism onto the caller.
bool in_worker();

/// Runs fn(i) for every i in [0, n), distributing indices over the pool and
/// the calling thread; returns when all calls finished. The first exception
/// thrown by any task is rethrown on the caller. Runs inline (in index
/// order) when n <= 1, thread_count() <= 1, or when called from a worker.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Chunked-range variant: splits [0, n) into at most `max_chunks` (default:
/// thread_count()) contiguous ranges and runs fn(begin, end) per range.
/// Chunk boundaries depend only on n and max_chunks — pass a fixed
/// max_chunks to make the decomposition (not just the result) independent
/// of the pool size.
void parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t max_chunks = 0);

}  // namespace dsaudit::parallel
