#include "parallel/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dsaudit::parallel {

namespace {

thread_local bool tls_in_worker = false;

unsigned env_thread_count() {
  const char* env = std::getenv("DSAUDIT_THREADS");
  if (env && *env) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<unsigned>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

/// One in-flight parallel_for: a shared index cursor on the caller's stack.
/// Workers and the caller race on `next` to claim indices.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mutex;
  std::exception_ptr error;

  void run_indices() {
    for (;;) {
      // Fail fast: once any task has thrown, stop claiming indices — the
      // first captured exception is rethrown on the submitting caller at
      // join (Pool::run), and a faulted job must not keep executing
      // unrelated work after its outcome is already decided.
      if (failed.load(std::memory_order_acquire)) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    }
  }
};

/// The worker set. Workers sleep on a condition variable between jobs; a job
/// is published under the mutex and broadcast. Only one job is in flight at
/// a time (parallel_for holds an internal submission lock) — nested calls
/// never reach the pool because they run inline on the worker.
///
/// Lifetime protocol: the Job lives on run()'s stack, so run() may return
/// only when no worker can still touch it. Workers register under the mutex
/// (`active_` pickups of `current_`); run() retracts `current_` and then
/// waits for active_ == 0. A worker that wakes after the retraction sees a
/// null job and goes back to sleep without ever dereferencing the old one.
class Pool {
 public:
  explicit Pool(unsigned threads) : width_(threads ? threads : 1) {
    for (unsigned i = 0; i + 1 < width_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  unsigned width() const { return width_; }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    // Serialize top-level submissions: two independent threads calling
    // parallel_for share the pool fairly enough for this codebase's use
    // (the hot paths are all reached from one driving thread).
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    Job job;
    job.fn = &fn;
    job.n = n;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = &job;
      ++generation_;
    }
    cv_.notify_all();
    bool caller_was_worker = tls_in_worker;
    tls_in_worker = true;
    job.run_indices();
    tls_in_worker = caller_was_worker;
    {
      // Retract the job, then wait until every worker that picked it up has
      // left run_indices. All indices are claimed (our own loop exhausted
      // the cursor), so this is a bounded wait for in-flight fn calls.
      std::unique_lock<std::mutex> lock(mutex_);
      current_ = nullptr;
      idle_cv_.wait(lock, [&] { return active_ == 0; });
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  void worker_loop() {
    tls_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
          return stop_ || (generation_ != seen && current_ != nullptr);
        });
        if (stop_) return;
        seen = generation_;
        job = current_;
        ++active_;
      }
      job->run_indices();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
      }
      idle_cv_.notify_all();
    }
  }

  unsigned width_;
  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  Job* current_ = nullptr;
  unsigned active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

std::mutex pool_mutex;
std::unique_ptr<Pool> pool_instance;
unsigned configured_width = 0;  // 0 = not yet initialized

Pool& pool() {
  std::lock_guard<std::mutex> lock(pool_mutex);
  if (!pool_instance) {
    configured_width = env_thread_count();
    pool_instance = std::make_unique<Pool>(configured_width);
  }
  return *pool_instance;
}

}  // namespace

unsigned thread_count() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (configured_width) return configured_width;
  }
  return pool().width();
}

void set_thread_count(unsigned n) {
  if (n == 0) n = env_thread_count();
  std::lock_guard<std::mutex> lock(pool_mutex);
  if (pool_instance && pool_instance->width() == n) return;
  pool_instance.reset();  // joins old workers
  configured_width = n;
  pool_instance = std::make_unique<Pool>(n);
}

bool in_worker() { return tls_in_worker; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || tls_in_worker || thread_count() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool().run(n, fn);
}

void parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t max_chunks) {
  if (n == 0) return;
  if (max_chunks == 0) max_chunks = thread_count();
  const std::size_t chunks = max_chunks < n ? max_chunks : n;
  if (chunks <= 1 || tls_in_worker || thread_count() <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t base = n / chunks, extra = n % chunks;
  parallel_for(chunks, [&](std::size_t k) {
    const std::size_t begin = k * base + (k < extra ? k : extra);
    const std::size_t end = begin + base + (k < extra ? 1 : 0);
    fn(begin, end);
  });
}

}  // namespace dsaudit::parallel
