#include "attack/corpus.hpp"

#include <algorithm>

#include "attack/adversary.hpp"  // detail::mix64
#include "audit/types.hpp"

namespace dsaudit::attack::corpus {

namespace {

using detail::mix64;

std::vector<std::uint8_t> copy_of(std::span<const std::uint8_t> v) {
  return {v.begin(), v.end()};
}

/// 32 bytes of 0xFF: non-canonical as an Fp or Fr limb (both moduli are
/// < 2^255), out of range as a compressed point's x regardless of flag-bit
/// convention.
void saturate(std::vector<std::uint8_t>& b, std::size_t off,
              std::size_t len = 32) {
  std::fill(b.begin() + static_cast<std::ptrdiff_t>(off),
            b.begin() + static_cast<std::ptrdiff_t>(off + len), 0xFF);
}

void put_u64_be(std::vector<std::uint8_t>& b, std::size_t off,
                std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
}

Mutation make(std::string label, std::vector<std::uint8_t> bytes,
              bool must_reject = true) {
  return Mutation{std::move(label), std::move(bytes), must_reject};
}

}  // namespace

std::vector<Mutation> proof_mutations(std::span<const std::uint8_t> valid) {
  const bool priv = valid.size() == audit::ProofPrivate::kWireSize;
  std::vector<Mutation> out;
  out.push_back(make("empty", {}));
  out.push_back(make("truncated-by-1",
                     copy_of(valid.subspan(0, valid.size() - 1))));
  out.push_back(make("truncated-half",
                     copy_of(valid.subspan(0, valid.size() / 2))));
  {
    auto b = copy_of(valid);
    b.push_back(0);
    out.push_back(make("extended-by-1", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 0);  // sigma.x >= p
    out.push_back(make("sigma-noncanonical-x", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 32);  // y (or y') >= r
    out.push_back(make("scalar-noncanonical", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 64);  // psi.x >= p
    out.push_back(make("psi-noncanonical-x", std::move(b)));
  }
  if (priv) {
    {
      auto b = copy_of(valid);
      saturate(b, 96, 192);  // every GT coordinate >= p (flags masked to 0x3F
                             // still leave the first one non-canonical)
      out.push_back(make("gt-noncanonical-coords", std::move(b)));
    }
    {
      auto b = copy_of(valid);
      b[96] |= 0xC0;  // b==0 flag AND lex-sign flag: contradictory
      out.push_back(make("gt-contradictory-flags", std::move(b)));
    }
    {
      auto b = copy_of(valid);
      // Claim b == 0 over coordinates whose a^2 != 1: no such GT element.
      b[96] = static_cast<std::uint8_t>((b[96] & 0x3F) | 0x80);
      out.push_back(make("gt-false-b-zero-flag", std::move(b)));
    }
    {
      // A basic-sized prefix of a private proof (and vice versa below):
      // cross-format confusion must be a clean BadLength.
      out.push_back(make("private-as-basic-prefix",
                         copy_of(valid.subspan(0, 96 + 1))));
    }
  }
  return out;
}

std::vector<std::uint8_t> corrupt_proof(std::span<const std::uint8_t> valid,
                                        std::uint64_t variant) {
  auto muts = proof_mutations(valid);
  return muts[mix64(variant) % muts.size()].bytes;
}

std::vector<Mutation> public_key_mutations(
    std::span<const std::uint8_t> valid) {
  std::vector<Mutation> out;
  out.push_back(make("empty", {}));
  out.push_back(make("truncated-header", copy_of(valid.subspan(0, 7))));
  out.push_back(make("truncated-by-1",
                     copy_of(valid.subspan(0, valid.size() - 1))));
  {
    auto b = copy_of(valid);
    b.push_back(0);
    out.push_back(make("extended-by-1", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    put_u64_be(b, 0, 0);  // s == 0: keygen guarantees s >= 1
    out.push_back(make("s-zero", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    // The overflow probe: 32 * (s-1) wraps to a tiny value. A decoder that
    // trusts the product before bounding the count reads out of bounds.
    put_u64_be(b, 0, (1ULL << 59) + 5);
    out.push_back(make("s-overflow-2^59", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    put_u64_be(b, 0, 0xFFFFFFFFFFFFFFFFULL);
    out.push_back(make("s-max-u64", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 8, 64);  // epsilon: non-canonical G2 coordinates
    out.push_back(make("epsilon-noncanonical", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 72, 64);  // delta
    out.push_back(make("delta-noncanonical", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 136);  // first alpha power: x >= p
    out.push_back(make("alpha-power-noncanonical", std::move(b)));
  }
  return out;
}

std::vector<Mutation> file_tag_mutations(std::span<const std::uint8_t> valid) {
  std::vector<Mutation> out;
  out.push_back(make("empty", {}));
  out.push_back(make("truncated-header", copy_of(valid.subspan(0, 47))));
  out.push_back(make("truncated-by-1",
                     copy_of(valid.subspan(0, valid.size() - 1))));
  {
    auto b = copy_of(valid);
    b.push_back(0);
    out.push_back(make("extended-by-1", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 0);  // name >= r
    out.push_back(make("name-noncanonical", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    // num_chunks = 2^59: 32 * num_chunks wraps to 0, so a length check of
    // the form size != 48 + 32*n passes on a 48-byte buffer and the sigma
    // loop walks 2^59 entries off the end. The typed decoder must bound the
    // count against the buffer BEFORE multiplying.
    put_u64_be(b, 40, 1ULL << 59);
    out.push_back(make("num-chunks-overflow-2^59", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    put_u64_be(b, 40, 0xFFFFFFFFFFFFFFFFULL);
    out.push_back(make("num-chunks-max-u64", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    const std::uint64_t n = (valid.size() - 48) / 32;
    put_u64_be(b, 40, n + 1);  // claims one more sigma than the buffer holds
    out.push_back(make("num-chunks-lying-high", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 48);  // first sigma: x >= p
    out.push_back(make("sigma-noncanonical", std::move(b)));
  }
  return out;
}

std::vector<Mutation> challenge_mutations(std::span<const std::uint8_t> valid) {
  std::vector<Mutation> out;
  out.push_back(make("empty", {}));
  out.push_back(make("truncated-by-1",
                     copy_of(valid.subspan(0, valid.size() - 1))));
  {
    auto b = copy_of(valid);
    b.push_back(0);
    out.push_back(make("extended-by-1", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 64);  // r >= r_modulus
    out.push_back(make("r-noncanonical", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    put_u64_be(b, 96, 0);  // k == 0: expand_challenge rejects it
    out.push_back(make("k-zero", std::move(b)));
  }
  return out;
}

std::vector<Mutation> aggregate_settlement_mutations(
    std::span<const std::uint8_t> valid) {
  // Layout: seed (32) | nonce (8) | boundary (8) | rounds (8, at offset 48)
  // | opening (32, at offset 56) | bitmap (ceil(rounds/8), at offset 88).
  constexpr std::size_t kHeader = 88;
  constexpr std::size_t kRoundsOff = 48;
  const std::uint64_t rounds =
      [&] {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v = (v << 8) | valid[kRoundsOff + i];
        return v;
      }();
  std::vector<Mutation> out;
  out.push_back(make("empty", {}));
  out.push_back(make("truncated-header", copy_of(valid.subspan(0, kHeader - 1))));
  out.push_back(make("truncated-by-1",
                     copy_of(valid.subspan(0, valid.size() - 1))));
  {
    auto b = copy_of(valid);
    b.push_back(0);
    out.push_back(make("extended-by-1", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    put_u64_be(b, kRoundsOff, 0);  // an empty window never posts a settlement tx
    out.push_back(make("rounds-zero", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    // rounds = 2^62: a naive header + rounds/8 + 1 sizing wraps; the typed
    // decoder must bound the count against the buffer before it sizes the
    // bitmap.
    put_u64_be(b, kRoundsOff, 1ULL << 62);
    out.push_back(make("rounds-overflow-2^62", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    put_u64_be(b, kRoundsOff, 0xFFFFFFFFFFFFFFFFULL);
    out.push_back(make("rounds-max-u64", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    // Claims a full extra bitmap byte's worth of rounds beyond the buffer.
    put_u64_be(b, kRoundsOff, rounds + 8);
    out.push_back(make("rounds-lying-high", std::move(b)));
  }
  if (rounds > 8) {
    auto b = copy_of(valid);
    // Claims fewer rounds than the bitmap carries: the buffer is now too
    // long for the count.
    put_u64_be(b, kRoundsOff, rounds - 8);
    out.push_back(make("rounds-lying-low", std::move(b)));
  }
  if (rounds % 8 != 0) {
    auto b = copy_of(valid);
    // A set bit past `rounds` in the last bitmap byte: non-canonical.
    b.back() |= static_cast<std::uint8_t>(1u << (rounds % 8));
    out.push_back(make("trailing-bitmap-bit", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 56);  // opening: x >= p
    out.push_back(make("opening-noncanonical-x", std::move(b)));
  }
  return out;
}

std::vector<Mutation> secret_key_mutations(
    std::span<const std::uint8_t> valid) {
  std::vector<Mutation> out;
  out.push_back(make("empty", {}));
  out.push_back(make("truncated-by-1",
                     copy_of(valid.subspan(0, valid.size() - 1))));
  {
    auto b = copy_of(valid);
    b.push_back(0);
    out.push_back(make("extended-by-1", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 0);
    out.push_back(make("x-noncanonical", std::move(b)));
  }
  {
    auto b = copy_of(valid);
    saturate(b, 32);
    out.push_back(make("alpha-noncanonical", std::move(b)));
  }
  {
    std::vector<std::uint8_t> b(64, 0);
    out.push_back(make("all-zero", std::move(b)));
  }
  return out;
}

std::vector<Mutation> random_flips(std::span<const std::uint8_t> valid,
                                   std::uint64_t seed, std::size_t count) {
  std::vector<Mutation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto b = copy_of(valid);
    const std::uint64_t h = mix64(seed ^ (i + 1));
    const std::size_t pos = h % b.size();
    const auto bit = static_cast<std::uint8_t>(1u << (mix64(h) % 8));
    b[pos] ^= bit;
    out.push_back(make("flip-" + std::to_string(pos) + "-" +
                           std::to_string(static_cast<int>(bit)),
                       std::move(b), /*must_reject=*/false));
  }
  return out;
}

}  // namespace dsaudit::attack::corpus
