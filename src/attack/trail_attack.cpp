#include "attack/trail_attack.hpp"

#include <cstring>
#include <stdexcept>

#include "primitives/keccak256.hpp"

namespace dsaudit::attack {

TrailAnalyzer::TrailAnalyzer(std::size_t d, std::size_t s) : d_(d), s_(s) {
  if (d == 0 || s == 0) throw std::invalid_argument("TrailAnalyzer: empty geometry");
}

void TrailAnalyzer::add_trail(const ObservedTrail& trail) {
  // Expand exactly as prover/verifier do — everything here is public.
  audit::ExpandedChallenge ex = audit::expand_challenge(trail.challenge, d_);
  std::vector<std::pair<std::size_t, Fr>> row;
  row.reserve(ex.indices.size() * s_);
  for (std::size_t j = 0; j < ex.indices.size(); ++j) {
    Fr r_power = Fr::one();
    for (std::size_t l = 0; l < s_; ++l) {
      BlockId id{ex.indices[j], l};
      auto [it, inserted] = unknown_index_.try_emplace(id, unknown_index_.size());
      row.emplace_back(it->second, ex.coefficients[j] * r_power);
      r_power *= trail.challenge.r;
    }
  }
  rows_.push_back(std::move(row));
  rhs_.push_back(trail.response);
}

std::optional<std::map<BlockId, Fr>> TrailAnalyzer::recover() const {
  const std::size_t n = unknown_index_.size();
  if (n == 0 || rows_.size() < n) return std::nullopt;
  // Densify and Gauss-eliminate the full (possibly overdetermined) system;
  // inconsistency (as produced by sigma-masked trails) surfaces as either a
  // singular square system or residual mismatch on the extra rows.
  std::vector<std::vector<Fr>> a(rows_.size(), std::vector<Fr>(n, Fr::zero()));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (const auto& [col, coeff] : rows_[i]) a[i][col] += coeff;
  }
  std::vector<Fr> b = rhs_;

  // Forward elimination with row pivoting over all rows.
  std::size_t rank = 0;
  std::vector<std::size_t> pivot_col;
  for (std::size_t col = 0; col < n && rank < a.size(); ++col) {
    std::size_t piv = rank;
    while (piv < a.size() && a[piv][col].is_zero()) ++piv;
    if (piv == a.size()) continue;
    std::swap(a[piv], a[rank]);
    std::swap(b[piv], b[rank]);
    Fr inv = a[rank][col].inverse();
    for (std::size_t j = col; j < n; ++j) a[rank][j] *= inv;
    b[rank] *= inv;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i == rank || a[i][col].is_zero()) continue;
      Fr f = a[i][col];
      for (std::size_t j = col; j < n; ++j) a[i][j] -= f * a[rank][j];
      b[i] -= f * b[rank];
    }
    pivot_col.push_back(col);
    ++rank;
  }
  if (rank < n) return std::nullopt;  // underdetermined
  // Inconsistent extra rows => the trails were not plain P_k(r) values.
  for (std::size_t i = rank; i < a.size(); ++i) {
    if (!b[i].is_zero()) return std::nullopt;
  }
  std::map<BlockId, Fr> out;
  std::vector<Fr> solution(n);
  for (std::size_t i = 0; i < rank; ++i) solution[pivot_col[i]] = b[i];
  for (const auto& [id, idx] : unknown_index_) out[id] = solution[idx];
  return out;
}

poly::Polynomial interpolate_pk(std::span<const ObservedTrail> trails,
                                std::size_t s) {
  if (trails.size() < s) {
    throw std::invalid_argument("interpolate_pk: need at least s trails");
  }
  for (const auto& t : trails) {
    if (t.challenge.c1 != trails[0].challenge.c1 ||
        t.challenge.c2 != trails[0].challenge.c2 ||
        t.challenge.k != trails[0].challenge.k) {
      throw std::invalid_argument("interpolate_pk: trails must share seeds");
    }
  }
  std::vector<Fr> xs, ys;
  for (std::size_t i = 0; i < s; ++i) {
    xs.push_back(trails[i].challenge.r);
    ys.push_back(trails[i].response);
  }
  return poly::lagrange_interpolate(xs, ys);  // throws on duplicate r
}

double recovery_rate(const std::map<BlockId, Fr>& recovered,
                     const storage::EncodedFile& file) {
  std::size_t total = 0, correct = 0;
  for (std::size_t i = 0; i < file.num_chunks(); ++i) {
    for (std::size_t l = 0; l < file.s; ++l) {
      ++total;
      auto it = recovered.find(BlockId{i, l});
      if (it != recovered.end() && it->second == file.chunks[i][l]) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

Challenge eclipse_challenge(std::uint64_t round, std::size_t d) {
  Challenge chal;
  // The isolated victim's view of "beacon randomness" is whatever the
  // adversary says it is; the adversary varies it deterministically.
  std::uint8_t buf[16] = {'e', 'c', 'l', 'i', 'p', 's', 'e'};
  std::memcpy(buf + 8, &round, 8);
  chal.c1 = primitives::Keccak256::hash(std::span<const std::uint8_t>(buf, 16));
  buf[7] = '2';
  chal.c2 = primitives::Keccak256::hash(std::span<const std::uint8_t>(buf, 16));
  // Distinct, adversary-chosen evaluation points: r = round + 1.
  chal.r = Fr::from_u64(round + 1);
  chal.k = d;  // challenge everything, maximal information per round
  return chal;
}

}  // namespace dsaudit::attack
