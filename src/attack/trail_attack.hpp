// The §V-C on-chain leakage attack, end to end.
//
// Without the sigma-protocol layer, each audit trail on the blockchain
// exposes y = P_k(r) = sum_l (sum_j c_j m_{i_j,l}) r^l — one linear equation
// in the file blocks m_{i,l}, with PUBLICLY derivable coefficients (the
// challenge seeds expand to {i_j}, {c_j} and r is on chain). An off-chain
// observer therefore:
//
//   (1) [interpolation view, the paper's exposition] with s trails sharing
//       one coefficient set but distinct r, Lagrange-interpolates P_k(x)
//       and reads off the combined coefficients; then
//   (2) [linear-algebra view, fully general] accumulates trails as rows of
//       a linear system over Z_p and solves for the raw blocks once enough
//       independent equations cover the challenged chunks.
//
// The eclipse-attack variant (§V-C last paragraph) is the adversary CHOOSING
// the challenges after isolating the victim — modeled by feeding crafted
// challenges instead of beacon outputs, which guarantees independence and
// minimizes the number of rounds to d*s.
//
// Against the private protocol the same pipeline provably yields nothing:
// y' = zeta*P_k(r) + z with fresh (z, zeta) per round adds one unknown per
// equation, so the system never closes — recover() keeps returning nullopt.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "audit/protocol.hpp"
#include "poly/polynomial.hpp"

namespace dsaudit::attack {

using audit::Challenge;
using audit::Fr;

/// One observed (challenge, scalar-response) pair scraped from the chain.
/// For the non-private protocol the scalar is y; feeding y' from private
/// proofs is exactly what the negative-control experiments do.
struct ObservedTrail {
  Challenge challenge;
  Fr response;
};

/// Block identifier: (chunk index, intra-chunk position).
struct BlockId {
  std::uint64_t chunk = 0;
  std::size_t position = 0;
  friend auto operator<=>(const BlockId&, const BlockId&) = default;
};

/// Accumulates audit trails and solves for file blocks.
class TrailAnalyzer {
 public:
  /// d = number of chunks, s = blocks per chunk (public contract metadata).
  TrailAnalyzer(std::size_t d, std::size_t s);

  void add_trail(const ObservedTrail& trail);
  std::size_t equations() const { return rows_.size(); }
  std::size_t unknowns() const { return unknown_index_.size(); }

  /// Attempt full recovery of every block seen in some challenge. Returns
  /// nullopt while the system is underdetermined or (as with private trails)
  /// inconsistent/garbage — callers should validate against known structure.
  std::optional<std::map<BlockId, Fr>> recover() const;

 private:
  std::size_t d_, s_;
  std::map<BlockId, std::size_t> unknown_index_;
  std::vector<std::vector<std::pair<std::size_t, Fr>>> rows_;  // sparse rows
  std::vector<Fr> rhs_;
};

/// The paper's interpolation exposition (step 1): given >= s trails with the
/// SAME (C1, C2) but distinct r, reconstruct P_k(x). Returns the polynomial
/// coefficients {sum_j c_j m_{i_j,l}}_l. Throws std::invalid_argument if the
/// trails do not share seeds or have duplicate r.
poly::Polynomial interpolate_pk(std::span<const ObservedTrail> trails,
                                std::size_t s);

/// Convenience judge for experiments: fraction of blocks of `file` the
/// recovered map reproduces exactly.
double recovery_rate(const std::map<BlockId, Fr>& recovered,
                     const storage::EncodedFile& file);

/// Eclipse adversary: crafts the t-th challenge deterministically with
/// distinct, adversary-chosen evaluation points and coefficient seeds
/// (k = d: every chunk challenged every round).
Challenge eclipse_challenge(std::uint64_t round, std::size_t d);

}  // namespace dsaudit::attack
