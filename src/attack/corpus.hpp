// Deterministic malformed-input corpus for the untrusted-bytes boundary.
//
// Two consumers share these generators:
//   - MalformedBytesStrategy (adversary.hpp): corrupt_proof() turns an
//     honest proof encoding into a guaranteed-invalid one on the wire, so
//     every such round must die at the decode boundary with a typed
//     rejection (never UB, never a crash, never a downstream surprise);
//   - tests/test_fuzz_decode.cpp: the *_mutations() generators enumerate
//     every guaranteed-invalid class per wire format (truncation, extension,
//     non-canonical field elements, off-range points, inconsistent length
//     fields — including the 32*count overflow probes — bad GT flag bits),
//     plus seeded random byte flips that only assert crash-freedom.
//
// Everything is a pure function of its inputs: the same (bytes, seed) always
// yields the same corpus, so a sanitizer failure replays exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dsaudit::attack::corpus {

struct Mutation {
  std::string label;
  std::vector<std::uint8_t> bytes;
  /// True: decode MUST return a typed error. False (random flips): decode
  /// may succeed or fail, but must not crash; if it succeeds the value must
  /// re-serialize consistently.
  bool must_reject = true;
};

/// One guaranteed-invalid corruption of a valid ProofBasic/ProofPrivate
/// encoding (distinguished by size); `variant` cycles deterministically
/// through the classes. Used by the in-sim malformed-bytes adversary.
std::vector<std::uint8_t> corrupt_proof(std::span<const std::uint8_t> valid,
                                        std::uint64_t variant);

/// Every guaranteed-invalid class for a proof encoding (basic or private).
std::vector<Mutation> proof_mutations(std::span<const std::uint8_t> valid);
/// Guaranteed-invalid public-key encodings, including s = 0 and the
/// 64-bit power-count overflow probes.
std::vector<Mutation> public_key_mutations(std::span<const std::uint8_t> valid);
/// Guaranteed-invalid file-tag encodings, including the num_chunks
/// overflow probes (32 * num_chunks wrapping past SIZE_MAX).
std::vector<Mutation> file_tag_mutations(std::span<const std::uint8_t> valid);
std::vector<Mutation> challenge_mutations(std::span<const std::uint8_t> valid);
std::vector<Mutation> secret_key_mutations(std::span<const std::uint8_t> valid);
/// Guaranteed-invalid aggregate-settlement encodings: truncation/extension,
/// rounds = 0, the 64-bit rounds count probes (the field must be bounded
/// against the buffer before it sizes the bitmap), nonzero trailing bitmap
/// bits (canonicality) and an off-curve opening.
std::vector<Mutation> aggregate_settlement_mutations(
    std::span<const std::uint8_t> valid);

/// `count` seeded single-byte flips of `valid` (must_reject = false).
std::vector<Mutation> random_flips(std::span<const std::uint8_t> valid,
                                   std::uint64_t seed, std::size_t count);

}  // namespace dsaudit::attack::corpus
