// Byzantine adversary engine: provider strategies that actively optimize
// against the audit protocol, run INSIDE NetworkSim in place of the honest
// responder (NetworkSim::set_adversary / set_adversaries).
//
// Where the PR-6 fault engine models crash-style failures (nodes that stop),
// these strategies model providers that keep participating while cheating:
// storing only part of the data, colluding across keys, discriminating by
// contract value, grinding the Fiat–Shamir machinery, or probing the
// deserialization boundary with malformed bytes.
//
// Determinism contract (same as the fault engine): decide() is a PURE
// function of (context, challenge) and the strategy's immutable parameters.
// It is called from concurrently-running contract prepare stages AND
// re-evaluated in the sequential round-settlement callback (to classify the
// round for the adversary counters) and again by the stats_by_walk()
// differential oracle — all three must agree, so no strategy may carry
// mutable state. Rosters are seed-drawable (AdversaryRoster::random) and
// describe()-replayable, bit-identical at every DSAUDIT_THREADS setting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/types.hpp"

namespace dsaudit::attack {

enum class StrategyKind : std::uint8_t {
  /// Stores only a fraction of its chunks; answers honestly when every
  /// challenged chunk happens to be held, cheats (or stays silent) otherwise.
  /// Detection probability per round is exactly the paper's
  /// 1 - (1 - missing_fraction)^k story.
  PartialStorage,
  /// Member of a cheating ring spanning providers (and therefore owner
  /// keys): all members share one group seed, so their cheat rounds
  /// correlate and pile multi-key failures into the same settlement window —
  /// the worst case for cross-key settlement bisection.
  Colluding,
  /// Discriminates by contract value: cheats only on contracts whose total
  /// reward is below a threshold, serves premium contracts honestly.
  Selective,
  /// Grinds the proof randomness (valid proofs, chosen to bias the
  /// settlement transcript) and replays prior window weight seeds against
  /// the BatchSettlement registry — both must yield zero advantage.
  SeedGrinding,
  /// Sends syntactically malformed proof encodings (truncated, oversized,
  /// non-canonical scalars, off-curve points, non-GT elements) at the
  /// deserialization boundary.
  MalformedBytes,
};

const char* to_string(StrategyKind kind);

/// What the adversary does with one challenge of one contract.
enum class AdversaryAction : std::uint8_t {
  Honest,         // correct proof over intact data
  CorruptProof,   // proof computed over data with unheld chunks zeroed
  NoAnswer,       // silent: the round times out
  MalformedProof, // valid proof bytes deliberately corrupted on the wire
  GrindProof,     // valid proof selected among several candidates
};

const char* to_string(AdversaryAction action);

/// Immutable facts about the contract a challenge belongs to. Built once per
/// deployment by NetworkSim; everything decide() may depend on besides the
/// challenge itself.
struct AdversaryContext {
  std::size_t deployment = 0;
  std::size_t provider = 0;
  std::size_t owner = 0;
  std::size_t num_chunks = 0;           // d of this deployment's shard
  std::uint64_t reward_per_audit = 0;   // this contract's terms (tier-scaled)
  std::uint64_t penalty_per_fail = 0;
  std::uint64_t num_audits = 0;
};

namespace detail {
/// splitmix64 finalizer — the engine's one keyed hash. Strategies derive
/// every per-challenge coin from it so decisions replay exactly.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
/// Fold a challenge seed into one word (c1 is 32 bytes of beacon output —
/// any 8 of them are already uniform; fold all for good measure).
inline std::uint64_t fold(const std::array<std::uint8_t, 32>& c1) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    acc = acc * 0x100000001B3ULL + c1[i];
  }
  return acc;
}
}  // namespace detail

class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;
  virtual StrategyKind kind() const = 0;
  /// PURE and thread-safe: may depend only on the arguments and immutable
  /// members (see the header comment for who calls it, and when).
  virtual AdversaryAction decide(const AdversaryContext& ctx,
                                 const audit::Challenge& chal) const = 0;
  /// Whether the provider actually holds chunk `index` of this deployment.
  /// When decide() returns CorruptProof, the sim zeroes every unheld chunk
  /// before proving — the proof fails exactly when a challenge touches one.
  virtual bool holds_chunk(const AdversaryContext& ctx,
                           std::uint64_t index) const {
    (void)ctx;
    (void)index;
    return true;
  }
  /// Candidate proofs generated per GrindProof action (1 for everyone else).
  virtual std::size_t grind_candidates() const { return 1; }
  /// One replayable line: kind + parameters (the roster aggregates these).
  virtual std::string describe() const = 0;
};

/// Stores each chunk independently with probability stored_permille/1000
/// (decided by a keyed hash of (seed, deployment, chunk) — fixed for the
/// whole run, as real partial storage would be). Covered challenges are
/// answered honestly; uncovered ones get a corrupt proof (answer_uncovered)
/// or silence.
class PartialStorageStrategy final : public AdversaryStrategy {
 public:
  PartialStorageStrategy(std::uint64_t seed, std::uint32_t stored_permille,
                         bool answer_uncovered);
  StrategyKind kind() const override { return StrategyKind::PartialStorage; }
  AdversaryAction decide(const AdversaryContext& ctx,
                         const audit::Challenge& chal) const override;
  bool holds_chunk(const AdversaryContext& ctx,
                   std::uint64_t index) const override;
  std::string describe() const override;

 private:
  std::uint64_t seed_;
  std::uint32_t stored_permille_;
  bool answer_uncovered_;
};

/// All members constructed with the same group_seed cheat on the same keyed
/// coin of each challenge seed, and share the same corrupted state (none of
/// them holds chunk 0). cheat_permille tunes how often the ring strikes.
class ColludingStrategy final : public AdversaryStrategy {
 public:
  ColludingStrategy(std::uint64_t group_seed, std::uint32_t cheat_permille);
  StrategyKind kind() const override { return StrategyKind::Colluding; }
  AdversaryAction decide(const AdversaryContext& ctx,
                         const audit::Challenge& chal) const override;
  bool holds_chunk(const AdversaryContext& ctx,
                   std::uint64_t index) const override;
  std::string describe() const override;

 private:
  std::uint64_t group_seed_;
  std::uint32_t cheat_permille_;
};

/// Cheats (drops chunk 0) exactly on contracts whose total reward
/// (reward_per_audit * num_audits) is below value_threshold; premium
/// contracts are served honestly. Models a provider that only bothers
/// storing data it is paid enough for.
class SelectiveStrategy final : public AdversaryStrategy {
 public:
  SelectiveStrategy(std::uint64_t seed, std::uint64_t value_threshold,
                    std::uint32_t cheat_permille);
  StrategyKind kind() const override { return StrategyKind::Selective; }
  AdversaryAction decide(const AdversaryContext& ctx,
                         const audit::Challenge& chal) const override;
  bool holds_chunk(const AdversaryContext& ctx,
                   std::uint64_t index) const override;
  std::string describe() const override;

 private:
  std::uint64_t seed_;
  std::uint64_t value_threshold_;
  std::uint32_t cheat_permille_;
};

/// Every private-proof round is ground: `candidates` valid proofs are
/// generated with fresh masking randomness and the lexicographically
/// smallest serialization is submitted (an attempt to bias the settlement
/// transcript, and through it the Fiat–Shamir weight seed). The sim
/// additionally replays the previous window's weight seed against the
/// BatchSettlement registry on this strategy's behalf — the registry must
/// refuse every attempt. Under basic (deterministic) proofs grinding
/// degenerates to honesty, which is itself the verdict: nothing to grind.
class SeedGrindingStrategy final : public AdversaryStrategy {
 public:
  SeedGrindingStrategy(std::uint64_t seed, std::size_t candidates);
  StrategyKind kind() const override { return StrategyKind::SeedGrinding; }
  AdversaryAction decide(const AdversaryContext& ctx,
                         const audit::Challenge& chal) const override;
  std::size_t grind_candidates() const override { return candidates_; }
  std::string describe() const override;

 private:
  std::uint64_t seed_;
  std::size_t candidates_;
};

/// Corrupts the wire encoding of an otherwise-honest proof on a keyed coin
/// of each challenge (malformed_permille), cycling deterministically through
/// the guaranteed-invalid corpus classes (src/attack/corpus.hpp). Every such
/// round must fail CLEANLY at the decode boundary — typed rejection, penalty,
/// no crash.
class MalformedBytesStrategy final : public AdversaryStrategy {
 public:
  MalformedBytesStrategy(std::uint64_t seed, std::uint32_t malformed_permille);
  StrategyKind kind() const override { return StrategyKind::MalformedBytes; }
  AdversaryAction decide(const AdversaryContext& ctx,
                         const audit::Challenge& chal) const override;
  std::string describe() const override;

 private:
  std::uint64_t seed_;
  std::uint32_t malformed_permille_;
};

/// A per-provider strategy assignment for one NetworkSim run.
struct AdversaryRoster {
  /// Index = provider index; null = honest provider.
  std::vector<std::shared_ptr<const AdversaryStrategy>> by_provider;

  /// Draw a roster from a seed: 1..max_adversaries distinct providers get
  /// strategies with seed-derived parameters, uniformly mixing every
  /// StrategyKind. When two or more Colluding members are drawn they share
  /// one group seed (a genuine ring). Same seed, same roster — the sweep
  /// prints the seed on failure and replaying it reproduces the run.
  static AdversaryRoster random(std::uint64_t seed, std::size_t num_providers,
                                std::size_t max_adversaries = 2);

  std::size_t adversary_count() const;
  /// One line per adversarial provider, for failure replay.
  std::string describe() const;
};

}  // namespace dsaudit::attack
