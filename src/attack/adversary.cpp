#include "attack/adversary.hpp"

#include <algorithm>
#include <sstream>

namespace dsaudit::attack {

using detail::fold;
using detail::mix64;

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::PartialStorage: return "partial-storage";
    case StrategyKind::Colluding: return "colluding";
    case StrategyKind::Selective: return "selective";
    case StrategyKind::SeedGrinding: return "seed-grinding";
    case StrategyKind::MalformedBytes: return "malformed-bytes";
  }
  return "?";
}

const char* to_string(AdversaryAction action) {
  switch (action) {
    case AdversaryAction::Honest: return "honest";
    case AdversaryAction::CorruptProof: return "corrupt-proof";
    case AdversaryAction::NoAnswer: return "no-answer";
    case AdversaryAction::MalformedProof: return "malformed-proof";
    case AdversaryAction::GrindProof: return "grind-proof";
  }
  return "?";
}

// ----------------------------------------------------------- PartialStorage

PartialStorageStrategy::PartialStorageStrategy(std::uint64_t seed,
                                               std::uint32_t stored_permille,
                                               bool answer_uncovered)
    : seed_(seed),
      stored_permille_(std::min<std::uint32_t>(stored_permille, 1000)),
      answer_uncovered_(answer_uncovered) {}

bool PartialStorageStrategy::holds_chunk(const AdversaryContext& ctx,
                                         std::uint64_t index) const {
  // Fixed for the whole run: which chunks the provider bothered to store is
  // decided once per (deployment, chunk), not per challenge.
  return mix64(seed_ ^ mix64(ctx.deployment * 0x7F4A7C15ULL + 1) ^ index) %
             1000 <
         stored_permille_;
}

AdversaryAction PartialStorageStrategy::decide(
    const AdversaryContext& ctx, const audit::Challenge& chal) const {
  const auto expanded = audit::expand_challenge(chal, ctx.num_chunks);
  for (std::uint64_t idx : expanded.indices) {
    if (!holds_chunk(ctx, idx)) {
      return answer_uncovered_ ? AdversaryAction::CorruptProof
                               : AdversaryAction::NoAnswer;
    }
  }
  return AdversaryAction::Honest;  // every challenged chunk is held
}

std::string PartialStorageStrategy::describe() const {
  std::ostringstream out;
  out << "partial-storage(seed=" << seed_ << ", stored=" << stored_permille_
      << "/1000, " << (answer_uncovered_ ? "answers" : "silent")
      << " when uncovered)";
  return out.str();
}

// ---------------------------------------------------------------- Colluding

ColludingStrategy::ColludingStrategy(std::uint64_t group_seed,
                                     std::uint32_t cheat_permille)
    : group_seed_(group_seed),
      cheat_permille_(std::min<std::uint32_t>(cheat_permille, 1000)) {}

bool ColludingStrategy::holds_chunk(const AdversaryContext&,
                                    std::uint64_t index) const {
  return index != 0;  // the ring's shared corrupted state: chunk 0 is gone
}

AdversaryAction ColludingStrategy::decide(const AdversaryContext&,
                                          const audit::Challenge& chal) const {
  // Keyed only by the group seed and the challenge: every ring member with
  // the same group_seed strikes on correlated coins, piling cross-key
  // failures into the same settlement window.
  return mix64(group_seed_ ^ fold(chal.c1)) % 1000 < cheat_permille_
             ? AdversaryAction::CorruptProof
             : AdversaryAction::Honest;
}

std::string ColludingStrategy::describe() const {
  std::ostringstream out;
  out << "colluding(group=" << group_seed_ << ", cheat=" << cheat_permille_
      << "/1000)";
  return out.str();
}

// ---------------------------------------------------------------- Selective

SelectiveStrategy::SelectiveStrategy(std::uint64_t seed,
                                     std::uint64_t value_threshold,
                                     std::uint32_t cheat_permille)
    : seed_(seed),
      value_threshold_(value_threshold),
      cheat_permille_(std::min<std::uint32_t>(cheat_permille, 1000)) {}

bool SelectiveStrategy::holds_chunk(const AdversaryContext& ctx,
                                    std::uint64_t index) const {
  // Data for cheap contracts was never fully stored.
  if (ctx.reward_per_audit * ctx.num_audits >= value_threshold_) return true;
  return index != 0;
}

AdversaryAction SelectiveStrategy::decide(const AdversaryContext& ctx,
                                          const audit::Challenge& chal) const {
  if (ctx.reward_per_audit * ctx.num_audits >= value_threshold_) {
    return AdversaryAction::Honest;  // premium contracts are served honestly
  }
  return mix64(seed_ ^ fold(chal.c1) ^ ctx.deployment) % 1000 < cheat_permille_
             ? AdversaryAction::CorruptProof
             : AdversaryAction::Honest;
}

std::string SelectiveStrategy::describe() const {
  std::ostringstream out;
  out << "selective(seed=" << seed_ << ", threshold=" << value_threshold_
      << ", cheat=" << cheat_permille_ << "/1000)";
  return out.str();
}

// ------------------------------------------------------------- SeedGrinding

SeedGrindingStrategy::SeedGrindingStrategy(std::uint64_t seed,
                                           std::size_t candidates)
    : seed_(seed), candidates_(std::max<std::size_t>(candidates, 1)) {}

AdversaryAction SeedGrindingStrategy::decide(const AdversaryContext&,
                                             const audit::Challenge&) const {
  return AdversaryAction::GrindProof;
}

std::string SeedGrindingStrategy::describe() const {
  std::ostringstream out;
  out << "seed-grinding(seed=" << seed_ << ", candidates=" << candidates_
      << ")";
  return out.str();
}

// ----------------------------------------------------------- MalformedBytes

MalformedBytesStrategy::MalformedBytesStrategy(std::uint64_t seed,
                                               std::uint32_t malformed_permille)
    : seed_(seed),
      malformed_permille_(std::min<std::uint32_t>(malformed_permille, 1000)) {}

AdversaryAction MalformedBytesStrategy::decide(
    const AdversaryContext& ctx, const audit::Challenge& chal) const {
  return mix64(seed_ ^ fold(chal.c1) ^ ctx.deployment) % 1000 <
                 malformed_permille_
             ? AdversaryAction::MalformedProof
             : AdversaryAction::Honest;
}

std::string MalformedBytesStrategy::describe() const {
  std::ostringstream out;
  out << "malformed-bytes(seed=" << seed_ << ", rate=" << malformed_permille_
      << "/1000)";
  return out.str();
}

// ------------------------------------------------------------------- Roster

AdversaryRoster AdversaryRoster::random(std::uint64_t seed,
                                        std::size_t num_providers,
                                        std::size_t max_adversaries) {
  AdversaryRoster roster;
  roster.by_provider.assign(num_providers, nullptr);
  if (num_providers == 0 || max_adversaries == 0) return roster;
  const std::uint64_t base = mix64(seed ^ 0xADE55A27ULL);
  const std::size_t count =
      1 + mix64(base) % std::min(max_adversaries, num_providers);
  // One shared group seed: every Colluding member drawn below joins it.
  const std::uint64_t group_seed = mix64(base ^ 0xC0117DE5ULL);
  std::size_t placed = 0;
  for (std::uint64_t attempt = 0; placed < count && attempt < count * 16;
       ++attempt) {
    const std::size_t p =
        mix64(base ^ (0x51D7 + attempt)) % num_providers;
    if (roster.by_provider[p]) continue;
    const std::uint64_t draw = mix64(base ^ (0xA77ACC + attempt));
    const std::uint64_t sseed = mix64(draw ^ p);
    switch (static_cast<StrategyKind>(draw % 5)) {
      case StrategyKind::PartialStorage:
        roster.by_provider[p] = std::make_shared<PartialStorageStrategy>(
            sseed, 400 + mix64(sseed ^ 1) % 500,  // stores 40%..90%
            /*answer_uncovered=*/(mix64(sseed ^ 2) & 1) != 0);
        break;
      case StrategyKind::Colluding:
        roster.by_provider[p] = std::make_shared<ColludingStrategy>(
            group_seed, 300 + mix64(sseed ^ 3) % 500);  // strikes 30%..80%
        break;
      case StrategyKind::Selective:
        // Threshold lands between the base and premium contract values of
        // the sweeps (base reward 10..20 * num_audits) so both branches run.
        roster.by_provider[p] = std::make_shared<SelectiveStrategy>(
            sseed, 30 + mix64(sseed ^ 4) % 60, 1000);
        break;
      case StrategyKind::SeedGrinding:
        roster.by_provider[p] = std::make_shared<SeedGrindingStrategy>(
            sseed, 2 + mix64(sseed ^ 5) % 3);
        break;
      case StrategyKind::MalformedBytes:
        roster.by_provider[p] = std::make_shared<MalformedBytesStrategy>(
            sseed, 300 + mix64(sseed ^ 6) % 500);
        break;
    }
    ++placed;
  }
  return roster;
}

std::size_t AdversaryRoster::adversary_count() const {
  std::size_t n = 0;
  for (const auto& s : by_provider) n += s != nullptr;
  return n;
}

std::string AdversaryRoster::describe() const {
  std::ostringstream out;
  for (std::size_t p = 0; p < by_provider.size(); ++p) {
    if (!by_provider[p]) continue;
    out << "  provider-" << p << ": " << by_provider[p]->describe() << "\n";
  }
  if (out.str().empty()) return "  (no adversaries)\n";
  return out.str();
}

}  // namespace dsaudit::attack
