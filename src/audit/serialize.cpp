#include "audit/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "field/sqrt.hpp"
#include "pairing/pairing.hpp"

namespace dsaudit::audit {

// The exported wire constants are the encodings' single source of truth;
// pin them to the struct-level sizes so neither can drift silently.
static_assert(ProofBasic::kWireSize == 2 * kG1WireBytes + kFrWireBytes);
static_assert(ProofPrivate::kWireSize ==
              2 * kG1WireBytes + kFrWireBytes + kGtWireBytes);
static_assert(AggregateSettlement::kHeaderBytes ==
              32 /*seed*/ + 3 * kU64WireBytes + kG1WireBytes);

namespace {

using ff::Fp;
using ff::Fp2;
using ff::Fp6;

void write_fp6(const Fp6& a, std::uint8_t* out) {
  const Fp* coords[6] = {&a.c0.c0, &a.c0.c1, &a.c1.c0, &a.c1.c1, &a.c2.c0, &a.c2.c1};
  for (int i = 0; i < 6; ++i) {
    coords[i]->to_be_bytes(std::span<std::uint8_t, 32>(out + 32 * i, 32));
  }
}

std::optional<Fp6> read_fp6(const std::uint8_t* in) {
  ff::Fp coords[6];
  for (int i = 0; i < 6; ++i) {
    ff::U256 v = ff::U256::from_be_bytes(
        std::span<const std::uint8_t, 32>(in + 32 * i, 32));
    if (!bigint::lt(v, Fp::modulus())) return std::nullopt;  // non-canonical
    coords[i] = Fp::from_u256(v);
  }
  return Fp6{Fp2{coords[0], coords[1]}, Fp2{coords[2], coords[3]},
             Fp2{coords[4], coords[5]}};
}

/// Deterministic sign: lexicographic comparison of canonical encodings.
bool fp6_lex_greater(const Fp6& a, const Fp6& b) {
  std::uint8_t ab[192], bb[192];
  write_fp6(a, ab);
  write_fp6(b, bb);
  return std::lexicographical_compare(bb, bb + 192, ab, ab + 192);
}

const Fp6& v_element() {
  static const Fp6 v{Fp2::zero(), Fp2::one(), Fp2::zero()};
  return v;
}

Fr read_fr(const std::uint8_t* in) {
  // Scalars are transmitted canonically; out-of-range values are rejected by
  // the caller via the NonCanonicalScalar path before this is reached.
  return Fr::from_u256(
      ff::U256::from_be_bytes(std::span<const std::uint8_t, 32>(in, 32)));
}

bool fr_canonical(const std::uint8_t* in) {
  ff::U256 v = ff::U256::from_be_bytes(std::span<const std::uint8_t, 32>(in, 32));
  return bigint::lt(v, Fr::modulus());
}

}  // namespace

const char* to_string(DecodeError error) {
  switch (error) {
    case DecodeError::None: return "none";
    case DecodeError::BadLength: return "bad-length";
    case DecodeError::BadStructure: return "bad-structure";
    case DecodeError::NonCanonicalScalar: return "non-canonical-scalar";
    case DecodeError::BadPoint: return "bad-point";
    case DecodeError::BadGtElement: return "bad-gt-element";
    case DecodeError::ZeroForbidden: return "zero-forbidden";
  }
  return "?";
}

std::array<std::uint8_t, 192> gt_compress(const Fp12& g) {
  // Unit-norm check: a^2 - v b^2 == 1.
  Fp6 norm = g.c0.square() - g.c1.square().mul_by_v();
  if (!norm.is_one()) {
    throw std::invalid_argument("gt_compress: element is not unit-norm GT");
  }
  std::array<std::uint8_t, 192> out{};
  write_fp6(g.c0, out.data());
  // Flags in the spare top bits of the first coordinate (Fp < 2^254).
  if (g.c1.is_zero()) {
    out[0] |= 0x80;  // b == 0: g = a with a^2 = 1
  } else if (fp6_lex_greater(g.c1, -g.c1)) {
    out[0] |= 0x40;
  }
  return out;
}

DecodeResult<Fp12> gt_decode(std::span<const std::uint8_t, 192> bytes) {
  using R = DecodeResult<Fp12>;
  std::array<std::uint8_t, 192> buf;
  std::copy(bytes.begin(), bytes.end(), buf.begin());
  bool b_zero = (buf[0] & 0x80) != 0;
  bool b_greater = (buf[0] & 0x40) != 0;
  buf[0] &= 0x3f;
  auto a = read_fp6(buf.data());
  if (!a) return R::failure(DecodeError::BadGtElement);
  Fp12 g;
  if (b_zero) {
    if (b_greater) return R::failure(DecodeError::BadGtElement);
    if (!a->square().is_one()) return R::failure(DecodeError::BadGtElement);
    g = Fp12{*a, Fp6::zero()};
  } else {
    // b^2 = (a^2 - 1) / v
    Fp6 b2 = (a->square() - Fp6::one()) * v_element().inverse();
    auto b = ff::sqrt(b2);
    if (!b || b->is_zero()) return R::failure(DecodeError::BadGtElement);
    Fp6 chosen = (fp6_lex_greater(*b, -*b) == b_greater) ? *b : -*b;
    g = Fp12{*a, chosen};
  }
  // Unit norm (established above) is necessary but not sufficient: it admits
  // the whole order-(p^6+1) subgroup. Only genuine pairing outputs — the
  // order-r subgroup — deserialize.
  if (!pairing::gt_in_subgroup(g)) return R::failure(DecodeError::BadGtElement);
  return R::success(g);
}

std::optional<Fp12> gt_decompress(std::span<const std::uint8_t, 192> bytes) {
  return gt_decode(bytes).value;
}

std::vector<std::uint8_t> serialize(const ProofBasic& proof) {
  std::vector<std::uint8_t> out(ProofBasic::kWireSize);
  auto s = curve::g1_compress(proof.sigma);
  std::memcpy(out.data(), s.data(), 32);
  proof.y.to_be_bytes(std::span<std::uint8_t, 32>(out.data() + 32, 32));
  auto p = curve::g1_compress(proof.psi);
  std::memcpy(out.data() + 64, p.data(), 32);
  return out;
}

DecodeResult<ProofBasic> decode_basic(std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<ProofBasic>;
  if (bytes.size() != ProofBasic::kWireSize) {
    return R::failure(DecodeError::BadLength);
  }
  auto sigma = curve::g1_decompress(
      std::span<const std::uint8_t, 32>(bytes.data(), 32));
  if (!sigma) return R::failure(DecodeError::BadPoint);
  if (!fr_canonical(bytes.data() + 32)) {
    return R::failure(DecodeError::NonCanonicalScalar);
  }
  auto psi = curve::g1_decompress(
      std::span<const std::uint8_t, 32>(bytes.data() + 64, 32));
  if (!psi) return R::failure(DecodeError::BadPoint);
  return R::success(ProofBasic{*sigma, read_fr(bytes.data() + 32), *psi});
}

std::optional<ProofBasic> deserialize_basic(std::span<const std::uint8_t> bytes) {
  return decode_basic(bytes).value;
}

std::vector<std::uint8_t> serialize(const ProofPrivate& proof) {
  std::vector<std::uint8_t> out(ProofPrivate::kWireSize);
  auto s = curve::g1_compress(proof.sigma);
  std::memcpy(out.data(), s.data(), 32);
  proof.y_prime.to_be_bytes(std::span<std::uint8_t, 32>(out.data() + 32, 32));
  auto p = curve::g1_compress(proof.psi);
  std::memcpy(out.data() + 64, p.data(), 32);
  auto r = gt_compress(proof.big_r);
  std::memcpy(out.data() + 96, r.data(), 192);
  return out;
}

DecodeResult<ProofPrivate> decode_private(std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<ProofPrivate>;
  if (bytes.size() != ProofPrivate::kWireSize) {
    return R::failure(DecodeError::BadLength);
  }
  auto sigma = curve::g1_decompress(
      std::span<const std::uint8_t, 32>(bytes.data(), 32));
  if (!sigma) return R::failure(DecodeError::BadPoint);
  if (!fr_canonical(bytes.data() + 32)) {
    return R::failure(DecodeError::NonCanonicalScalar);
  }
  auto psi = curve::g1_decompress(
      std::span<const std::uint8_t, 32>(bytes.data() + 64, 32));
  if (!psi) return R::failure(DecodeError::BadPoint);
  auto big_r = gt_decode(
      std::span<const std::uint8_t, 192>(bytes.data() + 96, 192));
  if (!big_r) return R::failure(big_r.error);
  return R::success(
      ProofPrivate{*sigma, read_fr(bytes.data() + 32), *psi, *big_r});
}

std::optional<ProofPrivate> deserialize_private(std::span<const std::uint8_t> bytes) {
  return decode_private(bytes).value;
}

std::vector<std::uint8_t> serialize(const PublicKey& pk, bool with_privacy) {
  std::vector<std::uint8_t> out;
  out.reserve(pk.serialized_size(with_privacy));
  // s as 8-byte big-endian.
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(pk.s >> (8 * i)));
  }
  auto eps = curve::g2_compress(pk.epsilon);
  out.insert(out.end(), eps.begin(), eps.end());
  auto del = curve::g2_compress(pk.delta);
  out.insert(out.end(), del.begin(), del.end());
  for (const auto& p : pk.g1_alpha_powers) {
    auto b = curve::g1_compress(p);
    out.insert(out.end(), b.begin(), b.end());
  }
  if (with_privacy) {
    auto r = gt_compress(pk.e_g1_epsilon);
    out.insert(out.end(), r.begin(), r.end());
  }
  return out;
}

DecodeResult<PublicKey> decode_public_key(std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<PublicKey>;
  // Smallest well-formed key: s (8) + two G2 points (128) + one G1 power (32).
  if (bytes.size() < 8 + 64 + 64 + 32) return R::failure(DecodeError::BadLength);
  PublicKey pk;
  pk.s = 0;
  for (int i = 0; i < 8; ++i) pk.s = (pk.s << 8) | bytes[i];
  if (pk.s == 0) return R::failure(DecodeError::ZeroForbidden);  // keygen: s >= 1
  std::size_t power_count = pk.s >= 2 ? pk.s - 1 : 1;
  // The wire's s field is 64 bits of attacker-controlled input: prove the
  // claimed power count fits the buffer BEFORE it sizes any arithmetic —
  // 32 * power_count must not be allowed to overflow into a small "base"
  // that happens to match bytes.size().
  if (power_count > (bytes.size() - 136) / 32) {
    return R::failure(DecodeError::BadStructure);
  }
  std::size_t base = 8 + 64 + 64 + 32 * power_count;
  bool with_privacy;
  if (bytes.size() == base) {
    with_privacy = false;
  } else if (bytes.size() == base + 192) {
    with_privacy = true;
  } else {
    return R::failure(DecodeError::BadStructure);
  }
  auto eps = curve::g2_decompress(
      std::span<const std::uint8_t, 64>(bytes.data() + 8, 64));
  auto del = curve::g2_decompress(
      std::span<const std::uint8_t, 64>(bytes.data() + 72, 64));
  if (!eps || !del) return R::failure(DecodeError::BadPoint);
  // epsilon = g2^x, delta = g2^{alpha x} with x, alpha nonzero: the identity
  // is never a legitimate key component, and accepting it would neuter every
  // pairing check against this key.
  if (eps->is_infinity() || del->is_infinity()) {
    return R::failure(DecodeError::ZeroForbidden);
  }
  pk.epsilon = *eps;
  pk.delta = *del;
  pk.g1_alpha_powers.reserve(power_count);
  for (std::size_t j = 0; j < power_count; ++j) {
    auto p = curve::g1_decompress(std::span<const std::uint8_t, 32>(
        bytes.data() + 136 + 32 * j, 32));
    if (!p) return R::failure(DecodeError::BadPoint);
    pk.g1_alpha_powers.push_back(*p);
  }
  if (with_privacy) {
    auto r = gt_decode(
        std::span<const std::uint8_t, 192>(bytes.data() + base, 192));
    if (!r) return R::failure(r.error);
    pk.e_g1_epsilon = *r;
  } else {
    // Recomputable from epsilon; one pairing.
    pk.e_g1_epsilon = Fp12::zero();  // sentinel: filled by caller if needed
  }
  return R::success(std::move(pk));
}

std::optional<PublicKey> deserialize_public_key(std::span<const std::uint8_t> bytes) {
  return decode_public_key(bytes).value;
}

namespace {

void write_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

void write_fr(std::vector<std::uint8_t>& out, const Fr& v) {
  auto b = v.to_bytes();
  out.insert(out.end(), b.begin(), b.end());
}

}  // namespace

std::vector<std::uint8_t> serialize(const SecretKey& sk) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  write_fr(out, sk.x);
  write_fr(out, sk.alpha);
  return out;
}

DecodeResult<SecretKey> decode_secret_key(std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<SecretKey>;
  if (bytes.size() != 64) return R::failure(DecodeError::BadLength);
  if (!fr_canonical(bytes.data()) || !fr_canonical(bytes.data() + 32)) {
    return R::failure(DecodeError::NonCanonicalScalar);
  }
  SecretKey sk;
  sk.x = read_fr(bytes.data());
  sk.alpha = read_fr(bytes.data() + 32);
  if (sk.x.is_zero() || sk.alpha.is_zero()) {
    return R::failure(DecodeError::ZeroForbidden);
  }
  return R::success(sk);
}

std::optional<SecretKey> deserialize_secret_key(std::span<const std::uint8_t> bytes) {
  return decode_secret_key(bytes).value;
}

std::vector<std::uint8_t> serialize(const FileTag& tag) {
  std::vector<std::uint8_t> out;
  out.reserve(48 + 32 * tag.sigmas.size());
  write_fr(out, tag.name);
  write_u64(out, tag.s);
  write_u64(out, tag.num_chunks);
  for (const auto& sigma : tag.sigmas) {
    auto b = curve::g1_compress(sigma);
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

DecodeResult<FileTag> decode_file_tag(std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<FileTag>;
  if (bytes.size() < 48) return R::failure(DecodeError::BadLength);
  if (!fr_canonical(bytes.data())) {
    return R::failure(DecodeError::NonCanonicalScalar);
  }
  FileTag tag;
  tag.name = read_fr(bytes.data());
  tag.s = read_u64(bytes.data() + 32);
  tag.num_chunks = read_u64(bytes.data() + 40);
  // num_chunks is 64 bits off the wire: bound it by what the buffer can
  // actually hold before it sizes anything (32 * num_chunks must not wrap
  // around into a length that matches a short buffer).
  if (tag.num_chunks > (bytes.size() - 48) / 32) {
    return R::failure(DecodeError::BadStructure);
  }
  if (bytes.size() != 48 + 32 * tag.num_chunks) {
    return R::failure(DecodeError::BadStructure);
  }
  tag.sigmas.reserve(tag.num_chunks);
  for (std::size_t i = 0; i < tag.num_chunks; ++i) {
    auto p = curve::g1_decompress(
        std::span<const std::uint8_t, 32>(bytes.data() + 48 + 32 * i, 32));
    if (!p) return R::failure(DecodeError::BadPoint);
    tag.sigmas.push_back(*p);
  }
  return R::success(std::move(tag));
}

std::optional<FileTag> deserialize_file_tag(std::span<const std::uint8_t> bytes) {
  return decode_file_tag(bytes).value;
}

std::vector<std::uint8_t> serialize(const Challenge& chal) {
  std::vector<std::uint8_t> out;
  out.reserve(104);
  out.insert(out.end(), chal.c1.begin(), chal.c1.end());
  out.insert(out.end(), chal.c2.begin(), chal.c2.end());
  write_fr(out, chal.r);
  write_u64(out, chal.k);
  return out;
}

DecodeResult<Challenge> decode_challenge(std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<Challenge>;
  if (bytes.size() != 104) return R::failure(DecodeError::BadLength);
  if (!fr_canonical(bytes.data() + 64)) {
    return R::failure(DecodeError::NonCanonicalScalar);
  }
  Challenge chal;
  std::copy(bytes.begin(), bytes.begin() + 32, chal.c1.begin());
  std::copy(bytes.begin() + 32, bytes.begin() + 64, chal.c2.begin());
  chal.r = read_fr(bytes.data() + 64);
  chal.k = read_u64(bytes.data() + 96);
  if (chal.k == 0) return R::failure(DecodeError::ZeroForbidden);
  return R::success(chal);
}

std::optional<Challenge> deserialize_challenge(std::span<const std::uint8_t> bytes) {
  return decode_challenge(bytes).value;
}

std::vector<std::uint8_t> serialize(const AggregateSettlement& agg) {
  if (agg.outcomes.size() != AggregateSettlement::bitmap_bytes(agg.rounds)) {
    throw std::invalid_argument(
        "serialize(AggregateSettlement): bitmap size mismatch");
  }
  std::vector<std::uint8_t> out;
  out.reserve(agg.serialized_size());
  out.insert(out.end(), agg.weight_seed.begin(), agg.weight_seed.end());
  write_u64(out, agg.seed_nonce);
  write_u64(out, agg.window_boundary);
  write_u64(out, agg.rounds);
  auto op = curve::g1_compress(agg.opening);
  out.insert(out.end(), op.begin(), op.end());
  out.insert(out.end(), agg.outcomes.begin(), agg.outcomes.end());
  return out;
}

DecodeResult<AggregateSettlement> decode_aggregate_settlement(
    std::span<const std::uint8_t> bytes) {
  using R = DecodeResult<AggregateSettlement>;
  constexpr std::size_t header = AggregateSettlement::kHeaderBytes;
  if (bytes.size() < header) return R::failure(DecodeError::BadLength);
  AggregateSettlement agg;
  std::copy(bytes.begin(), bytes.begin() + 32, agg.weight_seed.begin());
  agg.seed_nonce = read_u64(bytes.data() + 32);
  agg.window_boundary = read_u64(bytes.data() + 40);
  agg.rounds = read_u64(bytes.data() + 48);
  if (agg.rounds == 0) return R::failure(DecodeError::ZeroForbidden);
  // rounds is 64 bits off the wire: bound it by what the buffer can actually
  // hold before it sizes the bitmap (the division form cannot wrap, unlike
  // header + rounds/8 + 1 arithmetic on attacker-chosen counts).
  const std::size_t bitmap = AggregateSettlement::bitmap_bytes(agg.rounds);
  if (agg.rounds / 8 > bytes.size() || bitmap != bytes.size() - header) {
    return R::failure(DecodeError::BadStructure);
  }
  auto p = curve::g1_decompress(
      std::span<const std::uint8_t, 32>(bytes.data() + 56, 32));
  if (!p) return R::failure(DecodeError::BadPoint);
  agg.opening = *p;
  agg.outcomes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(header),
                      bytes.end());
  // Canonicality: bits past `rounds` in the last bitmap byte must be zero,
  // so every accepted encoding round-trips bit-exactly.
  if (agg.rounds % 8 != 0) {
    const std::uint8_t tail_mask =
        static_cast<std::uint8_t>(0xFFu << (agg.rounds % 8));
    if ((agg.outcomes.back() & tail_mask) != 0) {
      return R::failure(DecodeError::BadStructure);
    }
  }
  return R::success(std::move(agg));
}

std::optional<AggregateSettlement> deserialize_aggregate_settlement(
    std::span<const std::uint8_t> bytes) {
  return decode_aggregate_settlement(bytes).value;
}

}  // namespace dsaudit::audit
