// Wire formats: what actually lands on the blockchain.
//
//   ProofBasic   -> 96 bytes  (sigma 32 | y 32 | psi 32)      — Fig. 5 "w/o"
//   ProofPrivate -> 288 bytes (sigma 32 | y' 32 | psi 32 | R 192) — Table II
//
// GT compression: after the final exponentiation every GT element g = a + bw
// (a, b in Fp6) satisfies g * conj(g) = 1, i.e. a^2 - v b^2 = 1. We ship
// only a (6 Fp = 192 bytes = the paper's "|GT| = 1536 bits") plus a sign bit
// for b, recovered on decode by b = sqrt((a^2 - 1)/v) in Fp6.
#pragma once

#include <optional>
#include <vector>

#include "audit/types.hpp"

namespace dsaudit::audit {

/// 192-byte encoding of a unit-norm (cyclotomic-subgroup) GT element.
/// Throws std::invalid_argument if the element is not unit-norm.
std::array<std::uint8_t, 192> gt_compress(const Fp12& g);
/// nullopt on malformed input (non-canonical coordinates, (a^2-1)/v not a
/// square, bad flag bits).
std::optional<Fp12> gt_decompress(std::span<const std::uint8_t, 192> bytes);

std::vector<std::uint8_t> serialize(const ProofBasic& proof);
std::optional<ProofBasic> deserialize_basic(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> serialize(const ProofPrivate& proof);
std::optional<ProofPrivate> deserialize_private(std::span<const std::uint8_t> bytes);

/// Public key serialization (the Initialize-phase on-chain record, Fig. 4).
std::vector<std::uint8_t> serialize(const PublicKey& pk, bool with_privacy);
std::optional<PublicKey> deserialize_public_key(std::span<const std::uint8_t> bytes);

/// Secret key (64 bytes: x || alpha) — off-chain, for the owner's keystore.
std::vector<std::uint8_t> serialize(const SecretKey& sk);
std::optional<SecretKey> deserialize_secret_key(std::span<const std::uint8_t> bytes);

/// File tag: name (32) || s (8) || num_chunks (8) || compressed sigmas.
std::vector<std::uint8_t> serialize(const FileTag& tag);
std::optional<FileTag> deserialize_file_tag(std::span<const std::uint8_t> bytes);

/// Challenge: c1 (32) || c2 (32) || r (32) || k (8) — what the contract posts
/// plus the agreed k.
std::vector<std::uint8_t> serialize(const Challenge& chal);
std::optional<Challenge> deserialize_challenge(std::span<const std::uint8_t> bytes);

}  // namespace dsaudit::audit
