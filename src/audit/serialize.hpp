// Wire formats: what actually lands on the blockchain.
//
//   ProofBasic   -> 96 bytes  (sigma 32 | y 32 | psi 32)      — Fig. 5 "w/o"
//   ProofPrivate -> 288 bytes (sigma 32 | y' 32 | psi 32 | R 192) — Table II
//
// GT compression: after the final exponentiation every GT element g = a + bw
// (a, b in Fp6) satisfies g * conj(g) = 1, i.e. a^2 - v b^2 = 1. We ship
// only a (6 Fp = 192 bytes = the paper's "|GT| = 1536 bits") plus a sign bit
// for b, recovered on decode by b = sqrt((a^2 - 1)/v) in Fp6.
//
// Untrusted-bytes boundary: every decode_* function treats its input as
// adversary-controlled. Buffers are bounds-checked BEFORE any length field is
// trusted (a wire length field never sizes a read or an allocation until it
// has been proven consistent with the buffer it arrived in), every field
// element must be canonical, every point on-curve, every GT element in the
// order-r subgroup — and the reason for a rejection comes back as a typed
// DecodeError instead of a bare nullopt, so callers (and the fuzz corpus)
// can assert WHY bytes were refused. The legacy deserialize_* wrappers keep
// their std::optional shape and delegate.
#pragma once

#include <optional>
#include <vector>

#include "audit/types.hpp"

namespace dsaudit::audit {

/// Primitive wire sizes every encoder in this file is built from, exposed so
/// payload accounting elsewhere (contract tx sizes, econ chain-growth
/// models) derives from the same constants the serializers use instead of
/// re-hardcoding the numbers. serialize.cpp static_asserts tie them to the
/// actual encodings (e.g. ProofBasic::kWireSize == 2 G1 + 1 Fr).
inline constexpr std::size_t kFrWireBytes = 32;   // canonical big-endian Fr
inline constexpr std::size_t kU64WireBytes = 8;   // big-endian length/count
inline constexpr std::size_t kG1WireBytes = 32;   // compressed G1 point
inline constexpr std::size_t kG2WireBytes = 64;   // compressed G2 point
inline constexpr std::size_t kGtWireBytes = 192;  // Fp6-compressed GT element

/// Why a decode refused its input. One enumerator per distinct boundary
/// check, so tests can pin the exact rejection path.
enum class DecodeError {
  None = 0,
  /// Buffer length matches no valid encoding (truncated or oversized).
  BadLength,
  /// An internal count/length field is inconsistent with the buffer that
  /// carried it (e.g. a FileTag whose num_chunks claims more sigmas than
  /// the buffer could possibly hold).
  BadStructure,
  /// A scalar field is >= the group order r (non-canonical encoding).
  NonCanonicalScalar,
  /// A curve point failed to decode: non-canonical x coordinate, x not on
  /// the curve, or malformed infinity/sign flag bits.
  BadPoint,
  /// A compressed GT element failed to decode: non-canonical Fp6
  /// coordinates, (a^2-1)/v not a square, inconsistent flag bits, or the
  /// recovered element outside the order-r pairing subgroup.
  BadGtElement,
  /// A field that the protocol requires to be nonzero (s, k, secret-key
  /// components, the key's G2 points) decoded to zero/identity.
  ZeroForbidden,
};

const char* to_string(DecodeError error);

/// Decoded value or the first boundary check that refused the bytes.
/// Exactly one of (value, error != None) is set.
template <typename T>
struct DecodeResult {
  std::optional<T> value;
  DecodeError error = DecodeError::None;

  bool ok() const { return value.has_value(); }
  explicit operator bool() const { return ok(); }
  const T& operator*() const { return *value; }
  const T* operator->() const { return &*value; }

  static DecodeResult success(T v) { return {std::move(v), DecodeError::None}; }
  static DecodeResult failure(DecodeError e) { return {std::nullopt, e}; }
};

/// 192-byte encoding of a unit-norm (cyclotomic-subgroup) GT element.
/// Throws std::invalid_argument if the element is not unit-norm.
std::array<std::uint8_t, 192> gt_compress(const Fp12& g);
/// Typed decode; BadGtElement on any malformed input (non-canonical
/// coordinates, (a^2-1)/v not a square, bad flag bits, outside the order-r
/// subgroup).
DecodeResult<Fp12> gt_decode(std::span<const std::uint8_t, 192> bytes);
/// nullopt-shaped wrapper over gt_decode.
std::optional<Fp12> gt_decompress(std::span<const std::uint8_t, 192> bytes);

std::vector<std::uint8_t> serialize(const ProofBasic& proof);
DecodeResult<ProofBasic> decode_basic(std::span<const std::uint8_t> bytes);
std::optional<ProofBasic> deserialize_basic(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> serialize(const ProofPrivate& proof);
DecodeResult<ProofPrivate> decode_private(std::span<const std::uint8_t> bytes);
std::optional<ProofPrivate> deserialize_private(std::span<const std::uint8_t> bytes);

/// Public key serialization (the Initialize-phase on-chain record, Fig. 4).
std::vector<std::uint8_t> serialize(const PublicKey& pk, bool with_privacy);
DecodeResult<PublicKey> decode_public_key(std::span<const std::uint8_t> bytes);
std::optional<PublicKey> deserialize_public_key(std::span<const std::uint8_t> bytes);

/// Secret key (64 bytes: x || alpha) — off-chain, for the owner's keystore.
std::vector<std::uint8_t> serialize(const SecretKey& sk);
DecodeResult<SecretKey> decode_secret_key(std::span<const std::uint8_t> bytes);
std::optional<SecretKey> deserialize_secret_key(std::span<const std::uint8_t> bytes);

/// File tag: name (32) || s (8) || num_chunks (8) || compressed sigmas.
std::vector<std::uint8_t> serialize(const FileTag& tag);
DecodeResult<FileTag> decode_file_tag(std::span<const std::uint8_t> bytes);
std::optional<FileTag> deserialize_file_tag(std::span<const std::uint8_t> bytes);

/// Challenge: c1 (32) || c2 (32) || r (32) || k (8) — what the contract posts
/// plus the agreed k.
std::vector<std::uint8_t> serialize(const Challenge& chal);
DecodeResult<Challenge> decode_challenge(std::span<const std::uint8_t> bytes);
std::optional<Challenge> deserialize_challenge(std::span<const std::uint8_t> bytes);

/// Aggregate settlement tx: seed (32) || boundary (8) || rounds (8) ||
/// opening (32, compressed G1) || outcome bitmap (ceil(rounds/8)).
/// `rounds` is a full 64-bit wire field and is bounded against the buffer
/// BEFORE it sizes the bitmap; rounds == 0 is ZeroForbidden (an empty window
/// never posts), a nonzero trailing bitmap bit is BadStructure (encodings
/// are canonical and round-trip bit-exactly).
std::vector<std::uint8_t> serialize(const AggregateSettlement& agg);
DecodeResult<AggregateSettlement> decode_aggregate_settlement(
    std::span<const std::uint8_t> bytes);
std::optional<AggregateSettlement> deserialize_aggregate_settlement(
    std::span<const std::uint8_t> bytes);

}  // namespace dsaudit::audit
