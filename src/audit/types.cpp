#include "audit/types.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "primitives/keccak256.hpp"
#include "primitives/prp.hpp"

namespace dsaudit::audit {

std::size_t PublicKey::serialized_size(bool with_privacy) const {
  // Compressed wire sizes: G2 = 64 B, G1 = 32 B each, GT = 192 B, plus the
  // chunk-size parameter (8 B).
  std::size_t base = 8 + 64 + 64 + 32 * g1_alpha_powers.size();
  return with_privacy ? base + 192 : base;
}

ExpandedChallenge expand_challenge(const Challenge& chal, std::size_t d) {
  if (d == 0) throw std::invalid_argument("expand_challenge: empty file");
  if (chal.k == 0) throw std::invalid_argument("expand_challenge: k must be >= 1");
  ExpandedChallenge out;
  out.indices = primitives::challenge_indices(chal.c1, d, chal.k);
  out.coefficients.reserve(out.indices.size());
  for (std::size_t j = 0; j < out.indices.size(); ++j) {
    auto bytes = primitives::prf_bytes(chal.c2, j);
    out.coefficients.push_back(Fr::from_be_bytes_mod(bytes));
  }
  return out;
}

G1 chunk_hash(const Fr& name, std::uint64_t index) {
  std::uint8_t buf[32 + 2 + 8];
  auto nb = name.to_bytes();
  std::memcpy(buf, nb.data(), 32);
  buf[32] = '|';
  buf[33] = '|';
  for (int i = 0; i < 8; ++i) buf[34 + i] = static_cast<std::uint8_t>(index >> (8 * (7 - i)));
  return curve::hash_to_g1(std::span<const std::uint8_t>(buf, sizeof(buf)));
}

Fr hash_gt_to_fr(const Fp12& value) {
  // Canonical serialization of all 12 Fp coefficients, then Keccak, then
  // reduce mod r. Domain-separated.
  primitives::Keccak256 h;
  const char* tag = "dsaudit-Hprime-GT";
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(tag), std::strlen(tag)));
  const ff::Fp2* coords[6] = {&value.c0.c0, &value.c0.c1, &value.c0.c2,
                              &value.c1.c0, &value.c1.c1, &value.c1.c2};
  for (const auto* c : coords) {
    auto bytes = c->to_bytes();
    h.update(bytes);
  }
  auto digest = h.finalize();
  return Fr::from_be_bytes_mod(digest);
}

std::size_t chunks_for_confidence(double confidence, double corruption_rate) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("chunks_for_confidence: confidence must be in (0,1)");
  }
  if (corruption_rate <= 0.0 || corruption_rate >= 1.0) {
    throw std::invalid_argument("chunks_for_confidence: corruption rate must be in (0,1)");
  }
  double k = std::log(1.0 - confidence) / std::log(1.0 - corruption_rate);
  return static_cast<std::size_t>(std::ceil(k));
}

}  // namespace dsaudit::audit
