// KeyGen, tag generation, proving and verification — the paper's §V main
// protocol, both without on-chain privacy (Eq. 1) and with it (Eq. 2).
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "audit/types.hpp"
#include "curve/point.hpp"
#include "pairing/pairing.hpp"
#include "primitives/random.hpp"

namespace dsaudit::audit {

/// D's Initialize phase key generation. s is the storage/computation
/// trade-off parameter (extra provider storage is 1/s of the file).
KeyPair keygen(std::size_t s, primitives::SecureRng& rng);

/// D computes sigma_i = (g1^{M_i(alpha)} * H(name||i))^x for every chunk;
/// `threads` > 1 parallelizes across chunks (the paper's quad-core numbers).
FileTag generate_tags(const SecretKey& sk, const PublicKey& pk,
                      const storage::EncodedFile& file, const Fr& name,
                      unsigned threads = 1);

/// S's acceptance check before acking the contract: every authenticator
/// verifies against the public key (e(sigma_i, g2) == e(g1^{M_i(alpha)}
/// H(name||i), epsilon), computed via the SRS without alpha).
/// "the chance of D forging authenticators is negligible after this check".
bool verify_tags(const PublicKey& pk, const storage::EncodedFile& file,
                 const FileTag& tag);

/// Phase timings for the Fig. 8 breakdown (milliseconds).
struct ProverTimings {
  double zp_ms = 0;   // finite-field work: P_k aggregation + quotient
  double ecc_ms = 0;  // curve work: the two MSMs
  double gt_ms = 0;   // privacy extras: R = e(g1,eps)^z and y'
};

class Prover {
 public:
  /// Borrows all three for the Prover's lifetime; the caller must keep them
  /// alive AND at stable addresses (beware std::vector reallocation of
  /// KeyPair/EncodedFile/FileTag holders). Construction also builds the
  /// prepared shifted-base MSM tables for pk.g1_alpha_powers (the psi MSM),
  /// a one-time ~254 doublings per SRS power that every prove() amortizes;
  /// pass prepare_psi = false to skip it for one-shot provers.
  ///
  /// prepare_sigma additionally builds the same kind of table over the tag
  /// sigmas, turning the sigma MSM into a table-driven subset MSM over the
  /// challenged indices (mirroring what PreparedFile does for the
  /// verifier's chi). Opt-in: the build costs ~254 doublings per chunk and
  /// ~positions * num_chunks * 72 bytes of memory, which only a prover
  /// serving many rounds of one contract amortizes (NetworkSim does).
  Prover(const PublicKey& pk, const storage::EncodedFile& file,
         const FileTag& tag, bool prepare_psi = true,
         bool prepare_sigma = false);

  /// Non-private response (Eq. 1 inputs).
  ProofBasic prove(const Challenge& chal, ProverTimings* timings = nullptr) const;

  /// Privacy-assured response (Eq. 2 inputs, §V-D).
  ProofPrivate prove_private(const Challenge& chal, primitives::SecureRng& rng,
                             ProverTimings* timings = nullptr) const;

 private:
  /// Shared non-private core: expands the challenge, aggregates
  /// P_k coefficients and sigma, computes psi and y = P_k(r).
  struct Core {
    G1 sigma;
    Fr y;
    G1 psi;
  };
  Core core(const Challenge& chal, ProverTimings* timings) const;

  const PublicKey& pk_;
  const storage::EncodedFile& file_;
  const FileTag& tag_;
  std::shared_ptr<const curve::MsmBasesTable<G1>> psi_key_;
  std::shared_ptr<const curve::MsmBasesTable<G1>> sigma_key_;
};

/// One audit instance for batch verification (same pk, e.g. one provider
/// holding many files of one owner, or sequential rounds settled together).
struct BasicInstance {
  Fr name;
  std::size_t num_chunks = 0;
  Challenge challenge;
  ProofBasic proof;
};

/// Per-file verification context: the d chunk hash points H(name||i) with a
/// shifted-base MSM table over them. Each round's chi = prod H(name||i)^{c_i}
/// becomes a table-driven subset MSM instead of d hash-to-curve evaluations
/// plus a cold MSM — with the prepared pairings, this is the other half of
/// making repeated rounds cheap. Build cost is one hash + ~254 doublings per
/// chunk; memory is ~positions * d * 72 bytes (a few MB per 10k chunks), paid
/// once per audited file (the contract holds one for its lifetime).
struct PreparedFile {
  // Identity of the file the table was built for. verify() trusts the
  // context it is handed (the hashes already encode the name), so callers
  // routing several audited files must key their lookup on this field — a
  // wrong context makes honest proofs fail with no other diagnostic.
  Fr name;
  std::size_t num_chunks = 0;
  curve::MsmBasesTable<G1> hashes;  // bases: H(name||i), i = 0..d-1
};
PreparedFile prepare_file(const Fr& name, std::size_t num_chunks);

/// The prepared verification engine for one public key: caches the Miller
/// line tables of the three fixed G2 points (g2, epsilon, delta) once and
/// routes all four audit checks through them. Every verification equation is
/// rearranged with e(-psi, delta * eps^{-r}) = e(-psi, delta) * e([r]psi,
/// eps), which moves the per-round challenge scalar to the cheap G1 side —
/// so no check ever pairs against a fresh G2 point or performs a G2 scalar
/// multiplication. This is the object a contract (or any service auditing
/// many rounds against one key) should hold for its lifetime.
///
/// Borrows the PublicKey — the caller keeps it alive and at a stable
/// address, the same contract as Prover.
class Verifier {
 public:
  explicit Verifier(const PublicKey& pk);

  const PublicKey& pk() const { return pk_; }

  /// S's tag-acceptance check (see free verify_tags below).
  bool verify_tags(const storage::EncodedFile& file, const FileTag& tag) const;

  /// The smart contract's Eq. 1 check (3 prepared pairings, shared
  /// squarings, one final exp).
  bool verify(const Fr& name, std::size_t num_chunks, const Challenge& chal,
              const ProofBasic& proof) const;
  /// Same check against a prepared per-file context (cached hash table).
  bool verify(const PreparedFile& file, const Challenge& chal,
              const ProofBasic& proof) const;

  /// The smart contract's Eq. 2 check (§V-D step 2).
  bool verify_private(const Fr& name, std::size_t num_chunks,
                      const Challenge& chal, const ProofPrivate& proof) const;
  bool verify_private(const PreparedFile& file, const Challenge& chal,
                      const ProofPrivate& proof) const;

  /// Batch Eq. 1 verification; with the challenge scalars folded into G1,
  /// ALL terms aggregate per fixed G2 point — 3 pairings total for any
  /// number of instances (the old path needed N + 2). Routed through the
  /// cross-key settlement engine (verify_settlement below); true iff every
  /// instance verifies.
  bool verify_batch(std::span<const BasicInstance> instances,
                    primitives::SecureRng& rng) const;

  /// The prepared fixed-G2 line tables, exposed for the settlement engine
  /// (it aggregates many verifiers' terms into one multi-pairing).
  const pairing::G2Prepared& prepared_g2() const { return g2_; }
  const pairing::G2Prepared& prepared_epsilon() const { return epsilon_; }
  const pairing::G2Prepared& prepared_delta() const { return delta_; }
  /// Content identity of the verifying key (hash of epsilon, delta): the
  /// settlement engine groups instances of the same key under one
  /// epsilon/delta pairing pair even across distinct Verifier objects.
  const std::array<std::uint8_t, 32>& key_id() const { return key_id_; }

 private:
  /// Eq. 1 / Eq. 2 pairing checks with chi already aggregated.
  bool check_basic(const G1& chi, const Challenge& chal,
                   const ProofBasic& proof) const;
  bool check_private(const G1& chi, const Challenge& chal,
                     const ProofPrivate& proof) const;

  const PublicKey& pk_;
  pairing::G2Prepared g2_;       // generator
  pairing::G2Prepared epsilon_;  // g2^x
  pairing::G2Prepared delta_;    // g2^{alpha x}
  std::array<std::uint8_t, 32> key_id_{};
};

// ---------------------------------------------------------------------------
// Batched round settlement (the block-level verification engine).
// ---------------------------------------------------------------------------

/// One settlement-ready audit round: which prepared verifier (public key),
/// which file context, the round's challenge and either proof shape (exactly
/// one of `basic` / `priv` must be engaged). Non-owning: verifier and file
/// must outlive the call. `file == nullptr` falls back to recomputing the
/// chunk hashes from `name` / `num_chunks` (the cold path of Verifier::
/// verify). A ProofPrivate's big_r must be a genuine GT element — the wire
/// decoder guarantees this (gt_decompress subgroup-checks); hand-built
/// structs are the caller's responsibility.
struct SettlementInstance {
  const Verifier* verifier = nullptr;
  const PreparedFile* file = nullptr;
  Fr name;
  std::size_t num_chunks = 0;
  Challenge challenge;
  std::optional<ProofBasic> basic;
  std::optional<ProofPrivate> priv;
};

/// Per-instance outcomes plus engine telemetry.
struct SettlementOutcome {
  std::vector<bool> ok;       // one per instance, input order
  std::size_t batch_checks = 0;  // weighted aggregate checks performed
  std::size_t single_checks = 0; // bisection leaves re-verified individually
  /// The window's aggregated KZG opening — sum_i [w_i * zeta_i] psi_i over
  /// the plausible instances, where w_i is the instance's Fiat–Shamir batch
  /// weight (1 when the batch is a single unweighted instance). Only
  /// computed when SettlementOptions::compute_aggregate_opening is set;
  /// infinity otherwise. This is the single G1 element an aggregate
  /// settlement tx posts in place of every per-round psi.
  G1 aggregated_opening = G1::infinity();

  bool all_ok() const {
    for (bool b : ok) {
      if (!b) return false;
    }
    return true;
  }
};

/// Engine knobs for verify_settlement.
struct SettlementOptions {
  /// Soundness-budget gate: the default random weights are 128 bits, leaving
  /// a residual forgery probability of ~2^-128 per batch. Setting this flag
  /// truncates them to 64 bits — halving the weighting MSM scalar lengths
  /// and the GT multi-exponentiation chain — at ~2^-64 per batch. That is
  /// still far below any economic attack threshold for per-round escrow
  /// stakes, but it is a protocol-level soundness decision, so it must be
  /// opted into explicitly rather than defaulted.
  bool reduced_soundness_weights = false;
  /// Also compute SettlementOutcome::aggregated_opening (one extra G1 MSM
  /// over the batch). Off by default so legacy settlement paths stay
  /// bit-and-cost identical; BatchSettlement turns it on when it posts
  /// aggregate window txs.
  bool compute_aggregate_opening = false;
};

/// Settles any mix of Eq. 1 / Eq. 2 rounds spanning files, keys and
/// contracts in (nearly) one verification: every instance's pairing equation
/// is scaled by a random weight (128-bit by default; see SettlementOptions)
/// derived from `weight_seed` and the instance position, and all terms
/// aggregate per fixed G2 point — the generator term is shared globally,
/// epsilon/delta per distinct key, so a clean batch costs exactly
/// 1 + 2·(#keys) pairings (3 for the same-key case). The weighted
/// aggregation itself is batch-shaped: the G1 terms fold through Pippenger
/// MSMs over the weights, and the private R^rho commitments fold through
/// one shared-squaring GT multi-exponentiation (Fp12::multi_pow) instead of
/// a per-round GT ladder. When the combined check fails, the batch is
/// bisected recursively so each culprit is isolated by exact per-round
/// checks — honest rounds in the same block always settle Pass.
///
/// Deterministic in (instances, weight_seed, options) at every thread
/// count. The caller must use a FRESH weight_seed per batch (derive it from
/// the batch transcript; see contract::BatchSettlement) — replaying a seed
/// an adversary has seen would let them craft cancelling forgeries.
SettlementOutcome verify_settlement(std::span<const SettlementInstance> instances,
                                    const std::array<std::uint8_t, 32>& weight_seed,
                                    const SettlementOptions& options);
SettlementOutcome verify_settlement(std::span<const SettlementInstance> instances,
                                    const std::array<std::uint8_t, 32>& weight_seed);

/// The canonical window weight seed: Keccak(nonce || boundary || every
/// round's 32-byte transcript, in the window's canonical transcript-sorted
/// order). This is THE binding that makes the aggregate tx sound: the
/// transcripts commit the proofs before the seed (and so the batch weights)
/// exists, so a prover cannot fix a seed first and then craft proofs whose
/// weighted errors cancel in the batch check. Both contract::BatchSettlement
/// (posting) and verify_settlement_aggregate (checking) derive through this
/// one function.
std::array<std::uint8_t, 32> derive_settlement_seed(
    std::uint64_t nonce, std::uint64_t window_boundary,
    std::span<const std::array<std::uint8_t, 32>> transcripts);

/// Checks a posted AggregateSettlement tx against the window's instances
/// and round transcripts (both in the same canonical order the bitmap was
/// built over) and the boundary the verifier expects the window to settle
/// at. Accepts iff ALL of:
///   - tx.window_boundary equals `expected_boundary` (a tx replayed against
///     a different window refuses here);
///   - tx.weight_seed equals derive_settlement_seed(tx.seed_nonce,
///     tx.window_boundary, transcripts) — the seed is re-derived from the
///     committed transcripts, so a ground or self-chosen seed (under which
///     colluding cheaters could cancel each other's weighted errors) cannot
///     be presented as honest;
///   - the posted opening equals the aggregated opening recomputed under
///     that seed;
///   - the outcome bitmap matches the recomputed verdicts round-for-round.
/// Replay of an already-spent honest seed is refused one layer up, by
/// BatchSettlement's used_seeds_ registry.
bool verify_settlement_aggregate(
    std::span<const SettlementInstance> instances,
    std::span<const std::array<std::uint8_t, 32>> transcripts,
    std::uint64_t expected_boundary, const AggregateSettlement& tx,
    const SettlementOptions& options = {});

/// One-shot wrappers over Verifier (they prepare the key's G2 points per
/// call; repeated verification against one key should construct a Verifier).
bool verify(const PublicKey& pk, const Fr& name, std::size_t num_chunks,
            const Challenge& chal, const ProofBasic& proof);
bool verify_private(const PublicKey& pk, const Fr& name, std::size_t num_chunks,
                    const Challenge& chal, const ProofPrivate& proof);
bool verify_batch(const PublicKey& pk, std::span<const BasicInstance> instances,
                  primitives::SecureRng& rng);

}  // namespace dsaudit::audit
