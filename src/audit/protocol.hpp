// KeyGen, tag generation, proving and verification — the paper's §V main
// protocol, both without on-chain privacy (Eq. 1) and with it (Eq. 2).
#pragma once

#include "audit/types.hpp"
#include "primitives/random.hpp"

namespace dsaudit::audit {

/// D's Initialize phase key generation. s is the storage/computation
/// trade-off parameter (extra provider storage is 1/s of the file).
KeyPair keygen(std::size_t s, primitives::SecureRng& rng);

/// D computes sigma_i = (g1^{M_i(alpha)} * H(name||i))^x for every chunk;
/// `threads` > 1 parallelizes across chunks (the paper's quad-core numbers).
FileTag generate_tags(const SecretKey& sk, const PublicKey& pk,
                      const storage::EncodedFile& file, const Fr& name,
                      unsigned threads = 1);

/// S's acceptance check before acking the contract: every authenticator
/// verifies against the public key (e(sigma_i, g2) == e(g1^{M_i(alpha)}
/// H(name||i), epsilon), computed via the SRS without alpha).
/// "the chance of D forging authenticators is negligible after this check".
bool verify_tags(const PublicKey& pk, const storage::EncodedFile& file,
                 const FileTag& tag);

/// Phase timings for the Fig. 8 breakdown (milliseconds).
struct ProverTimings {
  double zp_ms = 0;   // finite-field work: P_k aggregation + quotient
  double ecc_ms = 0;  // curve work: the two MSMs
  double gt_ms = 0;   // privacy extras: R = e(g1,eps)^z and y'
};

class Prover {
 public:
  /// Borrows all three for the Prover's lifetime; the caller must keep them
  /// alive AND at stable addresses (beware std::vector reallocation of
  /// KeyPair/EncodedFile/FileTag holders).
  Prover(const PublicKey& pk, const storage::EncodedFile& file, const FileTag& tag);

  /// Non-private response (Eq. 1 inputs).
  ProofBasic prove(const Challenge& chal, ProverTimings* timings = nullptr) const;

  /// Privacy-assured response (Eq. 2 inputs, §V-D).
  ProofPrivate prove_private(const Challenge& chal, primitives::SecureRng& rng,
                             ProverTimings* timings = nullptr) const;

 private:
  /// Shared non-private core: expands the challenge, aggregates
  /// P_k coefficients and sigma, computes psi and y = P_k(r).
  struct Core {
    G1 sigma;
    Fr y;
    G1 psi;
  };
  Core core(const Challenge& chal, ProverTimings* timings) const;

  const PublicKey& pk_;
  const storage::EncodedFile& file_;
  const FileTag& tag_;
};

/// The smart contract's Eq. 1 check (4 pairings, shared final exp).
bool verify(const PublicKey& pk, const Fr& name, std::size_t num_chunks,
            const Challenge& chal, const ProofBasic& proof);

/// The smart contract's Eq. 2 check (§V-D step 2).
bool verify_private(const PublicKey& pk, const Fr& name, std::size_t num_chunks,
                    const Challenge& chal, const ProofPrivate& proof);

/// One audit instance for batch verification (same pk, e.g. one provider
/// holding many files of one owner, or sequential rounds settled together).
struct BasicInstance {
  Fr name;
  std::size_t num_chunks = 0;
  Challenge challenge;
  ProofBasic proof;
};

/// Verify many Eq. 1 instances with a single shared final exponentiation
/// and random linear weighting (a forged proof escapes detection only with
/// probability ~1/r). The "batch auditing [24]" the paper cites in §VII-D.
bool verify_batch(const PublicKey& pk, std::span<const BasicInstance> instances,
                  primitives::SecureRng& rng);

}  // namespace dsaudit::audit
