#include "audit/protocol.hpp"

#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>

#include "pairing/pairing.hpp"
#include "parallel/thread_pool.hpp"
#include "poly/polynomial.hpp"
#include "primitives/keccak256.hpp"

namespace dsaudit::audit {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

KeyPair keygen(std::size_t s, primitives::SecureRng& rng) {
  if (s == 0) throw std::invalid_argument("keygen: s must be >= 1");
  KeyPair kp;
  kp.sk.x = Fr::random(rng);
  kp.sk.alpha = Fr::random(rng);
  while (kp.sk.x.is_zero()) kp.sk.x = Fr::random(rng);
  while (kp.sk.alpha.is_zero()) kp.sk.alpha = Fr::random(rng);

  kp.pk.s = s;
  kp.pk.epsilon = curve::g2_mul_generator(kp.sk.x);
  kp.pk.delta = curve::g2_mul_generator(kp.sk.alpha * kp.sk.x);
  // Powers g1^{alpha^j}: j = 0..s-2 suffice for the prover's quotient
  // commitment (degree <= s-2). For s = 1 we still publish g1 (= alpha^0)
  // so the tag-acceptance check has a base point.
  std::size_t count = s >= 2 ? s - 1 : 1;
  kp.pk.g1_alpha_powers.reserve(count);
  Fr power = Fr::one();
  for (std::size_t j = 0; j < count; ++j) {
    kp.pk.g1_alpha_powers.push_back(curve::g1_mul_generator(power));
    power *= kp.sk.alpha;
  }
  kp.pk.e_g1_epsilon = pairing::pairing(G1::generator(), kp.pk.epsilon);
  return kp;
}

FileTag generate_tags(const SecretKey& sk, const PublicKey& pk,
                      const storage::EncodedFile& file, const Fr& name,
                      unsigned threads) {
  if (file.s != pk.s) {
    throw std::invalid_argument("generate_tags: file encoded with different s");
  }
  FileTag tag;
  tag.name = name;
  tag.s = file.s;
  tag.num_chunks = file.num_chunks();
  tag.sigmas.resize(tag.num_chunks);

  auto worker = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // M_i(alpha) by Horner — the owner knows alpha, so no MSM is needed.
      Fr m_alpha = Fr::zero();
      const auto& chunk = file.chunks[i];
      for (std::size_t l = chunk.size(); l-- > 0;) {
        m_alpha = m_alpha * sk.alpha + chunk[l];
      }
      // sigma_i = (g1^{M_i(alpha)} * H(name||i))^x
      //         = g1^{x * M_i(alpha)} + [x] H(name||i).
      G1 data_part = curve::g1_mul_generator(m_alpha * sk.x);
      G1 index_part = chunk_hash(name, i).mul(sk.x);
      tag.sigmas[i] = data_part + index_part;
    }
  };

  if (threads <= 1 || tag.num_chunks < 2) {
    worker(0, tag.num_chunks);
  } else {
    // Chunk tags are independent; the shared pool does the range split. The
    // caller's `threads` caps the chunk count so a small request on a wide
    // pool still honours the paper's per-thread-count measurements.
    parallel::parallel_for_ranges(tag.num_chunks, worker, threads);
  }
  return tag;
}

bool verify_tags(const PublicKey& pk, const storage::EncodedFile& file,
                 const FileTag& tag) {
  return Verifier(pk).verify_tags(file, tag);
}

Prover::Prover(const PublicKey& pk, const storage::EncodedFile& file,
               const FileTag& tag, bool prepare_psi, bool prepare_sigma)
    : pk_(pk), file_(file), tag_(tag) {
  if (file.s != pk.s || tag.num_chunks != file.num_chunks()) {
    throw std::invalid_argument("Prover: inconsistent pk/file/tag");
  }
  if (prepare_psi && pk.g1_alpha_powers.size() >= 2) {
    psi_key_ = std::make_shared<const curve::MsmBasesTable<G1>>(
        curve::msm_precompute<G1>(pk.g1_alpha_powers));
  }
  if (prepare_sigma && tag.sigmas.size() >= 2) {
    sigma_key_ = std::make_shared<const curve::MsmBasesTable<G1>>(
        curve::msm_precompute<G1>(tag.sigmas));
  }
}

Prover::Core Prover::core(const Challenge& chal, ProverTimings* timings) const {
  auto t0 = Clock::now();
  ExpandedChallenge ex = expand_challenge(chal, file_.num_chunks());
  const std::size_t k = ex.indices.size();
  const std::size_t s = pk_.s;

  // --- Z_p phase: aggregate P_k(x) = sum_j c_j M_{i_j}(x), then the KZG
  // quotient and evaluation. The per-chunk scaled additions shard across the
  // pool with one partial accumulator per range; modular addition is exact
  // and associative, so the ordered recombination matches the sequential sum.
  std::vector<Fr> p(s, Fr::zero());
  {
    std::mutex merge_mutex;
    parallel::parallel_for_ranges(k, [&](std::size_t begin, std::size_t end) {
      std::vector<Fr> part(s, Fr::zero());
      for (std::size_t j = begin; j < end; ++j) {
        const auto& chunk = file_.chunks[ex.indices[j]];
        const Fr& c = ex.coefficients[j];
        for (std::size_t l = 0; l < s; ++l) part[l] += c * chunk[l];
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (std::size_t l = 0; l < s; ++l) p[l] += part[l];
    });
  }
  poly::Polynomial pk_poly(std::move(p));
  auto [quotient, y] = pk_poly.divide_by_linear(chal.r);
  double zp = ms_since(t0);

  // --- ECC phase: the two MSMs. The sigma MSM runs as a subset MSM over the
  // prepared tag-sigma table when the ctor built one (bit-identical to the
  // gather-then-cold-MSM path, which stays for one-shot provers).
  auto t1 = Clock::now();
  Core c;
  if (sigma_key_) {
    c.sigma = curve::msm_precomputed(*sigma_key_, ex.indices, ex.coefficients);
  } else {
    std::vector<G1> sigma_pts(k);
    for (std::size_t j = 0; j < k; ++j) sigma_pts[j] = tag_.sigmas[ex.indices[j]];
    c.sigma = curve::msm<G1>(sigma_pts, ex.coefficients);
  }
  c.y = y;
  auto qc = quotient.coefficients();
  if (qc.empty()) {
    c.psi = G1::infinity();
  } else {
    if (qc.size() > pk_.g1_alpha_powers.size()) {
      throw std::logic_error("Prover: quotient exceeds SRS (corrupt input?)");
    }
    c.psi = psi_key_ ? curve::msm_precomputed(*psi_key_, qc)
                     : curve::msm<G1>(
                           std::span<const G1>(pk_.g1_alpha_powers.data(),
                                               qc.size()),
                           qc);
  }
  if (timings) {
    timings->zp_ms = zp;
    timings->ecc_ms = ms_since(t1);
  }
  return c;
}

ProofBasic Prover::prove(const Challenge& chal, ProverTimings* timings) const {
  Core c = core(chal, timings);
  return ProofBasic{c.sigma, c.y, c.psi};
}

ProofPrivate Prover::prove_private(const Challenge& chal,
                                   primitives::SecureRng& rng,
                                   ProverTimings* timings) const {
  Core c = core(chal, timings);
  auto t0 = Clock::now();
  // Sigma-protocol hiding (§V-D step 1): commit R = e(g1, eps)^z, derive the
  // challenge-independent mask zeta = H'(R), publish y' = zeta*y + z.
  Fr z = Fr::random(rng);
  // e(g1, eps) is a GT element, so the Karabina compressed squaring chain
  // applies (same value as the plain cyclotomic ladder).
  Fp12 big_r = pk_.e_g1_epsilon.cyclotomic_pow_compressed(z.to_u256());
  Fr zeta = hash_gt_to_fr(big_r);
  Fr y_prime = zeta * c.y + z;
  if (timings) timings->gt_ms = ms_since(t0);
  return ProofPrivate{c.sigma, y_prime, c.psi, big_r};
}

namespace {

/// chi = prod_i H(name||i)^{c_i} — recomputed by the contract from public
/// data only.
G1 compute_chi(const Fr& name, const ExpandedChallenge& ex) {
  std::vector<G1> hashes(ex.indices.size());
  parallel::parallel_for_ranges(
      ex.indices.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          hashes[j] = chunk_hash(name, ex.indices[j]);
        }
      });
  return curve::msm<G1>(hashes, ex.coefficients);
}

/// Content hash of the verifying key's two G2 points (affine coordinates
/// with an infinity flag byte each) — the settlement engine's grouping key.
std::array<std::uint8_t, 32> key_id_of(const G2& epsilon, const G2& delta) {
  std::array<std::uint8_t, 258> buf{};
  auto put = [&buf](const G2& q, std::size_t off) {
    if (q.is_infinity()) {
      buf[off] = 1;
      return;
    }
    auto [x, y] = q.to_affine();
    auto xb = x.to_bytes();
    auto yb = y.to_bytes();
    std::memcpy(&buf[off + 1], xb.data(), xb.size());
    std::memcpy(&buf[off + 1 + xb.size()], yb.data(), yb.size());
  };
  put(epsilon, 0);
  put(delta, 129);
  return primitives::Keccak256::hash(
      std::span<const std::uint8_t>(buf.data(), buf.size()));
}

}  // namespace

Verifier::Verifier(const PublicKey& pk)
    : pk_(pk),
      g2_(G2::generator()),
      epsilon_(pk.epsilon),
      delta_(pk.delta),
      key_id_(key_id_of(pk.epsilon, pk.delta)) {}

bool Verifier::verify_tags(const storage::EncodedFile& file,
                           const FileTag& tag) const {
  if (file.s != pk_.s || tag.s != pk_.s) return false;
  if (tag.num_chunks != file.num_chunks() || tag.sigmas.size() != tag.num_chunks) {
    return false;
  }
  const std::size_t d = tag.num_chunks;
  const std::size_t s = pk_.s;
  // Random-weight batch: sum_i rho_i * [check_i] == 0 catches any bad
  // authenticator except with probability ~1/r. The degree-(s-1) coefficient
  // has no published g1 power; it is folded through delta = g2^{alpha x}
  // against g1^{alpha^{s-2}} instead.
  auto rng = primitives::SecureRng::from_os();
  std::vector<Fr> rho(d);
  for (auto& w : rho) w = Fr::random(rng);

  G1 sigma_agg = curve::msm<G1>(tag.sigmas, rho);

  // Weighted low coefficients (paired with epsilon) and, for s >= 2, the
  // weighted top coefficient (paired with delta).
  std::size_t low_count = s >= 2 ? s - 1 : 1;
  std::vector<Fr> low(low_count, Fr::zero());
  Fr top = Fr::zero();
  for (std::size_t i = 0; i < d; ++i) {
    const auto& chunk = file.chunks[i];
    if (s >= 2) {
      for (std::size_t j = 0; j + 1 < s; ++j) low[j] += rho[i] * chunk[j];
      top += rho[i] * chunk[s - 1];
    } else {
      low[0] += rho[i] * chunk[0];
    }
  }
  G1 low_pt = curve::msm<G1>(pk_.g1_alpha_powers, low);
  std::vector<G1> hashes(d);
  parallel::parallel_for_ranges(d, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hashes[i] = chunk_hash(tag.name, i);
    }
  });
  G1 chi = curve::msm<G1>(hashes, rho);

  std::vector<pairing::PreparedPair> pairs;
  pairs.reserve(3);
  pairs.push_back({sigma_agg, &g2_});
  pairs.push_back({-(low_pt + chi), &epsilon_});
  if (s >= 2 && !top.is_zero()) {
    pairs.push_back({-(pk_.g1_alpha_powers.back().mul(top)), &delta_});
  }
  return pairing::pairing_product_is_one(pairs);
}

bool Verifier::check_basic(const G1& chi, const Challenge& chal,
                           const ProofBasic& proof) const {
  // Eq. 1 rearranged to a product-of-pairings == 1 over the fixed key
  // points, with e(-psi, delta * eps^{-r}) = e(-psi, delta) * e([r]psi, eps):
  //   e(sigma, g2) * e([r]psi - y g1 - chi, eps) * e(-psi, delta) == 1.
  std::array<pairing::PreparedPair, 3> pairs{
      pairing::PreparedPair{proof.sigma, &g2_},
      pairing::PreparedPair{
          proof.psi.mul(chal.r) - curve::g1_mul_generator(proof.y) - chi,
          &epsilon_},
      pairing::PreparedPair{-proof.psi, &delta_},
  };
  return pairing::pairing_product_is_one(pairs);
}

bool Verifier::check_private(const G1& chi, const Challenge& chal,
                             const ProofPrivate& proof) const {
  Fr zeta = hash_gt_to_fr(proof.big_r);
  // Eq. 2 rearranged the same way (all scalars on G1, fixed G2 points):
  //   e(sigma^zeta, g2) * e([zeta r]psi - y' g1 - zeta chi, eps)
  //     * e(-zeta psi, delta) == R^{-1}
  G1 zeta_psi = proof.psi.mul(zeta);
  std::array<pairing::PreparedPair, 3> pairs{
      pairing::PreparedPair{proof.sigma.mul(zeta), &g2_},
      pairing::PreparedPair{zeta_psi.mul(chal.r) -
                                curve::g1_mul_generator(proof.y_prime) -
                                chi.mul(zeta),
                            &epsilon_},
      pairing::PreparedPair{-zeta_psi, &delta_},
  };
  Fp12 lhs = pairing::multi_pairing(std::span<const pairing::PreparedPair>(pairs));
  return (lhs * proof.big_r).is_one();
}

bool Verifier::verify(const Fr& name, std::size_t num_chunks,
                      const Challenge& chal, const ProofBasic& proof) const {
  if (num_chunks == 0 || chal.k == 0) return false;
  ExpandedChallenge ex = expand_challenge(chal, num_chunks);
  return check_basic(compute_chi(name, ex), chal, proof);
}

bool Verifier::verify(const PreparedFile& file, const Challenge& chal,
                      const ProofBasic& proof) const {
  if (file.num_chunks == 0 || chal.k == 0) return false;
  ExpandedChallenge ex = expand_challenge(chal, file.num_chunks);
  G1 chi = curve::msm_precomputed(file.hashes, ex.indices, ex.coefficients);
  return check_basic(chi, chal, proof);
}

bool Verifier::verify_private(const Fr& name, std::size_t num_chunks,
                              const Challenge& chal,
                              const ProofPrivate& proof) const {
  if (num_chunks == 0 || chal.k == 0) return false;
  if (proof.big_r.is_zero()) return false;
  ExpandedChallenge ex = expand_challenge(chal, num_chunks);
  return check_private(compute_chi(name, ex), chal, proof);
}

bool Verifier::verify_private(const PreparedFile& file, const Challenge& chal,
                              const ProofPrivate& proof) const {
  if (file.num_chunks == 0 || chal.k == 0) return false;
  if (proof.big_r.is_zero()) return false;
  ExpandedChallenge ex = expand_challenge(chal, file.num_chunks);
  G1 chi = curve::msm_precomputed(file.hashes, ex.indices, ex.coefficients);
  return check_private(chi, chal, proof);
}

PreparedFile prepare_file(const Fr& name, std::size_t num_chunks) {
  PreparedFile pf;
  pf.name = name;
  pf.num_chunks = num_chunks;
  std::vector<G1> hashes(num_chunks);
  parallel::parallel_for_ranges(num_chunks,
                                [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t i = begin; i < end; ++i) {
                                    hashes[i] = chunk_hash(name, i);
                                  }
                                });
  pf.hashes = curve::msm_precompute<G1>(hashes);
  return pf;
}

bool Verifier::verify_batch(std::span<const BasicInstance> instances,
                            primitives::SecureRng& rng) const {
  if (instances.empty()) return true;
  std::vector<SettlementInstance> sis(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    sis[i].verifier = this;
    sis[i].name = instances[i].name;
    sis[i].num_chunks = instances[i].num_chunks;
    sis[i].challenge = instances[i].challenge;
    sis[i].basic = instances[i].proof;
  }
  return verify_settlement(sis, rng.bytes32()).all_ok();
}

namespace {

/// Per-instance pairing-equation components. Every instance's check is
///   basic:   e(s, g2) * e(e, eps) * e(d, delta) == 1
///   private: e(s, g2) * e(e, eps) * e(d, delta) * R == 1  (zeta folded in)
/// with s = zeta*sigma, e = (zeta*r)*psi - y*g - zeta*chi, d = -zeta*psi
/// (zeta = 1 for basic proofs). The batch check never materializes those
/// per-instance points: the zeta/challenge scalars ride the rho batch
/// weights into the per-slot MSMs — e.g. the eps slot aggregates
/// sum_i [rho_i zeta_i r_i] psi_i - [sum_i rho_i y_i] g - [rho_i zeta_i]
/// chi_i — so equation prep costs no arbitrary scalar muls at all; with the
/// GLV split those 254-bit folded weights run at half-length anyway. The
/// exact unweighted terms are only computed (from these components, with the
/// identical formula/mul sequence) at bisection leaves and single-instance
/// batches.
struct SettleTerms {
  bool valid = false;
  bool is_private = false;
  G1 sigma, psi, chi;
  Fr r_chal, y;           // challenge scalar; y (basic) or y' (private)
  Fr zeta = Fr::one();    // hash_gt_to_fr(R) for private, 1 for basic
  Fp12 gt = Fp12::one();  // R for private instances, 1 for basic
  Fr rho = Fr::zero();    // random batch weight (zero when unweighted)
  std::size_t key = 0;    // verifier-group ordinal
  const Verifier* v = nullptr;
};

/// rho_i = low `width` bytes of Keccak(seed || 'w' || i). The default 16
/// bytes (128 bits) halve the full-scalar weighting work at a residual
/// forgery probability of ~2^-128 per batch; the opt-in 8-byte mode
/// (SettlementOptions::reduced_soundness_weights) halves it again at
/// ~2^-64.
Fr weight_at(const std::array<std::uint8_t, 32>& seed, std::uint64_t index,
             std::size_t width) {
  std::array<std::uint8_t, 41> buf;
  std::memcpy(buf.data(), seed.data(), 32);
  buf[32] = 'w';
  for (int b = 0; b < 8; ++b) {
    buf[33 + b] = static_cast<std::uint8_t>(index >> (8 * b));
  }
  auto h = primitives::Keccak256::hash(
      std::span<const std::uint8_t>(buf.data(), buf.size()));
  std::array<std::uint8_t, 32> wide{};
  std::copy(h.begin(), h.begin() + width, wide.end() - width);
  return Fr::from_be_bytes_mod(std::span<const std::uint8_t, 32>(wide));
}

}  // namespace

SettlementOutcome verify_settlement(std::span<const SettlementInstance> instances,
                                    const std::array<std::uint8_t, 32>& weight_seed,
                                    const SettlementOptions& options) {
  SettlementOutcome out;
  out.ok.assign(instances.size(), false);
  if (instances.empty()) return out;
  const std::size_t weight_width = options.reduced_soundness_weights ? 8 : 16;

  // A single-instance batch settles by its exact check alone — skip the
  // random-weight material entirely (this makes deferred settlement of a
  // lone due round cost the same as the inline path).
  std::size_t plausible = 0;
  for (const SettlementInstance& inst : instances) {
    plausible += inst.verifier != nullptr &&
                 inst.basic.has_value() != inst.priv.has_value();
  }
  const bool need_weights = plausible > 1;

  // Per-instance preparation — the chi aggregation and the zeta hash — is
  // embarrassingly parallel; all scalar weighting is deferred to the batch
  // check's MSMs (or a leaf's exact check), so no arbitrary scalar muls
  // happen here.
  std::vector<SettleTerms> terms(instances.size());
  parallel::parallel_for_ranges(
      instances.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const SettlementInstance& inst = instances[i];
          SettleTerms& t = terms[i];
          t.v = inst.verifier;
          if (!inst.verifier) continue;
          const bool has_basic = inst.basic.has_value();
          if (has_basic == inst.priv.has_value()) continue;  // exactly one
          const std::size_t d_chunks =
              inst.file ? inst.file->num_chunks : inst.num_chunks;
          if (d_chunks == 0 || inst.challenge.k == 0) continue;
          if (!has_basic && inst.priv->big_r.is_zero()) continue;
          ExpandedChallenge ex = expand_challenge(inst.challenge, d_chunks);
          G1 chi = inst.file
                       ? curve::msm_precomputed(inst.file->hashes, ex.indices,
                                                ex.coefficients)
                       : compute_chi(inst.name, ex);
          t.chi = chi;
          t.r_chal = inst.challenge.r;
          if (has_basic) {
            const ProofBasic& p = *inst.basic;
            t.sigma = p.sigma;
            t.psi = p.psi;
            t.y = p.y;
          } else {
            const ProofPrivate& p = *inst.priv;
            t.is_private = true;
            t.sigma = p.sigma;
            t.psi = p.psi;
            t.y = p.y_prime;
            t.zeta = hash_gt_to_fr(p.big_r);
            t.gt = p.big_r;
          }
          if (need_weights) t.rho = weight_at(weight_seed, i, weight_width);
          t.valid = true;
        }
      });

  // Group the valid instances by verifying-key content so same-key terms
  // share one epsilon/delta pairing pair even across distinct contracts.
  std::vector<const Verifier*> groups;
  std::map<std::array<std::uint8_t, 32>, std::size_t> ordinal;
  std::vector<std::size_t> idx;  // valid instance positions, input order
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!terms[i].valid) continue;
    auto [it, fresh] = ordinal.try_emplace(terms[i].v->key_id(), groups.size());
    if (fresh) groups.push_back(terms[i].v);
    terms[i].key = it->second;
    idx.push_back(i);
  }
  if (idx.empty()) return out;

  // The aggregate-settlement opening: the weighted psi aggregate the batch
  // check already folds into its eps/delta slots, materialized once as its
  // own G1 element so a window tx can post it in place of every per-round
  // psi. zeta rides along exactly as in the pairing slots, so the element
  // is committed to the private proofs' R values too.
  if (options.compute_aggregate_opening) {
    std::vector<G1> agg_pts;
    std::vector<Fr> agg_sc;
    agg_pts.reserve(idx.size());
    agg_sc.reserve(idx.size());
    for (std::size_t i : idx) {
      const SettleTerms& t = terms[i];
      agg_pts.push_back(t.psi);
      agg_sc.push_back(need_weights ? t.rho * t.zeta : t.zeta);
    }
    out.aggregated_opening = curve::msm<G1>(agg_pts, agg_sc);
  }

  // Exact unweighted check for one instance: materializes s/e/d with the
  // same formulas (and the same multiplication sequence) the per-instance
  // prep used before the weights were folded into the batch MSMs. Only paid
  // at bisection leaves and single-instance batches.
  auto check_single = [&out](const SettleTerms& t) {
    ++out.single_checks;
    G1 s, e, d;
    if (t.is_private) {
      G1 zeta_psi = t.psi.mul(t.zeta);
      s = t.sigma.mul(t.zeta);
      e = zeta_psi.mul(t.r_chal) - curve::g1_mul_generator(t.y) -
          t.chi.mul(t.zeta);
      d = -zeta_psi;
    } else {
      s = t.sigma;
      e = t.psi.mul(t.r_chal) - curve::g1_mul_generator(t.y) - t.chi;
      d = -t.psi;
    }
    std::array<pairing::PreparedPair, 3> pairs{
        pairing::PreparedPair{s, &t.v->prepared_g2()},
        pairing::PreparedPair{e, &t.v->prepared_epsilon()},
        pairing::PreparedPair{d, &t.v->prepared_delta()},
    };
    Fp12 lhs = pairing::multi_pairing(std::span<const pairing::PreparedPair>(pairs));
    return (lhs * t.gt).is_one();
  };

  // One weighted aggregate check of a contiguous sub-range of `idx`: the
  // generator term is shared across every key, epsilon/delta aggregate per
  // key — 1 + 2*(#keys present) pairings, one final exponentiation. The
  // weighting itself runs batched: one Pippenger MSM over the rho weights
  // per pairing slot instead of three scalar muls per round, and one shared
  // GT multi-exponentiation over every private R commitment in the range
  // instead of a per-round R^rho ladder (the old per-round GT exp was the
  // private batch's ~0.55 ms floor).
  auto check_batch = [&](std::size_t lo, std::size_t hi) {
    ++out.batch_checks;
    const std::size_t m = hi - lo;
    std::vector<G1> sig_pts;
    std::vector<Fr> sig_sc;
    sig_pts.reserve(m);
    sig_sc.reserve(m);
    // eps slot per key: [rho zeta r] psi_i + [-rho zeta] chi_i, plus one
    // shared generator base carrying sum_i [-rho y_i]; delta slot per key:
    // [-rho zeta] psi_i. The folded weights are full 254-bit scalars, which
    // the MSM layer runs GLV-split.
    std::vector<std::vector<G1>> eps_pts(groups.size()), delta_pts(groups.size());
    std::vector<std::vector<Fr>> eps_sc(groups.size()), delta_sc(groups.size());
    std::vector<Fr> gen_sc(groups.size(), Fr::zero());
    std::vector<Fp12> gt_bases;
    std::vector<bigint::U256> gt_exps;
    for (std::size_t j = lo; j < hi; ++j) {
      const SettleTerms& t = terms[idx[j]];
      const Fr rz = t.rho * t.zeta;
      sig_pts.push_back(t.sigma);
      sig_sc.push_back(rz);
      eps_pts[t.key].push_back(t.psi);
      eps_sc[t.key].push_back(rz * t.r_chal);
      eps_pts[t.key].push_back(t.chi);
      eps_sc[t.key].push_back(-rz);
      gen_sc[t.key] = gen_sc[t.key] - t.rho * t.y;
      delta_pts[t.key].push_back(t.psi);
      delta_sc[t.key].push_back(-rz);
      if (!t.gt.is_one()) {
        gt_bases.push_back(t.gt);
        gt_exps.push_back(t.rho.to_u256());
      }
    }
    std::vector<pairing::PreparedPair> pairs;
    pairs.reserve(1 + 2 * groups.size());
    pairs.push_back({curve::msm<G1>(sig_pts, sig_sc), &groups[0]->prepared_g2()});
    for (std::size_t k = 0; k < groups.size(); ++k) {
      // Untouched keys aggregate to infinity and cost no Miller chain.
      if (!eps_pts[k].empty()) {
        eps_pts[k].push_back(G1::generator());
        eps_sc[k].push_back(gen_sc[k]);
      }
      pairs.push_back({curve::msm<G1>(eps_pts[k], eps_sc[k]),
                       &groups[k]->prepared_epsilon()});
      pairs.push_back({curve::msm<G1>(delta_pts[k], delta_sc[k]),
                       &groups[k]->prepared_delta()});
    }
    Fp12 gt = Fp12::multi_pow(gt_bases, gt_exps);
    Fp12 lhs = pairing::multi_pairing(std::span<const pairing::PreparedPair>(pairs));
    return (lhs * gt).is_one();
  };

  // Settle recursively: a passing aggregate clears its whole range at once;
  // a failing one bisects, so each cheater is isolated by an exact per-round
  // check and honest rounds in the same block always settle Pass.
  std::function<void(std::size_t, std::size_t)> settle =
      [&](std::size_t lo, std::size_t hi) {
        if (hi - lo == 1) {
          out.ok[idx[lo]] = check_single(terms[idx[lo]]);
          return;
        }
        if (check_batch(lo, hi)) {
          for (std::size_t j = lo; j < hi; ++j) out.ok[idx[j]] = true;
          return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        settle(lo, mid);
        settle(mid, hi);
      };
  settle(0, idx.size());
  return out;
}

SettlementOutcome verify_settlement(std::span<const SettlementInstance> instances,
                                    const std::array<std::uint8_t, 32>& weight_seed) {
  return verify_settlement(instances, weight_seed, SettlementOptions{});
}

std::array<std::uint8_t, 32> derive_settlement_seed(
    std::uint64_t nonce, std::uint64_t window_boundary,
    std::span<const std::array<std::uint8_t, 32>> transcripts) {
  std::vector<std::uint8_t> preimage(16 + 32 * transcripts.size());
  for (int b = 0; b < 8; ++b) {
    preimage[b] = static_cast<std::uint8_t>(nonce >> (8 * b));
    preimage[8 + b] = static_cast<std::uint8_t>(window_boundary >> (8 * b));
  }
  for (std::size_t j = 0; j < transcripts.size(); ++j) {
    std::memcpy(preimage.data() + 16 + 32 * j, transcripts[j].data(), 32);
  }
  return primitives::Keccak256::hash(
      std::span<const std::uint8_t>(preimage.data(), preimage.size()));
}

bool verify_settlement_aggregate(
    std::span<const SettlementInstance> instances,
    std::span<const std::array<std::uint8_t, 32>> transcripts,
    std::uint64_t expected_boundary, const AggregateSettlement& tx,
    const SettlementOptions& options) {
  if (tx.rounds != instances.size() || tx.rounds != transcripts.size() ||
      tx.rounds == 0) {
    return false;
  }
  if (tx.outcomes.size() != AggregateSettlement::bitmap_bytes(tx.rounds)) {
    return false;
  }
  // The boundary is part of the verifier's expectation, not the prover's
  // choice: a tx replayed against any other window refuses here.
  if (tx.window_boundary != expected_boundary) return false;
  // Bind the seed to the committed transcripts: the tx's seed must be the
  // honest derivation under its own nonce. A self-chosen seed — under which
  // colluding cheaters could pick errors that cancel in the weighted batch
  // check — cannot be presented as Keccak(nonce || boundary || transcripts)
  // for any feasible nonce.
  if (derive_settlement_seed(tx.seed_nonce, tx.window_boundary, transcripts) !=
      tx.weight_seed) {
    return false;
  }
  SettlementOptions opts = options;
  opts.compute_aggregate_opening = true;
  const SettlementOutcome res = verify_settlement(instances, tx.weight_seed, opts);
  // The posted opening must be exactly the weighted psi aggregate under the
  // derived seed: any substituted element changes the recomputation.
  if (!(res.aggregated_opening == tx.opening)) return false;
  for (std::uint64_t i = 0; i < tx.rounds; ++i) {
    if (tx.outcome(i) != res.ok[static_cast<std::size_t>(i)]) return false;
  }
  return true;
}

bool verify(const PublicKey& pk, const Fr& name, std::size_t num_chunks,
            const Challenge& chal, const ProofBasic& proof) {
  return Verifier(pk).verify(name, num_chunks, chal, proof);
}

bool verify_private(const PublicKey& pk, const Fr& name, std::size_t num_chunks,
                    const Challenge& chal, const ProofPrivate& proof) {
  return Verifier(pk).verify_private(name, num_chunks, chal, proof);
}

bool verify_batch(const PublicKey& pk, std::span<const BasicInstance> instances,
                  primitives::SecureRng& rng) {
  return Verifier(pk).verify_batch(instances, rng);
}

}  // namespace dsaudit::audit
