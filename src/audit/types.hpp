// Core protocol types for the paper's main auditing scheme (§V).
//
// Roles: the data owner D runs keygen + generate_tags once; the storage
// provider S answers challenges with Prover; the smart contract verifies
// with verify_* (src/contract wires these into the Fig. 2 state machine).
#pragma once

#include <cstdint>
#include <vector>

#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "field/fp12.hpp"
#include "storage/codec.hpp"

namespace dsaudit::audit {

using curve::G1;
using curve::G2;
using ff::Fp12;
using ff::Fr;

/// Owner's secret key: x (authenticator key) and alpha (SRS trapdoor).
struct SecretKey {
  Fr x;
  Fr alpha;
};

/// Public key published on chain during Initialize (Fig. 4 measures its
/// serialized size):
///   epsilon = g2^x, delta = g2^{alpha x}, {g1^{alpha^j}}_{j=0}^{s-2},
///   and (with on-chain privacy) the precomputed GT base e(g1, epsilon).
struct PublicKey {
  std::size_t s = 0;               // blocks per chunk
  G2 epsilon;                      // g2^x
  G2 delta;                        // g2^{alpha x}
  std::vector<G1> g1_alpha_powers; // g1^{alpha^j}, j = 0 .. s-2
  Fp12 e_g1_epsilon;               // e(g1, epsilon) — the sigma-protocol base

  /// On-chain bytes: compressed sizes, with / without the privacy extras
  /// (the GT base is only needed by the private protocol). Reproduces Fig. 4.
  std::size_t serialized_size(bool with_privacy) const;
};

struct KeyPair {
  SecretKey sk;
  PublicKey pk;
};

/// Per-file authenticators sigma_i = (g1^{M_i(alpha)} * H(name||i))^x, plus
/// the public file identifier `name` recorded on the blockchain.
struct FileTag {
  Fr name;
  std::size_t s = 0;
  std::size_t num_chunks = 0;
  std::vector<G1> sigmas;  // one per chunk
};

/// On-chain challenge: two PRP/PRF seeds and the KZG evaluation point
/// (the paper's {C = (C1, C2), r} — 48 bytes of beacon randomness expanded
/// off-chain by both prover and verifier).
struct Challenge {
  std::array<std::uint8_t, 32> c1{};
  std::array<std::uint8_t, 32> c2{};
  Fr r;
  std::size_t k = 0;  // number of challenged chunks
};

/// Non-private response (Eq. 1): 96 bytes on chain. Publishing y = P_k(r)
/// is what the §V-C attack exploits.
struct ProofBasic {
  G1 sigma;
  Fr y;
  G1 psi;

  static constexpr std::size_t kWireSize = 96;
};

/// Privacy-assured response (Eq. 2): sigma, y' = zeta*P_k(r) + z, psi and the
/// sigma-protocol commitment R = e(g1, epsilon)^z. 288 bytes on chain
/// (3 x 32 + 192 for the Fp6-compressed GT element), matching Table II.
struct ProofPrivate {
  G1 sigma;
  Fr y_prime;
  G1 psi;
  Fp12 big_r;

  static constexpr std::size_t kWireSize = 288;
};

/// One settlement window's on-chain record: instead of every round posting
/// its full 96/288-byte proof as its own prove tx, the window posts ONE tx
/// carrying the Fiat–Shamir weight seed, a single aggregated KZG opening
/// (openings at a shared challenge point batch into one G1 element across
/// files — the same rearrangement trick the settlement engine uses for
/// pairings, applied to proof *bytes*) and a per-round outcome bitmap.
/// Rounds is the number of settled instances in the window's canonical
/// (transcript-sorted) order; bit i of the bitmap (LSB-first within each
/// byte) is 1 iff round i settled Pass. Trailing bitmap bits beyond
/// `rounds` must be zero — the encoding is canonical.
///
/// The weight seed is not free-form: it must equal
/// derive_settlement_seed(seed_nonce, window_boundary, transcripts), and
/// carrying the nonce on the wire is what lets any verifier re-derive it
/// from the window's round transcripts. Without that binding a prover could
/// fix a seed first and craft proofs whose weighted errors cancel in the
/// batch check (see protocol.hpp).
struct AggregateSettlement {
  std::array<std::uint8_t, 32> weight_seed{};
  std::uint64_t seed_nonce = 0;       // freshness nonce the seed hashes over
  std::uint64_t window_boundary = 0;  // boundary instant the seed is bound to
  std::uint64_t rounds = 0;           // instances covered by the bitmap
  G1 opening;                         // sum_i [w_i * zeta_i] psi_i
  std::vector<std::uint8_t> outcomes; // ceil(rounds / 8) bitmap bytes

  /// seed (32) | nonce (8) | boundary (8) | rounds (8) | opening (32) |
  /// bitmap.
  static constexpr std::size_t kHeaderBytes = 88;
  /// Overflow-safe bitmap sizing (rounds is a full 64-bit wire field).
  static constexpr std::size_t bitmap_bytes(std::uint64_t rounds) {
    return static_cast<std::size_t>(rounds / 8 + (rounds % 8 != 0 ? 1 : 0));
  }
  static constexpr std::size_t serialized_size_for(std::uint64_t rounds) {
    return kHeaderBytes + bitmap_bytes(rounds);
  }
  std::size_t serialized_size() const { return serialized_size_for(rounds); }

  bool outcome(std::uint64_t i) const {
    return (outcomes[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u;
  }
  void set_outcome(std::uint64_t i, bool ok) {
    std::uint8_t& b = outcomes[static_cast<std::size_t>(i / 8)];
    const auto mask = static_cast<std::uint8_t>(1u << (i % 8));
    b = static_cast<std::uint8_t>(ok ? (b | mask) : (b & ~mask));
  }
};

/// The expansion of (C1, C2) into chunk indices and coefficients shared by
/// prover and verifier (paper Definition 2).
struct ExpandedChallenge {
  std::vector<std::uint64_t> indices;
  std::vector<Fr> coefficients;
};
ExpandedChallenge expand_challenge(const Challenge& chal, std::size_t d);

/// H(name || i) — the per-chunk random-oracle point.
G1 chunk_hash(const Fr& name, std::uint64_t index);

/// H' : GT -> Z_p — the sigma protocol's hiding-parameter oracle.
Fr hash_gt_to_fr(const Fp12& value);

/// Number of challenged chunks for a target detection confidence, given a
/// corruption rate (paper §VI-A: k = 300 gives 95% at 1% corruption):
/// smallest k with 1 - (1-corruption)^k >= confidence.
std::size_t chunks_for_confidence(double confidence, double corruption_rate);

}  // namespace dsaudit::audit
