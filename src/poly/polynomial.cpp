#include "poly/polynomial.hpp"

#include <stdexcept>

namespace dsaudit::poly {

void Polynomial::normalize() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

Polynomial Polynomial::monomial(std::size_t n) {
  std::vector<Fr> c(n + 1, Fr::zero());
  c[n] = Fr::one();
  return Polynomial(std::move(c));
}

Polynomial Polynomial::random(std::size_t degree, primitives::SecureRng& rng) {
  std::vector<Fr> c(degree + 1);
  for (auto& x : c) x = Fr::random(rng);
  if (c.back().is_zero()) c.back() = Fr::one();  // keep the stated degree
  return Polynomial(std::move(c));
}

Fr Polynomial::evaluate(const Fr& x) const {
  Fr acc = Fr::zero();
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * x + coeffs_[i];
  }
  return acc;
}

Polynomial operator+(const Polynomial& a, const Polynomial& b) {
  std::vector<Fr> c(std::max(a.coeffs_.size(), b.coeffs_.size()), Fr::zero());
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = a.coefficient(i) + b.coefficient(i);
  }
  return Polynomial(std::move(c));
}

Polynomial operator-(const Polynomial& a, const Polynomial& b) {
  std::vector<Fr> c(std::max(a.coeffs_.size(), b.coeffs_.size()), Fr::zero());
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = a.coefficient(i) - b.coefficient(i);
  }
  return Polynomial(std::move(c));
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  if (a.is_zero() || b.is_zero()) return Polynomial::zero();
  std::vector<Fr> c(a.coeffs_.size() + b.coeffs_.size() - 1, Fr::zero());
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      c[i + j] += a.coeffs_[i] * b.coeffs_[j];
    }
  }
  return Polynomial(std::move(c));
}

Polynomial Polynomial::scale(const Fr& s) const {
  std::vector<Fr> c(coeffs_.size());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = coeffs_[i] * s;
  return Polynomial(std::move(c));
}

std::pair<Polynomial, Fr> Polynomial::divide_by_linear(const Fr& r) const {
  if (coeffs_.empty()) return {Polynomial::zero(), Fr::zero()};
  // Synthetic (Horner) division: process from the leading coefficient.
  std::vector<Fr> q(coeffs_.size() - 1, Fr::zero());
  Fr carry = coeffs_.back();
  for (std::size_t i = coeffs_.size() - 1; i-- > 0;) {
    if (i < q.size()) q[i] = carry;
    carry = coeffs_[i] + carry * r;
  }
  return {Polynomial(std::move(q)), carry};
}

Polynomial lagrange_interpolate(std::span<const Fr> xs, std::span<const Fr> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("lagrange_interpolate: size mismatch");
  }
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (xs[i] == xs[j]) {
        throw std::invalid_argument("lagrange_interpolate: duplicate x");
      }
    }
  }
  Polynomial acc = Polynomial::zero();
  for (std::size_t i = 0; i < n; ++i) {
    // Basis polynomial prod_{j != i} (x - x_j) / (x_i - x_j).
    Polynomial basis = Polynomial::constant(Fr::one());
    Fr denom = Fr::one();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      basis = basis * Polynomial({-xs[j], Fr::one()});
      denom *= xs[i] - xs[j];
    }
    acc = acc + basis.scale(ys[i] * denom.inverse());
  }
  return acc;
}

std::vector<Fr> solve_linear_system(std::vector<std::vector<Fr>> a,
                                    std::vector<Fr> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("solve_linear_system: size mismatch");
  for (const auto& row : a) {
    if (row.size() != n) throw std::invalid_argument("solve_linear_system: not square");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col].is_zero()) ++pivot;
    if (pivot == n) return {};  // singular
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    Fr inv = a[col][col].inverse();
    for (std::size_t j = col; j < n; ++j) a[col][j] *= inv;
    b[col] *= inv;
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col].is_zero()) continue;
      Fr factor = a[row][col];
      for (std::size_t j = col; j < n; ++j) a[row][j] -= factor * a[col][j];
      b[row] -= factor * b[col];
    }
  }
  return b;
}

}  // namespace dsaudit::poly
