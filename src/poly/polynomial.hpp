// Dense polynomial arithmetic over the scalar field Fr.
//
// Chunks of the outsourced file are polynomials M_i(x) = sum_j m_{i,j} x^j
// (paper Definition 1); the prover's response involves the aggregated
// P_k(x) = sum c_i M_i(x) and the KZG witness quotient
// Q_k(x) = (P_k(x) - P_k(r)) / (x - r) (Definition 3). Lagrange interpolation
// is the adversary's tool in the §V-C on-chain leakage attack.
#pragma once

#include <span>
#include <vector>

#include "field/fp.hpp"

namespace dsaudit::poly {

using ff::Fr;

class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<Fr> coeffs) : coeffs_(std::move(coeffs)) {
    normalize();
  }

  static Polynomial zero() { return {}; }
  static Polynomial constant(const Fr& c) { return Polynomial({c}); }
  /// x^n
  static Polynomial monomial(std::size_t n);
  static Polynomial random(std::size_t degree, primitives::SecureRng& rng);

  bool is_zero() const { return coeffs_.empty(); }
  /// Degree of the zero polynomial is reported as 0 by convention; check
  /// is_zero() to distinguish it from constants.
  std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  std::span<const Fr> coefficients() const { return coeffs_; }
  Fr coefficient(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : Fr::zero();
  }

  /// Horner evaluation.
  Fr evaluate(const Fr& x) const;

  friend Polynomial operator+(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator-(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator*(const Polynomial& a, const Polynomial& b);
  Polynomial scale(const Fr& s) const;

  /// Synthetic division by (x - r): returns {quotient Q, remainder P(r)} with
  /// P(x) = Q(x)(x - r) + P(r). This is the KZG opening quotient.
  std::pair<Polynomial, Fr> divide_by_linear(const Fr& r) const;

  friend bool operator==(const Polynomial& a, const Polynomial& b) = default;

 private:
  void normalize();
  std::vector<Fr> coeffs_;  // coeffs_[i] multiplies x^i; no trailing zeros
};

/// Unique polynomial of degree < n through n points with distinct x.
/// Throws std::invalid_argument on duplicate abscissae. O(n^2) — the §V-C
/// adversary interpolates s-point sets with s <= a few hundred.
Polynomial lagrange_interpolate(std::span<const Fr> xs, std::span<const Fr> ys);

/// Solve the n x n system A x = b over Fr by Gaussian elimination with
/// partial (first-nonzero) pivoting. Returns empty vector if A is singular.
/// Used by the audit-trail attack to separate blocks from the recovered
/// linear combinations sum_i c_i m_i.
std::vector<Fr> solve_linear_system(std::vector<std::vector<Fr>> a,
                                    std::vector<Fr> b);

}  // namespace dsaudit::poly
