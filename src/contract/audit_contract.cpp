#include "contract/audit_contract.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "audit/serialize.hpp"
#include "contract/tx_format.hpp"
#include "primitives/keccak256.hpp"

namespace dsaudit::contract {

namespace {

std::uint64_t contract_counter = 0;

void require(bool cond, const char* what) {
  if (!cond) throw std::logic_error(std::string("AuditContract: ") + what);
}

/// Beacons may keep per-round state (CommitRevealBeacon counts withheld
/// reveals), and many contracts share one beacon; their prepare stages run
/// concurrently, so beacon reads are serialized. Outputs are pure in the
/// round number, so the acquisition order does not affect any result.
std::mutex& beacon_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::None: return "none";
    case CloseReason::Expired: return "expired";
    case CloseReason::Rejected: return "rejected";
    case CloseReason::ProviderExit: return "provider-exit";
    case CloseReason::Slashed: return "slashed";
  }
  return "?";
}

AuditContract::AuditContract(chain::Blockchain& chain,
                             chain::RandomnessBeacon& beacon, ContractTerms terms,
                             PublicKey pk, audit::Fr file_name,
                             std::size_t num_chunks,
                             std::optional<audit::PreparedFile> prepared)
    : chain_(chain),
      beacon_(beacon),
      terms_(std::move(terms)),
      pk_owned_(std::make_unique<PublicKey>(std::move(pk))),
      verifier_owned_(std::make_unique<audit::Verifier>(*pk_owned_)),
      verifier_(verifier_owned_.get()),
      file_name_(file_name),
      num_chunks_(num_chunks),
      address_("contract-" + std::to_string(++contract_counter)) {
  require(terms_.num_audits > 0, "num_audits must be positive");
  require(num_chunks_ > 0, "empty file");
  require(terms_.response_window_s < terms_.audit_period_s,
          "response window must fit inside the audit period");
  if (prepared && prepared->num_chunks == num_chunks_ &&
      prepared->name == file_name_) {
    ctx_owned_ = std::make_unique<audit::PreparedFile>(std::move(*prepared));
  } else {
    ctx_owned_ = std::make_unique<audit::PreparedFile>(
        audit::prepare_file(file_name_, num_chunks_));
  }
  file_ctx_ = ctx_owned_.get();
}

AuditContract::AuditContract(chain::Blockchain& chain,
                             chain::RandomnessBeacon& beacon, ContractTerms terms,
                             const audit::Verifier& verifier,
                             audit::Fr file_name, std::size_t num_chunks,
                             const audit::PreparedFile* file_ctx)
    : chain_(chain),
      beacon_(beacon),
      terms_(std::move(terms)),
      verifier_(&verifier),
      file_ctx_(file_ctx),
      file_name_(file_name),
      num_chunks_(num_chunks),
      address_("contract-" + std::to_string(++contract_counter)) {
  require(terms_.num_audits > 0, "num_audits must be positive");
  require(num_chunks_ > 0, "empty file");
  require(terms_.response_window_s < terms_.audit_period_s,
          "response window must fit inside the audit period");
  require(!file_ctx_ || (file_ctx_->num_chunks == num_chunks_ &&
                         file_ctx_->name == file_name_),
          "shared file context does not match (name, num_chunks)");
}

void AuditContract::emit(const std::string& what) {
  events_.push_back({chain_.now(), what});
  if (terms_.retained_events > 0 && events_.size() > terms_.retained_events) {
    events_.erase(events_.begin(),
                  events_.end() - static_cast<std::ptrdiff_t>(terms_.retained_events));
  }
}

void AuditContract::trim_history() {
  if (terms_.retained_rounds > 0 && rounds_.size() > terms_.retained_rounds) {
    rounds_.erase(rounds_.begin(),
                  rounds_.end() - static_cast<std::ptrdiff_t>(terms_.retained_rounds));
  }
}

void AuditContract::settle_record(const RoundRecord& rec) {
  switch (rec.outcome) {
    case RoundOutcome::Pass: ++passes_; break;
    case RoundOutcome::Fail: ++fails_; break;
    case RoundOutcome::Timeout: ++timeouts_; break;
    case RoundOutcome::Aborted: ++aborted_; break;
  }
  round_gas_ += rec.gas_used;
  if (on_round_) on_round_(rec);
}

void AuditContract::negotiated() {
  require(state_ == State::Uninitialized, "negotiated: state != ⊥");
  // D pays the one-time on-chain storage of agrmts + params + metadata
  // (Fig. 4's public-key bytes plus name/d).
  auto pk_bytes = audit::serialize(verifier_->pk(), terms_.private_proofs);
  chain::Transaction tx;
  tx.from = terms_.owner;
  tx.description = "negotiated";
  tx.payload_bytes = txfmt::negotiated_payload(pk_bytes.size());
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(pk_bytes) +
                gas_.storage_word * ((tx.payload_bytes + 31) / 32);
  chain_.submit(tx);
  state_ = State::Ack;
  emit("negotiated");
}

void AuditContract::acked(bool accept) {
  require(state_ == State::Ack, "acked: state != ACK");
  chain::Transaction tx;
  tx.from = terms_.provider;
  tx.description = accept ? "acked" : "rejected";
  tx.payload_bytes = txfmt::kAckPayload;
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(txfmt::kAckPayload);
  chain_.submit(tx);
  if (!accept) {
    // §VI-A: S can walk away, wasting D's storage fee — "good to none but
    // worse to himself under a robust reputation-based system".
    close(CloseReason::Rejected, "terminated-by-provider");
    return;
  }
  state_ = State::Freeze;
  emit("acked");
}

void AuditContract::freeze() {
  require(state_ == State::Freeze, "freeze: state != FREEZE");
  std::uint64_t owner_lock = terms_.reward_per_audit * terms_.num_audits;
  std::uint64_t provider_lock = terms_.penalty_per_fail * terms_.num_audits;
  chain_.transfer(terms_.owner, address_, owner_lock);
  chain_.transfer(terms_.provider, address_, provider_lock);
  chain::Transaction tx;
  tx.from = terms_.owner;
  tx.description = "freeze";
  tx.payload_bytes = txfmt::kFreezePayload;
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(txfmt::kFreezePayload);
  chain_.submit(tx);
  state_ = State::Audit;
  emit("inited");
  schedule_challenge(chain_.now() + terms_.audit_period_s);
}

std::uint64_t AuditContract::escrow_balance() const {
  return chain_.balance(address_);
}

Challenge AuditContract::challenge_from_beacon(std::uint64_t round) const {
  chain::BeaconOutput out = beacon_.randomness(round);
  Challenge chal;
  // Domain-separated expansion of the 48 beacon bytes into (C1, C2, r).
  std::uint8_t buf[49];
  std::memcpy(buf, out.data(), 48);
  buf[48] = 0;
  chal.c1 = primitives::Keccak256::hash(std::span<const std::uint8_t>(buf, 49));
  buf[48] = 1;
  chal.c2 = primitives::Keccak256::hash(std::span<const std::uint8_t>(buf, 49));
  buf[48] = 2;
  auto rbytes = primitives::Keccak256::hash(std::span<const std::uint8_t>(buf, 49));
  chal.r = audit::Fr::from_be_bytes_mod(rbytes);
  chal.k = terms_.challenged_chunks;
  return chal;
}

void AuditContract::schedule_challenge(Timestamp when) {
  chain_.schedule(when, [this](Timestamp now) { prepare_challenge(now); },
                  [this](Timestamp now) { on_challenge_due(now); });
}

std::optional<std::vector<std::uint8_t>> AuditContract::ask_responder(
    const Challenge& c) {
  if (!responder_) return std::nullopt;
  try {
    return responder_(c);
  } catch (...) {
    // A fault injected into the prover (possibly on a pool worker, inside a
    // concurrent prepare) must cost the provider the round, not the process.
    return std::nullopt;
  }
}

void AuditContract::prepare_challenge(Timestamp /*now*/) {
  if (state_ != State::Audit || cnt_ >= terms_.num_audits) return;
  StagedChallenge staged;
  {
    std::lock_guard<std::mutex> lock(beacon_mutex());
    staged.challenge = challenge_from_beacon(cnt_);
  }
  // Provider reacts off-chain; in the simulation the responder runs here —
  // possibly concurrently with other contracts' provers — and its proof
  // "arrives" as a tx in the response window.
  staged.proof = ask_responder(staged.challenge);
  staged_challenge_ = std::move(staged);
}

void AuditContract::on_challenge_due(Timestamp /*now*/) {
  if (state_ != State::Audit) {  // contract closed meanwhile
    staged_challenge_.reset();
    return;
  }
  require(cnt_ < terms_.num_audits, "challenge beyond num_audits");

  RoundRecord rec;
  rec.round = cnt_;
  std::optional<std::vector<std::uint8_t>> proof;
  if (staged_challenge_) {
    rec.challenge = staged_challenge_->challenge;
    proof = std::move(staged_challenge_->proof);
    staged_challenge_.reset();
  } else {
    // Unprepared path (direct calls in tests): same work, inline.
    rec.challenge = challenge_from_beacon(cnt_);
    proof = ask_responder(rec.challenge);
  }
  rec.challenged_at = chain_.now();

  chain::Transaction tx;
  tx.from = address_;
  tx.description = "challenged";
  tx.payload_bytes = txfmt::kChallengePayload;
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(txfmt::kChallengePayload);
  chain_.submit(tx);
  emit("challenged");

  state_ = State::Prove;
  pending_proof_.reset();
  if (proof) {
    pending_proof_ = std::move(proof);
    rec.proved_at = chain_.now();
    rec.proof_bytes = pending_proof_->size();
    emit("proofposted");
  }
  rounds_.push_back(std::move(rec));
  ++records_created_;
  chain_.schedule(chain_.now() + terms_.response_window_s,
                  [this](Timestamp now) { prepare_verify(now); },
                  [this](Timestamp now) { on_verify_due(now); });
}

void AuditContract::prepare_verify(Timestamp /*now*/) {
  if (state_ != State::Prove || !pending_proof_) return;
  auto t0 = std::chrono::steady_clock::now();
  StagedVerify staged;
  if (batch_) {
    // Deferred settlement: deserialize here (cheap, concurrent) and hand the
    // round to the shared block batch; the expensive verification happens
    // once per instant, for every due round together. A malformed proof
    // never reaches the batch — it fails this round immediately.
    audit::SettlementInstance inst;
    inst.verifier = verifier_;
    inst.file = file_ctx_;  // null => the engine recomputes chunk hashes
    inst.name = file_name_;
    inst.num_chunks = num_chunks_;
    inst.challenge = rounds_.back().challenge;
    if (terms_.private_proofs) {
      inst.priv = audit::deserialize_private(*pending_proof_);
    } else {
      inst.basic = audit::deserialize_basic(*pending_proof_);
    }
    if (inst.basic || inst.priv) {
      staged.ticket =
          batch_->enqueue(chain_, std::move(inst), round_transcript());
    }
  } else if (terms_.private_proofs) {
    auto proof = audit::deserialize_private(*pending_proof_);
    staged.ok = proof &&
                (file_ctx_
                     ? verifier_->verify_private(*file_ctx_,
                                                 rounds_.back().challenge, *proof)
                     : verifier_->verify_private(file_name_, num_chunks_,
                                                 rounds_.back().challenge,
                                                 *proof));
  } else {
    auto proof = audit::deserialize_basic(*pending_proof_);
    staged.ok =
        proof &&
        (file_ctx_
             ? verifier_->verify(*file_ctx_, rounds_.back().challenge, *proof)
             : verifier_->verify(file_name_, num_chunks_,
                                 rounds_.back().challenge, *proof));
  }
  staged.verify_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  staged_verify_ = staged;
}

/// Canonical identity of the pending round for the batch transcript: the
/// contract address, round number, challenge and exact proof bytes. Orders
/// the block batch deterministically and commits the weight seed to the
/// proofs (Fiat–Shamir).
std::array<std::uint8_t, 32> AuditContract::round_transcript() const {
  std::vector<std::uint8_t> buf;
  const auto chal = audit::serialize(rounds_.back().challenge);
  buf.reserve(address_.size() + 8 + chal.size() + pending_proof_->size());
  buf.insert(buf.end(), address_.begin(), address_.end());
  for (int b = 0; b < 8; ++b) {
    buf.push_back(static_cast<std::uint8_t>(cnt_ >> (8 * b)));
  }
  buf.insert(buf.end(), chal.begin(), chal.end());
  buf.insert(buf.end(), pending_proof_->begin(), pending_proof_->end());
  return primitives::Keccak256::hash(
      std::span<const std::uint8_t>(buf.data(), buf.size()));
}

void AuditContract::on_verify_due(Timestamp now) {
  if (state_ != State::Prove) {
    staged_verify_.reset();
    return;
  }
  if (!pending_proof_) {
    staged_verify_.reset();
    RoundRecord& rec = rounds_.back();
    if (rec.retries < terms_.timeout_retry_limit && responder_) {
      // Requeue with bounded retry: a transient miss inside a settlement
      // window is re-attempted at the next boundary (one response window
      // later when windows are off) instead of being slashed immediately.
      ++rec.retries;
      ++retries_;
      emit("timeout-retry");
      Timestamp retry_at = chain_.settlement_window() > 1
                               ? chain_.settlement_boundary(now + 1)
                               : now + terms_.response_window_s;
      chain_.schedule(retry_at, [this](Timestamp t) { prepare_retry(t); },
                      [this](Timestamp t) { on_retry_due(t); });
      return;
    }
    rec.outcome = RoundOutcome::Timeout;
    emit("fail");
    settle_record(rec);
    if (terms_.penalty_per_fail > 0) {
      chain_.transfer(address_, terms_.owner, terms_.penalty_per_fail);
    }
    ++consecutive_misses_;
    advance_round();
    return;
  }
  if (!staged_verify_) prepare_verify(now);
  if (staged_verify_->ticket) {
    const BatchSettlement::Ticket ticket = *staged_verify_->ticket;
    staged_verify_.reset();
    pending_proof_.reset();
    if (auto res = batch_->try_outcome(ticket, now)) {
      // Per-instant window: the batch flushed between this instant's
      // prepares and actions (or flushes on demand, on direct-call paths).
      finalize_proved(*res);
    } else {
      // Windowed settlement: the batch stays open until the window
      // boundary; redeem the ticket there. The flush hook runs before any
      // action of that instant, so the outcome is ready when this fires.
      // A provider exit can close the contract (aborting this round) before
      // the boundary — a dead round must not settle.
      chain_.schedule(ticket.settle_at, [this, ticket](Timestamp) {
        if (state_ != State::Prove) return;
        finalize_proved(batch_->outcome(ticket));
      });
    }
    return;
  }
  const BatchSettlement::Outcome inline_res{staged_verify_->ok, 1,
                                            staged_verify_->verify_ms};
  staged_verify_.reset();
  pending_proof_.reset();
  finalize_proved(inline_res);
}

void AuditContract::prepare_retry(Timestamp /*now*/) {
  if (state_ != State::Prove || pending_proof_) return;
  StagedChallenge staged;
  staged.challenge = rounds_.back().challenge;  // same round, same challenge
  staged.proof = ask_responder(staged.challenge);
  staged_challenge_ = std::move(staged);
}

void AuditContract::on_retry_due(Timestamp now) {
  if (state_ != State::Prove || pending_proof_) {  // closed/settled meanwhile
    staged_challenge_.reset();
    return;
  }
  std::optional<std::vector<std::uint8_t>> proof;
  if (staged_challenge_) {
    proof = std::move(staged_challenge_->proof);
    staged_challenge_.reset();
  } else {
    proof = ask_responder(rounds_.back().challenge);  // direct-call path
  }
  // The retry rebroadcasts the challenge reference on chain; the response
  // window restarts from the retry instant.
  chain::Transaction tx;
  tx.from = address_;
  tx.description = "retry";
  tx.payload_bytes = txfmt::kChallengePayload;
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(txfmt::kChallengePayload);
  chain_.submit(tx);
  emit("retried");
  if (proof) {
    RoundRecord& rec = rounds_.back();
    pending_proof_ = std::move(proof);
    rec.proved_at = now;
    rec.proof_bytes = pending_proof_->size();
    emit("proofposted");
  }
  chain_.schedule(now + terms_.response_window_s,
                  [this](Timestamp t) { prepare_verify(t); },
                  [this](Timestamp t) { on_verify_due(t); });
}

void AuditContract::finalize_proved(const BatchSettlement::Outcome& outcome) {
  RoundRecord& rec = rounds_.back();
  rec.verify_ms = outcome.flush_ms;  // telemetry: this round's (or its whole
                                     // window's) measured verification time
  if (outcome.aggregated && !outcome.fallback) {
    // Clean aggregate window: this round redeems against the window's one
    // settle-window tx (seed + aggregated opening + outcome bitmap, already
    // on chain — BatchSettlement posted it at the flush). No per-round
    // prove tx, no per-round bytes or gas; the money transfers below are
    // unchanged. A dirty window (fallback) re-posts individual proofs so
    // the bisection evidence lands on chain.
    rec.gas_used = 0;
  } else {
    // The prove tx carries the proof bytes and triggers on-chain
    // verification; gas follows the §VII-B extrapolation at the model's
    // calibrated verification time, NOT this run's wall clock — settlement
    // must be a deterministic function of on-chain data (with the batch
    // discount, of on-chain data plus the settled batch's size).
    chain::Transaction tx;
    tx.from = terms_.provider;
    tx.description = "prove";
    tx.payload_bytes = rec.proof_bytes;
    tx.gas_used =
        terms_.batch_gas_discount
            ? cost_.gas.audit_tx_gas(rec.proof_bytes, cost_.challenge_bytes,
                                     cost_.batched_verify_ms(outcome.batch_size))
            : cost_.gas.audit_tx_gas(rec.proof_bytes, cost_.challenge_bytes,
                                     cost_.verify_ms);
    chain_.submit(tx);
    rec.gas_used = tx.gas_used;
  }

  if (outcome.ok) {
    rec.outcome = RoundOutcome::Pass;
    emit("pass");
    settle_record(rec);
    if (terms_.reward_per_audit > 0) {
      chain_.transfer(address_, terms_.provider, terms_.reward_per_audit);
    }
    consecutive_misses_ = 0;
  } else {
    rec.outcome = RoundOutcome::Fail;
    emit("fail");
    settle_record(rec);
    if (terms_.penalty_per_fail > 0) {
      chain_.transfer(address_, terms_.owner, terms_.penalty_per_fail);
    }
    ++consecutive_misses_;
  }
  advance_round();
}

void AuditContract::advance_round() {
  pending_proof_.reset();
  ++cnt_;
  if (terms_.slash_after_consecutive > 0 &&
      consecutive_misses_ >= terms_.slash_after_consecutive) {
    slash_and_close();
    trim_history();
    return;
  }
  if (cnt_ >= terms_.num_audits) {
    settle_and_close();
    trim_history();
    return;
  }
  state_ = State::Audit;
  schedule_challenge(rounds_.back().challenged_at + terms_.audit_period_s);
  trim_history();
}

void AuditContract::settle_and_close() {
  // Return unspent escrow: undelivered rewards to the owner, unburned
  // collateral to the provider.
  std::uint64_t unpaid_rewards = terms_.reward_per_audit * (fails() + timeouts());
  std::uint64_t kept_collateral =
      terms_.penalty_per_fail * terms_.num_audits -
      terms_.penalty_per_fail * (fails() + timeouts());
  if (unpaid_rewards > 0) chain_.transfer(address_, terms_.owner, unpaid_rewards);
  if (kept_collateral > 0) {
    chain_.transfer(address_, terms_.provider, kept_collateral);
  }
  close(CloseReason::Expired, "expired");
}

void AuditContract::slash_and_close() {
  // Missed-deadline slashing: the provider abandoned the contract, so the
  // owner is made whole from everything still escrowed — the undelivered
  // reward pool AND the provider's remaining collateral.
  std::uint64_t remaining = chain_.balance(address_);
  if (remaining > 0) chain_.transfer(address_, terms_.owner, remaining);
  chain::Transaction tx;
  tx.from = address_;
  tx.description = "slashed";
  tx.payload_bytes = txfmt::kClosePayload;
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(txfmt::kClosePayload);
  chain_.submit(tx);
  close(CloseReason::Slashed, "slashed");
}

void AuditContract::provider_exit() {
  require(state_ == State::Audit || state_ == State::Prove,
          "provider_exit: contract not live");
  if (state_ == State::Prove && records_created_ > cnt_) {
    // The in-flight round never settles; it moves no money either way.
    rounds_.back().outcome = RoundOutcome::Aborted;
    settle_record(rounds_.back());
  }
  // Escrow release: the owner recovers every undelivered reward plus an
  // exit fee of one penalty_per_fail carved from the provider's remaining
  // collateral; the provider keeps the rest of its collateral.
  std::uint64_t escrow = chain_.balance(address_);
  std::uint64_t remaining_rewards =
      terms_.reward_per_audit * (terms_.num_audits - passes());
  if (remaining_rewards > escrow) remaining_rewards = escrow;
  std::uint64_t remaining_collateral = escrow - remaining_rewards;
  std::uint64_t exit_fee =
      std::min<std::uint64_t>(terms_.penalty_per_fail, remaining_collateral);
  if (remaining_rewards + exit_fee > 0) {
    chain_.transfer(address_, terms_.owner, remaining_rewards + exit_fee);
  }
  if (remaining_collateral > exit_fee) {
    chain_.transfer(address_, terms_.provider, remaining_collateral - exit_fee);
  }
  chain::Transaction tx;
  tx.from = terms_.provider;
  tx.description = "provider-exit";
  tx.payload_bytes = txfmt::kClosePayload;
  tx.gas_used = gas_.tx_base + gas_.calldata_gas(txfmt::kClosePayload);
  chain_.submit(tx);
  close(CloseReason::ProviderExit, "provider-exit");
  trim_history();
}

void AuditContract::close(CloseReason reason, const std::string& event) {
  state_ = State::Closed;
  close_reason_ = reason;
  emit(event);
  if (on_closed_) on_closed_(reason);
}

}  // namespace dsaudit::contract
